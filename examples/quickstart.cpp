// Quickstart: profile a benchmark, lay it out for way-placement, simulate
// all three schemes on the XScale-like baseline machine, and print the
// headline metrics — the 30-second tour of the library.
#include <iostream>

#include "driver/runner.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace wp;
  const std::string name = argc > 1 ? argv[1] : "crc";

  driver::Runner runner;
  std::cout << "preparing workload '" << name << "' (profile on small input, "
            << "heaviest-first chain layout)...\n";
  const driver::PreparedWorkload prepared = runner.prepare(name);
  std::cout << "  profiled " << prepared.profile_instructions
            << " instructions, " << prepared.module.blocks.size()
            << " basic blocks, " << layout::formChains(prepared.module).size()
            << " chains, code size "
            << prepared.imageFor("original").code.size() << " B\n\n";

  const cache::CacheGeometry icache{32 * 1024, 32, 32};  // XScale I-cache
  const driver::RunResult base =
      runner.run(prepared, icache, driver::SchemeSpec::baseline());
  const driver::RunResult wm =
      runner.run(prepared, icache, driver::SchemeSpec::wayMemoization());
  const driver::RunResult wp =
      runner.run(prepared, icache, driver::SchemeSpec::wayPlacement(16 * 1024));

  TextTable t;
  t.header({"scheme", "insts", "cycles", "I$ hit%", "tag cmps", "I$ energy",
            "ED product"});
  const auto row = [&](const char* label, const driver::RunResult& r) {
    const driver::Normalized n = driver::normalize(r, base);
    t.row({label, std::to_string(r.stats.instructions),
           std::to_string(r.stats.cycles),
           fmtPct(static_cast<double>(r.stats.icache.hits) /
                      static_cast<double>(r.stats.icache.accesses),
                  2),
           std::to_string(r.stats.icache.tag_compares),
           fmtPct(n.icache_energy, 1), fmt(n.ed_product, 3)});
  };
  row("baseline", base);
  row("way-memoization", wm);
  row("way-placement 16K", wp);
  t.print(std::cout);

  const driver::Normalized n = driver::normalize(wp, base);
  std::cout << "\nway-placement saves " << fmtPct(1.0 - n.icache_energy, 1)
            << " of instruction-cache energy on '" << name << "'\n";
  return 0;
}
