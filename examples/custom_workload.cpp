// Example: bring your own program. Builds a small string-search kernel
// with asmkit (the same API the MiBench-substitute suite uses), profiles
// it, lays it out for way-placement, and compares the schemes — the
// full flow a user would follow to evaluate their own embedded code.
#include <iostream>

#include "asmkit/builder.hpp"
#include "cache/fetch_path.hpp"
#include "layout/strategy.hpp"
#include "profile/profiler.hpp"
#include "sim/processor.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

using namespace wp;
using namespace wp::asmkit;

namespace {

// A naive substring counter: counts occurrences of an 8-byte needle in a
// haystack — a hot inner compare loop plus a cold mismatch path.
ir::Module buildProgram() {
  ModuleBuilder mb;
  mb.bss("haystack", 64 * 1024);
  mb.bss("needle", 16);
  mb.bss("hay_len", 4);
  mb.bss("matches", 4);

  auto& f = mb.func("main");
  f.prologue({r4, r5, r6, r7, r8});
  f.la(r4, "haystack");
  f.la(r0, "hay_len");
  f.ldr(r5, r0);
  f.subi(r5, r5, 8);   // last valid start
  f.la(r6, "needle");
  f.movi(r7, 0);       // match count
  f.movi(r8, 0);       // position

  const auto outer = f.label();
  const auto done = f.label();
  const auto mismatch = f.label();
  const auto matched = f.label();
  f.bind(outer);
  f.cmpBr(r8, r5, Cond::kGt, done);
  // Inner compare of 8 bytes.
  f.movi(r2, 0);
  const auto inner = f.label();
  f.bind(inner);
  f.add(r0, r4, r8);
  f.ldrbx(r1, r0, r2);
  f.ldrbx(r3, r6, r2);
  f.cmpBr(r1, r3, Cond::kNe, mismatch);
  f.addi(r2, r2, 1);
  f.cmpiBr(r2, 8, Cond::kLt, inner);
  f.jmp(matched);
  f.bind(matched);
  f.addi(r7, r7, 1);
  f.bind(mismatch);
  f.addi(r8, r8, 1);
  f.jmp(outer);

  f.bind(done);
  f.la(r0, "matches");
  f.str(r7, r0);
  f.epilogue({r4, r5, r6, r7, r8});
  return mb.build();
}

void fillInputs(mem::Memory& memory, u32 hay_addr, u32 needle_addr,
                u32 len_addr, u32 len) {
  Rng rng(1234);
  std::vector<u8> hay(len);
  for (auto& b : hay) b = static_cast<u8>('a' + rng.below(2));
  memory.writeBlock(hay_addr, hay);
  const u8 needle[8] = {'a', 'b', 'a', 'b', 'a', 'a', 'b', 'a'};
  memory.writeBlock(needle_addr, needle);
  memory.store32(len_addr, len);
}

}  // namespace

int main() {
  ir::Module module = buildProgram();
  const u32 hay = mem::kDataBase + module.findSymbol("haystack")->offset;
  const u32 needle = mem::kDataBase + module.findSymbol("needle")->offset;
  const u32 len = mem::kDataBase + module.findSymbol("hay_len")->offset;
  const u32 matches = mem::kDataBase + module.findSymbol("matches")->offset;

  // 1. Profile on a small input.
  const mem::Image original =
      layout::layoutImage(module, "original");
  {
    mem::Memory memory;
    original.loadInto(memory);
    fillInputs(memory, hay, needle, len, 4 * 1024);
    profile::annotate(module, profile::profileImage(original, memory));
  }

  // 2. Way-placement layout.
  const mem::Image placed =
      layout::layoutImage(module, "way_placement");
  std::cout << "custom kernel: " << module.staticInstructions()
            << " static instructions, " << module.blocks.size()
            << " basic blocks, " << layout::formChains(module).size()
            << " chains\n\n";

  // 3. Simulate the big input under each scheme.
  TextTable t;
  t.header({"scheme", "matches", "cycles", "tag cmps", "I$ energy (pJ)"});
  const energy::EnergyModel model;
  double base_energy = 0.0;

  const auto run = [&](const char* label, cache::Scheme scheme,
                       const mem::Image& image) {
    sim::MachineConfig machine = sim::baselineMachine(
        scheme, scheme == cache::Scheme::kWayPlacement ? 8 * 1024 : 0);
    mem::Memory memory;
    image.loadInto(memory);
    fillInputs(memory, hay, needle, len, 48 * 1024);
    sim::Processor proc(machine, image, memory);
    const sim::RunStats stats = proc.run();
    const energy::RunEnergy e =
        sim::Processor::price(model, machine, stats);
    if (base_energy == 0.0) base_energy = e.icacheTotal();
    t.row({label, std::to_string(memory.load32(matches)),
           std::to_string(stats.cycles),
           std::to_string(stats.icache.tag_compares),
           fmt(e.icacheTotal(), 0) + " (" +
               fmtPct(e.icacheTotal() / base_energy, 1) + ")"});
  };

  run("baseline", cache::Scheme::kBaseline, original);
  run("way-memoization", cache::Scheme::kWayMemoization, original);
  run("way-placement 8K", cache::Scheme::kWayPlacement, placed);
  t.print(std::cout);
  return 0;
}
