// Example: look inside the compiler pass. Shows the profile-annotated
// chains of a benchmark, the heaviest-first placement, which chains land
// inside a chosen way-placement area, and a disassembly excerpt of the
// start of the binary.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "driver/runner.hpp"
#include "isa/isa.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace wp;
  const std::string name = argc > 1 ? argv[1] : "sha";
  const u32 area = argc > 2 ? static_cast<u32>(std::stoul(argv[2]) * 1024)
                            : 2 * 1024;

  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare(name);

  auto chains = layout::formChains(p.module);
  std::stable_sort(chains.begin(), chains.end(),
                   [](const auto& a, const auto& b) {
                     return a.weight > b.weight;
                   });

  const layout::LayoutResult& laid = p.layoutFor("way_placement");
  std::cout << "workload '" << name << "': " << p.module.blocks.size()
            << " blocks in " << chains.size() << " chains, code size "
            << laid.image.code.size() << " B, way-placement area " << area
            << " B\n\n";

  TextTable t;
  t.header({"rank", "chain head", "blocks", "insts", "weight",
            "placed at", "in WP area?"});
  u32 addr = mem::kCodeBase;
  for (std::size_t i = 0; i < chains.size() && i < 12; ++i) {
    const auto& c = chains[i];
    u32 insts = 0;
    for (const u32 id : c.blocks) {
      insts += static_cast<u32>(p.module.blocks[id].insts.size());
    }
    const u32 head_addr = laid.image.block_addr.at(c.blocks.front());
    t.row({std::to_string(i + 1), p.module.blocks[c.blocks.front()].label,
           std::to_string(c.blocks.size()), std::to_string(insts),
           std::to_string(c.weight), "0x" + fmt(head_addr, 0),
           head_addr < area ? "yes" : "no"});
    addr += insts * 4;
  }
  t.print(std::cout);

  std::cout << "\nfirst instructions of the way-placed binary "
               "(hottest chain first):\n";
  for (u32 pc = 0; pc < 48 && pc < laid.image.code.size(); pc += 4) {
    u32 word = 0;
    for (int b = 0; b < 4; ++b) {
      word |= static_cast<u32>(laid.image.code[pc + b]) << (8 * b);
    }
    std::cout << "  0x" << std::hex << std::setw(5) << std::setfill('0')
              << pc << std::dec << "  " << isa::disassemble(isa::decode(word))
              << '\n';
  }

  // How much of the dynamic profile does the area capture? The pass
  // pipeline's own report answers directly.
  std::cout << "\nway-placement area covers "
            << fmtPct(laid.report.coverage(area), 1)
            << " of profiled dynamic instructions ("
            << laid.report.repairs << " fall-through repairs)\n";
  return 0;
}
