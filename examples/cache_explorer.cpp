// Example: design-space exploration for one workload. Sweeps I-cache
// size and associativity and prints, for each point, the baseline hit
// rate and the energy of both optimization schemes — the view an
// embedded-SoC architect would want before fixing a cache configuration.
#include <iostream>

#include "driver/runner.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace wp;
  const std::string name = argc > 1 ? argv[1] : "rijndael_e";

  driver::Runner runner;
  std::cout << "exploring cache configurations for '" << name << "'...\n\n";
  const driver::PreparedWorkload prepared = runner.prepare(name);

  TextTable t;
  t.header({"I-cache", "hit rate", "way-memo I$", "way-place I$",
            "way-place ED"});

  for (const u32 size_kb : {8u, 16u, 32u, 64u}) {
    for (const u32 ways : {4u, 8u, 16u, 32u}) {
      if (size_kb * 1024 / 32 < ways) continue;  // fewer lines than ways
      const cache::CacheGeometry g{size_kb * 1024, 32, ways};
      const driver::RunResult base =
          runner.run(prepared, g, driver::SchemeSpec::baseline());
      const driver::RunResult wm =
          runner.run(prepared, g, driver::SchemeSpec::wayMemoization());
      const driver::RunResult wp = runner.run(
          prepared, g, driver::SchemeSpec::wayPlacement(4 * 1024));
      const double hit = static_cast<double>(base.stats.icache.hits) /
                         static_cast<double>(base.stats.icache.accesses);
      const driver::Normalized nwm = driver::normalize(wm, base);
      const driver::Normalized nwp = driver::normalize(wp, base);
      t.row({std::to_string(size_kb) + "KB/" + std::to_string(ways) + "w",
             fmtPct(hit, 2), fmtPct(nwm.icache_energy, 1),
             fmtPct(nwp.icache_energy, 1), fmt(nwp.ed_product, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nhigher associativity -> more tag energy at stake -> "
               "bigger way-placement wins.\n";
  return 0;
}
