# Empty compiler generated dependencies file for test_asmkit.
# This may be replaced when dependencies are built.
