file(REMOVE_RECURSE
  "CMakeFiles/test_fetch_path.dir/test_fetch_path.cpp.o"
  "CMakeFiles/test_fetch_path.dir/test_fetch_path.cpp.o.d"
  "test_fetch_path"
  "test_fetch_path.pdb"
  "test_fetch_path[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fetch_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
