# Empty dependencies file for test_fetch_path.
# This may be replaced when dependencies are built.
