file(REMOVE_RECURSE
  "CMakeFiles/test_waymemo.dir/test_waymemo.cpp.o"
  "CMakeFiles/test_waymemo.dir/test_waymemo.cpp.o.d"
  "test_waymemo"
  "test_waymemo.pdb"
  "test_waymemo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_waymemo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
