# Empty dependencies file for test_waymemo.
# This may be replaced when dependencies are built.
