# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_memory[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_tlb[1]_include.cmake")
include("/root/repo/build/tests/test_waymemo[1]_include.cmake")
include("/root/repo/build/tests/test_fetch_path[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_asmkit[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_profile[1]_include.cmake")
include("/root/repo/build/tests/test_references[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_invariants[1]_include.cmake")
include("/root/repo/build/tests/test_processor[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_tracer[1]_include.cmake")
