# Empty dependencies file for wp_layout.
# This may be replaced when dependencies are built.
