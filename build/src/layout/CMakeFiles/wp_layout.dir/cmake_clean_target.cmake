file(REMOVE_RECURSE
  "libwp_layout.a"
)
