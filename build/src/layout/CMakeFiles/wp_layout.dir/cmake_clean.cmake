file(REMOVE_RECURSE
  "CMakeFiles/wp_layout.dir/layout.cpp.o"
  "CMakeFiles/wp_layout.dir/layout.cpp.o.d"
  "libwp_layout.a"
  "libwp_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
