file(REMOVE_RECURSE
  "libwp_energy.a"
)
