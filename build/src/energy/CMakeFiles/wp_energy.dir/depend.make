# Empty dependencies file for wp_energy.
# This may be replaced when dependencies are built.
