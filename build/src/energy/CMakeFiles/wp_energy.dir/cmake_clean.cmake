file(REMOVE_RECURSE
  "CMakeFiles/wp_energy.dir/energy_model.cpp.o"
  "CMakeFiles/wp_energy.dir/energy_model.cpp.o.d"
  "libwp_energy.a"
  "libwp_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
