file(REMOVE_RECURSE
  "libwp_workloads.a"
)
