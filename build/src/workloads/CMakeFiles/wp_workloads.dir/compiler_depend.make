# Empty compiler generated dependencies file for wp_workloads.
# This may be replaced when dependencies are built.
