
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/common.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/common.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/common.cpp.o.d"
  "/root/repo/src/workloads/guestlib.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/guestlib.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/guestlib.cpp.o.d"
  "/root/repo/src/workloads/references.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/references.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/references.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/wl_adpcm.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_adpcm.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_adpcm.cpp.o.d"
  "/root/repo/src/workloads/wl_bitcount.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_bitcount.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_bitcount.cpp.o.d"
  "/root/repo/src/workloads/wl_blowfish.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_blowfish.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_blowfish.cpp.o.d"
  "/root/repo/src/workloads/wl_crc.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_crc.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_crc.cpp.o.d"
  "/root/repo/src/workloads/wl_fft.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_fft.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_fft.cpp.o.d"
  "/root/repo/src/workloads/wl_ispell.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_ispell.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_ispell.cpp.o.d"
  "/root/repo/src/workloads/wl_jpeg.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_jpeg.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_jpeg.cpp.o.d"
  "/root/repo/src/workloads/wl_patricia.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_patricia.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_patricia.cpp.o.d"
  "/root/repo/src/workloads/wl_rijndael.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_rijndael.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_rijndael.cpp.o.d"
  "/root/repo/src/workloads/wl_rsynth.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_rsynth.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_rsynth.cpp.o.d"
  "/root/repo/src/workloads/wl_sha.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_sha.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_sha.cpp.o.d"
  "/root/repo/src/workloads/wl_susan.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_susan.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_susan.cpp.o.d"
  "/root/repo/src/workloads/wl_tiff.cpp" "src/workloads/CMakeFiles/wp_workloads.dir/wl_tiff.cpp.o" "gcc" "src/workloads/CMakeFiles/wp_workloads.dir/wl_tiff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/wp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/wp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/wp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
