file(REMOVE_RECURSE
  "libwp_cache.a"
)
