
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cam_cache.cpp" "src/cache/CMakeFiles/wp_cache.dir/cam_cache.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/cam_cache.cpp.o.d"
  "/root/repo/src/cache/data_cache.cpp" "src/cache/CMakeFiles/wp_cache.dir/data_cache.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/data_cache.cpp.o.d"
  "/root/repo/src/cache/drowsy.cpp" "src/cache/CMakeFiles/wp_cache.dir/drowsy.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/drowsy.cpp.o.d"
  "/root/repo/src/cache/fetch_path.cpp" "src/cache/CMakeFiles/wp_cache.dir/fetch_path.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/fetch_path.cpp.o.d"
  "/root/repo/src/cache/tlb.cpp" "src/cache/CMakeFiles/wp_cache.dir/tlb.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/tlb.cpp.o.d"
  "/root/repo/src/cache/way_memo.cpp" "src/cache/CMakeFiles/wp_cache.dir/way_memo.cpp.o" "gcc" "src/cache/CMakeFiles/wp_cache.dir/way_memo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/wp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wp_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
