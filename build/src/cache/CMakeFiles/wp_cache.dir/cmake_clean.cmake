file(REMOVE_RECURSE
  "CMakeFiles/wp_cache.dir/cam_cache.cpp.o"
  "CMakeFiles/wp_cache.dir/cam_cache.cpp.o.d"
  "CMakeFiles/wp_cache.dir/data_cache.cpp.o"
  "CMakeFiles/wp_cache.dir/data_cache.cpp.o.d"
  "CMakeFiles/wp_cache.dir/drowsy.cpp.o"
  "CMakeFiles/wp_cache.dir/drowsy.cpp.o.d"
  "CMakeFiles/wp_cache.dir/fetch_path.cpp.o"
  "CMakeFiles/wp_cache.dir/fetch_path.cpp.o.d"
  "CMakeFiles/wp_cache.dir/tlb.cpp.o"
  "CMakeFiles/wp_cache.dir/tlb.cpp.o.d"
  "CMakeFiles/wp_cache.dir/way_memo.cpp.o"
  "CMakeFiles/wp_cache.dir/way_memo.cpp.o.d"
  "libwp_cache.a"
  "libwp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
