# Empty compiler generated dependencies file for wp_cache.
# This may be replaced when dependencies are built.
