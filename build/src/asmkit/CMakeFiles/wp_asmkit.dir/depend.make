# Empty dependencies file for wp_asmkit.
# This may be replaced when dependencies are built.
