file(REMOVE_RECURSE
  "libwp_asmkit.a"
)
