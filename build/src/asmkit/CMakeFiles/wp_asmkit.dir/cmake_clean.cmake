file(REMOVE_RECURSE
  "CMakeFiles/wp_asmkit.dir/builder.cpp.o"
  "CMakeFiles/wp_asmkit.dir/builder.cpp.o.d"
  "libwp_asmkit.a"
  "libwp_asmkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_asmkit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
