file(REMOVE_RECURSE
  "CMakeFiles/wp_pipeline.dir/timing.cpp.o"
  "CMakeFiles/wp_pipeline.dir/timing.cpp.o.d"
  "libwp_pipeline.a"
  "libwp_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
