file(REMOVE_RECURSE
  "libwp_pipeline.a"
)
