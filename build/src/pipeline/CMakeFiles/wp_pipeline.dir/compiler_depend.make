# Empty compiler generated dependencies file for wp_pipeline.
# This may be replaced when dependencies are built.
