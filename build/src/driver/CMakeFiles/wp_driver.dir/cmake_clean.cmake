file(REMOVE_RECURSE
  "CMakeFiles/wp_driver.dir/runner.cpp.o"
  "CMakeFiles/wp_driver.dir/runner.cpp.o.d"
  "libwp_driver.a"
  "libwp_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
