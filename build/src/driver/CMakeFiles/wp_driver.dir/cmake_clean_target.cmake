file(REMOVE_RECURSE
  "libwp_driver.a"
)
