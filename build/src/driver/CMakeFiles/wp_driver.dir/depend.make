# Empty dependencies file for wp_driver.
# This may be replaced when dependencies are built.
