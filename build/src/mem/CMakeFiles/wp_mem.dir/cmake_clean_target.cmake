file(REMOVE_RECURSE
  "libwp_mem.a"
)
