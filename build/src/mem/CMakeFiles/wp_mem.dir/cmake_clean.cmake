file(REMOVE_RECURSE
  "CMakeFiles/wp_mem.dir/image.cpp.o"
  "CMakeFiles/wp_mem.dir/image.cpp.o.d"
  "CMakeFiles/wp_mem.dir/memory.cpp.o"
  "CMakeFiles/wp_mem.dir/memory.cpp.o.d"
  "libwp_mem.a"
  "libwp_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
