# Empty dependencies file for wp_mem.
# This may be replaced when dependencies are built.
