file(REMOVE_RECURSE
  "libwp_profile.a"
)
