file(REMOVE_RECURSE
  "CMakeFiles/wp_profile.dir/profiler.cpp.o"
  "CMakeFiles/wp_profile.dir/profiler.cpp.o.d"
  "libwp_profile.a"
  "libwp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
