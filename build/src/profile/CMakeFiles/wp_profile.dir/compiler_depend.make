# Empty compiler generated dependencies file for wp_profile.
# This may be replaced when dependencies are built.
