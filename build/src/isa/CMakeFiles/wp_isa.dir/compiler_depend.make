# Empty compiler generated dependencies file for wp_isa.
# This may be replaced when dependencies are built.
