file(REMOVE_RECURSE
  "CMakeFiles/wp_isa.dir/isa.cpp.o"
  "CMakeFiles/wp_isa.dir/isa.cpp.o.d"
  "libwp_isa.a"
  "libwp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
