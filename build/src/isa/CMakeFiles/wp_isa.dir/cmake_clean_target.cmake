file(REMOVE_RECURSE
  "libwp_isa.a"
)
