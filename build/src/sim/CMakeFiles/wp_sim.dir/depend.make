# Empty dependencies file for wp_sim.
# This may be replaced when dependencies are built.
