file(REMOVE_RECURSE
  "CMakeFiles/wp_sim.dir/core.cpp.o"
  "CMakeFiles/wp_sim.dir/core.cpp.o.d"
  "CMakeFiles/wp_sim.dir/processor.cpp.o"
  "CMakeFiles/wp_sim.dir/processor.cpp.o.d"
  "CMakeFiles/wp_sim.dir/tracer.cpp.o"
  "CMakeFiles/wp_sim.dir/tracer.cpp.o.d"
  "libwp_sim.a"
  "libwp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
