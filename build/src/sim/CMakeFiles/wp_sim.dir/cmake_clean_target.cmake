file(REMOVE_RECURSE
  "libwp_sim.a"
)
