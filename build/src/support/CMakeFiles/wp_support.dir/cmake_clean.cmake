file(REMOVE_RECURSE
  "CMakeFiles/wp_support.dir/ensure.cpp.o"
  "CMakeFiles/wp_support.dir/ensure.cpp.o.d"
  "CMakeFiles/wp_support.dir/stats.cpp.o"
  "CMakeFiles/wp_support.dir/stats.cpp.o.d"
  "CMakeFiles/wp_support.dir/table.cpp.o"
  "CMakeFiles/wp_support.dir/table.cpp.o.d"
  "libwp_support.a"
  "libwp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
