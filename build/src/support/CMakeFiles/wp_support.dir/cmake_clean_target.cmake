file(REMOVE_RECURSE
  "libwp_support.a"
)
