# Empty dependencies file for wp_support.
# This may be replaced when dependencies are built.
