file(REMOVE_RECURSE
  "libwp_ir.a"
)
