file(REMOVE_RECURSE
  "CMakeFiles/wp_ir.dir/module.cpp.o"
  "CMakeFiles/wp_ir.dir/module.cpp.o.d"
  "libwp_ir.a"
  "libwp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
