# Empty compiler generated dependencies file for wp_ir.
# This may be replaced when dependencies are built.
