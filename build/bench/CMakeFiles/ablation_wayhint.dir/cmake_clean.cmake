file(REMOVE_RECURSE
  "CMakeFiles/ablation_wayhint.dir/ablation_wayhint.cpp.o"
  "CMakeFiles/ablation_wayhint.dir/ablation_wayhint.cpp.o.d"
  "ablation_wayhint"
  "ablation_wayhint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wayhint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
