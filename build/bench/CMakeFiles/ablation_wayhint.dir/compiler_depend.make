# Empty compiler generated dependencies file for ablation_wayhint.
# This may be replaced when dependencies are built.
