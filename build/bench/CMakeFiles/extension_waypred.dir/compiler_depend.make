# Empty compiler generated dependencies file for extension_waypred.
# This may be replaced when dependencies are built.
