file(REMOVE_RECURSE
  "CMakeFiles/extension_waypred.dir/extension_waypred.cpp.o"
  "CMakeFiles/extension_waypred.dir/extension_waypred.cpp.o.d"
  "extension_waypred"
  "extension_waypred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_waypred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
