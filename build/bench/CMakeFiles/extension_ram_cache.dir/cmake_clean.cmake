file(REMOVE_RECURSE
  "CMakeFiles/extension_ram_cache.dir/extension_ram_cache.cpp.o"
  "CMakeFiles/extension_ram_cache.dir/extension_ram_cache.cpp.o.d"
  "extension_ram_cache"
  "extension_ram_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_ram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
