# Empty compiler generated dependencies file for extension_ram_cache.
# This may be replaced when dependencies are built.
