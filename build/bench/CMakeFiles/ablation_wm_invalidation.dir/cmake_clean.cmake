file(REMOVE_RECURSE
  "CMakeFiles/ablation_wm_invalidation.dir/ablation_wm_invalidation.cpp.o"
  "CMakeFiles/ablation_wm_invalidation.dir/ablation_wm_invalidation.cpp.o.d"
  "ablation_wm_invalidation"
  "ablation_wm_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wm_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
