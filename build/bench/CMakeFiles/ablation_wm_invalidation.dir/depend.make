# Empty dependencies file for ablation_wm_invalidation.
# This may be replaced when dependencies are built.
