# Empty compiler generated dependencies file for fig6_cache_configs.
# This may be replaced when dependencies are built.
