file(REMOVE_RECURSE
  "CMakeFiles/fig6_cache_configs.dir/fig6_cache_configs.cpp.o"
  "CMakeFiles/fig6_cache_configs.dir/fig6_cache_configs.cpp.o.d"
  "fig6_cache_configs"
  "fig6_cache_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cache_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
