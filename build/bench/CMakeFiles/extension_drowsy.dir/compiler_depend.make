# Empty compiler generated dependencies file for extension_drowsy.
# This may be replaced when dependencies are built.
