file(REMOVE_RECURSE
  "CMakeFiles/extension_drowsy.dir/extension_drowsy.cpp.o"
  "CMakeFiles/extension_drowsy.dir/extension_drowsy.cpp.o.d"
  "extension_drowsy"
  "extension_drowsy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_drowsy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
