# Empty compiler generated dependencies file for fig4_initial_eval.
# This may be replaced when dependencies are built.
