file(REMOVE_RECURSE
  "CMakeFiles/fig4_initial_eval.dir/fig4_initial_eval.cpp.o"
  "CMakeFiles/fig4_initial_eval.dir/fig4_initial_eval.cpp.o.d"
  "fig4_initial_eval"
  "fig4_initial_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_initial_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
