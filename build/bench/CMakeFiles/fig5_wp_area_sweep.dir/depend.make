# Empty dependencies file for fig5_wp_area_sweep.
# This may be replaced when dependencies are built.
