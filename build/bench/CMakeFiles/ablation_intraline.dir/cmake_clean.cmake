file(REMOVE_RECURSE
  "CMakeFiles/ablation_intraline.dir/ablation_intraline.cpp.o"
  "CMakeFiles/ablation_intraline.dir/ablation_intraline.cpp.o.d"
  "ablation_intraline"
  "ablation_intraline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_intraline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
