# Empty compiler generated dependencies file for ablation_intraline.
# This may be replaced when dependencies are built.
