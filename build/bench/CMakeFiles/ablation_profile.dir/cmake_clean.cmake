file(REMOVE_RECURSE
  "CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o"
  "CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o.d"
  "ablation_profile"
  "ablation_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
