# Empty dependencies file for ablation_profile.
# This may be replaced when dependencies are built.
