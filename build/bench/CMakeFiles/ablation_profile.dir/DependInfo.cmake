
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_profile.cpp" "bench/CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o" "gcc" "bench/CMakeFiles/ablation_profile.dir/ablation_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/wp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/wp_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/wp_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/wp_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/wp_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/wp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/wp_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/wp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/wp_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asmkit/CMakeFiles/wp_asmkit.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/wp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/wp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/wp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
