# Empty compiler generated dependencies file for wp_bench_common.
# This may be replaced when dependencies are built.
