file(REMOVE_RECURSE
  "CMakeFiles/wp_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/wp_bench_common.dir/bench_common.cpp.o.d"
  "libwp_bench_common.a"
  "libwp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
