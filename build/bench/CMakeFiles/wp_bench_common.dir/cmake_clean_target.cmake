file(REMOVE_RECURSE
  "libwp_bench_common.a"
)
