// Shared harness for the figure/table benches, on top of the parallel
// sweep executor in src/driver/sweep.hpp: prepares the benchmark suite
// once (profile on small input + way-placement layout) and prices
// arbitrary (geometry, scheme) combinations across a thread pool.
//
// Environment knobs:
//   WP_BENCH_WORKLOADS  comma-separated subset (default: all 23);
//                       unknown names are a startup error
//   WP_SEED             experiment-wide RNG seed (default: 0, the
//                       historical fixed inputs)
//   WP_JOBS             worker threads (default: hardware threads)
//   WP_LAYOUT           code-layout strategy for way-placement cells
//                       (default: way_placement; unknown names are a
//                       startup error listing the registry)
//   WP_JSON             path for the machine-readable cell report
//   WP_TRACE            path for the JSONL sweep event log
#pragma once

#include <string>
#include <vector>

#include "driver/sweep.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wp::bench {

/// Workload names selected by WP_BENCH_WORKLOADS (default: full suite).
/// Every name is validated against workloads::suiteNames(); a typo
/// exits with the bad name and the valid list instead of failing deep
/// inside workload construction.
[[nodiscard]] std::vector<std::string> selectedWorkloads();

/// Experiment-wide RNG seed from WP_SEED (default 0); every bench
/// prints it in its header so any figure replays from the logged value.
/// Strictly parsed — `WP_SEED=abc` is a startup error, not seed 0.
[[nodiscard]] u64 experimentSeed();

/// The suite executor every bench runs on: selected workloads, default
/// energy parameters, WP_SEED, WP_JOBS. Call emitJsonIfRequested() on
/// it after the tables are printed.
[[nodiscard]] driver::SweepExecutor makeSuite();

/// The paper's initial configuration: 32 KB, 32-way, 32 B lines.
[[nodiscard]] inline cache::CacheGeometry initialICache() {
  return {32 * 1024, 32, 32};
}

/// Prints a standard bench header naming the figure being regenerated,
/// the experiment seed and the worker-thread count.
void printHeader(const std::string& title, const std::string& paper_ref);

/// Standard bench epilogue: prints the one-line throughput/progress
/// summary to stderr (stderr so stdout tables stay byte-identical at
/// any WP_JOBS) and emits the WP_JSON report if requested. When any
/// cell was quarantined, a degradation footer listing every QUAR cell
/// goes to stdout (part of the result, not a log line). Returns the
/// bench exit code — every fig/ablation/extension bench ends with
/// `return bench::finish(suite);`:
///   0  clean sweep, every cell priced
///   3  degraded-but-complete: >=1 cell quarantined, tables rendered
///      with QUAR markers and the remaining cells are trustworthy
///   5  interrupted: SIGTERM/SIGINT latched mid-sweep (makeSuite
///      installs the process shutdown latch) — cells that never
///      started render as QUAR behind an INTERRUPTED footer, and the
///      partial WP_JSON report is still flushed before exit
[[nodiscard]] int finish(const driver::SweepExecutor& suite);

/// Renders a checked suite average as a percentage table cell: "QUAR"
/// when every contributing cell was quarantined, the value with a '*'
/// suffix when only some were (the footer printed by finish() explains
/// the markers).
[[nodiscard]] std::string cellPct(
    const driver::SweepExecutor::SuiteAverage& a, int decimals = 1);

/// Same for plain numeric cells (ED products, ratios).
[[nodiscard]] std::string cellNum(
    const driver::SweepExecutor::SuiteAverage& a, int decimals = 3);

/// Throughput summary for benches that drive a bare Runner (no sweep
/// executor, so no memo/JSON): guest instructions, host simulate time
/// and MIPS from the runner's phase metrics. Printed to stderr.
void printRunnerSummary(const driver::Runner& runner);

}  // namespace wp::bench
