// Shared harness for the figure/table benches: prepares the benchmark
// suite once (profile on small input + way-placement layout) and runs
// priced simulations for arbitrary (geometry, scheme) combinations.
//
// Environment knobs:
//   WP_BENCH_WORKLOADS  comma-separated subset (default: all 23)
//   WP_SEED             experiment-wide RNG seed (default: 0, the
//                       historical fixed inputs)
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "driver/runner.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace wp::bench {

/// Workload names selected by WP_BENCH_WORKLOADS (default: full suite).
[[nodiscard]] std::vector<std::string> selectedWorkloads();

/// Experiment-wide RNG seed from WP_SEED (default 0); every bench
/// prints it in its header so any figure replays from the logged value.
[[nodiscard]] u64 experimentSeed();

class SuiteRunner {
 public:
  SuiteRunner();

  [[nodiscard]] const std::vector<driver::PreparedWorkload>& prepared() const {
    return prepared_;
  }
  [[nodiscard]] const driver::Runner& runner() const { return runner_; }

  /// Runs one scheme for one workload (results are memoized per
  /// (workload, geometry, scheme-key) so baselines are shared).
  const driver::RunResult& run(const driver::PreparedWorkload& p,
                               const cache::CacheGeometry& icache,
                               const driver::SchemeSpec& spec);

  /// Average of `metric(normalize(scheme, baseline))` across the suite.
  double averageNormalized(
      const cache::CacheGeometry& icache, const driver::SchemeSpec& spec,
      const std::function<double(const driver::Normalized&)>& metric);

 private:
  [[nodiscard]] static std::string keyOf(const std::string& workload,
                                         const cache::CacheGeometry& g,
                                         const driver::SchemeSpec& s);

  driver::Runner runner_;
  std::vector<driver::PreparedWorkload> prepared_;
  std::map<std::string, driver::RunResult> cache_;
};

/// The paper's initial configuration: 32 KB, 32-way, 32 B lines.
[[nodiscard]] inline cache::CacheGeometry initialICache() {
  return {32 * 1024, 32, 32};
}

/// Prints a standard bench header naming the figure being regenerated.
void printHeader(const std::string& title, const std::string& paper_ref);

}  // namespace wp::bench
