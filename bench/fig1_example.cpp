// Figure 1: the worked example — three instructions (add @0x04, br
// @0x08, mul @0x20) fetched from a 2-set, 4-way cache. A normal cache
// performs 12 tag comparisons; way-placement performs 3.
#include <iostream>

#include "bench_common.hpp"
#include "cache/fetch_path.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 1: way-placement example (2 sets x 4 ways)", "Figure 1");

  // The figure draws single-instruction lines: tag(0x04)=1, tag(0x08)=2,
  // tag(0x20)=8 with two sets selected by bit 2.
  const cache::CacheGeometry tiny{2 * 4 * 4, 4, 4};  // 2 sets, 4 ways, 4 B

  const auto countTagChecks = [&](cache::Scheme scheme) {
    cache::FetchPathConfig cfg;
    cfg.icache = tiny;
    cfg.scheme = scheme;
    cfg.wp_area_bytes = scheme == cache::Scheme::kWayPlacement
                            ? mem::kPageBytes
                            : 0;
    cfg.intraline_skip = false;  // the figure counts raw accesses
    cache::FetchPath fp(cfg);
    // Warm the cache so only the steady-state comparisons are counted,
    // as in the figure (which assumes the lines are resident).
    fp.fetch(0x04, cache::FetchFlow::kSequential);
    fp.fetch(0x08, cache::FetchFlow::kSequential);
    fp.fetch(0x20, cache::FetchFlow::kSequential);
    const u64 warm = fp.cacheStats().tag_compares;
    fp.fetch(0x04, cache::FetchFlow::kTakenDirect);  // add  (set 0)
    fp.fetch(0x08, cache::FetchFlow::kSequential);   // br   (set 0... line 0)
    fp.fetch(0x20, cache::FetchFlow::kTakenDirect);  // mul  (set 1)
    return fp.cacheStats().tag_compares - warm;
  };

  // The figure's three instructions touch two lines of one set and one
  // line of the other; with 4 ways a normal access checks 4 tags each.
  const u64 normal = countTagChecks(cache::Scheme::kBaseline);
  const u64 placed = countTagChecks(cache::Scheme::kWayPlacement);

  TextTable t;
  t.header({"access mode", "tag comparisons", "paper"});
  t.row({"normal (fig 1b)", std::to_string(normal), "12"});
  t.row({"way-placement (fig 1c)", std::to_string(placed), "3"});
  t.print(std::cout);

  std::cout << "\nsaving: " << fmtPct(1.0 - double(placed) / double(normal), 0)
            << " of tag comparisons (paper: 75%)\n";
  return normal == 12 && placed == 3 ? 0 : 1;
}
