#include "bench_common.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "support/shutdown.hpp"
#include "workloads/workload.hpp"

namespace wp::bench {

std::vector<std::string> selectedWorkloads() {
  const std::vector<std::string> all = workloads::suiteNames();
  const char* env = std::getenv("WP_BENCH_WORKLOADS");
  if (env == nullptr || *env == '\0') return all;
  std::vector<std::string> names;
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    if (std::find(all.begin(), all.end(), item) == all.end()) {
      std::fprintf(stderr,
                   "error: WP_BENCH_WORKLOADS names unknown workload "
                   "'%s'; valid names are:\n ",
                   item.c_str());
      for (const std::string& n : all) std::fprintf(stderr, " %s", n.c_str());
      std::fprintf(stderr, "\n");
      std::exit(1);
    }
    names.push_back(item);
  }
  return names;
}

u64 experimentSeed() {
  const char* env = std::getenv("WP_SEED");
  if (env == nullptr || *env == '\0') return 0;
  errno = 0;
  char* end = nullptr;
  const u64 seed = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0' || errno == ERANGE) {
    std::fprintf(stderr,
                 "error: WP_SEED='%s' is not a valid seed (expected an "
                 "unsigned 64-bit integer, decimal or 0x-hex)\n",
                 env);
    std::exit(1);
  }
  return seed;
}

driver::SweepExecutor makeSuite() {
  // Every bench is interrupt-aware: SIGTERM/SIGINT latches, cells that
  // have not started quarantine as `interrupted`, and finish() flushes
  // the partial WP_JSON report and exits 5 instead of losing the run.
  ShutdownLatch& latch = ShutdownLatch::instance();
  latch.install();
  return driver::SweepExecutor(selectedWorkloads(), energy::EnergyParams{},
                               experimentSeed(), 0, nullptr, &latch);
}

int finish(const driver::SweepExecutor& suite) {
  std::vector<driver::SweepExecutor::QuarantinedCell> failed;
  std::size_t interrupted = 0;
  for (auto& q : suite.quarantined()) {
    if (q.interrupted) {
      ++interrupted;
    } else {
      failed.push_back(std::move(q));
    }
  }
  if (!failed.empty()) {
    // Part of the bench's result, so it goes to stdout with the tables:
    // anyone diffing output sees exactly which cells the averages lost.
    std::cout << "\nDEGRADED RESULTS: " << failed.size()
              << " cell(s) quarantined after exhausting retries; averages "
                 "marked '*' exclude them, cells marked QUAR have no "
                 "surviving data.\n";
    for (const auto& q : failed) {
      std::cout << "  QUAR " << q.error << "\n";
    }
  }
  const bool was_interrupted = ShutdownLatch::instance().requested();
  if (was_interrupted) {
    // A count, not a listing: an early SIGTERM can skip hundreds of
    // cells, and the point of the footer is "this table is partial",
    // not a per-cell audit (the WP_JSON quarantined section has that).
    std::cout << "\nINTERRUPTED SWEEP: shutdown signal received; "
              << interrupted
              << " cell(s) were never started and render as QUAR. Partial "
                 "results above are trustworthy; rerun to complete.\n";
  }
  suite.printSummary(std::cerr);
  suite.emitJsonIfRequested();
  if (was_interrupted) return 5;
  return failed.empty() ? 0 : 3;
}

std::string cellPct(const driver::SweepExecutor::SuiteAverage& a,
                    int decimals) {
  if (a.included == 0) return "QUAR";
  return fmtPct(a.mean, decimals) + (a.degraded() ? "*" : "");
}

std::string cellNum(const driver::SweepExecutor::SuiteAverage& a,
                    int decimals) {
  if (a.included == 0) return "QUAR";
  return fmt(a.mean, decimals) + (a.degraded() ? "*" : "");
}

void printRunnerSummary(const driver::Runner& runner) {
  MetricsRegistry& m = runner.metrics();
  const double simulate = m.timer("phase.simulate").seconds();
  const u64 insts = m.counter("guest.instructions").value();
  std::fprintf(stderr,
               "[wayplace] runner: %llu simulations, %.1fM guest insts, "
               "simulate %.2fs host (%.1f MIPS)\n",
               static_cast<unsigned long long>(
                   m.timer("phase.simulate").count()),
               static_cast<double>(insts) / 1e6, simulate,
               simulate > 0.0
                   ? static_cast<double>(insts) / simulate / 1e6
                   : 0.0);
}

void printHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref
            << " of Jones et al., DATE 2008)\n"
            << "experiment seed: " << experimentSeed()
            << " (set WP_SEED to change), jobs: " << driver::jobsFromEnv()
            << " (set WP_JOBS to change)\n"
            << "==============================================================\n\n";
}

}  // namespace wp::bench
