#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "workloads/workload.hpp"

namespace wp::bench {

std::vector<std::string> selectedWorkloads() {
  const char* env = std::getenv("WP_BENCH_WORKLOADS");
  if (env == nullptr || *env == '\0') return workloads::suiteNames();
  std::vector<std::string> names;
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) names.push_back(item);
  }
  return names;
}

u64 experimentSeed() {
  const char* env = std::getenv("WP_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 0);
}

SuiteRunner::SuiteRunner() : runner_(energy::EnergyParams{}, experimentSeed()) {
  const auto names = selectedWorkloads();
  std::cerr << "preparing " << names.size()
            << " workloads (profile + layout)...\n";
  for (const std::string& name : names) {
    prepared_.push_back(runner_.prepare(name));
  }
}

std::string SuiteRunner::keyOf(const std::string& workload,
                               const cache::CacheGeometry& g,
                               const driver::SchemeSpec& s) {
  std::ostringstream os;
  os << workload << '/' << g.size_bytes << '/' << g.ways << '/'
     << g.line_bytes << '/' << static_cast<int>(s.scheme) << '/'
     << s.wp_area_bytes << '/' << s.intraline_skip << '/'
     << s.wm_precise_invalidation << '/' << s.drowsy_window << '/'
     << static_cast<int>(s.layout);
  if (s.fault.runtimeEnabled()) {
    os << "/f" << s.fault.period << ':' << s.fault.seed << ':'
       << s.fault.flip_way_hint << s.fault.flip_tlb_wp_bit
       << s.fault.clear_tlb_wp_bits << s.fault.scramble_memo_links
       << s.fault.scramble_mru << s.fault.resize_storm;
  }
  return os.str();
}

const driver::RunResult& SuiteRunner::run(const driver::PreparedWorkload& p,
                                          const cache::CacheGeometry& icache,
                                          const driver::SchemeSpec& spec) {
  const std::string key = keyOf(p.name, icache, spec);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(key, runner_.run(p, icache, spec)).first->second;
}

double SuiteRunner::averageNormalized(
    const cache::CacheGeometry& icache, const driver::SchemeSpec& spec,
    const std::function<double(const driver::Normalized&)>& metric) {
  Accumulator acc;
  for (const auto& p : prepared_) {
    const driver::RunResult& base =
        run(p, icache, driver::SchemeSpec::baseline());
    const driver::RunResult& r = run(p, icache, spec);
    acc.add(metric(driver::normalize(r, base)));
  }
  return acc.mean();
}

void printHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref
            << " of Jones et al., DATE 2008)\n"
            << "experiment seed: " << experimentSeed()
            << " (set WP_SEED to change)\n"
            << "==============================================================\n\n";
}

}  // namespace wp::bench
