// Resilience sweep: injects every fault class into every fault-bearing
// scheme and checks the architectural-equivalence invariant — the
// retired instruction stream, data flow and workload output of a
// faulted run must be bit-identical to the fault-free run, while energy
// and delay may degrade boundedly. Exits non-zero on any violation, so
// this doubles as a long-form resilience regression test.
//
// Environment knobs: WP_BENCH_WORKLOADS, WP_SEED (see bench_common.hpp).
#include <dirent.h>
#include <unistd.h>

#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"

namespace {

using namespace wp;

struct ClassSpec {
  const char* name;
  fault::FaultSpec spec;
};

fault::FaultSpec one(bool fault::FaultSpec::* flag, u64 period) {
  fault::FaultSpec s;
  s.period = period;
  s.*flag = true;
  return s;
}

}  // namespace

int main() {
  bench::printHeader(
      "Resilience sweep: fault injection vs architectural equivalence",
      "the safety argument of section 4.1");

  const u64 kPeriod = 101;  // prime, so injections drift across loops
  const ClassSpec kClasses[] = {
      {"hint-flip", one(&fault::FaultSpec::flip_way_hint, kPeriod)},
      {"tlb-bit-flip", one(&fault::FaultSpec::flip_tlb_wp_bit, kPeriod)},
      {"tlb-bit-clear", one(&fault::FaultSpec::clear_tlb_wp_bits, kPeriod)},
      {"link-scramble", one(&fault::FaultSpec::scramble_memo_links, kPeriod)},
      {"mru-scramble", one(&fault::FaultSpec::scramble_mru, kPeriod)},
      {"resize-storm", one(&fault::FaultSpec::resize_storm, kPeriod)},
      {"all-classes", fault::FaultSpec::allClasses(kPeriod)},
  };

  const struct {
    const char* name;
    driver::SchemeSpec spec;
  } kSchemes[] = {
      {"way-placement", driver::SchemeSpec::wayPlacement(16 * 1024)},
      {"way-memoization", driver::SchemeSpec::wayMemoization()},
      {"way-prediction", driver::SchemeSpec::wayPrediction()},
  };

  // A fast, branchy subset; the full suite works but takes minutes.
  const std::vector<std::string> kDefault = {"crc", "sha", "bitcount"};

  driver::Runner runner(energy::EnergyParams{}, bench::experimentSeed());
  const cache::CacheGeometry geom = bench::initialICache();

  TextTable t;
  t.header({"workload", "scheme", "fault class", "events", "d-energy",
            "d-delay", "equivalent"});

  bool all_ok = true;
  const char* env = std::getenv("WP_BENCH_WORKLOADS");
  const auto names = (env != nullptr && *env != '\0')
                         ? bench::selectedWorkloads()
                         : kDefault;
  for (const std::string& name : names) {
    const driver::PreparedWorkload p = runner.prepare(name);
    for (const auto& sch : kSchemes) {
      const driver::RunResult clean = runner.run(p, geom, sch.spec);
      for (const ClassSpec& cls : kClasses) {
        driver::SchemeSpec spec = sch.spec;
        spec.fault = cls.spec;
        const driver::RunResult faulted = runner.run(p, geom, spec);
        if (faulted.injected.events == 0) continue;  // class not applicable

        const bool ok =
            faulted.stats.retired_pc_hash == clean.stats.retired_pc_hash &&
            faulted.stats.dataflow_hash == clean.stats.dataflow_hash &&
            faulted.stats.instructions == clean.stats.instructions &&
            faulted.output == clean.output &&
            faulted.output == p.workload->expected(workloads::InputSize::kLarge);
        all_ok = all_ok && ok;

        const double de = faulted.energy.total() / clean.energy.total() - 1.0;
        const double dd = static_cast<double>(faulted.stats.cycles) /
                              static_cast<double>(clean.stats.cycles) -
                          1.0;
        t.row({name, sch.name, cls.name,
               std::to_string(faulted.injected.events), fmtPct(de, 2),
               fmtPct(dd, 2), ok ? "yes" : "NO"});
      }
    }
  }
  t.print(std::cout);

  std::cout << "\ninvariant: faulted retired stream, data flow and outputs "
            << (all_ok ? "bit-identical to fault-free runs\n"
                       : "DIVERGED — way-placement state leaked into "
                         "correctness\n");
  bench::printRunnerSummary(runner);

  // --- Cell supervision: whole-cell faults (a simulation that throws
  // SimError mid-run) are the other resilience axis. A transient fault
  // must heal on retry with a result bit-identical to the clean cell
  // (the retry replays the same deterministic simulation), and a
  // persistent fault must quarantine instead of aborting the sweep.
  std::cout << "\ncell supervision (retries=2, way-placement 16KB):\n";
  driver::SupervisorConfig cfg;
  cfg.retries = 2;
  driver::SweepExecutor suite(names, energy::EnergyParams{},
                              bench::experimentSeed(), 0, &cfg);
  const driver::SchemeSpec wp_clean =
      driver::SchemeSpec::wayPlacement(16 * 1024);
  driver::SchemeSpec wp_transient = wp_clean;
  wp_transient.fault.cell_fault = fault::CellFault::kTransient;
  wp_transient.fault.cell_fault_failures = 1;
  driver::SchemeSpec wp_persistent = wp_clean;
  wp_persistent.fault.cell_fault = fault::CellFault::kPersistent;
  suite.runAll(
      {{geom, wp_clean}, {geom, wp_transient}, {geom, wp_persistent}});

  TextTable st;
  st.header({"workload", "transient fate", "attempts", "healed == clean",
             "persistent fate"});
  for (const auto& p : suite.prepared()) {
    const auto clean = suite.tryRun(p, geom, wp_clean);
    const auto healed = suite.tryRun(p, geom, wp_transient);
    const auto quar = suite.tryRun(p, geom, wp_persistent);
    const bool healed_ok = !clean.quarantined && !healed.quarantined &&
                           healed.attempts == 2;
    const bool equal =
        healed_ok &&
        driver::statsDigest(*healed.result) ==
            driver::statsDigest(*clean.result) &&
        healed.result->output == clean.result->output;
    const bool quar_ok =
        quar.quarantined && quar.error != nullptr &&
        quar.error->find(driver::SweepExecutor::keyOf(
            p.name, geom, wp_persistent)) != std::string::npos;
    all_ok = all_ok && equal && quar_ok;
    st.row({p.name, healed_ok ? "healed" : "NOT HEALED",
            std::to_string(healed.attempts), equal ? "yes" : "NO",
            quar_ok ? "quarantined" : "NOT QUARANTINED"});
  }
  st.print(std::cout);

  std::cout << "\nsupervision invariant: transient cell faults heal with "
            << (all_ok ? "bit-identical results;\npersistent ones quarantine "
                         "instead of aborting the sweep\n"
                       : "DIVERGENCE or a missed quarantine — the\n"
                         "supervision layer is broken\n");
  suite.printSummary(std::cerr);

  // --- Process isolation: crash and hang cell faults kill the attempt
  // dead (SIGKILL / a loop that never retires an instruction), so only
  // a forked worker can contain them. A crash:1 cell must heal on the
  // retry bit-identically to the clean cell; a hung cell must be killed
  // by the parent-side wall-clock and quarantined — while the rest of
  // the sweep keeps running in this very process.
  std::cout << "\nprocess isolation (WP_ISOLATE semantics, retries=2):\n";
  driver::SupervisorConfig icfg;
  icfg.retries = 2;
  icfg.isolate = true;
  icfg.cell_timeout_ms = 30000;
  driver::SweepExecutor iso(names, energy::EnergyParams{},
                            bench::experimentSeed(), 0, &icfg);
  driver::SchemeSpec wp_crash = wp_clean;
  wp_crash.fault.cell_fault = fault::CellFault::kCrash;
  wp_crash.fault.cell_fault_failures = 1;
  iso.runAll({{geom, wp_clean}, {geom, wp_crash}});

  TextTable it;
  it.header({"workload", "crash fate", "attempts", "healed == clean"});
  for (const auto& p : iso.prepared()) {
    const auto clean = iso.tryRun(p, geom, wp_clean);
    const auto healed = iso.tryRun(p, geom, wp_crash);
    const bool healed_ok = !clean.quarantined && !healed.quarantined &&
                           healed.attempts == 2;
    const bool equal = healed_ok &&
                       driver::statsDigest(*healed.result) ==
                           driver::statsDigest(*clean.result);
    all_ok = all_ok && equal;
    it.row({p.name, healed_ok ? "healed" : "NOT HEALED",
            std::to_string(healed.attempts), equal ? "yes" : "NO"});
  }
  it.print(std::cout);
  std::cout << "\nisolation invariant: a SIGKILLed attempt costs one retry, "
            << (all_ok ? "never the bench\n" : "BUT THE LADDER BROKE\n");
  iso.printSummary(std::cerr);

  // --- Result store: a second sweep against the store the first one
  // populated must serve every cell from disk (zero computes) with
  // results byte-identical to the computed ones.
  std::cout << "\nresult store (cold populate, warm serve):\n";
  const char* tmp = std::getenv("TMPDIR");
  const std::string store_dir =
      std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
      "/wayplace-resilience-store-" +
      std::to_string(bench::experimentSeed());
  // Start cold even after a previous bench run left records behind.
  if (DIR* d = ::opendir(store_dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((store_dir + "/" + n).c_str());
    }
    ::closedir(d);
  }
  ::setenv("WP_STORE", store_dir.c_str(), 1);
  double cold_e = 0.0;
  double warm_e = 0.0;
  u64 warm_computed = 0;
  u64 warm_hits = 0;
  {
    driver::SweepExecutor cold(names, energy::EnergyParams{},
                               bench::experimentSeed(), 0);
    cold_e = cold.averageNormalized(
        geom, wp_clean,
        [](const driver::Normalized& n) { return n.icache_energy; });
    cold.printSummary(std::cerr);
  }
  {
    driver::SweepExecutor warm(names, energy::EnergyParams{},
                               bench::experimentSeed(), 0);
    warm_e = warm.averageNormalized(
        geom, wp_clean,
        [](const driver::Normalized& n) { return n.icache_energy; });
    warm_computed = warm.metrics().counter("cells.computed").value();
    warm_hits = warm.metrics().counter("store.hits").value();
    warm.printSummary(std::cerr);
  }
  ::unsetenv("WP_STORE");
  const bool store_ok =
      warm_e == cold_e && warm_computed == 0 && warm_hits > 0;
  all_ok = all_ok && store_ok;
  std::cout << "cold mean icache energy: " << cold_e
            << "\nwarm mean icache energy: " << warm_e << " ("
            << warm_hits << " store hit(s), " << warm_computed
            << " computed)\n\nstore invariant: a warm store serves "
            << (store_ok ? "byte-identical results without recomputing\n"
                         : "WRONG OR RECOMPUTED results — the store is "
                           "broken\n");

  // --- Switch storms: a multiprogrammed co-run at a tiny quantum is a
  // per-switch flush storm — every context switch flushes the VIVT
  // I-cache, flash-clears the memo links, resets the way hint and
  // (with drowsy lines on) must leave every line asleep; FetchPath
  // ENSUREs awakeLines() == 0 after each storm, so a violation throws
  // and fails this bench. Through thousands of storms each guest's
  // retired stream, data flow and output must still equal its solo run.
  std::cout << "\nswitch storms (quantum 997, flush policy):\n";
  {
    const driver::PreparedWorkload storm_p = runner.prepare(names.front());
    const driver::PreparedWorkload storm_q =
        runner.prepare(names.size() > 1 ? names[1] : names.front());
    const struct {
      const char* name;
      driver::SchemeSpec spec;
    } kStormConfigs[] = {
        {"way-placement 16KB + drowsy-16",
         [] {
           driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(16 * 1024);
           s.drowsy_window = 16;  // every switch must re-drowse the cache
           return s;
         }()},
        {"way-memoization (link storms)",
         driver::SchemeSpec::wayMemoization()},
    };

    TextTable storms;
    storms.header({"config", "switches", "link storms", "drowsy wakeups",
                   "solo-equal"});
    bool storm_ok = true;
    for (const auto& cfg : kStormConfigs) {
      const driver::RunResult solo_p = runner.run(storm_p, geom, cfg.spec);
      const driver::RunResult solo_q = runner.run(storm_q, geom, cfg.spec);
      driver::SchemeSpec co_spec = cfg.spec;
      co_spec.corun_quantum = 997;  // prime: storms drift across loops
      co_spec.corun_tlb = cache::TlbSwitchPolicy::kFlush;
      driver::Runner::CoRunExtra extra;
      const driver::RunResult co =
          runner.runCoRun({&storm_p, &storm_q}, geom, co_spec,
                          workloads::InputSize::kLarge, nullptr, &extra);
      const bool ok =
          extra.processes.size() == 2 &&
          extra.processes[0].retired_pc_hash ==
              solo_p.stats.retired_pc_hash &&
          extra.processes[0].dataflow_hash == solo_p.stats.dataflow_hash &&
          extra.processes[0].output ==
              storm_p.workload->expected(workloads::InputSize::kLarge) &&
          extra.processes[1].retired_pc_hash ==
              solo_q.stats.retired_pc_hash &&
          extra.processes[1].dataflow_hash == solo_q.stats.dataflow_hash &&
          extra.processes[1].output ==
              storm_q.workload->expected(workloads::InputSize::kLarge);
      storm_ok = storm_ok && ok;
      storms.row({cfg.name, std::to_string(extra.context_switches),
                  std::to_string(co.stats.link_flash_clears),
                  std::to_string(co.stats.drowsy.wakeups),
                  ok ? "yes" : "NO"});
    }
    storms.print(std::cout);
    all_ok = all_ok && storm_ok;
    std::cout << "\nstorm invariant: per-switch flush storms leave every "
                 "drowsy line asleep and the guests "
              << (storm_ok ? "solo-identical\n"
                           : "DIVERGED from their solo runs\n");
  }
  return all_ok ? 0 : 1;
}
