// Figure 5: effect of the way-placement area size. The 32 KB 32-way
// cache with areas of 16, 8, 4, 2, 1 KB (no recompilation — the same
// chained binary, only the OS page-attribute limit changes), averaged
// across all benchmarks; way-memoization shown for reference.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 5: way-placement area size sweep\n"
      "32KB 32-way I-cache, areas 16KB..1KB, suite average",
      "Figure 5 (a) and (b) and Section 6.2");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  // Fan the whole grid out before reading any cell, so the pool works
  // on every area size at once instead of draining per table row.
  std::vector<driver::SweepExecutor::Cell> grid;
  grid.push_back({icache, driver::SchemeSpec::wayMemoization()});
  for (const u32 kb : {16u, 8u, 4u, 2u, 1u}) {
    grid.push_back({icache, driver::SchemeSpec::wayPlacement(kb * 1024)});
  }
  suite.runAll(grid);

  TextTable t;
  t.header({"scheme", "I$ energy (avg)", "ED product (avg)"});

  const double wm_e = suite.averageNormalized(
      icache, driver::SchemeSpec::wayMemoization(),
      [](const driver::Normalized& n) { return n.icache_energy; });
  const double wm_ed = suite.averageNormalized(
      icache, driver::SchemeSpec::wayMemoization(),
      [](const driver::Normalized& n) { return n.ed_product; });
  t.row({"way-memoization", fmtPct(wm_e, 1), fmt(wm_ed, 3)});
  t.separator();

  double e_1k = 0.0, ed_1k = 0.0;
  for (const u32 kb : {16u, 8u, 4u, 2u, 1u}) {
    const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(kb * 1024);
    const double e = suite.averageNormalized(
        icache, wp, [](const driver::Normalized& n) { return n.icache_energy; });
    const double ed = suite.averageNormalized(
        icache, wp, [](const driver::Normalized& n) { return n.ed_product; });
    t.row({"way-placement " + std::to_string(kb) + "KB", fmtPct(e, 1),
           fmt(ed, 3)});
    if (kb == 1) {
      e_1k = e;
      ed_1k = ed;
    }
  }
  t.print(std::cout);

  std::cout << "\nSummary vs paper Section 6.2:\n"
            << "  1KB area reduces I-cache energy to " << fmtPct(e_1k, 1)
            << " of baseline (paper: 56%) with ED " << fmt(ed_1k, 2)
            << " (paper: 0.94)\n"
            << "  way-memoization only reaches " << fmtPct(wm_e, 1)
            << " (paper: 68%)\n";
  bench::finish(suite);
  return 0;
}
