// Figure 5: effect of the way-placement area size. The 32 KB 32-way
// cache with areas of 16, 8, 4, 2, 1 KB (no recompilation — the same
// chained binary, only the OS page-attribute limit changes), averaged
// across all benchmarks; way-memoization shown for reference.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 5: way-placement area size sweep\n"
      "32KB 32-way I-cache, areas 16KB..1KB, suite average",
      "Figure 5 (a) and (b) and Section 6.2");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  // Fan the whole grid out before reading any cell, so the pool works
  // on every area size at once instead of draining per table row.
  std::vector<driver::SweepExecutor::Cell> grid;
  grid.push_back({icache, driver::SchemeSpec::wayMemoization()});
  for (const u32 kb : {16u, 8u, 4u, 2u, 1u}) {
    grid.push_back({icache, driver::SchemeSpec::wayPlacement(kb * 1024)});
  }
  suite.runAll(grid);

  TextTable t;
  t.header({"scheme", "I$ energy (avg)", "ED product (avg)"});

  const auto wm_e = suite.averageNormalizedChecked(
      icache, driver::SchemeSpec::wayMemoization(),
      [](const driver::Normalized& n) { return n.icache_energy; });
  const auto wm_ed = suite.averageNormalizedChecked(
      icache, driver::SchemeSpec::wayMemoization(),
      [](const driver::Normalized& n) { return n.ed_product; });
  t.row({"way-memoization", bench::cellPct(wm_e, 1), bench::cellNum(wm_ed, 3)});
  t.separator();

  driver::SweepExecutor::SuiteAverage e_1k, ed_1k;
  for (const u32 kb : {16u, 8u, 4u, 2u, 1u}) {
    const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(kb * 1024);
    const auto e = suite.averageNormalizedChecked(
        icache, wp, [](const driver::Normalized& n) { return n.icache_energy; });
    const auto ed = suite.averageNormalizedChecked(
        icache, wp, [](const driver::Normalized& n) { return n.ed_product; });
    t.row({"way-placement " + std::to_string(kb) + "KB", bench::cellPct(e, 1),
           bench::cellNum(ed, 3)});
    if (kb == 1) {
      e_1k = e;
      ed_1k = ed;
    }
  }
  t.print(std::cout);

  std::cout << "\nSummary vs paper Section 6.2:\n"
            << "  1KB area reduces I-cache energy to " << bench::cellPct(e_1k, 1)
            << " of baseline (paper: 56%) with ED " << bench::cellNum(ed_1k, 2)
            << " (paper: 0.94)\n"
            << "  way-memoization only reaches " << bench::cellPct(wm_e, 1)
            << " (paper: 68%)\n";
  return bench::finish(suite);
}
