// Ablation A3: how much of each scheme's saving comes from the
// intra-line skip (paper Section 4.2, "a further modification, also used
// in [12]") versus the way mechanism itself.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A3: intra-line tag-check skip contribution\n"
      "32KB 32-way I-cache, 16KB way-placement area, suite average",
      "the Section 4.2 design note");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  std::vector<driver::SweepExecutor::Cell> grid;
  for (const bool skip : {true, false}) {
    for (const bool memo : {false, true}) {
      driver::SchemeSpec s = memo ? driver::SchemeSpec::wayMemoization()
                                  : driver::SchemeSpec::wayPlacement(16 * 1024);
      s.intraline_skip = skip;
      grid.push_back({icache, s});
    }
  }
  suite.runAll(grid);

  TextTable t;
  t.header({"scheme", "intra-line skip", "I$ energy (avg)", "ED (avg)"});
  for (const bool skip : {true, false}) {
    for (const bool memo : {false, true}) {
      driver::SchemeSpec s = memo ? driver::SchemeSpec::wayMemoization()
                                  : driver::SchemeSpec::wayPlacement(16 * 1024);
      s.intraline_skip = skip;
      const auto e = suite.averageNormalizedChecked(
          icache, s,
          [](const driver::Normalized& n) { return n.icache_energy; });
      const auto ed = suite.averageNormalizedChecked(
          icache, s, [](const driver::Normalized& n) { return n.ed_product; });
      t.row({memo ? "way-memoization" : "way-placement", skip ? "on" : "off",
             bench::cellPct(e, 1), bench::cellNum(ed, 3)});
    }
  }
  t.print(std::cout);
  std::cout << "\nway-placement keeps most of its saving without the skip\n"
               "(single-way search already removes W-1 of W tag checks);\n"
               "way-memoization depends on it much more heavily.\n";
  return bench::finish(suite);
}
