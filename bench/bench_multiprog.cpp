// Multiprogramming bench: co-run pairs time-sliced over one shared
// fetch path, sweeping the context-switch quantum. Table 1 prices each
// scheme against its *co-run* baseline (same pair, same quantum, same
// TLB policy) so the numbers isolate the scheme under switching; Table
// 2 reads the switch-cost counters the schemes are sensitive to
// (way-hint second accesses, memo-link invalidation storms, I-TLB
// walks); Table 3 verifies the architectural invariant — every
// process's retired stream, data flow and output equal its solo run at
// every quantum — and the bench exits non-zero if it ever breaks.
//
// Environment knobs (beyond bench_common's WP_BENCH_WORKLOADS/WP_SEED/
// WP_JOBS/WP_JSON; all strictly parsed):
//   WP_CORUN_QUANTA  comma-separated switch quanta in retired
//                    instructions (default: 2000,20000,200000)
//   WP_TLB_SWITCH    I-TLB switch policy: flush | asid | both
//                    (default: both)
// Each workload co-runs with the next one in the pool (cyclically), so
// every workload appears once as primary and once as partner. The
// default pool is a fast branchy subset; WP_BENCH_WORKLOADS widens it.
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "support/stats.hpp"

namespace {

using namespace wp;

std::vector<u64> quantaFromEnv() {
  const char* env = std::getenv("WP_CORUN_QUANTA");
  if (env == nullptr || *env == '\0') return {2000, 20000, 200000};
  std::vector<u64> quanta;
  std::stringstream ss(env);
  std::string item;
  while (std::getline(ss, item, ',')) {
    errno = 0;
    char* end = nullptr;
    const u64 q = std::strtoull(item.c_str(), &end, 0);
    if (item.empty() || end == item.c_str() || *end != '\0' ||
        errno == ERANGE || q == 0) {
      std::fprintf(stderr,
                   "error: WP_CORUN_QUANTA='%s' is not a valid quantum "
                   "list (expected comma-separated positive instruction "
                   "counts)\n",
                   env);
      std::exit(1);
    }
    quanta.push_back(q);
  }
  if (quanta.empty()) {
    std::fprintf(stderr, "error: WP_CORUN_QUANTA='%s' names no quantum\n",
                 env);
    std::exit(1);
  }
  return quanta;
}

std::vector<cache::TlbSwitchPolicy> policiesFromEnv() {
  const char* env = std::getenv("WP_TLB_SWITCH");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "both") == 0) {
    return {cache::TlbSwitchPolicy::kFlush,
            cache::TlbSwitchPolicy::kAsidTagged};
  }
  if (std::strcmp(env, "flush") == 0) return {cache::TlbSwitchPolicy::kFlush};
  if (std::strcmp(env, "asid") == 0) {
    return {cache::TlbSwitchPolicy::kAsidTagged};
  }
  std::fprintf(stderr,
               "error: WP_TLB_SWITCH='%s' is not a valid switch policy "
               "(expected flush, asid or both)\n",
               env);
  std::exit(1);
}

driver::SchemeSpec corun(driver::SchemeSpec s, u64 quantum,
                         const std::string& partner,
                         cache::TlbSwitchPolicy policy) {
  s.corun_quantum = quantum;
  s.corun_partners = partner;
  s.corun_tlb = policy;
  return s;
}

/// Suite average of `metric` over per-primary co-run cells (each
/// primary pairs with its own partner, so the spec differs per row —
/// averageNormalizedChecked's one-spec shape does not fit). Quarantined
/// cells are excluded and surface through the '*'/QUAR rendering.
template <typename SpecFor, typename Metric>
driver::SweepExecutor::SuiteAverage averageOverPairs(
    driver::SweepExecutor& suite, const cache::CacheGeometry& icache,
    const SpecFor& specFor, const Metric& metric) {
  Accumulator acc;
  driver::SweepExecutor::SuiteAverage out;
  for (const driver::PreparedWorkload& p : suite.prepared()) {
    const driver::SchemeSpec spec = specFor(p.name);
    const auto base =
        suite.tryRun(p, icache, driver::SchemeSpec::baselineFor(spec));
    const auto cell = suite.tryRun(p, icache, spec);
    if (base.quarantined || cell.quarantined) {
      ++out.excluded;
      continue;
    }
    acc.add(metric(driver::normalize(*cell.result, *base.result, p.name)));
    ++out.included;
  }
  if (out.included > 0) out.mean = acc.mean();
  return out;
}

}  // namespace

int main() {
  using namespace wp;
  bench::printHeader(
      "Multiprogramming: context-switch quantum sweep\n"
      "co-run pairs on one shared fetch path, 32KB 32-way I-cache",
      "the OS page-attribute context of Section 4.1, extended to "
      "multiprogrammed guests");

  // A fast, branchy default pool; WP_BENCH_WORKLOADS overrides it.
  const char* pool_env = std::getenv("WP_BENCH_WORKLOADS");
  const std::vector<std::string> names =
      (pool_env != nullptr && *pool_env != '\0')
          ? bench::selectedWorkloads()
          : std::vector<std::string>{"crc", "sha", "bitcount"};
  const std::vector<u64> quanta = quantaFromEnv();
  const std::vector<cache::TlbSwitchPolicy> policies = policiesFromEnv();

  driver::SweepExecutor suite(names, energy::EnergyParams{},
                              bench::experimentSeed());
  const cache::CacheGeometry icache = bench::initialICache();
  const auto partnerOf = [&](const std::string& primary) -> std::string {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == primary) return names[(i + 1) % names.size()];
    }
    return names.front();  // unreachable: primaries come from `names`
  };

  const struct {
    const char* name;
    driver::SchemeSpec spec;
  } kSchemes[] = {
      {"way-placement 16KB", driver::SchemeSpec::wayPlacement(16 * 1024)},
      {"way-memoization", driver::SchemeSpec::wayMemoization()},
      {"way-prediction", driver::SchemeSpec::wayPrediction()},
  };

  std::cout << "Table 1: normalized energy under co-running (vs the "
               "co-run baseline of the same pair/quantum/policy)\n";
  TextTable t1;
  t1.header({"scheme", "quantum", "tlb switch", "I$ energy (avg)",
             "ED product (avg)"});
  for (const auto& sch : kSchemes) {
    for (const u64 q : quanta) {
      for (const auto policy : policies) {
        const auto specFor = [&](const std::string& primary) {
          return corun(sch.spec, q, partnerOf(primary), policy);
        };
        const auto e = averageOverPairs(
            suite, icache, specFor,
            [](const driver::Normalized& n) { return n.icache_energy; });
        const auto ed = averageOverPairs(
            suite, icache, specFor,
            [](const driver::Normalized& n) { return n.ed_product; });
        t1.row({sch.name, std::to_string(q),
                cache::tlbSwitchPolicyName(policy), bench::cellPct(e, 1),
                bench::cellNum(ed, 3)});
      }
    }
    t1.separator();
  }
  t1.print(std::cout);

  // --- Table 2: the switch-cost counters behind Table 1's movement.
  // Rates per 10k retired instructions, averaged over the pairs: hint
  // second accesses from the way-placement cells, link flash-clears
  // (the per-switch invalidation storms) from the way-memoization
  // cells, I-TLB walks (WP-area/page-table contention) from the co-run
  // baseline cells.
  std::cout << "\nTable 2: switch-cost counters (events per 10k "
               "instructions, pair average)\n";
  TextTable t2;
  t2.header({"quantum", "tlb switch", "hint 2nd-access", "link storms",
             "I-TLB walks"});
  bool all_ok = true;
  for (const u64 q : quanta) {
    for (const auto policy : policies) {
      const auto rate = [&](const driver::SchemeSpec& scheme_spec,
                            const auto& counter) {
        Accumulator acc;
        driver::SweepExecutor::SuiteAverage avg;
        for (const driver::PreparedWorkload& p : suite.prepared()) {
          const auto cell = suite.tryRun(
              p, icache, corun(scheme_spec, q, partnerOf(p.name), policy));
          if (cell.quarantined) {
            ++avg.excluded;
            continue;
          }
          acc.add(1e4 * static_cast<double>(counter(*cell.result)) /
                  static_cast<double>(cell.result->stats.instructions));
          ++avg.included;
        }
        if (avg.included > 0) avg.mean = acc.mean();
        return avg;
      };
      const auto hint =
          rate(kSchemes[0].spec, [](const driver::RunResult& r) {
            return r.stats.fetch.hint_miss_second_access;
          });
      const auto storms =
          rate(kSchemes[1].spec, [](const driver::RunResult& r) {
            return r.stats.link_flash_clears;
          });
      const auto walks =
          rate(driver::SchemeSpec::baseline(),
               [](const driver::RunResult& r) { return r.stats.itlb.walks; });
      t2.row({std::to_string(q), cache::tlbSwitchPolicyName(policy),
              bench::cellNum(hint, 2), bench::cellNum(storms, 2),
              bench::cellNum(walks, 2)});
    }
  }
  t2.print(std::cout);

  // --- Table 3: the architectural invariant. Time-slicing may move
  // energy and cycles, but each guest's retired stream, data flow and
  // output must equal its solo run at every quantum — a violation means
  // shared fetch-path state leaked into correctness, and the bench
  // exits 1.
  std::cout << "\nTable 3: per-process solo equivalence (way-placement "
               "16KB, flush policy)\n";
  TextTable t3;
  t3.header({"primary", "partner", "quantum", "switches", "slices",
             "solo-equal"});
  const driver::SchemeSpec solo_wp = kSchemes[0].spec;
  for (const driver::PreparedWorkload& p : suite.prepared()) {
    const std::string partner_name = partnerOf(p.name);
    const driver::PreparedWorkload* partner = nullptr;
    for (const driver::PreparedWorkload& cand : suite.prepared()) {
      if (cand.name == partner_name) partner = &cand;
    }
    const auto solo_p = suite.tryRun(p, icache, solo_wp);
    const auto solo_q = suite.tryRun(*partner, icache, solo_wp);
    for (const u64 q : quanta) {
      driver::Runner::CoRunExtra extra;
      const driver::RunResult co = suite.runner().runCoRun(
          {&p, partner}, icache,
          corun(solo_wp, q, "", cache::TlbSwitchPolicy::kFlush),
          workloads::InputSize::kLarge, nullptr, &extra);
      const bool ok =
          !solo_p.quarantined && !solo_q.quarantined &&
          extra.processes.size() == 2 &&
          extra.processes[0].retired_pc_hash ==
              solo_p.result->stats.retired_pc_hash &&
          extra.processes[0].dataflow_hash ==
              solo_p.result->stats.dataflow_hash &&
          extra.processes[0].output ==
              p.workload->expected(workloads::InputSize::kLarge) &&
          extra.processes[1].retired_pc_hash ==
              solo_q.result->stats.retired_pc_hash &&
          extra.processes[1].dataflow_hash ==
              solo_q.result->stats.dataflow_hash &&
          extra.processes[1].output ==
              partner->workload->expected(workloads::InputSize::kLarge) &&
          co.stats.instructions == solo_p.result->stats.instructions +
                                       solo_q.result->stats.instructions;
      all_ok = all_ok && ok;
      t3.row({p.name, partner_name, std::to_string(q),
              std::to_string(extra.context_switches),
              std::to_string(extra.slices), ok ? "yes" : "NO"});
    }
  }
  t3.print(std::cout);

  std::cout << "\ninvariant: co-run retired streams, data flow and outputs "
            << (all_ok ? "bit-identical to solo runs at every quantum\n"
                       : "DIVERGED — shared fetch-path state leaked into "
                         "correctness\n");

  const int fate = bench::finish(suite);
  return all_ok ? fate : 1;
}
