// Ablation A1: does heaviest-first chain ordering matter? Runs the
// way-placement *hardware* with three code layouts: the paper's
// heaviest-first chains, the original program order, and a random
// shuffle. The hardware is identical; only placement quality changes
// which pages the 4 KB way-placement area covers.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A1: layout policy under way-placement hardware\n"
      "32KB 32-way I-cache, 1KB way-placement area, suite average",
      "the design choice behind Section 3");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  // A 1KB area makes placement quality matter: the kernels with multi-KB
  // hot regions (sha, blowfish, cjpeg, rijndael) only fit their hottest
  // chains if the pass ranks them correctly. The intra-line skip hides
  // most of a bad layout (same-line fetches never check tags anyway), so
  // the sweep is run in both regimes.
  const auto specFor = [](layout::Policy policy, bool skip) {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.layout = policy;
    s.intraline_skip = skip;
    return s;
  };

  std::vector<driver::SweepExecutor::Cell> grid;
  for (const bool skip : {true, false}) {
    for (const layout::Policy policy :
         {layout::Policy::kWayPlacement, layout::Policy::kOriginal,
          layout::Policy::kRandom}) {
      grid.push_back({icache, specFor(policy, skip)});
    }
  }
  suite.runAll(grid);

  TextTable t;
  t.header({"layout", "intra-line skip", "I$ energy (avg)", "ED (avg)"});
  double chained_e = 0.0, random_e = 0.0;
  for (const bool skip : {true, false}) {
    for (const layout::Policy policy :
         {layout::Policy::kWayPlacement, layout::Policy::kOriginal,
          layout::Policy::kRandom}) {
      const driver::SchemeSpec spec = specFor(policy, skip);
      const double e = suite.averageNormalized(
          icache, spec,
          [](const driver::Normalized& n) { return n.icache_energy; });
      const double ed = suite.averageNormalized(
          icache, spec,
          [](const driver::Normalized& n) { return n.ed_product; });
      t.row({layout::policyName(policy), skip ? "on" : "off", fmtPct(e, 1),
             fmt(ed, 3)});
      if (!skip && policy == layout::Policy::kWayPlacement) chained_e = e;
      if (!skip && policy == layout::Policy::kRandom) random_e = e;
    }
    t.separator();
  }
  t.print(std::cout);

  std::cout << "\nwith the skip disabled, every fetch depends on the way\n"
               "mechanism, and heaviest-first chains beat a random layout\n"
               "by " << fmtPct(random_e - chained_e, 1)
            << " of I-cache energy at a 1KB area. With the skip on, "
               "same-line\nfetches are free either way and placement only "
               "governs the\nline-crossing residue (as in the paper's "
               "Figure 5 sensitivity).\n";
  bench::finish(suite);
  return 0;
}
