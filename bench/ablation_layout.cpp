// Ablation A1: how much does code-layout quality buy the way-placement
// hardware? Cross-sweep of every registered layout strategy against a
// range of way-placement area sizes on identical hardware — only block
// placement changes which pages the WP area covers.
//
// Per cell the table reports the suite-average normalized I-cache
// energy and ED product, plus the layout's own explanation: the
// fraction of profiled dynamic instructions the pipeline placed inside
// the WP area (coverage) and the fall-through repairs Emission had to
// insert. A strategy wins exactly when it packs more of the dynamic
// profile into the area without paying for it in repair branches.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A1: layout strategy x way-placement area size\n"
      "32KB 32-way I-cache, suite average",
      "the design choice behind Section 3");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  // Small areas make placement quality matter: the kernels with multi-KB
  // hot regions (sha, blowfish, cjpeg, rijndael) only fit their hottest
  // chains if the ordering ranks them correctly; by 4KB most strategies
  // fit everything and the curves converge.
  const std::vector<u32> areas = {1024, 2048, 4096};

  const auto specFor = [](const std::string& strategy, u32 area) {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(area);
    s.layout = strategy;  // explicit cross-sweep: WP_LAYOUT is ignored
    return s;
  };

  std::vector<driver::SweepExecutor::Cell> grid;
  for (const u32 area : areas) {
    for (const layout::LayoutStrategy* s : layout::strategies()) {
      grid.push_back({icache, specFor(s->name, area)});
    }
  }
  suite.runAll(grid);

  TextTable t;
  t.header({"WP area", "layout", "I$ energy (avg)", "ED (avg)",
            "coverage (avg)", "repairs (avg)"});
  double best_1k = 1.0, paper_1k = 1.0;
  std::string best_1k_name = "way_placement";
  for (const u32 area : areas) {
    for (const layout::LayoutStrategy* s : layout::strategies()) {
      const driver::SchemeSpec spec = specFor(s->name, area);
      const auto e = suite.averageNormalizedChecked(
          icache, spec,
          [](const driver::Normalized& n) { return n.icache_energy; });
      const auto ed = suite.averageNormalizedChecked(
          icache, spec,
          [](const driver::Normalized& n) { return n.ed_product; });
      // Suite-average layout diagnostics, read back from the memoized
      // cells (runAll already priced them); quarantined cells drop out
      // of the average just as they do in the normalized columns.
      double coverage = 0.0, repairs = 0.0;
      unsigned diag_n = 0;
      for (const driver::PreparedWorkload& p : suite.prepared()) {
        const auto view = suite.tryRun(p, icache, spec);
        if (view.quarantined) continue;
        coverage += view.result->wp_area_coverage;
        repairs += static_cast<double>(view.result->layout_repairs);
        ++diag_n;
      }
      std::string cov_cell = "QUAR", rep_cell = "QUAR";
      if (diag_n > 0) {
        cov_cell = fmtPct(coverage / diag_n, 1);
        rep_cell = fmt(repairs / diag_n, 1);
      }
      t.row({std::to_string(area) + " B", s->name, bench::cellPct(e, 1),
             bench::cellNum(ed, 3), cov_cell, rep_cell});
      if (area == 1024 && e.included > 0) {
        if (s->name == "way_placement") paper_1k = e.mean;
        if (e.mean < best_1k) {
          best_1k = e.mean;
          best_1k_name = s->name;
        }
      }
    }
    t.separator();
  }
  t.print(std::cout);

  std::cout << "\nat the tightest area (1KB) the best ordering is "
            << best_1k_name << " (" << fmtPct(best_1k, 1)
            << " of baseline I-cache energy vs " << fmtPct(paper_1k, 1)
            << " for the paper's heaviest-first chains). Coverage tracks\n"
               "energy: whatever fraction of the dynamic profile a strategy\n"
               "packs into the area fetches single-way, the rest pays the\n"
               "full " << icache.ways << "-way probe.\n";
  return bench::finish(suite);
}
