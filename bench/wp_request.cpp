// Line-oriented client for the wp_serve daemon.
//
// Usage:
//   wp_request [--socket PATH] [--connect-retries N] [REQUEST...]
//
// Each REQUEST argument is one flat JSON request line (see
// driver/service.hpp); with no REQUEST arguments the lines come from
// stdin, one request per line. Replies print to stdout in request
// order, one line each — so `diff` over two transcript files is the
// whole byte-identical-replay check.
//
// The socket defaults to $WP_SERVE_SOCKET, then "wp_serve.sock".
// --connect-retries (default 50, 100 ms apart) covers the daemon's
// preparation window so scripts can start both sides concurrently.
//
// Exit codes:
//   0  every reply had fate "served" or "ok"
//   1  usage error, connect failure, or the daemon hung up mid-request
//   4  at least one reply carried a degraded fate (error, quarantined,
//      deadline, overloaded, draining)
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/service.hpp"
#include "support/socket.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--connect-retries N] "
               "[REQUEST...]\n",
               argv0);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wp;

  const char* env_socket = std::getenv("WP_SERVE_SOCKET");
  std::string socket_path =
      env_socket != nullptr && *env_socket != '\0' ? env_socket
                                                   : "wp_serve.sock";
  unsigned connect_retries = 50;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      if (++i >= argc) return usage(argv[0]);
      socket_path = argv[i];
    } else if (arg == "--connect-retries") {
      if (++i >= argc) return usage(argv[0]);
      char* end = nullptr;
      const unsigned long v = std::strtoul(argv[i], &end, 10);
      if (end == argv[i] || *end != '\0' || v > 100000) {
        return usage(argv[0]);
      }
      connect_retries = static_cast<unsigned>(v);
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      requests.push_back(arg);
    }
  }
  if (requests.empty()) {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) requests.push_back(line);
    }
  }
  if (requests.empty()) return usage(argv[0]);

  std::string error;
  int fd = -1;
  for (unsigned attempt = 0;; ++attempt) {
    fd = support::connectUnix(socket_path, error);
    if (fd >= 0) break;
    if (attempt >= connect_retries) {
      std::fprintf(stderr, "error: wp_request: %s\n", error.c_str());
      return 1;
    }
    ::usleep(100 * 1000);
  }

  support::LineReader reader(fd);
  bool degraded = false;
  for (const std::string& request : requests) {
    if (!support::sendAll(fd, request + "\n")) {
      std::fprintf(stderr,
                   "error: wp_request: daemon hung up while sending\n");
      ::close(fd);
      return 1;
    }
    std::string reply;
    if (!reader.next(reply, driver::SweepService::kMaxLineBytes)) {
      std::fprintf(stderr,
                   "error: wp_request: daemon hung up before replying\n");
      ::close(fd);
      return 1;
    }
    std::cout << reply << "\n";
    std::map<std::string, driver::JsonToken> tokens;
    const auto fate = [&]() -> std::string {
      if (!driver::parseFlatJsonLine(reply, tokens)) return "";
      const auto it = tokens.find("fate");
      return it == tokens.end() ? "" : it->second.text;
    }();
    if (fate != "served" && fate != "ok") degraded = true;
  }
  ::close(fd);
  return degraded ? 4 : 0;
}
