// Extension E4: orthogonality with leakage techniques. The paper's
// related work says drowsy caches / cache decay [3, 10] "are orthogonal
// to our scheme and can therefore be used together for additional
// energy savings". This bench measures it: dynamic + leakage I-cache
// energy for {baseline, way-placement} x {always-awake, drowsy}.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Extension E4: combining way-placement with drowsy lines\n"
      "32KB 32-way I-cache, 16KB area, 2048-access drowsy window,\n"
      "suite average of dynamic + leakage I-cache energy",
      "the orthogonality claim of Section 7");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const energy::EnergyModel& model = suite.runner().energyModel();
  constexpr u32 kWindow = 2048;

  const auto specFor = [](bool wayplace, bool drowsy) {
    driver::SchemeSpec s = wayplace
                               ? driver::SchemeSpec::wayPlacement(16 * 1024)
                               : driver::SchemeSpec::baseline();
    s.drowsy_window = drowsy ? kWindow : 0;
    return s;
  };

  std::vector<driver::SweepExecutor::Cell> grid;
  for (const bool wayplace : {false, true}) {
    for (const bool drowsy : {false, true}) {
      grid.push_back({icache, specFor(wayplace, drowsy)});
    }
  }
  suite.runAll(grid);

  // Total I-cache energy (dynamic + leakage), normalized to the plain
  // baseline (always awake).
  const auto total = [&](const driver::RunResult& r) {
    const double leak =
        r.stats.drowsy.ticks > 0
            ? model.leakageEnergy(r.stats.drowsy)
            : model.leakageAllAwake(
                  icache.size_bytes / icache.line_bytes,
                  r.stats.icache.accesses);
    return r.energy.icacheTotal() + leak;
  };

  TextTable t;
  t.header({"configuration", "dynamic", "leakage", "total I$ energy",
            "delay"});
  Accumulator a_dyn[4], a_leak[4], a_tot[4], a_delay[4];
  const char* labels[4] = {"baseline", "baseline + drowsy",
                           "way-placement", "way-placement + drowsy"};
  unsigned excluded = 0;
  for (const auto& p : suite.prepared()) {
    // All four configurations must survive for the averages to stay
    // aligned on the same workload set; one quarantined cell drops the
    // workload from every column.
    bool usable = true;
    for (const bool wayplace : {false, true}) {
      for (const bool drowsy : {false, true}) {
        usable = usable &&
                 !suite.tryRun(p, icache, specFor(wayplace, drowsy))
                      .quarantined;
      }
    }
    if (!usable) {
      ++excluded;
      continue;
    }
    const driver::RunResult& base =
        suite.run(p, icache, specFor(false, false));
    const double base_total = total(base);
    int i = 0;
    for (const bool wayplace : {false, true}) {
      for (const bool drowsy : {false, true}) {
        const driver::RunResult& r =
            suite.run(p, icache, specFor(wayplace, drowsy));
        const double leak =
            r.stats.drowsy.ticks > 0
                ? model.leakageEnergy(r.stats.drowsy)
                : model.leakageAllAwake(
                      icache.size_bytes / icache.line_bytes,
                      r.stats.icache.accesses);
        a_dyn[i].add(r.energy.icacheTotal() / base_total);
        a_leak[i].add(leak / base_total);
        a_tot[i].add(total(r) / base_total);
        a_delay[i].add(static_cast<double>(r.stats.cycles) /
                       static_cast<double>(base.stats.cycles));
        ++i;
      }
    }
  }
  const auto pct = [&](const Accumulator& a, int decimals) {
    if (a.count() == 0) return std::string("QUAR");
    return fmtPct(a.mean(), decimals) + (excluded > 0 ? "*" : "");
  };
  const auto num = [&](const Accumulator& a, int decimals) {
    if (a.count() == 0) return std::string("QUAR");
    return fmt(a.mean(), decimals) + (excluded > 0 ? "*" : "");
  };
  for (int i = 0; i < 4; ++i) {
    t.row({labels[i], pct(a_dyn[i], 1), pct(a_leak[i], 1), pct(a_tot[i], 1),
           num(a_delay[i], 4)});
  }
  t.print(std::cout);

  std::cout << "\nthe savings compose: way-placement removes tag-side\n"
               "dynamic energy, drowsy lines remove leakage, and the\n"
               "combination beats either alone — as the paper claims.\n";
  return bench::finish(suite);
}
