// Extension E2: the paper's §4.2 claim that way-placement "could also
// easily be applied to a standard RAM cache". The same simulations are
// re-priced with the RAM-tag energy model, where a conventional access
// reads every way's tag and data in parallel — so way-placement now
// saves data-array energy as well as tag energy.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Extension E2: CAM-tag vs RAM-tag implementation\n"
      "32KB 32-way I-cache, 16KB way-placement area, suite average",
      "the Section 4.2 portability claim");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const energy::EnergyModel& model = suite.runner().energyModel();
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  suite.runAll({{icache, wp}, {icache, wm}});

  Accumulator cam_wp, cam_wm, ram_wp, ram_wm;
  for (const auto& p : suite.prepared()) {
    const driver::RunResult& base =
        suite.run(p, icache, driver::SchemeSpec::baseline());
    const driver::RunResult& rwp = suite.run(p, icache, wp);
    const driver::RunResult& rwm = suite.run(p, icache, wm);

    cam_wp.add(rwp.energy.icacheTotal() / base.energy.icacheTotal());
    cam_wm.add(rwm.energy.icacheTotal() / base.energy.icacheTotal());

    const auto ramPrice = [&](const driver::RunResult& r) {
      return model
          .cacheEnergyRam(icache, r.stats.icache,
                          r.stats.icache_data_area_factor,
                          r.stats.link_flash_clears)
          .total();
    };
    const double ram_base = ramPrice(base);
    ram_wp.add(ramPrice(rwp) / ram_base);
    ram_wm.add(ramPrice(rwm) / ram_base);
  }

  TextTable t;
  t.header({"scheme", "CAM-tag I$ energy", "RAM-tag I$ energy"});
  t.row({"way-memoization", fmtPct(cam_wm.mean(), 1), fmtPct(ram_wm.mean(), 1)});
  t.row({"way-placement 16KB", fmtPct(cam_wp.mean(), 1),
         fmtPct(ram_wp.mean(), 1)});
  t.print(std::cout);

  std::cout << "\non a RAM-tag cache a normal access reads all "
            << icache.ways
            << " data ways in parallel, so knowing the way saves "
            << fmtPct(1.0 - ram_wp.mean(), 1)
            << " of I-cache energy — way-placement ports as §4.2 claims,\n"
               "with an even larger payoff than on the XScale's CAM.\n";
  bench::finish(suite);
  return 0;
}
