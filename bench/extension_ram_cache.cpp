// Extension E2: the paper's §4.2 claim that way-placement "could also
// easily be applied to a standard RAM cache". The same simulations are
// re-priced with the RAM-tag energy model, where a conventional access
// reads every way's tag and data in parallel — so way-placement now
// saves data-array energy as well as tag energy.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Extension E2: CAM-tag vs RAM-tag implementation\n"
      "32KB 32-way I-cache, 16KB way-placement area, suite average",
      "the Section 4.2 portability claim");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const energy::EnergyModel& model = suite.runner().energyModel();
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  suite.runAll({{icache, wp}, {icache, wm}});

  Accumulator cam_wp, cam_wm, ram_wp, ram_wm;
  unsigned excluded = 0;
  for (const auto& p : suite.prepared()) {
    const auto vbase = suite.tryRun(p, icache, driver::SchemeSpec::baseline());
    const auto vwp = suite.tryRun(p, icache, wp);
    const auto vwm = suite.tryRun(p, icache, wm);
    if (vbase.quarantined || vwp.quarantined || vwm.quarantined) {
      // The four accumulators must stay aligned on the same workload
      // set, so one quarantined cell drops the whole workload.
      ++excluded;
      continue;
    }
    const driver::RunResult& base = *vbase.result;
    const driver::RunResult& rwp = *vwp.result;
    const driver::RunResult& rwm = *vwm.result;

    cam_wp.add(rwp.energy.icacheTotal() / base.energy.icacheTotal());
    cam_wm.add(rwm.energy.icacheTotal() / base.energy.icacheTotal());

    const auto ramPrice = [&](const driver::RunResult& r) {
      return model
          .cacheEnergyRam(icache, r.stats.icache,
                          r.stats.icache_data_area_factor,
                          r.stats.link_flash_clears)
          .total();
    };
    const double ram_base = ramPrice(base);
    ram_wp.add(ramPrice(rwp) / ram_base);
    ram_wm.add(ramPrice(rwm) / ram_base);
  }

  const auto pct = [&](const Accumulator& a) {
    if (a.count() == 0) return std::string("QUAR");
    return fmtPct(a.mean(), 1) + (excluded > 0 ? "*" : "");
  };
  TextTable t;
  t.header({"scheme", "CAM-tag I$ energy", "RAM-tag I$ energy"});
  t.row({"way-memoization", pct(cam_wm), pct(ram_wm)});
  t.row({"way-placement 16KB", pct(cam_wp), pct(ram_wp)});
  t.print(std::cout);

  std::cout << "\non a RAM-tag cache a normal access reads all "
            << icache.ways
            << " data ways in parallel, so knowing the way saves "
            << (ram_wp.count() > 0 ? fmtPct(1.0 - ram_wp.mean(), 1)
                                   : std::string("QUAR"))
            << " of I-cache energy — way-placement ports as §4.2 claims,\n"
               "with an even larger payoff than on the XScale's CAM.\n";
  return bench::finish(suite);
}
