// Ablation A6: profile robustness. The paper's methodology trains the
// layout on the *small* input and evaluates on the *large* one (§5).
// How much is lost to that input shift? Compare against the oracle
// layout (profiled on the evaluation input itself), at a 1 KB area
// where placement quality matters most.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A6: training-input robustness of the layout\n"
      "32KB 32-way I-cache, 1KB way-placement area",
      "the small/large input methodology of Section 5");

  const cache::CacheGeometry icache = bench::initialICache();
  const driver::Runner runner;
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(1024);

  TextTable t;
  t.header({"benchmark", "trained on small", "oracle (large)", "gap"});
  Accumulator gap;
  for (const std::string& name : bench::selectedWorkloads()) {
    const driver::PreparedWorkload trained =
        runner.prepare(name, workloads::InputSize::kSmall);
    const driver::PreparedWorkload oracle =
        runner.prepare(name, workloads::InputSize::kLarge);

    const driver::RunResult base =
        runner.run(trained, icache, driver::SchemeSpec::baseline());
    const double e_trained =
        driver::normalize(runner.run(trained, icache, wp), base)
            .icache_energy;
    const double e_oracle =
        driver::normalize(runner.run(oracle, icache, wp), base).icache_energy;
    t.row({name, fmtPct(e_trained, 1), fmtPct(e_oracle, 1),
           fmtPct(e_trained - e_oracle, 2)});
    gap.add(e_trained - e_oracle);
  }
  t.separator();
  t.row({"average", "", "", fmtPct(gap.mean(), 2)});
  t.print(std::cout);

  std::cout << "\nthe small-input profile costs " << fmtPct(gap.mean(), 2)
            << " of I-cache energy vs the oracle layout on average —\n"
               "the heaviest-first chain ranking is stable across the\n"
               "input shift, which is what makes the paper's train/eval\n"
               "split workable.\n";
  return 0;
}
