// Figure 4: initial evaluation on the 32 KB 32-way I-cache with a 16 KB
// way-placement area. Per benchmark and on average:
//   (a) normalized instruction-cache energy (% of baseline), and
//   (b) ED product,
// for the way-memoization scheme and for way-placement.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 4: per-benchmark I-cache energy and ED product\n"
      "32KB 32-way I-cache, 16KB way-placement area",
      "Figure 4 (a) and (b) and Section 6.1");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  suite.runAll({{icache, wm}, {icache, wp}});

  TextTable ta, tb;
  ta.header({"benchmark", "way-memo I$ energy", "way-place I$ energy"});
  tb.header({"benchmark", "way-memo ED", "way-place ED"});
  Accumulator ewm, ewp, edwm, edwp;
  int wp_ed_below_090 = 0;

  for (const auto& p : suite.prepared()) {
    const driver::RunResult& base =
        suite.run(p, icache, driver::SchemeSpec::baseline());
    const driver::Normalized nwm =
        driver::normalize(suite.run(p, icache, wm), base, p.name);
    const driver::Normalized nwp =
        driver::normalize(suite.run(p, icache, wp), base, p.name);
    ta.row({p.name, fmtPct(nwm.icache_energy, 1), fmtPct(nwp.icache_energy, 1)});
    tb.row({p.name, fmt(nwm.ed_product, 3), fmt(nwp.ed_product, 3)});
    ewm.add(nwm.icache_energy);
    ewp.add(nwp.icache_energy);
    edwm.add(nwm.ed_product);
    edwp.add(nwp.ed_product);
    if (nwp.ed_product < 0.90) ++wp_ed_below_090;
  }
  ta.separator();
  ta.row({"average", fmtPct(ewm.mean(), 1), fmtPct(ewp.mean(), 1)});
  tb.separator();
  tb.row({"average", fmt(edwm.mean(), 3), fmt(edwp.mean(), 3)});

  std::cout << "(a) normalized instruction cache energy\n";
  ta.print(std::cout);
  std::cout << "\n(b) ED product\n";
  tb.print(std::cout);

  std::cout << "\nSummary vs paper Section 6.1:\n"
            << "  way-placement saves " << fmtPct(1.0 - ewp.mean(), 1)
            << " of I-cache energy (paper: ~50%)\n"
            << "  way-memoization saves " << fmtPct(1.0 - ewm.mean(), 1)
            << " (paper: ~32%)\n"
            << "  way-placement average ED " << fmt(edwp.mean(), 2)
            << " (paper: 0.93), benchmarks below 0.9: " << wp_ed_below_090
            << " (paper: 2)\n";
  bench::finish(suite);
  return 0;
}
