// Figure 4: initial evaluation on the 32 KB 32-way I-cache with a 16 KB
// way-placement area. Per benchmark and on average:
//   (a) normalized instruction-cache energy (% of baseline), and
//   (b) ED product,
// for the way-memoization scheme and for way-placement.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 4: per-benchmark I-cache energy and ED product\n"
      "32KB 32-way I-cache, 16KB way-placement area",
      "Figure 4 (a) and (b) and Section 6.1");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  suite.runAll({{icache, wm}, {icache, wp}});

  TextTable ta, tb;
  ta.header({"benchmark", "way-memo I$ energy", "way-place I$ energy"});
  tb.header({"benchmark", "way-memo ED", "way-place ED"});
  int wp_ed_below_090 = 0;

  for (const auto& p : suite.prepared()) {
    const auto vbase = suite.tryRun(p, icache, driver::SchemeSpec::baseline());
    const auto vwm = suite.tryRun(p, icache, wm);
    const auto vwp = suite.tryRun(p, icache, wp);
    // A quarantined baseline takes the whole row with it (nothing to
    // normalize against); a quarantined scheme loses only its column.
    std::string wm_e = "QUAR", wp_e = "QUAR", wm_ed = "QUAR", wp_ed = "QUAR";
    if (!vbase.quarantined && !vwm.quarantined) {
      const driver::Normalized n =
          driver::normalize(*vwm.result, *vbase.result, p.name);
      wm_e = fmtPct(n.icache_energy, 1);
      wm_ed = fmt(n.ed_product, 3);
    }
    if (!vbase.quarantined && !vwp.quarantined) {
      const driver::Normalized n =
          driver::normalize(*vwp.result, *vbase.result, p.name);
      wp_e = fmtPct(n.icache_energy, 1);
      wp_ed = fmt(n.ed_product, 3);
      if (n.ed_product < 0.90) ++wp_ed_below_090;
    }
    ta.row({p.name, wm_e, wp_e});
    tb.row({p.name, wm_ed, wp_ed});
  }
  const auto metricE = [](const driver::Normalized& n) {
    return n.icache_energy;
  };
  const auto metricEd = [](const driver::Normalized& n) {
    return n.ed_product;
  };
  const auto ewm = suite.averageNormalizedChecked(icache, wm, metricE);
  const auto ewp = suite.averageNormalizedChecked(icache, wp, metricE);
  const auto edwm = suite.averageNormalizedChecked(icache, wm, metricEd);
  const auto edwp = suite.averageNormalizedChecked(icache, wp, metricEd);
  ta.separator();
  ta.row({"average", bench::cellPct(ewm, 1), bench::cellPct(ewp, 1)});
  tb.separator();
  tb.row({"average", bench::cellNum(edwm, 3), bench::cellNum(edwp, 3)});

  std::cout << "(a) normalized instruction cache energy\n";
  ta.print(std::cout);
  std::cout << "\n(b) ED product\n";
  tb.print(std::cout);

  std::cout << "\nSummary vs paper Section 6.1:\n"
            << "  way-placement saves " << fmtPct(1.0 - ewp.mean, 1)
            << " of I-cache energy (paper: ~50%)\n"
            << "  way-memoization saves " << fmtPct(1.0 - ewm.mean, 1)
            << " (paper: ~32%)\n"
            << "  way-placement average ED " << bench::cellNum(edwp, 2)
            << " (paper: 0.93), benchmarks below 0.9: " << wp_ed_below_090
            << " (paper: 2)\n";
  return bench::finish(suite);
}
