// Layout autotuning: search the parameterized pass-pipeline space for
// the configuration that minimizes measured I-cache energy (or ED
// product) on this machine's suite, and report what the search found.
//
// Three read-outs:
//   1. the objective trajectory — every candidate the coordinate
//      descent priced, in order, with the incumbent moves marked;
//   2. the per-workload table — each workload's best evaluated spec,
//      its normalized objective, and the dominant-block recommended
//      WP-area (smallest page multiple covering >= 90% of the placed
//      dynamic profile under that workload's best layout);
//   3. the margin of the best-found pipeline over the paper's
//      heaviest-first ordering at the same area.
// The same data lands in WP_JSON under a top-level "autotune" section
// (schema in EXPERIMENTS.md). Deterministic from WP_SEED: the same
// seed, budget and objective replay the identical search byte-for-byte.
//
// Knobs on top of the common bench set: WP_TUNE_EVALS (candidate
// budget, default 24) and WP_TUNE_OBJECTIVE (icache_energy |
// ed_product).
#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_common.hpp"
#include "driver/autotune.hpp"

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string jstr(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

int main() {
  using namespace wp;
  // Env parsing first: a bad WP_TUNE_* kills the run before the suite
  // spends minutes preparing workloads.
  const driver::AutotuneConfig config = driver::AutotuneConfig::fromEnv();

  bench::printHeader(
      "Layout autotuning: measured-energy search over the pass pipeline\n"
      "32KB 32-way I-cache, 1KB way-placement area, suite average",
      "beyond Section 3: is heaviest-first the right ordering?");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  constexpr u32 kArea = 1024;

  std::cout << "objective " << config.objectiveName() << ", budget "
            << config.evals << " evals\n\n";

  const driver::AutotuneResult r =
      driver::autotuneLayout(suite, icache, kArea, config);

  std::cout << "objective trajectory (coordinate descent from "
            << r.start_spec << "):\n";
  TextTable traj;
  traj.header({"eval", "candidate spec", "objective (avg)", ""});
  for (const driver::AutotuneStep& step : r.trajectory) {
    traj.row({std::to_string(step.eval), step.spec,
              bench::cellNum(step.objective, 4),
              step.improved ? "<- incumbent" : ""});
  }
  traj.print(std::cout);
  std::cout << (r.budget_exhausted ? "budget exhausted" : "converged")
            << " after " << r.evals_used << " evaluations\n\n";

  std::cout << "per-workload best and dominant-block WP-area "
               "recommendation:\n";
  TextTable per;
  per.header({"workload", "best spec", "objective", "rec. WP area",
              "coverage"});
  for (const driver::AutotuneWorkloadBest& wb : r.per_workload) {
    if (wb.quarantined) {
      per.row({wb.workload, "QUAR", "QUAR", "QUAR", "QUAR"});
      continue;
    }
    per.row({wb.workload, wb.spec, fmt(wb.objective, 4),
             std::to_string(wb.recommended_wp_bytes) + " B",
             fmtPct(wb.recommended_coverage, 1)});
  }
  per.print(std::cout);

  if (r.start.included > 0 && r.best.included > 0) {
    const double margin = r.start.mean - r.best.mean;
    std::cout << "\nbest found: " << r.best_spec << " at "
              << bench::cellNum(r.best, 4) << " vs "
              << bench::cellNum(r.start, 4) << " for the paper's "
              << r.start_spec << " — margin " << fmt(margin * 100.0, 2)
              << " pp (descent only accepts strict improvements, so the\n"
                 "margin is never negative; 0.00 pp means heaviest-first "
                 "is already optimal in the searched space).\n";
  } else {
    std::cout << "\nQUAR: the objective could not be measured (every "
                 "workload quarantined).\n";
  }

  // The machine-readable mirror of the three read-outs above.
  std::ostringstream js;
  js << "{\n    \"objective\": " << jstr(config.objectiveName())
     << ",\n    \"budget\": " << config.evals
     << ",\n    \"evals_used\": " << r.evals_used
     << ",\n    \"budget_exhausted\": "
     << (r.budget_exhausted ? "true" : "false")
     << ",\n    \"wp_area_bytes\": " << kArea
     << ",\n    \"start\": {\"spec\": " << jstr(r.start_spec)
     << ", \"objective\": " << num(r.start.mean)
     << "},\n    \"best\": {\"spec\": " << jstr(r.best_spec)
     << ", \"objective\": " << num(r.best.mean)
     << "},\n    \"margin\": " << num(r.start.mean - r.best.mean)
     << ",\n    \"trajectory\": [";
  for (std::size_t i = 0; i < r.trajectory.size(); ++i) {
    const driver::AutotuneStep& step = r.trajectory[i];
    js << (i == 0 ? "" : ",") << "\n      {\"eval\": " << step.eval
       << ", \"spec\": " << jstr(step.spec)
       << ", \"objective\": " << num(step.objective.mean)
       << ", \"excluded\": " << step.objective.excluded
       << ", \"improved\": " << (step.improved ? "true" : "false") << "}";
  }
  js << "\n    ],\n    \"workloads\": [";
  for (std::size_t i = 0; i < r.per_workload.size(); ++i) {
    const driver::AutotuneWorkloadBest& wb = r.per_workload[i];
    js << (i == 0 ? "" : ",") << "\n      {\"name\": " << jstr(wb.workload);
    if (wb.quarantined) {
      js << ", \"quarantined\": true}";
    } else {
      js << ", \"spec\": " << jstr(wb.spec)
         << ", \"objective\": " << num(wb.objective)
         << ", \"recommended_wp_bytes\": " << wb.recommended_wp_bytes
         << ", \"recommended_coverage\": " << num(wb.recommended_coverage)
         << "}";
    }
  }
  js << "\n    ]\n  }";
  suite.addJsonSection("autotune", js.str());

  return bench::finish(suite);
}
