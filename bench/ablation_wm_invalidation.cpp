// Ablation A4: way-memoization link-invalidation policy — the cheap
// conservative flash-clear on every refill (what the hardware budget of
// the original scheme affords) versus idealized precise invalidation.
// This bounds how much of way-placement's advantage could be recovered
// by better way-memoization hardware.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A4: way-memoization link invalidation policy\n"
      "32KB 32-way I-cache, suite average",
      "the competitor model of Section 5 / [12]");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  std::vector<driver::SweepExecutor::Cell> grid;
  for (const bool precise : {false, true}) {
    driver::SchemeSpec s = driver::SchemeSpec::wayMemoization();
    s.wm_precise_invalidation = precise;
    grid.push_back({icache, s});
  }
  grid.push_back({icache, driver::SchemeSpec::wayPlacement(16 * 1024)});
  suite.runAll(grid);

  TextTable t;
  t.header({"scheme", "I$ energy (avg)", "ED (avg)"});
  for (const bool precise : {false, true}) {
    driver::SchemeSpec s = driver::SchemeSpec::wayMemoization();
    s.wm_precise_invalidation = precise;
    const auto e = suite.averageNormalizedChecked(
        icache, s,
        [](const driver::Normalized& n) { return n.icache_energy; });
    const auto ed = suite.averageNormalizedChecked(
        icache, s, [](const driver::Normalized& n) { return n.ed_product; });
    t.row({precise ? "way-memo (precise, idealized)"
                   : "way-memo (flash-clear, hardware)",
           bench::cellPct(e, 1), bench::cellNum(ed, 3)});
  }
  const auto wp_e = suite.averageNormalizedChecked(
      icache, driver::SchemeSpec::wayPlacement(16 * 1024),
      [](const driver::Normalized& n) { return n.icache_energy; });
  t.separator();
  t.row({"way-placement 16KB (reference)", bench::cellPct(wp_e, 1), ""});
  t.print(std::cout);

  std::cout << "\neven idealized invalidation cannot remove the 21% link\n"
               "storage overhead on every data access, so way-placement\n"
               "stays ahead.\n";
  return bench::finish(suite);
}
