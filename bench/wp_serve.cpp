// The crash-only sweep evaluation daemon (DESIGN.md §14).
//
// Prepares the benchmark suite once (WP_BENCH_WORKLOADS / WP_SEED /
// WP_JOBS, exactly like every figure bench), then serves evaluation
// requests over a Unix-domain socket until drained — see
// driver/service.hpp for the protocol and the WP_SERVE_* knobs, and
// EXPERIMENTS.md for the schema. Run it under WP_STORE (and optionally
// WP_CHECKPOINT) to make every answered request durable: a SIGKILLed
// daemon restarted on the same store re-serves its history
// byte-identically with zero recomputation.
//
// Exit codes: 0 after a clean drain (SIGTERM or a drain request),
// 1 when the socket cannot be bound or the environment is malformed.
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "driver/service.hpp"
#include "support/shutdown.hpp"

int main() {
  using namespace wp;

  // All strict env parsing first, so a bad knob fails in milliseconds
  // instead of after minutes of suite preparation.
  const driver::ServiceConfig config = driver::ServiceConfig::fromEnv();
  driver::SupervisorConfig sup = driver::SupervisorConfig::fromEnv();
  if (config.deadline_ms != 0) {
    // The request deadline rides the per-cell watchdog: one budget, one
    // enforcement path, whether the cell wedges in-process or in a
    // forked worker.
    sup.cell_timeout_ms = config.deadline_ms;
  }
  const std::vector<std::string> workloads = bench::selectedWorkloads();
  const u64 seed = bench::experimentSeed();

  ShutdownLatch& latch = ShutdownLatch::instance();
  latch.install();

  std::fprintf(stderr, "[wp_serve] preparing %zu workload(s), seed %llu\n",
               workloads.size(), static_cast<unsigned long long>(seed));
  // No interrupt latch on purpose: under drain the service finishes
  // admitted cells (their replies are owed) instead of quarantining
  // not-yet-started ones like an interrupted bench does.
  driver::SweepExecutor suite(workloads, energy::EnergyParams{}, seed, 0,
                              &sup, nullptr);

  driver::SweepService service(config, suite, latch);
  const int rc = service.serve();
  suite.printSummary(std::cerr);
  suite.emitJsonIfRequested();
  return rc;
}
