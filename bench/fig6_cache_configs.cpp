// Figure 6: varying the cache size (16/32/64 KB) and associativity
// (8/16/32 ways). For every configuration: way-memoization and
// way-placement with areas 16..1 KB, averaged across the suite.
// The paper's OCR lost the exact sizes; DESIGN.md §5 records this
// reconstruction.
#include <iostream>
#include <limits>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Figure 6: cache size and associativity sweep\n"
      "sizes {16,32,64}KB x ways {8,16,32}, suite average",
      "Figure 6 (a) and (b) and Section 6.3");

  auto suite = bench::makeSuite();
  const u32 sizes_kb[] = {16, 32, 64};
  const u32 ways_list[] = {8, 16, 32};
  const u32 areas_kb[] = {16, 8, 4, 2, 1};

  // The whole 9-geometry x 6-scheme grid up front: 54 cells (plus 9
  // shared baselines) fan out across WP_JOBS threads in one wave.
  std::vector<driver::SweepExecutor::Cell> grid;
  for (const u32 size_kb : sizes_kb) {
    for (const u32 ways : ways_list) {
      const cache::CacheGeometry g{size_kb * 1024, 32, ways};
      grid.push_back({g, driver::SchemeSpec::wayMemoization()});
      for (const u32 area_kb : areas_kb) {
        grid.push_back({g, driver::SchemeSpec::wayPlacement(area_kb * 1024)});
      }
    }
  }
  suite.runAll(grid);

  TextTable ta, tb;
  std::vector<std::string> header = {"config", "way-memo"};
  for (const u32 a : areas_kb) header.push_back("wp " + std::to_string(a) + "K");
  ta.header(header);
  tb.header(header);

  // Start from the identities of min/max, not from magic values a real
  // cell could miss (an ED above 10 would silently never win a "best"
  // seeded with 10.0).
  double best_ed = std::numeric_limits<double>::infinity();
  double worst_wp_ed = 0.0;
  std::string best_cfg;
  double min_savings_64_32 = std::numeric_limits<double>::infinity();

  for (const u32 size_kb : sizes_kb) {
    for (const u32 ways : ways_list) {
      const cache::CacheGeometry g{size_kb * 1024, 32, ways};
      const std::string cfg =
          std::to_string(size_kb) + "KB/" + std::to_string(ways) + "w";

      std::vector<std::string> rowa = {cfg}, rowb = {cfg};
      const auto wm_e = suite.averageNormalizedChecked(
          g, driver::SchemeSpec::wayMemoization(),
          [](const driver::Normalized& n) { return n.icache_energy; });
      const auto wm_ed = suite.averageNormalizedChecked(
          g, driver::SchemeSpec::wayMemoization(),
          [](const driver::Normalized& n) { return n.ed_product; });
      rowa.push_back(bench::cellPct(wm_e, 1));
      rowb.push_back(bench::cellNum(wm_ed, 3));

      for (const u32 area_kb : areas_kb) {
        const driver::SchemeSpec wp =
            driver::SchemeSpec::wayPlacement(area_kb * 1024);
        const auto e = suite.averageNormalizedChecked(
            g, wp,
            [](const driver::Normalized& n) { return n.icache_energy; });
        const auto ed = suite.averageNormalizedChecked(
            g, wp, [](const driver::Normalized& n) { return n.ed_product; });
        rowa.push_back(bench::cellPct(e, 1));
        rowb.push_back(bench::cellNum(ed, 3));
        // Summary extrema only consider cells with surviving data.
        if (ed.included > 0 && ed.mean < best_ed) {
          best_ed = ed.mean;
          best_cfg = cfg + " area " + std::to_string(area_kb) + "KB";
        }
        if (ed.included > 0) worst_wp_ed = std::max(worst_wp_ed, ed.mean);
        if (size_kb == 64 && ways == 32 && e.included > 0) {
          min_savings_64_32 = std::min(min_savings_64_32, 1.0 - e.mean);
        }
      }
      ta.row(rowa);
      tb.row(rowb);
    }
  }

  std::cout << "(a) normalized instruction cache energy\n";
  ta.print(std::cout);
  std::cout << "\n(b) ED product\n";
  tb.print(std::cout);

  std::cout << "\nSummary vs paper Sections 6.3/6.4:\n"
            << "  best ED product " << fmt(best_ed, 2) << " at " << best_cfg
            << " (paper: 0.80 on its largest, most-associative config)\n"
            << "  worst way-placement ED " << fmt(worst_wp_ed, 2)
            << " (paper: 0.98) — still below baseline\n"
            << "  minimum savings on the 64KB/32-way cache: "
            << fmtPct(min_savings_64_32, 1)
            << " (paper: at least 59% on its largest config)\n";
  return bench::finish(suite);
}
