// Microbenchmarks (google-benchmark) of the simulator's building
// blocks: cache lookups, fetch-path schemes, functional execution,
// chain formation and linking. These guard against performance
// regressions in the substrate the figure benches run on.
#include <benchmark/benchmark.h>

#include "cache/fetch_path.hpp"
#include "driver/runner.hpp"
#include "layout/layout.hpp"
#include "profile/profiler.hpp"
#include "sim/processor.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wp;

void BM_CamCacheFullLookup(benchmark::State& state) {
  cache::CamCache c(cache::CacheGeometry{32 * 1024, 32, 32});
  c.fill(0x1000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0x1000, cache::LookupKind::kFull));
  }
}
BENCHMARK(BM_CamCacheFullLookup);

void BM_CamCacheSingleWayLookup(benchmark::State& state) {
  cache::CamCache c(cache::CacheGeometry{32 * 1024, 32, 32});
  c.fill(0x1000, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0x1000, cache::LookupKind::kSingleWay));
  }
}
BENCHMARK(BM_CamCacheSingleWayLookup);

void BM_FetchPath(benchmark::State& state) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  cfg.scheme = static_cast<cache::Scheme>(state.range(0));
  cfg.wp_area_bytes =
      cfg.scheme == cache::Scheme::kWayPlacement ? 16 * 1024 : 0;
  cache::FetchPath fp(cfg);
  u32 pc = 0;
  for (auto _ : state) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
    pc = (pc + 4) & 0x3fff;
  }
}
BENCHMARK(BM_FetchPath)
    ->Arg(static_cast<int>(cache::Scheme::kBaseline))
    ->Arg(static_cast<int>(cache::Scheme::kWayPlacement))
    ->Arg(static_cast<int>(cache::Scheme::kWayMemoization));

void BM_FunctionalExecution(benchmark::State& state) {
  auto w = workloads::makeWorkload("crc");
  const ir::Module module = w->build();
  const mem::Image image =
      layout::linkWithPolicy(module, layout::Policy::kOriginal);
  for (auto _ : state) {
    mem::Memory memory;
    image.loadInto(memory);
    w->prepare(memory, workloads::InputSize::kSmall);
    const auto res = profile::profileImage(image, memory);
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(res.instructions), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void BM_FullProcessorSimulation(benchmark::State& state) {
  auto w = workloads::makeWorkload("crc");
  const ir::Module module = w->build();
  const mem::Image image =
      layout::linkWithPolicy(module, layout::Policy::kOriginal);
  const sim::MachineConfig machine = sim::baselineMachine();
  for (auto _ : state) {
    mem::Memory memory;
    image.loadInto(memory);
    w->prepare(memory, workloads::InputSize::kSmall);
    sim::Processor proc(machine, image, memory);
    const sim::RunStats stats = proc.run();
    state.counters["insts/s"] = benchmark::Counter(
        static_cast<double>(stats.instructions), benchmark::Counter::kIsRate);
  }
}
BENCHMARK(BM_FullProcessorSimulation)->Unit(benchmark::kMillisecond);

void BM_ChainFormationAndLink(benchmark::State& state) {
  auto w = workloads::makeWorkload("rijndael_e");
  ir::Module module = w->build();
  for (ir::BasicBlock& b : module.blocks) b.exec_count = b.id * 7 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout::linkWithPolicy(module, layout::Policy::kWayPlacement));
  }
}
BENCHMARK(BM_ChainFormationAndLink)->Unit(benchmark::kMicrosecond);

void BM_ModuleBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto w = workloads::makeWorkload("sha");
    benchmark::DoNotOptimize(w->build());
  }
}
BENCHMARK(BM_ModuleBuild)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
