// Microbenchmarks (google-benchmark) of the simulator's building
// blocks: cache lookups, fetch-path schemes, functional execution,
// chain formation and linking. These guard against performance
// regressions in the substrate the figure benches run on.
#include <benchmark/benchmark.h>

#include "cache/fetch_path.hpp"
#include "driver/runner.hpp"
#include "layout/strategy.hpp"
#include "profile/profiler.hpp"
#include "sim/processor.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace wp;

void BM_CamCacheFullLookup(benchmark::State& state) {
  cache::CamCache c(cache::CacheGeometry{32 * 1024, 32, 32});
  c.fill(0x1000, false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0x1000, cache::LookupKind::kFull));
  }
}
BENCHMARK(BM_CamCacheFullLookup);

void BM_CamCacheSingleWayLookup(benchmark::State& state) {
  cache::CamCache c(cache::CacheGeometry{32 * 1024, 32, 32});
  c.fill(0x1000, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(c.lookup(0x1000, cache::LookupKind::kSingleWay));
  }
}
BENCHMARK(BM_CamCacheSingleWayLookup);

// Sequential fetches inside the 16 KB way-placed region: single-way
// searches and intra-line skips — the cheap path.
void BM_FetchPath(benchmark::State& state) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  cfg.scheme = static_cast<cache::Scheme>(state.range(0));
  cfg.wp_area_bytes =
      cfg.scheme == cache::Scheme::kWayPlacement ? 16 * 1024 : 0;
  cache::FetchPath fp(cfg);
  u32 pc = 0;
  for (auto _ : state) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
    pc = (pc + 4) & 0x3fff;
  }
}
BENCHMARK(BM_FetchPath)
    ->Arg(static_cast<int>(cache::Scheme::kBaseline))
    ->Arg(static_cast<int>(cache::Scheme::kWayPlacement))
    ->Arg(static_cast<int>(cache::Scheme::kWayMemoization));

// Sequential fetches entirely *outside* the way-placed region (the pc
// walks [16 KB, 32 KB)): every line entry takes the full-lookup
// fallback the way-placement scheme claims costs nothing extra. The
// in-area variant above never leaves the WP area, so without this one
// a regression on the fallback path would go unnoticed.
void BM_FetchPathOutOfArea(benchmark::State& state) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  cfg.scheme = static_cast<cache::Scheme>(state.range(0));
  cfg.wp_area_bytes =
      cfg.scheme == cache::Scheme::kWayPlacement ? 16 * 1024 : 0;
  cache::FetchPath fp(cfg);
  u32 pc = 16 * 1024;
  for (auto _ : state) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
    pc = 16 * 1024 + ((pc + 4) & 0x3fff);
  }
}
BENCHMARK(BM_FetchPathOutOfArea)
    ->Arg(static_cast<int>(cache::Scheme::kBaseline))
    ->Arg(static_cast<int>(cache::Scheme::kWayPlacement))
    ->Arg(static_cast<int>(cache::Scheme::kWayMemoization));

// Batched line fetch (the block engine's path): one fetchLine per
// 8-instruction line instead of 8 fetch() calls.
void BM_FetchLine(benchmark::State& state) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  cfg.scheme = static_cast<cache::Scheme>(state.range(0));
  cfg.wp_area_bytes =
      cfg.scheme == cache::Scheme::kWayPlacement ? 16 * 1024 : 0;
  cache::FetchPath fp(cfg);
  const u32 per_line = cfg.icache.wordsPerLine();
  u32 pc = 0;
  for (auto _ : state) {
    fp.fetchLine(pc, cache::FetchFlow::kSequential, per_line);
    pc = (pc + cfg.icache.line_bytes) & 0x3fff;
  }
}
BENCHMARK(BM_FetchLine)
    ->Arg(static_cast<int>(cache::Scheme::kBaseline))
    ->Arg(static_cast<int>(cache::Scheme::kWayPlacement))
    ->Arg(static_cast<int>(cache::Scheme::kWayMemoization));

void BM_FunctionalExecution(benchmark::State& state) {
  auto w = workloads::makeWorkload("crc");
  const ir::Module module = w->build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  double total_insts = 0;
  for (auto _ : state) {
    mem::Memory memory;
    image.loadInto(memory);
    w->prepare(memory, workloads::InputSize::kSmall);
    const auto res = profile::profileImage(image, memory);
    total_insts += static_cast<double>(res.instructions);
  }
  // kIsRate divides by the *total* elapsed time of every iteration, so
  // the numerator must be the instruction total, not one run's count.
  state.counters["insts/s"] =
      benchmark::Counter(total_insts, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

// Arg 0 = interpreter, 1 = block engine. The CI throughput smoke
// parses the /1 variant's insts/s counter and enforces a floor.
void BM_FullProcessorSimulation(benchmark::State& state) {
  auto w = workloads::makeWorkload("crc");
  const ir::Module module = w->build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  sim::MachineConfig machine = sim::baselineMachine();
  machine.engine =
      state.range(0) == 0 ? sim::Engine::kInterp : sim::Engine::kBlock;
  double total_insts = 0;
  for (auto _ : state) {
    mem::Memory memory;
    image.loadInto(memory);
    w->prepare(memory, workloads::InputSize::kSmall);
    sim::Processor proc(machine, image, memory);
    const sim::RunStats stats = proc.run();
    total_insts += static_cast<double>(stats.instructions);
  }
  // See BM_FunctionalExecution: kIsRate wants the total, not one run.
  state.counters["insts/s"] =
      benchmark::Counter(total_insts, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullProcessorSimulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_ChainFormationAndLink(benchmark::State& state) {
  auto w = workloads::makeWorkload("rijndael_e");
  ir::Module module = w->build();
  for (ir::BasicBlock& b : module.blocks) b.exec_count = b.id * 7 + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        layout::layoutImage(module, "way_placement"));
  }
}
BENCHMARK(BM_ChainFormationAndLink)->Unit(benchmark::kMicrosecond);

void BM_ModuleBuild(benchmark::State& state) {
  for (auto _ : state) {
    auto w = workloads::makeWorkload("sha");
    benchmark::DoNotOptimize(w->build());
  }
}
BENCHMARK(BM_ModuleBuild)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
