// Ablation A2: way-hint accuracy and the cost of its mispredictions
// (paper Section 4.1 claims both are negligible but fully accounted).
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Ablation A2: way-hint bit accuracy and overheads\n"
      "32KB 32-way I-cache, 2KB way-placement area (so the hot\n"
      "region of the larger kernels straddles the boundary)",
      "the Section 4.1 accuracy claim");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(2 * 1024);
  suite.runAll({{icache, wp}});

  TextTable t;
  t.header({"benchmark", "hint accuracy", "lost-saving", "second-access",
            "extra cycles (ppm)"});
  Accumulator acc;
  for (const auto& p : suite.prepared()) {
    const auto view = suite.tryRun(p, icache, wp);
    if (view.quarantined) {
      t.row({p.name, "QUAR", "QUAR", "QUAR", "QUAR"});
      continue;
    }
    const driver::RunResult& r = *view.result;
    const auto& f = r.stats.fetch;
    const u64 resolved = f.hint_correct + f.hint_miss_lost_saving +
                         f.hint_miss_second_access;
    const double accuracy =
        resolved == 0 ? 1.0
                      : static_cast<double>(f.hint_correct) /
                            static_cast<double>(resolved);
    const double ppm = 1e6 * static_cast<double>(f.extra_cycles) /
                       static_cast<double>(r.stats.cycles);
    t.row({p.name, fmtPct(accuracy, 3),
           std::to_string(f.hint_miss_lost_saving),
           std::to_string(f.hint_miss_second_access), fmt(ppm, 1)});
    acc.add(accuracy);
  }
  t.separator();
  t.row({"average", acc.count() > 0 ? fmtPct(acc.mean(), 3) : "QUAR", "", "",
         ""});
  t.print(std::cout);

  std::cout << "\npaper: \"using the way-hint bit to predict a "
               "way-placement access is very accurate\" — measured "
            << (acc.count() > 0 ? fmtPct(acc.mean(), 2) : "QUAR")
            << " average accuracy\n";
  return bench::finish(suite);
}
