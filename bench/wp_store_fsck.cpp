// Offline WP_STORE integrity checker — see driver/store_fsck.hpp.
//
// Usage: wp_store_fsck [--remove] [--verbose] DIR
//
// Exit codes:
//   0  store is clean (or --remove just made it so)
//   1  DIR missing or unlistable
//   2  usage error
//   3  problems found and left in place (report-only mode)
#include <cstdio>
#include <iostream>

#include "driver/store_fsck.hpp"

int main(int argc, char** argv) {
  using namespace wp::driver;

  FsckOptions options;
  std::string error;
  if (!parseFsckArgs(argc, argv, options, error)) {
    std::fprintf(stderr,
                 "error: wp_store_fsck: %s\n"
                 "usage: wp_store_fsck [--remove] [--verbose] DIR\n",
                 error.c_str());
    return 2;
  }
  const FsckReport report = fsckStore(options, std::cout);
  if (!report.dir_ok) return 1;
  if (report.clean() || options.remove) return 0;
  return 3;
}
