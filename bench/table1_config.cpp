// Table 1: the baseline system configuration, printed from the actual
// machine structures so the table can never drift from the simulator.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader("Table 1: Baseline system configuration", "Table 1");

  driver::Runner runner;
  const sim::MachineConfig m = runner.machineFor(
      bench::initialICache(), driver::SchemeSpec::baseline());

  const auto cacheDesc = [](const cache::CacheGeometry& g) {
    return std::to_string(g.size_bytes / 1024) + "KB, " +
           std::to_string(g.ways) + "-Way, " +
           std::to_string(g.line_bytes) + "B Block";
  };

  TextTable t;
  t.header({"Parameter", "Configuration"});
  t.row({"Pipeline", "7/8 stages (in-order issue, scoreboard)"});
  t.row({"Functional Units", "1 ALU, 1 MAC, 1 Load/Store"});
  t.row({"Issue", "Single Issue, In-Order"});
  t.row({"Commit", "Out-of-Order (Scoreboard)"});
  t.row({"Memory Bus Width", "32 Bit"});
  t.row({"Memory Latency",
         std::to_string(m.fetch.mem_latency_cycles) + " Cycles"});
  t.row({"I-TLB, D-TLB",
         std::to_string(m.fetch.tlb_entries) + "-Entry Fully Associative"});
  t.row({"I-Cache", cacheDesc(m.fetch.icache)});
  t.row({"D-Cache", cacheDesc(m.dcache.geometry)});
  t.row({"Branch Predictor",
         std::to_string(m.timing.btb_entries) + "-Entry BTB, " +
             std::to_string(m.timing.branch_mispredict_penalty) +
             "-cycle mispredict"});
  t.row({"Page Size", std::to_string(mem::kPageBytes) + " B"});
  t.print(std::cout);
  return 0;
}
