// Extension E1: four-way scheme comparison. The paper's related work
// cites way prediction [6, Inoue et al.] as the other hardware approach
// but only evaluates way-memoization; this bench adds it, showing where
// way-placement's compile-time certainty beats both hardware guesses.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace wp;
  bench::printHeader(
      "Extension E1: way-placement vs both hardware alternatives\n"
      "32KB 32-way I-cache, 16KB way-placement area, suite average",
      "the related-work comparison of Section 7");

  auto suite = bench::makeSuite();
  const cache::CacheGeometry icache = bench::initialICache();

  struct Row {
    const char* name;
    driver::SchemeSpec spec;
  };
  const Row rows[] = {
      {"way-prediction (MRU) [6]", driver::SchemeSpec::wayPrediction()},
      {"way-memoization [12]", driver::SchemeSpec::wayMemoization()},
      {"way-placement 16KB (ours)",
       driver::SchemeSpec::wayPlacement(16 * 1024)},
  };
  {
    std::vector<driver::SweepExecutor::Cell> grid;
    for (const Row& row : rows) grid.push_back({icache, row.spec});
    suite.runAll(grid);
  }

  TextTable t;
  t.header({"scheme", "I$ energy (avg)", "delay (avg)", "ED (avg)"});
  for (const Row& row : rows) {
    const auto e = suite.averageNormalizedChecked(
        icache, row.spec,
        [](const driver::Normalized& n) { return n.icache_energy; });
    const auto d = suite.averageNormalizedChecked(
        icache, row.spec, [](const driver::Normalized& n) { return n.delay; });
    const auto ed = suite.averageNormalizedChecked(
        icache, row.spec,
        [](const driver::Normalized& n) { return n.ed_product; });
    t.row({row.name, bench::cellPct(e, 1), bench::cellNum(d, 4),
           bench::cellNum(ed, 3)});
  }
  t.print(std::cout);

  std::cout << "\nway prediction guesses and pays a cycle when wrong;\n"
               "way-memoization remembers but stores links in the data\n"
               "array; way-placement *knows* (the compiler fixed the way)\n"
               "and pays neither cost.\n";
  return bench::finish(suite);
}
