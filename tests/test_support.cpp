// Unit tests for the support library: bit utilities, PRNG, statistics,
// the table printer and the thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <stdexcept>

#include "support/bitops.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace wp {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(isPow2(0));
  EXPECT_TRUE(isPow2(1));
  EXPECT_TRUE(isPow2(2));
  EXPECT_FALSE(isPow2(3));
  EXPECT_TRUE(isPow2(1ULL << 40));
  EXPECT_FALSE(isPow2((1ULL << 40) + 1));
}

TEST(Bitops, Log2Exact) {
  EXPECT_EQ(log2Exact(1), 0u);
  EXPECT_EQ(log2Exact(32), 5u);
  EXPECT_EQ(log2Exact(1ULL << 31), 31u);
  EXPECT_THROW(log2Exact(0), SimError);
  EXPECT_THROW(log2Exact(12), SimError);
}

class CeilLog2Test : public ::testing::TestWithParam<std::pair<u64, u32>> {};

TEST_P(CeilLog2Test, Matches) {
  EXPECT_EQ(ceilLog2(GetParam().first), GetParam().second);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CeilLog2Test,
    ::testing::Values(std::pair<u64, u32>{1, 0}, std::pair<u64, u32>{2, 1},
                      std::pair<u64, u32>{3, 2}, std::pair<u64, u32>{4, 2},
                      std::pair<u64, u32>{5, 3}, std::pair<u64, u32>{1024, 10},
                      std::pair<u64, u32>{1025, 11}));

TEST(Bitops, LowMask) {
  EXPECT_EQ(lowMask(0), 0u);
  EXPECT_EQ(lowMask(1), 1u);
  EXPECT_EQ(lowMask(16), 0xffffu);
  EXPECT_EQ(lowMask(64), ~u64{0});
}

TEST(Bitops, Bits) {
  EXPECT_EQ(bits(0xdeadbeef, 31, 24), 0xdeu);
  EXPECT_EQ(bits(0xdeadbeef, 7, 0), 0xefu);
  EXPECT_EQ(bits(0xdeadbeef, 15, 12), 0xbu);
  EXPECT_EQ(bits(0xffffffff, 31, 0), 0xffffffffu);
}

TEST(Bitops, SignExtend) {
  EXPECT_EQ(signExtend(0x8000, 16), -32768);
  EXPECT_EQ(signExtend(0x7fff, 16), 32767);
  EXPECT_EQ(signExtend(0xffffff, 24), -1);
  EXPECT_EQ(signExtend(0x0, 16), 0);
}

TEST(Bitops, AlignUpDown) {
  EXPECT_EQ(alignUp(0, 4), 0u);
  EXPECT_EQ(alignUp(1, 4), 4u);
  EXPECT_EQ(alignUp(4, 4), 4u);
  EXPECT_EQ(alignDown(7, 4), 4u);
  EXPECT_EQ(alignDown(8, 4), 8u);
  EXPECT_EQ(alignUp(1025, 1024), 2048u);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool differ = false;
  for (int i = 0; i < 10 && !differ; ++i) differ = a.next() != b.next();
  EXPECT_TRUE(differ);
}

TEST(Rng, BelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UnitInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Stats, MeanGeomean) {
  const double xs[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(minOf(xs), 1.0);
  EXPECT_DOUBLE_EQ(maxOf(xs), 4.0);
}

TEST(Stats, EmptyThrows) {
  EXPECT_THROW(mean({}), SimError);
  EXPECT_THROW(geomean({}), SimError);
}

TEST(Stats, Accumulator) {
  Accumulator a;
  a.add(3.0);
  a.add(1.0);
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_EQ(a.count(), 3);
}

TEST(Table, RendersAligned) {
  TextTable t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"long-name", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, Fmt) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmtPct(0.503, 1), "50.3%");
}

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threadCount(), 4u);
  std::atomic<int> done{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 200);
}

TEST(ThreadPool, TasksCanSubmitTasks) {
  ThreadPool pool(3);
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&pool, &done] {
      done.fetch_add(1, std::memory_order_relaxed);
      for (int j = 0; j < 4; ++j) {
        pool.submit(
            [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(done.load(), 20 * 5);
}

TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The error is consumed: the pool is reusable afterwards.
  std::atomic<int> done{0};
  pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(done.load(), 1);
}

TEST(ThreadPool, ReusableAcrossWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(done.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
  EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

}  // namespace
}  // namespace wp
