// Interpreter-vs-block-engine equivalence: the block engine is a host
// optimisation, never a model change. Over the full workload suite the
// two engines must agree on the retired instruction stream, the data
// flow, the workload output and every RunStats counter (statsDigest
// also folds in the priced energy and layout ride-alongs), plus the
// strict WP_ENGINE parse and the engine field of the WP_JSON report.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/checkpoint.hpp"
#include "driver/sweep.hpp"
#include "workloads/workload.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

TEST(EngineKnob, DefaultsToBlock) {
  ScopedEnv env("WP_ENGINE", "");
  EXPECT_EQ(driver::engineFromEnv(), sim::Engine::kBlock);
}

TEST(EngineKnob, ParsesBothEngines) {
  {
    ScopedEnv env("WP_ENGINE", "interp");
    EXPECT_EQ(driver::engineFromEnv(), sim::Engine::kInterp);
  }
  {
    ScopedEnv env("WP_ENGINE", "block");
    EXPECT_EQ(driver::engineFromEnv(), sim::Engine::kBlock);
  }
}

TEST(EngineKnob, GarbageIsAStartupErrorNotASilentDefault) {
  ScopedEnv env("WP_ENGINE", "fast");
  EXPECT_EXIT((void)driver::engineFromEnv(), testing::ExitedWithCode(1),
              "WP_ENGINE.*not a valid simulation engine");
}

TEST(EngineKnob, RunnerCapturesTheEngineAtConstruction) {
  ScopedEnv env("WP_ENGINE", "interp");
  driver::Runner runner;
  EXPECT_EQ(runner.engine(), sim::Engine::kInterp);
  EXPECT_EQ(runner.machineFor(kXScale, driver::SchemeSpec::baseline()).engine,
            sim::Engine::kInterp);
}

TEST(EngineJson, ReportNamesTheEngine) {
  ScopedEnv env("WP_ENGINE", "interp");
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1);
  (void)suite.averageNormalized(
      kXScale, driver::SchemeSpec::wayPlacement(16 * 1024),
      [](const driver::Normalized& n) { return n.icache_energy; });
  std::ostringstream os;
  suite.writeJsonReport(os);
  EXPECT_NE(os.str().find("\"engine\": \"interp\""), std::string::npos);
}

// ---------------------------------------------------------------------
// The property test: every workload in the suite, every scheme,
// identical results.

TEST(EngineEquivalence, AllWorkloadsIdenticalAcrossEngines) {
  ScopedEnv interp_env("WP_ENGINE", "interp");
  driver::Runner interp_runner;
  ScopedEnv block_env("WP_ENGINE", "block");
  driver::Runner block_runner;
  ASSERT_EQ(interp_runner.engine(), sim::Engine::kInterp);
  ASSERT_EQ(block_runner.engine(), sim::Engine::kBlock);

  // All four schemes: way placement exercises the richest fetch path
  // (hint, TLB WP bit, single-way lookups, intra-line skips), way
  // memoization the link/flash-clear machinery, way prediction the
  // per-set MRU batching, and the baseline the plain path. One
  // prepared workload is shared per name, so any divergence is the
  // engine's, not the build's.
  const driver::SchemeSpec specs[] = {
      driver::SchemeSpec::baseline(),
      driver::SchemeSpec::wayPlacement(16 * 1024),
      driver::SchemeSpec::wayMemoization(),
      driver::SchemeSpec::wayPrediction(),
  };
  for (const std::string& name : workloads::suiteNames()) {
    SCOPED_TRACE(name);
    const driver::PreparedWorkload p = block_runner.prepare(name);
    for (const driver::SchemeSpec& spec : specs) {
      SCOPED_TRACE(cache::schemeName(spec.scheme));
      const driver::RunResult interp = interp_runner.run(p, kXScale, spec);
      const driver::RunResult block = block_runner.run(p, kXScale, spec);
      EXPECT_EQ(interp.stats.retired_pc_hash, block.stats.retired_pc_hash);
      EXPECT_EQ(interp.stats.dataflow_hash, block.stats.dataflow_hash);
      EXPECT_EQ(interp.stats.instructions, block.stats.instructions);
      EXPECT_EQ(interp.stats.cycles, block.stats.cycles);
      EXPECT_EQ(interp.output, block.output);
      EXPECT_EQ(interp.output,
                p.workload->expected(workloads::InputSize::kLarge));
      // Full RunStats + energy + layout ride-alongs, in one digest.
      EXPECT_EQ(driver::statsDigest(interp), driver::statsDigest(block));
    }
  }
}

}  // namespace
}  // namespace wp
