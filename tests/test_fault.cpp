// Resilience suite: fault injection must never change architecture.
//
// The paper's safety argument (§4.1) is that every piece of
// way-placement state — the way-hint bit, the per-I-TLB-entry WP bit,
// the placement area itself — is advisory: corrupting it costs cycles
// or energy, never correctness. These tests inject each fault class and
// assert the architectural-equivalence invariant: the retired
// instruction stream (retired_pc_hash), the data flow (dataflow_hash)
// and the workload output of a faulted run are bit-identical to the
// fault-free run, and match the host reference.
#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/runner.hpp"
#include "fault/fault.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

/// Runs @p workload under @p scheme clean and with @p faults injected;
/// asserts the faulted run is architecturally identical and correct.
void expectEquivalent(const std::string& workload,
                      const driver::SchemeSpec& scheme,
                      const fault::FaultSpec& faults) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare(workload);

  const driver::RunResult clean = runner.run(p, kXScale, scheme);
  driver::SchemeSpec faulty = scheme;
  faulty.fault = faults;
  const driver::RunResult faulted = runner.run(p, kXScale, faulty);

  ASSERT_GT(faulted.injected.events, 0u) << "injector never fired";
  EXPECT_EQ(clean.injected.events, 0u);

  EXPECT_EQ(faulted.stats.instructions, clean.stats.instructions);
  EXPECT_EQ(faulted.stats.retired_pc_hash, clean.stats.retired_pc_hash);
  EXPECT_EQ(faulted.stats.dataflow_hash, clean.stats.dataflow_hash);
  EXPECT_EQ(faulted.output, clean.output);
  EXPECT_EQ(faulted.output,
            p.workload->expected(workloads::InputSize::kLarge));
}

fault::FaultSpec one(bool fault::FaultSpec::* flag, u64 period = 97) {
  fault::FaultSpec s;
  s.period = period;
  s.*flag = true;
  return s;
}

/// Runs @p f, which must throw SimError; returns the message.
template <typename F>
std::string simErrorOf(F&& f) {
  try {
    f();
  } catch (const SimError& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected a SimError";
  return {};
}

// ---------------------------------------------------------------------
// The architectural-equivalence invariant, per fault class.

TEST(Equivalence, WayHintFlip) {
  expectEquivalent("crc", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::flip_way_hint));
}

TEST(Equivalence, TlbWpBitFlip) {
  expectEquivalent("crc", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::flip_tlb_wp_bit));
}

TEST(Equivalence, TlbWpBitBurstClear) {
  expectEquivalent("sha", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::clear_tlb_wp_bits));
}

TEST(Equivalence, MemoLinkScramble) {
  expectEquivalent("crc", driver::SchemeSpec::wayMemoization(),
                   one(&fault::FaultSpec::scramble_memo_links));
}

TEST(Equivalence, MruScramble) {
  expectEquivalent("crc", driver::SchemeSpec::wayPrediction(),
                   one(&fault::FaultSpec::scramble_mru));
}

TEST(Equivalence, ResizeStorm) {
  expectEquivalent("crc", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::resize_storm, 499));
}

TEST(Equivalence, ResizeStormWithDrowsyLines) {
  // E3 x E4: a storm of WP-area resizes while the drowsy controller is
  // live. Every resize flushes the I-cache, so the controller must drop
  // all awake-line tracking (the stale-state bug this suite guards
  // against) — and the composition must stay architecturally invisible.
  driver::SchemeSpec scheme = driver::SchemeSpec::wayPlacement(16 * 1024);
  scheme.drowsy_window = 2048;
  expectEquivalent("crc", scheme,
                   one(&fault::FaultSpec::resize_storm, 499));
}

TEST(Equivalence, AllClassesWithDrowsyLines) {
  driver::SchemeSpec scheme = driver::SchemeSpec::wayPlacement(16 * 1024);
  scheme.drowsy_window = 2048;
  expectEquivalent("sha", scheme, fault::FaultSpec::allClasses(101));
}

TEST(Equivalence, AllClassesCombined) {
  expectEquivalent("sha", driver::SchemeSpec::wayPlacement(16 * 1024),
                   fault::FaultSpec::allClasses(101));
}

TEST(Equivalence, AllClassesOnWayMemoization) {
  expectEquivalent("bitcount", driver::SchemeSpec::wayMemoization(),
                   fault::FaultSpec::allClasses(101));
}

// ---------------------------------------------------------------------
// The same invariant replayed under WP_ENGINE=block. Attaching the
// injector's fetch hook forces the faulted run onto the interpreter
// fallback (batched line fetches are closed-form only without a hook),
// while the clean run batches whole blocks — so each of these doubles
// as a cross-engine check: a faulted interpreter run must match a
// clean block-engine run bit for bit.

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

TEST(EquivalenceUnderBlockEngine, WayHintFlip) {
  ScopedEnv env("WP_ENGINE", "block");
  expectEquivalent("crc", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::flip_way_hint));
}

TEST(EquivalenceUnderBlockEngine, MemoLinkScramble) {
  ScopedEnv env("WP_ENGINE", "block");
  expectEquivalent("crc", driver::SchemeSpec::wayMemoization(),
                   one(&fault::FaultSpec::scramble_memo_links));
}

TEST(EquivalenceUnderBlockEngine, ResizeStorm) {
  ScopedEnv env("WP_ENGINE", "block");
  expectEquivalent("crc", driver::SchemeSpec::wayPlacement(16 * 1024),
                   one(&fault::FaultSpec::resize_storm, 499));
}

TEST(EquivalenceUnderBlockEngine, AllClassesCombined) {
  ScopedEnv env("WP_ENGINE", "block");
  expectEquivalent("sha", driver::SchemeSpec::wayPlacement(16 * 1024),
                   fault::FaultSpec::allClasses(101));
}

// ---------------------------------------------------------------------
// Fault-injection accounting.

TEST(Injection, StatsBreakDownByClass) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  driver::SchemeSpec spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  spec.fault = fault::FaultSpec::allClasses(101);
  const driver::RunResult r = runner.run(p, kXScale, spec);

  // Way-placement has four applicable classes; with ~hundreds of events
  // the uniform choice must exercise each at least once.
  EXPECT_GT(r.injected.events, 100u);
  EXPECT_GT(r.injected.hint_flips, 0u);
  EXPECT_GT(r.injected.tlb_bit_flips, 0u);
  EXPECT_GT(r.injected.tlb_bits_cleared, 0u);
  EXPECT_GT(r.injected.resizes, 0u);
  // ...and the inapplicable ones never fire.
  EXPECT_EQ(r.injected.links_scrambled, 0u);
  EXPECT_EQ(r.injected.mru_scrambles, 0u);
}

TEST(Injection, DisabledSpecInjectsNothing) {
  fault::FaultSpec off;
  EXPECT_FALSE(off.runtimeEnabled());
  off.flip_way_hint = true;  // flags without a period stay inert
  EXPECT_FALSE(off.runtimeEnabled());
  off.period = 10;
  EXPECT_TRUE(off.runtimeEnabled());
}

// ---------------------------------------------------------------------
// Targeted micro-scenarios for the defensive paths the injector relies
// on: duplicate-fill invalidation and link parity.

// A flipped TLB WP bit can land a way-placement line in a foreign way;
// when the healed bit later way-places the same line, the stale copy
// must be invalidated or the CAM would hold two matching tags.
TEST(Defenses, WayPlacedFillInvalidatesStaleDuplicate) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};  // 8 sets
  cfg.tlb_entries = 4;
  cfg.scheme = cache::Scheme::kWayPlacement;
  cfg.wp_area_bytes = mem::kPageBytes;  // the whole (one-page) program
  cfg.intraline_skip = false;
  cache::FetchPath fp(cfg);
  const cache::FetchPath::FaultSurface s = fp.faultSurface();

  // 0x300 shares set 0 with 0x000 but way-places to way 3.
  fp.fetch(0x000, cache::FetchFlow::kSequential);  // hint learns WP
  ASSERT_TRUE(s.itlb.faultFlipWpBit(0));           // page looks normal now
  fp.fetch(0x300, cache::FetchFlow::kSequential);  // round-robin fill, way 0
  ASSERT_TRUE(s.itlb.faultFlipWpBit(0));           // bit heals
  fp.fetch(0x300, cache::FetchFlow::kSequential);  // full search: hit way 0
  fp.fetch(0x300, cache::FetchFlow::kSequential);  // single-way miss -> refill

  EXPECT_EQ(fp.cacheStats().duplicate_invalidations, 1u);
  const auto way = fp.icache().probe(0x300);
  ASSERT_TRUE(way.has_value());
  EXPECT_EQ(*way, 3u) << "line must end up in its way-placed way";
}

// With a fault hook attached, way-memoization links are parity-checked:
// a rotted link is dropped (full search) instead of fetching the wrong
// way — links, unlike way-placement state, are correctness-critical.
TEST(Defenses, ScrambledMemoLinkIsDroppedNotFollowed) {
  class NopHook final : public cache::FetchFaultHook {
   public:
    void onFetch(cache::FetchPath&) override {}
  };
  NopHook hook;

  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.scheme = cache::Scheme::kWayMemoization;
  cache::FetchPath fp(cfg);
  fp.attachFaultHook(&hook);
  ASSERT_TRUE(fp.faultInjectionArmed());

  Rng rng(7);
  cache::WayMemoizer* memo = fp.faultSurface().memo;
  ASSERT_NE(memo, nullptr);

  // Record the 0x000 -> 0x020 sequential link, rot links, re-follow.
  // Deterministic under the fixed seed; the bound is generous.
  for (int i = 0; i < 100 && fp.fetchStats().link_faults_dropped == 0; ++i) {
    fp.fetch(0x000, cache::FetchFlow::kSequential);
    fp.fetch(0x020, cache::FetchFlow::kSequential);
    memo->faultScrambleLinks(rng, 64);
    fp.fetch(0x000, cache::FetchFlow::kTakenDirect);
    fp.fetch(0x020, cache::FetchFlow::kSequential);
  }
  EXPECT_GE(fp.fetchStats().link_faults_dropped, 1u);
}

// A WP-area resize flushes the whole I-cache, so the drowsy controller
// must restart from zero awake lines — stale awake tracking would make
// the leakage integral lie about lines that no longer exist. The
// accumulated leakage statistics, by contrast, must survive: the run's
// energy history did happen.
TEST(Defenses, ResizeRestartsDrowsyTrackingFromZeroAwakeLines) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.scheme = cache::Scheme::kWayPlacement;
  cfg.wp_area_bytes = mem::kPageBytes;
  cfg.drowsy_window = 256;  // larger than the fetch count below, so the
                            // global drowse sweep never fires mid-test
  cache::FetchPath fp(cfg);

  for (u32 addr = 0; addr < 0x200; addr += 0x20) {
    fp.fetch(addr, cache::FetchFlow::kSequential);
  }
  ASSERT_GT(fp.awakeDrowsyLines(), 0u);
  const u64 ticks_before = fp.drowsyStats().awake_line_ticks +
                           fp.drowsyStats().drowsy_line_ticks;
  ASSERT_GT(ticks_before, 0u);

  fp.resizeWayPlacementArea(2 * mem::kPageBytes);
  EXPECT_EQ(fp.awakeDrowsyLines(), 0u)
      << "flushed cache must not track awake lines";
  EXPECT_EQ(fp.drowsyStats().awake_line_ticks +
                fp.drowsyStats().drowsy_line_ticks,
            ticks_before)
      << "leakage history must survive the resize";

  // Tracking restarts cleanly: the next fetch wakes exactly one line.
  fp.fetch(0x000, cache::FetchFlow::kSequential);
  EXPECT_EQ(fp.awakeDrowsyLines(), 1u);
}

// ---------------------------------------------------------------------
// Profile faults: a damaged training profile may cost energy, never
// correctness — and an unusable one falls back to the original layout.

TEST(ProfileFaults, TruncatedProfileKeepsOutputsCorrect) {
  driver::Runner runner;
  const driver::PreparedWorkload clean = runner.prepare("crc");
  const driver::PreparedWorkload hurt = runner.prepare(
      "crc", workloads::InputSize::kSmall, fault::ProfileFault::kTruncated);
  EXPECT_TRUE(hurt.profile_ok);  // half a dump still validates

  const auto spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::RunResult a = runner.run(clean, kXScale, spec);
  const driver::RunResult b = runner.run(hurt, kXScale, spec);
  // Layout (and thus pc values) may differ; computation must not.
  EXPECT_EQ(a.stats.dataflow_hash, b.stats.dataflow_hash);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(b.output, hurt.workload->expected(workloads::InputSize::kLarge));
}

TEST(ProfileFaults, ScrambledProfileKeepsOutputsCorrect) {
  driver::Runner runner;
  const driver::PreparedWorkload clean = runner.prepare("sha");
  const driver::PreparedWorkload hurt = runner.prepare(
      "sha", workloads::InputSize::kSmall, fault::ProfileFault::kScrambled);
  // Scrambling keeps every id legal, so validation *cannot* catch it —
  // the layout pass just optimises for the wrong hot set.
  EXPECT_TRUE(hurt.profile_ok);

  const auto spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::RunResult a = runner.run(clean, kXScale, spec);
  const driver::RunResult b = runner.run(hurt, kXScale, spec);
  EXPECT_EQ(a.stats.dataflow_hash, b.stats.dataflow_hash);
  EXPECT_EQ(a.output, b.output);
}

TEST(ProfileFaults, EmptyProfileFallsBackToOriginalLayout) {
  driver::Runner runner;
  const driver::PreparedWorkload hurt = runner.prepare(
      "crc", workloads::InputSize::kSmall, fault::ProfileFault::kEmpty);
  EXPECT_FALSE(hurt.profile_ok);
  EXPECT_NE(hurt.profile_warning.find("no block counts"), std::string::npos)
      << hurt.profile_warning;
  // The fallback reuses the original block order.
  EXPECT_EQ(hurt.imageFor("way_placement").code,
            hurt.imageFor("original").code);

  const driver::RunResult r = runner.run(
      hurt, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  EXPECT_EQ(r.output, hurt.workload->expected(workloads::InputSize::kLarge));
}

TEST(ProfileFaults, BogusBlockIdsFallBackToOriginalLayout) {
  driver::Runner runner;
  const driver::PreparedWorkload hurt = runner.prepare(
      "crc", workloads::InputSize::kSmall, fault::ProfileFault::kBogusIds);
  EXPECT_FALSE(hurt.profile_ok);
  EXPECT_NE(hurt.profile_warning.find("unknown block id"), std::string::npos)
      << hurt.profile_warning;
  EXPECT_EQ(hurt.imageFor("way_placement").code,
            hurt.imageFor("original").code);

  const driver::RunResult r = runner.run(
      hurt, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  EXPECT_EQ(r.output, hurt.workload->expected(workloads::InputSize::kLarge));
}

// Stale-profile fence (paper §5 trains on small, evaluates on large):
// a layout trained on the small input must still not *lose* energy on
// the large one, and the self-profiled oracle can only be modestly
// better — way-placement degrades gracefully under profile drift.
TEST(ProfileFaults, StaleSmallInputProfileStillSaves) {
  driver::Runner runner;
  const driver::PreparedWorkload trained = runner.prepare("crc");
  const driver::PreparedWorkload oracle =
      runner.prepare("crc", workloads::InputSize::kLarge);

  const auto spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::Normalized nt = driver::normalize(
      runner.run(trained, kXScale, spec),
      runner.run(trained, kXScale, driver::SchemeSpec::baseline()));
  const driver::Normalized no = driver::normalize(
      runner.run(oracle, kXScale, spec),
      runner.run(oracle, kXScale, driver::SchemeSpec::baseline()));

  EXPECT_LE(nt.icache_energy, 1.0);
  EXPECT_LE(nt.total_energy, 1.0);
  EXPECT_LE(no.icache_energy, nt.icache_energy + 0.02)
      << "oracle layout should be at least as good as the stale one";
}

// ---------------------------------------------------------------------
// Construction-time validation: bad configs fail fast, naming the field.

TEST(Validation, GeometryRejectsNonPowerOfTwoSize) {
  const std::string msg = simErrorOf(
      [] { cache::CamCache c(cache::CacheGeometry{1000, 32, 4}); });
  EXPECT_NE(msg.find("size_bytes"), std::string::npos) << msg;
}

TEST(Validation, GeometryRejectsBadLineAndWays) {
  EXPECT_NE(simErrorOf([] {
              cache::CamCache c(cache::CacheGeometry{1024, 24, 4});
            }).find("line_bytes"),
            std::string::npos);
  EXPECT_NE(simErrorOf([] {
              cache::CamCache c(cache::CacheGeometry{1024, 32, 3});
            }).find("ways"),
            std::string::npos);
  // 2 lines cannot populate 4 ways.
  EXPECT_NE(simErrorOf([] {
              cache::CamCache c(cache::CacheGeometry{64, 32, 4});
            }).find("fewer lines"),
            std::string::npos);
}

TEST(Validation, FetchPathRejectsZeroTlbEntries) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.tlb_entries = 0;
  const std::string msg = simErrorOf([&] { cache::FetchPath fp(cfg); });
  EXPECT_NE(msg.find("tlb_entries"), std::string::npos) << msg;
}

TEST(Validation, FetchPathRejectsUnalignedWpArea) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.scheme = cache::Scheme::kWayPlacement;
  cfg.wp_area_bytes = 100;
  const std::string msg = simErrorOf([&] { cache::FetchPath fp(cfg); });
  EXPECT_NE(msg.find("wp_area_bytes"), std::string::npos) << msg;
}

TEST(Validation, FetchPathRejectsWpAreaOnOtherSchemes) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.scheme = cache::Scheme::kBaseline;
  cfg.wp_area_bytes = mem::kPageBytes;
  const std::string msg = simErrorOf([&] { cache::FetchPath fp(cfg); });
  EXPECT_NE(msg.find("wp_area_bytes"), std::string::npos) << msg;
  EXPECT_NE(msg.find("baseline"), std::string::npos) << msg;
}

TEST(Validation, ResizeGuardNamesTheRunningScheme) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cache::FetchPath fp(cfg);
  const std::string msg =
      simErrorOf([&] { fp.resizeWayPlacementArea(mem::kPageBytes); });
  EXPECT_NE(msg.find("baseline"), std::string::npos) << msg;
}

TEST(Validation, SchemeSpecRejectsBadWpArea) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");

  driver::SchemeSpec zero = driver::SchemeSpec::wayPlacement(0);
  EXPECT_NE(simErrorOf([&] { (void)runner.run(p, kXScale, zero); })
                .find("SchemeSpec.wp_area_bytes"),
            std::string::npos);

  driver::SchemeSpec crooked = driver::SchemeSpec::wayPlacement(100);
  EXPECT_NE(simErrorOf([&] { (void)runner.run(p, kXScale, crooked); })
                .find("SchemeSpec.wp_area_bytes"),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Experiment-seed plumbing (S2): one logged number replays everything.

TEST(Seed, SameSeedReproducesRunsAndInjections) {
  driver::SchemeSpec spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  spec.fault = fault::FaultSpec::allClasses(101);

  driver::Runner a(energy::EnergyParams{}, 42);
  driver::Runner b(energy::EnergyParams{}, 42);
  EXPECT_EQ(a.seed(), 42u);

  const driver::RunResult ra = a.run(a.prepare("crc"), kXScale, spec);
  const driver::RunResult rb = b.run(b.prepare("crc"), kXScale, spec);
  EXPECT_EQ(ra.stats.retired_pc_hash, rb.stats.retired_pc_hash);
  EXPECT_EQ(ra.stats.dataflow_hash, rb.stats.dataflow_hash);
  EXPECT_EQ(ra.output, rb.output);
  EXPECT_EQ(ra.injected.events, rb.injected.events);
  EXPECT_EQ(ra.injected.hint_flips, rb.injected.hint_flips);
  EXPECT_EQ(ra.injected.resizes, rb.injected.resizes);
}

TEST(Seed, DifferentSeedsChangeInputsButStayCorrect) {
  driver::Runner a(energy::EnergyParams{}, 1);
  const driver::PreparedWorkload pa = a.prepare("crc");
  const driver::RunResult ra =
      a.run(pa, kXScale, driver::SchemeSpec::baseline());
  // expected() derives from the workload instance's own seed, so it can
  // be read at any point — no ambient state to re-install.
  const auto ea = pa.workload->expected(workloads::InputSize::kLarge);
  EXPECT_EQ(ra.output, ea);

  driver::Runner b(energy::EnergyParams{}, 2);
  const driver::PreparedWorkload pb = b.prepare("crc");
  const driver::RunResult rb =
      b.run(pb, kXScale, driver::SchemeSpec::baseline());
  const auto eb = pb.workload->expected(workloads::InputSize::kLarge);
  EXPECT_EQ(rb.output, eb);

  EXPECT_NE(ra.stats.dataflow_hash, rb.stats.dataflow_hash)
      << "different seeds should generate different inputs";
  EXPECT_NE(ea, eb);
}

// ---------------------------------------------------------------------
// Switch storms: a co-run at a tiny quantum hammers every switch-time
// flush path (VIVT I-cache flush, memo flash-clear, way-hint reset,
// drowsy re-drowse) thousands of times. FetchPath::switchProcess
// ENSUREs awakeLines() == 0 after each storm, so the drowsy invariant
// breaking surfaces as a SimError, and solo equivalence proves the
// storms never leak into architecture.

TEST(SwitchStorm, DrowsyCoRunSurvivesPerSwitchFlushStorms) {
  driver::SchemeSpec spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  spec.drowsy_window = 16;  // every switch must re-drowse the cache

  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  const driver::PreparedWorkload q = runner.prepare("bitcount");
  const driver::RunResult solo_p = runner.run(p, kXScale, spec);
  const driver::RunResult solo_q = runner.run(q, kXScale, spec);

  driver::SchemeSpec co = spec;
  co.corun_quantum = 499;  // prime: storms drift across loop bodies
  co.corun_tlb = cache::TlbSwitchPolicy::kFlush;
  driver::Runner::CoRunExtra extra;
  const driver::RunResult r = runner.runCoRun(
      {&p, &q}, kXScale, co, workloads::InputSize::kLarge, nullptr, &extra);

  ASSERT_EQ(extra.processes.size(), 2u);
  EXPECT_GT(extra.context_switches, 1000u) << "not a storm";
  EXPECT_GT(r.stats.drowsy.wakeups, 0u) << "drowsy lines never engaged";
  EXPECT_EQ(extra.processes[0].retired_pc_hash,
            solo_p.stats.retired_pc_hash);
  EXPECT_EQ(extra.processes[0].dataflow_hash, solo_p.stats.dataflow_hash);
  EXPECT_EQ(extra.processes[1].retired_pc_hash,
            solo_q.stats.retired_pc_hash);
  EXPECT_EQ(extra.processes[1].dataflow_hash, solo_q.stats.dataflow_hash);
  EXPECT_EQ(extra.processes[0].output,
            p.workload->expected(workloads::InputSize::kLarge));
  EXPECT_EQ(extra.processes[1].output,
            q.workload->expected(workloads::InputSize::kLarge));
}

TEST(SwitchStorm, MemoLinkStormsStayArchitecturallyInvisible) {
  const driver::SchemeSpec spec = driver::SchemeSpec::wayMemoization();

  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  const driver::PreparedWorkload q = runner.prepare("bitcount");
  const driver::RunResult solo_p = runner.run(p, kXScale, spec);

  driver::SchemeSpec co = spec;
  co.corun_quantum = 499;
  driver::Runner::CoRunExtra extra;
  const driver::RunResult r = runner.runCoRun(
      {&p, &q}, kXScale, co, workloads::InputSize::kLarge, nullptr, &extra);

  EXPECT_GT(r.stats.link_flash_clears, extra.context_switches)
      << "each switch must flash-clear the links (plus normal refills)";
  EXPECT_EQ(extra.processes[0].retired_pc_hash,
            solo_p.stats.retired_pc_hash);
  EXPECT_EQ(extra.processes[0].output,
            p.workload->expected(workloads::InputSize::kLarge));
}

}  // namespace
}  // namespace wp
