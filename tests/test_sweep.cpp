// Tests for the parallel sweep executor: memo-key uniqueness,
// deterministic aggregation independent of the worker-thread count, and
// the WP_JSON cell report.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

std::vector<std::string> fastSubset() { return {"crc", "bitcount"}; }

// ---------------------------------------------------------------------
// keyOf: every field that can change a result must change the key.

TEST(SweepKey, DistinctSpecsGetDistinctKeys) {
  std::vector<driver::SchemeSpec> specs;
  specs.push_back(driver::SchemeSpec::baseline());
  specs.push_back(driver::SchemeSpec::wayMemoization());
  specs.push_back(driver::SchemeSpec::wayPrediction());
  specs.push_back(driver::SchemeSpec::wayPlacement(1024));
  specs.push_back(driver::SchemeSpec::wayPlacement(2048));

  {  // each ablation/extension knob on its own
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.intraline_skip = false;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayMemoization();
    s.wm_precise_invalidation = true;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::baseline();
    s.drowsy_window = 2048;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.layout = layout::Policy::kRandom;
    specs.push_back(s);
  }

  // Fault schedules: period, seed and each class flag are key material.
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(101);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(202);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(101, 7);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.period = 101;
    s.fault.flip_way_hint = true;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.period = 101;
    s.fault.resize_storm = true;
    specs.push_back(s);
  }

  std::set<std::string> keys;
  for (const driver::SchemeSpec& s : specs) {
    keys.insert(driver::SweepExecutor::keyOf("crc", kXScale, s));
  }
  EXPECT_EQ(keys.size(), specs.size())
      << "two distinct SchemeSpecs collided on one memo key";

  // Workload and geometry are key material too.
  const driver::SchemeSpec base = driver::SchemeSpec::baseline();
  keys.insert(driver::SweepExecutor::keyOf("sha", kXScale, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{16 * 1024, 32, 32}, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{32 * 1024, 16, 32}, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{32 * 1024, 32, 16}, base));
  EXPECT_EQ(keys.size(), specs.size() + 4);
}

// ---------------------------------------------------------------------
// Determinism: the same grid aggregated on 1 and on 4 threads must give
// bit-identical numbers (memoized cells + fixed aggregation order).

TEST(SweepExecutor, AggregationIsBitIdenticalAcrossJobCounts) {
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  const auto energy = [](const driver::Normalized& n) {
    return n.icache_energy;
  };
  const auto ed = [](const driver::Normalized& n) { return n.ed_product; };

  driver::SweepExecutor serial(fastSubset(), energy::EnergyParams{}, 0, 1);
  driver::SweepExecutor parallel(fastSubset(), energy::EnergyParams{}, 0, 4);
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(parallel.jobs(), 4u);

  parallel.runAll({{kXScale, wp}, {kXScale, wm}});

  EXPECT_EQ(serial.averageNormalized(kXScale, wp, energy),
            parallel.averageNormalized(kXScale, wp, energy));
  EXPECT_EQ(serial.averageNormalized(kXScale, wm, energy),
            parallel.averageNormalized(kXScale, wm, energy));
  EXPECT_EQ(serial.averageNormalized(kXScale, wp, ed),
            parallel.averageNormalized(kXScale, wp, ed));

  // The memoized raw results are identical too, not just the averages.
  for (std::size_t i = 0; i < serial.prepared().size(); ++i) {
    const auto& ps = serial.prepared()[i];
    const auto& pp = parallel.prepared()[i];
    ASSERT_EQ(ps.name, pp.name) << "preparation order must be stable";
    const driver::RunResult& rs = serial.run(ps, kXScale, wp);
    const driver::RunResult& rp = parallel.run(pp, kXScale, wp);
    EXPECT_EQ(rs.stats.cycles, rp.stats.cycles);
    EXPECT_EQ(rs.stats.dataflow_hash, rp.stats.dataflow_hash);
    EXPECT_EQ(rs.output, rp.output);
  }
}

TEST(SweepExecutor, RunMemoizesAndReturnsStableReferences) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
  const auto& p = suite.prepared().at(0);
  const driver::RunResult& a =
      suite.run(p, kXScale, driver::SchemeSpec::baseline());
  const driver::RunResult& b =
      suite.run(p, kXScale, driver::SchemeSpec::baseline());
  EXPECT_EQ(&a, &b) << "second request must hit the memo";
}

// ---------------------------------------------------------------------
// JSON report round-trip.

// Minimal extraction of `"key": <number>` at/after `from`.
double jsonNumber(const std::string& json, const std::string& key,
                  std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle, from);
  EXPECT_NE(at, std::string::npos) << "missing JSON key " << key;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

TEST(SweepExecutor, JsonReportRoundTripsCellMetrics) {
  driver::SweepExecutor suite(fastSubset(), energy::EnergyParams{}, 0, 2);
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  suite.runAll({{kXScale, wp}});

  std::ostringstream os;
  suite.writeJsonReport(os);
  const std::string json = os.str();

  EXPECT_EQ(jsonNumber(json, "seed"), 0.0);
  EXPECT_EQ(jsonNumber(json, "jobs"), 2.0);
  EXPECT_GT(jsonNumber(json, "wall_seconds"), 0.0);
  EXPECT_EQ(jsonNumber(json, "workloads"), 2.0);

  // Each workload's cell carries exactly the normalized metrics the
  // tables are built from, at full precision.
  for (const auto& p : suite.prepared()) {
    const driver::Normalized n = driver::normalize(
        suite.run(p, kXScale, wp),
        suite.run(p, kXScale, driver::SchemeSpec::baseline()), p.name);
    const std::size_t cell = json.find("\"workload\": \"" + p.name + "\"");
    ASSERT_NE(cell, std::string::npos) << "no JSON cell for " << p.name;
    EXPECT_EQ(jsonNumber(json, "icache_energy", cell), n.icache_energy);
    EXPECT_EQ(jsonNumber(json, "total_energy", cell), n.total_energy);
    EXPECT_EQ(jsonNumber(json, "delay", cell), n.delay);
    EXPECT_EQ(jsonNumber(json, "ed_product", cell), n.ed_product);
    EXPECT_EQ(jsonNumber(json, "wp_area_bytes", cell), 16384.0);
  }

  // Baseline cells are not reported (they normalize to 1 by definition).
  EXPECT_EQ(json.find("\"scheme\": \"baseline\""), std::string::npos);
}

}  // namespace
}  // namespace wp
