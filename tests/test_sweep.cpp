// Tests for the parallel sweep executor: memo-key uniqueness,
// deterministic aggregation independent of the worker-thread count, the
// WP_JSON cell report, the WP_TRACE event log, and the fail-loud policy
// for unwritable report paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/sweep.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

std::vector<std::string> fastSubset() { return {"crc", "bitcount"}; }

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------
// keyOf: every field that can change a result must change the key.

TEST(SweepKey, DistinctSpecsGetDistinctKeys) {
  std::vector<driver::SchemeSpec> specs;
  specs.push_back(driver::SchemeSpec::baseline());
  specs.push_back(driver::SchemeSpec::wayMemoization());
  specs.push_back(driver::SchemeSpec::wayPrediction());
  specs.push_back(driver::SchemeSpec::wayPlacement(1024));
  specs.push_back(driver::SchemeSpec::wayPlacement(2048));

  {  // each ablation/extension knob on its own
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.intraline_skip = false;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayMemoization();
    s.wm_precise_invalidation = true;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::baseline();
    s.drowsy_window = 2048;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.layout = "random";
    specs.push_back(s);
  }

  // Fault schedules: period, seed and each class flag are key material.
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(101);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(202);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault = fault::FaultSpec::allClasses(101, 7);
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.period = 101;
    s.fault.flip_way_hint = true;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.period = 101;
    s.fault.resize_storm = true;
    specs.push_back(s);
  }

  // Cell-fault schedules (the supervision layer): kind and failure
  // count are key material, so a faulted cell never aliases the clean
  // one in the memo or the checkpoint journal.
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.cell_fault = fault::CellFault::kTransient;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.cell_fault = fault::CellFault::kTransient;
    s.fault.cell_fault_failures = 2;
    specs.push_back(s);
  }
  {
    driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
    s.fault.cell_fault = fault::CellFault::kPersistent;
    specs.push_back(s);
  }

  std::set<std::string> keys;
  for (const driver::SchemeSpec& s : specs) {
    keys.insert(driver::SweepExecutor::keyOf("crc", kXScale, s));
  }
  EXPECT_EQ(keys.size(), specs.size())
      << "two distinct SchemeSpecs collided on one memo key";

  // Workload and geometry are key material too.
  const driver::SchemeSpec base = driver::SchemeSpec::baseline();
  keys.insert(driver::SweepExecutor::keyOf("sha", kXScale, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{16 * 1024, 32, 32}, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{32 * 1024, 16, 32}, base));
  keys.insert(driver::SweepExecutor::keyOf(
      "crc", cache::CacheGeometry{32 * 1024, 32, 16}, base));
  EXPECT_EQ(keys.size(), specs.size() + 4);
}

// ---------------------------------------------------------------------
// Determinism: the same grid aggregated on 1 and on 4 threads must give
// bit-identical numbers (memoized cells + fixed aggregation order).

TEST(SweepExecutor, AggregationIsBitIdenticalAcrossJobCounts) {
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  const auto energy = [](const driver::Normalized& n) {
    return n.icache_energy;
  };
  const auto ed = [](const driver::Normalized& n) { return n.ed_product; };

  driver::SweepExecutor serial(fastSubset(), energy::EnergyParams{}, 0, 1);
  driver::SweepExecutor parallel(fastSubset(), energy::EnergyParams{}, 0, 4);
  EXPECT_EQ(serial.jobs(), 1u);
  EXPECT_EQ(parallel.jobs(), 4u);

  parallel.runAll({{kXScale, wp}, {kXScale, wm}});

  EXPECT_EQ(serial.averageNormalized(kXScale, wp, energy),
            parallel.averageNormalized(kXScale, wp, energy));
  EXPECT_EQ(serial.averageNormalized(kXScale, wm, energy),
            parallel.averageNormalized(kXScale, wm, energy));
  EXPECT_EQ(serial.averageNormalized(kXScale, wp, ed),
            parallel.averageNormalized(kXScale, wp, ed));

  // The memoized raw results are identical too, not just the averages.
  for (std::size_t i = 0; i < serial.prepared().size(); ++i) {
    const auto& ps = serial.prepared()[i];
    const auto& pp = parallel.prepared()[i];
    ASSERT_EQ(ps.name, pp.name) << "preparation order must be stable";
    const driver::RunResult& rs = serial.run(ps, kXScale, wp);
    const driver::RunResult& rp = parallel.run(pp, kXScale, wp);
    EXPECT_EQ(rs.stats.cycles, rp.stats.cycles);
    EXPECT_EQ(rs.stats.dataflow_hash, rp.stats.dataflow_hash);
    EXPECT_EQ(rs.output, rp.output);
  }
}

TEST(SweepExecutor, RunMemoizesAndReturnsStableReferences) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
  const auto& p = suite.prepared().at(0);
  const driver::RunResult& a =
      suite.run(p, kXScale, driver::SchemeSpec::baseline());
  const driver::RunResult& b =
      suite.run(p, kXScale, driver::SchemeSpec::baseline());
  EXPECT_EQ(&a, &b) << "second request must hit the memo";
}

// ---------------------------------------------------------------------
// JSON report round-trip.

// Minimal extraction of `"key": <number>` at/after `from`.
double jsonNumber(const std::string& json, const std::string& key,
                  std::size_t from = 0) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = json.find(needle, from);
  EXPECT_NE(at, std::string::npos) << "missing JSON key " << key;
  if (at == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

TEST(SweepExecutor, JsonReportRoundTripsCellMetrics) {
  driver::SweepExecutor suite(fastSubset(), energy::EnergyParams{}, 0, 2);
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  suite.runAll({{kXScale, wp}});

  std::ostringstream os;
  suite.writeJsonReport(os);
  const std::string json = os.str();

  EXPECT_EQ(jsonNumber(json, "seed"), 0.0);
  EXPECT_EQ(jsonNumber(json, "jobs"), 2.0);
  EXPECT_GT(jsonNumber(json, "wall_seconds"), 0.0);
  EXPECT_EQ(jsonNumber(json, "workloads"), 2.0);

  // Each workload's cell carries exactly the normalized metrics the
  // tables are built from, at full precision. Search inside the cells
  // array — the prepare section also names every workload.
  const std::size_t cells_at = json.find("\"cells\": [");
  ASSERT_NE(cells_at, std::string::npos);
  for (const auto& p : suite.prepared()) {
    const driver::Normalized n = driver::normalize(
        suite.run(p, kXScale, wp),
        suite.run(p, kXScale, driver::SchemeSpec::baseline()), p.name);
    const std::size_t cell =
        json.find("\"workload\": \"" + p.name + "\"", cells_at);
    ASSERT_NE(cell, std::string::npos) << "no JSON cell for " << p.name;
    EXPECT_EQ(jsonNumber(json, "icache_energy", cell), n.icache_energy);
    EXPECT_EQ(jsonNumber(json, "total_energy", cell), n.total_energy);
    EXPECT_EQ(jsonNumber(json, "delay", cell), n.delay);
    EXPECT_EQ(jsonNumber(json, "ed_product", cell), n.ed_product);
    EXPECT_EQ(jsonNumber(json, "wp_area_bytes", cell), 16384.0);
  }

  // Baseline cells are not reported (they normalize to 1 by definition).
  EXPECT_EQ(json.find("\"scheme\": \"baseline\""), std::string::npos);
}

TEST(SweepExecutor, JsonReportCarriesObservabilityFields) {
  driver::SweepExecutor suite(fastSubset(), energy::EnergyParams{}, 0, 2);
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);
  suite.runAll({{kXScale, wp}});

  std::ostringstream os;
  suite.writeJsonReport(os);
  const std::string json = os.str();

  // Host aggregate: guest instructions, simulate time, MIPS, memo stats
  // and the build→price phase breakdown.
  EXPECT_GT(jsonNumber(json, "guest_instructions"), 0.0);
  EXPECT_GT(jsonNumber(json, "simulate_seconds"), 0.0);
  EXPECT_GT(jsonNumber(json, "guest_mips"), 0.0);
  EXPECT_EQ(jsonNumber(json, "cells_computed"), 4.0)
      << "2 workloads x (baseline + way-placement)";
  const std::size_t phases = json.find("\"phase_seconds\"");
  ASSERT_NE(phases, std::string::npos);
  EXPECT_GE(jsonNumber(json, "build", phases), 0.0);
  EXPECT_GT(jsonNumber(json, "profile", phases), 0.0);
  EXPECT_GE(jsonNumber(json, "layout", phases), 0.0);
  EXPECT_GE(jsonNumber(json, "price", phases), 0.0);

  // Per-workload prepare records.
  const std::size_t prep = json.find("\"prepare\": [");
  ASSERT_NE(prep, std::string::npos);
  EXPECT_GT(jsonNumber(json, "profile_seconds", prep), 0.0);
  EXPECT_GT(jsonNumber(json, "profile_instructions", prep), 0.0);

  // Per-cell wall-clock, phase breakdown and guest throughput.
  const std::size_t cell = json.find("\"scheme\": \"way-placement\"");
  ASSERT_NE(cell, std::string::npos);
  EXPECT_GT(jsonNumber(json, "wall_seconds", cell), 0.0);
  EXPECT_GT(jsonNumber(json, "simulate_seconds", cell), 0.0);
  EXPECT_GE(jsonNumber(json, "price_seconds", cell), 0.0);
  EXPECT_GT(jsonNumber(json, "guest_mips", cell), 0.0);
  EXPECT_GT(jsonNumber(json, "instructions", cell), 0.0);
  // Two pool workers: the computing worker is 0 or 1.
  EXPECT_GE(jsonNumber(json, "worker", cell), 0.0);
  EXPECT_LE(jsonNumber(json, "worker", cell), 1.0);

  // The LayoutReport ride-alongs: canonical strategy name, chains,
  // repairs, and the WP-area dynamic-instruction coverage.
  EXPECT_NE(json.find("\"layout\": \"way_placement\"", cell),
            std::string::npos);
  EXPECT_GT(jsonNumber(json, "layout_chains", cell), 0.0);
  EXPECT_GE(jsonNumber(json, "layout_repairs", cell), 0.0);
  EXPECT_GT(jsonNumber(json, "wp_area_coverage", cell), 0.0);
  EXPECT_LE(jsonNumber(json, "wp_area_coverage", cell), 1.0);
}

TEST(SweepKey, LayoutStrategiesAreKeyMaterialAndAliasesCanonicalize) {
  driver::SchemeSpec s = driver::SchemeSpec::wayPlacement(1024);
  std::set<std::string> keys;
  for (const layout::LayoutStrategy* strategy : layout::strategies()) {
    s.layout = strategy->name;
    keys.insert(driver::SweepExecutor::keyOf("crc", kXScale, s));
  }
  EXPECT_EQ(keys.size(), layout::strategies().size())
      << "two layout strategies collided on one memo key";

  // The legacy alias spelling memoizes to the same cell as the
  // canonical name — same image, same result, one simulation.
  s.layout = "way_placement";
  const std::string canonical =
      driver::SweepExecutor::keyOf("crc", kXScale, s);
  s.layout = "way-placement";
  EXPECT_EQ(driver::SweepExecutor::keyOf("crc", kXScale, s), canonical);

  // Parameter overrides are key material: a tuned spec must never
  // collide with the default-params cell it was derived from...
  s.layout = "way_placement{chain_hot_threshold=64}";
  EXPECT_NE(driver::SweepExecutor::keyOf("crc", kXScale, s), canonical);
  // ...but spelling out a registered default is the same experiment,
  // and any spelling of the same overrides normalizes to one key.
  s.layout = "way_placement{chain_hot_threshold=0}";
  EXPECT_EQ(driver::SweepExecutor::keyOf("crc", kXScale, s), canonical);
  s.layout = "exttsp{tsp_forward_weight=0.2,tsp_forward_bytes=512}";
  const std::string tuned = driver::SweepExecutor::keyOf("crc", kXScale, s);
  s.layout = "exttsp{tsp_forward_bytes=512,tsp_forward_weight=0.2}";
  EXPECT_EQ(driver::SweepExecutor::keyOf("crc", kXScale, s), tuned);
}

// ---------------------------------------------------------------------
// WP_TRACE: the JSONL event log records the sweep without changing it.

TEST(SweepTrace, WritesEventsAndDoesNotPerturbResults) {
  const std::string path = testing::TempDir() + "sweep_trace_test.jsonl";
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(16 * 1024);

  u64 traced_cycles = 0;
  {
    ScopedEnv env("WP_TRACE", path.c_str());
    driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
    EXPECT_TRUE(suite.tracing());
    suite.runAll({{kXScale, wp}});
    traced_cycles = suite.run(suite.prepared().at(0), kXScale, wp)
                        .stats.cycles;
  }  // destructor writes sweep_end

  driver::SweepExecutor plain({"crc"}, energy::EnergyParams{}, 0, 2);
  EXPECT_FALSE(plain.tracing());
  plain.runAll({{kXScale, wp}});
  EXPECT_EQ(plain.run(plain.prepared().at(0), kXScale, wp).stats.cycles,
            traced_cycles)
      << "tracing must not perturb the simulated machine";

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << path;
  std::string line;
  std::vector<std::string> events;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    const std::size_t ev = line.find("\"ev\": \"");
    ASSERT_NE(ev, std::string::npos) << line;
    events.push_back(line.substr(ev + 7, line.find('"', ev + 7) - (ev + 7)));
  }
  std::remove(path.c_str());

  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front(), "sweep_start");
  EXPECT_EQ(events.back(), "sweep_end");
  const auto count = [&events](const std::string& name) {
    return std::count(events.begin(), events.end(), name);
  };
  EXPECT_EQ(count("prepare"), 1);
  EXPECT_EQ(count("cell_start"), 2) << "baseline + way-placement";
  EXPECT_EQ(count("cell_end"), 2);
  EXPECT_GE(count("memo_hit"), 1) << "the explicit run() re-read a cell";
}

// ---------------------------------------------------------------------
// Fail-loud report paths: a requested artifact that cannot be produced
// exits with a message naming the knob, instead of silently vanishing.

using SweepReportDeathTest = ::testing::Test;

TEST(SweepReportDeathTest, UnwritableJsonPathExitsNamingWpJson) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1);
  ScopedEnv env("WP_JSON", "/nonexistent-dir-zzz/report.json");
  EXPECT_EXIT(suite.emitJsonIfRequested(), testing::ExitedWithCode(1),
              "WP_JSON.*cannot open");
}

TEST(SweepReportDeathTest, UnwritableTracePathExitsNamingWpTrace) {
  ScopedEnv env("WP_TRACE", "/nonexistent-dir-zzz/trace.jsonl");
  EXPECT_EXIT(
      driver::SweepExecutor({"crc"}, energy::EnergyParams{}, 0, 1),
      testing::ExitedWithCode(1), "WP_TRACE.*cannot open");
}

TEST(SweepReportDeathTest, UnwritableCheckpointPathExitsNamingKnob) {
  ScopedEnv env("WP_CHECKPOINT", "/nonexistent-dir-zzz/journal.jsonl");
  EXPECT_EXIT(
      driver::SweepExecutor({"crc"}, energy::EnergyParams{}, 0, 1),
      testing::ExitedWithCode(1), "WP_CHECKPOINT.*cannot open");
}

// ---------------------------------------------------------------------
// Strict supervision knobs: garbage exits 1 naming the knob, never a
// silent default (same policy as WP_JOBS/WP_SEED).

using SupervisorEnvDeathTest = ::testing::Test;

TEST(SupervisorEnvDeathTest, GarbageRetriesExits) {
  ScopedEnv env("WP_RETRIES", "abc");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_RETRIES");
}

TEST(SupervisorEnvDeathTest, OutOfRangeRetriesExits) {
  ScopedEnv env("WP_RETRIES", "101");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_RETRIES");
}

TEST(SupervisorEnvDeathTest, GarbageTimeoutExits) {
  ScopedEnv env("WP_CELL_TIMEOUT_MS", "50ms");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_TIMEOUT_MS");
}

TEST(SupervisorEnvDeathTest, NegativeTimeoutExits) {
  ScopedEnv env("WP_CELL_TIMEOUT_MS", "-5");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_TIMEOUT_MS");
}

TEST(SupervisorEnvDeathTest, GarbageCellFaultExits) {
  ScopedEnv env("WP_CELL_FAULT", "flaky");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_FAULT");
}

TEST(SupervisorEnvDeathTest, ZeroTransientFailureCountExits) {
  ScopedEnv env("WP_CELL_FAULT", "transient:0");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_FAULT.*failure count");
}

TEST(SupervisorEnvDeathTest, ExecutorParsesKnobsBeforePreparing) {
  // The parse happens in the constructor, before any expensive work.
  ScopedEnv env("WP_RETRIES", "not-a-number");
  EXPECT_EXIT(driver::SweepExecutor({"crc"}, energy::EnergyParams{}, 0, 1),
              testing::ExitedWithCode(1), "WP_RETRIES");
}

}  // namespace
}  // namespace wp
