// Memory and image tests: byte/word accessors, endianness, alignment
// and range checking, image loading.
#include <gtest/gtest.h>

#include "mem/image.hpp"
#include "mem/memory.hpp"

namespace wp::mem {
namespace {

TEST(Memory, WordRoundTripLittleEndian) {
  Memory m(64 * 1024);
  m.store32(0x100, 0xdeadbeefu);
  EXPECT_EQ(m.load32(0x100), 0xdeadbeefu);
  EXPECT_EQ(m.load8(0x100), 0xefu);
  EXPECT_EQ(m.load8(0x101), 0xbeu);
  EXPECT_EQ(m.load8(0x102), 0xadu);
  EXPECT_EQ(m.load8(0x103), 0xdeu);
}

TEST(Memory, ByteStores) {
  Memory m(4096);
  m.store8(0, 0x12);
  m.store8(1, 0x34);
  m.store8(2, 0x56);
  m.store8(3, 0x78);
  EXPECT_EQ(m.load32(0), 0x78563412u);
}

TEST(Memory, RejectsUnaligned) {
  Memory m(4096);
  EXPECT_THROW(m.load32(2), SimError);
  EXPECT_THROW(m.store32(1, 0), SimError);
}

TEST(Memory, RejectsOutOfRange) {
  Memory m(4096);
  EXPECT_THROW(m.load8(4096), SimError);
  EXPECT_THROW(m.load32(4094), SimError);
  EXPECT_THROW(m.store8(5000, 1), SimError);
}

TEST(Memory, BulkBlockIo) {
  Memory m(4096);
  const std::vector<u8> data = {1, 2, 3, 4, 5};
  m.writeBlock(100, data);
  EXPECT_EQ(m.readBlock(100, 5), data);
  EXPECT_THROW(m.writeBlock(4094, data), SimError);
}

TEST(Memory, ClearZeroes) {
  Memory m(4096);
  m.store32(0, 0xffffffffu);
  m.clear();
  EXPECT_EQ(m.load32(0), 0u);
}

TEST(Memory, PageOf) {
  EXPECT_EQ(pageOf(0), 0u);
  EXPECT_EQ(pageOf(kPageBytes - 1), 0u);
  EXPECT_EQ(pageOf(kPageBytes), 1u);
  EXPECT_EQ(pageOf(5 * kPageBytes + 7), 5u);
}

TEST(Image, LoadsCodeAndData) {
  Image img;
  img.code = {0x11, 0x22, 0x33, 0x44};
  img.data = {0xaa, 0xbb};
  Memory m;
  img.loadInto(m);
  EXPECT_EQ(m.load8(kCodeBase), 0x11);
  EXPECT_EQ(m.load8(kCodeBase + 3), 0x44);
  EXPECT_EQ(m.load8(kDataBase), 0xaa);
  EXPECT_EQ(m.load8(kDataBase + 1), 0xbb);
}

TEST(Image, RejectsOversizedCode) {
  Image img;
  img.code.assign(kDataBase - kCodeBase + 4, 0);
  Memory m;
  EXPECT_THROW(img.loadInto(m), SimError);
}

TEST(Memory, RequiresWholePages) {
  EXPECT_THROW(Memory(kPageBytes + 1), SimError);
}

}  // namespace
}  // namespace wp::mem
