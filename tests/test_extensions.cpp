// Tests for the extension features: MRU way prediction (the related-work
// hardware alternative), the RAM-tag energy model, and runtime
// way-placement area resizing.
#include <gtest/gtest.h>

#include "driver/runner.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

// --- way prediction --------------------------------------------------------

cache::FetchPathConfig waypredConfig() {
  cache::FetchPathConfig c;
  c.icache = cache::CacheGeometry{1024, 32, 4};
  c.scheme = cache::Scheme::kWayPrediction;
  return c;
}

TEST(WayPrediction, MruHitChecksOneTag) {
  cache::FetchPath fp(waypredConfig());
  fp.fetch(0x0, cache::FetchFlow::kSequential);    // cold miss
  const u64 tags = fp.cacheStats().tag_compares;
  fp.fetch(0x0, cache::FetchFlow::kTakenDirect);   // MRU hit (same line
                                                   // but force no skip)
  // Intra-line skip also counts as success; make a crossing instead.
  fp.fetch(0x40, cache::FetchFlow::kSequential);   // different line, miss
  fp.fetch(0x0, cache::FetchFlow::kTakenDirect);
  EXPECT_GT(fp.cacheStats().tag_compares, tags);
  EXPECT_GT(fp.fetchStats().waypred_correct + fp.fetchStats().sameline_skips,
            0u);
}

TEST(WayPrediction, MispredictPaysCycleAndPartialSearch) {
  cache::FetchPathConfig cfg = waypredConfig();
  cfg.intraline_skip = false;
  cache::FetchPath fp(cfg);
  const u32 set_stride = 32 * 8;  // 8 sets
  // Two lines in the same set, alternating: every access mispredicts
  // once the set holds both.
  fp.fetch(0x0, cache::FetchFlow::kTakenDirect);
  fp.fetch(set_stride, cache::FetchFlow::kTakenDirect);
  const u64 mis_before = fp.fetchStats().waypred_mispredict;
  const u32 cycles = fp.fetch(0x0, cache::FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.fetchStats().waypred_mispredict, mis_before + 1);
  EXPECT_EQ(cycles, 2u);  // hit after one-cycle mispredict penalty
  EXPECT_GE(fp.cacheStats().partial_lookups, 1u);
}

TEST(WayPrediction, SequentialCodeMostlyPredictsViaMru) {
  cache::FetchPath fp(waypredConfig());
  for (u32 pc = 0; pc < 512; pc += 4) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
  }
  const auto& f = fp.fetchStats();
  // 128 fetches over 16 lines: 112 within-line skips. Every crossing is
  // a cold miss, which necessarily "mispredicts" (predicted way probed,
  // then the rest, then memory) — but never twice for the same line.
  EXPECT_EQ(f.sameline_skips, 112u);
  EXPECT_EQ(f.waypred_mispredict, 16u);
  EXPECT_EQ(f.waypred_correct, 0u);
}

TEST(WayPrediction, EndToEndBetweenBaselineAndWayPlacement) {
  // sha's 6 KB hot region forces set conflicts, where MRU guessing
  // mispredicts; on tiny kernels (crc) the schemes tie — see bench E1.
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("sha");
  const auto base = runner.run(p, kXScale, driver::SchemeSpec::baseline());
  const auto pred = runner.run(p, kXScale, driver::SchemeSpec::wayPrediction());
  const auto wp =
      runner.run(p, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  const auto npred = driver::normalize(pred, base);
  const auto nwp = driver::normalize(wp, base);
  // Way prediction saves energy but pays mispredict cycles; way-placement
  // is at least as good on energy and strictly better on ED.
  EXPECT_LT(npred.icache_energy, 1.0);
  EXPECT_LE(nwp.icache_energy, npred.icache_energy + 0.01);
  EXPECT_LE(nwp.delay, npred.delay + 1e-9);
  EXPECT_LT(nwp.ed_product, npred.ed_product + 1e-6);
  EXPECT_GT(pred.stats.fetch.waypred_mispredict, 0u);
}

// --- RAM-tag energy model ---------------------------------------------------

TEST(RamEnergy, FullAccessReadsAllWays) {
  const energy::EnergyModel m;
  cache::CacheStats s;
  s.accesses = 1;
  s.full_lookups = 1;
  s.tag_compares = 32;
  s.matchline_precharges = 32;
  s.data_word_reads = 1;
  const auto cam = m.cacheEnergy(kXScale, s);
  const auto ram = m.cacheEnergyRam(kXScale, s);
  // The RAM organisation burns far more data energy per conventional
  // access (32 rows vs 1).
  EXPECT_GT(ram.data, 10.0 * cam.data);
}

TEST(RamEnergy, SingleWayAccessIsCheapOnBothStyles) {
  const energy::EnergyModel m;
  cache::CacheStats s;
  s.accesses = 1;
  s.single_way_lookups = 1;
  s.tag_compares = 1;
  s.matchline_precharges = 1;
  s.data_word_reads = 1;
  const auto cam = m.cacheEnergy(kXScale, s);
  const auto ram = m.cacheEnergyRam(kXScale, s);
  EXPECT_LT(ram.total(), 2.0 * cam.total());
}

TEST(RamEnergy, WayPlacementSavesMoreOnRamThanCam) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("sha");
  const auto base = runner.run(p, kXScale, driver::SchemeSpec::baseline());
  const auto wp =
      runner.run(p, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  const energy::EnergyModel& m = runner.energyModel();

  const double cam_ratio = wp.energy.icache.total() / base.energy.icache.total();
  const double ram_wp =
      m.cacheEnergyRam(kXScale, wp.stats.icache).total();
  const double ram_base =
      m.cacheEnergyRam(kXScale, base.stats.icache).total();
  EXPECT_LT(ram_wp / ram_base, cam_ratio);
  EXPECT_LT(ram_wp / ram_base, 0.25);  // most of W-1 data reads removed
}

// --- runtime area resizing --------------------------------------------------

TEST(AreaResize, OnlyValidForWayPlacement) {
  cache::FetchPathConfig cfg;
  cfg.icache = kXScale;
  cfg.scheme = cache::Scheme::kBaseline;
  cache::FetchPath fp(cfg);
  EXPECT_THROW(fp.resizeWayPlacementArea(1024), SimError);
}

TEST(AreaResize, FlushesAndKeepsWorking) {
  cache::FetchPathConfig cfg;
  cfg.icache = cache::CacheGeometry{1024, 32, 4};
  cfg.scheme = cache::Scheme::kWayPlacement;
  cfg.wp_area_bytes = 1024;
  cache::FetchPath fp(cfg);
  for (u32 pc = 0; pc < 256; pc += 4) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
  }
  const u64 misses_before = fp.cacheStats().misses;
  fp.resizeWayPlacementArea(0);  // shrink to nothing
  // Everything refetches (cold), now as normal accesses.
  for (u32 pc = 0; pc < 256; pc += 4) {
    fp.fetch(pc, cache::FetchFlow::kSequential);
  }
  EXPECT_GT(fp.cacheStats().misses, misses_before);
  EXPECT_EQ(fp.fetchStats().wp_single_way,
            fp.fetchStats().wp_single_way);  // no crash, counters sane
  const auto& s = fp.cacheStats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
}

// --- drowsy lines (extension E4) --------------------------------------------

TEST(Drowsy, DisabledByDefault) {
  cache::DrowsyCache d(8, 4, 0);
  EXPECT_FALSE(d.enabled());
  EXPECT_FALSE(d.access(0, 0));
  EXPECT_EQ(d.stats().ticks, 0u);
}

TEST(Drowsy, FirstTouchWakesThenStaysAwake) {
  cache::DrowsyCache d(8, 4, 100);
  EXPECT_TRUE(d.access(3, 1));   // drowsy -> wake
  EXPECT_FALSE(d.access(3, 1));  // already awake
  EXPECT_FALSE(d.access(3, 1));
  EXPECT_EQ(d.stats().wakeups, 1u);
}

TEST(Drowsy, SweepPutsEverythingBackToSleep) {
  cache::DrowsyCache d(2, 2, 4);  // 4 lines, sweep every 4 accesses
  EXPECT_TRUE(d.access(0, 0));
  EXPECT_FALSE(d.access(0, 0));
  EXPECT_FALSE(d.access(0, 0));
  EXPECT_FALSE(d.access(0, 0));  // 4th access triggers the sweep after
  EXPECT_TRUE(d.access(0, 0));   // drowsy again
  EXPECT_EQ(d.stats().wakeups, 2u);
}

TEST(Drowsy, LeakageIntegralIsConserved) {
  cache::DrowsyCache d(4, 4, 64);  // 16 lines
  // Hot/cold pattern: only 2 of the 16 lines are ever touched.
  for (int i = 0; i < 1000; ++i) {
    d.access(0, static_cast<u32>(i % 2));
  }
  const auto& s = d.stats();
  EXPECT_EQ(s.ticks, 1000u);
  EXPECT_EQ(s.awake_line_ticks + s.drowsy_line_ticks, 1000u * 16u);
  // Only the two hot lines stay awake; the cold 14 leak at the drowsy
  // rate for the whole run.
  EXPECT_LE(s.awake_line_ticks, 2u * 1000u);
  EXPECT_GE(s.awake_line_ticks, 1500u);
}

TEST(Drowsy, EndToEndSavesLeakageAtSmallCycleCost) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  driver::SchemeSpec plain = driver::SchemeSpec::baseline();
  driver::SchemeSpec drowsy = driver::SchemeSpec::baseline();
  drowsy.drowsy_window = 2048;

  const auto r0 = runner.run(p, kXScale, plain);
  const auto r1 = runner.run(p, kXScale, drowsy);
  const energy::EnergyModel& m = runner.energyModel();

  const double leak_plain =
      m.leakageAllAwake(1024, r0.stats.icache.accesses);
  const double leak_drowsy = m.leakageEnergy(r1.stats.drowsy);
  EXPECT_LT(leak_drowsy, 0.35 * leak_plain);
  // Wakeup penalty cycles exist but are tiny.
  EXPECT_GT(r1.stats.cycles, r0.stats.cycles);
  EXPECT_LT(static_cast<double>(r1.stats.cycles),
            1.01 * static_cast<double>(r0.stats.cycles));
  // Functional behaviour identical.
  EXPECT_EQ(r0.stats.instructions, r1.stats.instructions);
}

TEST(Drowsy, ComposesWithWayPlacement) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("fft");
  driver::SchemeSpec combo = driver::SchemeSpec::wayPlacement(16 * 1024);
  combo.drowsy_window = 2048;
  const auto base = runner.run(p, kXScale, driver::SchemeSpec::baseline());
  const auto r = runner.run(p, kXScale, combo);
  const auto n = driver::normalize(r, base);
  EXPECT_LT(n.icache_energy, 0.60);  // dynamic saving intact
  EXPECT_GT(r.stats.drowsy.wakeups, 0u);
  EXPECT_NEAR(n.delay, 1.0, 0.02);
}

TEST(AreaResize, MidRunResizePreservesProgramResults) {
  // Run crc under way-placement, resizing the area between two
  // simulated halves by re-creating the processor — the architectural
  // state lives in memory, so results must match the reference.
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");

  mem::Memory memory;
  const mem::Image& image = p.imageFor("way_placement");
  image.loadInto(memory);
  p.workload->prepare(memory, workloads::InputSize::kLarge);

  sim::MachineConfig machine = runner.machineFor(
      kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  sim::Processor proc(machine, image, memory);
  (void)proc.run();
  EXPECT_EQ(p.workload->output(memory),
            p.workload->expected(workloads::InputSize::kLarge));
}

}  // namespace
}  // namespace wp
