// Direct IR-level validation tests: structures the builder can never
// produce must still be rejected (the linker trusts validate()).
#include <gtest/gtest.h>

#include "ir/module.hpp"

namespace wp::ir {
namespace {

Inst nop() {
  Inst i;
  i.raw = isa::Instruction{isa::Opcode::kNop, 0, 0, 0, 0};
  return i;
}

Inst haltInst() {
  Inst i;
  i.raw = isa::Instruction{isa::Opcode::kHalt, 0, 0, 0, 0};
  return i;
}

Module minimalModule() {
  Module m;
  BasicBlock b;
  b.id = 0;
  b.label = "_start.bb0";
  b.insts = {haltInst()};
  m.blocks.push_back(b);
  Function f;
  f.name = "_start";
  f.block_ids = {0};
  m.functions.push_back(f);
  return m;
}

TEST(IrValidate, MinimalModulePasses) {
  EXPECT_NO_THROW(minimalModule().validate());
}

TEST(IrValidate, NonDenseIdsRejected) {
  Module m = minimalModule();
  m.blocks[0].id = 5;
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, FallthroughMustTargetNextBlock) {
  Module m = minimalModule();
  BasicBlock b1;
  b1.id = 1;
  b1.label = "_start.bb1";
  b1.insts = {haltInst()};
  m.blocks[0].insts = {nop()};
  m.blocks[0].fallthrough = 7;  // nonsense target
  m.blocks.push_back(b1);
  m.functions[0].block_ids = {0, 1};
  EXPECT_THROW(m.validate(), SimError);
  m.blocks[0].fallthrough = 1;
  EXPECT_NO_THROW(m.validate());
}

TEST(IrValidate, FinalBlockMustNotFallThrough) {
  Module m = minimalModule();
  m.blocks[0].fallthrough = 0;
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, OrphanBlocksRejected) {
  Module m = minimalModule();
  BasicBlock orphan;
  orphan.id = 1;
  orphan.insts = {haltInst()};
  m.blocks.push_back(orphan);  // not in any function
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, SharedBlockRejected) {
  Module m = minimalModule();
  Function f2;
  f2.name = "other";
  f2.block_ids = {0};  // same block as _start
  m.functions.push_back(f2);
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, BranchTargetMustExist) {
  Module m = minimalModule();
  Inst br;
  br.raw = isa::Instruction{isa::Opcode::kB, 0, 0, 0, 0};
  br.reloc = Reloc::kBlockBranch;
  br.target_block = 99;
  m.blocks[0].insts = {br};
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, MissingEntryFunctionRejected) {
  Module m = minimalModule();
  m.entry_function = "nonexistent";
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrValidate, EmptyFunctionRejected) {
  Module m = minimalModule();
  Function f2;
  f2.name = "empty";
  m.functions.push_back(f2);
  EXPECT_THROW(m.validate(), SimError);
}

TEST(IrQueries, FindFunctionAndSymbol) {
  Module m = minimalModule();
  m.data_symbols.push_back({"buf", 0, 16});
  EXPECT_NE(m.findFunction("_start"), nullptr);
  EXPECT_EQ(m.findFunction("nope"), nullptr);
  EXPECT_NE(m.findSymbol("buf"), nullptr);
  EXPECT_EQ(m.findSymbol("nope"), nullptr);
}

}  // namespace
}  // namespace wp::ir
