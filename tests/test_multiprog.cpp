// Multiprogramming tests: the guest scheduler's architectural
// invariants (every process's retired stream equals its solo run at any
// switch quantum, under both engines and all four schemes), the co-run
// driver plumbing (runCoRun, cell keys, co-run baselines, checkpoint
// round-trips) and the switch-policy energy asymmetry (ASID tagging
// walks less than flush-on-switch).
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "driver/checkpoint.hpp"
#include "driver/sweep.hpp"
#include "sim/scheduler.hpp"
#include "workloads/workload.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

driver::SchemeSpec corunSpec(driver::SchemeSpec base, u64 quantum,
                             const std::string& partners = {},
                             cache::TlbSwitchPolicy policy =
                                 cache::TlbSwitchPolicy::kFlush) {
  base.corun_quantum = quantum;
  base.corun_partners = partners;
  base.corun_tlb = policy;
  return base;
}

// ---------------------------------------------------------------------
// GuestScheduler basics.

TEST(GuestScheduler, RejectsZeroQuantumAndEmptyRuns) {
  driver::Runner runner;
  const sim::MachineConfig machine =
      runner.machineFor(kXScale, driver::SchemeSpec::baseline());
  EXPECT_THROW(sim::GuestScheduler(machine, sim::SchedulerConfig{0}),
               SimError);
  sim::GuestScheduler sched(machine, sim::SchedulerConfig{});
  EXPECT_THROW(sched.run(), SimError) << "no processes registered";
}

TEST(GuestScheduler, SoloProcessHasNoContextSwitches) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  driver::Runner::CoRunExtra extra;
  const driver::RunResult r = runner.runCoRun(
      {&p}, kXScale, corunSpec(driver::SchemeSpec::baseline(), 500),
      workloads::InputSize::kLarge, nullptr, &extra);
  EXPECT_EQ(extra.context_switches, 0u)
      << "round-robin over one process never switches away";
  EXPECT_GT(extra.slices, 1u) << "but it is still sliced";
  ASSERT_EQ(extra.processes.size(), 1u);
  EXPECT_EQ(extra.processes[0].instructions, r.stats.instructions);
}

TEST(GuestScheduler, TwoProcessesAtHugeQuantumSwitchOnce) {
  driver::Runner runner;
  const driver::PreparedWorkload a = runner.prepare("crc");
  const driver::PreparedWorkload b = runner.prepare("sha");
  driver::Runner::CoRunExtra extra;
  (void)runner.runCoRun(
      {&a, &b}, kXScale,
      corunSpec(driver::SchemeSpec::baseline(), 1'000'000'000ULL),
      workloads::InputSize::kLarge, nullptr, &extra);
  // Each process finishes inside its first slice: exactly one switch
  // (a -> b), two slices.
  EXPECT_EQ(extra.context_switches, 1u);
  EXPECT_EQ(extra.slices, 2u);
}

// ---------------------------------------------------------------------
// The headline invariant: a one-process co-run IS the solo run. Same
// stats digest (every RunStats counter + priced energy + layout
// ride-alongs), same output bytes — the scheduler's first install must
// not charge any switch cost.

TEST(CoRunEquivalence, OneProcessCoRunMatchesSoloBitForBit) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  const driver::SchemeSpec specs[] = {
      driver::SchemeSpec::baseline(),
      driver::SchemeSpec::wayPlacement(16 * 1024),
      driver::SchemeSpec::wayMemoization(),
      driver::SchemeSpec::wayPrediction(),
  };
  for (const driver::SchemeSpec& spec : specs) {
    SCOPED_TRACE(cache::schemeName(spec.scheme));
    const driver::RunResult solo = runner.run(p, kXScale, spec);
    for (const u64 quantum : {64ULL, 4096ULL, 1'000'000'000ULL}) {
      SCOPED_TRACE(quantum);
      const driver::RunResult co =
          runner.runCoRun({&p}, kXScale, corunSpec(spec, quantum));
      EXPECT_EQ(driver::statsDigest(co), driver::statsDigest(solo));
      EXPECT_EQ(co.output, solo.output);
    }
  }
}

// ---------------------------------------------------------------------
// The acceptance invariant: in an N-process co-run, every process's
// retired_pc_hash/dataflow_hash and output equal its *solo* run, for
// every scheme, at every switch quantum — sharing the fetch path may
// cost energy and cycles but can never change architecture.

TEST(CoRunEquivalence, EveryProcessMatchesItsSoloRunAcrossQuanta) {
  driver::Runner runner;
  const driver::PreparedWorkload a = runner.prepare("crc");
  const driver::PreparedWorkload b = runner.prepare("sha");
  const driver::SchemeSpec specs[] = {
      driver::SchemeSpec::baseline(),
      driver::SchemeSpec::wayPlacement(16 * 1024),
      driver::SchemeSpec::wayMemoization(),
      driver::SchemeSpec::wayPrediction(),
  };
  for (const driver::SchemeSpec& spec : specs) {
    SCOPED_TRACE(cache::schemeName(spec.scheme));
    const driver::RunResult solo_a = runner.run(a, kXScale, spec);
    const driver::RunResult solo_b = runner.run(b, kXScale, spec);
    // Quantum 1 lives in its own small-input test below: a full-cache
    // flush per retired instruction is O(lines) per switch and would
    // dominate the whole suite's runtime on the large input.
    for (const u64 quantum : {97ULL, 5000ULL}) {
      SCOPED_TRACE(quantum);
      for (const auto policy : {cache::TlbSwitchPolicy::kFlush,
                                cache::TlbSwitchPolicy::kAsidTagged}) {
        SCOPED_TRACE(cache::tlbSwitchPolicyName(policy));
        driver::Runner::CoRunExtra extra;
        const driver::RunResult co = runner.runCoRun(
            {&a, &b}, kXScale, corunSpec(spec, quantum, "", policy),
            workloads::InputSize::kLarge, nullptr, &extra);
        ASSERT_EQ(extra.processes.size(), 2u);
        EXPECT_EQ(extra.processes[0].retired_pc_hash,
                  solo_a.stats.retired_pc_hash);
        EXPECT_EQ(extra.processes[0].dataflow_hash,
                  solo_a.stats.dataflow_hash);
        EXPECT_EQ(extra.processes[0].instructions, solo_a.stats.instructions);
        EXPECT_EQ(extra.processes[0].output, solo_a.output);
        EXPECT_EQ(extra.processes[1].retired_pc_hash,
                  solo_b.stats.retired_pc_hash);
        EXPECT_EQ(extra.processes[1].dataflow_hash,
                  solo_b.stats.dataflow_hash);
        EXPECT_EQ(extra.processes[1].instructions, solo_b.stats.instructions);
        EXPECT_EQ(extra.processes[1].output, solo_b.output);
        // The combined totals cover exactly the two processes.
        EXPECT_EQ(co.stats.instructions,
                  solo_a.stats.instructions + solo_b.stats.instructions);
        EXPECT_EQ(co.output.size(), solo_a.output.size() + solo_b.output.size());
      }
    }
  }
}

TEST(CoRunEquivalence, QuantumOfOneStillMatchesSolo) {
  // The pathological extreme: a context switch after *every* retired
  // instruction, on the small input (each switch flushes the whole
  // cache, so the large input would be disproportionately slow).
  driver::Runner runner;
  const driver::PreparedWorkload a = runner.prepare("crc");
  const driver::PreparedWorkload b = runner.prepare("bitcount");
  const driver::SchemeSpec spec = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::RunResult solo_a =
      runner.run(a, kXScale, spec, workloads::InputSize::kSmall);
  const driver::RunResult solo_b =
      runner.run(b, kXScale, spec, workloads::InputSize::kSmall);
  for (const auto policy : {cache::TlbSwitchPolicy::kFlush,
                            cache::TlbSwitchPolicy::kAsidTagged}) {
    SCOPED_TRACE(cache::tlbSwitchPolicyName(policy));
    driver::Runner::CoRunExtra extra;
    (void)runner.runCoRun({&a, &b}, kXScale, corunSpec(spec, 1, "", policy),
                          workloads::InputSize::kSmall, nullptr, &extra);
    ASSERT_EQ(extra.processes.size(), 2u);
    EXPECT_EQ(extra.processes[0].retired_pc_hash,
              solo_a.stats.retired_pc_hash);
    EXPECT_EQ(extra.processes[0].dataflow_hash, solo_a.stats.dataflow_hash);
    EXPECT_EQ(extra.processes[0].output, solo_a.output);
    EXPECT_EQ(extra.processes[1].retired_pc_hash,
              solo_b.stats.retired_pc_hash);
    EXPECT_EQ(extra.processes[1].dataflow_hash, solo_b.stats.dataflow_hash);
    EXPECT_EQ(extra.processes[1].output, solo_b.output);
  }
}

TEST(CoRunEquivalence, InterpAndBlockEnginesAgreeOnCoRuns) {
  ScopedEnv interp_env("WP_ENGINE", "interp");
  driver::Runner interp_runner;
  ScopedEnv block_env("WP_ENGINE", "block");
  driver::Runner block_runner;
  ASSERT_EQ(interp_runner.engine(), sim::Engine::kInterp);
  ASSERT_EQ(block_runner.engine(), sim::Engine::kBlock);

  const driver::PreparedWorkload a = block_runner.prepare("crc");
  const driver::PreparedWorkload b = block_runner.prepare("bitcount");
  // 97: a prime quantum, so block-engine batches are clipped at odd
  // offsets and the clipping itself is exercised against the
  // per-instruction reference.
  const driver::SchemeSpec spec =
      corunSpec(driver::SchemeSpec::wayPlacement(16 * 1024), 97);
  const driver::RunResult interp =
      interp_runner.runCoRun({&a, &b}, kXScale, spec);
  const driver::RunResult block =
      block_runner.runCoRun({&a, &b}, kXScale, spec);
  EXPECT_EQ(driver::statsDigest(interp), driver::statsDigest(block));
  EXPECT_EQ(interp.output, block.output);
}

TEST(CoRunEquivalence, DrowsyCoRunFallsBackToInterpAndStaysSolo) {
  // Drowsy lines disable the batched closed form; the scheduler must
  // take its per-instruction path and still preserve per-process
  // architecture across switch-time onCacheFlush events.
  driver::Runner runner;
  const driver::PreparedWorkload a = runner.prepare("crc");
  const driver::PreparedWorkload b = runner.prepare("sha");
  driver::SchemeSpec spec = corunSpec(driver::SchemeSpec::baseline(), 250);
  spec.drowsy_window = 16;
  const driver::RunResult solo_a = runner.run(a, kXScale, spec);
  const driver::RunResult solo_b = runner.run(b, kXScale, spec);
  driver::Runner::CoRunExtra extra;
  (void)runner.runCoRun({&a, &b}, kXScale, spec,
                        workloads::InputSize::kLarge, nullptr, &extra);
  ASSERT_EQ(extra.processes.size(), 2u);
  EXPECT_EQ(extra.processes[0].retired_pc_hash, solo_a.stats.retired_pc_hash);
  EXPECT_EQ(extra.processes[1].retired_pc_hash, solo_b.stats.retired_pc_hash);
  EXPECT_EQ(extra.processes[0].output, solo_a.output);
  EXPECT_EQ(extra.processes[1].output, solo_b.output);
}

// ---------------------------------------------------------------------
// Switch-policy physics: ASID tags keep translations resident across
// switches, so a co-run walks the page table less than flush-on-switch
// — that asymmetry is the whole reason the policy knob exists.

TEST(CoRunPolicy, AsidTaggingWalksLessThanFlushing) {
  driver::Runner runner;
  const driver::PreparedWorkload a = runner.prepare("crc");
  const driver::PreparedWorkload b = runner.prepare("sha");
  const driver::SchemeSpec base = driver::SchemeSpec::baseline();
  const driver::RunResult flushed =
      runner.runCoRun({&a, &b}, kXScale,
                      corunSpec(base, 200, "", cache::TlbSwitchPolicy::kFlush));
  const driver::RunResult tagged = runner.runCoRun(
      {&a, &b}, kXScale,
      corunSpec(base, 200, "", cache::TlbSwitchPolicy::kAsidTagged));
  EXPECT_LT(tagged.stats.itlb.walks, flushed.stats.itlb.walks);
  // Architecture is identical either way.
  EXPECT_EQ(tagged.stats.retired_pc_hash, flushed.stats.retired_pc_hash);
  EXPECT_EQ(tagged.stats.dataflow_hash, flushed.stats.dataflow_hash);
}

// ---------------------------------------------------------------------
// Driver guards.

TEST(CoRunGuards, RunCoRunRejectsMisuse) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  // Solo spec (quantum 0) is run()'s territory.
  EXPECT_THROW((void)runner.runCoRun({&p}, kXScale,
                                     driver::SchemeSpec::baseline()),
               SimError);
  // An empty group has nothing to schedule.
  EXPECT_THROW((void)runner.runCoRun(
                   {}, kXScale, corunSpec(driver::SchemeSpec::baseline(), 100)),
               SimError);
  // Runtime fault injection is a solo-run facility.
  driver::SchemeSpec faulty =
      corunSpec(driver::SchemeSpec::wayPlacement(16 * 1024), 100);
  faulty.fault.period = 64;
  faulty.fault.flip_way_hint = true;
  EXPECT_THROW((void)runner.runCoRun({&p}, kXScale, faulty), SimError);
}

// ---------------------------------------------------------------------
// Cell keys and baselines: the co-run axis must be memo-key material,
// and co-run cells must normalize against co-run baselines.

TEST(CoRunKeys, QuantumPolicyAndPartnersAreAllKeyMaterial) {
  using driver::SweepExecutor;
  const driver::SchemeSpec solo = driver::SchemeSpec::wayPlacement(16 * 1024);
  const driver::SchemeSpec co = corunSpec(solo, 2000, "sha");
  const std::string solo_key = SweepExecutor::keyOf("crc", kXScale, solo);
  const std::string co_key = SweepExecutor::keyOf("crc", kXScale, co);
  EXPECT_NE(solo_key, co_key);
  EXPECT_EQ(solo_key.find("/m"), std::string::npos)
      << "solo keys keep their pre-multiprog spelling";
  EXPECT_NE(co_key.find("/m2000:"), std::string::npos);

  EXPECT_NE(co_key, SweepExecutor::keyOf("crc", kXScale,
                                         corunSpec(solo, 4000, "sha")));
  EXPECT_NE(co_key, SweepExecutor::keyOf("crc", kXScale,
                                         corunSpec(solo, 2000, "bitcount")));
  EXPECT_NE(co_key,
            SweepExecutor::keyOf(
                "crc", kXScale,
                corunSpec(solo, 2000, "sha",
                          cache::TlbSwitchPolicy::kAsidTagged)));
}

TEST(CoRunKeys, BaselineForSoloIsThePlainBaseline) {
  const driver::SchemeSpec solo = driver::SchemeSpec::wayPlacement(16 * 1024);
  EXPECT_EQ(driver::SweepExecutor::keyOf(
                "crc", kXScale, driver::SchemeSpec::baselineFor(solo)),
            driver::SweepExecutor::keyOf("crc", kXScale,
                                         driver::SchemeSpec::baseline()));
}

TEST(CoRunKeys, BaselineForCoRunKeepsTheCoRunAxis) {
  const driver::SchemeSpec co = corunSpec(
      driver::SchemeSpec::wayPlacement(16 * 1024), 2000, "sha");
  const driver::SchemeSpec base = driver::SchemeSpec::baselineFor(co);
  EXPECT_EQ(base.scheme, cache::Scheme::kBaseline);
  EXPECT_EQ(base.corun_quantum, 2000u);
  EXPECT_EQ(base.corun_partners, "sha");
  EXPECT_NE(driver::SweepExecutor::keyOf("crc", kXScale, base),
            driver::SweepExecutor::keyOf("crc", kXScale,
                                         driver::SchemeSpec::baseline()));
}

// ---------------------------------------------------------------------
// Sweep integration: co-run cells flow through memo / normalization /
// quarantine exactly like solo cells.

TEST(CoRunSweep, CoRunCellsNormalizeAgainstCoRunBaselines) {
  driver::SupervisorConfig pinned;
  pinned.retries = 0;
  driver::SweepExecutor suite({"crc", "sha"}, energy::EnergyParams{}, 0, 2,
                              &pinned);
  const driver::SchemeSpec spec = corunSpec(
      driver::SchemeSpec::wayPlacement(16 * 1024), 2000, "sha");
  const driver::SweepExecutor::SuiteAverage avg =
      suite.averageNormalizedChecked(
          kXScale, spec,
          [](const driver::Normalized& n) { return n.icache_energy; });
  EXPECT_EQ(avg.excluded, 0u);
  EXPECT_EQ(avg.included, 2u);
  EXPECT_GT(avg.mean, 0.0);
  EXPECT_LT(avg.mean, 1.0) << "way placement still saves I-cache energy "
                              "under time-slicing";
  EXPECT_TRUE(suite.quarantined().empty());
}

TEST(CoRunSweep, UnknownPartnerQuarantinesWithTheKeyAttached) {
  driver::SupervisorConfig pinned;
  pinned.retries = 0;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &pinned);
  const driver::SchemeSpec spec =
      corunSpec(driver::SchemeSpec::baseline(), 1000, "no-such-workload");
  const driver::SweepExecutor::CellView view =
      suite.tryRun(suite.prepared()[0], kXScale, spec);
  ASSERT_TRUE(view.quarantined);
  EXPECT_NE(view.error->find("no-such-workload"), std::string::npos);
  EXPECT_NE(view.error->find("/m1000:"), std::string::npos)
      << "the failure names the full cell key";
}

TEST(CoRunSweep, CoRunCellsRoundTripThroughTheCheckpointJournal) {
  const std::string path =
      testing::TempDir() + "corun_checkpoint_test.jsonl";
  std::remove(path.c_str());
  ScopedEnv env("WP_CHECKPOINT", path.c_str());
  const driver::SchemeSpec spec = corunSpec(
      driver::SchemeSpec::wayPlacement(16 * 1024), 2000, "sha");
  u64 first_digest = 0;
  {
    driver::SweepExecutor suite({"crc", "sha"}, energy::EnergyParams{}, 0, 1);
    first_digest = driver::statsDigest(
        suite.run(suite.prepared()[0], kXScale, spec));
  }
  driver::SweepExecutor resumed({"crc", "sha"}, energy::EnergyParams{}, 0, 1);
  const driver::SweepExecutor::CellView view =
      resumed.tryRun(resumed.prepared()[0], kXScale, spec);
  ASSERT_FALSE(view.quarantined);
  EXPECT_EQ(view.attempts, 0u) << "restored from the journal, not re-run";
  EXPECT_EQ(driver::statsDigest(*view.result), first_digest);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wp
