// Energy-model tests: component accounting, monotonicity in geometry,
// and the relative costs the paper's savings rest on.
#include <gtest/gtest.h>

#include "energy/energy_model.hpp"

namespace wp::energy {
namespace {

const CacheGeometry kXScale{32 * 1024, 32, 32};

TEST(EnergyModel, SingleWayLookupIsMuchCheaperThanFull) {
  const EnergyModel m;
  const double full = m.lookupEnergy(kXScale, 32);
  const double one = m.lookupEnergy(kXScale, 1);
  EXPECT_LT(one, full);
  // Eliminating 31 of 32 tag checks should drop access energy by ~50 %
  // for this geometry — the paper's headline lever.
  EXPECT_LT(one / full, 0.55);
  EXPECT_GT(one / full, 0.35);
}

TEST(EnergyModel, TagEnergyGrowsWithAssociativity) {
  const EnergyModel m;
  CacheStats one_full;
  one_full.matchline_precharges = 8;
  one_full.tag_compares = 8;
  const double tag8 =
      m.cacheEnergy(CacheGeometry{16 * 1024, 32, 8}, one_full).tag;
  CacheStats s32;
  s32.matchline_precharges = 32;
  s32.tag_compares = 32;
  const double tag32 =
      m.cacheEnergy(CacheGeometry{16 * 1024, 32, 32}, s32).tag;
  EXPECT_GT(tag32, 3.0 * tag8);
}

TEST(EnergyModel, AccountingMatchesComponents) {
  const EnergyModel m;
  CacheStats s;
  s.accesses = 10;
  s.matchline_precharges = 320;
  s.tag_compares = 320;
  s.data_word_reads = 10;
  s.line_fills = 2;
  const CacheEnergy e = m.cacheEnergy(kXScale, s);
  EXPECT_GT(e.tag, 0.0);
  EXPECT_GT(e.data, 0.0);
  EXPECT_GT(e.fills, 0.0);
  EXPECT_DOUBLE_EQ(e.total(), e.tag + e.data + e.fills + e.links);
}

TEST(EnergyModel, WayMemoAreaFactorRaisesDataAndFills) {
  const EnergyModel m;
  CacheStats s;
  s.data_word_reads = 1000;
  s.line_fills = 10;
  const CacheEnergy plain = m.cacheEnergy(kXScale, s, 1.0);
  const CacheEnergy linked = m.cacheEnergy(kXScale, s, 1.21);
  EXPECT_NEAR(linked.data / plain.data, 1.21, 0.02);
  EXPECT_NEAR(linked.fills / plain.fills, 1.21, 0.02);
  EXPECT_DOUBLE_EQ(linked.tag, plain.tag);
}

TEST(EnergyModel, LinkMaintenanceCharged) {
  const EnergyModel m;
  CacheStats s;
  s.link_writes = 100;
  const CacheEnergy e = m.cacheEnergy(kXScale, s, 1.21, /*flash_clears=*/5);
  EXPECT_GT(e.links, 0.0);
}

TEST(EnergyModel, TlbAndHintAreSmallButNonzero) {
  const EnergyModel m;
  TlbStats t;
  t.accesses = 1000;
  FetchStats f;
  f.fetches = 1000;
  const double tlb = m.tlbEnergy(t, true);
  const double tlb_plain = m.tlbEnergy(t, false);
  const double hint = m.hintEnergy(f);
  EXPECT_GT(tlb, tlb_plain);  // the way-placement bit costs something
  EXPECT_GT(hint, 0.0);
  // Both overheads are far below one full cache access per fetch.
  EXPECT_LT(hint / 1000.0, m.lookupEnergy(kXScale, 32) * 0.01);
}

TEST(EnergyModel, CoreAndMemoryScaleLinearly) {
  const EnergyModel m;
  EXPECT_DOUBLE_EQ(m.coreEnergy(2000, 3000), 2.0 * m.coreEnergy(1000, 1500));
  EXPECT_DOUBLE_EQ(m.memoryEnergy(10), 10.0 * m.memoryEnergy(1));
}

TEST(EnergyModel, TagShareCalibration) {
  // For the initial configuration a full read should be roughly half
  // tag-side energy — that is what makes ~50 % savings possible.
  const EnergyModel m;
  const EnergyParams& p = m.params();
  const double tag_bits = kXScale.tagBits();
  const double tag = 32.0 * tag_bits *
                     (p.cam_matchline_per_bit + p.cam_compare_per_bit);
  const double full = m.lookupEnergy(kXScale, 32);
  EXPECT_GT(tag / full, 0.45);
  EXPECT_LT(tag / full, 0.65);
}

}  // namespace
}  // namespace wp::energy
