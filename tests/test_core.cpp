// Functional-core semantics: every instruction class exercised through
// small asmkit programs, including flags, calls, stack and memory ops.
#include <gtest/gtest.h>

#include <functional>

#include "asmkit/builder.hpp"
#include "layout/strategy.hpp"
#include "sim/core.hpp"

namespace wp {
namespace {

using namespace asmkit;

// Builds main() from `body`, runs it, returns the "out" words.
std::vector<u32> runProgram(
    const std::function<void(ModuleBuilder&, FunctionBuilder&)>& body,
    std::size_t out_words = 4) {
  ModuleBuilder mb;
  mb.bss("out", static_cast<u32>(out_words * 4));
  auto& f = mb.func("main");
  f.prologue({r4, r5, r6, r7});
  body(mb, f);
  f.epilogue({r4, r5, r6, r7});
  const ir::Module module = mb.build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  mem::Memory memory;
  image.loadInto(memory);
  sim::Core core(image, memory);
  sim::CoreState st = core.initialState();
  u64 steps = 0;
  while (!st.halted) {
    EXPECT_LT(steps++, 1'000'000u);
    core.step(st);
  }
  std::vector<u32> out(out_words);
  for (std::size_t i = 0; i < out_words; ++i) {
    out[i] = memory.load32(mem::kDataBase + static_cast<u32>(i * 4));
  }
  return out;
}

void storeOut(FunctionBuilder& f, Reg value, i32 slot) {
  f.la(r12, "out", slot * 4);
  f.str(value, r12);
}

TEST(CoreAlu, AddSubRsb) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi(r0, 7);
    f.movi(r1, 3);
    f.add(r2, r0, r1);
    storeOut(f, r2, 0);
    f.sub(r2, r0, r1);
    storeOut(f, r2, 1);
    f.rsb(r2, r0, r1);  // r1 - r0
    storeOut(f, r2, 2);
  });
  EXPECT_EQ(out[0], 10u);
  EXPECT_EQ(out[1], 4u);
  EXPECT_EQ(out[2], static_cast<u32>(-4));
}

TEST(CoreAlu, Logic) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi32(r0, 0xff00ff00u);
    f.movi32(r1, 0x0ff00ff0u);
    f.and_(r2, r0, r1);
    storeOut(f, r2, 0);
    f.orr(r2, r0, r1);
    storeOut(f, r2, 1);
    f.eor(r2, r0, r1);
    storeOut(f, r2, 2);
    f.mvn(r2, r0);
    storeOut(f, r2, 3);
  });
  EXPECT_EQ(out[0], 0x0f000f00u);
  EXPECT_EQ(out[1], 0xfff0fff0u);
  EXPECT_EQ(out[2], 0xf0f0f0f0u);
  EXPECT_EQ(out[3], 0x00ff00ffu);
}

TEST(CoreAlu, Shifts) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi32(r0, 0x80000001u);
    f.lsli(r1, r0, 1);
    storeOut(f, r1, 0);
    f.lsri(r1, r0, 1);
    storeOut(f, r1, 1);
    f.asri(r1, r0, 1);
    storeOut(f, r1, 2);
    f.movi(r2, 4);
    f.lsl(r1, r0, r2);
    storeOut(f, r1, 3);
  });
  EXPECT_EQ(out[0], 0x00000002u);
  EXPECT_EQ(out[1], 0x40000000u);
  EXPECT_EQ(out[2], 0xC0000000u);
  EXPECT_EQ(out[3], 0x00000010u);
}

TEST(CoreAlu, MultiplyAndMla) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi(r0, -3);
    f.movi(r1, 7);
    f.mul(r2, r0, r1);
    storeOut(f, r2, 0);
    f.movi(r2, 100);
    f.mla(r2, r0, r1);  // 100 + (-21)
    storeOut(f, r2, 1);
    f.muli(r2, r1, -2);
    storeOut(f, r2, 2);
  });
  EXPECT_EQ(out[0], static_cast<u32>(-21));
  EXPECT_EQ(out[1], 79u);
  EXPECT_EQ(out[2], static_cast<u32>(-14));
}

TEST(CoreAlu, SltAndSltu) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi(r0, -1);
    f.movi(r1, 1);
    f.slt(r2, r0, r1);   // signed: -1 < 1
    storeOut(f, r2, 0);
    f.sltu(r2, r0, r1);  // unsigned: 0xffffffff < 1 is false
    storeOut(f, r2, 1);
  });
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0u);
}

TEST(CoreAlu, Movi32AndMovhi) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi32(r0, 0xdeadbeefu);
    storeOut(f, r0, 0);
    f.movi32(r1, 0x00001234u);
    storeOut(f, r1, 1);
    f.movi32(r2, 0xffff8000u);
    storeOut(f, r2, 2);
  });
  EXPECT_EQ(out[0], 0xdeadbeefu);
  EXPECT_EQ(out[1], 0x1234u);
  EXPECT_EQ(out[2], 0xffff8000u);
}

struct BranchCase {
  const char* name;
  Cond cond;
  i32 a, b;
  bool expect_taken;
};

class CoreBranch : public ::testing::TestWithParam<BranchCase> {};

TEST_P(CoreBranch, Semantics) {
  const BranchCase& c = GetParam();
  const auto out = runProgram([&c](ModuleBuilder&, FunctionBuilder& f) {
    const auto taken = f.label();
    const auto done = f.label();
    f.movi32(r0, static_cast<u32>(c.a));
    f.movi32(r1, static_cast<u32>(c.b));
    f.movi(r2, 0);
    f.cmpBr(r0, r1, c.cond, taken);
    f.jmp(done);
    f.bind(taken);
    f.movi(r2, 1);
    f.bind(done);
    storeOut(f, r2, 0);
  });
  EXPECT_EQ(out[0], c.expect_taken ? 1u : 0u) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, CoreBranch,
    ::testing::Values(
        BranchCase{"eq_taken", Cond::kEq, 5, 5, true},
        BranchCase{"eq_not", Cond::kEq, 5, 6, false},
        BranchCase{"ne_taken", Cond::kNe, 5, 6, true},
        BranchCase{"lt_signed", Cond::kLt, -1, 0, true},
        BranchCase{"lt_not", Cond::kLt, 1, 0, false},
        BranchCase{"ge_eq", Cond::kGe, 4, 4, true},
        BranchCase{"gt_not_eq", Cond::kGt, 4, 4, false},
        BranchCase{"gt_taken", Cond::kGt, 5, 4, true},
        BranchCase{"le_taken", Cond::kLe, -5, -5, true},
        BranchCase{"ltu_wraps", Cond::kLtu, 1, -1, true},
        BranchCase{"ltu_not", Cond::kLtu, -1, 1, false},
        BranchCase{"geu_taken", Cond::kGeu, -1, 1, true},
        BranchCase{"overflow_lt", Cond::kLt, i32(0x80000000), 1, true}),
    [](const ::testing::TestParamInfo<BranchCase>& info) {
      return info.param.name;
    });

TEST(CoreMemory, WordAndByteAccess) {
  const auto out = runProgram([](ModuleBuilder& mb, FunctionBuilder& f) {
    mb.bss("buf", 64);
    f.la(r4, "buf");
    f.movi32(r0, 0xa1b2c3d4u);
    f.str(r0, r4, 8);
    f.ldr(r1, r4, 8);
    storeOut(f, r1, 0);
    f.ldrb(r1, r4, 8);   // low byte, little-endian
    storeOut(f, r1, 1);
    f.movi(r0, 0x7f);
    f.strb(r0, r4, 11);  // replaces the top byte
    f.ldr(r1, r4, 8);
    storeOut(f, r1, 2);
    // Indexed forms.
    f.movi(r2, 8);
    f.ldrx(r1, r4, r2);
    storeOut(f, r1, 3);
  });
  EXPECT_EQ(out[0], 0xa1b2c3d4u);
  EXPECT_EQ(out[1], 0xd4u);
  EXPECT_EQ(out[2], 0x7fb2c3d4u);
  EXPECT_EQ(out[3], 0x7fb2c3d4u);
}

TEST(CoreControl, CallAndReturn) {
  const auto out = runProgram([](ModuleBuilder& mb, FunctionBuilder& f) {
    auto& g = mb.func("double_it");
    g.add(r0, r0, r0);
    g.ret();
    f.movi(r0, 21);
    f.call("double_it");
    storeOut(f, r0, 0);
  });
  EXPECT_EQ(out[0], 42u);
}

TEST(CoreControl, NestedCallsPreserveLink) {
  const auto out = runProgram([](ModuleBuilder& mb, FunctionBuilder& f) {
    auto& inner = mb.func("inner");
    inner.addi(r0, r0, 1);
    inner.ret();
    auto& outer = mb.func("outer");
    outer.prologue();
    outer.call("inner");
    outer.call("inner");
    outer.epilogue();
    f.movi(r0, 0);
    f.call("outer");
    storeOut(f, r0, 0);
  });
  EXPECT_EQ(out[0], 2u);
}

TEST(CoreControl, LoopSumsCorrectly) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    const auto loop = f.label();
    f.movi(r0, 0);   // sum
    f.movi(r1, 1);   // i
    f.bind(loop);
    f.add(r0, r0, r1);
    f.addi(r1, r1, 1);
    f.cmpiBr(r1, 100, Cond::kLe, loop);
    storeOut(f, r0, 0);
  });
  EXPECT_EQ(out[0], 5050u);
}

TEST(CoreControl, PushPopRoundTrip) {
  const auto out = runProgram([](ModuleBuilder&, FunctionBuilder& f) {
    f.movi(r4, 111);
    f.movi(r5, 222);
    f.push({r4, r5});
    f.movi(r4, 0);
    f.movi(r5, 0);
    f.pop({r4, r5});
    storeOut(f, r4, 0);
    storeOut(f, r5, 1);
  });
  EXPECT_EQ(out[0], 111u);
  EXPECT_EQ(out[1], 222u);
}

TEST(CoreErrors, PcOutsideCodeThrows) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.movi32(r0, 0x5000);
  f.jr(r0);  // jump into the void
  const ir::Module module = mb.build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  mem::Memory memory;
  image.loadInto(memory);
  sim::Core core(image, memory);
  sim::CoreState st = core.initialState();
  EXPECT_THROW(
      {
        for (int i = 0; i < 100 && !st.halted; ++i) core.step(st);
      },
      SimError);
}

}  // namespace
}  // namespace wp
