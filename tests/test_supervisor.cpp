// Tests for the cell supervision layer (driver/supervisor.hpp) and the
// WP_CHECKPOINT journal (driver/checkpoint.hpp): deterministic backoff,
// transient faults healing on retry, persistent faults quarantining
// without polluting the memo, watchdog timeouts, and crash-safe resume
// reproducing bit-identical results at any job count.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/sweep.hpp"
#include "support/ensure.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

std::vector<std::string> fastSubset() { return {"crc", "bitcount"}; }

driver::SchemeSpec wpSpec() {
  return driver::SchemeSpec::wayPlacement(16 * 1024);
}

/// A way-placement spec whose cell itself fails (spec-level cell fault,
/// so only this one memo cell is affected — baselines stay healthy).
driver::SchemeSpec cellFaulted(fault::CellFault kind, u32 failures = 1) {
  driver::SchemeSpec s = wpSpec();
  s.fault.cell_fault = kind;
  s.fault.cell_fault_failures = failures;
  return s;
}

double icacheEnergy(const driver::Normalized& n) { return n.icache_energy; }

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

// ---------------------------------------------------------------------
// Backoff: seed-derived, never wall-clock (DESIGN.md §9).

TEST(CellSupervisorBackoff, SlotsAreDeterministicInSeedKeyAttempt) {
  const u64 a = driver::CellSupervisor::backoffSlots(7, "crc/g32768", 1);
  EXPECT_EQ(a, driver::CellSupervisor::backoffSlots(7, "crc/g32768", 1))
      << "backoff must be a pure function of (seed, key, attempt)";

  // Attempt n draws from [1 << min(n,6), 64 << min(n,6)] slots.
  for (unsigned attempt = 0; attempt < 10; ++attempt) {
    const unsigned shift = attempt < 6 ? attempt : 6;
    const u64 slots =
        driver::CellSupervisor::backoffSlots(0, "some/cell", attempt);
    EXPECT_GE(slots, 1ULL << shift);
    EXPECT_LE(slots, 64ULL << shift);
  }
}

TEST(CellSupervisorBackoff, ScheduleDecorrelatesAcrossSeedsAndCells) {
  // Two cells (or two seeds) must not retry in lockstep; these are pure
  // functions, so the inequalities are stable across runs.
  EXPECT_NE(driver::CellSupervisor::backoffSlots(0, "cell/a", 3),
            driver::CellSupervisor::backoffSlots(0, "cell/b", 3));
  EXPECT_NE(driver::CellSupervisor::backoffSlots(0, "cell/a", 3),
            driver::CellSupervisor::backoffSlots(1, "cell/a", 3));
}

// ---------------------------------------------------------------------
// Transient faults heal on retry with bit-identical results.

TEST(CellSupervision, TransientCellFaultHealsOnRetryBitIdentically) {
  driver::SupervisorConfig cfg;
  cfg.retries = 2;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);

  const auto clean = suite.tryRun(p, kXScale, wpSpec());
  const auto healed =
      suite.tryRun(p, kXScale, cellFaulted(fault::CellFault::kTransient, 1));
  ASSERT_FALSE(clean.quarantined);
  ASSERT_FALSE(healed.quarantined);
  EXPECT_EQ(clean.attempts, 1u);
  EXPECT_EQ(healed.attempts, 2u) << "one failing attempt, then the heal";

  // The retry replays the same deterministic simulation: guest-side
  // stats, energy and output are bit-identical to the clean cell.
  EXPECT_EQ(driver::statsDigest(*healed.result),
            driver::statsDigest(*clean.result));
  EXPECT_EQ(healed.result->output, clean.result->output);

  EXPECT_EQ(suite.metrics().counter("cells.healed").value(), 1u);
  EXPECT_EQ(suite.metrics().counter("cells.failed_attempts").value(), 1u);
  EXPECT_TRUE(suite.quarantined().empty());
}

// ---------------------------------------------------------------------
// Persistent faults quarantine: tagged error, exclusion, no pollution.

TEST(CellSupervision, PersistentCellFaultQuarantinesWithFullIdentity) {
  driver::SupervisorConfig cfg;
  cfg.retries = 1;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);
  const driver::SchemeSpec bad = cellFaulted(fault::CellFault::kPersistent);
  const std::string key = driver::SweepExecutor::keyOf(p.name, kXScale, bad);

  const auto view = suite.tryRun(p, kXScale, bad);
  ASSERT_TRUE(view.quarantined);
  EXPECT_EQ(view.result, nullptr);
  EXPECT_EQ(view.attempts, 2u) << "1 + retries attempts before quarantine";
  ASSERT_NE(view.error, nullptr);
  EXPECT_NE(view.error->find(key), std::string::npos)
      << "a failure must carry the full cell key, got: " << *view.error;

  // run() surfaces the same tagged identity through its exception.
  try {
    suite.run(p, kXScale, bad);
    FAIL() << "run() of a quarantined cell must throw";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(key), std::string::npos);
  }

  // Aggregation excludes the quarantined cell instead of aborting.
  const auto avg = suite.averageNormalizedChecked(kXScale, bad, icacheEnergy);
  EXPECT_EQ(avg.included, 0u);
  EXPECT_EQ(avg.excluded, 1u);
  EXPECT_TRUE(avg.degraded());
  EXPECT_EQ(avg.mean, 0.0);

  const auto q = suite.quarantined();
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q[0].key, key);
  EXPECT_EQ(q[0].attempts, 2u);

  // The quarantine never pollutes healthy cells: the clean scheme (and
  // the shared baseline) still price normally on the same executor.
  const auto good =
      suite.averageNormalizedChecked(kXScale, wpSpec(), icacheEnergy);
  EXPECT_EQ(good.included, 1u);
  EXPECT_EQ(good.excluded, 0u);
  EXPECT_GT(good.mean, 0.0);

  // Re-requesting the cell re-reads the settled quarantine; it never
  // silently burns more attempts.
  const u64 failed = suite.metrics().counter("cells.failed_attempts").value();
  const auto again = suite.tryRun(p, kXScale, bad);
  EXPECT_TRUE(again.quarantined);
  EXPECT_EQ(suite.metrics().counter("cells.failed_attempts").value(), failed);
}

// ---------------------------------------------------------------------
// Watchdog: a runaway cell is aborted and treated like any failure.

TEST(CellSupervision, WatchdogQuarantinesRunawayCell) {
  driver::SupervisorConfig cfg;
  cfg.retries = 0;
  cfg.cell_timeout_ms = 1;
  cfg.timeout_check_interval = 1;  // check every retired instruction
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);

  const auto view = suite.tryRun(p, kXScale, wpSpec());
  ASSERT_TRUE(view.quarantined) << "a 1ms budget cannot fit the simulation";
  ASSERT_NE(view.error, nullptr);
  EXPECT_NE(view.error->find("cell watchdog"), std::string::npos);
  EXPECT_NE(view.error->find("WP_CELL_TIMEOUT_MS=1"), std::string::npos);
  EXPECT_NE(view.error
                ->find(driver::SweepExecutor::keyOf(p.name, kXScale, wpSpec())),
            std::string::npos);
}

// ---------------------------------------------------------------------
// Checkpoint journal: record round-trip and verification.

TEST(Checkpoint, RecordRoundTripsVerifiesAndRejectsTampering) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1);
  const auto& p = suite.prepared().at(0);
  const driver::RunResult& r = suite.run(p, kXScale, wpSpec());
  const std::string key =
      driver::SweepExecutor::keyOf(p.name, kXScale, wpSpec());
  const std::string record = driver::renderRecord(key, 1234, r, 0.5);

  const std::string path = testing::TempDir() + "ckpt_roundtrip.jsonl";
  {
    std::ofstream out(path);
    out << driver::renderHeader(0) << "\n" << record << "\n";
  }
  const auto journal = driver::readJournal(path, 0);
  EXPECT_TRUE(journal.had_header);
  EXPECT_EQ(journal.lines_skipped, 0u);
  EXPECT_EQ(journal.records_rejected, 0u);
  ASSERT_EQ(journal.records.count(key), 1u);
  const driver::CheckpointRecord& rec = journal.records.at(key);
  EXPECT_EQ(rec.image_digest, 1234u);
  EXPECT_EQ(rec.wall_seconds, 0.5);
  // The restored payload re-digests to the recorded value: every
  // guest-side field (u64 stats and %.17g doubles) round-trips exactly.
  EXPECT_EQ(driver::statsDigest(rec.result), driver::statsDigest(r));
  EXPECT_EQ(rec.result.output, r.output);
  EXPECT_EQ(rec.result.stats.cycles, r.stats.cycles);
  EXPECT_EQ(rec.result.energy.total(), r.energy.total());
  EXPECT_EQ(rec.result.layout_strategy, r.layout_strategy);

  // Tampering with one digit of the payload trips the stats digest.
  std::string tampered = record;
  const std::size_t at = tampered.find("\"instructions\": ");
  ASSERT_NE(at, std::string::npos);
  char& digit = tampered[at + 16];
  digit = digit == '9' ? '8' : '9';
  {
    std::ofstream out(path);
    out << driver::renderHeader(0) << "\n" << tampered << "\n";
  }
  const auto bad = driver::readJournal(path, 0);
  EXPECT_EQ(bad.records.size(), 0u);
  EXPECT_EQ(bad.records_rejected, 1u);

  // A torn final line — the SIGKILL case — is skipped, never fatal.
  {
    std::ofstream out(path);
    out << driver::renderHeader(0) << "\n"
        << record << "\n"
        << record.substr(0, record.size() / 2);
  }
  const auto torn = driver::readJournal(path, 0);
  EXPECT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.lines_skipped, 1u);

  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Resume: a journaled sweep restores to byte-identical tables.

TEST(Checkpoint, ResumedSweepIsByteIdenticalAtAnyJobCount) {
  const std::string path = testing::TempDir() + "ckpt_resume.jsonl";
  std::remove(path.c_str());
  ScopedEnv env("WP_CHECKPOINT", path.c_str());
  const auto ed = [](const driver::Normalized& n) { return n.ed_product; };

  double e_first = 0.0;
  double ed_first = 0.0;
  u64 cycles = 0;
  std::vector<unsigned char> output;
  {
    driver::SweepExecutor first(fastSubset(), energy::EnergyParams{}, 0, 8);
    EXPECT_TRUE(first.checkpointing());
    first.runAll({{kXScale, wpSpec()}});
    e_first = first.averageNormalized(kXScale, wpSpec(), icacheEnergy);
    ed_first = first.averageNormalized(kXScale, wpSpec(), ed);
    const auto& p = first.prepared().at(0);
    cycles = first.run(p, kXScale, wpSpec()).stats.cycles;
    output = first.run(p, kXScale, wpSpec()).output;
    EXPECT_EQ(first.metrics().counter("cells.restored").value(), 0u);
    EXPECT_EQ(first.metrics().counter("cells.computed").value(), 4u)
        << "2 workloads x (baseline + way-placement)";
  }

  for (const unsigned jobs : {1u, 8u}) {
    driver::SweepExecutor resumed(fastSubset(), energy::EnergyParams{}, 0,
                                  jobs);
    resumed.runAll({{kXScale, wpSpec()}});
    EXPECT_EQ(resumed.metrics().counter("cells.computed").value(), 0u)
        << "every cell must restore from the journal at jobs=" << jobs;
    EXPECT_EQ(resumed.metrics().counter("cells.restored").value(), 4u);
    EXPECT_EQ(resumed.averageNormalized(kXScale, wpSpec(), icacheEnergy),
              e_first);
    EXPECT_EQ(resumed.averageNormalized(kXScale, wpSpec(), ed), ed_first);
    const auto& p = resumed.prepared().at(0);
    const auto view = resumed.tryRun(p, kXScale, wpSpec());
    EXPECT_EQ(view.attempts, 0u) << "0 attempts marks a restored cell";
    EXPECT_EQ(view.result->stats.cycles, cycles);
    EXPECT_EQ(view.result->output, output);
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, PartialJournalRestoresPrefixAndRecomputesRest) {
  const std::string path = testing::TempDir() + "ckpt_partial.jsonl";
  std::remove(path.c_str());

  // Reference numbers from an un-journaled sweep.
  driver::SweepExecutor fresh(fastSubset(), energy::EnergyParams{}, 0, 2);
  fresh.runAll({{kXScale, wpSpec()}});
  const double e_fresh =
      fresh.averageNormalized(kXScale, wpSpec(), icacheEnergy);

  {  // Journal only crc's two cells (as if killed before bitcount).
    ScopedEnv env("WP_CHECKPOINT", path.c_str());
    driver::SweepExecutor first({"crc"}, energy::EnergyParams{}, 0, 2);
    first.runAll({{kXScale, wpSpec()}});
  }
  {  // Fake the SIGKILL torn tail on top of the valid records.
    std::ofstream out(path, std::ios::app);
    out << "{\"ev\": \"cell\", \"key\": \"torn-mid-wr";
  }

  ScopedEnv env("WP_CHECKPOINT", path.c_str());
  driver::SweepExecutor resumed(fastSubset(), energy::EnergyParams{}, 0, 2);
  resumed.runAll({{kXScale, wpSpec()}});
  EXPECT_EQ(resumed.metrics().counter("cells.restored").value(), 2u)
      << "crc's baseline + way-placement restore";
  EXPECT_EQ(resumed.metrics().counter("cells.computed").value(), 2u)
      << "bitcount's cells recompute";
  EXPECT_EQ(resumed.metrics().counter("checkpoint.lines_skipped").value(), 1u);
  EXPECT_EQ(resumed.averageNormalized(kXScale, wpSpec(), icacheEnergy),
            e_fresh)
      << "a resumed sweep must reproduce the uninterrupted numbers";
  std::remove(path.c_str());
}

TEST(Checkpoint, QuarantinedCellsAreNeverJournaledSoResumeRetries) {
  const std::string path = testing::TempDir() + "ckpt_quar.jsonl";
  std::remove(path.c_str());
  ScopedEnv env("WP_CHECKPOINT", path.c_str());
  const driver::SchemeSpec bad = cellFaulted(fault::CellFault::kPersistent);

  driver::SupervisorConfig cfg;
  cfg.retries = 0;
  {
    driver::SweepExecutor first({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
    const auto& p = first.prepared().at(0);
    EXPECT_TRUE(first.tryRun(p, kXScale, bad).quarantined);
    EXPECT_FALSE(first.tryRun(p, kXScale, wpSpec()).quarantined);
  }
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      EXPECT_EQ(line.find("/c2:"), std::string::npos)
          << "a quarantined (persistent cell-fault) cell leaked into the "
             "journal: "
          << line;
    }
  }

  // On resume the quarantined cell gets a fresh set of attempts (and
  // with the spec-level persistent fault still present, quarantines
  // again after recomputing — not after restoring).
  driver::SweepExecutor resumed({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = resumed.prepared().at(0);
  const auto view = resumed.tryRun(p, kXScale, bad);
  EXPECT_TRUE(view.quarantined);
  EXPECT_EQ(view.attempts, 1u) << "the cell was retried, not restored";
  EXPECT_EQ(resumed.tryRun(p, kXScale, wpSpec()).attempts, 0u)
      << "the healthy cell restores from the journal";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Strict journal policy: mixing experiments is fatal, not silent.

using CheckpointDeathTest = ::testing::Test;

TEST(CheckpointDeathTest, SeedMismatchRefusesToResume) {
  const std::string path = testing::TempDir() + "ckpt_seed.jsonl";
  {
    std::ofstream out(path);
    out << driver::renderHeader(7) << "\n";
  }
  EXPECT_EXIT((void)driver::readJournal(path, 8),
              testing::ExitedWithCode(1), "WP_CHECKPOINT.*seed 7.*seed 8");
  ScopedEnv env("WP_CHECKPOINT", path.c_str());
  EXPECT_EXIT(driver::SweepExecutor({"crc"}, energy::EnergyParams{}, 8, 1),
              testing::ExitedWithCode(1), "silently mix experiments");
  std::remove(path.c_str());
}

TEST(CheckpointDeathTest, CellRecordsWithoutHeaderAreFatal) {
  const std::string path = testing::TempDir() + "ckpt_headerless.jsonl";
  {
    std::ofstream out(path);
    out << driver::renderRecord("some/key", 0, driver::RunResult{}, 0.0)
        << "\n";
  }
  EXPECT_EXIT((void)driver::readJournal(path, 0),
              testing::ExitedWithCode(1), "no sweep header");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Strict knob parsing: garbage in any supervision knob exits 1 with a
// message naming the knob — overflow and trailing-garbage numerics
// must never round, truncate or silently fall back to a default.

using SupervisorEnvDeathTest = ::testing::Test;

TEST(SupervisorEnvDeathTest, OverflowRetriesExits) {
  ScopedEnv env("WP_RETRIES", "99999999999999999999");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_RETRIES='99999999999999999999'");
}

TEST(SupervisorEnvDeathTest, TrailingGarbageTimeoutExits) {
  ScopedEnv env("WP_CELL_TIMEOUT_MS", "100x");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_TIMEOUT_MS='100x'");
}

TEST(SupervisorEnvDeathTest, NegativeTimeoutExits) {
  ScopedEnv env("WP_CELL_TIMEOUT_MS", "-1");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_TIMEOUT_MS='-1'");
}

TEST(SupervisorEnvDeathTest, NonBinaryIsolateExits) {
  {
    ScopedEnv env("WP_ISOLATE", "2");
    EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_ISOLATE='2'");
  }
  ScopedEnv env("WP_ISOLATE", "yes");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_ISOLATE='yes'");
}

TEST(SupervisorEnvDeathTest, MalformedCellFaultExits) {
  {
    ScopedEnv env("WP_CELL_FAULT", "bogus");
    EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_CELL_FAULT='bogus'");
  }
  {
    // crash takes ":N" but N must be a real count.
    ScopedEnv env("WP_CELL_FAULT", "crash:0");
    EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
                testing::ExitedWithCode(1), "bad failure count");
  }
  {
    ScopedEnv env("WP_CELL_FAULT", "transient:12x");
    EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
                testing::ExitedWithCode(1), "bad failure count");
  }
  // hang and persistent take no ":N" at all.
  ScopedEnv env("WP_CELL_FAULT", "hang:1");
  EXPECT_EXIT((void)driver::SupervisorConfig::fromEnv(),
              testing::ExitedWithCode(1), "WP_CELL_FAULT='hang:1'");
}

TEST(SupervisorEnv, ParsesTheNewIsolationAndFaultKnobs) {
  {
    ScopedEnv env("WP_ISOLATE", "1");
    EXPECT_TRUE(driver::SupervisorConfig::fromEnv().isolate);
  }
  {
    ScopedEnv env("WP_ISOLATE", "0");
    EXPECT_FALSE(driver::SupervisorConfig::fromEnv().isolate);
  }
  {
    ScopedEnv env("WP_CELL_FAULT", "crash");
    const auto c = driver::SupervisorConfig::fromEnv();
    EXPECT_EQ(c.cell_fault, fault::CellFault::kCrash);
    EXPECT_EQ(c.cell_fault_failures, 0u) << "bare crash = every attempt";
  }
  {
    ScopedEnv env("WP_CELL_FAULT", "crash:3");
    const auto c = driver::SupervisorConfig::fromEnv();
    EXPECT_EQ(c.cell_fault, fault::CellFault::kCrash);
    EXPECT_EQ(c.cell_fault_failures, 3u);
  }
  ScopedEnv env("WP_CELL_FAULT", "hang");
  EXPECT_EQ(driver::SupervisorConfig::fromEnv().cell_fault,
            fault::CellFault::kHang);
}

}  // namespace
}  // namespace wp
