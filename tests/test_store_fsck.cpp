// Tests for the offline store integrity checker (driver/store_fsck.hpp
// + the wp_store_fsck tool): flag parsing, a healthy round trip against
// a real ResultStore, detection of torn/tampered/misfiled records, the
// three stale-lease signals (torn payload, dead holder, previous-boot
// nonce), staging-file litter, and the two safety rails — live holders
// and foreign files are never touched, even under --remove.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "driver/result_store.hpp"
#include "driver/store_fsck.hpp"
#include "support/metrics.hpp"

namespace wp {
namespace {

/// An empty path under the test tempdir (anything there from a previous
/// run is removed first).
std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  if (system(("rm -rf '" + dir + "'").c_str()) != 0) ADD_FAILURE();
  return dir;
}

driver::RunResult fakeResult() {
  driver::RunResult r;
  r.stats.instructions = 1111;
  r.stats.cycles = 2222;
  r.output = {0xaa, 0x55};
  r.layout_strategy = "original";
  r.simulate_seconds = 0.125;
  return r;
}

/// A store directory holding one verified record; returns its path.
std::string storeWithOneRecord(const std::string& dir, std::string* record,
                               MetricsRegistry& metrics) {
  driver::ResultStore::Config config;
  config.dir = dir;
  driver::ResultStore store(config, 7, metrics, nullptr);
  driver::ResultStore::Outcome out = store.open("crc/test-cell", 0x1234);
  EXPECT_FALSE(out.record.has_value());
  EXPECT_TRUE(out.lease.owned());
  store.put(out.lease, "crc/test-cell", 0x1234, fakeResult(), 0.5);
  if (record != nullptr) *record = store.recordPathFor("crc/test-cell", 0x1234);
  return dir;
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

driver::FsckReport runFsck(const std::string& dir, bool remove = false,
                           std::string* output = nullptr) {
  driver::FsckOptions options;
  options.dir = dir;
  options.remove = remove;
  options.verbose = true;
  std::ostringstream os;
  const driver::FsckReport report = driver::fsckStore(options, os);
  if (output != nullptr) *output = os.str();
  return report;
}

// ---------------------------------------------------------------------
// Flag parsing: never exits, reports exactly what is wrong.

TEST(FsckArgs, ParsesFlagsAndDirectory) {
  driver::FsckOptions options;
  std::string error;
  {
    const char* argv[] = {"wp_store_fsck", "/some/dir"};
    ASSERT_TRUE(driver::parseFsckArgs(2, argv, options, error)) << error;
    EXPECT_EQ(options.dir, "/some/dir");
    EXPECT_FALSE(options.remove);
    EXPECT_FALSE(options.verbose);
  }
  {
    const char* argv[] = {"wp_store_fsck", "--remove", "--verbose", "d"};
    ASSERT_TRUE(driver::parseFsckArgs(4, argv, options, error)) << error;
    EXPECT_EQ(options.dir, "d");
    EXPECT_TRUE(options.remove);
    EXPECT_TRUE(options.verbose);
  }
  {
    // Flag order is free: the directory may come first.
    const char* argv[] = {"wp_store_fsck", "d", "--remove"};
    ASSERT_TRUE(driver::parseFsckArgs(3, argv, options, error)) << error;
    EXPECT_EQ(options.dir, "d");
    EXPECT_TRUE(options.remove);
  }
}

TEST(FsckArgs, RejectsBadUsageNamingTheProblem) {
  driver::FsckOptions options;
  std::string error;
  {
    const char* argv[] = {"wp_store_fsck"};
    EXPECT_FALSE(driver::parseFsckArgs(1, argv, options, error));
    EXPECT_NE(error.find("missing store directory"), std::string::npos);
  }
  {
    const char* argv[] = {"wp_store_fsck", "--bogus", "d"};
    EXPECT_FALSE(driver::parseFsckArgs(3, argv, options, error));
    EXPECT_NE(error.find("--bogus"), std::string::npos);
  }
  {
    const char* argv[] = {"wp_store_fsck", "a", "b"};
    EXPECT_FALSE(driver::parseFsckArgs(3, argv, options, error));
    EXPECT_NE(error.find("more than one"), std::string::npos);
  }
}

// ---------------------------------------------------------------------
// Classification against a real store.

TEST(FsckStore, MissingDirectoryIsNotOk) {
  const driver::FsckReport report = runFsck(freshDir("fsck_nodir"));
  EXPECT_FALSE(report.dir_ok);
  EXPECT_FALSE(report.clean());
}

TEST(FsckStore, HealthyStoreIsClean) {
  MetricsRegistry metrics;
  const std::string dir =
      storeWithOneRecord(freshDir("fsck_ok"), nullptr, metrics);
  std::string output;
  const driver::FsckReport report = runFsck(dir, false, &output);
  EXPECT_TRUE(report.dir_ok);
  EXPECT_EQ(report.healthy, 1u) << output;
  EXPECT_TRUE(report.clean()) << output;
  EXPECT_NE(output.find("OK"), std::string::npos);
}

TEST(FsckStore, TornAndTamperedRecordsAreDamagedAndRemovable) {
  MetricsRegistry metrics;
  std::string record;
  const std::string dir =
      storeWithOneRecord(freshDir("fsck_torn"), &record, metrics);

  // Truncate mid-record, as a crash during a non-atomic write would.
  std::ifstream in(record);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 40u);
  writeFile(record, bytes.substr(0, 40));

  std::string output;
  driver::FsckReport report = runFsck(dir, false, &output);
  EXPECT_EQ(report.damaged, 1u) << output;
  EXPECT_FALSE(report.clean());

  // A record filed under the wrong identity (here: one flipped image-
  // digest nibble) is damaged too, even though its bytes verify.
  writeFile(record, bytes);
  std::string misfiled = record;  // flip the digest's last hex digit
  misfiled[misfiled.size() - 5] =
      record[record.size() - 5] == '0' ? '1' : '0';
  ASSERT_EQ(::rename(record.c_str(), misfiled.c_str()), 0);
  report = runFsck(dir, false, &output);
  EXPECT_EQ(report.damaged, 1u) << output;
  EXPECT_NE(output.find("image digest"), std::string::npos) << output;

  // --remove deletes exactly the damaged record and leaves a clean dir.
  report = runFsck(dir, true, &output);
  EXPECT_EQ(report.removed, 1u) << output;
  report = runFsck(dir, false, &output);
  EXPECT_TRUE(report.clean()) << output;
  EXPECT_EQ(report.healthy, 0u);
}

TEST(FsckStore, LeaseStalenessUsesTheStoresOwnEvidence) {
  MetricsRegistry metrics;
  const std::string dir =
      storeWithOneRecord(freshDir("fsck_lease"), nullptr, metrics);
  const std::string boot = std::to_string(driver::bootNonce());
  const std::string pid = std::to_string(static_cast<long>(::getpid()));

  // Torn payload: cannot probe the holder, so it is stale.
  writeFile(dir + "/a.rec.lock", "garbage");
  // Dead holder: a pid far beyond pid_max is provably not running.
  writeFile(dir + "/b.rec.lock",
            "{\"pid\": 999999999, \"boot\": " + boot + ", \"seed\": 7}");
  // Live holder, current boot: may be mid-compute, must be left alone.
  writeFile(dir + "/c.rec.lock",
            "{\"pid\": " + pid + ", \"boot\": " + boot + ", \"seed\": 7}");
  // Live pid but a previous boot's nonce: the pid was reused, stale.
  writeFile(dir + "/d.rec.lock",
            "{\"pid\": " + pid + ", \"boot\": " +
                std::to_string(driver::bootNonce() + 1) + ", \"seed\": 7}");

  const bool nonce_works = driver::bootNonce() != 0;
  std::string output;
  driver::FsckReport report = runFsck(dir, false, &output);
  EXPECT_EQ(report.stale_leases, nonce_works ? 3u : 2u) << output;
  EXPECT_EQ(report.live_leases, nonce_works ? 1u : 2u) << output;
  EXPECT_NE(output.find("torn payload"), std::string::npos);
  EXPECT_NE(output.find("holder process is dead"), std::string::npos);
  if (nonce_works) {
    EXPECT_NE(output.find("previous boot"), std::string::npos);
  }

  // --remove clears the stale leases and never the live one.
  report = runFsck(dir, true, &output);
  EXPECT_EQ(report.removed, nonce_works ? 3u : 2u) << output;
  EXPECT_EQ(::access((dir + "/c.rec.lock").c_str(), F_OK), 0);
  EXPECT_NE(::access((dir + "/b.rec.lock").c_str(), F_OK), 0);
}

TEST(FsckStore, StagingLitterIsJudgedByItsWriter) {
  MetricsRegistry metrics;
  const std::string dir =
      storeWithOneRecord(freshDir("fsck_tmp"), nullptr, metrics);
  const std::string pid = std::to_string(static_cast<long>(::getpid()));
  writeFile(dir + "/x.rec.tmp.999999999", "half-written");  // writer gone
  writeFile(dir + "/y.rec.tmp." + pid, "in flight");        // that's us

  std::string output;
  driver::FsckReport report = runFsck(dir, false, &output);
  EXPECT_EQ(report.stale_tmp, 1u) << output;
  EXPECT_EQ(report.live_tmp, 1u) << output;

  report = runFsck(dir, true, &output);
  EXPECT_EQ(report.removed, 1u);
  EXPECT_EQ(::access((dir + "/y.rec.tmp." + pid).c_str(), F_OK), 0);
}

TEST(FsckStore, ForeignFilesAreInventoriedNeverRemoved) {
  MetricsRegistry metrics;
  const std::string dir =
      storeWithOneRecord(freshDir("fsck_foreign"), nullptr, metrics);
  writeFile(dir + "/README.txt", "not a store file");

  std::string output;
  driver::FsckReport report = runFsck(dir, false, &output);
  EXPECT_EQ(report.foreign, 1u) << output;
  EXPECT_TRUE(report.clean()) << output;  // foreign files are not damage

  report = runFsck(dir, true, &output);
  EXPECT_EQ(report.removed, 0u);
  EXPECT_EQ(::access((dir + "/README.txt").c_str(), F_OK), 0);
}

}  // namespace
}  // namespace wp
