// Fetch-path tests: the three schemes' tag-check behaviour, the
// way-hint bit's two mispredict scenarios with their penalties, the
// intra-line skip, way-memoization's linked fetches, the fetchLine
// batching preconditions, and context-switch semantics.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "cache/fetch_path.hpp"

namespace wp::cache {
namespace {

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

FetchPathConfig configFor(Scheme scheme, u32 wp_area = 16 * 1024) {
  FetchPathConfig c;
  c.icache = CacheGeometry{32 * 1024, 32, 32};
  c.scheme = scheme;
  c.wp_area_bytes = scheme == Scheme::kWayPlacement ? wp_area : 0;
  return c;
}

TEST(FetchBaseline, EveryFetchIsFullSearch) {
  FetchPath fp(configFor(Scheme::kBaseline));
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.fetch(0x8, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().full_lookups, 3u);
  EXPECT_EQ(fp.cacheStats().tag_compares, 3u * 32u);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 0u);
}

TEST(FetchBaseline, MissPenaltyCharged) {
  FetchPath fp(configFor(Scheme::kBaseline));
  const u32 cold = fp.fetch(0x0, FetchFlow::kSequential);
  // TLB walk (20) + 1 + memory (50 + 8 words).
  EXPECT_EQ(cold, 20u + 1u + 50u + 8u);
  EXPECT_EQ(fp.fetch(0x0, FetchFlow::kSequential), 1u);
}

TEST(FetchWayPlacement, IntralineSkipAvoidsAllTagChecks) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x0, FetchFlow::kSequential);  // miss + fill
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.fetch(0x8, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 2u);
}

TEST(FetchWayPlacement, WpAccessChecksOneTag) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x00, FetchFlow::kSequential);   // in WP area; hint initially 0
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x20, FetchFlow::kSequential);   // line crossing, hint now 1
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before + 1);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u);
}

TEST(FetchWayPlacement, HintCase1LosesSavingOnly) {
  // First access to the WP area with hint=0: full search, no penalty.
  FetchPath fp(configFor(Scheme::kWayPlacement));
  const u32 cycles = fp.fetch(0x0, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().hint_miss_lost_saving, 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 0u);
  EXPECT_EQ(cycles, 20u + 1u + 50u + 8u);  // no extra cycle
}

TEST(FetchWayPlacement, HintCase2CostsCycleAndSecondAccess) {
  FetchPath fp(configFor(Scheme::kWayPlacement, /*wp_area=*/1024));
  fp.fetch(0x0, FetchFlow::kSequential);     // WP page; hint becomes 1
  // Jump outside the WP area: hint=1 but page is normal.
  const u32 cycles = fp.fetch(0x8000, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 1u);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  // 1 extra cycle on top of TLB walk + miss.
  EXPECT_EQ(cycles, 20u + 1u + 1u + 50u + 8u);
  EXPECT_EQ(fp.fetchStats().extra_cycles, 1u);
}

TEST(FetchWayPlacement, WpLinesAlwaysFoundBySingleWayLookup) {
  // Thrash a set with way-placed lines; single-way lookups must always
  // resolve (fills are deterministic).
  FetchPathConfig cfg = configFor(Scheme::kWayPlacement, 64 * 1024);
  cfg.icache = CacheGeometry{1024, 32, 4};  // 8 sets
  FetchPath fp(cfg);
  const u32 set_stride = 32 * 8;
  for (int round = 0; round < 3; ++round) {
    for (u32 tag = 0; tag < 6; ++tag) {
      fp.fetch(tag * set_stride, FetchFlow::kTakenDirect);
    }
  }
  // No inconsistency ensures fired; hits+misses == accesses.
  const CacheStats& s = fp.cacheStats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
}

TEST(FetchWayMemoization, LinkedRefetchSkipsTags) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  // A 2-line loop: A(0x00) -> B(0x20) -> A ...
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);   // records seq link A->B
  fp.fetch(0x00, FetchFlow::kTakenDirect);  // records branch link B->A
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x20, FetchFlow::kSequential);   // linked
  fp.fetch(0x00, FetchFlow::kTakenDirect);  // linked
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before);
  EXPECT_EQ(fp.cacheStats().linked_accesses, 2u);
}

TEST(FetchWayMemoization, IndirectJumpsNeverLink) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x40, FetchFlow::kTakenIndirect);
  fp.fetch(0x00, FetchFlow::kTakenIndirect);
  fp.fetch(0x40, FetchFlow::kTakenIndirect);
  EXPECT_EQ(fp.cacheStats().linked_accesses, 0u);
}

TEST(FetchWayMemoization, ConservativeFlashClearOnMiss) {
  FetchPathConfig cfg = configFor(Scheme::kWayMemoization);
  cfg.wm_precise_invalidation = false;
  FetchPath fp(cfg);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);  // link A->B recorded
  fp.fetch(0x40, FetchFlow::kSequential);  // miss -> flash clear
  EXPECT_GE(fp.linkFlashClears(), 1u);
  // The A->B link is gone: crossing again needs a full search.
  const u64 full_before = fp.cacheStats().full_lookups;
  fp.fetch(0x00, FetchFlow::kTakenDirect);
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_GT(fp.cacheStats().full_lookups, full_before);
}

TEST(FetchWayMemoization, PreciseModeKeepsUnrelatedLinks) {
  FetchPathConfig cfg = configFor(Scheme::kWayMemoization);
  cfg.wm_precise_invalidation = true;
  FetchPath fp(cfg);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);  // link A->B
  fp.fetch(0x40, FetchFlow::kSequential);  // miss elsewhere; link survives
  EXPECT_EQ(fp.linkFlashClears(), 0u);
  fp.fetch(0x00, FetchFlow::kTakenDirect);
  const u64 linked_before = fp.cacheStats().linked_accesses;
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().linked_accesses, linked_before + 1);
}

TEST(FetchPath, IntralineSkipCanBeDisabled) {
  FetchPathConfig cfg = configFor(Scheme::kWayPlacement);
  cfg.intraline_skip = false;
  FetchPath fp(cfg);
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 0u);
}

TEST(FetchPath, WayMemoizationAreaFactor) {
  FetchPath wm(configFor(Scheme::kWayMemoization));
  EXPECT_NEAR(wm.dataAreaFactor(), 1.21, 0.005);
  FetchPath base(configFor(Scheme::kBaseline));
  EXPECT_DOUBLE_EQ(base.dataAreaFactor(), 1.0);
}

TEST(FetchPath, ResetRestoresInitialState) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.reset();
  EXPECT_EQ(fp.fetchStats().fetches, 0u);
  EXPECT_EQ(fp.cacheStats().accesses, 0u);
  // WP limit survives the reset.
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u);
}

TEST(FetchWayPlacement, SquashedProbeCountedOncePerMispredict) {
  // Area of one page: 0x0 is way-placed, 0x8000 is not.
  FetchPath fp(configFor(Scheme::kWayPlacement, mem::kPageBytes));

  fp.fetch(0x0, FetchFlow::kSequential);  // hint learns "way-placement"
  EXPECT_EQ(fp.squashedProbes(), 0u);

  // hint=WP but the page is normal: mispredict case 2 — exactly one
  // squashed probe and one extra cycle, then a full re-access.
  fp.fetch(0x8000, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 1u);
  EXPECT_EQ(fp.fetchStats().extra_cycles, 1u);

  // The hint has learned "normal": later non-WP fetches on other lines
  // are plain full searches, not new squashes.
  fp.fetch(0x8040, FetchFlow::kTakenDirect);
  fp.fetch(0x8080, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, fp.squashedProbes());
}

TEST(FetchPath, RejectsUnalignedFetch) {
  FetchPath fp(configFor(Scheme::kBaseline));
  EXPECT_THROW(fp.fetch(0x2, FetchFlow::kSequential), SimError);
}

TEST(FetchPath, SchemeNames) {
  EXPECT_STREQ(schemeName(Scheme::kBaseline), "baseline");
  EXPECT_STREQ(schemeName(Scheme::kWayPlacement), "way-placement");
  EXPECT_STREQ(schemeName(Scheme::kWayMemoization), "way-memoization");
}

// ---------------------------------------------------------------------
// fetchLine preconditions. These are model invariants of the fetch path
// itself, not of the engine that drives it, so each misuse is asserted
// under both WP_ENGINE values: the env knob selects which *driver*
// batches, but neither setting may relax the batching guards.

class FetchLineDeath : public testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(BothEngines, FetchLineDeath,
                         testing::Values("interp", "block"));

TEST_P(FetchLineDeath, SpanCrossingALineBoundaryIsRejected) {
  ScopedEnv env("WP_ENGINE", GetParam());
  FetchPath fp(configFor(Scheme::kWayPlacement));
  // 32 B lines: 4 instructions from 0x18 would end at 0x24, one word
  // into the next line — the closed form would misattribute that fetch.
  EXPECT_THROW(fp.fetchLine(0x18, FetchFlow::kSequential, 4), SimError);
  EXPECT_NO_THROW(fp.fetchLine(0x18, FetchFlow::kSequential, 2));
}

TEST_P(FetchLineDeath, DrowsyLinesOnRejectBatches) {
  ScopedEnv env("WP_ENGINE", GetParam());
  FetchPathConfig cfg = configFor(Scheme::kBaseline);
  cfg.drowsy_window = 8;
  FetchPath fp(cfg);
  ASSERT_FALSE(fp.batchedLineFetchExact())
      << "lines can fall drowsy between two sequential fetches";
  // A 1-instruction "batch" is a plain fetch and stays legal.
  EXPECT_NO_THROW(fp.fetchLine(0x0, FetchFlow::kSequential, 1));
  EXPECT_THROW(fp.fetchLine(0x0, FetchFlow::kSequential, 2), SimError);
}

TEST_P(FetchLineDeath, AttachedFaultHookRejectsBatches) {
  ScopedEnv env("WP_ENGINE", GetParam());
  class NullHook : public FetchFaultHook {
   public:
    void onFetch(FetchPath&) override {}
  } hook;
  FetchPath fp(configFor(Scheme::kWayMemoization));
  fp.attachFaultHook(&hook);
  ASSERT_FALSE(fp.batchedLineFetchExact())
      << "hooks observe state between individual fetches";
  EXPECT_NO_THROW(fp.fetchLine(0x0, FetchFlow::kSequential, 1));
  EXPECT_THROW(fp.fetchLine(0x0, FetchFlow::kSequential, 2), SimError);
  // Detaching restores the closed form.
  fp.attachFaultHook(nullptr);
  EXPECT_NO_THROW(fp.fetchLine(0x20, FetchFlow::kSequential, 2));
}

TEST_P(FetchLineDeath, EmptyBatchIsRejected) {
  ScopedEnv env("WP_ENGINE", GetParam());
  FetchPath fp(configFor(Scheme::kBaseline));
  EXPECT_THROW(fp.fetchLine(0x0, FetchFlow::kSequential, 0), SimError);
}

// ---------------------------------------------------------------------
// Context switches: switchProcess's flush semantics and guards.

TEST(FetchSwitch, FirstInstallPaysNoFlushCosts) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  fp.switchProcess(0, 0, TlbSwitchPolicy::kFlush);
  EXPECT_EQ(fp.currentAsid(), 0u);
  EXPECT_EQ(fp.linkFlashClears(), 0u)
      << "no outgoing process yet: a one-process co-run must match solo";
  EXPECT_EQ(fp.cacheStats().accesses, 0u);
}

TEST(FetchSwitch, SecondSwitchFlushesCacheAndStormsLinks) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  fp.switchProcess(0, 0, TlbSwitchPolicy::kFlush);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);  // link A->B recorded
  const u64 misses_before = fp.cacheStats().misses;
  fp.switchProcess(1, 0, TlbSwitchPolicy::kFlush);
  EXPECT_GE(fp.linkFlashClears(), 1u) << "per-switch invalidation storm";
  // The VIVT I-cache was invalidated: the incoming process cold-misses
  // even on the addresses the outgoing one had resident.
  fp.fetch(0x00, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().misses, misses_before + 1);
}

TEST(FetchSwitch, SwitchResetsTheWayHint) {
  FetchPath fp(configFor(Scheme::kWayPlacement, mem::kPageBytes));
  fp.switchProcess(0, mem::kPageBytes, TlbSwitchPolicy::kFlush);
  fp.fetch(0x0, FetchFlow::kSequential);  // hint learns "way-placement"
  ASSERT_EQ(fp.fetchStats().hint_miss_lost_saving, 1u);
  fp.switchProcess(1, mem::kPageBytes, TlbSwitchPolicy::kFlush);
  // The hint is back to 0: the first WP fetch is case 1 again rather
  // than riding the outgoing process's hint.
  fp.fetch(0x0, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().hint_miss_lost_saving, 2u);
}

TEST(FetchSwitch, SwitchKeepsDrowsyInvariant) {
  FetchPathConfig cfg = configFor(Scheme::kBaseline);
  cfg.drowsy_window = 4;
  FetchPath fp(cfg);
  fp.switchProcess(0, 0, TlbSwitchPolicy::kFlush);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x40, FetchFlow::kSequential);
  ASSERT_GT(fp.awakeDrowsyLines(), 0u);
  fp.switchProcess(1, 0, TlbSwitchPolicy::kFlush);
  EXPECT_EQ(fp.awakeDrowsyLines(), 0u)
      << "a flushed cache tracks no awake line";
}

TEST(FetchSwitch, PerProcessWayPlacementAreas) {
  FetchPath fp(configFor(Scheme::kWayPlacement, mem::kPageBytes));
  // Process 0: one WP page. Its second line fetch is a single-way hit.
  fp.switchProcess(0, mem::kPageBytes, TlbSwitchPolicy::kFlush);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u);
  // Process 1: no WP area at all — the same addresses are normal pages
  // under *its* page table, so no single-way fetches accrue.
  fp.switchProcess(1, 0, TlbSwitchPolicy::kFlush);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);
  fp.fetch(0x40, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u) << "unchanged";
}

TEST(FetchSwitch, RejectsWpAreaOnNonWpScheme) {
  FetchPath fp(configFor(Scheme::kBaseline));
  EXPECT_THROW(
      fp.switchProcess(1, mem::kPageBytes, TlbSwitchPolicy::kFlush),
      SimError);
}

TEST(FetchSwitch, RejectsUnalignedWpArea) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  EXPECT_THROW(fp.switchProcess(1, 100, TlbSwitchPolicy::kFlush), SimError);
}

TEST(FetchSwitch, ResetForgetsTheInstalledContext) {
  FetchPath fp(configFor(Scheme::kBaseline));
  fp.switchProcess(3, 0, TlbSwitchPolicy::kFlush);
  fp.reset();
  EXPECT_EQ(fp.currentAsid(), 0u);
  // After reset the next switchProcess is a first install again.
  fp.switchProcess(1, 0, TlbSwitchPolicy::kFlush);
  EXPECT_EQ(fp.cacheStats().accesses, 0u);
}

}  // namespace
}  // namespace wp::cache
