// Fetch-path tests: the three schemes' tag-check behaviour, the
// way-hint bit's two mispredict scenarios with their penalties, the
// intra-line skip, and way-memoization's linked fetches.
#include <gtest/gtest.h>

#include "cache/fetch_path.hpp"

namespace wp::cache {
namespace {

FetchPathConfig configFor(Scheme scheme, u32 wp_area = 16 * 1024) {
  FetchPathConfig c;
  c.icache = CacheGeometry{32 * 1024, 32, 32};
  c.scheme = scheme;
  c.wp_area_bytes = scheme == Scheme::kWayPlacement ? wp_area : 0;
  return c;
}

TEST(FetchBaseline, EveryFetchIsFullSearch) {
  FetchPath fp(configFor(Scheme::kBaseline));
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.fetch(0x8, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().full_lookups, 3u);
  EXPECT_EQ(fp.cacheStats().tag_compares, 3u * 32u);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 0u);
}

TEST(FetchBaseline, MissPenaltyCharged) {
  FetchPath fp(configFor(Scheme::kBaseline));
  const u32 cold = fp.fetch(0x0, FetchFlow::kSequential);
  // TLB walk (20) + 1 + memory (50 + 8 words).
  EXPECT_EQ(cold, 20u + 1u + 50u + 8u);
  EXPECT_EQ(fp.fetch(0x0, FetchFlow::kSequential), 1u);
}

TEST(FetchWayPlacement, IntralineSkipAvoidsAllTagChecks) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x0, FetchFlow::kSequential);  // miss + fill
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.fetch(0x8, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 2u);
}

TEST(FetchWayPlacement, WpAccessChecksOneTag) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x00, FetchFlow::kSequential);   // in WP area; hint initially 0
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x20, FetchFlow::kSequential);   // line crossing, hint now 1
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before + 1);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u);
}

TEST(FetchWayPlacement, HintCase1LosesSavingOnly) {
  // First access to the WP area with hint=0: full search, no penalty.
  FetchPath fp(configFor(Scheme::kWayPlacement));
  const u32 cycles = fp.fetch(0x0, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().hint_miss_lost_saving, 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 0u);
  EXPECT_EQ(cycles, 20u + 1u + 50u + 8u);  // no extra cycle
}

TEST(FetchWayPlacement, HintCase2CostsCycleAndSecondAccess) {
  FetchPath fp(configFor(Scheme::kWayPlacement, /*wp_area=*/1024));
  fp.fetch(0x0, FetchFlow::kSequential);     // WP page; hint becomes 1
  // Jump outside the WP area: hint=1 but page is normal.
  const u32 cycles = fp.fetch(0x8000, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 1u);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  // 1 extra cycle on top of TLB walk + miss.
  EXPECT_EQ(cycles, 20u + 1u + 1u + 50u + 8u);
  EXPECT_EQ(fp.fetchStats().extra_cycles, 1u);
}

TEST(FetchWayPlacement, WpLinesAlwaysFoundBySingleWayLookup) {
  // Thrash a set with way-placed lines; single-way lookups must always
  // resolve (fills are deterministic).
  FetchPathConfig cfg = configFor(Scheme::kWayPlacement, 64 * 1024);
  cfg.icache = CacheGeometry{1024, 32, 4};  // 8 sets
  FetchPath fp(cfg);
  const u32 set_stride = 32 * 8;
  for (int round = 0; round < 3; ++round) {
    for (u32 tag = 0; tag < 6; ++tag) {
      fp.fetch(tag * set_stride, FetchFlow::kTakenDirect);
    }
  }
  // No inconsistency ensures fired; hits+misses == accesses.
  const CacheStats& s = fp.cacheStats();
  EXPECT_EQ(s.hits + s.misses, s.accesses);
}

TEST(FetchWayMemoization, LinkedRefetchSkipsTags) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  // A 2-line loop: A(0x00) -> B(0x20) -> A ...
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);   // records seq link A->B
  fp.fetch(0x00, FetchFlow::kTakenDirect);  // records branch link B->A
  const u64 tags_before = fp.cacheStats().tag_compares;
  fp.fetch(0x20, FetchFlow::kSequential);   // linked
  fp.fetch(0x00, FetchFlow::kTakenDirect);  // linked
  EXPECT_EQ(fp.cacheStats().tag_compares, tags_before);
  EXPECT_EQ(fp.cacheStats().linked_accesses, 2u);
}

TEST(FetchWayMemoization, IndirectJumpsNeverLink) {
  FetchPath fp(configFor(Scheme::kWayMemoization));
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x40, FetchFlow::kTakenIndirect);
  fp.fetch(0x00, FetchFlow::kTakenIndirect);
  fp.fetch(0x40, FetchFlow::kTakenIndirect);
  EXPECT_EQ(fp.cacheStats().linked_accesses, 0u);
}

TEST(FetchWayMemoization, ConservativeFlashClearOnMiss) {
  FetchPathConfig cfg = configFor(Scheme::kWayMemoization);
  cfg.wm_precise_invalidation = false;
  FetchPath fp(cfg);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);  // link A->B recorded
  fp.fetch(0x40, FetchFlow::kSequential);  // miss -> flash clear
  EXPECT_GE(fp.linkFlashClears(), 1u);
  // The A->B link is gone: crossing again needs a full search.
  const u64 full_before = fp.cacheStats().full_lookups;
  fp.fetch(0x00, FetchFlow::kTakenDirect);
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_GT(fp.cacheStats().full_lookups, full_before);
}

TEST(FetchWayMemoization, PreciseModeKeepsUnrelatedLinks) {
  FetchPathConfig cfg = configFor(Scheme::kWayMemoization);
  cfg.wm_precise_invalidation = true;
  FetchPath fp(cfg);
  fp.fetch(0x00, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);  // link A->B
  fp.fetch(0x40, FetchFlow::kSequential);  // miss elsewhere; link survives
  EXPECT_EQ(fp.linkFlashClears(), 0u);
  fp.fetch(0x00, FetchFlow::kTakenDirect);
  const u64 linked_before = fp.cacheStats().linked_accesses;
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_EQ(fp.cacheStats().linked_accesses, linked_before + 1);
}

TEST(FetchPath, IntralineSkipCanBeDisabled) {
  FetchPathConfig cfg = configFor(Scheme::kWayPlacement);
  cfg.intraline_skip = false;
  FetchPath fp(cfg);
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().sameline_skips, 0u);
}

TEST(FetchPath, WayMemoizationAreaFactor) {
  FetchPath wm(configFor(Scheme::kWayMemoization));
  EXPECT_NEAR(wm.dataAreaFactor(), 1.21, 0.005);
  FetchPath base(configFor(Scheme::kBaseline));
  EXPECT_DOUBLE_EQ(base.dataAreaFactor(), 1.0);
}

TEST(FetchPath, ResetRestoresInitialState) {
  FetchPath fp(configFor(Scheme::kWayPlacement));
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x4, FetchFlow::kSequential);
  fp.reset();
  EXPECT_EQ(fp.fetchStats().fetches, 0u);
  EXPECT_EQ(fp.cacheStats().accesses, 0u);
  // WP limit survives the reset.
  fp.fetch(0x0, FetchFlow::kSequential);
  fp.fetch(0x20, FetchFlow::kSequential);
  EXPECT_EQ(fp.fetchStats().wp_single_way, 1u);
}

TEST(FetchWayPlacement, SquashedProbeCountedOncePerMispredict) {
  // Area of one page: 0x0 is way-placed, 0x8000 is not.
  FetchPath fp(configFor(Scheme::kWayPlacement, mem::kPageBytes));

  fp.fetch(0x0, FetchFlow::kSequential);  // hint learns "way-placement"
  EXPECT_EQ(fp.squashedProbes(), 0u);

  // hint=WP but the page is normal: mispredict case 2 — exactly one
  // squashed probe and one extra cycle, then a full re-access.
  fp.fetch(0x8000, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, 1u);
  EXPECT_EQ(fp.fetchStats().extra_cycles, 1u);

  // The hint has learned "normal": later non-WP fetches on other lines
  // are plain full searches, not new squashes.
  fp.fetch(0x8040, FetchFlow::kTakenDirect);
  fp.fetch(0x8080, FetchFlow::kTakenDirect);
  EXPECT_EQ(fp.squashedProbes(), 1u);
  EXPECT_EQ(fp.fetchStats().hint_miss_second_access, fp.squashedProbes());
}

TEST(FetchPath, RejectsUnalignedFetch) {
  FetchPath fp(configFor(Scheme::kBaseline));
  EXPECT_THROW(fp.fetch(0x2, FetchFlow::kSequential), SimError);
}

TEST(FetchPath, SchemeNames) {
  EXPECT_STREQ(schemeName(Scheme::kBaseline), "baseline");
  EXPECT_STREQ(schemeName(Scheme::kWayPlacement), "way-placement");
  EXPECT_STREQ(schemeName(Scheme::kWayMemoization), "way-memoization");
}

}  // namespace
}  // namespace wp::cache
