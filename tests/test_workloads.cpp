// Workload correctness: every guest program must reproduce its host
// reference bit-for-bit, on both input sizes, and under both layouts
// (original order and way-placement chains) — layout must never change
// program semantics.
#include <gtest/gtest.h>

#include "layout/strategy.hpp"
#include "profile/profiler.hpp"
#include "sim/core.hpp"
#include "workloads/workload.hpp"

namespace wp {
namespace {

using workloads::InputSize;

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::string> {};

// Runs the image functionally until HALT.
void runToHalt(const mem::Image& image, mem::Memory& memory) {
  sim::Core core(image, memory);
  sim::CoreState state = core.initialState();
  u64 steps = 0;
  while (!state.halted) {
    ASSERT_LT(steps++, 80'000'000ULL) << "guest did not halt";
    core.step(state);
  }
}

TEST_P(WorkloadCorrectness, SmallInputOriginalLayout) {
  auto w = workloads::makeWorkload(GetParam());
  const ir::Module module = w->build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  mem::Memory memory;
  image.loadInto(memory);
  w->prepare(memory, InputSize::kSmall);
  runToHalt(image, memory);
  EXPECT_EQ(w->output(memory), w->expected(InputSize::kSmall));
}

TEST_P(WorkloadCorrectness, LargeInputOriginalLayout) {
  auto w = workloads::makeWorkload(GetParam());
  const ir::Module module = w->build();
  const mem::Image image =
      layout::layoutImage(module, "original");
  mem::Memory memory;
  image.loadInto(memory);
  w->prepare(memory, InputSize::kLarge);
  runToHalt(image, memory);
  EXPECT_EQ(w->output(memory), w->expected(InputSize::kLarge));
}

TEST_P(WorkloadCorrectness, LargeInputWayPlacementLayout) {
  auto w = workloads::makeWorkload(GetParam());
  ir::Module module = w->build();

  // Profile on the small input, as the real flow does.
  const mem::Image orig =
      layout::layoutImage(module, "original");
  mem::Memory pmem;
  orig.loadInto(pmem);
  w->prepare(pmem, InputSize::kSmall);
  profile::annotate(module, profile::profileImage(orig, pmem));

  const mem::Image image =
      layout::layoutImage(module, "way_placement");
  mem::Memory memory;
  image.loadInto(memory);
  w->prepare(memory, InputSize::kLarge);
  runToHalt(image, memory);
  EXPECT_EQ(w->output(memory), w->expected(InputSize::kLarge));
}

TEST_P(WorkloadCorrectness, SmallInputLiteratureStrategyLayouts) {
  // The registry's literature orderings (Codestitcher-style collocation
  // and ExtTSP) must be architecturally equivalent on every workload,
  // exactly like the paper's ordering.
  auto w = workloads::makeWorkload(GetParam());
  ir::Module module = w->build();

  const mem::Image orig =
      layout::layoutImage(module, "original");
  mem::Memory pmem;
  orig.loadInto(pmem);
  w->prepare(pmem, InputSize::kSmall);
  profile::annotate(module, profile::profileImage(orig, pmem));

  for (const char* strategy : {"call_distance", "exttsp"}) {
    const layout::LayoutResult laid = layout::runPipeline(module, strategy);
    mem::Memory memory;
    laid.image.loadInto(memory);
    w->prepare(memory, InputSize::kSmall);
    runToHalt(laid.image, memory);
    EXPECT_EQ(w->output(memory), w->expected(InputSize::kSmall)) << strategy;
  }
}

TEST_P(WorkloadCorrectness, LargeInputRandomLayout) {
  auto w = workloads::makeWorkload(GetParam());
  const ir::Module module = w->build();
  const mem::Image image =
      layout::layoutImage(module, "random", /*seed=*/7);
  mem::Memory memory;
  image.loadInto(memory);
  w->prepare(memory, InputSize::kLarge);
  runToHalt(image, memory);
  EXPECT_EQ(w->output(memory), w->expected(InputSize::kLarge));
}

INSTANTIATE_TEST_SUITE_P(
    Suite, WorkloadCorrectness,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(WorkloadRegistry, SuiteHas23Benchmarks) {
  EXPECT_EQ(workloads::suiteNames().size(), 23u);
}

TEST(WorkloadRegistry, UnknownNameThrows) {
  EXPECT_THROW(workloads::makeWorkload("nope"), SimError);
}

}  // namespace
}  // namespace wp
