// Tests for the observability primitives: counter/timer registry,
// scoped spans, JSONL trace events/writer, and the fail-loud I/O
// policy for requested artifacts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace wp {
namespace {

std::string tempPath(const std::string& name) {
  return testing::TempDir() + name;
}

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Metrics, TimerAccumulatesDurationsAndCounts) {
  Timer t;
  t.record(std::chrono::nanoseconds(1'500'000'000));
  t.record(std::chrono::nanoseconds(500'000'000));
  EXPECT_EQ(t.count(), 2u);
  EXPECT_EQ(t.totalNanoseconds(), 2'000'000'000u);
  EXPECT_DOUBLE_EQ(t.seconds(), 2.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry r;
  Counter& a = r.counter("x");
  a.add(7);
  EXPECT_EQ(&r.counter("x"), &a) << "same name must be the same counter";
  EXPECT_EQ(r.counter("x").value(), 7u);
  EXPECT_EQ(r.counter("y").value(), 0u) << "fresh counter starts at zero";
  Timer& t = r.timer("t");
  EXPECT_EQ(&r.timer("t"), &t);
}

TEST(Metrics, RegistryIsThreadSafeUnderConcurrentAdds) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10'000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&r] {
      for (int k = 0; k < kAdds; ++k) {
        r.counter("shared").add();
        r.timer("shared").record(std::chrono::nanoseconds(1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter("shared").value(),
            static_cast<u64>(kThreads) * kAdds);
  EXPECT_EQ(r.timer("shared").count(), static_cast<u64>(kThreads) * kAdds);
}

TEST(Metrics, ScopedTimerRecordsOnceAndReturnsSeconds) {
  Timer t;
  {
    ScopedTimer span(t);
    const double s = span.stop();
    EXPECT_GE(s, 0.0);
    EXPECT_DOUBLE_EQ(span.stop(), s) << "stop() must be idempotent";
  }
  EXPECT_EQ(t.count(), 1u) << "destructor must not double-record";

  { ScopedTimer span(t); }  // destructor path
  EXPECT_EQ(t.count(), 2u);
}

TEST(Metrics, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(jsonEscape("n\nl\tt"), "n\\nl\\tt");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Metrics, RegistryJsonFieldsRoundTrip) {
  MetricsRegistry r;
  r.counter("hits").add(3);
  r.timer("phase").record(std::chrono::nanoseconds(2'000'000'000));
  std::ostringstream os;
  r.writeJsonFields(os, "");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"hits\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"phase\": {\"seconds\": 2"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
}

TEST(Trace, EventRendersOrderedFields) {
  TraceEvent ev("cell_end");
  ev.str("key", "crc/32768").num("worker", 3).num("mips", 1.5).boolean(
      "ok", true);
  const std::string line = ev.render(0.25);
  EXPECT_EQ(line.find("{\"ev\": \"cell_end\", \"ts\": 0.25"), 0u) << line;
  EXPECT_NE(line.find("\"key\": \"crc/32768\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"worker\": 3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"ok\": true"), std::string::npos) << line;
  EXPECT_EQ(line.back(), '}');
}

TEST(Trace, WriterEmitsOneJsonObjectPerLine) {
  const std::string path = tempPath("trace_writer_test.jsonl");
  {
    TraceWriter w(path);
    w.write(TraceEvent("a").num("n", u64{1}));
    w.write(TraceEvent("b").str("s", "x"));
    EXPECT_EQ(w.eventsWritten(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts\": "), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TraceDeathTest, UnopenablePathFailsLoudlyNamingTheKnob) {
  EXPECT_EXIT(TraceWriter("/nonexistent-dir-zzz/trace.jsonl"),
              testing::ExitedWithCode(1), "WP_TRACE.*cannot open");
}

TEST(ThreadPoolWorkerIndex, ExternalThreadIsMinusOne) {
  EXPECT_EQ(ThreadPool::currentWorkerIndex(), -1);
}

TEST(ThreadPoolWorkerIndex, WorkersSeeTheirDenseIndex) {
  ThreadPool pool(3);
  MetricsRegistry r;
  for (int i = 0; i < 64; ++i) {
    pool.submit([&r] {
      const int me = ThreadPool::currentWorkerIndex();
      ASSERT_GE(me, 0);
      ASSERT_LT(me, 3);
      r.counter("seen." + std::to_string(me)).add();
    });
  }
  pool.wait();
  u64 total = 0;
  for (const auto& [name, value] : r.counterValues()) total += value;
  EXPECT_EQ(total, 64u);
}

}  // namespace
}  // namespace wp
