// Timing-model tests: scoreboard stalls, functional-unit latencies,
// branch prediction and fetch-stall accounting.
#include <gtest/gtest.h>

#include "pipeline/timing.hpp"

namespace wp::pipeline {
namespace {

using isa::Instruction;
using isa::Opcode;

Instruction alu(u8 rd, u8 rn, u8 rm) {
  return {Opcode::kAdd, rd, rn, rm, 0};
}

TEST(RegUse, CoversKeyShapes) {
  RegUse u = regUsesOf({Opcode::kAdd, 1, 2, 3, 0});
  EXPECT_TRUE(u.has_dst);
  EXPECT_EQ(u.dst, 1);
  EXPECT_EQ(u.num_srcs, 2u);

  u = regUsesOf({Opcode::kMla, 1, 2, 3, 0});
  EXPECT_EQ(u.num_srcs, 3u);  // accumulator is also a source

  u = regUsesOf({Opcode::kCmp, 0, 2, 3, 0});
  EXPECT_FALSE(u.has_dst);
  EXPECT_TRUE(u.writes_flags);

  u = regUsesOf({Opcode::kBeq, 0, 0, 0, 4});
  EXPECT_TRUE(u.reads_flags);

  u = regUsesOf({Opcode::kBl, 0, 0, 0, 4});
  EXPECT_TRUE(u.has_dst);
  EXPECT_EQ(u.dst, isa::kLinkReg);

  u = regUsesOf({Opcode::kStr, 1, 2, 0, 0});
  EXPECT_FALSE(u.has_dst);
  EXPECT_EQ(u.num_srcs, 2u);  // data + base
}

TEST(Timing, IndependentAluChainIsOneCpi) {
  TimingModel t(TimingConfig{});
  for (u32 i = 0; i < 100; ++i) {
    t.onInstruction(alu(static_cast<u8>(i % 4), 4, 5), i * 4, 1, 0, false, 0);
  }
  EXPECT_EQ(t.cycles(), 100u);
}

TEST(Timing, LoadUseStalls) {
  TimingConfig cfg;
  cfg.load_use_latency = 3;
  TimingModel t(cfg);
  t.onInstruction({Opcode::kLdr, 1, 2, 0, 0}, 0, 1, /*mem=*/1, false, 0);
  const u64 after_load = t.cycles();
  t.onInstruction(alu(3, 1, 1), 4, 1, 0, false, 0);  // uses r1 immediately
  EXPECT_GT(t.cycles(), after_load + 1);
}

TEST(Timing, IndependentInstructionAfterLoadDoesNotStall) {
  TimingModel t(TimingConfig{});
  t.onInstruction({Opcode::kLdr, 1, 2, 0, 0}, 0, 1, 1, false, 0);
  const u64 after_load = t.cycles();
  t.onInstruction(alu(3, 4, 5), 4, 1, 0, false, 0);
  EXPECT_EQ(t.cycles(), after_load + 1);
}

TEST(Timing, MultiplyLatencySeenByConsumer) {
  TimingConfig cfg;
  cfg.mul_latency = 3;
  TimingModel t(cfg);
  t.onInstruction({Opcode::kMul, 1, 2, 3, 0}, 0, 1, 0, false, 0);
  const u64 after_mul = t.cycles();
  t.onInstruction(alu(4, 1, 1), 4, 1, 0, false, 0);
  EXPECT_EQ(t.cycles(), after_mul + cfg.mul_latency);
}

TEST(Timing, FetchStallsAddDirectly) {
  TimingModel t(TimingConfig{});
  t.onInstruction(alu(1, 2, 3), 0, /*fetch=*/59, 0, false, 0);
  EXPECT_EQ(t.cycles(), 59u);
}

TEST(Timing, BtbLearnsLoopBranch) {
  TimingConfig cfg;
  cfg.branch_mispredict_penalty = 4;
  TimingModel t(cfg);
  // A backward branch taken 50 times: first occurrences mispredict,
  // steady state predicts correctly.
  for (int i = 0; i < 50; ++i) {
    t.onInstruction({Opcode::kBne, 0, 0, 0, -4}, 0x100, 1, 0, true, 0xf4);
  }
  const BranchStats& s = t.branchStats();
  EXPECT_EQ(s.branches, 50u);
  EXPECT_LE(s.mispredicts, 2u);
}

TEST(Timing, AlternatingBranchMispredicts) {
  TimingModel t(TimingConfig{});
  for (int i = 0; i < 40; ++i) {
    t.onInstruction({Opcode::kBne, 0, 0, 0, -4}, 0x100, 1, 0, i % 2 == 0,
                    0xf4);
  }
  EXPECT_GT(t.branchStats().mispredicts, 10u);
}

TEST(Timing, MispredictPenaltyCharged) {
  TimingConfig cfg;
  cfg.branch_mispredict_penalty = 4;
  TimingModel t(cfg);
  t.onInstruction({Opcode::kB, 0, 0, 0, 16}, 0, 1, 0, true, 0x44);
  // Cold BTB: the taken branch mispredicts and pays 4 cycles.
  EXPECT_EQ(t.cycles(), 1u + 4u);
}

TEST(Timing, ResetClearsState) {
  TimingModel t(TimingConfig{});
  t.onInstruction(alu(1, 2, 3), 0, 10, 0, false, 0);
  t.reset();
  EXPECT_EQ(t.cycles(), 0u);
  EXPECT_EQ(t.branchStats().branches, 0u);
}

}  // namespace
}  // namespace wp::pipeline
