// I-TLB tests: hit/miss behaviour, FIFO replacement, the way-placement
// bit, and the OS area-limit policy.
#include <gtest/gtest.h>

#include "cache/tlb.hpp"

namespace wp::cache {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.access(0x1000).hit);
  EXPECT_TRUE(tlb.access(0x1000).hit);
  EXPECT_TRUE(tlb.access(0x1004).hit);  // same page
  EXPECT_EQ(tlb.stats().accesses, 3u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, FifoReplacement) {
  Tlb tlb(2);
  tlb.access(0 * mem::kPageBytes);
  tlb.access(1 * mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);  // evicts page 0
  EXPECT_FALSE(tlb.access(0 * mem::kPageBytes).hit);
}

TEST(Tlb, WayPlacementBitFollowsLimit) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(2 * mem::kPageBytes);
  EXPECT_TRUE(tlb.access(0).way_placement_page);
  EXPECT_TRUE(tlb.access(mem::kPageBytes).way_placement_page);
  EXPECT_FALSE(tlb.access(2 * mem::kPageBytes).way_placement_page);
  EXPECT_FALSE(tlb.access(100 * mem::kPageBytes).way_placement_page);
}

TEST(Tlb, BitIsStoredInEntryNotRecomputed) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  EXPECT_TRUE(tlb.access(0).way_placement_page);   // installs entry
  EXPECT_TRUE(tlb.access(4).way_placement_page);   // hit, bit from entry
}

TEST(Tlb, ChangingLimitFlushes) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  tlb.access(0);
  tlb.setWayPlacementLimit(0);
  const Tlb::Result r = tlb.access(0);
  EXPECT_FALSE(r.hit);  // flushed
  EXPECT_FALSE(r.way_placement_page);
}

TEST(Tlb, LimitMustBePageAligned) {
  Tlb tlb(8);
  EXPECT_THROW(tlb.setWayPlacementLimit(100), SimError);
  EXPECT_NO_THROW(tlb.setWayPlacementLimit(4 * mem::kPageBytes));
}

TEST(Tlb, InWayPlacementAreaIsOsView) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(3 * mem::kPageBytes);
  EXPECT_TRUE(tlb.inWayPlacementArea(0));
  EXPECT_TRUE(tlb.inWayPlacementArea(3 * mem::kPageBytes - 1));
  EXPECT_FALSE(tlb.inWayPlacementArea(3 * mem::kPageBytes));
}

TEST(Tlb, ResetClearsStatsAndEntries) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.reset();
  EXPECT_EQ(tlb.stats().accesses, 0u);
  EXPECT_FALSE(tlb.access(0x1000).hit);
}

TEST(Tlb, EvictionAndRefillRestoreWpBit) {
  Tlb tlb(2);
  tlb.setWayPlacementLimit(mem::kPageBytes);  // page 0 is way-placement
  const Tlb::Result first = tlb.access(0x0);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.way_placement_page);

  // Two other pages roll the FIFO over page 0's entry.
  tlb.access(mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);

  // The re-walk reinstalls the translation with the WP bit intact: the
  // bit lives in the page tables, the TLB only caches it.
  const Tlb::Result again = tlb.access(0x0);
  EXPECT_FALSE(again.hit);
  EXPECT_TRUE(again.way_placement_page);
}

TEST(Tlb, FaultFlippedWpBitHealsOnRefill) {
  Tlb tlb(2);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  tlb.access(0x0);  // installs into slot 0 (FIFO from 0)
  ASSERT_TRUE(tlb.faultFlipWpBit(0));
  EXPECT_FALSE(tlb.access(0x40).way_placement_page)
      << "the corrupted cached bit must be visible until refill";

  tlb.access(mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);       // evict the corrupted entry
  EXPECT_TRUE(tlb.access(0x0).way_placement_page) << "re-walk heals it";
}

TEST(Tlb, FaultHooksOnEmptySlotsReportNothing) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.faultFlipWpBit(2)) << "no valid translation there";
  EXPECT_EQ(tlb.faultClearWpBits(), 0u);
  EXPECT_EQ(tlb.entryCount(), 4u);
}

// ---------------------------------------------------------------------
// The stale-MRU fix: every flush path must drop the MRU shortcut, so a
// batched accessRepeat can never silently ride a dead translation.

TEST(Tlb, BatchAfterLimitChangeCannotRideADeadTranslation) {
  Tlb tlb(4);
  tlb.access(0x1000);
  EXPECT_TRUE(tlb.accessRepeat(0x1000, 3).hit);
  // setWayPlacementLimit flushes every entry; before the fix the MRU
  // index survived and still pointed at the (now invalid) slot.
  tlb.setWayPlacementLimit(mem::kPageBytes);
  EXPECT_THROW(tlb.accessRepeat(0x1000, 3), SimError);
  // A fresh access re-walks and re-arms the shortcut.
  EXPECT_FALSE(tlb.access(0x1000).hit);
  EXPECT_TRUE(tlb.accessRepeat(0x1000, 2).hit);
}

TEST(Tlb, BatchAfterResetCannotRideADeadTranslation) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.reset();
  EXPECT_THROW(tlb.accessRepeat(0x1000, 1), SimError);
}

TEST(Tlb, BatchAfterFlushingSwitchCannotRideADeadTranslation) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.switchContext(1, 0, TlbSwitchPolicy::kFlush);
  EXPECT_THROW(tlb.accessRepeat(0x1000, 4), SimError);
}

TEST(Tlb, BatchAfterTaggedSwitchCannotRideTheOutgoingMru) {
  Tlb tlb(4);
  tlb.access(0x1000);
  // ASID tagging keeps the entry resident, but it belongs to process 0:
  // the incoming process's batch must not ride it either.
  tlb.switchContext(1, 0, TlbSwitchPolicy::kAsidTagged);
  EXPECT_THROW(tlb.accessRepeat(0x1000, 4), SimError);
}

TEST(Tlb, AccessRepeatRequiresTheMruPage) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.access(0x2000);  // MRU now holds page 2
  EXPECT_THROW(tlb.accessRepeat(0x1000, 1), SimError);
  EXPECT_TRUE(tlb.accessRepeat(0x2000, 5).hit);
}

TEST(Tlb, AccessRepeatCountsEveryAccessOfTheBatch) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.accessRepeat(0x1000, 7);
  EXPECT_EQ(tlb.stats().accesses, 8u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

// ---------------------------------------------------------------------
// Context switches: ASID tagging vs flush.

TEST(Tlb, FlushingSwitchRewalksEveryPage) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.switchContext(1, 0, TlbSwitchPolicy::kFlush);
  EXPECT_EQ(tlb.currentAsid(), 1u);
  EXPECT_FALSE(tlb.access(0x1000).hit) << "flushed on switch";
  tlb.switchContext(0, 0, TlbSwitchPolicy::kFlush);
  EXPECT_FALSE(tlb.access(0x1000).hit) << "flushed again on switch back";
}

TEST(Tlb, TaggedSwitchKeepsEntriesResidentPerProcess) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.switchContext(1, 0, TlbSwitchPolicy::kAsidTagged);
  EXPECT_FALSE(tlb.access(0x1000).hit)
      << "process 0's translation must not serve process 1";
  tlb.switchContext(0, 0, TlbSwitchPolicy::kAsidTagged);
  EXPECT_TRUE(tlb.access(0x1000).hit)
      << "process 0's translation survives the round trip";
  EXPECT_EQ(tlb.stats().walks, 2u) << "one walk per process, not three";
}

TEST(Tlb, TaggedEntriesCarryTheirOwnersWpBit) {
  Tlb tlb(4);
  // Process 0 has a 1-page WP area; process 1 has none. The same VPN
  // must yield each owner's own page-table bit — this asymmetry is why
  // per-process WP bits need ASID tagging (or a switch flush) at all.
  tlb.switchContext(0, mem::kPageBytes, TlbSwitchPolicy::kAsidTagged);
  EXPECT_TRUE(tlb.access(0).way_placement_page);
  tlb.switchContext(1, 0, TlbSwitchPolicy::kAsidTagged);
  EXPECT_FALSE(tlb.access(0).way_placement_page);
  tlb.switchContext(0, mem::kPageBytes, TlbSwitchPolicy::kAsidTagged);
  const Tlb::Result r = tlb.access(0);
  EXPECT_TRUE(r.hit);
  EXPECT_TRUE(r.way_placement_page) << "cached bit is the owner's";
}

TEST(Tlb, SwitchLimitMustBePageAligned) {
  Tlb tlb(4);
  EXPECT_THROW(tlb.switchContext(1, 100, TlbSwitchPolicy::kFlush), SimError);
}

TEST(Tlb, ResetRestoresAsidZero) {
  Tlb tlb(4);
  tlb.switchContext(3, 0, TlbSwitchPolicy::kFlush);
  tlb.reset();
  EXPECT_EQ(tlb.currentAsid(), 0u);
}

}  // namespace
}  // namespace wp::cache
