// I-TLB tests: hit/miss behaviour, FIFO replacement, the way-placement
// bit, and the OS area-limit policy.
#include <gtest/gtest.h>

#include "cache/tlb.hpp"

namespace wp::cache {
namespace {

TEST(Tlb, MissThenHit) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.access(0x1000).hit);
  EXPECT_TRUE(tlb.access(0x1000).hit);
  EXPECT_TRUE(tlb.access(0x1004).hit);  // same page
  EXPECT_EQ(tlb.stats().accesses, 3u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, FifoReplacement) {
  Tlb tlb(2);
  tlb.access(0 * mem::kPageBytes);
  tlb.access(1 * mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);  // evicts page 0
  EXPECT_FALSE(tlb.access(0 * mem::kPageBytes).hit);
}

TEST(Tlb, WayPlacementBitFollowsLimit) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(2 * mem::kPageBytes);
  EXPECT_TRUE(tlb.access(0).way_placement_page);
  EXPECT_TRUE(tlb.access(mem::kPageBytes).way_placement_page);
  EXPECT_FALSE(tlb.access(2 * mem::kPageBytes).way_placement_page);
  EXPECT_FALSE(tlb.access(100 * mem::kPageBytes).way_placement_page);
}

TEST(Tlb, BitIsStoredInEntryNotRecomputed) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  EXPECT_TRUE(tlb.access(0).way_placement_page);   // installs entry
  EXPECT_TRUE(tlb.access(4).way_placement_page);   // hit, bit from entry
}

TEST(Tlb, ChangingLimitFlushes) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  tlb.access(0);
  tlb.setWayPlacementLimit(0);
  const Tlb::Result r = tlb.access(0);
  EXPECT_FALSE(r.hit);  // flushed
  EXPECT_FALSE(r.way_placement_page);
}

TEST(Tlb, LimitMustBePageAligned) {
  Tlb tlb(8);
  EXPECT_THROW(tlb.setWayPlacementLimit(100), SimError);
  EXPECT_NO_THROW(tlb.setWayPlacementLimit(4 * mem::kPageBytes));
}

TEST(Tlb, InWayPlacementAreaIsOsView) {
  Tlb tlb(8);
  tlb.setWayPlacementLimit(3 * mem::kPageBytes);
  EXPECT_TRUE(tlb.inWayPlacementArea(0));
  EXPECT_TRUE(tlb.inWayPlacementArea(3 * mem::kPageBytes - 1));
  EXPECT_FALSE(tlb.inWayPlacementArea(3 * mem::kPageBytes));
}

TEST(Tlb, ResetClearsStatsAndEntries) {
  Tlb tlb(4);
  tlb.access(0x1000);
  tlb.reset();
  EXPECT_EQ(tlb.stats().accesses, 0u);
  EXPECT_FALSE(tlb.access(0x1000).hit);
}

TEST(Tlb, EvictionAndRefillRestoreWpBit) {
  Tlb tlb(2);
  tlb.setWayPlacementLimit(mem::kPageBytes);  // page 0 is way-placement
  const Tlb::Result first = tlb.access(0x0);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.way_placement_page);

  // Two other pages roll the FIFO over page 0's entry.
  tlb.access(mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);

  // The re-walk reinstalls the translation with the WP bit intact: the
  // bit lives in the page tables, the TLB only caches it.
  const Tlb::Result again = tlb.access(0x0);
  EXPECT_FALSE(again.hit);
  EXPECT_TRUE(again.way_placement_page);
}

TEST(Tlb, FaultFlippedWpBitHealsOnRefill) {
  Tlb tlb(2);
  tlb.setWayPlacementLimit(mem::kPageBytes);
  tlb.access(0x0);  // installs into slot 0 (FIFO from 0)
  ASSERT_TRUE(tlb.faultFlipWpBit(0));
  EXPECT_FALSE(tlb.access(0x40).way_placement_page)
      << "the corrupted cached bit must be visible until refill";

  tlb.access(mem::kPageBytes);
  tlb.access(2 * mem::kPageBytes);       // evict the corrupted entry
  EXPECT_TRUE(tlb.access(0x0).way_placement_page) << "re-walk heals it";
}

TEST(Tlb, FaultHooksOnEmptySlotsReportNothing) {
  Tlb tlb(4);
  EXPECT_FALSE(tlb.faultFlipWpBit(2)) << "no valid translation there";
  EXPECT_EQ(tlb.faultClearWpBits(), 0u);
  EXPECT_EQ(tlb.entryCount(), 4u);
}

}  // namespace
}  // namespace wp::cache
