// Driver integration tests: the paper's experimental flow end to end on
// representative workloads, checking the headline result *shapes*.
#include <gtest/gtest.h>

#include <cstdlib>

#include "driver/runner.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

class DriverShape : public ::testing::TestWithParam<std::string> {};

TEST_P(DriverShape, WayPlacementBeatsBaselineAndMemoization) {
  driver::Runner runner;
  const driver::PreparedWorkload prepared = runner.prepare(GetParam());

  const driver::RunResult base =
      runner.run(prepared, kXScale, driver::SchemeSpec::baseline());
  const driver::RunResult wm =
      runner.run(prepared, kXScale, driver::SchemeSpec::wayMemoization());
  const driver::RunResult wp =
      runner.run(prepared, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));

  const driver::Normalized nwp = driver::normalize(wp, base);
  const driver::Normalized nwm = driver::normalize(wm, base);

  // Energy: way-placement saves a lot and beats way-memoization.
  EXPECT_LT(nwp.icache_energy, 0.75) << "way-placement savings too small";
  EXPECT_LT(nwp.icache_energy, nwm.icache_energy);

  // Performance: "There is no change in performance when using either
  // way-placement or way-memoization" (§6.1) — within noise.
  EXPECT_NEAR(nwp.delay, 1.0, 0.05);
  EXPECT_NEAR(nwm.delay, 1.0, 0.05);

  // ED product below 1 for way-placement.
  EXPECT_LT(nwp.ed_product, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Representative, DriverShape,
                         ::testing::Values("crc", "sha", "bitcount",
                                           "rijndael_e", "fft"),
                         [](const auto& info) { return info.param; });

TEST(Driver, ProfileUsesSmallInput) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  const driver::RunResult large =
      runner.run(p, kXScale, driver::SchemeSpec::baseline());
  // The training run must be much shorter than the evaluation run.
  EXPECT_LT(p.profile_instructions * 4, large.stats.instructions);
}

TEST(Driver, WayPlacementAreaSizeMonotonicity) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("rijndael_e");
  const driver::RunResult base =
      runner.run(p, kXScale, driver::SchemeSpec::baseline());

  double prev = 0.0;
  for (const u32 area : {1024u, 4096u, 16384u}) {
    const driver::RunResult r =
        runner.run(p, kXScale, driver::SchemeSpec::wayPlacement(area));
    const double e = driver::normalize(r, base).icache_energy;
    EXPECT_LT(e, 1.0) << "area " << area;
    if (prev != 0.0) {
      // Larger areas can only help (or tie) on these small programs.
      EXPECT_LE(e, prev + 0.02) << "area " << area;
    }
    prev = e;
  }
}

TEST(Driver, SingleWayFetchesDominateInWpArea) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("sha");
  const driver::RunResult wp =
      runner.run(p, kXScale, driver::SchemeSpec::wayPlacement(16 * 1024));
  const auto& f = wp.stats.fetch;
  // Paper §4.1: the way-hint is very accurate because execution stays
  // inside the way-placement area for long stretches.
  const double accuracy =
      static_cast<double>(f.hint_correct) /
      static_cast<double>(f.hint_correct + f.hint_miss_lost_saving +
                          f.hint_miss_second_access);
  EXPECT_GT(accuracy, 0.95);
  // Nearly every non-same-line fetch is a single-way access.
  EXPECT_GT(f.wp_single_way + f.sameline_skips,
            static_cast<u64>(0.95 * static_cast<double>(f.fetches)));
}

TEST(Driver, EnergyBreakdownIsConsistent) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  const driver::RunResult r =
      runner.run(p, kXScale, driver::SchemeSpec::baseline());
  const auto& e = r.energy;
  EXPECT_GT(e.icache.total(), 0.0);
  EXPECT_GT(e.dcache.total(), 0.0);
  EXPECT_GT(e.core, 0.0);
  EXPECT_NEAR(e.total(), e.icache.total() + e.dcache.total() + e.itlb +
                             e.hint + e.core + e.memory,
              1e-9);
  // The I-cache share of total energy should be in the StrongARM
  // ballpark (its I-cache burns 27 % [13]).
  const double share = e.icacheTotal() / e.total();
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.40);
}

TEST(Driver, WayMemoizationRunsOriginalLayout) {
  const driver::SchemeSpec wm = driver::SchemeSpec::wayMemoization();
  EXPECT_EQ(wm.layout, "original");
  const driver::SchemeSpec wp = driver::SchemeSpec::wayPlacement(1024);
  EXPECT_EQ(wp.layout, "way_placement");
}

TEST(Driver, WpLayoutEnvRetargetsWayPlacementSpecs) {
  setenv("WP_LAYOUT", "call_distance", 1);
  EXPECT_EQ(driver::SchemeSpec::wayPlacement(1024).layout, "call_distance");
  unsetenv("WP_LAYOUT");
  EXPECT_EQ(driver::SchemeSpec::wayPlacement(1024).layout, "way_placement");
}

TEST(Driver, RunCarriesTheLayoutReport) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("crc");
  // Every registered strategy was laid out at prepare() time.
  for (const layout::LayoutStrategy* s : layout::strategies()) {
    EXPECT_EQ(p.layoutFor(s->name).report.strategy, s->name);
  }

  driver::SchemeSpec spec = driver::SchemeSpec::wayPlacement(2048);
  spec.layout = "way_placement";
  const driver::RunResult r = runner.run(p, kXScale, spec);
  EXPECT_EQ(r.layout_strategy, "way_placement");
  EXPECT_GT(r.layout_chains, 0u);
  EXPECT_GT(r.wp_area_coverage, 0.0);
  EXPECT_LE(r.wp_area_coverage, 1.0);

  // Non-way-placement schemes have no WP area to cover.
  const driver::RunResult base =
      runner.run(p, kXScale, driver::SchemeSpec::baseline());
  EXPECT_EQ(base.layout_strategy, "original");
  EXPECT_EQ(base.wp_area_coverage, 0.0);
}

// Regression for the former process-wide experiment seed: when two
// Runners with different seeds interleaved their prepare/run/expected
// calls, whichever ran last silently re-installed its own seed for
// everyone, so the other runner's expected() was computed from the
// wrong inputs. The seed now lives in each Workload instance, so the
// interleaved results must be byte-identical to running each runner
// alone.
TEST(Driver, InterleavedRunnersWithDifferentSeedsDoNotClobber) {
  const driver::SchemeSpec spec = driver::SchemeSpec::baseline();

  // Solo references: one runner at a time, nothing to interfere with.
  std::vector<u8> solo_out1, solo_exp1, solo_out2, solo_exp2;
  {
    driver::Runner solo(energy::EnergyParams{}, 1);
    const driver::PreparedWorkload p = solo.prepare("crc");
    solo_out1 = solo.run(p, kXScale, spec).output;
    solo_exp1 = p.workload->expected(workloads::InputSize::kLarge);
  }
  {
    driver::Runner solo(energy::EnergyParams{}, 2);
    const driver::PreparedWorkload p = solo.prepare("crc");
    solo_out2 = solo.run(p, kXScale, spec).output;
    solo_exp2 = p.workload->expected(workloads::InputSize::kLarge);
  }
  EXPECT_EQ(solo_out1, solo_exp1);
  EXPECT_EQ(solo_out2, solo_exp2);
  ASSERT_NE(solo_out1, solo_out2)
      << "different seeds must generate different inputs";

  // Fully interleaved: every call on `a` is followed by a call on `b`
  // before a's results are read back.
  driver::Runner a(energy::EnergyParams{}, 1);
  driver::Runner b(energy::EnergyParams{}, 2);
  const driver::PreparedWorkload pa = a.prepare("crc");
  const driver::PreparedWorkload pb = b.prepare("crc");
  const std::vector<u8> out_a = a.run(pa, kXScale, spec).output;
  const std::vector<u8> out_b = b.run(pb, kXScale, spec).output;
  const auto exp_a = pa.workload->expected(workloads::InputSize::kLarge);
  const auto exp_b = pb.workload->expected(workloads::InputSize::kLarge);

  EXPECT_EQ(out_a, solo_out1);
  EXPECT_EQ(out_b, solo_out2);
  EXPECT_EQ(exp_a, solo_exp1);
  EXPECT_EQ(exp_b, solo_exp2);
}

TEST(Driver, MachineMatchesTable1) {
  driver::Runner runner;
  const sim::MachineConfig m =
      runner.machineFor(kXScale, driver::SchemeSpec::baseline());
  EXPECT_EQ(m.fetch.tlb_entries, 32u);            // 32-entry I-TLB
  EXPECT_EQ(m.fetch.mem_latency_cycles, 50u);     // 50-cycle memory
  EXPECT_EQ(m.dcache.geometry.size_bytes, 32u * 1024u);
  EXPECT_EQ(m.dcache.geometry.ways, 32u);
  EXPECT_EQ(m.dcache.geometry.line_bytes, 32u);
}

}  // namespace
}  // namespace wp
