// ISA tests: encode/decode round trips for every opcode and operand
// pattern, field-range validation, classification predicates and the
// disassembler.
#include <gtest/gtest.h>

#include "isa/isa.hpp"
#include "support/rng.hpp"

namespace wp::isa {
namespace {

std::vector<Opcode> allOpcodes() {
  std::vector<Opcode> ops;
  for (u32 i = 0; i < kOpcodeCount; ++i) ops.push_back(static_cast<Opcode>(i));
  return ops;
}

class RoundTrip : public ::testing::TestWithParam<Opcode> {};

TEST_P(RoundTrip, RandomOperandsSurviveEncodeDecode) {
  const Opcode op = GetParam();
  Rng rng(static_cast<u64>(op) * 7919 + 3);
  for (int trial = 0; trial < 50; ++trial) {
    Instruction inst;
    inst.op = op;
    switch (formatOf(op)) {
      case Format::kRType:
        inst.rd = static_cast<u8>(rng.below(16));
        inst.rn = static_cast<u8>(rng.below(16));
        inst.rm = static_cast<u8>(rng.below(16));
        break;
      case Format::kIType:
        inst.rd = static_cast<u8>(rng.below(16));
        inst.rn = static_cast<u8>(rng.below(16));
        inst.imm = static_cast<i32>(rng.range(-32768, 32767));
        break;
      case Format::kBType:
        inst.imm = static_cast<i32>(rng.range(-(1 << 23), (1 << 23) - 1));
        break;
      case Format::kJType:
        inst.rn = static_cast<u8>(rng.below(16));
        break;
      case Format::kNone:
        break;
    }
    const Instruction back = decode(encode(inst));
    EXPECT_EQ(back, inst) << mnemonic(op) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, RoundTrip,
                         ::testing::ValuesIn(allOpcodes()),
                         [](const ::testing::TestParamInfo<Opcode>& info) {
                           return mnemonic(info.param);
                         });

TEST(IsaEncode, RejectsOutOfRangeFields) {
  Instruction inst;
  inst.op = Opcode::kAdd;
  inst.rd = 16;
  EXPECT_THROW(encode(inst), SimError);

  inst = Instruction{Opcode::kAddi, 0, 0, 0, 70000};
  EXPECT_THROW(encode(inst), SimError);

  inst = Instruction{Opcode::kB, 0, 0, 0, 1 << 23};
  EXPECT_THROW(encode(inst), SimError);
}

TEST(IsaEncode, ITypeAcceptsUnsigned16) {
  // Logical immediates are written as 0..65535 by the builder.
  const Instruction inst{Opcode::kAndi, 1, 2, 0, 0xff00};
  const Instruction back = decode(encode(inst));
  // Decoded as sign-extended; the executor re-masks for logical ops.
  EXPECT_EQ(back.imm, signExtend(0xff00, 16));
}

TEST(IsaDecode, RejectsUnknownOpcode) {
  EXPECT_THROW(decode(0xff000000u), SimError);
}

TEST(IsaClassify, ControlTransfers) {
  EXPECT_TRUE(isControlTransfer(Opcode::kB));
  EXPECT_TRUE(isControlTransfer(Opcode::kBeq));
  EXPECT_TRUE(isControlTransfer(Opcode::kBl));
  EXPECT_TRUE(isControlTransfer(Opcode::kJr));
  EXPECT_FALSE(isControlTransfer(Opcode::kAdd));
  EXPECT_FALSE(isControlTransfer(Opcode::kLdr));
  EXPECT_FALSE(isControlTransfer(Opcode::kHalt));
}

TEST(IsaClassify, ConditionalBranches) {
  EXPECT_TRUE(isConditionalBranch(Opcode::kBeq));
  EXPECT_TRUE(isConditionalBranch(Opcode::kBgeu));
  EXPECT_FALSE(isConditionalBranch(Opcode::kB));
  EXPECT_FALSE(isConditionalBranch(Opcode::kBl));
  EXPECT_FALSE(isConditionalBranch(Opcode::kJr));
}

TEST(IsaClassify, LoadsAndStores) {
  for (const Opcode op :
       {Opcode::kLdr, Opcode::kLdrb, Opcode::kLdrx, Opcode::kLdrbx}) {
    EXPECT_TRUE(isLoad(op));
    EXPECT_FALSE(isStore(op));
  }
  for (const Opcode op :
       {Opcode::kStr, Opcode::kStrb, Opcode::kStrx, Opcode::kStrbx}) {
    EXPECT_TRUE(isStore(op));
    EXPECT_FALSE(isLoad(op));
  }
}

TEST(IsaClassify, Multiplies) {
  EXPECT_TRUE(isMultiply(Opcode::kMul));
  EXPECT_TRUE(isMultiply(Opcode::kMla));
  EXPECT_TRUE(isMultiply(Opcode::kMuli));
  EXPECT_FALSE(isMultiply(Opcode::kAdd));
}

TEST(IsaDisassemble, SpotChecks) {
  EXPECT_EQ(disassemble({Opcode::kAdd, 1, 2, 3, 0}), "add r1, r2, r3");
  EXPECT_EQ(disassemble({Opcode::kAddi, 1, 2, 0, -4}), "addi r1, r2, #-4");
  EXPECT_EQ(disassemble({Opcode::kLdr, 5, 13, 0, 8}), "ldr r5, [r13, #8]");
  EXPECT_EQ(disassemble({Opcode::kCmp, 0, 1, 2, 0}), "cmp r1, r2");
  EXPECT_EQ(disassemble({Opcode::kMov, 3, 0, 7, 0}), "mov r3, r7");
  EXPECT_EQ(disassemble({Opcode::kJr, 0, 14, 0, 0}), "jr r14");
  EXPECT_EQ(disassemble({Opcode::kHalt, 0, 0, 0, 0}), "halt");
  EXPECT_EQ(disassemble({Opcode::kB, 0, 0, 0, -2}), "b pc-4");
}

TEST(IsaFormat, EveryOpcodeHasFormatAndMnemonic) {
  for (const Opcode op : allOpcodes()) {
    EXPECT_NE(mnemonic(op), nullptr);
    EXPECT_NO_THROW(formatOf(op));
  }
}

}  // namespace
}  // namespace wp::isa
