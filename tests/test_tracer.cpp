// Tracer tests: ring-buffer depth, disassembly in the records, and the
// fault-path trace attachment.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"
#include "layout/strategy.hpp"
#include "sim/tracer.hpp"

namespace wp {
namespace {

using namespace asmkit;

mem::Image linkSimple(const std::function<void(FunctionBuilder&)>& body) {
  ModuleBuilder mb;
  mb.bss("buf", 64);
  auto& f = mb.func("main");
  body(f);
  return layout::layoutImage(mb.build(), "original");
}

TEST(Tracer, RecordsDisassemblyAndRegisters) {
  const mem::Image img = linkSimple([](FunctionBuilder& f) {
    f.movi(r0, 42);
    f.addi(r1, r0, 1);
    f.ret();
  });
  mem::Memory memory;
  img.loadInto(memory);
  sim::Core core(img, memory);
  sim::CoreState st = core.initialState();
  sim::Tracer tracer(16);
  while (!st.halted) {
    tracer.record(core, st, img);
    core.step(st);
  }
  const auto lines = tracer.lines();
  ASSERT_GE(lines.size(), 5u);  // _start: bl, main 3, halt
  bool found_movi = false;
  for (const auto& l : lines) {
    if (l.find("movi r0, #42") != std::string::npos) found_movi = true;
  }
  EXPECT_TRUE(found_movi);
  EXPECT_NE(lines.back().find("halt"), std::string::npos);
}

TEST(Tracer, RingBufferKeepsOnlyTail) {
  const mem::Image img = linkSimple([](FunctionBuilder& f) {
    const auto loop = f.label();
    f.movi(r0, 100);
    f.bind(loop);
    f.subi(r0, r0, 1);
    f.cmpiBr(r0, 0, Cond::kNe, loop);
    f.ret();
  });
  mem::Memory memory;
  img.loadInto(memory);
  sim::Core core(img, memory);
  sim::CoreState st = core.initialState();
  sim::Tracer tracer(8);
  while (!st.halted) {
    tracer.record(core, st, img);
    core.step(st);
  }
  EXPECT_EQ(tracer.size(), 8u);
}

TEST(Tracer, RunTracedCompletesCleanPrograms) {
  const mem::Image img = linkSimple([](FunctionBuilder& f) {
    f.movi(r0, 7);
    f.ret();
  });
  mem::Memory memory;
  img.loadInto(memory);
  EXPECT_EQ(sim::runTraced(img, memory), 4u);  // bl, movi, ret, halt
}

TEST(Tracer, FaultCarriesTraceTail) {
  const mem::Image img = linkSimple([](FunctionBuilder& f) {
    f.la(r0, "buf");
    f.addi(r0, r0, 2);
    f.ldr(r1, r0);  // unaligned
    f.ret();
  });
  mem::Memory memory;
  img.loadInto(memory);
  try {
    sim::runTraced(img, memory);
    FAIL() << "expected a SimError";
  } catch (const SimError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unaligned"), std::string::npos);
    EXPECT_NE(what.find("last instructions"), std::string::npos);
    EXPECT_NE(what.find("ldr"), std::string::npos);
  }
}

TEST(Tracer, BudgetFaultAlsoTraced) {
  const mem::Image img = linkSimple([](FunctionBuilder& f) {
    const auto loop = f.label();
    f.bind(loop);
    f.jmp(loop);
  });
  mem::Memory memory;
  img.loadInto(memory);
  EXPECT_THROW(sim::runTraced(img, memory, /*max=*/500), SimError);
}

}  // namespace
}  // namespace wp
