// Profiler tests: block execution counts match loop trip counts, and
// annotation round-trips into the module.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"
#include "layout/strategy.hpp"
#include "profile/profiler.hpp"

namespace wp {
namespace {

using namespace asmkit;

TEST(Profiler, LoopCountsAreExact) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto loop = f.label();
  const auto after = f.label();
  f.movi(r0, 0);                     // block A (entry)
  f.bind(loop);                      // block B (loop body)
  f.addi(r0, r0, 1);
  f.cmpiBr(r0, 37, Cond::kLt, loop);
  f.bind(after);                     // block C
  f.ret();
  ir::Module m = mb.build();

  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  const profile::ProfileResult res = profile::profileImage(img, memory);

  const ir::Function* main_fn = m.findFunction("main");
  ASSERT_EQ(main_fn->block_ids.size(), 3u);
  EXPECT_EQ(res.block_counts.at(main_fn->block_ids[0]), 1u);
  EXPECT_EQ(res.block_counts.at(main_fn->block_ids[1]), 37u);
  EXPECT_EQ(res.block_counts.at(main_fn->block_ids[2]), 1u);

  profile::annotate(m, res);
  EXPECT_EQ(m.blocks[main_fn->block_ids[1]].exec_count, 37u);
}

TEST(Profiler, UnreachedBlocksGetZero) {
  ModuleBuilder mb;
  auto& g = mb.func("never");
  g.ret();
  auto& f = mb.func("main");
  f.ret();
  ir::Module m = mb.build();
  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  profile::annotate(m, profile::profileImage(img, memory));
  const ir::Function* never = m.findFunction("never");
  EXPECT_EQ(m.blocks[never->block_ids[0]].exec_count, 0u);
  const ir::Function* main_fn = m.findFunction("main");
  EXPECT_EQ(m.blocks[main_fn->block_ids[0]].exec_count, 1u);
}

TEST(Profiler, InstructionCountMatches) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.movi(r0, 1);
  f.movi(r1, 2);
  f.add(r0, r0, r1);
  f.ret();
  const ir::Module m = mb.build();
  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  const profile::ProfileResult res = profile::profileImage(img, memory);
  // main (4) + _start (bl + halt = 2).
  EXPECT_EQ(res.instructions, 6u);
}

TEST(Profiler, BudgetGuardsAgainstRunaway) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto loop = f.label();
  f.bind(loop);
  f.jmp(loop);  // infinite
  const ir::Module m = mb.build();
  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  EXPECT_THROW(profile::profileImage(img, memory, /*max=*/1000), SimError);
}

}  // namespace
}  // namespace wp
