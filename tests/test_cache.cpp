// Cache model tests: geometry arithmetic, CAM lookups of all kinds,
// round-robin and way-placed fills, eviction notification, dirty lines,
// and the D-cache wrapper.
#include <gtest/gtest.h>

#include "cache/cam_cache.hpp"
#include "cache/data_cache.hpp"

namespace wp::cache {
namespace {

TEST(Geometry, XScaleConfig) {
  const CacheGeometry g{32 * 1024, 32, 32};
  EXPECT_EQ(g.sets(), 32u);
  EXPECT_EQ(g.offsetBits(), 5u);
  EXPECT_EQ(g.setBits(), 5u);
  EXPECT_EQ(g.wayBits(), 5u);
  EXPECT_EQ(g.tagBits(), 22u);
  EXPECT_EQ(g.wordsPerLine(), 8u);
}

TEST(Geometry, AddressSplit) {
  const CacheGeometry g{32 * 1024, 32, 32};
  const u32 addr = 0xdeadbeef & ~3u;
  EXPECT_EQ(g.lineAddrOf(addr), addr & ~31u);
  EXPECT_EQ(g.setOf(addr), (addr >> 5) & 31u);
  EXPECT_EQ(g.tagOf(addr), addr >> 10);
  EXPECT_EQ(g.slotOf(addr), (addr & 31u) / 4);
}

TEST(Geometry, WayPlacedWayUsesLowTagBits) {
  const CacheGeometry g{32 * 1024, 32, 32};
  // Paper §4.2: a 32-way cache uses the lower 5 bits of the tag.
  EXPECT_EQ(g.wayPlacedWayOf(0), 0u);
  EXPECT_EQ(g.wayPlacedWayOf(1 << 10), 1u);   // tag bit 0
  EXPECT_EQ(g.wayPlacedWayOf(31 << 10), 31u);
  EXPECT_EQ(g.wayPlacedWayOf(32 << 10), 0u);  // bit 5 of tag is not used
}

TEST(Geometry, RejectsNonPow2) {
  CacheGeometry g{3000, 32, 4};
  EXPECT_THROW(g.sets(), SimError);
}

TEST(CamCache, MissThenHit) {
  CamCache c(CacheGeometry{1024, 32, 4});
  EXPECT_FALSE(c.lookup(0x100, LookupKind::kFull).hit);
  c.fill(0x100, false);
  const LookupResult r = c.lookup(0x100, LookupKind::kFull);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(CamCache, FullLookupCountsAllWays) {
  CamCache c(CacheGeometry{1024, 32, 4});
  c.lookup(0x0, LookupKind::kFull);
  EXPECT_EQ(c.stats().tag_compares, 4u);
  EXPECT_EQ(c.stats().matchline_precharges, 4u);
}

TEST(CamCache, SingleWayLookupCountsOneWay) {
  CamCache c(CacheGeometry{1024, 32, 4});
  c.lookup(0x0, LookupKind::kSingleWay);
  EXPECT_EQ(c.stats().tag_compares, 1u);
  EXPECT_EQ(c.stats().matchline_precharges, 1u);
}

TEST(CamCache, SingleWayFindsWayPlacedLine) {
  const CacheGeometry g{1024, 32, 4};
  CamCache c(g);
  // Address whose tag low bits select way 3.
  const u32 addr = 3u << (g.offsetBits() + g.setBits());
  c.fill(addr, /*way_placed=*/true);
  const LookupResult r = c.lookup(addr, LookupKind::kSingleWay);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(r.way, 3u);
}

TEST(CamCache, SingleWayMissesLineInOtherWay) {
  const CacheGeometry g{1024, 32, 4};
  CamCache c(g);
  // Tag selects way 3, but fill round-robin puts it in way 0.
  const u32 addr = 3u << (g.offsetBits() + g.setBits());
  c.fill(addr, /*way_placed=*/false);
  EXPECT_FALSE(c.lookup(addr, LookupKind::kSingleWay).hit);
  EXPECT_TRUE(c.lookup(addr, LookupKind::kFull).hit);
}

TEST(CamCache, NoTagLookupRequiresResidency) {
  CamCache c(CacheGeometry{1024, 32, 4});
  EXPECT_THROW(c.lookup(0x40, LookupKind::kNoTag), SimError);
  c.fill(0x40, false);
  const LookupResult r = c.lookup(0x40, LookupKind::kNoTag);
  EXPECT_TRUE(r.hit);
  EXPECT_EQ(c.stats().tag_compares, 0u);
}

TEST(CamCache, RoundRobinCyclesVictims) {
  const CacheGeometry g{512, 32, 4};  // 4 sets
  CamCache c(g);
  const u32 set_stride = g.line_bytes * g.sets();
  // Fill all 4 ways of set 0, then two more: evictions in fill order.
  for (u32 i = 0; i < 4; ++i) c.fill(i * set_stride, false);
  EXPECT_EQ(c.fill(4 * set_stride, false), 0u);
  EXPECT_EQ(c.fill(5 * set_stride, false), 1u);
  EXPECT_FALSE(c.probe(0).has_value());
  EXPECT_FALSE(c.probe(set_stride).has_value());
  EXPECT_TRUE(c.probe(2 * set_stride).has_value());
}

TEST(CamCache, WayPlacedFillEvictsTagNamedWay) {
  const CacheGeometry g{512, 32, 4};
  CamCache c(g);
  const u32 set_stride = g.line_bytes * g.sets();
  for (u32 i = 0; i < 4; ++i) c.fill(i * set_stride, false);  // ways 0..3
  // Way-placed fill of a line whose tag low bits say way 2.
  const u32 addr = 6 * set_stride;  // tag 6 -> way 2
  EXPECT_EQ(c.fill(addr, true), 2u);
  EXPECT_FALSE(c.probe(2 * set_stride).has_value());
}

TEST(CamCache, DoubleFillRejected) {
  CamCache c(CacheGeometry{1024, 32, 4});
  c.fill(0x200, false);
  EXPECT_THROW(c.fill(0x200, false), SimError);
}

struct RecordingListener final : CamCache::EvictionListener {
  std::vector<LineId> evicted;
  void onEvict(LineId line) override { evicted.push_back(line); }
};

TEST(CamCache, EvictionListenerFires) {
  const CacheGeometry g{256, 32, 2};  // 4 sets, 2 ways
  CamCache c(g);
  RecordingListener listener;
  c.setEvictionListener(&listener);
  const u32 set_stride = g.line_bytes * g.sets();
  c.fill(0, false);
  c.fill(set_stride, false);
  EXPECT_TRUE(listener.evicted.empty());  // fills of invalid lines
  c.fill(2 * set_stride, false);          // evicts way 0
  ASSERT_EQ(listener.evicted.size(), 1u);
  EXPECT_EQ(listener.evicted[0], (LineId{0, 0}));
}

TEST(CamCache, ResidentLineAddrInvertsMapping) {
  const CacheGeometry g{1024, 32, 4};
  CamCache c(g);
  const u32 addr = 0x1234 & ~31u;
  const u32 way = c.fill(addr, false);
  EXPECT_EQ(c.residentLineAddr({g.setOf(addr), way}), g.lineAddrOf(addr));
}

TEST(DataCache, StoreMarksDirtyAndWritesBack) {
  const CacheGeometry g{256, 32, 2};  // 4 sets, 2 ways
  DataCache d({g, 50});
  const u32 set_stride = g.line_bytes * g.sets();
  d.store(0);                  // miss, allocate, dirty
  d.load(set_stride);          // fill way 1
  d.load(2 * set_stride);      // evicts dirty way 0 -> writeback
  EXPECT_EQ(d.stats().writebacks, 1u);
  EXPECT_EQ(d.stats().data_word_writes, 1u);
}

TEST(DataCache, LoadTiming) {
  DataCache d({CacheGeometry{1024, 32, 4}, 50});
  const u32 miss_cycles = d.load(0x80);
  EXPECT_EQ(miss_cycles, 1u + 50u + 8u);
  EXPECT_EQ(d.load(0x80), 1u);
}

TEST(CamCache, ResetClearsEverything) {
  CamCache c(CacheGeometry{1024, 32, 4});
  c.fill(0x300, false);
  c.lookup(0x300, LookupKind::kFull);
  c.reset();
  EXPECT_FALSE(c.probe(0x300).has_value());
  EXPECT_EQ(c.stats().accesses, 0u);
}

}  // namespace
}  // namespace wp::cache
