// Layout and linker tests: chain formation per paper §3, heaviest-first
// ordering, fall-through repair, relocation resolution — plus a
// property test that randomly generated programs compute identical
// results under every layout policy.
#include <gtest/gtest.h>

#include <cstdlib>
#include <limits>

#include "asmkit/builder.hpp"
#include "layout/layout.hpp"
#include "layout/strategy.hpp"
#include "profile/profiler.hpp"
#include "sim/core.hpp"
#include "sim/processor.hpp"
#include "support/rng.hpp"

namespace wp {
namespace {

using namespace asmkit;

ir::Module twoFunctionModule() {
  ModuleBuilder mb;
  mb.bss("out", 8);
  auto& hot = mb.func("hot");
  const auto loop = hot.label();
  hot.movi(r0, 0);
  hot.movi(r1, 0);
  hot.bind(loop);
  hot.add(r0, r0, r1);
  hot.addi(r1, r1, 1);
  hot.cmpiBr(r1, 1000, Cond::kLt, loop);
  hot.la(r2, "out");
  hot.str(r0, r2);
  hot.ret();

  auto& cold = mb.func("cold");
  cold.movi(r0, 7);
  cold.la(r2, "out", 4);
  cold.str(r0, r2);
  cold.ret();

  auto& f = mb.func("main");
  f.prologue();
  f.call("hot");
  f.call("cold");
  f.epilogue();
  return mb.build();
}

TEST(Chains, RespectFallthroughAndCalls) {
  const ir::Module m = twoFunctionModule();
  const auto chains = layout::formChains(m);
  // Every fall-through pair must be in the same chain, adjacent.
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i < chain.blocks.size(); ++i) {
      const ir::BasicBlock& b = m.blocks[chain.blocks[i]];
      if (b.fallthrough.has_value()) {
        ASSERT_LT(i + 1, chain.blocks.size())
            << "fall-through block ends a chain";
        EXPECT_EQ(chain.blocks[i + 1], *b.fallthrough);
      }
    }
  }
  // Chains partition the blocks.
  std::size_t total = 0;
  for (const auto& c : chains) total += c.blocks.size();
  EXPECT_EQ(total, m.blocks.size());
}

TEST(Chains, WeightIsDynamicInstructionCount) {
  ir::Module m = twoFunctionModule();
  for (ir::BasicBlock& b : m.blocks) b.exec_count = 2;
  const auto chains = layout::formChains(m);
  for (const auto& c : chains) {
    u64 expect = 0;
    for (const u32 id : c.blocks) expect += 2 * m.blocks[id].insts.size();
    EXPECT_EQ(c.weight, expect);
  }
}

TEST(Chains, WeightOverflowIsALoudError) {
  // A corrupt profile can push Σ(exec × insts) past 64 bits; silently
  // wrapping would reorder chains by garbage weights, so formChains must
  // refuse the profile instead.
  ir::Module m = twoFunctionModule();
  for (ir::BasicBlock& b : m.blocks) {
    b.exec_count = std::numeric_limits<u64>::max();
  }
  EXPECT_THROW(layout::formChains(m), SimError);
}

TEST(Order, HeaviestChainFirst) {
  ir::Module m = twoFunctionModule();
  // Profile: make "hot" hot.
  const mem::Image orig = layout::layoutImage(m, "original");
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  const auto order = layout::orderBlocks(m, layout::resolveStrategy("way_placement"));
  // The first placed block must belong to the hot loop's chain.
  const ir::Function* hot = m.findFunction("hot");
  EXPECT_EQ(order[0], hot->block_ids[0]);

  const mem::Image img = layout::link(m, order);
  EXPECT_EQ(img.function_addr.at("hot"), mem::kCodeBase);
}

TEST(Order, OriginalKeepsAuthoredOrder) {
  const ir::Module m = twoFunctionModule();
  const auto order = layout::orderBlocks(m, layout::resolveStrategy("original"));
  u32 expect = 0;
  for (const ir::Function& fn : m.functions) {
    for (const u32 id : fn.block_ids) EXPECT_EQ(order[expect++], id);
  }
}

TEST(Order, RandomIsAPermutationAndSeedStable) {
  const ir::Module m = twoFunctionModule();
  const auto a = layout::orderBlocks(m, layout::resolveStrategy("random"), 3);
  const auto b = layout::orderBlocks(m, layout::resolveStrategy("random"), 3);
  const auto c = layout::orderBlocks(m, layout::resolveStrategy("random"), 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::vector<u32> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (u32 i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Linker, NoRepairsWhenFallthroughsIntact) {
  const ir::Module m = twoFunctionModule();
  const mem::Image img = layout::layoutImage(m, "original");
  EXPECT_EQ(img.code.size(), m.staticInstructions() * 4);
}

TEST(Linker, RepairsInsertedForBrokenFallthroughs) {
  const ir::Module m = twoFunctionModule();
  // A reversed order breaks most fall-throughs.
  auto order = layout::orderBlocks(m, layout::resolveStrategy("original"));
  std::reverse(order.begin(), order.end());
  const mem::Image img = layout::link(m, order);
  EXPECT_GT(img.code.size(), m.staticInstructions() * 4);
}

TEST(Linker, BlockAddressesCoverCode) {
  const ir::Module m = twoFunctionModule();
  const mem::Image img = layout::layoutImage(m, "original");
  EXPECT_EQ(img.block_addr.size(), m.blocks.size());
  for (const auto& [id, addr] : img.block_addr) {
    EXPECT_LE(mem::kCodeBase, addr);
    EXPECT_LT(addr, img.codeEnd());
    EXPECT_LE(addr, img.block_end.at(id));
  }
}

TEST(Linker, RejectsIncompleteOrder) {
  const ir::Module m = twoFunctionModule();
  std::vector<u32> order = {0};
  EXPECT_THROW(layout::link(m, order), SimError);
}

// ---------------------------------------------------------------------------
// Property test: random CFG programs behave identically under any layout.
// ---------------------------------------------------------------------------

// Generates a random reducible program: a chain of "segments", each a
// small diamond/loop/call/memory pattern over a running checksum in
// r4..r6, plus a scratch buffer for load/store segments.
ir::Module randomProgram(u64 seed) {
  Rng rng(seed);
  ModuleBuilder mb;
  mb.bss("out", 4);
  mb.bss("scratch", 256);

  const int nfuncs = 1 + static_cast<int>(rng.below(3));
  for (int fi = 0; fi < nfuncs; ++fi) {
    auto& g = mb.func("leaf" + std::to_string(fi));
    // r0 = mix(r0)
    g.muli(r0, r0, static_cast<i32>(3 + rng.below(97)));
    g.eori(r0, r0, static_cast<u32>(rng.below(0x10000)));
    const auto skip = g.label();
    g.cmpiBr(r0, 0, Cond::kGe, skip);
    g.mvn(r0, r0);
    g.bind(skip);
    g.ret();
  }
  // A two-level callee exercising nested calls under layout changes.
  {
    auto& g = mb.func("mid");
    g.prologue();
    g.call("leaf0");
    g.addi(r0, r0, 17);
    g.call("leaf0");
    g.epilogue();
  }

  auto& f = mb.func("main");
  f.prologue({r4, r5, r6});
  f.movi32(r4, static_cast<u32>(seed & 0xffff) | 1u);
  f.movi(r5, 0);

  const int segments = 3 + static_cast<int>(rng.below(6));
  for (int s = 0; s < segments; ++s) {
    switch (rng.below(5)) {
      case 0: {  // diamond
        const auto a = f.label();
        const auto join = f.label();
        f.andi(r6, r4, 1);
        f.cmpiBr(r6, 0, Cond::kEq, a);
        f.muli(r4, r4, 17);
        f.jmp(join);
        f.bind(a);
        f.addi(r4, r4, 1234);
        f.bind(join);
        break;
      }
      case 1: {  // counted loop
        const auto loop = f.label();
        f.movi(r6, static_cast<i32>(1 + rng.below(20)));
        f.bind(loop);
        f.add(r4, r4, r6);
        f.lsli(r12, r4, 1);
        f.eor(r4, r4, r12);
        f.subi(r6, r6, 1);
        f.cmpiBr(r6, 0, Cond::kGt, loop);
        break;
      }
      case 2: {  // call
        f.mov(r0, r4);
        f.call("leaf" + std::to_string(rng.below(nfuncs)));
        f.add(r4, r4, r0);
        break;
      }
      case 3: {  // nested call
        f.mov(r0, r4);
        f.call("mid");
        f.eor(r4, r4, r0);
        break;
      }
      default: {  // memory round-trip through the scratch buffer
        const i32 slot = static_cast<i32>(rng.below(60)) * 4;
        f.la(r12, "scratch", slot);
        f.str(r4, r12);
        f.lsli(r6, r4, 3);
        f.ldr(r12, r12);
        f.add(r4, r12, r6);
        f.la(r12, "scratch", slot);
        f.ldrb(r6, r12, static_cast<i32>(rng.below(4)));
        f.add(r4, r4, r6);
        break;
      }
    }
    f.add(r5, r5, r4);
  }
  f.la(r0, "out");
  f.str(r5, r0);
  f.epilogue({r4, r5, r6});
  return mb.build();
}

u32 runAndReadOut(const ir::Module& m, const std::string& spec, u64 seed) {
  const mem::Image img = layout::layoutImage(m, spec, seed);
  mem::Memory memory;
  img.loadInto(memory);
  sim::Core core(img, memory);
  sim::CoreState st = core.initialState();
  u64 steps = 0;
  while (!st.halted) {
    EXPECT_LT(steps++, 2'000'000u);
    core.step(st);
  }
  return memory.load32(mem::kDataBase);
}

class LayoutEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(LayoutEquivalence, AllPoliciesComputeSameResult) {
  ir::Module m = randomProgram(GetParam());
  const u32 original = runAndReadOut(m, "original", 0);

  // Annotate with a profile so the WP order is meaningful.
  const mem::Image orig = layout::layoutImage(m, "original");
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  EXPECT_EQ(runAndReadOut(m, "way_placement", 0), original);
  for (u64 shuffle = 1; shuffle <= 3; ++shuffle) {
    EXPECT_EQ(runAndReadOut(m, "random", shuffle), original)
        << "shuffle seed " << shuffle;
  }

  // Parameter overrides reorder and split chains but must preserve
  // semantics just like the registered defaults.
  EXPECT_EQ(runAndReadOut(
                m, "exttsp{passes=call_distance+exttsp,chain_hot_threshold=4}",
                0),
            original);

  // Every registered strategy — including the literature orderings and
  // the autotuned configuration — must preserve semantics too.
  for (const layout::LayoutStrategy* s : layout::strategies()) {
    const layout::LayoutResult laid = layout::runPipeline(m, *s);
    mem::Memory memory;
    laid.image.loadInto(memory);
    sim::Core core(laid.image, memory);
    sim::CoreState st = core.initialState();
    u64 steps = 0;
    while (!st.halted) {
      ASSERT_LT(steps++, 2'000'000u) << s->name;
      core.step(st);
    }
    EXPECT_EQ(memory.load32(mem::kDataBase), original) << s->name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, LayoutEquivalence,
                         ::testing::Range<u64>(1, 41));

// The fetch scheme must never affect semantics either: run random
// programs on the full processor under every scheme and compare the
// architectural result and instruction counts.
class SchemeEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(SchemeEquivalence, AllSchemesComputeSameResult) {
  ir::Module m = randomProgram(GetParam() * 1000003ULL);
  const mem::Image img = layout::layoutImage(m, "original");

  std::optional<u32> expected;
  std::optional<u64> expected_insts;
  for (const cache::Scheme scheme :
       {cache::Scheme::kBaseline, cache::Scheme::kWayPlacement,
        cache::Scheme::kWayMemoization, cache::Scheme::kWayPrediction}) {
    sim::MachineConfig cfg = sim::baselineMachine(
        scheme, scheme == cache::Scheme::kWayPlacement ? 1024 : 0);
    cfg.fetch.icache = cache::CacheGeometry{2048, 32, 8};  // tiny: misses!
    mem::Memory memory;
    img.loadInto(memory);
    sim::Processor proc(cfg, img, memory);
    const sim::RunStats stats = proc.run();
    const u32 result = memory.load32(mem::kDataBase);
    if (!expected.has_value()) {
      expected = result;
      expected_insts = stats.instructions;
    } else {
      EXPECT_EQ(result, *expected) << cache::schemeName(scheme);
      EXPECT_EQ(stats.instructions, *expected_insts)
          << cache::schemeName(scheme);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SchemeEquivalence,
                         ::testing::Range<u64>(1, 13));

// ---------------------------------------------------------------------------
// Strategy registry: names, aliases, env knob, and the pipeline report.
// ---------------------------------------------------------------------------

TEST(Strategy, RegistryListsTheExpectedOrderings) {
  const std::vector<std::string> names = layout::strategyNames();
  const std::vector<std::string> expected = {
      "original", "way_placement", "random",
      "call_distance", "exttsp", "autotuned"};
  EXPECT_EQ(names, expected);
  EXPECT_EQ(layout::defaultStrategyName(), "way_placement");
  for (const std::string& n : names) {
    EXPECT_EQ(layout::parseStrategy(n).name, n);
  }
}

TEST(Strategy, LegacyPolicySpellingsRoundTripThroughParseStrategy) {
  // The legacy Policy spellings (including the hyphenated
  // "way-placement" that the removed policyName printed and that
  // recorded WP_JSON references carry) must resolve to registered
  // strategies.
  EXPECT_EQ(layout::parseStrategy("original").name, "original");
  EXPECT_EQ(layout::parseStrategy("way-placement").name, "way_placement");
  EXPECT_EQ(layout::parseStrategy("random").name, "random");
  // The alias resolves to the same canonical spec as the primary name,
  // so memo keys and store digests agree no matter the spelling used.
  EXPECT_EQ(layout::resolveStrategy("way-placement").canonical(),
            "way_placement");
}

TEST(Strategy, ParseRejectsUnknownNamesListingTheValidOnes) {
  EXPECT_EQ(layout::findStrategy("ext-tsp"), nullptr);
  try {
    (void)layout::parseStrategy("ext-tsp");
    FAIL() << "parseStrategy accepted an unknown name";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("way_placement"), std::string::npos)
        << e.what();
  }
}

TEST(StrategyDeathTest, UnknownWpLayoutExitsWithStatusOne) {
  // Same strictness as WP_SEED / WP_JOBS: a typo must kill the
  // experiment at startup, not silently run the default ordering.
  EXPECT_EXIT(
      {
        setenv("WP_LAYOUT", "heaviest_first", 1);
        (void)layout::strategyFromEnv();
      },
      ::testing::ExitedWithCode(1), "WP_LAYOUT");
}

TEST(Strategy, EnvKnobSelectsAndCanonicalizes) {
  setenv("WP_LAYOUT", "exttsp", 1);
  EXPECT_EQ(layout::strategyFromEnv(), "exttsp");
  setenv("WP_LAYOUT", "way-placement", 1);  // alias canonicalizes
  EXPECT_EQ(layout::strategyFromEnv(), "way_placement");
  unsetenv("WP_LAYOUT");
  EXPECT_EQ(layout::strategyFromEnv(), layout::defaultStrategyName());
}

// The refactor from the layout.cpp monolith into the pass pipeline must
// not move a single byte: way_placement's image is the legacy
// heaviest-first algorithm's image, reproduced here independently.
TEST(Strategy, WayPlacementImageMatchesLegacyAlgorithmBitForBit) {
  for (const u64 seed : {3u, 17u, 42u}) {
    ir::Module m = randomProgram(seed);
    const mem::Image orig =
        layout::layoutImage(m, "original");
    mem::Memory memory;
    orig.loadInto(memory);
    profile::annotate(m, profile::profileImage(orig, memory));

    // The pre-refactor algorithm, verbatim: stable-sort the chains by
    // descending weight and concatenate.
    auto chains = layout::formChains(m);
    std::stable_sort(chains.begin(), chains.end(),
                     [](const auto& a, const auto& b) {
                       return a.weight > b.weight;
                     });
    std::vector<u32> legacy_order;
    for (const auto& c : chains) {
      legacy_order.insert(legacy_order.end(), c.blocks.begin(),
                          c.blocks.end());
    }
    const mem::Image legacy = layout::link(m, legacy_order);

    const layout::LayoutResult laid = layout::runPipeline(m, "way_placement");
    EXPECT_EQ(laid.image.code, legacy.code) << "seed " << seed;
    EXPECT_EQ(laid.image.block_addr, legacy.block_addr) << "seed " << seed;
    EXPECT_EQ(laid.image.entry, legacy.entry) << "seed " << seed;
  }
}

TEST(Strategy, ReportExplainsThePlacement) {
  ir::Module m = randomProgram(11);
  const mem::Image orig = layout::layoutImage(m, "original");
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  for (const layout::LayoutStrategy* s : layout::strategies()) {
    const layout::LayoutResult laid = layout::runPipeline(m, *s, /*seed=*/5);
    const layout::LayoutReport& r = laid.report;
    EXPECT_EQ(r.strategy, s->name);
    EXPECT_EQ(r.chains, layout::formChains(m).size()) << s->name;
    EXPECT_EQ(r.spans.size(), m.blocks.size()) << s->name;
    // Image size accounts for exactly the counted repairs.
    EXPECT_EQ(laid.image.code.size(),
              (m.staticInstructions() + r.repairs) * 4)
        << s->name;
    // Coverage is a CDF over the placed profile: monotone in the area,
    // complete once the area swallows the whole image.
    EXPECT_GT(r.dynamicInstructions(), 0u) << s->name;
    const u32 whole = static_cast<u32>(laid.image.code.size()) + 1024;
    EXPECT_LE(r.coverage(1024), r.coverage(4096)) << s->name;
    EXPECT_DOUBLE_EQ(r.coverage(whole), 1.0) << s->name;
  }

  // Keeping every fall-through intact means zero repairs for original.
  EXPECT_EQ(layout::runPipeline(m, "original").report.repairs, 0u);
}

// ---------------------------------------------------------------------------
// The literature orderings: structural properties.
// ---------------------------------------------------------------------------

void expectChainsIntact(const ir::Module& m, const std::vector<u32>& order,
                        const std::string& label) {
  // A permutation of all blocks...
  std::vector<u32> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (u32 i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(sorted[i], i) << label;
  }
  // ...that keeps every must-respect chain contiguous and in chain
  // order (both new strategies move whole chains, never blocks).
  std::vector<u32> pos(order.size());
  for (u32 i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const auto& c : layout::formChains(m)) {
    for (std::size_t i = 1; i < c.blocks.size(); ++i) {
      EXPECT_EQ(pos[c.blocks[i]], pos[c.blocks[i - 1]] + 1)
          << label << ": chain split at block " << c.blocks[i];
    }
  }
}

TEST(Strategy, NewOrderingsKeepChainsIntact) {
  for (const u64 seed : {2u, 9u, 23u}) {
    ir::Module m = randomProgram(seed);
    const mem::Image orig =
        layout::layoutImage(m, "original");
    mem::Memory memory;
    orig.loadInto(memory);
    profile::annotate(m, profile::profileImage(orig, memory));

    for (const char* name : {"call_distance", "exttsp", "autotuned"}) {
      const std::vector<u32> order =
          layout::orderBlocks(m, layout::resolveStrategy(name), /*seed=*/0);
      expectChainsIntact(m, order, name);
    }
  }
}

TEST(Strategy, CallDistanceWithZeroReachIsPlainWayPlacement) {
  // With no byte budget nothing merges, and the heaviest-first group
  // concatenation degenerates to the paper's ordering exactly.
  ir::Module m = randomProgram(5);
  const mem::Image orig = layout::layoutImage(m, "original");
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  EXPECT_EQ(
      layout::orderBlocks(
          m, layout::resolveStrategy("call_distance{call_reach_bytes=0}")),
      layout::orderBlocks(m, layout::resolveStrategy("way_placement")));
}

// ---------------------------------------------------------------------------
// Strategy specs: parameter overrides, canonicalization, env parsing.
// ---------------------------------------------------------------------------

TEST(StrategySpec, CanonicalElidesDefaultsAndRoundTrips) {
  // A bare name stays a bare name: every pre-parameterization cell key,
  // checkpoint record and store digest remains valid.
  for (const layout::LayoutStrategy* s : layout::strategies()) {
    EXPECT_EQ(layout::resolveStrategy(s->name).canonical(), s->name);
  }
  // Explicitly spelling a registered default is the same spec.
  EXPECT_EQ(
      layout::resolveStrategy("call_distance{call_reach_bytes=4096}")
          .canonical(),
      "call_distance");
  // Overridden keys print in fixed key order regardless of input order,
  // and the canonical string re-resolves to an equal spec.
  const layout::StrategySpec spec = layout::resolveStrategy(
      "exttsp{tsp_forward_weight=0.2,chain_hot_threshold=64,"
      "passes=call_distance+exttsp}");
  EXPECT_EQ(spec.canonical(),
            "exttsp{passes=call_distance+exttsp,chain_hot_threshold=64,"
            "tsp_forward_weight=0.2}");
  EXPECT_TRUE(layout::resolveStrategy(spec.canonical()) == spec);
}

TEST(StrategySpec, MalformedOverridesAreRejectedWithTheValidKeys) {
  const auto expectThrows = [](const std::string& spec,
                               const std::string& needle) {
    try {
      (void)layout::resolveStrategy(spec);
      FAIL() << "resolveStrategy accepted " << spec;
    } catch (const SimError& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << spec << " -> " << e.what();
    }
  };
  // Unknown key: the message lists the valid ones.
  expectThrows("way_placement{reach=1}", "call_reach_bytes");
  // Bad values, missing '=' and unterminated spec are all startup
  // errors, never silent defaults.
  expectThrows("way_placement{call_reach_bytes=banana}", "call_reach_bytes");
  expectThrows("exttsp{tsp_forward_weight=-1}", "tsp_forward_weight");
  expectThrows("way_placement{chain_hot_threshold}", "chain_hot_threshold");
  expectThrows("way_placement{passes=original", "way_placement{");
  // Unknown pass name in a pass list: lists the registered passes.
  expectThrows("way_placement{passes=original+hottest}", "call_distance");
}

TEST(StrategySpec, HotThresholdSplitsColdChainsBehindTheHotOnes) {
  ir::Module m = randomProgram(13);
  const mem::Image orig = layout::layoutImage(m, "original");
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  // An impossible threshold marks every chain cold: nothing reaches the
  // ordering passes and the cold tail is the formation order, i.e. the
  // authored order — the original image, bit for bit.
  const mem::Image all_cold = layout::layoutImage(
      m, "way_placement{chain_hot_threshold=18446744073709551615}");
  EXPECT_EQ(all_cold.code, orig.code);
  EXPECT_EQ(all_cold.block_addr, orig.block_addr);

  // A moderate threshold still yields a chain-respecting permutation,
  // with every hot chain placed ahead of every cold one.
  const layout::StrategySpec spec =
      layout::resolveStrategy("way_placement{chain_hot_threshold=8}");
  const std::vector<u32> order = layout::orderBlocks(m, spec);
  expectChainsIntact(m, order, "hot/cold split");
  std::vector<u32> pos(order.size());
  for (u32 i = 0; i < order.size(); ++i) pos[order[i]] = i;
  u32 max_hot = 0;
  u32 min_cold = static_cast<u32>(order.size());
  for (const auto& c : layout::formChains(m)) {
    for (const u32 b : c.blocks) {
      if (c.weight >= 8) {
        max_hot = std::max(max_hot, pos[b]);
      } else {
        min_cold = std::min(min_cold, pos[b]);
      }
    }
  }
  EXPECT_LT(max_hot, min_cold);
}

TEST(StrategyDeathTest, GarbageWpLayoutParamsExitsWithStatusOne) {
  EXPECT_EXIT(
      {
        setenv("WP_LAYOUT", "way_placement", 1);
        setenv("WP_LAYOUT_PARAMS", "call_reach_bytes=soon", 1);
        (void)layout::strategyFromEnv();
      },
      ::testing::ExitedWithCode(1), "WP_LAYOUT_PARAMS");
  EXPECT_EXIT(
      {
        setenv("WP_LAYOUT", "way_placement", 1);
        setenv("WP_LAYOUT_PARAMS", "frobnicate=1", 1);
        (void)layout::strategyFromEnv();
      },
      ::testing::ExitedWithCode(1), "WP_LAYOUT_PARAMS");
}

TEST(Strategy, EnvParamsOverrideTheSelectedStrategy) {
  setenv("WP_LAYOUT", "exttsp", 1);
  setenv("WP_LAYOUT_PARAMS", "tsp_forward_bytes=512", 1);
  EXPECT_EQ(layout::strategyFromEnv(), "exttsp{tsp_forward_bytes=512}");
  // Overriding back to the registered default canonicalizes away.
  setenv("WP_LAYOUT_PARAMS", "tsp_forward_bytes=1024", 1);
  EXPECT_EQ(layout::strategyFromEnv(), "exttsp");
  unsetenv("WP_LAYOUT_PARAMS");
  unsetenv("WP_LAYOUT");
}

// ---------------------------------------------------------------------------
// LayoutReport edge cases: the coverage CDF and dynamic-instruction
// accounting must stay well-defined on degenerate inputs.
// ---------------------------------------------------------------------------

TEST(LayoutReport, EmptyReportHasNoProfileAndZeroCoverage) {
  const layout::LayoutReport r;
  EXPECT_EQ(r.dynamicInstructions(), 0u);
  EXPECT_DOUBLE_EQ(r.coverage(0), 0.0);
  EXPECT_DOUBLE_EQ(r.coverage(4096), 0.0);
}

TEST(LayoutReport, ZeroExecProfileReportsZeroCoverageNotNan) {
  // An unannotated module lays out fine; its report just carries no
  // profile, and coverage must stay 0.0 (not 0/0) at every area.
  ir::Module m = twoFunctionModule();
  const layout::LayoutResult laid = layout::runPipeline(m, "original");
  EXPECT_EQ(laid.report.dynamicInstructions(), 0u);
  EXPECT_DOUBLE_EQ(laid.report.coverage(1024), 0.0);
  const u32 whole = static_cast<u32>(laid.image.code.size()) + 1024;
  EXPECT_DOUBLE_EQ(laid.report.coverage(whole), 0.0);
}

TEST(LayoutReport, BlockStraddlingTheAreaBoundaryCountsPerInstruction) {
  // One 16-instruction block at the segment base, executed once: a
  // 32-byte area covers exactly its first 8 instructions.
  layout::LayoutReport r;
  r.spans.push_back({/*addr=*/mem::kCodeBase, /*insts=*/16, /*exec=*/1});
  EXPECT_EQ(r.dynamicInstructions(), 16u);
  EXPECT_DOUBLE_EQ(r.coverage(0), 0.0);
  EXPECT_DOUBLE_EQ(r.coverage(32), 0.5);
  // A non-instruction-aligned boundary rounds down to whole covered
  // instructions.
  EXPECT_DOUBLE_EQ(r.coverage(34), 0.5);
  EXPECT_DOUBLE_EQ(r.coverage(36), 9.0 / 16.0);
  EXPECT_DOUBLE_EQ(r.coverage(64), 1.0);
  // A second, never-executed span beyond the boundary changes nothing.
  r.spans.push_back({/*addr=*/mem::kCodeBase + 64, /*insts=*/4, /*exec=*/0});
  EXPECT_DOUBLE_EQ(r.coverage(32), 0.5);
  EXPECT_DOUBLE_EQ(r.coverage(64), 1.0);
}

// ---------------------------------------------------------------------------
// Property test: ANY permutation of the blocks is architecturally
// equivalent to the original layout. The Emission stage's fall-through
// repair is what makes every ordering advisory-only, so this is the
// invariant that lets a strategy be wrong about performance but never
// about results. Cross-layout equality is asserted on dataflow_hash and
// the program output — retired_pc_hash hashes *placed* PCs and is
// layout-dependent by design (see sim::RunStats), so for it we assert
// same-permutation reproducibility instead.
// ---------------------------------------------------------------------------

struct ProcRun {
  sim::RunStats stats;
  u32 out = 0;
};

ProcRun runOnProcessor(const mem::Image& img) {
  sim::MachineConfig cfg =
      sim::baselineMachine(cache::Scheme::kBaseline, 0);
  mem::Memory memory;
  img.loadInto(memory);
  sim::Processor proc(cfg, img, memory);
  ProcRun r;
  r.stats = proc.run();
  r.out = memory.load32(mem::kDataBase);
  return r;
}

class PermutationEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(PermutationEquivalence, AnyBlockPermutationPreservesDataflow) {
  ir::Module m = randomProgram(GetParam() * 7919ULL + 1);
  const ProcRun original = runOnProcessor(
      layout::layoutImage(m, "original"));

  for (u64 shuffle = 1; shuffle <= 4; ++shuffle) {
    const auto order = layout::orderBlocks(m, layout::resolveStrategy("random"),
                                           shuffle);
    const mem::Image img = layout::link(m, order);
    const ProcRun permuted = runOnProcessor(img);
    EXPECT_EQ(permuted.out, original.out) << "shuffle " << shuffle;
    EXPECT_EQ(permuted.stats.dataflow_hash, original.stats.dataflow_hash)
        << "shuffle " << shuffle;
    // The layout-dependent retired-PC stream is still deterministic for
    // a fixed permutation.
    EXPECT_EQ(runOnProcessor(img).stats.retired_pc_hash,
              permuted.stats.retired_pc_hash)
        << "shuffle " << shuffle;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PermutationEquivalence,
                         ::testing::Range<u64>(1, 11));

}  // namespace
}  // namespace wp
