// Layout and linker tests: chain formation per paper §3, heaviest-first
// ordering, fall-through repair, relocation resolution — plus a
// property test that randomly generated programs compute identical
// results under every layout policy.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"
#include "layout/layout.hpp"
#include "profile/profiler.hpp"
#include "sim/core.hpp"
#include "sim/processor.hpp"
#include "support/rng.hpp"

namespace wp {
namespace {

using namespace asmkit;

ir::Module twoFunctionModule() {
  ModuleBuilder mb;
  mb.bss("out", 8);
  auto& hot = mb.func("hot");
  const auto loop = hot.label();
  hot.movi(r0, 0);
  hot.movi(r1, 0);
  hot.bind(loop);
  hot.add(r0, r0, r1);
  hot.addi(r1, r1, 1);
  hot.cmpiBr(r1, 1000, Cond::kLt, loop);
  hot.la(r2, "out");
  hot.str(r0, r2);
  hot.ret();

  auto& cold = mb.func("cold");
  cold.movi(r0, 7);
  cold.la(r2, "out", 4);
  cold.str(r0, r2);
  cold.ret();

  auto& f = mb.func("main");
  f.prologue();
  f.call("hot");
  f.call("cold");
  f.epilogue();
  return mb.build();
}

TEST(Chains, RespectFallthroughAndCalls) {
  const ir::Module m = twoFunctionModule();
  const auto chains = layout::formChains(m);
  // Every fall-through pair must be in the same chain, adjacent.
  for (const auto& chain : chains) {
    for (std::size_t i = 0; i < chain.blocks.size(); ++i) {
      const ir::BasicBlock& b = m.blocks[chain.blocks[i]];
      if (b.fallthrough.has_value()) {
        ASSERT_LT(i + 1, chain.blocks.size())
            << "fall-through block ends a chain";
        EXPECT_EQ(chain.blocks[i + 1], *b.fallthrough);
      }
    }
  }
  // Chains partition the blocks.
  std::size_t total = 0;
  for (const auto& c : chains) total += c.blocks.size();
  EXPECT_EQ(total, m.blocks.size());
}

TEST(Chains, WeightIsDynamicInstructionCount) {
  ir::Module m = twoFunctionModule();
  for (ir::BasicBlock& b : m.blocks) b.exec_count = 2;
  const auto chains = layout::formChains(m);
  for (const auto& c : chains) {
    u64 expect = 0;
    for (const u32 id : c.blocks) expect += 2 * m.blocks[id].insts.size();
    EXPECT_EQ(c.weight, expect);
  }
}

TEST(Order, HeaviestChainFirst) {
  ir::Module m = twoFunctionModule();
  // Profile: make "hot" hot.
  const mem::Image orig = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  const auto order = layout::orderBlocks(m, layout::Policy::kWayPlacement);
  // The first placed block must belong to the hot loop's chain.
  const ir::Function* hot = m.findFunction("hot");
  EXPECT_EQ(order[0], hot->block_ids[0]);

  const mem::Image img = layout::link(m, order);
  EXPECT_EQ(img.function_addr.at("hot"), mem::kCodeBase);
}

TEST(Order, OriginalKeepsAuthoredOrder) {
  const ir::Module m = twoFunctionModule();
  const auto order = layout::orderBlocks(m, layout::Policy::kOriginal);
  u32 expect = 0;
  for (const ir::Function& fn : m.functions) {
    for (const u32 id : fn.block_ids) EXPECT_EQ(order[expect++], id);
  }
}

TEST(Order, RandomIsAPermutationAndSeedStable) {
  const ir::Module m = twoFunctionModule();
  const auto a = layout::orderBlocks(m, layout::Policy::kRandom, 3);
  const auto b = layout::orderBlocks(m, layout::Policy::kRandom, 3);
  const auto c = layout::orderBlocks(m, layout::Policy::kRandom, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::vector<u32> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (u32 i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Linker, NoRepairsWhenFallthroughsIntact) {
  const ir::Module m = twoFunctionModule();
  const mem::Image img = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  EXPECT_EQ(img.code.size(), m.staticInstructions() * 4);
}

TEST(Linker, RepairsInsertedForBrokenFallthroughs) {
  const ir::Module m = twoFunctionModule();
  // A reversed order breaks most fall-throughs.
  auto order = layout::orderBlocks(m, layout::Policy::kOriginal);
  std::reverse(order.begin(), order.end());
  const mem::Image img = layout::link(m, order);
  EXPECT_GT(img.code.size(), m.staticInstructions() * 4);
}

TEST(Linker, BlockAddressesCoverCode) {
  const ir::Module m = twoFunctionModule();
  const mem::Image img = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  EXPECT_EQ(img.block_addr.size(), m.blocks.size());
  for (const auto& [id, addr] : img.block_addr) {
    EXPECT_LE(mem::kCodeBase, addr);
    EXPECT_LT(addr, img.codeEnd());
    EXPECT_LE(addr, img.block_end.at(id));
  }
}

TEST(Linker, RejectsIncompleteOrder) {
  const ir::Module m = twoFunctionModule();
  std::vector<u32> order = {0};
  EXPECT_THROW(layout::link(m, order), SimError);
}

// ---------------------------------------------------------------------------
// Property test: random CFG programs behave identically under any layout.
// ---------------------------------------------------------------------------

// Generates a random reducible program: a chain of "segments", each a
// small diamond/loop/call/memory pattern over a running checksum in
// r4..r6, plus a scratch buffer for load/store segments.
ir::Module randomProgram(u64 seed) {
  Rng rng(seed);
  ModuleBuilder mb;
  mb.bss("out", 4);
  mb.bss("scratch", 256);

  const int nfuncs = 1 + static_cast<int>(rng.below(3));
  for (int fi = 0; fi < nfuncs; ++fi) {
    auto& g = mb.func("leaf" + std::to_string(fi));
    // r0 = mix(r0)
    g.muli(r0, r0, static_cast<i32>(3 + rng.below(97)));
    g.eori(r0, r0, static_cast<u32>(rng.below(0x10000)));
    const auto skip = g.label();
    g.cmpiBr(r0, 0, Cond::kGe, skip);
    g.mvn(r0, r0);
    g.bind(skip);
    g.ret();
  }
  // A two-level callee exercising nested calls under layout changes.
  {
    auto& g = mb.func("mid");
    g.prologue();
    g.call("leaf0");
    g.addi(r0, r0, 17);
    g.call("leaf0");
    g.epilogue();
  }

  auto& f = mb.func("main");
  f.prologue({r4, r5, r6});
  f.movi32(r4, static_cast<u32>(seed & 0xffff) | 1u);
  f.movi(r5, 0);

  const int segments = 3 + static_cast<int>(rng.below(6));
  for (int s = 0; s < segments; ++s) {
    switch (rng.below(5)) {
      case 0: {  // diamond
        const auto a = f.label();
        const auto join = f.label();
        f.andi(r6, r4, 1);
        f.cmpiBr(r6, 0, Cond::kEq, a);
        f.muli(r4, r4, 17);
        f.jmp(join);
        f.bind(a);
        f.addi(r4, r4, 1234);
        f.bind(join);
        break;
      }
      case 1: {  // counted loop
        const auto loop = f.label();
        f.movi(r6, static_cast<i32>(1 + rng.below(20)));
        f.bind(loop);
        f.add(r4, r4, r6);
        f.lsli(r12, r4, 1);
        f.eor(r4, r4, r12);
        f.subi(r6, r6, 1);
        f.cmpiBr(r6, 0, Cond::kGt, loop);
        break;
      }
      case 2: {  // call
        f.mov(r0, r4);
        f.call("leaf" + std::to_string(rng.below(nfuncs)));
        f.add(r4, r4, r0);
        break;
      }
      case 3: {  // nested call
        f.mov(r0, r4);
        f.call("mid");
        f.eor(r4, r4, r0);
        break;
      }
      default: {  // memory round-trip through the scratch buffer
        const i32 slot = static_cast<i32>(rng.below(60)) * 4;
        f.la(r12, "scratch", slot);
        f.str(r4, r12);
        f.lsli(r6, r4, 3);
        f.ldr(r12, r12);
        f.add(r4, r12, r6);
        f.la(r12, "scratch", slot);
        f.ldrb(r6, r12, static_cast<i32>(rng.below(4)));
        f.add(r4, r4, r6);
        break;
      }
    }
    f.add(r5, r5, r4);
  }
  f.la(r0, "out");
  f.str(r5, r0);
  f.epilogue({r4, r5, r6});
  return mb.build();
}

u32 runAndReadOut(const ir::Module& m, layout::Policy policy, u64 seed) {
  const mem::Image img = layout::linkWithPolicy(m, policy, seed);
  mem::Memory memory;
  img.loadInto(memory);
  sim::Core core(img, memory);
  sim::CoreState st = core.initialState();
  u64 steps = 0;
  while (!st.halted) {
    EXPECT_LT(steps++, 2'000'000u);
    core.step(st);
  }
  return memory.load32(mem::kDataBase);
}

class LayoutEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(LayoutEquivalence, AllPoliciesComputeSameResult) {
  ir::Module m = randomProgram(GetParam());
  const u32 original = runAndReadOut(m, layout::Policy::kOriginal, 0);

  // Annotate with a profile so the WP order is meaningful.
  const mem::Image orig = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  mem::Memory memory;
  orig.loadInto(memory);
  profile::annotate(m, profile::profileImage(orig, memory));

  EXPECT_EQ(runAndReadOut(m, layout::Policy::kWayPlacement, 0), original);
  for (u64 shuffle = 1; shuffle <= 3; ++shuffle) {
    EXPECT_EQ(runAndReadOut(m, layout::Policy::kRandom, shuffle), original)
        << "shuffle seed " << shuffle;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, LayoutEquivalence,
                         ::testing::Range<u64>(1, 41));

// The fetch scheme must never affect semantics either: run random
// programs on the full processor under every scheme and compare the
// architectural result and instruction counts.
class SchemeEquivalence : public ::testing::TestWithParam<u64> {};

TEST_P(SchemeEquivalence, AllSchemesComputeSameResult) {
  ir::Module m = randomProgram(GetParam() * 1000003ULL);
  const mem::Image img = layout::linkWithPolicy(m, layout::Policy::kOriginal);

  std::optional<u32> expected;
  std::optional<u64> expected_insts;
  for (const cache::Scheme scheme :
       {cache::Scheme::kBaseline, cache::Scheme::kWayPlacement,
        cache::Scheme::kWayMemoization, cache::Scheme::kWayPrediction}) {
    sim::MachineConfig cfg = sim::baselineMachine(
        scheme, scheme == cache::Scheme::kWayPlacement ? 1024 : 0);
    cfg.fetch.icache = cache::CacheGeometry{2048, 32, 8};  // tiny: misses!
    mem::Memory memory;
    img.loadInto(memory);
    sim::Processor proc(cfg, img, memory);
    const sim::RunStats stats = proc.run();
    const u32 result = memory.load32(mem::kDataBase);
    if (!expected.has_value()) {
      expected = result;
      expected_insts = stats.instructions;
    } else {
      EXPECT_EQ(result, *expected) << cache::schemeName(scheme);
      EXPECT_EQ(stats.instructions, *expected_insts)
          << cache::schemeName(scheme);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SchemeEquivalence,
                         ::testing::Range<u64>(1, 13));

}  // namespace
}  // namespace wp
