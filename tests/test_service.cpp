// Chaos tests for the crash-only sweep service (driver/service.hpp):
// strict WP_SERVE_* parsing, a malformed-request fuzz corpus that must
// never kill the daemon, deadline and crash-fault degradation through
// the supervisor, concurrent clients collapsing to one compute with
// byte-identical replies, overload shedding under a bounded queue,
// graceful drain, and the headline crash-only property — SIGKILL a
// serving process mid-compute, restart on the same WP_STORE, and replay
// its history byte-identically with zero recomputation and zero torn
// records.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/service.hpp"
#include "driver/store_fsck.hpp"
#include "driver/sweep.hpp"
#include "support/shutdown.hpp"
#include "support/socket.hpp"

namespace wp {
namespace {

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

/// An empty path under the test tempdir (anything there from a previous
/// run is removed; the store/socket code creates what it needs).
std::string freshPath(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  if (system(("rm -rf '" + path + "'").c_str()) != 0) ADD_FAILURE();
  return path;
}

/// One field of a flat JSON reply line ("" when absent; an unparseable
/// reply is a test failure in itself).
std::string field(const std::string& reply, const std::string& key) {
  std::map<std::string, driver::JsonToken> tokens;
  if (!driver::parseFlatJsonLine(reply, tokens)) {
    ADD_FAILURE() << "unparseable reply: '" << reply << "'";
    return "";
  }
  const auto it = tokens.find(key);
  return it == tokens.end() ? "" : it->second.text;
}

std::string fate(const std::string& reply) { return field(reply, "fate"); }

/// The service under test: one prepared executor (crc — the suite's
/// fastest workload) plus the process shutdown latch. WP_STORE and
/// WP_CHECKPOINT are pinned (to @p store_dir / off) so ambient
/// environment never leaks persistence into a test that did not ask
/// for it. Restores the latch on destruction so drain tests cannot
/// poison later ones.
struct TestService {
  explicit TestService(u64 seed = 7, unsigned jobs = 1,
                       driver::SupervisorConfig sup = {},
                       driver::ServiceConfig config = {},
                       std::vector<std::string> workloads = {"crc"},
                       const std::string& store_dir = "")
      : store_env("WP_STORE", store_dir.c_str()),
        no_ckpt("WP_CHECKPOINT", ""),
        sup_config(sup),
        suite(std::move(workloads), energy::EnergyParams{}, seed, jobs,
              &sup_config, nullptr),
        service(std::move(config), suite, ShutdownLatch::instance()) {
    ShutdownLatch::instance().install();
  }
  ~TestService() { ShutdownLatch::instance().reset(); }

  ScopedEnv store_env;
  ScopedEnv no_ckpt;
  driver::SupervisorConfig sup_config;
  driver::SweepExecutor suite;
  driver::SweepService service;
};

/// Blocking connect with retries, for clients racing serve()'s bind.
int connectRetry(const std::string& path) {
  std::string error;
  for (int i = 0; i < 200; ++i) {
    const int fd = support::connectUnix(path, error);
    if (fd >= 0) return fd;
    ::usleep(20 * 1000);
  }
  ADD_FAILURE() << "cannot connect to " << path << ": " << error;
  return -1;
}

/// One lock-step request/reply round trip over an open connection.
std::string roundTrip(int fd, support::LineReader& reader,
                      const std::string& request) {
  EXPECT_TRUE(support::sendAll(fd, request + "\n"));
  std::string reply;
  EXPECT_TRUE(reader.next(reply)) << "no reply to: " << request;
  return reply;
}

// ---------------------------------------------------------------------
// Configuration: strict numerics, like every WP_* knob.

TEST(ServiceConfigDeathTest, MalformedKnobsExitOneNamingTheKnob) {
  {
    ScopedEnv queue("WP_SERVE_QUEUE", "12x");
    EXPECT_EXIT((void)driver::ServiceConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_SERVE_QUEUE='12x'");
  }
  {
    ScopedEnv queue("WP_SERVE_QUEUE", "0");  // below the [1, 4096] range
    EXPECT_EXIT((void)driver::ServiceConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_SERVE_QUEUE='0'");
  }
  {
    ScopedEnv queue("WP_SERVE_QUEUE", "5000");  // above the range
    EXPECT_EXIT((void)driver::ServiceConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_SERVE_QUEUE='5000'");
  }
  {
    ScopedEnv deadline("WP_SERVE_DEADLINE_MS", "5ms");
    EXPECT_EXIT((void)driver::ServiceConfig::fromEnv(),
                testing::ExitedWithCode(1), "WP_SERVE_DEADLINE_MS='5ms'");
  }
}

TEST(ServiceConfig, DefaultsAndExplicitValues) {
  {
    ScopedEnv socket("WP_SERVE_SOCKET", "");
    ScopedEnv queue("WP_SERVE_QUEUE", "");
    ScopedEnv deadline("WP_SERVE_DEADLINE_MS", "");
    const driver::ServiceConfig c = driver::ServiceConfig::fromEnv();
    EXPECT_EQ(c.socket_path, "wp_serve.sock");
    EXPECT_EQ(c.queue_limit, 64u);
    EXPECT_EQ(c.deadline_ms, 0u);
  }
  {
    ScopedEnv socket("WP_SERVE_SOCKET", "/tmp/x.sock");
    ScopedEnv queue("WP_SERVE_QUEUE", "3");
    ScopedEnv deadline("WP_SERVE_DEADLINE_MS", "1500");
    const driver::ServiceConfig c = driver::ServiceConfig::fromEnv();
    EXPECT_EQ(c.socket_path, "/tmp/x.sock");
    EXPECT_EQ(c.queue_limit, 3u);
    EXPECT_EQ(c.deadline_ms, 1500u);
  }
}

// ---------------------------------------------------------------------
// handleLine: the whole protocol minus the socket.

TEST(ServiceHandleLine, EvalServesDeterministicReplies) {
  const std::string request =
      "{\"op\": \"eval\", \"id\": \"r1\", \"workload\": \"crc\", "
      "\"wp_kb\": 8}";
  std::string first;
  {
    TestService ts;
    first = ts.service.handleLine(request);
    EXPECT_EQ(fate(first), "served");
    EXPECT_EQ(field(first, "id"), "r1");
    EXPECT_NE(field(first, "key"), "");
    EXPECT_NE(field(first, "icache_energy"), "");
    EXPECT_NE(field(first, "ed_product"), "");
    // Same request again: the memo serves it, bytes identical.
    EXPECT_EQ(ts.service.handleLine(request), first);
  }
  // A fresh executor in a fresh service computes the same bytes: replies
  // are a pure function of the request (no wall-clock, no attempt
  // counts) — the property the crash-only restart relies on.
  TestService again;
  EXPECT_EQ(again.service.handleLine(request), first);
}

TEST(ServiceHandleLine, SuiteRowAndRecommendServe) {
  TestService ts(7, 2, {}, {}, {"crc", "bitcount"});
  const std::string row = ts.service.handleLine(
      "{\"op\": \"suite\", \"scheme\": \"way-placement\", \"wp_kb\": 8}");
  EXPECT_EQ(fate(row), "served");
  EXPECT_EQ(field(row, "included"), "2");
  EXPECT_EQ(field(row, "excluded"), "0");

  const std::string rec = ts.service.handleLine(
      "{\"op\": \"recommend\", \"workload\": \"bitcount\"}");
  EXPECT_EQ(fate(rec), "served");
  EXPECT_NE(field(rec, "wp_bytes"), "");
  EXPECT_NE(field(rec, "coverage"), "");
}

TEST(ServiceHandleLine, MalformedRequestFuzzCorpusNeverKillsTheService) {
  TestService ts;
  const std::vector<std::string> corpus = {
      "",
      "not json at all",
      "{\"op\": \"eval\"",                       // truncated object
      "{}",                                      // missing op
      "{\"op\": \"explode\"}",                   // unknown op
      "{\"op\": 7}",                             // op must be a string
      "{\"op\": \"eval\"}",                      // missing workload
      "{\"op\": \"eval\", \"workload\": \"no-such\"}",
      "{\"op\": \"eval\", \"workload\": 42}",    // wrong type
      "{\"op\": \"eval\", \"workload\": \"crc\", \"bogus\": 1}",
      "{\"op\": \"health\", \"workload\": \"crc\"}",  // field/op mismatch
      "{\"op\": \"eval\", \"workload\": \"crc\", \"icache_kb\": \"lots\"}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"icache_kb\": -4}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"ways\": 0}",
      // 1 KB / 256 B lines / 64 ways: fewer bytes than one full set.
      "{\"op\": \"eval\", \"workload\": \"crc\", \"icache_kb\": 1, "
      "\"line_bytes\": 256, \"ways\": 64}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"scheme\": \"magic\"}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"seed\": 99}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"layout\": \"zigzag\"}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"scheme\": "
      "\"baseline\", \"wp_kb\": 4}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"scheme\": "
      "\"baseline\", \"fault\": \"transient\"}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"nonsense\"}",
      // crash/hang faults need process isolation this service lacks.
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"crash\"}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"hang\"}",
      "{\"op\": \"recommend\", \"workload\": \"crc\", \"layout\": "
      "\"zigzag\"}",
  };
  for (const std::string& line : corpus) {
    const std::string reply = ts.service.handleLine(line);
    EXPECT_EQ(fate(reply), "error") << "request: " << line
                                    << "\nreply: " << reply;
    EXPECT_NE(field(reply, "error"), "") << "request: " << line;
  }
  // The daemon is fine: health answers, and every rejection was counted.
  const std::string health = ts.service.handleLine("{\"op\": \"health\"}");
  EXPECT_EQ(fate(health), "ok");
  EXPECT_EQ(field(health, "draining"), "false");
  const std::string stats = ts.service.handleLine("{\"op\": \"stats\"}");
  EXPECT_EQ(field(stats, "requests_invalid"),
            std::to_string(corpus.size()));
  EXPECT_EQ(field(stats, "cells_computed"), "0");
}

TEST(ServiceHandleLine, HangFaultBecomesDeadlineUnderIsolation) {
  driver::SupervisorConfig sup;
  sup.isolate = true;
  sup.retries = 0;  // one hanging attempt, not two
  sup.cell_timeout_ms = 300;
  sup.timeout_check_interval = 1u << 12;
  TestService ts(7, 1, sup);

  const std::string reply = ts.service.handleLine(
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"hang\"}");
  EXPECT_EQ(fate(reply), "deadline") << reply;
  EXPECT_NE(field(reply, "error").find("WP_CELL_TIMEOUT_MS"),
            std::string::npos);
}

TEST(ServiceHandleLine, CrashFaultsDegradeByRetryBudget) {
  driver::SupervisorConfig sup;
  sup.isolate = true;
  sup.retries = 1;
  TestService ts(7, 1, sup);
  // One worker death, then the retry serves the cell: the client never
  // sees the crash, the service never dies with it.
  const std::string survived = ts.service.handleLine(
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"crash:1\"}");
  EXPECT_EQ(fate(survived), "served") << survived;
  // A persistent crasher exhausts the budget and is quarantined — a
  // reply the client can act on, not a dead daemon.
  const std::string reply = ts.service.handleLine(
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"crash:99\"}");
  EXPECT_EQ(fate(reply), "quarantined") << reply;
  EXPECT_NE(field(reply, "error"), "");
}

TEST(ServiceHandleLine, HangWithoutDeadlineIsRejectedAtAdmission) {
  driver::SupervisorConfig sup;
  sup.isolate = true;  // isolation alone is not enough for a hang
  TestService ts(7, 1, sup);
  const std::string reply = ts.service.handleLine(
      "{\"op\": \"eval\", \"workload\": \"crc\", \"fault\": \"hang\"}");
  EXPECT_EQ(fate(reply), "error") << reply;
  EXPECT_NE(field(reply, "error").find("deadline"), std::string::npos);
}

TEST(ServiceHandleLine, DrainOpLatchesTheProcessShutdownPath) {
  TestService ts;
  EXPECT_FALSE(ts.service.draining());
  const std::string reply = ts.service.handleLine("{\"op\": \"drain\"}");
  EXPECT_EQ(fate(reply), "ok");
  EXPECT_EQ(field(reply, "draining"), "true");
  EXPECT_TRUE(ts.service.draining());
  EXPECT_TRUE(ShutdownLatch::instance().requested());
  // ~TestService resets the latch for later tests.
}

// ---------------------------------------------------------------------
// serve(): the real socket loop.

TEST(ServiceServe, ConcurrentClientsShareOneComputeAndDrainCleanly) {
  driver::ServiceConfig config;
  config.socket_path = freshPath("svc1.sock");
  TestService ts(7, 2, {}, config);

  int rc = -1;
  std::thread server([&] { rc = ts.service.serve(); });

  const std::string request =
      "{\"op\": \"eval\", \"workload\": \"crc\", \"wp_kb\": 8}";
  constexpr int kClients = 6;
  std::vector<std::string> replies(kClients);
  {
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back([&, i] {
        const int fd = connectRetry(config.socket_path);
        if (fd < 0) return;
        support::LineReader reader(fd);
        replies[i] = roundTrip(fd, reader, request);
        ::close(fd);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  for (int i = 0; i < kClients; ++i) {
    EXPECT_EQ(fate(replies[i]), "served") << replies[i];
    EXPECT_EQ(replies[i], replies[0]) << "reply " << i << " diverged";
  }

  // All six requests collapsed onto one computed cell + its baseline.
  const int fd = connectRetry(config.socket_path);
  ASSERT_GE(fd, 0);
  support::LineReader reader(fd);
  const std::string stats = roundTrip(fd, reader, "{\"op\": \"stats\"}");
  EXPECT_EQ(field(stats, "cells_computed"), "2") << stats;
  EXPECT_EQ(field(stats, "requests_shed"), "0");

  const std::string health = roundTrip(fd, reader, "{\"op\": \"health\"}");
  EXPECT_EQ(fate(health), "ok");
  EXPECT_EQ(field(health, "queue_limit"), "64");

  const std::string drain = roundTrip(fd, reader, "{\"op\": \"drain\"}");
  EXPECT_EQ(fate(drain), "ok");
  ::close(fd);
  server.join();
  EXPECT_EQ(rc, 0);
}

TEST(ServiceServe, OverloadShedsDeadlinesFireAndDrainStillFlushes) {
  driver::SupervisorConfig sup;
  sup.isolate = true;
  sup.retries = 0;
  sup.cell_timeout_ms = 400;
  sup.timeout_check_interval = 1u << 12;
  driver::ServiceConfig config;
  config.socket_path = freshPath("svc2.sock");
  config.queue_limit = 1;  // worker + one queued slot; the rest shed
  TestService ts(7, 1, sup, config);

  int rc = -1;
  std::thread server([&] { rc = ts.service.serve(); });

  const int fd = connectRetry(config.socket_path);
  ASSERT_GE(fd, 0);
  // Wedge the single worker on a hanging cell, give it a moment to pop
  // the job off the queue, then burst distinct cells at the daemon.
  // With the worker busy and one queue slot, most of the burst must be
  // shed — the daemon never buffers unboundedly and keeps answering.
  ASSERT_TRUE(support::sendAll(
      fd,
      "{\"op\": \"eval\", \"id\": \"hang\", \"workload\": \"crc\", "
      "\"fault\": \"hang\"}\n"));
  ::usleep(100 * 1000);
  std::string burst;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    burst += "{\"op\": \"eval\", \"id\": \"b" + std::to_string(i) +
             "\", \"workload\": \"crc\", \"wp_kb\": " +
             std::to_string(i + 1) + "}\n";
  }
  ASSERT_TRUE(support::sendAll(fd, burst));

  support::LineReader reader(fd);
  int served = 0, shed = 0, deadline = 0;
  for (int i = 0; i < kBurst + 1; ++i) {
    std::string reply;
    ASSERT_TRUE(reader.next(reply)) << "lost reply " << i;
    const std::string f = fate(reply);
    if (f == "served") ++served;
    if (f == "deadline") {
      ++deadline;
      EXPECT_EQ(field(reply, "id"), "hang");
    }
    if (f == "overloaded") {
      ++shed;
      EXPECT_EQ(field(reply, "retry_after_ms"), "250") << reply;
    }
  }
  EXPECT_EQ(deadline, 1);
  EXPECT_GE(served, 1);  // at least the queued slot eventually serves
  EXPECT_GE(shed, 1);
  EXPECT_EQ(served + shed + deadline, kBurst + 1);

  // Health answered on the poll thread the whole time; now drain.
  const std::string health = roundTrip(fd, reader, "{\"op\": \"health\"}");
  EXPECT_EQ(fate(health), "ok");
  const std::string stats = roundTrip(fd, reader, "{\"op\": \"stats\"}");
  EXPECT_EQ(field(stats, "requests_shed"), std::to_string(shed));
  EXPECT_EQ(fate(roundTrip(fd, reader, "{\"op\": \"drain\"}")), "ok");
  ::close(fd);
  server.join();
  EXPECT_EQ(rc, 0);
}

TEST(ServiceServe, DrainRefusesNewWorkButFlushesAdmittedWork) {
  driver::SupervisorConfig sup;
  sup.isolate = true;
  sup.retries = 0;
  sup.cell_timeout_ms = 500;
  sup.timeout_check_interval = 1u << 12;
  driver::ServiceConfig config;
  config.socket_path = freshPath("svc3.sock");
  TestService ts(7, 1, sup, config);

  int rc = -1;
  std::thread server([&] { rc = ts.service.serve(); });
  const int fd = connectRetry(config.socket_path);
  ASSERT_GE(fd, 0);
  support::LineReader reader(fd);

  // Occupy the worker so the drain has admitted work to flush, then
  // latch exactly as SIGTERM would while a new request is in the pipe.
  ASSERT_TRUE(support::sendAll(
      fd,
      "{\"op\": \"eval\", \"id\": \"busy\", \"workload\": \"crc\", "
      "\"fault\": \"hang\"}\n"));
  ::usleep(100 * 1000);
  ShutdownLatch::instance().trigger(SIGTERM);
  ASSERT_TRUE(support::sendAll(
      fd,
      "{\"op\": \"eval\", \"id\": \"late\", \"workload\": \"crc\"}\n"));

  std::map<std::string, std::string> fates;
  for (int i = 0; i < 2; ++i) {
    std::string reply;
    ASSERT_TRUE(reader.next(reply)) << "lost reply " << i;
    fates[field(reply, "id")] = fate(reply);
  }
  EXPECT_EQ(fates["late"], "draining");  // refused, with a tagged reply
  EXPECT_EQ(fates["busy"], "deadline");  // admitted work still flushed
  ::close(fd);
  server.join();
  EXPECT_EQ(rc, 0);
}

// ---------------------------------------------------------------------
// Crash-only: SIGKILL, restart, byte-identical replay, zero recompute.

TEST(ServiceServe, WarmRestartRepliesByteIdenticalWithZeroRecompute) {
  const std::string store = freshPath("svc_store");
  const std::vector<std::string> requests = {
      "{\"op\": \"eval\", \"workload\": \"crc\", \"wp_kb\": 8}",
      "{\"op\": \"eval\", \"workload\": \"crc\", \"wp_kb\": 16}",
  };
  std::vector<std::string> cold;
  {
    TestService ts(7, 1, {}, {}, {"crc"}, store);
    for (const std::string& r : requests) {
      cold.push_back(ts.service.handleLine(r));
      EXPECT_EQ(fate(cold.back()), "served");
    }
  }
  // "Restart": a brand-new executor over the same store must re-serve
  // the history byte-identically without computing a single cell.
  TestService warm(7, 1, {}, {}, {"crc"}, store);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(warm.service.handleLine(requests[i]), cold[i]);
  }
  const std::string stats = warm.service.handleLine("{\"op\": \"stats\"}");
  EXPECT_EQ(field(stats, "cells_computed"), "0") << stats;
  EXPECT_EQ(field(stats, "cells_from_store"), "3");  // base + two cells
}

TEST(ServiceServe, SigkillMidComputeLeavesNoTornRecordsAndReplays) {
  const std::string store = freshPath("svc_kill_store");
  ASSERT_EQ(::mkdir(store.c_str(), 0755), 0);
  std::vector<std::string> requests;
  for (int i = 1; i <= 4; ++i) {
    requests.push_back(
        "{\"op\": \"eval\", \"workload\": \"crc\", \"wp_kb\": " +
        std::to_string(i) + "}");
  }

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // A serving process mid-campaign; the parent will SIGKILL it at an
    // arbitrary instant (during prepare, a compute or a store publish —
    // every instant must be safe).
    TestService ts(7, 1, {}, {}, {"crc"}, store);
    for (const std::string& r : requests) (void)ts.service.handleLine(r);
    std::_Exit(0);
  }
  ::usleep(400 * 1000);
  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);

  // Crash-only promise #1: whatever instant the kill hit, the store
  // holds no torn record — at worst stale lease/tmp litter.
  driver::FsckOptions options;
  options.dir = store;
  std::ostringstream report_out;
  driver::FsckReport report = driver::fsckStore(options, report_out);
  EXPECT_TRUE(report.dir_ok) << report_out.str();
  EXPECT_EQ(report.damaged, 0u) << report_out.str();

  // fsck --remove clears the litter the kill left behind...
  options.remove = true;
  (void)driver::fsckStore(options, report_out);

  // ...and promise #2: a restarted service replays the same requests to
  // completion, reusing every record the victim managed to publish.
  TestService ts(7, 1, {}, {}, {"crc"}, store);
  for (const std::string& r : requests) {
    EXPECT_EQ(fate(ts.service.handleLine(r)), "served");
  }
  std::ostringstream after_out;
  options.remove = false;
  report = driver::fsckStore(options, after_out);
  EXPECT_EQ(report.damaged, 0u) << after_out.str();
  EXPECT_EQ(report.stale_leases, 0u) << after_out.str();
  EXPECT_GE(report.healthy, 5u) << after_out.str();  // base + 4 cells
}

}  // namespace
}  // namespace wp
