// End-to-end smoke test: the crc workload runs correctly under every
// layout/scheme combination and way-placement saves I-cache energy.
#include <gtest/gtest.h>

#include "driver/runner.hpp"

namespace wp {
namespace {

using workloads::InputSize;

TEST(Smoke, CrcEndToEnd) {
  driver::Runner runner;
  const driver::PreparedWorkload prepared = runner.prepare("crc");
  EXPECT_GT(prepared.profile_instructions, 10000u);

  const cache::CacheGeometry icache{32 * 1024, 32, 32};

  const driver::RunResult base =
      runner.run(prepared, icache, driver::SchemeSpec::baseline());
  const driver::RunResult wp =
      runner.run(prepared, icache, driver::SchemeSpec::wayPlacement(16 * 1024));
  const driver::RunResult wm =
      runner.run(prepared, icache, driver::SchemeSpec::wayMemoization());

  // Functional correctness under every scheme.
  for (const auto* r : {&base, &wp, &wm}) {
    EXPECT_GT(r->stats.instructions, 100000u);
  }

  // Same program, same input: both layouts execute the same work modulo
  // linker repair branches (none here for baseline, few for WP).
  const double inst_ratio = static_cast<double>(wp.stats.instructions) /
                            static_cast<double>(base.stats.instructions);
  EXPECT_NEAR(inst_ratio, 1.0, 0.02);

  const driver::Normalized nwp = driver::normalize(wp, base);
  const driver::Normalized nwm = driver::normalize(wm, base);

  // The paper's headline shape: way-placement saves substantial I-cache
  // energy and beats way-memoization; performance is essentially flat.
  EXPECT_LT(nwp.icache_energy, 0.70);
  EXPECT_LT(nwp.icache_energy, nwm.icache_energy);
  EXPECT_NEAR(nwp.delay, 1.0, 0.05);
  EXPECT_LT(nwp.ed_product, 1.0);
}

TEST(Smoke, CrcOutputMatchesReferenceUnderAllSchemes) {
  driver::Runner runner;
  driver::PreparedWorkload prepared = runner.prepare("crc");
  const cache::CacheGeometry icache{32 * 1024, 32, 32};

  for (const auto& spec :
       {driver::SchemeSpec::baseline(),
        driver::SchemeSpec::wayPlacement(4 * 1024),
        driver::SchemeSpec::wayMemoization()}) {
    const mem::Image& image = prepared.imageFor(spec.layout);
    mem::Memory memory;
    image.loadInto(memory);
    prepared.workload->prepare(memory, InputSize::kLarge);
    sim::Processor proc(runner.machineFor(icache, spec), image, memory);
    (void)proc.run();
    EXPECT_EQ(prepared.workload->output(memory),
              prepared.workload->expected(InputSize::kLarge))
        << "scheme=" << cache::schemeName(spec.scheme);
  }
}

}  // namespace
}  // namespace wp
