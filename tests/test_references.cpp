// Host-reference validation against published vectors, plus numeric
// property checks for the DSP references.
#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"
#include "workloads/references.hpp"

namespace wp::workloads::ref {
namespace {

TEST(Sha1Ref, AbcVector) {
  // FIPS 180-1: SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d.
  const u8 msg[] = {'a', 'b', 'c'};
  const auto h = sha1(msg);
  EXPECT_EQ(h[0], 0xa9993e36u);
  EXPECT_EQ(h[1], 0x4706816au);
  EXPECT_EQ(h[2], 0xba3e2571u);
  EXPECT_EQ(h[3], 0x7850c26cu);
  EXPECT_EQ(h[4], 0x9cd0d89du);
}

TEST(Sha1Ref, EmptyMessage) {
  // SHA-1("") = da39a3ee 5e6b4b0d 3255bfef 95601890 afd80709.
  const auto h = sha1({});
  EXPECT_EQ(h[0], 0xda39a3eeu);
  EXPECT_EQ(h[4], 0xafd80709u);
}

TEST(Sha1Ref, PaddingLengths) {
  for (std::size_t len : {0u, 1u, 55u, 56u, 63u, 64u, 65u, 119u, 120u}) {
    const std::vector<u8> msg(len, 0x61);
    const auto padded = sha1Pad(msg);
    EXPECT_EQ(padded.size() % 64, 0u) << "len " << len;
    EXPECT_GE(padded.size(), msg.size() + 9);
  }
}

TEST(Crc32Ref, CheckValue) {
  // The standard CRC-32 check: crc32("123456789") = 0xCBF43926.
  const u8 msg[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(msg), 0xCBF43926u);
}

TEST(Crc32Ref, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(AesRef, Fips197Vector) {
  // FIPS-197 Appendix C.1.
  const u8 key[16] = {0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                      0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f};
  const u8 pt[16] = {0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77,
                     0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  const u8 expect[16] = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                         0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  const Aes128 aes(key);
  u8 ct[16];
  aes.encryptBlock(pt, ct);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(ct[i], expect[i]) << "byte " << i;
  u8 back[16];
  aes.decryptBlock(ct, back);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(back[i], pt[i]);
}

TEST(AesRef, SboxProperties) {
  const auto& s = aesSbox();
  const auto& inv = aesInvSbox();
  EXPECT_EQ(s[0x00], 0x63);  // canonical first entry
  EXPECT_EQ(s[0x01], 0x7c);
  EXPECT_EQ(s[0x53], 0xed);  // FIPS-197 example
  for (u32 i = 0; i < 256; ++i) {
    EXPECT_EQ(inv[s[i]], i);
  }
}

TEST(AesRef, GfMulBasics) {
  EXPECT_EQ(aesGfmul(0x57, 0x83), 0xc1);  // FIPS-197 example
  EXPECT_EQ(aesGfmul(0x57, 0x13), 0xfe);
  EXPECT_EQ(aesGfmul(1, 0xab), 0xab);
  EXPECT_EQ(aesGfmul(0, 0xff), 0);
}

TEST(BlowfishRef, EncryptDecryptRoundTrip) {
  const std::vector<u8> key = {1, 2, 3, 4, 5, 6, 7, 8};
  const Blowfish bf(key, 0x1234);
  u32 l = 0xdeadbeefu, r = 0xcafef00du;
  bf.encryptBlock(l, r);
  EXPECT_NE(l, 0xdeadbeefu);
  bf.decryptBlock(l, r);
  EXPECT_EQ(l, 0xdeadbeefu);
  EXPECT_EQ(r, 0xcafef00du);
}

TEST(BlowfishRef, KeySensitivity) {
  const std::vector<u8> k1 = {1, 2, 3, 4};
  const std::vector<u8> k2 = {1, 2, 3, 5};
  const Blowfish a(k1, 0x99), b(k2, 0x99);
  u32 l1 = 1, r1 = 2, l2 = 1, r2 = 2;
  a.encryptBlock(l1, r1);
  b.encryptBlock(l2, r2);
  EXPECT_TRUE(l1 != l2 || r1 != r2);
}

TEST(BlowfishRef, AvalancheOnPlaintext) {
  const std::vector<u8> key = {9, 9, 9, 9};
  const Blowfish bf(key, 0x77);
  u32 l1 = 0, r1 = 0, l2 = 1, r2 = 0;
  bf.encryptBlock(l1, r1);
  bf.encryptBlock(l2, r2);
  const u32 flipped = popcount(l1 ^ l2) + popcount(r1 ^ r2);
  EXPECT_GT(flipped, 10u);  // strong diffusion
}

TEST(AdpcmRef, RoundTripQuality) {
  // ADPCM is lossy; the decoded signal must track the input closely
  // (quantization SNR for a smooth waveform should be comfortably high).
  std::vector<i16> pcm(4096);
  for (std::size_t i = 0; i < pcm.size(); ++i) {
    pcm[i] = static_cast<i16>(8000.0 * std::sin(0.02 * i));
  }
  const auto codes = adpcmEncode(pcm);
  EXPECT_EQ(codes.size(), pcm.size() / 2);
  const auto back = adpcmDecode(codes, pcm.size());
  double signal = 0, noise = 0;
  for (std::size_t i = 64; i < pcm.size(); ++i) {  // skip attack transient
    signal += double(pcm[i]) * pcm[i];
    const double e = double(pcm[i]) - back[i];
    noise += e * e;
  }
  EXPECT_GT(10.0 * std::log10(signal / noise), 20.0);
}

TEST(AdpcmRef, TablesMatchSpec) {
  const auto steps = adpcmStepTable();
  ASSERT_EQ(steps.size(), 89u);
  EXPECT_EQ(steps[0], 7);
  EXPECT_EQ(steps[88], 32767);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_GT(steps[i], steps[i - 1]);
  }
  const auto idx = adpcmIndexTable();
  ASSERT_EQ(idx.size(), 16u);
  EXPECT_EQ(idx[4], 2);
  EXPECT_EQ(idx[7], 8);
  EXPECT_EQ(idx[0], -1);
}

TEST(FftRef, MatchesDirectDftOnImpulse) {
  // FFT of a unit impulse is flat (scaled by the per-stage >>1: N stages
  // divide by N).
  const std::size_t n = 64;
  std::vector<i32> re(n, 0), im(n, 0);
  re[0] = 32000;
  fftFixed(re, im, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(re[k], 32000 / static_cast<i32>(n), 8) << "bin " << k;
    EXPECT_NEAR(im[k], 0, 8);
  }
}

TEST(FftRef, SingleToneLandsInItsBin) {
  const std::size_t n = 256;
  std::vector<i32> re(n), im(n, 0);
  const std::size_t tone = 5;
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = static_cast<i32>(
        16000.0 * std::cos(2.0 * 3.14159265358979 * tone * i / n));
  }
  fftFixed(re, im, false);
  // Energy concentrates in bins `tone` and `n - tone`.
  for (std::size_t k = 0; k < n; ++k) {
    const double mag = std::hypot(double(re[k]), double(im[k]));
    if (k == tone || k == n - tone) {
      EXPECT_GT(mag, 20.0);
    } else {
      EXPECT_LT(mag, 10.0) << "bin " << k;
    }
  }
}

TEST(FftRef, InverseUndoesForward) {
  const std::size_t n = 128;
  wp::Rng rng(55);
  std::vector<i32> re(n), im(n, 0);
  for (auto& v : re) v = static_cast<i32>(rng.range(-16000, 16000));
  const std::vector<i32> orig = re;
  fftFixed(re, im, false);
  fftFixed(re, im, true);
  // Forward+inverse scales by 1/N twice... no: each pass divides by N,
  // so x -> X/N -> x/N^2? No — each full transform applies 1/N once
  // (log2(N) stages of >>1). Forward+inverse therefore returns x/N.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(re[i], orig[i] / static_cast<i32>(n), 24) << "i=" << i;
  }
}

TEST(FftRef, TwiddleTablesAreQ15) {
  std::vector<i32> cs, sn;
  fftTwiddles(8, cs, sn);
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_EQ(cs[0], 32767);
  EXPECT_EQ(sn[0], 0);
  EXPECT_NEAR(cs[1], 23170, 2);  // cos(pi/4) in Q15
  EXPECT_NEAR(sn[2], 32767, 2);  // sin(pi/2)
}

}  // namespace
}  // namespace wp::workloads::ref
