// Tests for the persistent result store (driver/result_store.hpp +
// WP_STORE): verified round-trips, tamper/torn rejection, the lock-file
// lease protocol (wait, dead-holder reclaim, expiry reclaim), loud
// degradation on an unusable store, warm sweeps serving every cell
// byte-identically, and two processes racing one store without
// double-computing or leaving locks behind.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/result_store.hpp"
#include "driver/sweep.hpp"
#include "support/ensure.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

std::vector<std::string> fastSubset() { return {"crc", "bitcount"}; }

driver::SchemeSpec wpSpec() {
  return driver::SchemeSpec::wayPlacement(16 * 1024);
}

double icacheEnergy(const driver::Normalized& n) { return n.icache_energy; }

/// Sets an environment variable for the enclosing scope; restores the
/// previous value (or unsets) on destruction.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old;
    had_old_ = old != nullptr;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, saved_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_old_ = false;
};

/// Files in @p dir whose names end with @p suffix (sorted by readdir
/// order; tests only count them).
std::vector<std::string> filesWithSuffix(const std::string& dir,
                                         const std::string& suffix) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      out.push_back(name);
    }
  }
  ::closedir(d);
  return out;
}

/// An empty, freshly recreated store directory under the test tempdir.
std::string freshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  if (DIR* d = ::opendir(dir.c_str())) {
    while (struct dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n != "." && n != "..") ::unlink((dir + "/" + n).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
  return dir;
}

driver::RunResult fakeResult() {
  driver::RunResult r;
  r.stats.instructions = 1111;
  r.stats.cycles = 2222;
  r.output = {0xaa, 0x55};
  r.layout_strategy = "original";
  r.simulate_seconds = 0.125;
  return r;
}

// ---------------------------------------------------------------------
// Configuration: opt-in, strict numerics.

TEST(ResultStoreConfig, IsOptInAndParsesTheLeaseTimeout) {
  {
    ScopedEnv store("WP_STORE", "");
    EXPECT_FALSE(driver::ResultStore::fromEnv().has_value());
  }
  {
    ScopedEnv store("WP_STORE", "/tmp/some-store");
    const auto c = driver::ResultStore::fromEnv();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->dir, "/tmp/some-store");
    EXPECT_EQ(c->lease_timeout_ms, 10u * 60 * 1000)
        << "default lease timeout is 10 minutes";
  }
  {
    ScopedEnv store("WP_STORE", "/tmp/some-store");
    ScopedEnv lease("WP_LEASE_TIMEOUT_MS", "1234");
    const auto c = driver::ResultStore::fromEnv();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->lease_timeout_ms, 1234u);
  }
}

using ResultStoreDeathTest = ::testing::Test;

TEST(ResultStoreDeathTest, TrailingGarbageLeaseTimeoutExits) {
  ScopedEnv store("WP_STORE", "/tmp/some-store");
  ScopedEnv lease("WP_LEASE_TIMEOUT_MS", "100x");
  EXPECT_EXIT((void)driver::ResultStore::fromEnv(),
              testing::ExitedWithCode(1), "WP_LEASE_TIMEOUT_MS='100x'");
}

TEST(ResultStoreDeathTest, ZeroLeaseTimeoutExits) {
  ScopedEnv store("WP_STORE", "/tmp/some-store");
  ScopedEnv lease("WP_LEASE_TIMEOUT_MS", "0");
  EXPECT_EXIT((void)driver::ResultStore::fromEnv(),
              testing::ExitedWithCode(1), "WP_LEASE_TIMEOUT_MS='0'");
}

TEST(ResultStoreDeathTest, OverflowLeaseTimeoutExits) {
  ScopedEnv store("WP_STORE", "/tmp/some-store");
  ScopedEnv lease("WP_LEASE_TIMEOUT_MS", "99999999999999999999");
  EXPECT_EXIT((void)driver::ResultStore::fromEnv(),
              testing::ExitedWithCode(1), "WP_LEASE_TIMEOUT_MS");
}

TEST(ResultStoreDeathTest, NegativeLeaseTimeoutExits) {
  ScopedEnv store("WP_STORE", "/tmp/some-store");
  ScopedEnv lease("WP_LEASE_TIMEOUT_MS", "-5");
  EXPECT_EXIT((void)driver::ResultStore::fromEnv(),
              testing::ExitedWithCode(1), "WP_LEASE_TIMEOUT_MS");
}

// ---------------------------------------------------------------------
// The store primitive, driven directly.

TEST(ResultStore, PutThenOpenRoundTripsUnderTheLeaseProtocol) {
  const std::string dir = freshDir("store_roundtrip");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 600000}, 7, metrics, nullptr);
  ASSERT_FALSE(store.degraded());

  auto miss = store.open("cell/a", 42);
  EXPECT_FALSE(miss.record.has_value());
  ASSERT_TRUE(miss.lease.owned());
  struct stat st;
  EXPECT_EQ(::stat((store.recordPathFor("cell/a", 42) + ".lock").c_str(),
                   &st),
            0)
      << "a miss must leave its lease lock on disk";

  const driver::RunResult sent = fakeResult();
  store.put(miss.lease, "cell/a", 42, sent, 0.5);
  EXPECT_FALSE(miss.lease.owned()) << "put releases the lease";
  EXPECT_NE(::stat((store.recordPathFor("cell/a", 42) + ".lock").c_str(),
                   &st),
            0)
      << "the lock must be gone after publish";
  EXPECT_EQ(::stat(store.recordPathFor("cell/a", 42).c_str(), &st), 0);
  EXPECT_EQ(metrics.counter("store.records_written").value(), 1u);

  auto hit = store.open("cell/a", 42);
  ASSERT_TRUE(hit.record.has_value());
  EXPECT_FALSE(hit.lease.owned());
  EXPECT_EQ(driver::statsDigest(hit.record->result),
            driver::statsDigest(sent));
  EXPECT_EQ(hit.record->wall_seconds, 0.5);
  EXPECT_EQ(metrics.counter("store.hits").value(), 1u);
  EXPECT_EQ(metrics.counter("store.misses").value(), 1u);

  // A different image digest is a different cell: plain miss, no
  // rejection — the store never serves results for other bytes.
  auto other = store.open("cell/a", 43);
  EXPECT_FALSE(other.record.has_value());
  EXPECT_TRUE(other.lease.owned());
  EXPECT_EQ(metrics.counter("store.rejected").value(), 0u);
}

TEST(ResultStore, RejectsTamperedAndTornRecordsAndRecomputes) {
  const std::string dir = freshDir("store_tamper");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);
  {
    auto miss = store.open("cell/a", 1);
    store.put(miss.lease, "cell/a", 1, fakeResult(), 0.0);
  }
  const std::string path = store.recordPathFor("cell/a", 1);

  // Flip one digit of the payload: the stats digest must trip.
  std::string body;
  {
    std::ifstream in(path);
    body.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  std::string tampered = body;
  const std::size_t at = tampered.find("\"instructions\": ");
  ASSERT_NE(at, std::string::npos);
  char& digit = tampered[at + 16];
  digit = digit == '9' ? '8' : '9';
  {
    std::ofstream out(path);
    out << tampered;
  }
  auto rejected = store.open("cell/a", 1);
  EXPECT_FALSE(rejected.record.has_value());
  EXPECT_TRUE(rejected.lease.owned())
      << "a rejected record is a miss: the caller recomputes under lease";
  EXPECT_EQ(metrics.counter("store.rejected").value(), 1u);
  store.put(rejected.lease, "cell/a", 1, fakeResult(), 0.0);

  // Truncate to half a record (a torn write can only come from outside
  // the store, since publishes are atomic renames).
  {
    std::ofstream out(path);
    out << body.substr(0, body.size() / 2);
  }
  auto torn = store.open("cell/a", 1);
  EXPECT_FALSE(torn.record.has_value());
  EXPECT_TRUE(torn.lease.owned());
  EXPECT_EQ(metrics.counter("store.rejected").value(), 2u);
}

TEST(ResultStore, ReclaimsADeadHoldersLease) {
  const std::string dir = freshDir("store_deadpid");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);

  // A freshly dead pid: forked and exited before we write the lock.
  const pid_t dead = ::fork();
  ASSERT_GE(dead, 0);
  if (dead == 0) std::_Exit(0);
  int status = 0;
  ASSERT_EQ(::waitpid(dead, &status, 0), dead);

  {
    std::ofstream lock(store.recordPathFor("cell/a", 1) + ".lock");
    lock << "{\"pid\": " << dead << ", \"seed\": 0}\n";
  }
  auto out = store.open("cell/a", 1);
  EXPECT_FALSE(out.record.has_value());
  EXPECT_TRUE(out.lease.owned())
      << "a dead holder's lease must be reclaimed immediately";
  EXPECT_EQ(metrics.counter("store.leases_reclaimed").value(), 1u);
}

TEST(ResultStore, ReclaimsAnExpiredLeaseOfALiveHolder) {
  const std::string dir = freshDir("store_expiry");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 50}, 0, metrics, nullptr);

  // pid 1 is alive but will never release this lock; only the
  // WP_LEASE_TIMEOUT_MS expiry can break the tie.
  {
    std::ofstream lock(store.recordPathFor("cell/a", 1) + ".lock");
    lock << "{\"pid\": 1, \"seed\": 0}\n";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto out = store.open("cell/a", 1);
  EXPECT_FALSE(out.record.has_value());
  EXPECT_TRUE(out.lease.owned());
  EXPECT_EQ(metrics.counter("store.leases_reclaimed").value(), 1u);
}

TEST(ResultStore, ReclaimsALeaseFromAPreviousBootDespiteALivePid) {
  const std::string dir = freshDir("store_staleboot");
  MetricsRegistry metrics;
  // Ten-minute lease timeout: only the boot-nonce mismatch can explain
  // an immediate reclaim here.
  driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);

  ASSERT_NE(driver::bootNonce(), 0u)
      << "this host exposes no boot identity; the nonce check is moot";
  EXPECT_EQ(driver::bootNonce(), driver::bootNonce())
      << "the nonce must be stable within one boot";

  // The PID-reuse-after-reboot shape: pid 1 is alive *now*, but the
  // lease was written under a different boot nonce — before the fix,
  // kill(1, 0) succeeding parked this lease until expiry even though
  // its real holder died with the previous boot.
  {
    std::ofstream lock(store.recordPathFor("cell/a", 1) + ".lock");
    lock << "{\"pid\": 1, \"boot\": " << (driver::bootNonce() ^ 1)
         << ", \"seed\": 0}\n";
  }
  auto out = store.open("cell/a", 1);
  EXPECT_FALSE(out.record.has_value());
  EXPECT_TRUE(out.lease.owned())
      << "a previous-boot lease must be reclaimed immediately";
  EXPECT_EQ(metrics.counter("store.leases_reclaimed").value(), 1u);
}

TEST(ResultStore, CurrentBootLeasePayloadKeepsALiveHolderParked) {
  const std::string dir = freshDir("store_currentboot");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 50}, 0, metrics, nullptr);

  // Same shape as the expiry test, but with the *current* boot nonce in
  // the payload: the nonce check must not fire, leaving expiry as the
  // only way past a live holder.
  {
    std::ofstream lock(store.recordPathFor("cell/a", 1) + ".lock");
    lock << "{\"pid\": 1, \"boot\": " << driver::bootNonce()
         << ", \"seed\": 0}\n";
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  auto out = store.open("cell/a", 1);
  EXPECT_TRUE(out.lease.owned());
  EXPECT_EQ(metrics.counter("store.leases_reclaimed").value(), 1u)
      << "reclaimed exactly once, by expiry";
}

TEST(ResultStore, WaitsOutALiveHolderAndServesItsRecord) {
  const std::string dir = freshDir("store_wait");
  MetricsRegistry metrics;
  driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);
  const std::string path = store.recordPathFor("cell/a", 9);
  {
    std::ofstream lock(path + ".lock");
    lock << "{\"pid\": 1, \"seed\": 0}\n";  // alive, long lease
  }

  // "The holder": publishes the record and releases the lock while this
  // thread is blocked inside open().
  const driver::RunResult sent = fakeResult();
  std::thread holder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const std::string tmp = path + ".tmp.test";
    std::ofstream out(tmp);
    out << "{\"ev\": \"store\", \"version\": 1, \"seed\": 0, "
           "\"key\": \"cell/a\"}\n"
        << driver::renderRecord("cell/a", 9, sent, 0.25) << "\n";
    out.close();
    ASSERT_EQ(::rename(tmp.c_str(), path.c_str()), 0);
    ::unlink((path + ".lock").c_str());
  });
  auto out = store.open("cell/a", 9);
  holder.join();
  ASSERT_TRUE(out.record.has_value())
      << "the waiter must pick up the holder's published record";
  EXPECT_FALSE(out.lease.owned());
  EXPECT_EQ(driver::statsDigest(out.record->result),
            driver::statsDigest(sent));
  EXPECT_EQ(metrics.counter("store.lease_waits").value(), 1u);
  EXPECT_EQ(metrics.counter("store.misses").value(), 0u);
}

// ---------------------------------------------------------------------
// The store under the sweep executor.

TEST(StoreSweep, WarmRunServesEveryCellByteIdentically) {
  const std::string dir = freshDir("store_warm");
  ScopedEnv env("WP_STORE", dir.c_str());

  double e_cold = 0.0;
  {
    driver::SweepExecutor cold({"crc"}, energy::EnergyParams{}, 0, 1);
    ASSERT_NE(cold.store(), nullptr);
    EXPECT_FALSE(cold.store()->degraded());
    e_cold = cold.averageNormalized(kXScale, wpSpec(), icacheEnergy);
    EXPECT_EQ(cold.metrics().counter("cells.computed").value(), 2u);
    EXPECT_EQ(cold.metrics().counter("store.misses").value(), 2u);
    EXPECT_EQ(cold.metrics().counter("store.records_written").value(), 2u);
  }

  driver::SweepExecutor warm({"crc"}, energy::EnergyParams{}, 0, 1);
  EXPECT_EQ(warm.averageNormalized(kXScale, wpSpec(), icacheEnergy), e_cold)
      << "a warm store must reproduce the cold numbers byte-identically";
  EXPECT_EQ(warm.metrics().counter("cells.computed").value(), 0u)
      << "every cell must come from the store";
  EXPECT_EQ(warm.metrics().counter("cells.from_store").value(), 2u);
  EXPECT_EQ(warm.metrics().counter("store.hits").value(), 2u);
  const auto& p = warm.prepared().at(0);
  EXPECT_EQ(warm.tryRun(p, kXScale, wpSpec()).attempts, 0u)
      << "0 attempts marks a cell served without running anything";
  EXPECT_EQ(filesWithSuffix(dir, ".lock").size(), 0u);
}

TEST(StoreSweep, TamperedRecordIsRecomputedNotServed) {
  const std::string dir = freshDir("store_sweep_tamper");
  ScopedEnv env("WP_STORE", dir.c_str());
  double e_cold = 0.0;
  {
    driver::SweepExecutor cold({"crc"}, energy::EnergyParams{}, 0, 1);
    e_cold = cold.averageNormalized(kXScale, wpSpec(), icacheEnergy);
  }
  const auto records = filesWithSuffix(dir, ".rec");
  ASSERT_EQ(records.size(), 2u);
  // Tamper one digit of one record's payload.
  const std::string victim = dir + "/" + records.front();
  std::string body;
  {
    std::ifstream in(victim);
    body.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  const std::size_t at = body.find("\"instructions\": ");
  ASSERT_NE(at, std::string::npos);
  body[at + 16] = body[at + 16] == '9' ? '8' : '9';
  {
    std::ofstream out(victim);
    out << body;
  }

  driver::SweepExecutor warm({"crc"}, energy::EnergyParams{}, 0, 1);
  EXPECT_EQ(warm.averageNormalized(kXScale, wpSpec(), icacheEnergy), e_cold)
      << "a tampered store may cost compute, never correctness";
  EXPECT_EQ(warm.metrics().counter("store.rejected").value(), 1u);
  EXPECT_EQ(warm.metrics().counter("cells.from_store").value(), 1u);
  EXPECT_EQ(warm.metrics().counter("cells.computed").value(), 1u)
      << "only the tampered cell recomputes";
}

TEST(StoreSweep, UnusableStorePathDegradesLoudlyToComputeEverything) {
  // WP_STORE pointing at a regular file: mkdir and every record open
  // fail. (chmod-based unwritability is untestable as root, which
  // ignores permission bits.)
  const std::string path = testing::TempDir() + "store_not_a_dir";
  {
    std::ofstream out(path);
    out << "i am a file\n";
  }
  ScopedEnv env("WP_STORE", path.c_str());

  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1);
  ASSERT_NE(suite.store(), nullptr);
  EXPECT_TRUE(suite.store()->degraded());
  EXPECT_EQ(suite.metrics().counter("store.degraded").value(), 1u);
  // The sweep itself must be unaffected: everything computes normally.
  EXPECT_GT(suite.averageNormalized(kXScale, wpSpec(), icacheEnergy), 0.0);
  EXPECT_EQ(suite.metrics().counter("cells.computed").value(), 2u);
  EXPECT_EQ(suite.metrics().counter("store.hits").value(), 0u);
  EXPECT_TRUE(suite.quarantined().empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Two processes racing one store.

TEST(StoreRace, TwoProcessesShareOneStoreWithoutDoubleComputeOrLockLitter) {
  const std::string dir = freshDir("store_race");
  const std::string child_out = testing::TempDir() + "store_race_child.bin";
  std::remove(child_out.c_str());
  ScopedEnv env("WP_STORE", dir.c_str());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // The racing sweep: same grid, same seed, same store.
    double avg = 0.0;
    {
      driver::SweepExecutor child(fastSubset(), energy::EnergyParams{}, 0, 2);
      child.runAll({{kXScale, wpSpec()}});
      avg = child.averageNormalized(kXScale, wpSpec(), icacheEnergy);
    }
    std::ofstream out(child_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&avg), sizeof avg);
    out.flush();
    std::_Exit(out.good() ? 0 : 1);
  }

  driver::SweepExecutor mine(fastSubset(), energy::EnergyParams{}, 0, 2);
  mine.runAll({{kXScale, wpSpec()}});
  const double my_avg =
      mine.averageNormalized(kXScale, wpSpec(), icacheEnergy);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  double child_avg = 0.0;
  {
    std::ifstream in(child_out, std::ios::binary);
    ASSERT_TRUE(in.read(reinterpret_cast<char*>(&child_avg),
                        sizeof child_avg)
                    .good());
  }
  EXPECT_EQ(my_avg, child_avg)
      << "both processes must print byte-identical tables";

  // Exactly one record per cell (2 workloads x baseline+way-placement),
  // no lease litter: the loser of each race waited and hit, it never
  // wrote a second record or abandoned a lock.
  EXPECT_EQ(filesWithSuffix(dir, ".rec").size(), 4u);
  EXPECT_EQ(filesWithSuffix(dir, ".lock").size(), 0u);
  EXPECT_EQ(filesWithSuffix(dir, "").size(), 6u)
      << "nothing but records (and . / ..) may remain in the store";
  std::remove(child_out.c_str());
}

TEST(StoreRace, SigkilledLeaseHolderIsReclaimedByTheSurvivor) {
  const std::string dir = freshDir("store_race_kill");
  int ready[2];
  ASSERT_EQ(::pipe(ready), 0);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // The doomed holder: acquires the lease, reports readiness, wedges.
    ::close(ready[0]);
    MetricsRegistry metrics;
    driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);
    auto held = store.open("cell/a", 1);
    const char ok = held.lease.owned() ? '1' : '0';
    (void)!::write(ready[1], &ok, 1);
    for (;;) ::pause();  // SIGKILL is the only way out
  }
  ::close(ready[1]);
  char ok = '0';
  ASSERT_EQ(::read(ready[0], &ok, 1), 1);
  ::close(ready[0]);
  ASSERT_EQ(ok, '1') << "the child must own the lease before dying";
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));

  MetricsRegistry metrics;
  driver::ResultStore store({dir, 600000}, 0, metrics, nullptr);
  auto out = store.open("cell/a", 1);
  EXPECT_FALSE(out.record.has_value());
  EXPECT_TRUE(out.lease.owned())
      << "the survivor must reclaim a SIGKILLed holder's lease";
  EXPECT_EQ(metrics.counter("store.leases_reclaimed").value(), 1u);
}

}  // namespace
}  // namespace wp
