// Cross-cutting accounting invariants, checked on real workload runs
// under every scheme: if these hold, the energy model's inputs are
// trustworthy.
#include <gtest/gtest.h>

#include "driver/runner.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kGeom{16 * 1024, 32, 16};

struct SchemeCase {
  const char* name;
  driver::SchemeSpec spec;
};

class CounterInvariants : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(CounterInvariants, HoldOnRealRun) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("rijndael_e");
  const driver::RunResult r = runner.run(p, kGeom, GetParam().spec);
  const cache::CacheStats& c = r.stats.icache;
  const cache::FetchStats& f = r.stats.fetch;
  const u32 ways = kGeom.ways;

  // Every access is exactly one lookup kind; every access hits or misses.
  EXPECT_EQ(c.accesses,
            c.full_lookups + c.single_way_lookups + c.partial_lookups +
                c.no_tag_lookups);
  EXPECT_EQ(c.accesses, c.hits + c.misses);

  // Tag activity decomposes exactly over lookup kinds (squashed probes
  // from way-hint mispredicts add one compare each).
  EXPECT_EQ(c.tag_compares,
            c.full_lookups * ways + c.partial_lookups * (ways - 1) +
                c.single_way_lookups + r.stats.squashed_probes);
  EXPECT_EQ(c.tag_compares, c.matchline_precharges);

  // One delivered word per fetch.
  EXPECT_EQ(c.data_word_reads, f.fetches);

  // Fetch counts: one instruction fetched per retired instruction.
  EXPECT_EQ(f.fetches, r.stats.instructions);

  // The I-TLB is consulted on every fetch.
  EXPECT_EQ(r.stats.itlb.accesses, f.fetches);

  // Every fill is caused by a missing fetch. Way prediction can count
  // two lookup misses (probe + remaining ways) for one absent line, so
  // fills <= misses; the other schemes miss exactly once per fill.
  if (GetParam().spec.scheme == cache::Scheme::kWayPrediction) {
    EXPECT_LE(c.line_fills, c.misses);
  } else {
    EXPECT_EQ(c.line_fills, c.misses);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CounterInvariants,
    ::testing::Values(
        SchemeCase{"baseline", driver::SchemeSpec::baseline()},
        SchemeCase{"wayplacement", driver::SchemeSpec::wayPlacement(4096)},
        SchemeCase{"waymemo", driver::SchemeSpec::wayMemoization()},
        SchemeCase{"waypred", driver::SchemeSpec::wayPrediction()}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(EnergyInvariants, SchemesNeverChangeArchitecturalWork) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("tiffdither");
  const auto base = runner.run(p, kGeom, driver::SchemeSpec::baseline());
  const auto wm = runner.run(p, kGeom, driver::SchemeSpec::wayMemoization());
  const auto pred = runner.run(p, kGeom, driver::SchemeSpec::wayPrediction());
  // Same binary, same input: identical instruction counts and D-cache
  // behaviour; only the fetch path differs.
  EXPECT_EQ(base.stats.instructions, wm.stats.instructions);
  EXPECT_EQ(base.stats.instructions, pred.stats.instructions);
  EXPECT_EQ(base.stats.dcache.accesses, wm.stats.dcache.accesses);
  EXPECT_EQ(base.stats.dcache.hits, pred.stats.dcache.hits);
  EXPECT_EQ(base.stats.branches.branches, wm.stats.branches.branches);
}

TEST(EnergyInvariants, TagEnergyOrderingAcrossSchemes) {
  driver::Runner runner;
  const driver::PreparedWorkload p = runner.prepare("fft");
  const auto base = runner.run(p, kGeom, driver::SchemeSpec::baseline());
  const auto wp = runner.run(p, kGeom, driver::SchemeSpec::wayPlacement(4096));
  const auto wm = runner.run(p, kGeom, driver::SchemeSpec::wayMemoization());
  // Both optimized schemes eliminate most tag comparisons.
  EXPECT_LT(wp.stats.icache.tag_compares, base.stats.icache.tag_compares / 5);
  EXPECT_LT(wm.stats.icache.tag_compares, base.stats.icache.tag_compares / 5);
  // And the energy model sees it in the tag component.
  EXPECT_LT(wp.energy.icache.tag, base.energy.icache.tag / 5);
}

}  // namespace
}  // namespace wp
