// Tests for the measured-energy layout autotuner: strict WP_TUNE_*
// parsing, deterministic seeded search, the improve-or-match guarantee
// against the paper's ordering, and the per-workload read-out.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "driver/autotune.hpp"
#include "mem/memory.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

driver::AutotuneConfig configWith(unsigned evals) {
  driver::AutotuneConfig c;
  c.evals = evals;
  return c;
}

TEST(AutotuneConfig, DefaultsWhenEnvIsUnset) {
  unsetenv("WP_TUNE_EVALS");
  unsetenv("WP_TUNE_OBJECTIVE");
  const driver::AutotuneConfig c = driver::AutotuneConfig::fromEnv();
  EXPECT_EQ(c.evals, 24u);
  EXPECT_EQ(c.objective, driver::AutotuneConfig::Objective::kIcacheEnergy);
  EXPECT_STREQ(c.objectiveName(), "icache_energy");
}

TEST(AutotuneConfig, ParsesTheEnvKnobs) {
  setenv("WP_TUNE_EVALS", "12", 1);
  setenv("WP_TUNE_OBJECTIVE", "ed_product", 1);
  const driver::AutotuneConfig c = driver::AutotuneConfig::fromEnv();
  EXPECT_EQ(c.evals, 12u);
  EXPECT_EQ(c.objective, driver::AutotuneConfig::Objective::kEdProduct);
  EXPECT_STREQ(c.objectiveName(), "ed_product");
  unsetenv("WP_TUNE_EVALS");
  unsetenv("WP_TUNE_OBJECTIVE");
}

TEST(AutotuneConfigDeathTest, GarbageBudgetExitsWithStatusOne) {
  // Same strictness as WP_JOBS / WP_SEED: a typo kills the run at
  // startup instead of silently tuning with the wrong budget.
  for (const char* bad : {"soon", "0", "-3", "1000001", "12moar", ""}) {
    if (*bad == '\0') continue;  // empty means default, tested above
    EXPECT_EXIT(
        {
          setenv("WP_TUNE_EVALS", bad, 1);
          (void)driver::AutotuneConfig::fromEnv();
        },
        ::testing::ExitedWithCode(1), "WP_TUNE_EVALS")
        << bad;
  }
}

TEST(AutotuneConfigDeathTest, UnknownObjectiveExitsWithStatusOne) {
  EXPECT_EXIT(
      {
        unsetenv("WP_TUNE_EVALS");
        setenv("WP_TUNE_OBJECTIVE", "joules", 1);
        (void)driver::AutotuneConfig::fromEnv();
      },
      ::testing::ExitedWithCode(1), "WP_TUNE_OBJECTIVE");
}

TEST(Autotune, StartsFromThePaperSchemeAndNeverRegresses) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
  const driver::AutotuneResult r =
      driver::autotuneLayout(suite, kXScale, 1024, configWith(6));

  EXPECT_EQ(r.start_spec, layout::defaultStrategyName());
  ASSERT_FALSE(r.trajectory.empty());
  EXPECT_EQ(r.trajectory.front().spec, r.start_spec);
  EXPECT_GE(r.evals_used, 1u);
  EXPECT_LE(r.evals_used, 6u);
  EXPECT_EQ(r.trajectory.size(), r.evals_used);
  for (unsigned i = 0; i < r.trajectory.size(); ++i) {
    EXPECT_EQ(r.trajectory[i].eval, i + 1);
  }

  // Strict-improvement acceptance: the best found can only beat or
  // match the starting point on the objective.
  ASSERT_GT(r.start.included, 0u);
  ASSERT_GT(r.best.included, 0u);
  EXPECT_LE(r.best.mean, r.start.mean);
  // The winner is a resolvable spec (it becomes WP_LAYOUT material).
  EXPECT_NO_THROW((void)layout::resolveStrategy(r.best_spec));
}

TEST(Autotune, BudgetOfOnePricesOnlyTheStartingPoint) {
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
  const driver::AutotuneResult r =
      driver::autotuneLayout(suite, kXScale, 1024, configWith(1));
  EXPECT_EQ(r.evals_used, 1u);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.best_spec, r.start_spec);
  EXPECT_EQ(r.best.mean, r.start.mean);
}

TEST(Autotune, SameSeedReplaysTheIdenticalTrajectory) {
  // Two fresh executors, same seed and budget: byte-identical search —
  // specs, order, objective values, winner.
  const auto run = [] {
    driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 2);
    return driver::autotuneLayout(suite, kXScale, 1024, configWith(5));
  };
  const driver::AutotuneResult a = run();
  const driver::AutotuneResult b = run();
  EXPECT_EQ(a.best_spec, b.best_spec);
  EXPECT_EQ(a.evals_used, b.evals_used);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (unsigned i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_EQ(a.trajectory[i].spec, b.trajectory[i].spec) << i;
    EXPECT_EQ(a.trajectory[i].objective.mean, b.trajectory[i].objective.mean)
        << i;
    EXPECT_EQ(a.trajectory[i].improved, b.trajectory[i].improved) << i;
  }
  EXPECT_EQ(a.best.mean, b.best.mean);
}

TEST(Autotune, DifferentSeedsMayExploreDifferentAxisOrders) {
  // The axis shuffle is part of the seed's experiment identity: the
  // trajectory after the start point is seed-dependent (the *result*
  // may coincide; the candidate order generally does not).
  driver::SweepExecutor s0({"crc"}, energy::EnergyParams{}, 0, 2);
  driver::SweepExecutor s7({"crc"}, energy::EnergyParams{}, 7, 2);
  const driver::AutotuneResult a =
      driver::autotuneLayout(s0, kXScale, 1024, configWith(4));
  const driver::AutotuneResult b =
      driver::autotuneLayout(s7, kXScale, 1024, configWith(4));
  std::vector<std::string> sa, sb;
  for (const auto& st : a.trajectory) sa.push_back(st.spec);
  for (const auto& st : b.trajectory) sb.push_back(st.spec);
  EXPECT_NE(sa, sb);
}

TEST(Autotune, PerWorkloadReadOutRecommendsAPageMultipleArea) {
  driver::SweepExecutor suite({"crc", "bitcount"}, energy::EnergyParams{}, 0,
                              2);
  const driver::AutotuneResult r =
      driver::autotuneLayout(suite, kXScale, 1024, configWith(6));
  ASSERT_EQ(r.per_workload.size(), 2u);
  EXPECT_EQ(r.per_workload[0].workload, "crc");
  EXPECT_EQ(r.per_workload[1].workload, "bitcount");
  for (const driver::AutotuneWorkloadBest& wb : r.per_workload) {
    ASSERT_FALSE(wb.quarantined) << wb.workload;
    EXPECT_FALSE(wb.spec.empty()) << wb.workload;
    EXPECT_GT(wb.objective, 0.0) << wb.workload;
    // The dominant-block recommendation is a whole number of pages and
    // covers what it claims to cover.
    ASSERT_GT(wb.recommended_wp_bytes, 0u) << wb.workload;
    EXPECT_EQ(wb.recommended_wp_bytes % mem::kPageBytes, 0u) << wb.workload;
    EXPECT_GT(wb.recommended_coverage, 0.0) << wb.workload;
    EXPECT_LE(wb.recommended_coverage, 1.0) << wb.workload;
  }
}

}  // namespace
}  // namespace wp
