// Builder tests: basic-block formation, label discipline, validation
// errors, data layout and the module invariants.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"

namespace wp {
namespace {

using namespace asmkit;

TEST(AsmkitBlocks, StraightLineIsOneBlockPerTerminator) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.movi(r0, 1);
  f.addi(r0, r0, 1);
  f.ret();
  const ir::Module m = mb.build();
  // main has one block; _start has one block (call+halt splits: bl ends
  // a block, halt ends the next).
  const ir::Function* main_fn = m.findFunction("main");
  ASSERT_NE(main_fn, nullptr);
  EXPECT_EQ(main_fn->block_ids.size(), 1u);
  EXPECT_EQ(m.blocks[main_fn->block_ids[0]].insts.size(), 3u);
}

TEST(AsmkitBlocks, ConditionalBranchSplitsWithFallthrough) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto target = f.label();
  f.movi(r0, 0);
  f.cmpiBr(r0, 0, Cond::kEq, target);
  f.movi(r0, 1);
  f.bind(target);
  f.ret();
  const ir::Module m = mb.build();
  const ir::Function* fn = m.findFunction("main");
  ASSERT_EQ(fn->block_ids.size(), 3u);
  const ir::BasicBlock& b0 = m.blocks[fn->block_ids[0]];
  const ir::BasicBlock& b1 = m.blocks[fn->block_ids[1]];
  EXPECT_TRUE(b0.fallthrough.has_value());
  EXPECT_EQ(*b0.fallthrough, fn->block_ids[1]);
  EXPECT_TRUE(b1.fallthrough.has_value());
}

TEST(AsmkitBlocks, CallEndsBlockWithFallthrough) {
  ModuleBuilder mb;
  auto& g = mb.func("callee");
  g.ret();
  auto& f = mb.func("main");
  f.prologue();
  f.call("callee");
  f.movi(r0, 1);
  f.epilogue();
  const ir::Module m = mb.build();
  const ir::Function* fn = m.findFunction("main");
  // prologue+call | movi+epilogue-loads | (ret ends).
  ASSERT_GE(fn->block_ids.size(), 2u);
  const ir::BasicBlock& callblk = m.blocks[fn->block_ids[0]];
  EXPECT_EQ(callblk.insts.back().raw.op, isa::Opcode::kBl);
  EXPECT_TRUE(callblk.fallthrough.has_value());
}

TEST(AsmkitLabels, DoubleBindRejected) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto l = f.label();
  f.bind(l);
  EXPECT_THROW(f.bind(l), SimError);
}

TEST(AsmkitLabels, UnboundLabelRejectedAtBuild) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto l = f.label();
  f.jmp(l);
  EXPECT_THROW(mb.build(), SimError);
}

TEST(AsmkitLabels, MultipleLabelsOneBlock) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto a = f.label();
  const auto b = f.label();
  f.movi(r0, 0);
  f.cmpiBr(r0, 1, Cond::kEq, a);
  f.cmpiBr(r0, 2, Cond::kEq, b);
  f.bind(a);
  f.bind(b);
  f.ret();
  EXPECT_NO_THROW(mb.build());
}

TEST(AsmkitErrors, FallOffFunctionEndRejected) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.movi(r0, 1);  // no terminator
  EXPECT_THROW(mb.build(), SimError);
}

TEST(AsmkitErrors, UnreachableCodeAfterJumpRejected) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto l = f.label();
  f.bind(l);
  f.jmp(l);
  EXPECT_THROW(f.movi(r0, 1), SimError);
}

TEST(AsmkitErrors, CallToUnknownFunctionRejected) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.call("missing");
  f.ret();
  EXPECT_THROW(mb.build(), SimError);
}

TEST(AsmkitErrors, UnknownDataSymbolRejected) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.la(r0, "missing");
  f.ret();
  EXPECT_THROW(mb.build(), SimError);
}

TEST(AsmkitData, AlignmentAndOffsets) {
  ModuleBuilder mb;
  const u32 a = mb.data("a", std::vector<u8>{1, 2, 3});
  const u32 b = mb.data("b", std::vector<u8>{4}, 4);
  const u32 c = mb.bss("c", 10, 8);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 4u);  // re-aligned past the 3 bytes
  EXPECT_EQ(c, 8u);
  auto& f = mb.func("main");
  f.ret();
  const ir::Module m = mb.build();
  EXPECT_EQ(m.findSymbol("b")->offset, 4u);
  EXPECT_EQ(m.data_init.size(), 18u);
  EXPECT_EQ(m.data_init[4], 4);
}

TEST(AsmkitData, DataWordsLittleEndian) {
  ModuleBuilder mb;
  mb.dataWords("w", std::vector<u32>{0x11223344u});
  auto& f = mb.func("main");
  f.ret();
  const ir::Module m = mb.build();
  EXPECT_EQ(m.data_init[0], 0x44);
  EXPECT_EQ(m.data_init[3], 0x11);
}

TEST(AsmkitModule, StartFunctionSynthesized) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.ret();
  const ir::Module m = mb.build();
  EXPECT_NE(m.findFunction("_start"), nullptr);
  EXPECT_EQ(m.entry_function, "_start");
  EXPECT_NO_THROW(m.validate());
}

TEST(AsmkitModule, StaticInstructionCount) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  f.movi(r0, 1);
  f.movi(r1, 2);
  f.ret();
  const ir::Module m = mb.build();
  // main: 3, _start: bl + halt = 2.
  EXPECT_EQ(m.staticInstructions(), 5u);
}

}  // namespace
}  // namespace wp
