// Whole-processor tests: fetch/execute integration, cache statistics on
// controlled programs, timing of misses, and energy pricing plumbing.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"
#include "layout/layout.hpp"
#include "sim/processor.hpp"

namespace wp {
namespace {

using namespace asmkit;

// A program whose behaviour is easy to count: a loop of `iters`
// iterations touching `array_bytes` of data.
ir::Module loopProgram(i32 iters, i32 stride_elems) {
  ModuleBuilder mb;
  mb.bss("array", 64 * 1024);
  mb.bss("out", 4);
  auto& f = mb.func("main");
  f.prologue({r4, r5, r6});
  f.la(r4, "array");
  f.movi(r5, 0);           // index (bytes)
  f.movi32(r6, iters);
  const auto loop = f.label();
  f.bind(loop);
  f.ldrx(r0, r4, r5);
  f.addi(r0, r0, 1);
  f.strx(r0, r4, r5);
  f.addi(r5, r5, stride_elems * 4);
  f.andi(r5, r5, 0xFFFC);  // wrap within 64 KB
  f.subi(r6, r6, 1);
  f.cmpiBr(r6, 0, Cond::kNe, loop);
  f.la(r0, "out");
  f.str(r6, r0);
  f.epilogue({r4, r5, r6});
  return mb.build();
}

sim::RunStats runProgram(const ir::Module& m, const sim::MachineConfig& cfg) {
  const mem::Image img = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  mem::Memory memory;
  img.loadInto(memory);
  sim::Processor proc(cfg, img, memory);
  return proc.run();
}

TEST(Processor, InstructionCountMatchesProgram) {
  const ir::Module m = loopProgram(1000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  // 8 loop instructions x 1000 (cmpiBr is cmp + branch) + prologue,
  // epilogue, setup and _start.
  EXPECT_GT(s.instructions, 8000u);
  EXPECT_LT(s.instructions, 8100u);
  EXPECT_EQ(s.fetch.fetches, s.instructions);
}

TEST(Processor, TinyLoopHitsInICache) {
  const ir::Module m = loopProgram(5000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  const double hit_rate = static_cast<double>(s.icache.hits) /
                          static_cast<double>(s.icache.accesses);
  EXPECT_GT(hit_rate, 0.999);
}

TEST(Processor, StridedDataMissesInDCache) {
  // Stride of one cache line over 64 KB wraps through 2048 lines with a
  // 32 KB D-cache: every access misses in steady state.
  const ir::Module m = loopProgram(4000, 8);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  const double miss_rate = static_cast<double>(s.dcache.misses) /
                           static_cast<double>(s.dcache.accesses);
  EXPECT_GT(miss_rate, 0.45);  // ld + st pairs: second access hits
  EXPECT_GT(s.dcache.writebacks, 1000u);
  EXPECT_GT(s.memLineTransfers(), 2000u);
}

TEST(Processor, MissesCostCycles) {
  const ir::Module seq = loopProgram(4000, 1);
  const ir::Module strided = loopProgram(4000, 8);
  const sim::RunStats fast = runProgram(seq, sim::baselineMachine());
  const sim::RunStats slow = runProgram(strided, sim::baselineMachine());
  const double fast_cpi = static_cast<double>(fast.cycles) /
                          static_cast<double>(fast.instructions);
  const double slow_cpi = static_cast<double>(slow.cycles) /
                          static_cast<double>(slow.instructions);
  EXPECT_GT(slow_cpi, 2.0 * fast_cpi);
}

TEST(Processor, RunawayGuestIsCaught) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto loop = f.label();
  f.bind(loop);
  f.jmp(loop);
  const ir::Module m = mb.build();
  sim::MachineConfig cfg = sim::baselineMachine();
  cfg.max_instructions = 10000;
  const mem::Image img = layout::linkWithPolicy(m, layout::Policy::kOriginal);
  mem::Memory memory;
  img.loadInto(memory);
  sim::Processor proc(cfg, img, memory);
  EXPECT_THROW(proc.run(), SimError);
}

TEST(Processor, PricingUsesAllComponents) {
  const ir::Module m = loopProgram(2000, 8);
  const sim::MachineConfig cfg = sim::baselineMachine();
  const sim::RunStats s = runProgram(m, cfg);
  const energy::EnergyModel model;
  const energy::RunEnergy e = sim::Processor::price(model, cfg, s);
  EXPECT_GT(e.icache.total(), 0.0);
  EXPECT_GT(e.dcache.total(), 0.0);
  EXPECT_GT(e.itlb, 0.0);
  EXPECT_GT(e.core, 0.0);
  EXPECT_GT(e.memory, 0.0);
  EXPECT_EQ(e.hint, 0.0);  // baseline has no way-hint bit
  const sim::MachineConfig wp_cfg =
      sim::baselineMachine(cache::Scheme::kWayPlacement, 1024);
  const energy::RunEnergy ewp = sim::Processor::price(model, wp_cfg, s);
  EXPECT_GT(ewp.hint, 0.0);
}

TEST(Processor, BranchStatsPopulated) {
  const ir::Module m = loopProgram(3000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  EXPECT_GT(s.branches.branches, 3000u);
  // A steady loop branch predicts almost perfectly.
  EXPECT_LT(s.branches.mispredicts * 50, s.branches.branches);
}

}  // namespace
}  // namespace wp
