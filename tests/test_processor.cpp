// Whole-processor tests: fetch/execute integration, cache statistics on
// controlled programs, timing of misses, and energy pricing plumbing.
#include <gtest/gtest.h>

#include "asmkit/builder.hpp"
#include "layout/strategy.hpp"
#include "sim/processor.hpp"

namespace wp {
namespace {

using namespace asmkit;

// A program whose behaviour is easy to count: a loop of `iters`
// iterations touching `array_bytes` of data.
ir::Module loopProgram(i32 iters, i32 stride_elems) {
  ModuleBuilder mb;
  mb.bss("array", 64 * 1024);
  mb.bss("out", 4);
  auto& f = mb.func("main");
  f.prologue({r4, r5, r6});
  f.la(r4, "array");
  f.movi(r5, 0);           // index (bytes)
  f.movi32(r6, iters);
  const auto loop = f.label();
  f.bind(loop);
  f.ldrx(r0, r4, r5);
  f.addi(r0, r0, 1);
  f.strx(r0, r4, r5);
  f.addi(r5, r5, stride_elems * 4);
  f.andi(r5, r5, 0xFFFC);  // wrap within 64 KB
  f.subi(r6, r6, 1);
  f.cmpiBr(r6, 0, Cond::kNe, loop);
  f.la(r0, "out");
  f.str(r6, r0);
  f.epilogue({r4, r5, r6});
  return mb.build();
}

sim::RunStats runProgram(const ir::Module& m, const sim::MachineConfig& cfg) {
  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  sim::Processor proc(cfg, img, memory);
  return proc.run();
}

TEST(Processor, InstructionCountMatchesProgram) {
  const ir::Module m = loopProgram(1000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  // 8 loop instructions x 1000 (cmpiBr is cmp + branch) + prologue,
  // epilogue, setup and _start.
  EXPECT_GT(s.instructions, 8000u);
  EXPECT_LT(s.instructions, 8100u);
  EXPECT_EQ(s.fetch.fetches, s.instructions);
}

TEST(Processor, TinyLoopHitsInICache) {
  const ir::Module m = loopProgram(5000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  const double hit_rate = static_cast<double>(s.icache.hits) /
                          static_cast<double>(s.icache.accesses);
  EXPECT_GT(hit_rate, 0.999);
}

TEST(Processor, StridedDataMissesInDCache) {
  // Stride of one cache line over 64 KB wraps through 2048 lines with a
  // 32 KB D-cache: every access misses in steady state.
  const ir::Module m = loopProgram(4000, 8);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  const double miss_rate = static_cast<double>(s.dcache.misses) /
                           static_cast<double>(s.dcache.accesses);
  EXPECT_GT(miss_rate, 0.45);  // ld + st pairs: second access hits
  EXPECT_GT(s.dcache.writebacks, 1000u);
  EXPECT_GT(s.memLineTransfers(), 2000u);
}

TEST(Processor, MissesCostCycles) {
  const ir::Module seq = loopProgram(4000, 1);
  const ir::Module strided = loopProgram(4000, 8);
  const sim::RunStats fast = runProgram(seq, sim::baselineMachine());
  const sim::RunStats slow = runProgram(strided, sim::baselineMachine());
  const double fast_cpi = static_cast<double>(fast.cycles) /
                          static_cast<double>(fast.instructions);
  const double slow_cpi = static_cast<double>(slow.cycles) /
                          static_cast<double>(slow.instructions);
  EXPECT_GT(slow_cpi, 2.0 * fast_cpi);
}

TEST(Processor, RunawayGuestIsCaught) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto loop = f.label();
  f.bind(loop);
  f.jmp(loop);
  const ir::Module m = mb.build();
  sim::MachineConfig cfg = sim::baselineMachine();
  cfg.max_instructions = 10000;
  const mem::Image img = layout::layoutImage(m, "original");
  mem::Memory memory;
  img.loadInto(memory);
  sim::Processor proc(cfg, img, memory);
  EXPECT_THROW(proc.run(), SimError);
}

TEST(Processor, PricingUsesAllComponents) {
  const ir::Module m = loopProgram(2000, 8);
  const sim::MachineConfig cfg = sim::baselineMachine();
  const sim::RunStats s = runProgram(m, cfg);
  const energy::EnergyModel model;
  const energy::RunEnergy e = sim::Processor::price(model, cfg, s);
  EXPECT_GT(e.icache.total(), 0.0);
  EXPECT_GT(e.dcache.total(), 0.0);
  EXPECT_GT(e.itlb, 0.0);
  EXPECT_GT(e.core, 0.0);
  EXPECT_GT(e.memory, 0.0);
  EXPECT_EQ(e.hint, 0.0);  // baseline has no way-hint bit
  const sim::MachineConfig wp_cfg =
      sim::baselineMachine(cache::Scheme::kWayPlacement, 1024);
  const energy::RunEnergy ewp = sim::Processor::price(model, wp_cfg, s);
  EXPECT_GT(ewp.hint, 0.0);
}

TEST(Processor, BranchStatsPopulated) {
  const ir::Module m = loopProgram(3000, 1);
  const sim::RunStats s = runProgram(m, sim::baselineMachine());
  EXPECT_GT(s.branches.branches, 3000u);
  // A steady loop branch predicts almost perfectly.
  EXPECT_LT(s.branches.mispredicts * 50, s.branches.branches);
}

// Every field of two RunStats, element by element: the block engine's
// contract is that no counter anywhere moves differently.
void expectSameRunStats(const sim::RunStats& a, const sim::RunStats& b) {
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.retired_pc_hash, b.retired_pc_hash);
  EXPECT_EQ(a.dataflow_hash, b.dataflow_hash);
  const auto expectSameCache = [](const cache::CacheStats& x,
                                  const cache::CacheStats& y) {
    EXPECT_EQ(x.accesses, y.accesses);
    EXPECT_EQ(x.hits, y.hits);
    EXPECT_EQ(x.misses, y.misses);
    EXPECT_EQ(x.tag_compares, y.tag_compares);
    EXPECT_EQ(x.matchline_precharges, y.matchline_precharges);
    EXPECT_EQ(x.full_lookups, y.full_lookups);
    EXPECT_EQ(x.single_way_lookups, y.single_way_lookups);
    EXPECT_EQ(x.partial_lookups, y.partial_lookups);
    EXPECT_EQ(x.no_tag_lookups, y.no_tag_lookups);
    EXPECT_EQ(x.data_word_reads, y.data_word_reads);
    EXPECT_EQ(x.data_word_writes, y.data_word_writes);
    EXPECT_EQ(x.line_fills, y.line_fills);
    EXPECT_EQ(x.writebacks, y.writebacks);
    EXPECT_EQ(x.link_reads, y.link_reads);
    EXPECT_EQ(x.link_writes, y.link_writes);
    EXPECT_EQ(x.link_invalidations, y.link_invalidations);
    EXPECT_EQ(x.linked_accesses, y.linked_accesses);
    EXPECT_EQ(x.duplicate_invalidations, y.duplicate_invalidations);
  };
  expectSameCache(a.icache, b.icache);
  expectSameCache(a.dcache, b.dcache);
  EXPECT_EQ(a.itlb.accesses, b.itlb.accesses);
  EXPECT_EQ(a.itlb.misses, b.itlb.misses);
  EXPECT_EQ(a.itlb.walks, b.itlb.walks);
  EXPECT_EQ(a.fetch.fetches, b.fetch.fetches);
  EXPECT_EQ(a.fetch.sameline_skips, b.fetch.sameline_skips);
  EXPECT_EQ(a.fetch.wp_single_way, b.fetch.wp_single_way);
  EXPECT_EQ(a.fetch.hint_correct, b.fetch.hint_correct);
  EXPECT_EQ(a.fetch.hint_miss_lost_saving, b.fetch.hint_miss_lost_saving);
  EXPECT_EQ(a.fetch.hint_miss_second_access, b.fetch.hint_miss_second_access);
  EXPECT_EQ(a.fetch.waypred_correct, b.fetch.waypred_correct);
  EXPECT_EQ(a.fetch.waypred_mispredict, b.fetch.waypred_mispredict);
  EXPECT_EQ(a.fetch.extra_cycles, b.fetch.extra_cycles);
  EXPECT_EQ(a.fetch.link_faults_dropped, b.fetch.link_faults_dropped);
  EXPECT_EQ(a.branches.branches, b.branches.branches);
  EXPECT_EQ(a.branches.mispredicts, b.branches.mispredicts);
  EXPECT_EQ(a.squashed_probes, b.squashed_probes);
  EXPECT_EQ(a.link_flash_clears, b.link_flash_clears);
  EXPECT_EQ(a.icache_data_area_factor, b.icache_data_area_factor);
  EXPECT_EQ(a.drowsy.wakeups, b.drowsy.wakeups);
  EXPECT_EQ(a.drowsy.awake_line_ticks, b.drowsy.awake_line_ticks);
  EXPECT_EQ(a.drowsy.drowsy_line_ticks, b.drowsy.drowsy_line_ticks);
  EXPECT_EQ(a.drowsy.ticks, b.drowsy.ticks);
  EXPECT_EQ(a.icache_lines, b.icache_lines);
}

sim::MachineConfig engineConfig(sim::Engine e, cache::Scheme scheme,
                                u32 wp_area = 0) {
  sim::MachineConfig cfg = sim::baselineMachine(scheme, wp_area);
  cfg.engine = e;
  return cfg;
}

TEST(Engine, BlockMatchesInterpreterAcrossSchemes) {
  const ir::Module m = loopProgram(2000, 8);  // D-cache misses included
  const struct {
    cache::Scheme scheme;
    u32 wp_area;
  } cases[] = {
      {cache::Scheme::kBaseline, 0},
      {cache::Scheme::kWayPlacement, 4096},
      {cache::Scheme::kWayMemoization, 0},
      {cache::Scheme::kWayPrediction, 0},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(cache::schemeName(c.scheme));
    const sim::RunStats interp = runProgram(
        m, engineConfig(sim::Engine::kInterp, c.scheme, c.wp_area));
    const sim::RunStats block =
        runProgram(m, engineConfig(sim::Engine::kBlock, c.scheme, c.wp_area));
    expectSameRunStats(interp, block);
  }
}

TEST(Engine, BlockMatchesInterpreterWithoutIntralineSkip) {
  const ir::Module m = loopProgram(1500, 1);
  for (const cache::Scheme scheme :
       {cache::Scheme::kWayPlacement, cache::Scheme::kWayMemoization,
        cache::Scheme::kWayPrediction}) {
    SCOPED_TRACE(cache::schemeName(scheme));
    const u32 area = scheme == cache::Scheme::kWayPlacement ? 4096u : 0u;
    sim::MachineConfig interp_cfg =
        engineConfig(sim::Engine::kInterp, scheme, area);
    interp_cfg.fetch.intraline_skip = false;
    sim::MachineConfig block_cfg =
        engineConfig(sim::Engine::kBlock, scheme, area);
    block_cfg.fetch.intraline_skip = false;
    expectSameRunStats(runProgram(m, interp_cfg), runProgram(m, block_cfg));
  }
}

TEST(Engine, DrowsyRunsFallBackToInterpreterAndMatch) {
  // drowsy_window != 0 makes the batched line fetch inexact, so the
  // block engine must fall back — results are then trivially identical,
  // which is exactly what this asserts.
  const ir::Module m = loopProgram(1000, 1);
  sim::MachineConfig interp_cfg =
      engineConfig(sim::Engine::kInterp, cache::Scheme::kWayPlacement, 4096);
  interp_cfg.fetch.drowsy_window = 64;
  sim::MachineConfig block_cfg =
      engineConfig(sim::Engine::kBlock, cache::Scheme::kWayPlacement, 4096);
  block_cfg.fetch.drowsy_window = 64;
  const sim::RunStats a = runProgram(m, interp_cfg);
  const sim::RunStats b = runProgram(m, block_cfg);
  expectSameRunStats(a, b);
  EXPECT_GT(a.drowsy.wakeups, 0u);
}

// The watchdog contract (fixed here): the hook fires with the *exact*
// retired count — k * interval on the k-th call — under both engines,
// the block engine splitting batches mid-block at hook boundaries.
std::vector<u64> hookCounts(sim::Engine engine, u64 interval) {
  const ir::Module m = loopProgram(200, 1);
  sim::MachineConfig cfg = engineConfig(engine, cache::Scheme::kBaseline);
  std::vector<u64> counts;
  cfg.budget_hook.interval = interval;
  cfg.budget_hook.check = [&counts](u64 n) { counts.push_back(n); };
  runProgram(m, cfg);
  return counts;
}

TEST(Watchdog, HookSeesExactRetiredCountsUnderBothEngines) {
  // 7 is coprime to every block length, so under the block engine most
  // firings land mid-block.
  for (const sim::Engine engine : {sim::Engine::kInterp, sim::Engine::kBlock}) {
    SCOPED_TRACE(sim::engineName(engine));
    const std::vector<u64> counts = hookCounts(engine, 7);
    ASSERT_GT(counts.size(), 100u);
    for (std::size_t i = 0; i < counts.size(); ++i) {
      ASSERT_EQ(counts[i], 7 * (i + 1));
    }
  }
}

TEST(Watchdog, BothEnginesDeliverIdenticalHookStreams) {
  EXPECT_EQ(hookCounts(sim::Engine::kInterp, 13),
            hookCounts(sim::Engine::kBlock, 13));
}

TEST(Watchdog, ThrowingHookAbortsAtTheExactCount) {
  const ir::Module m = loopProgram(200, 1);
  for (const sim::Engine engine : {sim::Engine::kInterp, sim::Engine::kBlock}) {
    SCOPED_TRACE(sim::engineName(engine));
    sim::MachineConfig cfg = engineConfig(engine, cache::Scheme::kBaseline);
    u64 seen = 0;
    cfg.budget_hook.interval = 500;
    cfg.budget_hook.check = [&seen](u64 n) {
      seen = n;
      if (n >= 1000) throw SimError("deadline exceeded after " +
                                    std::to_string(n) + " instructions");
    };
    EXPECT_THROW(runProgram(m, cfg), SimError);
    // Fired at 500, 1000 — and aborted at exactly 1000, not 999 or at
    // the next block boundary.
    EXPECT_EQ(seen, 1000u);
  }
}

TEST(Engine, RunawayGuestIsCaughtUnderBothEngines) {
  ModuleBuilder mb;
  auto& f = mb.func("main");
  const auto loop = f.label();
  f.bind(loop);
  f.jmp(loop);
  const ir::Module m = mb.build();
  for (const sim::Engine engine : {sim::Engine::kInterp, sim::Engine::kBlock}) {
    SCOPED_TRACE(sim::engineName(engine));
    sim::MachineConfig cfg = engineConfig(engine, cache::Scheme::kBaseline);
    cfg.max_instructions = 10000;
    EXPECT_THROW(runProgram(m, cfg), SimError);
  }
}

}  // namespace
}  // namespace wp
