// Way-memoization tests: link recording and following, both
// invalidation models, the paper's 21 % data-overhead figure.
#include <gtest/gtest.h>

#include "cache/way_memo.hpp"

namespace wp::cache {
namespace {

class WayMemoTest : public ::testing::Test {
 protected:
  WayMemoTest() : cache_(CacheGeometry{1024, 32, 4}), memo_(cache_) {}
  CamCache cache_;
  WayMemoizer memo_;
};

TEST_F(WayMemoTest, FollowAfterRecord) {
  cache_.fill(0x000, false);
  const u32 target_way = cache_.fill(0x020, false);
  EXPECT_FALSE(memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential)
                   .has_value());
  memo_.recordLink(0x000, WayMemoizer::CrossKind::kSequential, 0x020,
                   target_way);
  const auto way =
      memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential);
  ASSERT_TRUE(way.has_value());
  EXPECT_EQ(*way, target_way);
}

TEST_F(WayMemoTest, BranchLinksArePerSlot) {
  cache_.fill(0x000, false);
  const u32 w = cache_.fill(0x200, false);
  // Record a branch link for the instruction in slot 3 (byte 12).
  memo_.recordLink(0x00c, WayMemoizer::CrossKind::kBranchTaken, 0x200, w);
  EXPECT_TRUE(memo_.followLink(0x00c, WayMemoizer::CrossKind::kBranchTaken)
                  .has_value());
  // A different slot of the same line has no link.
  EXPECT_FALSE(memo_.followLink(0x008, WayMemoizer::CrossKind::kBranchTaken)
                   .has_value());
  // Nor does the sequential link.
  EXPECT_FALSE(memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential)
                   .has_value());
}

TEST_F(WayMemoTest, TargetEvictionInvalidatesLink) {
  const CacheGeometry g = cache_.geometry();
  const u32 set_stride = g.line_bytes * g.sets();
  cache_.fill(0x000, false);
  const u32 target = 1 * set_stride + 0x20;  // set 1
  const u32 w = cache_.fill(target, false);
  memo_.recordLink(0x000, WayMemoizer::CrossKind::kSequential, target, w);

  // Evict the target by filling its set with new lines.
  for (u32 i = 2; i <= 5; ++i) cache_.fill(i * set_stride + 0x20, false);
  EXPECT_FALSE(cache_.probe(target).has_value());
  EXPECT_FALSE(memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential)
                   .has_value());
}

TEST_F(WayMemoTest, SourceRefillClearsItsLinks) {
  const CacheGeometry g = cache_.geometry();
  const u32 set_stride = g.line_bytes * g.sets();
  cache_.fill(0x000, false);  // source, set 0 way 0
  const u32 w = cache_.fill(0x020, false);
  memo_.recordLink(0x000, WayMemoizer::CrossKind::kSequential, 0x020, w);

  // Evict the source and refill the same way with a different line.
  for (u32 i = 1; i <= 4; ++i) cache_.fill(i * set_stride, false);
  const u32 new_line = 1 * set_stride;  // resides somewhere in set 0
  ASSERT_TRUE(cache_.probe(new_line).has_value());
  EXPECT_FALSE(memo_.followLink(new_line, WayMemoizer::CrossKind::kSequential)
                   .has_value());
}

TEST_F(WayMemoTest, FlashClearKillsAllLinks) {
  cache_.fill(0x000, false);
  const u32 w = cache_.fill(0x020, false);
  memo_.recordLink(0x000, WayMemoizer::CrossKind::kSequential, 0x020, w);
  memo_.flashClearLinks();
  EXPECT_FALSE(memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential)
                   .has_value());
  EXPECT_EQ(memo_.flashClears(), 1u);
  EXPECT_GE(cache_.stats().link_invalidations, 1u);
}

TEST_F(WayMemoTest, LinkReadsAndWritesAreCounted) {
  cache_.fill(0x000, false);
  const u32 w = cache_.fill(0x020, false);
  memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential);
  memo_.recordLink(0x000, WayMemoizer::CrossKind::kSequential, 0x020, w);
  memo_.followLink(0x000, WayMemoizer::CrossKind::kSequential);
  EXPECT_EQ(cache_.stats().link_reads, 2u);
  EXPECT_EQ(cache_.stats().link_writes, 1u);
  EXPECT_EQ(cache_.stats().linked_accesses, 1u);
}

TEST(WayMemoOverhead, PaperNumbersFor32Way) {
  // 32 B lines, 32 ways: 9 links x 6 bits = 54 bits on 256 -> 21 %.
  CamCache cache(CacheGeometry{32 * 1024, 32, 32});
  WayMemoizer memo(cache);
  EXPECT_EQ(memo.linkBitsPerLine(), 54u);
  EXPECT_NEAR(memo.dataAreaFactor(), 1.21, 0.005);
}

TEST(WayMemoOverhead, ScalesWithAssociativity) {
  CamCache c8(CacheGeometry{16 * 1024, 32, 8});
  WayMemoizer m8(c8);
  EXPECT_EQ(m8.linkBitsPerLine(), 9u * 4u);  // 3 way bits + valid
  CamCache c16(CacheGeometry{16 * 1024, 32, 16});
  WayMemoizer m16(c16);
  EXPECT_EQ(m16.linkBitsPerLine(), 9u * 5u);
  EXPECT_LT(m8.dataAreaFactor(), m16.dataAreaFactor());
}

}  // namespace
}  // namespace wp::cache
