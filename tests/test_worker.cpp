// Tests for process-isolated sweep workers (driver/worker.hpp +
// WP_ISOLATE): the fork/pipe protocol round-trips results
// bit-identically, every way a worker can die (SimError, SIGKILL,
// nonzero exit, hang) is classified into a tagged failure, and the
// sweep executor feeds those failures through the same
// retry/backoff/quarantine ladder as in-process errors — so a crash or
// a wedged loop costs one attempt of one cell, never the bench.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <unistd.h>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/sweep.hpp"
#include "driver/worker.hpp"
#include "support/ensure.hpp"

namespace wp {
namespace {

const cache::CacheGeometry kXScale{32 * 1024, 32, 32};

driver::SchemeSpec wpSpec() {
  return driver::SchemeSpec::wayPlacement(16 * 1024);
}

driver::SchemeSpec cellFaulted(fault::CellFault kind, u32 failures) {
  driver::SchemeSpec s = wpSpec();
  s.fault.cell_fault = kind;
  s.fault.cell_fault_failures = failures;
  return s;
}

double icacheEnergy(const driver::Normalized& n) { return n.icache_energy; }

/// A fake result with enough distinct guest-side fields to notice any
/// serialization slip (the digest covers all of them).
driver::RunResult fakeResult() {
  driver::RunResult r;
  r.stats.instructions = 123456789;
  r.stats.cycles = 987654321;
  r.output = {0x01, 0xfe, 0x7f};
  r.layout_strategy = "original";
  r.layout_chains = 7;
  r.wp_area_coverage = 0.8125;
  r.simulate_seconds = 0.25;
  return r;
}

// ---------------------------------------------------------------------
// The protocol itself, driven directly with synthetic attempt bodies.

TEST(Worker, RoundTripsAResultBitIdentically) {
  const driver::RunResult sent = fakeResult();
  const driver::WorkerResult got =
      driver::runCellInWorker("unit/cell", 42, 0, [&] { return sent; });
  ASSERT_TRUE(got.ok) << got.error;
  EXPECT_EQ(driver::statsDigest(got.result), driver::statsDigest(sent));
  EXPECT_EQ(got.result.output, sent.output);
  EXPECT_EQ(got.result.stats.cycles, sent.stats.cycles);
  EXPECT_EQ(got.result.layout_strategy, sent.layout_strategy);
  EXPECT_GE(got.wall_seconds, 0.0);
}

TEST(Worker, CarriesAChildSimErrorBackVerbatim) {
  const driver::WorkerResult got = driver::runCellInWorker(
      "unit/cell", 0, 0, []() -> driver::RunResult {
        throw SimError("boom: injected by test");
      });
  EXPECT_FALSE(got.ok);
  EXPECT_EQ(got.error, "boom: injected by test")
      << "the child's own message must travel back untagged";
}

TEST(Worker, ClassifiesASignalDeathWithTheCellKey) {
  const driver::WorkerResult got = driver::runCellInWorker(
      "fig5/crashing-cell", 0, 0, []() -> driver::RunResult {
        ::raise(SIGKILL);
        return {};
      });
  EXPECT_FALSE(got.ok);
  EXPECT_NE(got.error.find("fig5/crashing-cell"), std::string::npos);
  EXPECT_NE(got.error.find("died by signal 9"), std::string::npos)
      << got.error;
}

TEST(Worker, ClassifiesASilentNonzeroExit) {
  const driver::WorkerResult got = driver::runCellInWorker(
      "unit/cell", 0, 0, []() -> driver::RunResult {
        std::_Exit(5);  // dies without writing the protocol line
      });
  EXPECT_FALSE(got.ok);
  EXPECT_NE(got.error.find("exited with status 5"), std::string::npos)
      << got.error;
}

TEST(Worker, KillsAHungAttemptAtTheParentSideDeadline) {
  // The attempt never retires an instruction, so only the parent's
  // wall-clock deadline — enforced from outside the crash domain — can
  // end it. This is the case the in-process watchdog cannot catch.
  const driver::WorkerResult got = driver::runCellInWorker(
      "unit/hung-cell", 0, 100, []() -> driver::RunResult {
        for (;;) ::pause();
      });
  EXPECT_FALSE(got.ok);
  EXPECT_NE(got.error.find("hung"), std::string::npos);
  EXPECT_NE(got.error.find("WP_CELL_TIMEOUT_MS=100"), std::string::npos)
      << got.error;
}

// ---------------------------------------------------------------------
// Isolation inside the executor: parity with in-process runs.

TEST(IsolatedSweep, TablesMatchInProcessRunsBitIdentically) {
  driver::SweepExecutor plain({"crc"}, energy::EnergyParams{}, 0, 1);
  driver::SupervisorConfig cfg;
  cfg.isolate = true;
  driver::SweepExecutor isolated({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);

  const double e_plain =
      plain.averageNormalized(kXScale, wpSpec(), icacheEnergy);
  const double e_isolated =
      isolated.averageNormalized(kXScale, wpSpec(), icacheEnergy);
  EXPECT_EQ(e_plain, e_isolated)
      << "the %.17g pipe protocol must round-trip every double exactly";

  const auto& pp = plain.prepared().at(0);
  const auto& ip = isolated.prepared().at(0);
  EXPECT_EQ(driver::statsDigest(plain.run(pp, kXScale, wpSpec())),
            driver::statsDigest(isolated.run(ip, kXScale, wpSpec())));
  EXPECT_EQ(isolated.metrics().counter("cells.isolated").value(), 2u)
      << "baseline + way-placement both ran in workers";
  EXPECT_GT(isolated.runner().metrics().counter("guest.instructions").value(),
            0u)
      << "the child's guest-side accounting must fold back into the parent";
}

TEST(IsolatedSweep, CrashFaultHealsOnRetryInsteadOfKillingTheBench) {
  driver::SupervisorConfig cfg;
  cfg.isolate = true;
  cfg.retries = 2;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);

  // Attempt 1 dies by SIGKILL *in the worker*; attempt 2 heals. Without
  // isolation this fault takes the whole process down — which is
  // exactly what WP_ISOLATE exists to prevent.
  const auto healed =
      suite.tryRun(p, kXScale, cellFaulted(fault::CellFault::kCrash, 1));
  ASSERT_FALSE(healed.quarantined);
  EXPECT_EQ(healed.attempts, 2u);

  const auto clean = suite.tryRun(p, kXScale, wpSpec());
  ASSERT_FALSE(clean.quarantined);
  EXPECT_EQ(driver::statsDigest(*healed.result),
            driver::statsDigest(*clean.result))
      << "the healed retry must replay the same deterministic simulation";
  EXPECT_EQ(suite.metrics().counter("cells.healed").value(), 1u);
}

TEST(IsolatedSweep, PersistentCrashQuarantinesWithSignalIdentity) {
  driver::SupervisorConfig cfg;
  cfg.isolate = true;
  cfg.retries = 1;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);
  // failures = 0: every attempt crashes, so the cell must quarantine.
  const driver::SchemeSpec bad = cellFaulted(fault::CellFault::kCrash, 0);
  const std::string key = driver::SweepExecutor::keyOf(p.name, kXScale, bad);

  const auto view = suite.tryRun(p, kXScale, bad);
  ASSERT_TRUE(view.quarantined);
  EXPECT_EQ(view.attempts, 2u);
  ASSERT_NE(view.error, nullptr);
  EXPECT_NE(view.error->find(key), std::string::npos) << *view.error;
  EXPECT_NE(view.error->find("died by signal 9"), std::string::npos)
      << *view.error;

  // The bench survives: the clean scheme still prices on this executor.
  EXPECT_FALSE(suite.tryRun(p, kXScale, wpSpec()).quarantined);
}

TEST(IsolatedSweep, HangFaultIsKilledByTheParentDeadlineAndQuarantined) {
  driver::SupervisorConfig cfg;
  cfg.isolate = true;
  cfg.retries = 0;
  cfg.cell_timeout_ms = 200;
  driver::SweepExecutor suite({"crc"}, energy::EnergyParams{}, 0, 1, &cfg);
  const auto& p = suite.prepared().at(0);

  const auto view =
      suite.tryRun(p, kXScale, cellFaulted(fault::CellFault::kHang, 1));
  ASSERT_TRUE(view.quarantined);
  ASSERT_NE(view.error, nullptr);
  EXPECT_NE(view.error->find("hung"), std::string::npos) << *view.error;
  EXPECT_NE(view.error->find("WP_CELL_TIMEOUT_MS=200"), std::string::npos)
      << *view.error;
  // (No clean-cell check here: a 200ms budget is too tight for a real
  // simulation, and the crash test above already proves the bench
  // survives a dead worker.)
}

}  // namespace
}  // namespace wp
