#include "isa/isa.hpp"

#include <sstream>

#include "support/ensure.hpp"

namespace wp::isa {

namespace {

struct OpInfo {
  const char* name;
  Format format;
};

// Indexed by Opcode value; order must match the enum definition.
constexpr OpInfo kOpInfo[] = {
    {"add", Format::kRType},   {"sub", Format::kRType},
    {"rsb", Format::kRType},   {"and", Format::kRType},
    {"orr", Format::kRType},   {"eor", Format::kRType},
    {"lsl", Format::kRType},   {"lsr", Format::kRType},
    {"asr", Format::kRType},   {"mul", Format::kRType},
    {"mla", Format::kRType},   {"mov", Format::kRType},
    {"mvn", Format::kRType},   {"cmp", Format::kRType},
    {"slt", Format::kRType},   {"sltu", Format::kRType},
    {"addi", Format::kIType},  {"subi", Format::kIType},
    {"andi", Format::kIType},  {"orri", Format::kIType},
    {"eori", Format::kIType},  {"lsli", Format::kIType},
    {"lsri", Format::kIType},  {"asri", Format::kIType},
    {"muli", Format::kIType},  {"cmpi", Format::kIType},
    {"movi", Format::kIType},  {"movhi", Format::kIType},
    {"ldr", Format::kIType},   {"str", Format::kIType},
    {"ldrb", Format::kIType},  {"strb", Format::kIType},
    {"ldrx", Format::kRType},  {"strx", Format::kRType},
    {"ldrbx", Format::kRType}, {"strbx", Format::kRType},
    {"b", Format::kBType},     {"beq", Format::kBType},
    {"bne", Format::kBType},   {"blt", Format::kBType},
    {"bge", Format::kBType},   {"bgt", Format::kBType},
    {"ble", Format::kBType},   {"bltu", Format::kBType},
    {"bgeu", Format::kBType},  {"bl", Format::kBType},
    {"jr", Format::kJType},    {"nop", Format::kNone},
    {"halt", Format::kNone},
};

static_assert(sizeof(kOpInfo) / sizeof(kOpInfo[0]) == kOpcodeCount,
              "kOpInfo must cover every opcode");

const OpInfo& info(Opcode op) {
  const auto idx = static_cast<u32>(op);
  WP_ENSURE(idx < kOpcodeCount, "opcode out of range");
  return kOpInfo[idx];
}

}  // namespace

Format formatOf(Opcode op) { return info(op).format; }

const char* mnemonic(Opcode op) { return info(op).name; }

u32 encode(const Instruction& inst) {
  const auto opfield = static_cast<u32>(inst.op);
  WP_ENSURE(opfield < kOpcodeCount, "cannot encode unknown opcode");
  WP_ENSURE(inst.rd < kNumRegisters && inst.rn < kNumRegisters &&
                inst.rm < kNumRegisters,
            "register field out of range");
  u32 word = opfield << 24;
  switch (formatOf(inst.op)) {
    case Format::kRType:
      word |= static_cast<u32>(inst.rd) << 20;
      word |= static_cast<u32>(inst.rn) << 16;
      word |= static_cast<u32>(inst.rm) << 12;
      break;
    case Format::kIType: {
      WP_ENSURE(inst.imm >= -32768 && inst.imm <= 65535,
                "I-type immediate out of 16-bit range");
      word |= static_cast<u32>(inst.rd) << 20;
      word |= static_cast<u32>(inst.rn) << 16;
      word |= static_cast<u32>(inst.imm) & 0xffffu;
      break;
    }
    case Format::kBType: {
      WP_ENSURE(inst.imm >= -(1 << 23) && inst.imm < (1 << 23),
                "branch offset out of 24-bit range");
      word |= static_cast<u32>(inst.imm) & 0x00ffffffu;
      break;
    }
    case Format::kJType:
      word |= static_cast<u32>(inst.rn) << 16;
      break;
    case Format::kNone:
      break;
  }
  return word;
}

Instruction decode(u32 word) {
  const u32 opfield = bits(word, 31, 24);
  WP_ENSURE(opfield < kOpcodeCount, "decode: unknown opcode field");
  Instruction inst;
  inst.op = static_cast<Opcode>(opfield);
  switch (formatOf(inst.op)) {
    case Format::kRType:
      inst.rd = static_cast<u8>(bits(word, 23, 20));
      inst.rn = static_cast<u8>(bits(word, 19, 16));
      inst.rm = static_cast<u8>(bits(word, 15, 12));
      break;
    case Format::kIType:
      inst.rd = static_cast<u8>(bits(word, 23, 20));
      inst.rn = static_cast<u8>(bits(word, 19, 16));
      inst.imm = signExtend(bits(word, 15, 0), 16);
      break;
    case Format::kBType:
      inst.imm = signExtend(bits(word, 23, 0), 24);
      break;
    case Format::kJType:
      inst.rn = static_cast<u8>(bits(word, 19, 16));
      break;
    case Format::kNone:
      break;
  }
  return inst;
}

std::string disassemble(const Instruction& inst) {
  std::ostringstream os;
  os << mnemonic(inst.op);
  switch (formatOf(inst.op)) {
    case Format::kRType:
      if (inst.op == Opcode::kCmp) {
        os << " r" << int{inst.rn} << ", r" << int{inst.rm};
      } else if (inst.op == Opcode::kMov || inst.op == Opcode::kMvn) {
        os << " r" << int{inst.rd} << ", r" << int{inst.rm};
      } else if (inst.op == Opcode::kLdrx || inst.op == Opcode::kLdrbx) {
        os << " r" << int{inst.rd} << ", [r" << int{inst.rn} << ", r"
           << int{inst.rm} << ']';
      } else if (inst.op == Opcode::kStrx || inst.op == Opcode::kStrbx) {
        os << " r" << int{inst.rd} << ", [r" << int{inst.rn} << ", r"
           << int{inst.rm} << ']';
      } else {
        os << " r" << int{inst.rd} << ", r" << int{inst.rn} << ", r"
           << int{inst.rm};
      }
      break;
    case Format::kIType:
      if (isLoad(inst.op) || isStore(inst.op)) {
        os << " r" << int{inst.rd} << ", [r" << int{inst.rn} << ", #"
           << inst.imm << ']';
      } else if (inst.op == Opcode::kCmpi) {
        os << " r" << int{inst.rn} << ", #" << inst.imm;
      } else if (inst.op == Opcode::kMovi || inst.op == Opcode::kMovhi) {
        os << " r" << int{inst.rd} << ", #" << inst.imm;
      } else {
        os << " r" << int{inst.rd} << ", r" << int{inst.rn} << ", #"
           << inst.imm;
      }
      break;
    case Format::kBType:
      os << " pc" << (inst.imm >= 0 ? "+" : "") << inst.imm * 4 + 4;
      break;
    case Format::kJType:
      os << " r" << int{inst.rn};
      break;
    case Format::kNone:
      break;
  }
  return os.str();
}

}  // namespace wp::isa
