// WRISC-32: the fixed-width 32-bit RISC ISA executed by the simulator.
//
// The ISA is ARM-flavoured to match the paper's XScale testbed: 16
// general-purpose registers, condition flags written only by compare
// instructions, a link register for calls, and PC-relative branches with
// a 24-bit signed word offset. Every instruction is 4 bytes, so a 32-byte
// cache line holds 8 instructions exactly as in the paper's setup.
//
// Instruction formats (op = bits [31:24]):
//   R-type : op rd[23:20] rn[19:16] rm[15:12]            (register ALU)
//   I-type : op rd[23:20] rn[19:16] imm16[15:0]          (immediate ALU/mem)
//   B-type : op imm24[23:0]                              (branches, signed
//            word offset relative to the *next* instruction)
//   J-type : op rn[19:16]                                (indirect jump)
#pragma once

#include <string>

#include "support/bitops.hpp"

namespace wp::isa {

inline constexpr u32 kNumRegisters = 16;
inline constexpr u32 kInstructionBytes = 4;

/// Register aliases. r13 is the stack pointer and r14 the link register
/// by software convention; the hardware treats all 16 uniformly except
/// that BL writes kLinkReg.
inline constexpr u8 kStackReg = 13;
inline constexpr u8 kLinkReg = 14;

enum class Opcode : u8 {
  // R-type ALU: rd = rn OP rm.
  kAdd,
  kSub,
  kRsb,   // rd = rm - rn (reverse subtract)
  kAnd,
  kOrr,
  kEor,
  kLsl,
  kLsr,
  kAsr,
  kMul,
  kMla,   // multiply-accumulate: rd = rd + rn * rm (the MAC unit)
  kMov,   // rd = rm
  kMvn,   // rd = ~rm
  kCmp,   // flags = rn - rm (rd unused)
  kSlt,   // rd = (signed) rn < rm ? 1 : 0
  kSltu,  // rd = (unsigned) rn < rm ? 1 : 0

  // I-type ALU: rd = rn OP simm16 (logical ops use zero-extended imm).
  kAddi,
  kSubi,
  kAndi,
  kOrri,
  kEori,
  kLsli,
  kLsri,
  kAsri,
  kMuli,
  kCmpi,   // flags = rn - simm16
  kMovi,   // rd = simm16
  kMovhi,  // rd = (rd & 0xffff) | (imm16 << 16)

  // I-type memory: address = rn + simm16.
  kLdr,   // rd = mem32[addr]
  kStr,   // mem32[addr] = rd
  kLdrb,  // rd = zext(mem8[addr])
  kStrb,  // mem8[addr] = rd & 0xff

  // R-type memory: address = rn + rm.
  kLdrx,
  kStrx,
  kLdrbx,
  kStrbx,

  // B-type branches: target = pc + 4 + imm24 * 4.
  kB,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBgt,
  kBle,
  kBltu,
  kBgeu,
  kBl,  // call: link register := pc + 4

  // J-type.
  kJr,  // pc = rn (RET is JR lr)

  // Misc (no operands).
  kNop,
  kHalt,

  kOpcodeCount,
};

inline constexpr u32 kOpcodeCount = static_cast<u32>(Opcode::kOpcodeCount);

/// Operand-format class of an opcode.
enum class Format : u8 {
  kRType,
  kIType,
  kBType,
  kJType,
  kNone,
};

/// Decoded (or to-be-encoded) instruction. `imm` holds the sign-extended
/// immediate for I-types and the signed word offset for B-types.
struct Instruction {
  Opcode op = Opcode::kNop;
  u8 rd = 0;
  u8 rn = 0;
  u8 rm = 0;
  i32 imm = 0;

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// Returns the operand format of @p op.
[[nodiscard]] Format formatOf(Opcode op);

/// Mnemonic string, e.g. "add".
[[nodiscard]] const char* mnemonic(Opcode op);

// The classification predicates below run once per simulated
// instruction in the timing model, so they live in the header where
// every caller can inline them down to a couple of compares. The range
// checks lean on the declaration order of the branch group; pin it.
static_assert(static_cast<u32>(Opcode::kJr) - static_cast<u32>(Opcode::kB) ==
                  10,
              "the control-transfer opcodes kB..kJr must stay contiguous");
static_assert(static_cast<u32>(Opcode::kBgeu) -
                      static_cast<u32>(Opcode::kBeq) ==
                  7,
              "the conditional branches kBeq..kBgeu must stay contiguous");

/// True for any control-transfer instruction (branches, calls, jr).
[[nodiscard]] constexpr bool isControlTransfer(Opcode op) {
  // kB..kJr are declared contiguously (branches, then the call, then
  // the indirect jump).
  return op >= Opcode::kB && op <= Opcode::kJr;
}

/// True for conditional branches only.
[[nodiscard]] constexpr bool isConditionalBranch(Opcode op) {
  return op >= Opcode::kBeq && op <= Opcode::kBgeu;
}

/// True for loads (both addressing modes).
[[nodiscard]] constexpr bool isLoad(Opcode op) {
  return op == Opcode::kLdr || op == Opcode::kLdrb || op == Opcode::kLdrx ||
         op == Opcode::kLdrbx;
}

/// True for stores (both addressing modes).
[[nodiscard]] constexpr bool isStore(Opcode op) {
  return op == Opcode::kStr || op == Opcode::kStrb || op == Opcode::kStrx ||
         op == Opcode::kStrbx;
}

/// True if @p op is kMul/kMla/kMuli (longer functional-unit latency).
[[nodiscard]] constexpr bool isMultiply(Opcode op) {
  return op == Opcode::kMul || op == Opcode::kMla || op == Opcode::kMuli;
}

/// Encodes @p inst to its 32-bit machine word. Validates field ranges.
[[nodiscard]] u32 encode(const Instruction& inst);

/// Decodes a 32-bit machine word. Throws SimError on an unknown opcode.
[[nodiscard]] Instruction decode(u32 word);

/// Human-readable disassembly, e.g. "addi r1, r2, #-4".
[[nodiscard]] std::string disassemble(const Instruction& inst);

}  // namespace wp::isa
