#include "cache/tlb.hpp"

#include "support/ensure.hpp"

namespace wp::cache {

const char* tlbSwitchPolicyName(TlbSwitchPolicy p) {
  switch (p) {
    case TlbSwitchPolicy::kFlush:
      return "flush";
    case TlbSwitchPolicy::kAsidTagged:
      return "asid";
  }
  WP_UNREACHABLE("bad TLB switch policy");
}

Tlb::Tlb(u32 entries) : entries_(entries) {
  WP_ENSURE(entries > 0, "TLB needs at least one entry");
}

Tlb::Result Tlb::access(u32 addr) {
  ++stats_.accesses;
  const u32 vpn = mem::pageOf(addr);
  // Fast path: consecutive fetches overwhelmingly hit the same page.
  // Purely a simulator shortcut — the search result is identical. The
  // sentinel guard keeps a flushed (or switched-away) MRU slot from
  // ever being consulted.
  if (mru_ != kNoMru) {
    const Entry& m = entries_[mru_];
    if (m.valid && m.vpn == vpn && m.asid == cur_asid_) {
      return {true, m.wp_bit};
    }
  }
  for (u32 i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (e.valid && e.vpn == vpn && e.asid == cur_asid_) {
      mru_ = i;
      return {true, e.wp_bit};
    }
  }
  // Miss: walk the page table (flat mapping) and install with FIFO
  // replacement. The OS writes the way-placement bit alongside the
  // existing permission bits (paper §4.1).
  ++stats_.misses;
  ++stats_.walks;
  Entry& victim = entries_[fifo_next_];
  mru_ = fifo_next_;
  fifo_next_ = (fifo_next_ + 1) % static_cast<u32>(entries_.size());
  victim.valid = true;
  victim.vpn = vpn;
  victim.asid = cur_asid_;
  victim.wp_bit = inWayPlacementArea(addr);
  return {false, victim.wp_bit};
}

Tlb::Result Tlb::accessRepeat(u32 addr, u64 count) {
  WP_ENSURE(mru_ != kNoMru,
            "accessRepeat directly after a TLB flush — the batch would "
            "ride a dead translation");
  const Entry& m = entries_[mru_];
  WP_ENSURE(m.valid && m.vpn == mem::pageOf(addr) && m.asid == cur_asid_,
            "accessRepeat requires the MRU entry to hold the page");
  stats_.accesses += count;
  return {true, m.wp_bit};
}

void Tlb::setWayPlacementLimit(u32 bytes) {
  WP_ENSURE(bytes % mem::kPageBytes == 0,
            "way-placement area must be a multiple of the page size");
  wp_limit_ = bytes;
  for (Entry& e : entries_) e.valid = false;
  fifo_next_ = 0;
  mru_ = kNoMru;
}

void Tlb::switchContext(u32 asid, u32 wp_limit_bytes,
                        TlbSwitchPolicy policy) {
  WP_ENSURE(wp_limit_bytes % mem::kPageBytes == 0,
            "per-process way-placement area must be a multiple of the "
            "page size");
  cur_asid_ = asid;
  wp_limit_ = wp_limit_bytes;
  if (policy == TlbSwitchPolicy::kFlush) {
    for (Entry& e : entries_) e.valid = false;
    fifo_next_ = 0;
  }
  // Under kAsidTagged the entries stay resident — their cached WP bits
  // were written from their owner's page table and can only match that
  // owner again. Either way the MRU slot may belong to the outgoing
  // process, so it is dropped.
  mru_ = kNoMru;
}

bool Tlb::faultFlipWpBit(u32 index) {
  WP_ENSURE(index < entries_.size(), "faultFlipWpBit: index out of range");
  Entry& e = entries_[index];
  if (!e.valid) return false;
  e.wp_bit = !e.wp_bit;
  return true;
}

u32 Tlb::faultClearWpBits() {
  u32 cleared = 0;
  for (Entry& e : entries_) {
    if (e.valid && e.wp_bit) {
      e.wp_bit = false;
      ++cleared;
    }
  }
  return cleared;
}

void Tlb::reset() {
  for (Entry& e : entries_) e = Entry{};
  fifo_next_ = 0;
  mru_ = kNoMru;
  cur_asid_ = 0;
  stats_.reset();
}

}  // namespace wp::cache
