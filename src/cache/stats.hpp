// Event counters accumulated by the cache models. The energy model turns
// these counts into joules; keeping them separate makes the accounting
// auditable and unit-testable.
#pragma once

#include "support/bitops.hpp"

namespace wp::cache {

struct CacheStats {
  // Access-level counters.
  u64 accesses = 0;        ///< every lookup presented to the cache
  u64 hits = 0;
  u64 misses = 0;

  // Tag-side activity (the energy the paper attacks).
  u64 tag_compares = 0;         ///< CAM comparisons performed
  u64 matchline_precharges = 0; ///< match lines precharged
  u64 full_lookups = 0;         ///< all-way searches
  u64 single_way_lookups = 0;   ///< single-way searches (placed/predicted)
  u64 partial_lookups = 0;      ///< W-1-way searches (mispredict recovery)
  u64 no_tag_lookups = 0;       ///< intra-line / linked accesses, no search

  // Data-side activity.
  u64 data_word_reads = 0;   ///< one per instruction/word delivered
  u64 data_word_writes = 0;  ///< store hits (D-cache)
  u64 line_fills = 0;        ///< whole-line writes on refill
  u64 writebacks = 0;        ///< dirty-line evictions (D-cache)

  // Way-memoization link activity.
  u64 link_reads = 0;
  u64 link_writes = 0;
  u64 link_invalidations = 0;
  u64 linked_accesses = 0;  ///< lookups satisfied by a valid link

  // Robustness accounting: stale same-line copies invalidated by a
  // way-placed refill. Zero in fault-free runs — duplicates can only
  // arise after way-placement-bit corruption or mid-run area changes.
  u64 duplicate_invalidations = 0;

  void reset() { *this = CacheStats{}; }

  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    tag_compares += o.tag_compares;
    matchline_precharges += o.matchline_precharges;
    full_lookups += o.full_lookups;
    single_way_lookups += o.single_way_lookups;
    partial_lookups += o.partial_lookups;
    no_tag_lookups += o.no_tag_lookups;
    data_word_reads += o.data_word_reads;
    data_word_writes += o.data_word_writes;
    line_fills += o.line_fills;
    writebacks += o.writebacks;
    link_reads += o.link_reads;
    link_writes += o.link_writes;
    link_invalidations += o.link_invalidations;
    linked_accesses += o.linked_accesses;
    duplicate_invalidations += o.duplicate_invalidations;
    return *this;
  }
};

struct TlbStats {
  u64 accesses = 0;
  u64 misses = 0;
  u64 walks = 0;  ///< page-table walks (== misses; kept for clarity)
  void reset() { *this = TlbStats{}; }
};

struct FetchStats {
  u64 fetches = 0;
  u64 sameline_skips = 0;
  u64 wp_single_way = 0;      ///< fetches served with a single-way search
  u64 hint_correct = 0;
  u64 hint_miss_lost_saving = 0;  ///< hint=normal but page was WP (case 1)
  u64 hint_miss_second_access = 0;  ///< hint=WP but page was not (case 2)
  u64 waypred_correct = 0;     ///< way prediction: MRU way hit
  u64 waypred_mispredict = 0;  ///< way prediction: second access needed
  u64 extra_cycles = 0;       ///< cycle penalty from second accesses
  /// Way-memoization links whose parity check caught a corrupted way
  /// pointer; the fetch degraded to a full search. Only non-zero under
  /// fault injection.
  u64 link_faults_dropped = 0;
  void reset() { *this = FetchStats{}; }
};

}  // namespace wp::cache
