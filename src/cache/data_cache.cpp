#include "cache/data_cache.hpp"

namespace wp::cache {

DataCache::DataCache(const DataCacheConfig& config)
    : config_(config), cache_(config.geometry) {}

u32 DataCache::missPenalty() const {
  return config_.mem_latency_cycles + config_.geometry.wordsPerLine();
}

u32 DataCache::load(u32 addr) {
  const LookupResult r = cache_.lookup(addr, LookupKind::kFull);
  cache_.countWordRead();
  if (r.hit) return 1;
  cache_.fill(addr, /*way_placed=*/false);
  return 1 + missPenalty();
}

u32 DataCache::store(u32 addr) {
  const LookupResult r = cache_.lookup(addr, LookupKind::kFull);
  u32 cycles = 1;
  u32 way = r.way;
  if (!r.hit) {
    way = cache_.fill(addr, /*way_placed=*/false);
    cycles += missPenalty();
  }
  cache_.countWordWrite();
  // The lookup (or fill) just told us the resident way; passing it
  // along lets markDirty skip a second residency search.
  cache_.markDirty(addr, way);
  return cycles;
}

void DataCache::reset() { cache_.reset(); }

}  // namespace wp::cache
