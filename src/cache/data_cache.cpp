#include "cache/data_cache.hpp"

namespace wp::cache {

DataCache::DataCache(const DataCacheConfig& config)
    : config_(config), cache_(config.geometry) {}

u32 DataCache::missPenalty() const {
  return config_.mem_latency_cycles + config_.geometry.wordsPerLine();
}

u32 DataCache::load(u32 addr) {
  const LookupResult r = cache_.lookup(addr, LookupKind::kFull);
  cache_.countWordRead();
  if (r.hit) return 1;
  cache_.fill(addr, /*way_placed=*/false);
  return 1 + missPenalty();
}

u32 DataCache::store(u32 addr) {
  const LookupResult r = cache_.lookup(addr, LookupKind::kFull);
  u32 cycles = 1;
  if (!r.hit) {
    cache_.fill(addr, /*way_placed=*/false);
    cycles += missPenalty();
  }
  cache_.countWordWrite();
  cache_.markDirty(addr);
  return cycles;
}

void DataCache::reset() { cache_.reset(); }

}  // namespace wp::cache
