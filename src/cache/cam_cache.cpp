#include "cache/cam_cache.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace wp::cache {

namespace {
const CacheGeometry& validated(const CacheGeometry& g) {
  g.validate();
  return g;
}
}  // namespace

CamCache::CamCache(const CacheGeometry& geometry)
    : geom_(validated(geometry)),
      num_sets_(geometry.sets()),
      offset_bits_(geometry.offsetBits()),
      set_mask_(num_sets_ - 1),
      tag_shift_(geometry.offsetBits() + geometry.setBits()),
      lines_(static_cast<std::size_t>(num_sets_) * geometry.ways),
      round_robin_(num_sets_, 0),
      hot_way_(num_sets_, 0) {}

CamCache::Line& CamCache::at(u32 set, u32 way) {
  return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
}

const CamCache::Line& CamCache::at(u32 set, u32 way) const {
  return lines_[static_cast<std::size_t>(set) * geom_.ways + way];
}

u32 CamCache::findWay(u32 set, u32 tag) const {
  const u32 hot = hot_way_[set];
  {
    const Line& line = at(set, hot);
    if (line.valid && line.tag == tag) return hot;
  }
  for (u32 w = 0; w < geom_.ways; ++w) {
    const Line& line = at(set, w);
    if (line.valid && line.tag == tag) {
      hot_way_[set] = w;
      return w;
    }
  }
  return geom_.ways;
}

LookupResult CamCache::lookup(u32 addr, LookupKind kind) {
  const u32 set = setIndexOf(addr);
  const u32 tag = tagFieldOf(addr);
  ++stats_.accesses;

  LookupResult result;
  switch (kind) {
    case LookupKind::kFull: {
      // Modelled cost is always a full parallel search (one precharge
      // and compare per way); the host-side findWay shortcut changes
      // nothing the model observes.
      ++stats_.full_lookups;
      stats_.matchline_precharges += geom_.ways;
      stats_.tag_compares += geom_.ways;
      const u32 w = findWay(set, tag);
      if (w != geom_.ways) result = {true, w};
      break;
    }
    case LookupKind::kSingleWay: {
      ++stats_.single_way_lookups;
      stats_.matchline_precharges += 1;
      stats_.tag_compares += 1;
      const u32 w = tag & (geom_.ways - 1);  // wayPlacedWayOf(addr)
      const Line& line = at(set, w);
      if (line.valid && line.tag == tag) {
        result = {true, w};
      }
      break;
    }
    case LookupKind::kNoTag: {
      ++stats_.no_tag_lookups;
      const auto way = probe(addr);
      WP_ENSURE(way.has_value(),
                "no-tag lookup on a non-resident line (model bug)");
      result = {true, *way};
      break;
    }
  }

  if (result.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

LookupResult CamCache::lookupOneWay(u32 addr, u32 way) {
  WP_ENSURE(way < geom_.ways, "lookupOneWay: way out of range");
  const u32 set = setIndexOf(addr);
  const u32 tag = tagFieldOf(addr);
  ++stats_.accesses;
  ++stats_.single_way_lookups;
  stats_.matchline_precharges += 1;
  stats_.tag_compares += 1;
  LookupResult result;
  const Line& line = at(set, way);
  if (line.valid && line.tag == tag) result = {true, way};
  if (result.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

LookupResult CamCache::lookupAllButOne(u32 addr, u32 excluded_way) {
  WP_ENSURE(excluded_way < geom_.ways, "lookupAllButOne: way out of range");
  const u32 set = setIndexOf(addr);
  const u32 tag = tagFieldOf(addr);
  ++stats_.accesses;
  ++stats_.partial_lookups;
  stats_.matchline_precharges += geom_.ways - 1;
  stats_.tag_compares += geom_.ways - 1;
  LookupResult result;
  for (u32 w = 0; w < geom_.ways; ++w) {
    if (w == excluded_way) continue;
    const Line& line = at(set, w);
    if (line.valid && line.tag == tag) {
      result = {true, w};
      break;
    }
  }
  if (result.hit) {
    ++stats_.hits;
  } else {
    ++stats_.misses;
  }
  return result;
}

std::optional<u32> CamCache::probe(u32 addr) const {
  const u32 w = findWay(setIndexOf(addr), tagFieldOf(addr));
  if (w == geom_.ways) return std::nullopt;
  return w;
}

u32 CamCache::fill(u32 addr, bool way_placed) {
  const u32 set = setIndexOf(addr);
  const u32 tag = tagFieldOf(addr);
  const std::optional<u32> dup = probe(addr);

  u32 victim;
  if (way_placed) {
    victim = tag & (geom_.ways - 1);  // wayPlacedWayOf(addr)
    WP_ENSURE(!dup.has_value() || *dup != victim,
              "fill of an already-resident line");
    // A copy filled under a different placement decision (possible only
    // after way-placement-bit corruption or a mid-run area change) would
    // leave the CAM with two matching tags; the way-placed refill
    // invalidates the stale copy so lookups stay unambiguous.
    if (dup.has_value()) {
      Line& stale = at(set, *dup);
      if (stale.dirty) ++stats_.writebacks;
      if (listener_ != nullptr) listener_->onEvict({set, *dup});
      stale = Line{};
      ++stats_.duplicate_invalidations;
    }
  } else {
    WP_ENSURE(!dup.has_value(), "fill of an already-resident line");
    victim = round_robin_[set];
    round_robin_[set] = (round_robin_[set] + 1) % geom_.ways;
  }

  Line& line = at(set, victim);
  if (line.valid) {
    if (line.dirty) ++stats_.writebacks;
    if (listener_ != nullptr) listener_->onEvict({set, victim});
  }
  line.valid = true;
  line.dirty = false;
  line.tag = tag;
  ++stats_.line_fills;
  return victim;
}

void CamCache::markDirty(u32 addr) {
  const auto way = probe(addr);
  WP_ENSURE(way.has_value(), "markDirty on non-resident line");
  at(setIndexOf(addr), *way).dirty = true;
}

void CamCache::markDirty(u32 addr, u32 way) {
  WP_ENSURE(way < geom_.ways, "markDirty: way out of range");
  Line& line = at(setIndexOf(addr), way);
  WP_ENSURE(line.valid && line.tag == tagFieldOf(addr),
            "markDirty: way does not hold the addressed line");
  line.dirty = true;
}

void CamCache::reset() {
  flush();
  stats_.reset();
}

void CamCache::flush() {
  for (u32 set = 0; set < num_sets_; ++set) {
    for (u32 way = 0; way < geom_.ways; ++way) {
      Line& line = at(set, way);
      if (line.valid && listener_ != nullptr) listener_->onEvict({set, way});
      line = Line{};
    }
  }
  std::fill(round_robin_.begin(), round_robin_.end(), 0u);
}

u32 CamCache::residentLineAddr(LineId id) const {
  const Line& line = at(id.set, id.way);
  WP_ENSURE(line.valid, "residentLineAddr of invalid line");
  return (line.tag << (geom_.offsetBits() + geom_.setBits())) |
         (id.set << geom_.offsetBits());
}

bool CamCache::lineValid(LineId id) const { return at(id.set, id.way).valid; }

}  // namespace wp::cache
