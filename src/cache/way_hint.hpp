// The way-hint bit (paper §4.1).
//
// The I-TLB and I-cache are accessed in parallel, so the way-placement
// bit is not known until *after* the cache access starts. A single bit of
// state — "was the previous access to the way-placement area?" — selects
// the access mode up front. Both mispredict scenarios are handled by the
// fetch path; this class is just the predictor.
#pragma once

namespace wp::cache {

class WayHint {
 public:
  /// Predicted mode for the upcoming access: true = way-placement access.
  [[nodiscard]] bool predict() const { return last_was_wp_; }

  /// Records the resolved way-placement bit of the access just made.
  void update(bool actual_wp) { last_was_wp_ = actual_wp; }

  /// Soft-error hook: inverts the stored bit. The hint is advisory, so a
  /// flip can only cost a lost saving or a squashed probe, never a wrong
  /// instruction — exactly what the fault suite demonstrates.
  void flip() { last_was_wp_ = !last_was_wp_; }

  void reset() { last_was_wp_ = false; }

 private:
  bool last_was_wp_ = false;
};

}  // namespace wp::cache
