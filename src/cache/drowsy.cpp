#include "cache/drowsy.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace wp::cache {

DrowsyCache::DrowsyCache(u32 sets, u32 ways, u32 window)
    : ways_(ways),
      window_(window),
      until_sweep_(window),
      awake_(static_cast<std::size_t>(sets) * ways, false) {}

bool DrowsyCache::access(u32 set, u32 way) {
  if (window_ == 0) return false;
  // Integrate leakage state over this tick (before any wake).
  ++stats_.ticks;
  stats_.awake_line_ticks += awake_count_;
  stats_.drowsy_line_ticks += awake_.size() - awake_count_;

  const std::size_t idx = static_cast<std::size_t>(set) * ways_ + way;
  WP_ENSURE(idx < awake_.size(), "drowsy access out of range");
  bool woke = false;
  if (!awake_[idx]) {
    awake_[idx] = true;
    ++awake_count_;
    ++stats_.wakeups;
    woke = true;
  }

  if (--until_sweep_ == 0) {
    // Global drowse sweep: a wired signal, effectively free.
    std::fill(awake_.begin(), awake_.end(), false);
    awake_count_ = 0;
    until_sweep_ = window_;
  }
  return woke;
}

void DrowsyCache::onCacheFlush() {
  // Internal consistency first: the cached count must agree with the
  // bitmap it summarizes, or the leakage integrals above were wrong.
  WP_ENSURE(static_cast<u32>(
                std::count(awake_.begin(), awake_.end(), true)) == awake_count_,
            "drowsy awake-line count disagrees with the per-line bitmap");
  std::fill(awake_.begin(), awake_.end(), false);
  awake_count_ = 0;
  // The global drowse sweep is a free-running wired countdown; a cache
  // flush does not reset it. Stats intentionally survive.
}

void DrowsyCache::reset() {
  std::fill(awake_.begin(), awake_.end(), false);
  awake_count_ = 0;
  until_sweep_ = window_;
  stats_.reset();
}

}  // namespace wp::cache
