#include "cache/fetch_path.hpp"

#include "support/ensure.hpp"

namespace wp::cache {

const char* schemeName(Scheme s) {
  switch (s) {
    case Scheme::kBaseline:
      return "baseline";
    case Scheme::kWayPlacement:
      return "way-placement";
    case Scheme::kWayMemoization:
      return "way-memoization";
    case Scheme::kWayPrediction:
      return "way-prediction";
  }
  WP_UNREACHABLE("bad scheme");
}

void FetchPathConfig::validate() const {
  icache.validate();
  WP_ENSURE(tlb_entries > 0, "FetchPathConfig.tlb_entries must be at least 1");
  WP_ENSURE(wp_area_bytes % mem::kPageBytes == 0,
            "FetchPathConfig.wp_area_bytes (" + std::to_string(wp_area_bytes) +
                ") must be a multiple of the " +
                std::to_string(mem::kPageBytes) + " B page size");
  WP_ENSURE(scheme == Scheme::kWayPlacement || wp_area_bytes == 0,
            "FetchPathConfig.wp_area_bytes set but FetchPathConfig.scheme is " +
                std::string(schemeName(scheme)) + ", not way-placement");
}

namespace {
const FetchPathConfig& validated(const FetchPathConfig& c) {
  c.validate();
  return c;
}
}  // namespace

FetchPath::FetchPath(const FetchPathConfig& config)
    : config_(validated(config)),
      icache_(config.icache),
      itlb_(config.tlb_entries),
      drowsy_(config.icache.sets(), config.icache.ways,
              config.drowsy_window) {
  if (config_.scheme == Scheme::kWayMemoization) {
    memo_.emplace(icache_);
  }
  if (config_.scheme == Scheme::kWayPlacement) {
    itlb_.setWayPlacementLimit(config_.wp_area_bytes);
  }
  if (config_.scheme == Scheme::kWayPrediction) {
    mru_way_.assign(config_.icache.sets(), 0);
  }
}

void FetchPath::resizeWayPlacementArea(u32 bytes) {
  WP_ENSURE(config_.scheme == Scheme::kWayPlacement,
            "resizeWayPlacementArea on scheme '" +
                std::string(schemeName(config_.scheme)) +
                "' — only way-placement has a WP area");
  WP_ENSURE(bytes % mem::kPageBytes == 0,
            "resizeWayPlacementArea: " + std::to_string(bytes) +
                " is not a multiple of the " +
                std::to_string(mem::kPageBytes) + " B page size");
  config_.wp_area_bytes = bytes;
  itlb_.setWayPlacementLimit(bytes);
  // Lines filled under the old policy may sit in ways the new policy's
  // single-way lookups would never probe (and a way-placed refill next
  // to a stale copy would give the CAM two matching tags), so the OS
  // invalidates the I-cache as part of the attribute change.
  icache_.flush();
  hint_.reset();
  // The flush invalidated every line, so per-line drowsy state now
  // describes lines that no longer exist; carrying it across the
  // resize would skip wake penalties on fresh fills and mis-price
  // leakage. Drop the line state (statistics survive) and assert the
  // invariant: a flushed cache tracks no awake line.
  drowsy_.onCacheFlush();
  WP_ENSURE(drowsy_.awakeLines() == 0,
            "I-cache flushed but the drowsy controller still tracks "
            "awake lines");
  last_valid_ = false;
}

void FetchPath::switchProcess(u32 asid, u32 wp_area_bytes,
                              TlbSwitchPolicy policy) {
  WP_ENSURE(wp_area_bytes % mem::kPageBytes == 0,
            "switchProcess: per-process WP area (" +
                std::to_string(wp_area_bytes) +
                ") must be a multiple of the " +
                std::to_string(mem::kPageBytes) + " B page size");
  WP_ENSURE(config_.scheme == Scheme::kWayPlacement || wp_area_bytes == 0,
            "switchProcess: WP area set but the scheme is '" +
                std::string(schemeName(config_.scheme)) +
                "', not way-placement");
  itlb_.switchContext(asid, wp_area_bytes, policy);
  if (config_.scheme == Scheme::kWayPlacement) {
    // Keep the config in step with the installed area, exactly like
    // resizeWayPlacementArea: the config names the *current* OS policy.
    config_.wp_area_bytes = wp_area_bytes;
  }
  if (!process_active_) {
    // First install: there is no outgoing process, so no state is stale
    // and nothing is flushed — a one-process co-run must stay
    // bit-identical to the same run without a scheduler.
    process_active_ = true;
    return;
  }
  // The I-cache is virtually tagged: lines of the outgoing address
  // space would alias the incoming one's, so the OS invalidates it on
  // every switch (the classic VIVT cost; DESIGN.md §12 records why we
  // model flush rather than physical tags).
  icache_.flush();
  // Way-memoization links died with the lines (eviction listeners saw
  // the flush); the cheap hardware expresses that as one more wired
  // flash-clear — the per-switch invalidation storm the multiprog bench
  // measures, priced like every other flash-clear.
  if (memo_.has_value()) memo_->flashClearLinks();
  // The way-hint bit and the way-prediction MRU describe the outgoing
  // process's access pattern; both are advisory, both restart cold.
  hint_.reset();
  if (config_.scheme == Scheme::kWayPrediction) {
    mru_way_.assign(config_.icache.sets(), 0);
  }
  // Same drowsy invariant as a WP-area resize: a flushed cache tracks
  // no awake line, while the accumulated leakage statistics survive.
  drowsy_.onCacheFlush();
  WP_ENSURE(drowsy_.awakeLines() == 0,
            "I-cache flushed on context switch but the drowsy "
            "controller still tracks awake lines");
  last_valid_ = false;
}

u32 FetchPath::missPenalty() const {
  // 50-cycle memory latency plus one bus cycle per word of the line
  // over the 32-bit memory bus (Table 1). No critical-word-first
  // forwarding: the in-order model stalls the fetch until the whole
  // line has arrived, exactly like the D-cache's missPenalty(), so a
  // miss costs latency + wordsPerLine cycles. (DESIGN.md §5 records
  // why this is the Table-1-faithful choice.)
  return config_.mem_latency_cycles + config_.icache.wordsPerLine();
}

u32 FetchPath::fetch(u32 addr, FetchFlow flow) {
  WP_ENSURE((addr & 3u) == 0, "unaligned instruction fetch");
  if (fault_hook_ != nullptr) fault_hook_->onFetch(*this);
  ++fetch_stats_.fetches;

  const bool same_line =
      last_valid_ &&
      config_.icache.lineAddrOf(addr) == config_.icache.lineAddrOf(last_addr_);

  // The I-TLB is accessed in parallel with the cache on every fetch.
  const Tlb::Result tr = itlb_.access(addr);
  u32 cycles = 0;
  if (!tr.hit) cycles += config_.tlb_walk_cycles;

  switch (config_.scheme) {
    case Scheme::kBaseline:
      cycles += fetchBaseline(addr);
      break;
    case Scheme::kWayPlacement:
      cycles += fetchWayPlacement(addr, same_line, tr.way_placement_page);
      break;
    case Scheme::kWayMemoization:
      cycles += fetchWayMemoization(addr, flow, same_line);
      break;
    case Scheme::kWayPrediction:
      cycles += fetchWayPrediction(addr, same_line);
      break;
  }

  // Every delivered instruction is one data-array word read.
  icache_.countWordRead();

  // Drowsy lines wake on first touch (one-cycle penalty). The fetched
  // line is resident after every path above.
  if (drowsy_.enabled()) {
    const auto way = icache_.probe(addr);
    WP_ENSURE(way.has_value(), "fetched line must be resident");
    if (drowsy_.access(icache_.setIndexOf(addr), *way)) {
      cycles += 1;
      ++fetch_stats_.extra_cycles;
    }
  }

  last_valid_ = true;
  last_addr_ = addr;
  return cycles;
}

u32 FetchPath::fetchLine(u32 addr, FetchFlow flow, u32 n_instructions) {
  WP_ENSURE(n_instructions >= 1, "fetchLine needs at least one instruction");
  const u32 cycles = fetch(addr, flow);
  if (n_instructions == 1) return cycles;

  WP_ENSURE(batchedLineFetchExact(),
            "fetchLine batching requires no fault hook and no drowsy lines");
  const u32 last = addr + 4 * (n_instructions - 1);
  WP_ENSURE(config_.icache.lineAddrOf(addr) == config_.icache.lineAddrOf(last),
            "fetchLine span crosses a cache-line boundary");

  // The remaining n-1 fetches are sequential, same-line and same-page:
  // the first fetch above left the line resident and its page in the
  // I-TLB MRU slot, so each follow-up is a one-cycle hit whose counter
  // deltas are known in closed form. Apply them k-fold.
  const u64 k = n_instructions - 1;
  fetch_stats_.fetches += k;
  const Tlb::Result tr = itlb_.accessRepeat(addr, k);
  CacheStats& cs = icache_.mutableStats();
  // Every delivered instruction is one data-array word read
  // (countWordRead in the per-fetch path).
  cs.data_word_reads += k;

  const std::optional<u32> way = icache_.probe(addr);
  WP_ENSURE(way.has_value(), "fetchLine: line not resident after first fetch");

  const auto noTagHits = [&] {
    // k × lookup(kNoTag): no search, guaranteed hits.
    cs.accesses += k;
    cs.no_tag_lookups += k;
    cs.hits += k;
  };
  const auto fullHits = [&] {
    // k × lookup(kFull) that all hit.
    cs.accesses += k;
    cs.full_lookups += k;
    cs.matchline_precharges += k * config_.icache.ways;
    cs.tag_compares += k * config_.icache.ways;
    cs.hits += k;
  };
  const auto singleWayHits = [&] {
    // k × single-way lookups that all hit (kSingleWay / lookupOneWay).
    cs.accesses += k;
    cs.single_way_lookups += k;
    cs.matchline_precharges += k;
    cs.tag_compares += k;
    cs.hits += k;
  };

  switch (config_.scheme) {
    case Scheme::kBaseline:
      // The baseline has no intra-line optimisation: every follow-up is
      // a full CAM search that hits.
      fullHits();
      break;
    case Scheme::kWayPlacement:
      if (config_.intraline_skip) {
        fetch_stats_.sameline_skips += k;
        noTagHits();
      } else {
        // The first fetch updated the hint with this page's bit, so all
        // follow-ups (same page) predict correctly.
        fetch_stats_.hint_correct += k;
        if (tr.way_placement_page) {
          WP_ENSURE(*way == config_.icache.wayPlacedWayOf(addr),
                    "way-placed line resident in the wrong way");
          fetch_stats_.wp_single_way += k;
          singleWayHits();
        } else {
          fullHits();
        }
      }
      hint_.update(tr.way_placement_page);  // idempotent across the k repeats
      break;
    case Scheme::kWayMemoization:
      if (config_.intraline_skip) {
        fetch_stats_.sameline_skips += k;
        noTagHits();
      } else {
        // Same-line fetches are never linkable (links memoize line
        // crossings only), so each follow-up is a plain full search.
        fullHits();
      }
      break;
    case Scheme::kWayPrediction:
      if (config_.intraline_skip) {
        fetch_stats_.sameline_skips += k;
        noTagHits();
      } else {
        // The first fetch left the set's MRU pointing at our way, so
        // every follow-up is a correct one-way probe.
        WP_ENSURE(mru_way_[icache_.setIndexOf(addr)] == *way,
                  "way-prediction MRU does not point at the fetched line");
        fetch_stats_.waypred_correct += k;
        singleWayHits();
      }
      break;
  }

  last_addr_ = last;  // last_valid_ already set by the first fetch
  return cycles;
}

u32 FetchPath::fetchBaseline(u32 addr) {
  const LookupResult r = icache_.lookup(addr, LookupKind::kFull);
  if (r.hit) return 1;
  icache_.fill(addr, /*way_placed=*/false);
  return 1 + missPenalty();
}

u32 FetchPath::fetchWayPlacement(u32 addr, bool same_line, bool actual_wp) {
  // Intra-line skip: the previous fetch pinned this line resident, so no
  // tag check of any kind is needed.
  if (config_.intraline_skip && same_line) {
    ++fetch_stats_.sameline_skips;
    icache_.lookup(addr, LookupKind::kNoTag);
    hint_.update(actual_wp);
    return 1;
  }

  const bool hinted_wp = hint_.predict();
  u32 cycles = 1;
  bool hit;

  if (hinted_wp && actual_wp) {
    // Correct way-placement access: one tag, one match line.
    ++fetch_stats_.hint_correct;
    ++fetch_stats_.wp_single_way;
    hit = icache_.lookup(addr, LookupKind::kSingleWay).hit;
  } else if (hinted_wp && !actual_wp) {
    // Mispredict case 2 (§4.1): a single-way access was launched but the
    // I-TLB bit reveals a normal page — the access is squashed and the
    // cache re-read with all ways, costing a cycle and the wasted probe.
    ++fetch_stats_.hint_miss_second_access;
    ++squashed_probes_;
    icache_.mutableStats().matchline_precharges += 1;
    icache_.mutableStats().tag_compares += 1;
    cycles += 1;
    ++fetch_stats_.extra_cycles;
    hit = icache_.lookup(addr, LookupKind::kFull).hit;
  } else if (!hinted_wp && actual_wp) {
    // Mispredict case 1: we merely miss the energy saving.
    ++fetch_stats_.hint_miss_lost_saving;
    hit = icache_.lookup(addr, LookupKind::kFull).hit;
  } else {
    ++fetch_stats_.hint_correct;
    hit = icache_.lookup(addr, LookupKind::kFull).hit;
  }

  hint_.update(actual_wp);

  if (!hit) {
    // Way-placement pages always fill their tag-named way so single-way
    // lookups stay exact; other pages use round-robin.
    icache_.fill(addr, /*way_placed=*/actual_wp);
    cycles += missPenalty();
  }
  return cycles;
}

u32 FetchPath::fetchWayMemoization(u32 addr, FetchFlow flow, bool same_line) {
  if (config_.intraline_skip && same_line) {
    ++fetch_stats_.sameline_skips;
    icache_.lookup(addr, LookupKind::kNoTag);
    return 1;
  }

  // Links memoize *line crossings* only: a sequential link belongs to
  // the fall-off-the-end edge and a branch link to one taken edge.
  // Same-line fetches (possible when the intra-line skip is disabled)
  // must neither follow nor overwrite them.
  const bool linkable =
      !same_line && last_valid_ && flow != FetchFlow::kTakenIndirect;
  const WayMemoizer::CrossKind kind = flow == FetchFlow::kSequential
                                          ? WayMemoizer::CrossKind::kSequential
                                          : WayMemoizer::CrossKind::kBranchTaken;

  if (linkable) {
    std::optional<u32> way = memo_->followLink(last_addr_, kind);
    if (way.has_value() && fault_hook_ != nullptr) {
      // Under fault injection the links are parity-protected: a link
      // whose pointer rotted is detected and dropped, degrading this
      // fetch to a full search instead of reading the wrong way. This is
      // the defence silicon needs because — unlike the advisory
      // way-placement state — a blindly-followed bad link executes
      // wrong instructions.
      const std::optional<u32> actual = icache_.probe(addr);
      if (!actual.has_value() || *actual != *way) {
        ++fetch_stats_.link_faults_dropped;
        way.reset();
      }
    }
    if (way.has_value()) {
      // Linked access: no tag search at all. Real hardware fetches from
      // *way* blindly, so the invalidation machinery must guarantee the
      // link is exact — a mismatch here is a model bug that silicon
      // would express as executing the wrong instructions.
      const LookupResult r = icache_.lookup(addr, LookupKind::kNoTag);
      WP_ENSURE(r.way == *way,
                "way-memoization link points at the wrong way");
      return 1;
    }
  }

  const LookupResult r = icache_.lookup(addr, LookupKind::kFull);
  u32 cycles = 1;
  u32 way = r.way;
  if (!r.hit) {
    way = icache_.fill(addr, /*way_placed=*/false);
    if (!config_.wm_precise_invalidation) memo_->flashClearLinks();
    cycles += missPenalty();
  }
  if (linkable && icache_.probe(last_addr_).has_value()) {
    // The fill may have evicted the source line; only a still-resident
    // line can hold the new link.
    memo_->recordLink(last_addr_, kind, addr, way);
  }
  return cycles;
}

u32 FetchPath::fetchWayPrediction(u32 addr, bool same_line) {
  if (config_.intraline_skip && same_line) {
    ++fetch_stats_.sameline_skips;
    icache_.lookup(addr, LookupKind::kNoTag);
    return 1;
  }

  const u32 set = icache_.setIndexOf(addr);
  u32& mru = mru_way_[set];
  u32 cycles = 1;

  const LookupResult first = icache_.lookupOneWay(addr, mru);
  if (first.hit) {
    ++fetch_stats_.waypred_correct;
    return cycles;
  }

  // Mispredict: one extra cycle, search the remaining ways.
  ++fetch_stats_.waypred_mispredict;
  ++fetch_stats_.extra_cycles;
  cycles += 1;
  const LookupResult rest = icache_.lookupAllButOne(addr, mru);
  if (rest.hit) {
    mru = rest.way;
    return cycles;
  }
  mru = icache_.fill(addr, /*way_placed=*/false);
  return cycles + missPenalty();
}

double FetchPath::dataAreaFactor() const {
  return memo_.has_value() ? memo_->dataAreaFactor() : 1.0;
}

u64 FetchPath::linkFlashClears() const {
  return memo_.has_value() ? memo_->flashClears() : 0;
}

void FetchPath::reset() {
  icache_.reset();
  itlb_.reset();
  hint_.reset();
  if (memo_.has_value()) memo_->reset();
  if (config_.scheme == Scheme::kWayPlacement) {
    itlb_.setWayPlacementLimit(config_.wp_area_bytes);
  }
  if (config_.scheme == Scheme::kWayPrediction) {
    mru_way_.assign(config_.icache.sets(), 0);
  }
  drowsy_.reset();
  fetch_stats_.reset();
  squashed_probes_ = 0;
  last_valid_ = false;
  last_addr_ = 0;
  process_active_ = false;
}

}  // namespace wp::cache
