// Way-memoization (Ma et al., "Way memoization to reduce fetch energy in
// instruction caches", WCED at ISCA-28) — the state-of-the-art hardware
// competitor the paper compares against.
//
// Each cache line is augmented with *links* stored in the data side:
//   - one sequential link: the way holding the next sequential line, and
//   - one branch link per instruction slot: the way holding that
//     (direct) branch's target line.
// A 32 B line (8 instructions) therefore carries 9 links; with a valid
// bit plus log2(W) way bits each link is 6 bits for a 32-way cache —
// a 21 % overhead on the data array, exactly the figure in the paper.
//
// A fetch that crosses lines follows the link recorded in the line it
// is leaving; a valid link names the target way, so the tag search is
// skipped entirely. A link must die when its source line is refilled or
// its target line evicted. Two invalidation models are provided:
//
//   - conservative (default, matching the cheap hardware Ma et al.
//     assume): every refill flash-clears ALL link valid bits — a wired
//     clear is trivial in hardware, but each miss forces the whole link
//     web to be re-established;
//   - precise (ablation): per-line generation counters kill exactly the
//     stale links; this is simulator-only bookkeeping that is *generous*
//     to way-memoization.
#pragma once

#include <vector>

#include "cache/cam_cache.hpp"
#include "support/rng.hpp"

namespace wp::cache {

class WayMemoizer final : public CamCache::EvictionListener {
 public:
  /// Attaches to @p cache and registers for eviction notifications.
  explicit WayMemoizer(CamCache& cache);

  enum class CrossKind : u8 {
    kSequential,   ///< fell off the end of the line
    kBranchTaken,  ///< direct branch/call leaving the line
  };

  /// Consults the link for a fetch leaving the line of @p from_addr.
  /// Returns the memoized way if the link is valid, nullopt otherwise.
  /// Counts a link read either way (the link comes out with the data).
  [[nodiscard]] std::optional<u32> followLink(u32 from_addr, CrossKind kind);

  /// Records the way of the line containing @p to_addr into the link of
  /// @p from_addr's line after a tag-checked crossing resolved there.
  void recordLink(u32 from_addr, CrossKind kind, u32 to_addr, u32 to_way);

  /// Eviction callback: clears the evicted line's own links and bumps its
  /// generation so every link pointing at it becomes invalid.
  void onEvict(LineId line) override;

  /// Conservative invalidation: clears every link valid bit in the cache
  /// (called on each refill unless precise invalidation is selected).
  void flashClearLinks();

  /// Soft-error hook: corrupts up to @p events random links — rotting a
  /// valid link's way pointer or raising a dead link's valid bit with a
  /// random target. Unlike the advisory way-placement state, a followed
  /// bad link would fetch the wrong way, so the fetch path pairs this
  /// with a parity check that drops detected-corrupt links (counted in
  /// FetchStats::link_faults_dropped). Returns the number of links
  /// touched.
  u32 faultScrambleLinks(Rng& rng, u32 events);

  [[nodiscard]] u64 flashClears() const { return flash_clears_; }

  /// Extra data-array bits per line from the links.
  [[nodiscard]] u32 linkBitsPerLine() const;

  /// Data-array area scale factor, e.g. 1.21 for a 32 B/32-way line.
  [[nodiscard]] double dataAreaFactor() const;

  void reset();

 private:
  struct Link {
    bool valid = false;
    u32 way = 0;
    LineId target{};
    u64 target_generation = 0;
  };

  struct LineLinks {
    Link sequential;
    std::vector<Link> branch;  // one per instruction slot
  };

  [[nodiscard]] Link& linkFor(u32 from_addr, CrossKind kind);
  [[nodiscard]] u64& generationOf(LineId line);
  [[nodiscard]] LineLinks& linksOf(LineId line);

  CamCache& cache_;
  u32 num_sets_;
  std::vector<LineLinks> links_;      // sets * ways
  std::vector<u64> generations_;      // sets * ways
  u64 flash_clears_ = 0;
};

}  // namespace wp::cache
