// The instruction-fetch path: way-hint bit + I-TLB + I-cache, wired for
// one of the three evaluated schemes.
//
//   kBaseline        — unmodified cache: every fetch is a full CAM search.
//   kWayPlacement    — the paper's scheme: way-hint predicts a
//                      way-placement access; the I-TLB way-placement bit
//                      resolves it; single-way search when correct; both
//                      mispredict cases modelled (lost saving / second
//                      full access costing one cycle and one full search).
//   kWayMemoization  — Ma et al.'s links; intra-line skip included.
//
// The intra-line skip (no tag check when fetching from the same line as
// the previous access, paper §4.2) applies to both optimized schemes and
// can be disabled for the ablation bench.
#pragma once

#include <optional>

#include "cache/cam_cache.hpp"
#include "cache/drowsy.hpp"
#include "cache/tlb.hpp"
#include "cache/way_hint.hpp"
#include "cache/way_memo.hpp"

namespace wp::cache {

enum class Scheme : u8 {
  kBaseline,
  kWayPlacement,
  kWayMemoization,
  /// MRU way prediction (Inoue et al. [6]) — the other hardware
  /// alternative the paper's related work discusses: probe the set's
  /// most-recently-used way first; a mispredict costs a second access
  /// over the remaining W-1 ways plus a cycle.
  kWayPrediction,
};

[[nodiscard]] const char* schemeName(Scheme s);

/// How control arrived at the address being fetched. Way-memoization
/// links are indexed by this: sequential crossings use the sequential
/// link, direct taken branches the per-slot branch link, and indirect
/// jumps can never be linked.
enum class FetchFlow : u8 {
  kSequential,
  kTakenDirect,
  kTakenIndirect,
};

// kBaseline / kWayPlacement / kWayMemoization / kWayPrediction share the
// FetchPath plumbing; the per-fetch decision tree differs per scheme.
struct FetchPathConfig {
  CacheGeometry icache;
  u32 tlb_entries = 32;
  Scheme scheme = Scheme::kBaseline;
  u32 wp_area_bytes = 0;      ///< way-placement area (kWayPlacement only)
  bool intraline_skip = true; ///< §4.2 same-line optimisation
  /// Way-memoization link invalidation: false = conservative flash-clear
  /// on every refill (Ma et al.'s cheap hardware), true = precise
  /// per-target invalidation (generous ablation variant).
  bool wm_precise_invalidation = false;
  /// Drowsy-line window in accesses (0 = off). Orthogonal to the scheme
  /// choice, per the paper's related-work claim; waking a drowsy line
  /// costs a cycle and a little energy, tracked in drowsyStats().
  u32 drowsy_window = 0;
  u32 mem_latency_cycles = 50;
  u32 tlb_walk_cycles = 20;

  /// Validates every field (geometry legality, TLB capacity, WP-area
  /// alignment and scheme consistency), naming the offending field in
  /// the thrown SimError. FetchPath calls this at construction.
  void validate() const;
};

class FetchPath;

/// Observer invoked at the top of every fetch. The fault-injection layer
/// implements this to corrupt advisory state between fetches; attaching
/// a hook also arms the defensive paths (e.g. the way-memoization link
/// parity check) that silicon would need against real soft errors.
class FetchFaultHook {
 public:
  virtual ~FetchFaultHook() = default;
  virtual void onFetch(FetchPath& path) = 0;
};

class FetchPath {
 public:
  explicit FetchPath(const FetchPathConfig& config);

  /// Fetches the instruction at @p addr; returns the cycles consumed by
  /// the fetch (1 for a hit, plus miss/walk/mispredict penalties).
  u32 fetch(u32 addr, FetchFlow flow);

  /// Batched fetch of @p n_instructions consecutive instructions
  /// starting at @p addr, all within one cache line. Equivalent to
  /// fetch(addr, flow) followed by n-1 sequential fetch() calls — every
  /// counter in CacheStats/TlbStats/FetchStats moves by exactly the
  /// same amount — but the n-1 follow-ups are applied in closed form.
  /// Returns the cycles of the *first* fetch; each follow-up costs
  /// exactly one cycle (they hit the just-fetched line on its MRU TLB
  /// page). Only valid when batchedLineFetchExact() holds.
  u32 fetchLine(u32 addr, FetchFlow flow, u32 n_instructions);

  /// True when fetchLine's closed form is exact: no fault hook (hooks
  /// observe and may corrupt state between individual fetches) and no
  /// drowsy controller (lines can fall drowsy mid-line between two
  /// sequential fetches). The block engine checks this and falls back
  /// to the per-instruction interpreter otherwise.
  [[nodiscard]] bool batchedLineFetchExact() const {
    return fault_hook_ == nullptr && !drowsy_.enabled();
  }

  /// OS runtime policy (paper §4.1: the area can be adjusted "even
  /// during program execution"): installs a new way-placement area.
  /// Changing page attributes requires the OS to flush the I-TLB and
  /// invalidate the I-cache, which is modelled here; both costs show up
  /// in the subsequent cold misses. Only valid for kWayPlacement.
  void resizeWayPlacementArea(u32 bytes);

  /// Context switch: installs process @p asid's fetch context with its
  /// per-process way-placement area (@p wp_area_bytes; 0 and required
  /// so for non-way-placement schemes). The I-TLB follows @p policy
  /// (flush vs ASID tags, see Tlb::switchContext); the virtually-tagged
  /// I-cache is invalidated with the old address space, way-memoization
  /// links are flash-cleared with it (the per-switch invalidation
  /// storm, counted in linkFlashClears()), the way-hint bit and the
  /// way-prediction MRU are reset, and drowsy per-line state observes
  /// the flush (onCacheFlush, awake lines checked back to 0). The very
  /// first call merely installs the context — there is no outgoing
  /// process yet, so nothing is flushed and no storm is charged, which
  /// keeps a one-process co-run bit-identical to a solo run.
  void switchProcess(u32 asid, u32 wp_area_bytes, TlbSwitchPolicy policy);

  /// ASID whose context is installed (0 until the first switchProcess).
  [[nodiscard]] u32 currentAsid() const { return itlb_.currentAsid(); }

  /// Forgets fetch history (e.g. between profiling and measurement runs).
  void reset();

  [[nodiscard]] const CacheStats& cacheStats() const {
    return icache_.stats();
  }
  [[nodiscard]] const TlbStats& tlbStats() const { return itlb_.stats(); }
  [[nodiscard]] const FetchStats& fetchStats() const { return fetch_stats_; }
  [[nodiscard]] const FetchPathConfig& config() const { return config_; }
  [[nodiscard]] const CamCache& icache() const { return icache_; }

  /// Data-array area factor (1.0 except for way-memoization's links).
  [[nodiscard]] double dataAreaFactor() const;

  /// Counts squashed single-way probes (mispredict case 2); the energy
  /// model charges them like single-way searches.
  [[nodiscard]] u64 squashedProbes() const { return squashed_probes_; }

  /// Way-memoization flash-clear events (0 for other schemes).
  [[nodiscard]] u64 linkFlashClears() const;

  /// Drowsy-line statistics (all zero when drowsy_window == 0).
  [[nodiscard]] const DrowsyStats& drowsyStats() const {
    return drowsy_.stats();
  }
  [[nodiscard]] u32 icacheLines() const { return drowsy_.totalLines(); }
  /// Lines the drowsy controller currently tracks awake (0 after any
  /// whole-cache invalidation, e.g. a WP-area resize).
  [[nodiscard]] u32 awakeDrowsyLines() const { return drowsy_.awakeLines(); }

  /// Registers @p hook to run before every fetch (nullptr detaches).
  void attachFaultHook(FetchFaultHook* hook) { fault_hook_ = hook; }
  [[nodiscard]] bool faultInjectionArmed() const {
    return fault_hook_ != nullptr;
  }

  /// Mutable handles to the advisory state a fault injector may corrupt.
  /// Everything reachable from here is a hint: flipping, clearing or
  /// scrambling it must never change the retired instruction stream.
  struct FaultSurface {
    WayHint& hint;
    Tlb& itlb;
    WayMemoizer* memo;      ///< null unless kWayMemoization
    std::vector<u32>& mru;  ///< empty unless kWayPrediction
  };
  [[nodiscard]] FaultSurface faultSurface() {
    return {hint_, itlb_, memo_.has_value() ? &*memo_ : nullptr, mru_way_};
  }

 private:
  [[nodiscard]] u32 missPenalty() const;
  u32 fetchBaseline(u32 addr);
  u32 fetchWayPlacement(u32 addr, bool same_line, bool actual_wp);
  u32 fetchWayMemoization(u32 addr, FetchFlow flow, bool same_line);
  u32 fetchWayPrediction(u32 addr, bool same_line);

  FetchPathConfig config_;
  CamCache icache_;
  Tlb itlb_;
  WayHint hint_;
  std::optional<WayMemoizer> memo_;
  DrowsyCache drowsy_;
  std::vector<u32> mru_way_;  ///< per-set MRU, way prediction only
  FetchStats fetch_stats_;
  u64 squashed_probes_ = 0;
  FetchFaultHook* fault_hook_ = nullptr;

  bool last_valid_ = false;
  u32 last_addr_ = 0;
  /// True once switchProcess installed a context: the next switch has
  /// an outgoing process and must pay the flush costs.
  bool process_active_ = false;
};

}  // namespace wp::cache
