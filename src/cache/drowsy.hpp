// Drowsy-line leakage control (Flautner et al. [3] "drowsy caches" /
// Kaxiras et al. [10] "cache decay"), the leakage-oriented techniques
// the paper's related work calls *orthogonal* to way-placement. This
// model implements the "simple" drowsy policy: every `window` accesses,
// all lines drop into a state-preserving low-leakage mode; touching a
// drowsy line wakes it, costing one cycle and a little energy.
//
// Leakage bookkeeping is exact under the policy: the controller
// integrates the number of awake lines over access-ticks, which the
// energy model turns into joules.
#pragma once

#include <vector>

#include "support/bitops.hpp"

namespace wp::cache {

struct DrowsyStats {
  u64 wakeups = 0;        ///< drowsy-line accesses (1-cycle penalty each)
  u64 awake_line_ticks = 0;   ///< sum over ticks of awake-line count
  u64 drowsy_line_ticks = 0;  ///< sum over ticks of drowsy-line count
  u64 ticks = 0;          ///< accesses observed
  void reset() { *this = DrowsyStats{}; }
};

class DrowsyCache {
 public:
  /// @p window: accesses between global drowse sweeps (0 disables).
  DrowsyCache(u32 sets, u32 ways, u32 window);

  /// Records an access to the (resident) line at (set, way).
  /// Returns true if the line was drowsy and had to be woken.
  bool access(u32 set, u32 way);

  [[nodiscard]] bool enabled() const { return window_ != 0; }
  [[nodiscard]] u32 totalLines() const {
    return static_cast<u32>(awake_.size());
  }
  [[nodiscard]] u32 awakeLines() const { return awake_count_; }
  [[nodiscard]] const DrowsyStats& stats() const { return stats_; }

  /// Models the drowsy side of a whole-cache invalidation (e.g. the
  /// flush an OS WP-area resize performs): every tracked line is
  /// invalid afterwards, so none may be tracked awake. Unlike reset(),
  /// the accumulated statistics survive — a flush changes which lines
  /// exist, not what the run already spent on wakeups and leakage.
  /// Postcondition (checked): awakeLines() == 0.
  void onCacheFlush();

  void reset();

 private:
  u32 ways_;
  u32 window_;
  u32 until_sweep_;
  u32 awake_count_ = 0;
  std::vector<bool> awake_;
  DrowsyStats stats_;
};

}  // namespace wp::cache
