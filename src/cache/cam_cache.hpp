// CAM-tag set-associative cache model (XScale-style).
//
// Each set is a fully-associative CAM sub-bank holding all its ways
// (Zhang et al., "Highly-associative caches for low-power processors").
// A *full* lookup precharges one match line per way and broadcasts the
// tag to all W comparators. A *single-way* lookup (way-placement access)
// precharges and compares exactly one way. A *no-tag* lookup (intra-line
// or link-directed access) touches the data array only.
//
// Replacement is round-robin per set, as in the XScale. Way-placed fills
// bypass round-robin and go to the way named by the address tag's low
// bits, so a later single-way lookup is guaranteed to find the line if it
// is resident at all.
#pragma once

#include <optional>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/stats.hpp"

namespace wp::cache {

enum class LookupKind : u8 {
  kFull,       ///< search every way of the set
  kSingleWay,  ///< search only the way named by the address tag bits
  kNoTag,      ///< no search; caller asserts the line is resident
};

struct LookupResult {
  bool hit = false;
  u32 way = 0;
};

/// Identifies a resident line (used for eviction notifications).
struct LineId {
  u32 set = 0;
  u32 way = 0;
  friend bool operator==(const LineId&, const LineId&) = default;
};

class CamCache {
 public:
  explicit CamCache(const CacheGeometry& geometry);

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

  /// Performs a lookup, counting tag/data activity. For kSingleWay the
  /// searched way is geometry().wayPlacedWayOf(addr). For kNoTag the line
  /// must be resident (checked; a violation is a model bug).
  LookupResult lookup(u32 addr, LookupKind kind);

  /// Searches exactly one caller-chosen way (way prediction, Inoue et
  /// al. [6]): one match-line precharge, one comparison.
  LookupResult lookupOneWay(u32 addr, u32 way);

  /// Searches every way except @p excluded_way (the second access of a
  /// mispredicted way-predicted fetch): W-1 precharges and comparisons.
  LookupResult lookupAllButOne(u32 addr, u32 excluded_way);

  /// Side-effect-free residency probe (no counters touched).
  [[nodiscard]] std::optional<u32> probe(u32 addr) const;

  /// Brings the line containing @p addr into the cache. If @p way_placed,
  /// the victim way is the tag-named way; otherwise round-robin.
  /// Returns the way filled. Must only be called after a missing lookup.
  u32 fill(u32 addr, bool way_placed);

  /// Marks the line holding @p addr dirty (D-cache stores). Line must be
  /// resident.
  void markDirty(u32 addr);

  /// Counts a data-array word read (instruction delivery / load data).
  void countWordRead() { ++stats_.data_word_reads; }

  /// Counts a data-array word write (store hit).
  void countWordWrite() { ++stats_.data_word_writes; }

  /// Invalidates the whole cache (program change between runs).
  void reset();

  /// Invalidates every line but keeps the accumulated statistics — the
  /// OS cache-maintenance flush used when page attributes change.
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  CacheStats& mutableStats() { return stats_; }

  /// Line-eviction observer hook: the way-memoization layer registers
  /// itself to invalidate links that point at the evicted line.
  class EvictionListener {
   public:
    virtual ~EvictionListener() = default;
    virtual void onEvict(LineId line) = 0;
  };
  void setEvictionListener(EvictionListener* listener) {
    listener_ = listener;
  }

  /// Address of the line currently resident at @p line (valid lines only).
  [[nodiscard]] u32 residentLineAddr(LineId line) const;

  [[nodiscard]] bool lineValid(LineId line) const;

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u32 tag = 0;
  };

  [[nodiscard]] Line& at(u32 set, u32 way);
  [[nodiscard]] const Line& at(u32 set, u32 way) const;

  CacheGeometry geom_;
  u32 num_sets_;
  std::vector<Line> lines_;        // sets * ways, row-major by set
  std::vector<u32> round_robin_;   // next victim way per set
  CacheStats stats_;
  EvictionListener* listener_ = nullptr;
};

}  // namespace wp::cache
