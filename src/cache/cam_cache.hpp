// CAM-tag set-associative cache model (XScale-style).
//
// Each set is a fully-associative CAM sub-bank holding all its ways
// (Zhang et al., "Highly-associative caches for low-power processors").
// A *full* lookup precharges one match line per way and broadcasts the
// tag to all W comparators. A *single-way* lookup (way-placement access)
// precharges and compares exactly one way. A *no-tag* lookup (intra-line
// or link-directed access) touches the data array only.
//
// Replacement is round-robin per set, as in the XScale. Way-placed fills
// bypass round-robin and go to the way named by the address tag's low
// bits, so a later single-way lookup is guaranteed to find the line if it
// is resident at all.
#pragma once

#include <optional>
#include <vector>

#include "cache/geometry.hpp"
#include "cache/stats.hpp"

namespace wp::cache {

enum class LookupKind : u8 {
  kFull,       ///< search every way of the set
  kSingleWay,  ///< search only the way named by the address tag bits
  kNoTag,      ///< no search; caller asserts the line is resident
};

struct LookupResult {
  bool hit = false;
  u32 way = 0;
};

/// Identifies a resident line (used for eviction notifications).
struct LineId {
  u32 set = 0;
  u32 way = 0;
  friend bool operator==(const LineId&, const LineId&) = default;
};

class CamCache {
 public:
  explicit CamCache(const CacheGeometry& geometry);

  [[nodiscard]] const CacheGeometry& geometry() const { return geom_; }

  /// Performs a lookup, counting tag/data activity. For kSingleWay the
  /// searched way is geometry().wayPlacedWayOf(addr). For kNoTag the line
  /// must be resident (checked; a violation is a model bug).
  LookupResult lookup(u32 addr, LookupKind kind);

  /// Searches exactly one caller-chosen way (way prediction, Inoue et
  /// al. [6]): one match-line precharge, one comparison.
  LookupResult lookupOneWay(u32 addr, u32 way);

  /// Searches every way except @p excluded_way (the second access of a
  /// mispredicted way-predicted fetch): W-1 precharges and comparisons.
  LookupResult lookupAllButOne(u32 addr, u32 excluded_way);

  /// Side-effect-free residency probe (no counters touched).
  [[nodiscard]] std::optional<u32> probe(u32 addr) const;

  /// Brings the line containing @p addr into the cache. If @p way_placed,
  /// the victim way is the tag-named way; otherwise round-robin.
  /// Returns the way filled. Must only be called after a missing lookup.
  u32 fill(u32 addr, bool way_placed);

  /// Marks the line holding @p addr dirty (D-cache stores). Line must be
  /// resident.
  void markDirty(u32 addr);

  /// Same, for a caller that already knows the resident way from its
  /// lookup or fill — skips the residency search. @p way must be the
  /// way holding @p addr's line (checked).
  void markDirty(u32 addr, u32 way);

  /// Counts a data-array word read (instruction delivery / load data).
  void countWordRead() { ++stats_.data_word_reads; }

  /// Counts a data-array word write (store hit).
  void countWordWrite() { ++stats_.data_word_writes; }

  /// Invalidates the whole cache (program change between runs).
  void reset();

  /// Invalidates every line but keeps the accumulated statistics — the
  /// OS cache-maintenance flush used when page attributes change.
  void flush();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  CacheStats& mutableStats() { return stats_; }

  /// Line-eviction observer hook: the way-memoization layer registers
  /// itself to invalidate links that point at the evicted line.
  class EvictionListener {
   public:
    virtual ~EvictionListener() = default;
    virtual void onEvict(LineId line) = 0;
  };
  void setEvictionListener(EvictionListener* listener) {
    listener_ = listener;
  }

  /// Address of the line currently resident at @p line (valid lines only).
  [[nodiscard]] u32 residentLineAddr(LineId line) const;

  [[nodiscard]] bool lineValid(LineId line) const;

  // The geometry's setOf/tagOf helpers re-derive their shift amounts
  // (with pow-of-two validation and divisions) on every call; the model
  // performs one address split per simulated cache access, so these use
  // widths precomputed at construction. Same results as geometry().setOf
  // / geometry().tagOf.
  [[nodiscard]] u32 setIndexOf(u32 addr) const {
    return (addr >> offset_bits_) & set_mask_;
  }
  [[nodiscard]] u32 tagFieldOf(u32 addr) const { return addr >> tag_shift_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    u32 tag = 0;
  };

  [[nodiscard]] Line& at(u32 set, u32 way);
  [[nodiscard]] const Line& at(u32 set, u32 way) const;

  /// The unique matching way of (set, tag), or ways if not resident.
  /// Host-side fast path: tries the set's last-hit way before scanning.
  /// Exact because fill() keeps tags unique within a set, so the search
  /// order cannot change which way (if any) matches.
  [[nodiscard]] u32 findWay(u32 set, u32 tag) const;

  CacheGeometry geom_;
  u32 num_sets_;
  u32 offset_bits_;                // log2(line_bytes)
  u32 set_mask_;                   // sets - 1
  u32 tag_shift_;                  // offset_bits_ + log2(sets)
  std::vector<Line> lines_;        // sets * ways, row-major by set
  std::vector<u32> round_robin_;   // next victim way per set
  /// Last way hit per set — a host-side search accelerator, not modelled
  /// state (the modelled CAM searches all ways in parallel regardless).
  mutable std::vector<u32> hot_way_;
  CacheStats stats_;
  EvictionListener* listener_ = nullptr;
};

}  // namespace wp::cache
