// Write-back, write-allocate data cache used by the core's load/store
// unit. Neither scheme modifies the D-cache; it exists so that total
// processor energy (the ED-product denominator) includes realistic
// data-side activity.
#pragma once

#include "cache/cam_cache.hpp"

namespace wp::cache {

struct DataCacheConfig {
  CacheGeometry geometry;
  u32 mem_latency_cycles = 50;
};

class DataCache {
 public:
  explicit DataCache(const DataCacheConfig& config);

  /// Load access: returns cycles (1 on hit, 1 + miss penalty otherwise).
  u32 load(u32 addr);

  /// Store access (write-allocate): returns cycles. Stores complete
  /// through a write buffer, so a hit costs one cycle.
  u32 store(u32 addr);

  void reset();

  [[nodiscard]] const CacheStats& stats() const { return cache_.stats(); }
  [[nodiscard]] const CamCache& cache() const { return cache_; }

 private:
  [[nodiscard]] u32 missPenalty() const;
  DataCacheConfig config_;
  CamCache cache_;
};

}  // namespace wp::cache
