#include "cache/way_memo.hpp"

#include "support/ensure.hpp"

namespace wp::cache {

WayMemoizer::WayMemoizer(CamCache& cache)
    : cache_(cache), num_sets_(cache.geometry().sets()) {
  const std::size_t lines =
      static_cast<std::size_t>(num_sets_) * cache_.geometry().ways;
  links_.resize(lines);
  for (LineLinks& l : links_) {
    l.branch.resize(cache_.geometry().wordsPerLine());
  }
  generations_.assign(lines, 0);
  cache_.setEvictionListener(this);
}

WayMemoizer::LineLinks& WayMemoizer::linksOf(LineId line) {
  return links_[static_cast<std::size_t>(line.set) * cache_.geometry().ways +
                line.way];
}

u64& WayMemoizer::generationOf(LineId line) {
  return generations_[static_cast<std::size_t>(line.set) *
                          cache_.geometry().ways +
                      line.way];
}

WayMemoizer::Link& WayMemoizer::linkFor(u32 from_addr, CrossKind kind) {
  const auto way = cache_.probe(from_addr);
  WP_ENSURE(way.has_value(), "link access on non-resident source line");
  LineLinks& l = linksOf({cache_.geometry().setOf(from_addr), *way});
  if (kind == CrossKind::kSequential) return l.sequential;
  return l.branch[cache_.geometry().slotOf(from_addr)];
}

std::optional<u32> WayMemoizer::followLink(u32 from_addr, CrossKind kind) {
  ++cache_.mutableStats().link_reads;
  const Link& link = linkFor(from_addr, kind);
  if (link.valid && link.target_generation == generationOf(link.target)) {
    ++cache_.mutableStats().linked_accesses;
    return link.way;
  }
  return std::nullopt;
}

void WayMemoizer::recordLink(u32 from_addr, CrossKind kind, u32 to_addr,
                             u32 to_way) {
  Link& link = linkFor(from_addr, kind);
  const LineId target{cache_.geometry().setOf(to_addr), to_way};
  link.valid = true;
  link.way = to_way;
  link.target = target;
  link.target_generation = generationOf(target);
  ++cache_.mutableStats().link_writes;
}

void WayMemoizer::onEvict(LineId line) {
  // Links *to* this line die via the generation bump; links *in* it die
  // because the refill overwrites the link storage.
  ++generationOf(line);
  LineLinks& l = linksOf(line);
  u64 cleared = l.sequential.valid ? 1 : 0;
  l.sequential = Link{};
  for (Link& b : l.branch) {
    if (b.valid) ++cleared;
    b = Link{};
  }
  cache_.mutableStats().link_invalidations += cleared;
}

void WayMemoizer::flashClearLinks() {
  ++flash_clears_;
  u64 cleared = 0;
  for (LineLinks& l : links_) {
    if (l.sequential.valid) ++cleared;
    l.sequential.valid = false;
    for (Link& b : l.branch) {
      if (b.valid) ++cleared;
      b.valid = false;
    }
  }
  cache_.mutableStats().link_invalidations += cleared;
}

u32 WayMemoizer::faultScrambleLinks(Rng& rng, u32 events) {
  const u32 ways = cache_.geometry().ways;
  u32 touched = 0;
  for (u32 i = 0; i < events; ++i) {
    LineLinks& l = links_[rng.below(links_.size())];
    const u64 slot = rng.below(1 + l.branch.size());
    Link& link = slot == 0 ? l.sequential : l.branch[slot - 1];
    if (link.valid) {
      link.way = static_cast<u32>(rng.below(ways));
    } else {
      // A spuriously-raised valid bit with a random target; pin the
      // generation to the target's current one so the rotten link passes
      // the generation check and only the parity check can catch it.
      link.valid = true;
      link.way = static_cast<u32>(rng.below(ways));
      link.target = {static_cast<u32>(rng.below(num_sets_)),
                     static_cast<u32>(rng.below(ways))};
      link.target_generation = generationOf(link.target);
    }
    ++touched;
  }
  return touched;
}

u32 WayMemoizer::linkBitsPerLine() const {
  const u32 links = cache_.geometry().wordsPerLine() + 1;
  const u32 bits_per_link = cache_.geometry().wayBits() + 1;  // way + valid
  return links * bits_per_link;
}

double WayMemoizer::dataAreaFactor() const {
  const double line_bits = cache_.geometry().line_bytes * 8.0;
  return (line_bits + linkBitsPerLine()) / line_bits;
}

void WayMemoizer::reset() {
  for (LineLinks& l : links_) {
    l.sequential = Link{};
    for (Link& b : l.branch) b = Link{};
  }
  std::fill(generations_.begin(), generations_.end(), 0u);
  flash_clears_ = 0;
}

}  // namespace wp::cache
