// Cache geometry: size/associativity/line-size arithmetic shared by the
// cache model and the energy model.
//
// Address split (32-bit physical addresses):
//   [ tag | set index | line offset ]
//
// Way-placement (paper §4.2): on a way-placement access the way inside
// the set is selected by the *least-significant bits of the tag* — a
// 32-way cache uses the low 5 tag bits. The tag stored and compared stays
// full length (the way-selection bits are also part of it).
#pragma once

#include <string>

#include "support/bitops.hpp"

namespace wp::cache {

struct CacheGeometry {
  u32 size_bytes = 32 * 1024;
  u32 line_bytes = 32;
  u32 ways = 32;

  /// Full-field validation with the offending field named in the error;
  /// the cache models call this at construction so a bad geometry fails
  /// loudly instead of producing nonsense counters.
  void validate() const {
    WP_ENSURE(size_bytes > 0 && isPow2(size_bytes),
              "CacheGeometry.size_bytes (" + std::to_string(size_bytes) +
                  ") must be a non-zero power of two");
    WP_ENSURE(line_bytes >= 4 && isPow2(line_bytes),
              "CacheGeometry.line_bytes (" + std::to_string(line_bytes) +
                  ") must be a power of two >= one 4-byte instruction");
    WP_ENSURE(ways > 0 && isPow2(ways),
              "CacheGeometry.ways (" + std::to_string(ways) +
                  ") must be a non-zero power of two");
    WP_ENSURE(size_bytes / line_bytes >= ways,
              "CacheGeometry.size_bytes (" + std::to_string(size_bytes) +
                  ") holds fewer lines than CacheGeometry.ways (" +
                  std::to_string(ways) + ")");
  }

  [[nodiscard]] u32 sets() const {
    WP_ENSURE(isPow2(size_bytes) && isPow2(line_bytes) && isPow2(ways),
              "cache geometry fields must be powers of two");
    const u32 lines = size_bytes / line_bytes;
    WP_ENSURE(lines >= ways, "cache smaller than one set");
    return lines / ways;
  }

  [[nodiscard]] u32 offsetBits() const { return log2Exact(line_bytes); }
  [[nodiscard]] u32 setBits() const { return log2Exact(sets()); }
  [[nodiscard]] u32 wayBits() const { return log2Exact(ways); }

  /// Width of the stored tag for 32-bit addresses.
  [[nodiscard]] u32 tagBits() const { return 32 - offsetBits() - setBits(); }

  [[nodiscard]] u32 setOf(u32 addr) const {
    return bits(addr, offsetBits() + setBits() - 1, offsetBits());
  }

  [[nodiscard]] u32 tagOf(u32 addr) const {
    return addr >> (offsetBits() + setBits());
  }

  /// Address of the first byte of the line containing @p addr.
  [[nodiscard]] u32 lineAddrOf(u32 addr) const {
    return addr & ~(line_bytes - 1);
  }

  /// Instruction slot (word index) of @p addr within its line.
  [[nodiscard]] u32 slotOf(u32 addr) const {
    return (addr & (line_bytes - 1)) / 4;
  }

  /// Way selected for a way-placed line: low log2(ways) bits of the tag.
  [[nodiscard]] u32 wayPlacedWayOf(u32 addr) const {
    return tagOf(addr) & (ways - 1);
  }

  [[nodiscard]] u32 wordsPerLine() const { return line_bytes / 4; }
};

}  // namespace wp::cache
