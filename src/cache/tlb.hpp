// Instruction TLB with the paper's one-bit-per-entry extension.
//
// The way-placement area is a multiple of the page size starting at the
// beginning of the binary; the OS sets a *way-placement bit* in each
// I-TLB entry when it installs the translation (paper §4.1). Our "OS" is
// the setWayPlacementLimit policy: pages whose start address is below the
// limit are way-placement pages.
//
// The TLB is fully associative with FIFO replacement (32 entries in the
// baseline machine, matching Table 1).
#pragma once

#include <vector>

#include "cache/stats.hpp"
#include "mem/memory.hpp"

namespace wp::cache {

class Tlb {
 public:
  explicit Tlb(u32 entries);

  struct Result {
    bool hit = false;
    bool way_placement_page = false;
  };

  /// Translates @p addr; on a miss the entry is installed (the walk cost
  /// is charged by the caller from stats().misses).
  Result access(u32 addr);

  /// Batched form of @p count repeat accesses to the page of @p addr,
  /// valid only directly after an access() to the same page: the MRU
  /// entry must still hold that translation, so every repeat is a hit
  /// and only the access counter moves. Used by FetchPath::fetchLine for
  /// intra-line sequential fetches (which never cross a page).
  Result accessRepeat(u32 addr, u64 count);

  /// OS policy: addresses below @p bytes lie in the way-placement area.
  /// The limit must be page-aligned. Changing it flushes the TLB, which
  /// is what an OS updating page attributes would require.
  void setWayPlacementLimit(u32 bytes);

  [[nodiscard]] u32 wayPlacementLimit() const { return wp_limit_; }

  /// True if @p addr lies in the way-placement area (the OS view; the
  /// hardware only sees the bit after a TLB access).
  [[nodiscard]] bool inWayPlacementArea(u32 addr) const {
    return addr < wp_limit_;
  }

  void reset();

  [[nodiscard]] const TlbStats& stats() const { return stats_; }

  /// Number of entry slots (the fault-injection surface).
  [[nodiscard]] u32 entryCount() const {
    return static_cast<u32>(entries_.size());
  }

  /// Soft-error hook: inverts the cached way-placement bit of entry
  /// @p index. Returns false when the slot holds no valid translation.
  /// The OS page table keeps the truth, so the next re-walk of the page
  /// heals the entry.
  bool faultFlipWpBit(u32 index);

  /// Soft-error hook: clears every cached way-placement bit (a burst
  /// upset). Returns the number of bits that were set.
  u32 faultClearWpBits();

 private:
  struct Entry {
    bool valid = false;
    u32 vpn = 0;
    bool wp_bit = false;
  };

  std::vector<Entry> entries_;
  u32 mru_ = 0;  ///< simulator fast path; no architectural effect
  u32 fifo_next_ = 0;
  u32 wp_limit_ = 0;
  TlbStats stats_;
};

}  // namespace wp::cache
