// Instruction TLB with the paper's one-bit-per-entry extension.
//
// The way-placement area is a multiple of the page size starting at the
// beginning of the binary; the OS sets a *way-placement bit* in each
// I-TLB entry when it installs the translation (paper §4.1). Our "OS" is
// the setWayPlacementLimit policy: pages whose start address is below the
// limit are way-placement pages.
//
// The TLB is fully associative with FIFO replacement (32 entries in the
// baseline machine, matching Table 1).
//
// Entries are ASID-tagged: a translation belongs to the process that
// installed it, and a lookup only matches entries of the current
// address-space. Solo runs never leave ASID 0, so the tag is invisible
// to them; the guest scheduler switches spaces via switchContext(),
// choosing between the two classic policies (flush everything, or keep
// foreign entries resident under their tags).
#pragma once

#include <vector>

#include "cache/stats.hpp"
#include "mem/memory.hpp"

namespace wp::cache {

/// What a context switch does to the I-TLB (DESIGN.md §12). The WP bit
/// is per-process OS state riding the translation, so either the whole
/// TLB is flushed with the address space, or entries stay resident but
/// are tagged with their owner's ASID and can only match it.
enum class TlbSwitchPolicy : u8 {
  kFlush,       ///< invalidate every entry on switch (untagged hardware)
  kAsidTagged,  ///< keep entries; matching requires the owning ASID
};

[[nodiscard]] const char* tlbSwitchPolicyName(TlbSwitchPolicy p);

class Tlb {
 public:
  explicit Tlb(u32 entries);

  struct Result {
    bool hit = false;
    bool way_placement_page = false;
  };

  /// Translates @p addr; on a miss the entry is installed (the walk cost
  /// is charged by the caller from stats().misses).
  Result access(u32 addr);

  /// Batched form of @p count repeat accesses to the page of @p addr,
  /// valid only directly after an access() to the same page: the MRU
  /// entry must still hold that translation, so every repeat is a hit
  /// and only the access counter moves. Used by FetchPath::fetchLine for
  /// intra-line sequential fetches (which never cross a page).
  Result accessRepeat(u32 addr, u64 count);

  /// OS policy: addresses below @p bytes lie in the way-placement area.
  /// The limit must be page-aligned. Changing it flushes the TLB, which
  /// is what an OS updating page attributes would require.
  void setWayPlacementLimit(u32 bytes);

  [[nodiscard]] u32 wayPlacementLimit() const { return wp_limit_; }

  /// True if @p addr lies in the way-placement area (the OS view; the
  /// hardware only sees the bit after a TLB access).
  [[nodiscard]] bool inWayPlacementArea(u32 addr) const {
    return addr < wp_limit_;
  }

  /// Switches to process @p asid's address space: installs its
  /// way-placement limit (its page table's view of the WP area) and
  /// applies @p policy to the resident entries. Under kFlush every
  /// entry dies with the old space; under kAsidTagged they survive but
  /// can only match their owner. Either way the MRU shortcut is dropped
  /// — it may point at the outgoing process's translation.
  void switchContext(u32 asid, u32 wp_limit_bytes, TlbSwitchPolicy policy);

  [[nodiscard]] u32 currentAsid() const { return cur_asid_; }

  void reset();

  [[nodiscard]] const TlbStats& stats() const { return stats_; }

  /// Number of entry slots (the fault-injection surface).
  [[nodiscard]] u32 entryCount() const {
    return static_cast<u32>(entries_.size());
  }

  /// Soft-error hook: inverts the cached way-placement bit of entry
  /// @p index. Returns false when the slot holds no valid translation.
  /// The OS page table keeps the truth, so the next re-walk of the page
  /// heals the entry.
  bool faultFlipWpBit(u32 index);

  /// Soft-error hook: clears every cached way-placement bit (a burst
  /// upset). Returns the number of bits that were set.
  u32 faultClearWpBits();

 private:
  struct Entry {
    bool valid = false;
    u32 vpn = 0;
    u32 asid = 0;
    bool wp_bit = false;
  };

  /// Sentinel for "no MRU entry": every flush path parks mru_ here so a
  /// batched accessRepeat can never silently ride a dead translation.
  static constexpr u32 kNoMru = ~0u;

  std::vector<Entry> entries_;
  u32 mru_ = kNoMru;  ///< simulator fast path; no architectural effect
  u32 fifo_next_ = 0;
  u32 wp_limit_ = 0;
  u32 cur_asid_ = 0;
  TlbStats stats_;
};

}  // namespace wp::cache
