// Observability primitives for the experiment harness: a thread-safe
// counter/timer registry, RAII timing spans, and a JSONL trace writer.
//
// The registry aggregates *host-side* activity (phase wall-clock, memo
// hits, guest instructions simulated); nothing here feeds back into the
// simulated machine, so instrumentation can never perturb a result —
// tables stay byte-identical whether or not a trace is being recorded.
//
// The trace writer emits one JSON object per line (JSONL), append-only
// and flushed per event so a crashed sweep still leaves a readable
// prefix. File errors follow the harness's strict-environment policy:
// a requested trace that cannot be opened or written is a startup/run
// error (exit 1 with a message naming the path), never a silent no-op.
#pragma once

#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "support/bitops.hpp"

namespace wp {

/// Escapes @p s for inclusion inside a double-quoted JSON string.
[[nodiscard]] std::string jsonEscape(const std::string& s);

/// Reports an unusable metrics/report output file and exits with status
/// 1 (the strict-environment policy: a requested artifact that cannot
/// be produced is an error, not a silent omission). @p what names the
/// knob (e.g. "WP_JSON"), @p detail the failing operation.
[[noreturn]] void dieOnIoError(const std::string& what,
                               const std::string& path,
                               const std::string& detail);

/// fsyncs the directory containing @p path (the path's dirname, or "."
/// when it has none). Required after creating or renaming a file whose
/// *existence* must survive a crash: fsyncing the file alone makes its
/// bytes durable, but on ext4-class filesystems the directory entry
/// pointing at them is separate metadata with its own durability.
/// Returns false (with errno set) instead of exiting so callers choose
/// their own severity — the checkpoint journal dies, the result store
/// degrades.
[[nodiscard]] bool fsyncDirContaining(const std::string& path);

/// CPU time consumed by the *calling thread*, in seconds. Unlike a wall
/// clock this does not advance while the thread is descheduled, so
/// spans measured with it are comparable across WP_JOBS settings — on
/// an oversubscribed machine a wall-clock span charges the cell for
/// time the scheduler gave to its neighbours.
[[nodiscard]] double threadCpuSeconds();

/// Monotonic u64 event counter; add() is safe from any thread.
class Counter {
 public:
  void add(u64 n = 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    value_ += n;
  }
  [[nodiscard]] u64 value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  mutable std::mutex mutex_;
  u64 value_ = 0;
};

/// Accumulated duration + span count; record() is safe from any thread.
class Timer {
 public:
  void record(std::chrono::nanoseconds d) {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ns_ += static_cast<u64>(d.count());
    ++count_;
  }
  [[nodiscard]] u64 totalNanoseconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ns_;
  }
  [[nodiscard]] u64 count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }
  [[nodiscard]] double seconds() const {
    return static_cast<double>(totalNanoseconds()) * 1e-9;
  }

 private:
  mutable std::mutex mutex_;
  u64 total_ns_ = 0;
  u64 count_ = 0;
};

/// Named counters and timers, created on first use. Lookup returns a
/// reference that stays valid for the registry's lifetime, so hot paths
/// can cache it and pay only the atomic add per event.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Timer& timer(const std::string& name);

  struct TimerSnapshot {
    u64 total_ns = 0;
    u64 count = 0;
  };
  /// A consistent copy for reporting (names sorted by map order).
  [[nodiscard]] std::map<std::string, u64> counterValues() const;
  [[nodiscard]] std::map<std::string, TimerSnapshot> timerValues() const;

  /// Writes `"counters": {...}, "timers": {...}` (no surrounding
  /// braces) so callers can embed the registry in a larger report.
  void writeJsonFields(std::ostream& os, const std::string& indent) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// RAII span: records the elapsed time into @p timer on destruction (or
/// at an explicit stop(), which also returns the elapsed seconds).
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(&timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (timer_ != nullptr) stop();
  }

  /// Ends the span now; returns elapsed seconds. Idempotent.
  double stop() {
    if (timer_ == nullptr) return last_seconds_;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed));
    last_seconds_ = std::chrono::duration<double>(elapsed).count();
    timer_ = nullptr;
    return last_seconds_;
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
  double last_seconds_ = 0.0;
};

/// One trace event: an ordered field list rendered as a JSON object.
/// The event name becomes the leading `"ev"` field; the writer injects
/// `"ts"` (seconds since trace start) right after it.
class TraceEvent {
 public:
  explicit TraceEvent(std::string name) : name_(std::move(name)) {}

  TraceEvent& str(const std::string& key, const std::string& value);
  TraceEvent& num(const std::string& key, u64 value);
  TraceEvent& num(const std::string& key, unsigned value) {
    return num(key, static_cast<u64>(value));
  }
  TraceEvent& num(const std::string& key, int value);
  TraceEvent& num(const std::string& key, double value);
  TraceEvent& boolean(const std::string& key, bool value);

  /// `{"ev": "<name>", "ts": <ts>, <fields...>}` — no trailing newline.
  [[nodiscard]] std::string render(double ts_seconds) const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Append-only JSONL writer with per-record *durability*: every line is
/// written straight to the file descriptor and fsync'd before append()
/// returns, so even a SIGKILL loses at most the in-flight record. This
/// is the storage primitive under the sweep checkpoint journal
/// (WP_CHECKPOINT), where a torn tail must be the worst possible
/// damage. Thread-safe; construction and every append fail loudly
/// (exit 1, naming @p knob) on I/O errors — see dieOnIoError().
class DurableJsonlWriter {
 public:
  DurableJsonlWriter(std::string path, std::string knob);
  ~DurableJsonlWriter();
  DurableJsonlWriter(const DurableJsonlWriter&) = delete;
  DurableJsonlWriter& operator=(const DurableJsonlWriter&) = delete;

  /// Appends @p json_line (one JSON object, no trailing newline) and
  /// fsyncs before returning.
  void append(const std::string& json_line);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] u64 recordsWritten() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }

 private:
  std::string path_;
  std::string knob_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  u64 records_ = 0;
};

/// Append-only JSONL event log. Thread-safe; every line is flushed so a
/// crash loses at most the in-flight event. Both construction and every
/// write fail loudly (exit 1) on I/O errors — see dieOnIoError().
class TraceWriter {
 public:
  /// @p knob names the environment variable requesting the trace; it
  /// appears in error messages ("WP_TRACE: cannot open ...").
  TraceWriter(std::string path, std::string knob = "WP_TRACE");

  void write(const TraceEvent& event);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] u64 eventsWritten() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
  }

 private:
  std::string path_;
  std::string knob_;
  std::ofstream out_;
  mutable std::mutex mutex_;
  u64 events_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wp
