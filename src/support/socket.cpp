#include "support/socket.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace wp::support {

namespace {

/// Fills @p addr for @p path; false when the path cannot fit in
/// sun_path (a kernel-imposed ~107-byte limit a caller can hit with a
/// deep temp directory — better a named error than silent truncation).
bool fillAddr(const std::string& path, sockaddr_un& addr,
              std::string& error) {
  std::memset(&addr, 0, sizeof addr);
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof addr.sun_path) {
    error = "socket path '" + path + "' is empty or longer than " +
            std::to_string(sizeof addr.sun_path - 1) +
            " bytes (sun_path limit)";
    return false;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

int listenUnix(const std::string& path, int backlog, std::string& error) {
  sockaddr_un addr;
  if (!fillAddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  // Crash-only restart: a SIGKILLed daemon leaves its socket file
  // behind; the successor replaces it instead of refusing to start.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    error = "bind('" + path + "'): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  if (::listen(fd, backlog) != 0) {
    error = "listen('" + path + "'): " + std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    error = std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return -1;
  }
  return fd;
}

int connectUnix(const std::string& path, std::string& error) {
  sockaddr_un addr;
  if (!fillAddr(path, addr, error)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    error = std::string("socket(): ") + std::strerror(errno);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    error = "connect('" + path + "'): " + std::strerror(errno);
    ::close(fd);
    return -1;
  }
  return fd;
}

bool sendAll(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool LineReader::next(std::string& line, std::size_t max_bytes) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_bytes) return false;
      line.assign(buf_, 0, nl);
      buf_.erase(0, nl + 1);
      return true;
    }
    if (buf_.size() > max_bytes) return false;  // unbounded "line"
    if (eof_) return false;
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      eof_ = true;
      continue;  // one more pass: the buffer may hold a final line
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace wp::support
