#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/ensure.hpp"

namespace wp {

double mean(std::span<const double> xs) {
  WP_ENSURE(!xs.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  WP_ENSURE(!xs.empty(), "geomean of empty span");
  double s = 0.0;
  for (double x : xs) {
    WP_ENSURE(x > 0.0, "geomean requires positive values");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double minOf(std::span<const double> xs) {
  WP_ENSURE(!xs.empty(), "minOf of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) {
  WP_ENSURE(!xs.empty(), "maxOf of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

double Accumulator::mean() const {
  WP_ENSURE(n_ > 0, "mean of empty accumulator");
  return sum_ / static_cast<double>(n_);
}

double Accumulator::min() const {
  WP_ENSURE(n_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  WP_ENSURE(n_ > 0, "max of empty accumulator");
  return max_;
}

}  // namespace wp
