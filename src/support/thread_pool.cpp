#include "support/thread_pool.hpp"

#include <utility>

namespace wp {

unsigned ThreadPool::hardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = threads == 0 ? hardwareThreads() : threads;
  deques_.resize(n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

namespace {
// Index of the worker deque the calling thread owns, or -1 when the
// caller is not a pool worker (external submit).
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::currentWorkerIndex() { return t_worker_index; }

void ThreadPool::submit(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const unsigned home =
        t_worker_index >= 0 && static_cast<std::size_t>(t_worker_index) <
                                   deques_.size()
            ? static_cast<unsigned>(t_worker_index)
            : (next_victim_++ % static_cast<unsigned>(deques_.size()));
    deques_[home].push_back(std::move(task));
    ++queued_;
  }
  work_cv_.notify_one();
}

bool ThreadPool::popTask(unsigned me, Task& out) {
  // Own deque, newest first: the task this worker just spawned is the
  // one whose working set is still warm.
  if (!deques_[me].empty()) {
    out = std::move(deques_[me].back());
    deques_[me].pop_back();
    return true;
  }
  // Steal oldest-first from the others, so a victim keeps its own
  // recently-pushed (hot) end.
  for (std::size_t k = 1; k < deques_.size(); ++k) {
    auto& victim = deques_[(me + k) % deques_.size()];
    if (!victim.empty()) {
      out = std::move(victim.front());
      victim.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(unsigned me) {
  t_worker_index = static_cast<int>(me);
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    Task task;
    if (popTask(me, task)) {
      --queued_;
      ++running_;
      lock.unlock();
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      task = nullptr;  // destroy captures outside the lock
      lock.lock();
      --running_;
      if (error && !first_error_) first_error_ = error;
      if (queued_ == 0 && running_ == 0) done_cv_.notify_all();
      continue;
    }
    if (stopping_) return;
    work_cv_.wait(lock);
  }
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return queued_ == 0 && running_ == 0; });
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace wp
