// Work-stealing thread pool for the sweep executor.
//
// Each worker owns a deque: it pushes and pops its own work LIFO (hot in
// cache) and steals FIFO from the back of a victim's deque when it runs
// dry — the classic Blumofe/Leiserson discipline. Tasks here are whole
// priced simulations (tens of milliseconds to seconds each), so the
// deques share one mutex instead of lock-free CAS loops: contention on
// coarse tasks is unmeasurable, and the single-lock design is easy to
// reason about and clean under ThreadSanitizer.
//
// Exceptions thrown by a task are captured; wait() rethrows the first
// one after the queue drains, so a failing simulation aborts the sweep
// with its original SimError instead of killing a worker thread.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wp {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns @p threads workers; 0 means one per hardware thread.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains remaining work, joins the workers. Pending exceptions are
  /// dropped — call wait() first if you care about them.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Callable from any thread, including from inside a
  /// running task (the task lands on the submitting worker's own deque).
  void submit(Task task);

  /// Blocks until every submitted task has finished, then rethrows the
  /// first exception any task threw (if any). The pool stays usable
  /// afterwards — submit/wait cycles can repeat.
  void wait();

  [[nodiscard]] unsigned threadCount() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a floor of 1.
  [[nodiscard]] static unsigned hardwareThreads();

  /// Dense index of the pool worker running the calling thread, or -1
  /// when called from a thread no pool owns (e.g. main). Used by the
  /// sweep trace to attribute events to workers.
  [[nodiscard]] static int currentWorkerIndex();

 private:
  void workerLoop(unsigned me);
  /// Pops the next task for worker @p me (own deque first, then steals);
  /// returns false when there is nothing to run right now.
  bool popTask(unsigned me, Task& out);

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes idle workers
  std::condition_variable done_cv_;   ///< wakes wait()
  std::vector<std::deque<Task>> deques_;  ///< one per worker, under mutex_
  std::size_t queued_ = 0;     ///< tasks sitting in deques
  std::size_t running_ = 0;    ///< tasks currently executing
  std::exception_ptr first_error_;
  bool stopping_ = false;
  unsigned next_victim_ = 0;   ///< round-robin home for external submits
  std::vector<std::thread> workers_;
};

}  // namespace wp
