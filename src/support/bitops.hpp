// Bit-manipulation helpers shared by the ISA encoder, the cache geometry
// computations and the energy model. All functions are constexpr and
// operate on unsigned types per Core Guidelines ES.101 (use unsigned for
// bit manipulation).
#pragma once

#include <bit>
#include <cstdint>

#include "support/ensure.hpp"

namespace wp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// True iff @p v is a power of two (zero is not).
[[nodiscard]] constexpr bool isPow2(u64 v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// log2 of an exact power of two; throws for anything else.
[[nodiscard]] inline u32 log2Exact(u64 v) {
  WP_ENSURE(isPow2(v), "log2Exact requires a power of two");
  return static_cast<u32>(std::countr_zero(v));
}

/// Smallest power-of-two exponent e with 2^e >= v (v >= 1).
[[nodiscard]] constexpr u32 ceilLog2(u64 v) noexcept {
  u32 e = 0;
  u64 p = 1;
  while (p < v) {
    p <<= 1;
    ++e;
  }
  return e;
}

/// Mask with the low @p n bits set (n in [0, 64]).
[[nodiscard]] constexpr u64 lowMask(u32 n) noexcept {
  return n >= 64 ? ~u64{0} : ((u64{1} << n) - 1);
}

/// Extract bits [hi:lo] of @p v (inclusive, hi >= lo).
[[nodiscard]] constexpr u32 bits(u32 v, u32 hi, u32 lo) noexcept {
  return (v >> lo) & static_cast<u32>(lowMask(hi - lo + 1));
}

/// Sign-extend the low @p width bits of @p v to 32 bits.
[[nodiscard]] constexpr i32 signExtend(u32 v, u32 width) noexcept {
  const u32 shift = 32 - width;
  return static_cast<i32>(v << shift) >> shift;
}

/// Round @p v up to the next multiple of @p align (align a power of two).
[[nodiscard]] constexpr u64 alignUp(u64 v, u64 align) noexcept {
  return (v + align - 1) & ~(align - 1);
}

/// Round @p v down to a multiple of @p align (align a power of two).
[[nodiscard]] constexpr u64 alignDown(u64 v, u64 align) noexcept {
  return v & ~(align - 1);
}

/// Population count convenience wrapper.
[[nodiscard]] constexpr u32 popcount(u32 v) noexcept {
  return static_cast<u32>(std::popcount(v));
}

}  // namespace wp
