// Aggregation helpers used by the experiment driver when averaging
// normalized energy and ED product across the benchmark suite.
#pragma once

#include <span>
#include <vector>

namespace wp {

/// Arithmetic mean of a non-empty span.
[[nodiscard]] double mean(std::span<const double> xs);

/// Geometric mean of a non-empty span of positive values.
[[nodiscard]] double geomean(std::span<const double> xs);

/// Minimum / maximum of a non-empty span.
[[nodiscard]] double minOf(std::span<const double> xs);
[[nodiscard]] double maxOf(std::span<const double> xs);

/// Incremental mean/min/max accumulator.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] long count() const { return n_; }

 private:
  long n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wp
