// Process-wide shutdown latch for SIGTERM/SIGINT (graceful drain).
//
// Long sweeps and the sweep service both need the same discipline: a
// termination signal must not abort mid-write — it should *latch*, let
// the current unit of work finish, flush whatever durable state exists
// (partial WP_JSON report, result-store records, in-flight replies) and
// exit with a distinct code. The latch is the one async-signal-safe
// primitive that supports both consumers:
//
//   polling   requested() is a relaxed atomic read — the sweep executor
//             checks it at each cell boundary, so an interrupted bench
//             stops starting new cells but never tears a running one.
//   waiting   pollFd() is the read end of a self-pipe the handler
//             writes one byte to; the service's poll(2) loop includes
//             it, so a signal wakes a blocked server immediately
//             instead of at the next connection.
//
// install() is idempotent and chains nothing: it replaces the default
// disposition only (benches and the daemon own their process). The
// handler itself does exactly two async-signal-safe things — a write(2)
// to the pipe and a sig_atomic_t store.
#pragma once

namespace wp {

class ShutdownLatch {
 public:
  /// The process-wide latch. Signal handlers force a singleton: there
  /// is one SIGTERM disposition per process, so there is one latch.
  [[nodiscard]] static ShutdownLatch& instance();

  /// Installs SIGTERM+SIGINT handlers (first call only; later calls are
  /// no-ops). Exits 1 if the self-pipe or sigaction fails — a harness
  /// that asked for graceful shutdown and silently cannot deliver it
  /// would be worse than one that never asked.
  void install();

  [[nodiscard]] bool installed() const;

  /// True once a shutdown signal arrived (or trigger() ran).
  [[nodiscard]] bool requested() const;

  /// The signal that latched (SIGTERM/SIGINT), or 0 when none did.
  [[nodiscard]] int signalNumber() const;

  /// Read end of the self-pipe: becomes readable when the latch fires.
  /// -1 before install(). Never read it empty — level-triggered polls
  /// should treat readability as "latched" and consult requested().
  [[nodiscard]] int pollFd() const;

  /// Latches as if @p sig arrived. Async-signal-safe and thread-safe;
  /// tests and the service's `drain` op use it to reuse the one
  /// drain path real signals take.
  void trigger(int sig);

  /// Clears a fired latch (not the handlers). Tests only: production
  /// consumers treat a latched process as terminally draining.
  void reset();

 private:
  ShutdownLatch() = default;
};

}  // namespace wp
