#include "support/shutdown.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace wp {

namespace {

// File-scope state, not members: the handler may run on any thread at
// any instruction, so everything it touches must be an lvalue with
// static storage duration and async-signal-safe access.
volatile std::sig_atomic_t g_signal = 0;
int g_pipe[2] = {-1, -1};
bool g_installed = false;
std::once_flag g_install_once;

void latchHandler(int sig) {
  // Order matters: the flag first, then the wakeup byte, so a poller
  // woken by the pipe always observes requested() == true.
  if (g_signal == 0) g_signal = sig;
  if (g_pipe[1] >= 0) {
    const char byte = 1;
    // Best-effort: a full pipe already woke every poller.
    [[maybe_unused]] const ssize_t n = ::write(g_pipe[1], &byte, 1);
  }
}

}  // namespace

ShutdownLatch& ShutdownLatch::instance() {
  static ShutdownLatch latch;
  return latch;
}

void ShutdownLatch::install() {
  std::call_once(g_install_once, [] {
    if (::pipe(g_pipe) != 0) {
      std::perror("error: ShutdownLatch cannot create its self-pipe");
      std::exit(1);
    }
    for (const int fd : g_pipe) {
      ::fcntl(fd, F_SETFD, FD_CLOEXEC);
      ::fcntl(fd, F_SETFL, O_NONBLOCK);
    }
    struct sigaction sa;
    sa.sa_handler = latchHandler;
    ::sigemptyset(&sa.sa_mask);
    // SA_RESTART: the latch wakes consumers through the pipe (poll
    // includes it) or the per-cell flag check — unrelated syscalls
    // should not start failing with EINTR just because a drain began.
    sa.sa_flags = SA_RESTART;
    if (::sigaction(SIGTERM, &sa, nullptr) != 0 ||
        ::sigaction(SIGINT, &sa, nullptr) != 0) {
      std::perror("error: ShutdownLatch cannot install signal handlers");
      std::exit(1);
    }
    g_installed = true;
  });
}

bool ShutdownLatch::installed() const { return g_installed; }

bool ShutdownLatch::requested() const { return g_signal != 0; }

int ShutdownLatch::signalNumber() const { return g_signal; }

int ShutdownLatch::pollFd() const { return g_pipe[0]; }

void ShutdownLatch::trigger(int sig) { latchHandler(sig); }

void ShutdownLatch::reset() {
  g_signal = 0;
  if (g_pipe[0] >= 0) {
    char buf[64];
    while (::read(g_pipe[0], buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace wp
