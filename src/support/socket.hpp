// Minimal Unix-domain stream-socket helpers for the sweep service.
//
// The service protocol is deliberately tiny — one '\n'-terminated flat
// JSON object per message in each direction — so the socket layer stays
// tiny too: bind/listen with crash-only stale-socket replacement,
// connect, a full-buffer send that survives EINTR and suppresses
// SIGPIPE, and a buffered line reader with a hard per-line byte cap
// (the first admission-control gate: a client that streams an unbounded
// "line" is disconnected, not buffered into oblivion).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace wp::support {

/// Binds and listens on @p path. An existing socket file is unlinked
/// first: the daemon is crash-only, so a leftover socket from a killed
/// instance is expected litter, not an error (single-instance policy is
/// the supervisor's job, not the filesystem's). Returns the listening
/// fd (CLOEXEC, non-blocking) or -1 with @p error explaining why.
[[nodiscard]] int listenUnix(const std::string& path, int backlog,
                             std::string& error);

/// Connects to the daemon at @p path (blocking fd, CLOEXEC). Returns
/// the fd or -1 with @p error.
[[nodiscard]] int connectUnix(const std::string& path, std::string& error);

/// Writes all of @p data to @p fd. EINTR-safe; uses MSG_NOSIGNAL so a
/// peer that hung up costs an error return, never a SIGPIPE. Returns
/// false on any unrecoverable write error.
[[nodiscard]] bool sendAll(int fd, std::string_view data);

/// Buffered '\n'-line reader over a blocking fd (client side and
/// tests; the server uses its own non-blocking per-connection buffer).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Reads the next line (newline stripped) into @p line. Returns false
  /// on EOF, on a read error, or when a line exceeds @p max_bytes.
  [[nodiscard]] bool next(std::string& line,
                          std::size_t max_bytes = 1 << 16);

 private:
  int fd_;
  std::string buf_;
  bool eof_ = false;
};

}  // namespace wp::support
