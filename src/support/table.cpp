#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace wp {

void TextTable::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), Row{std::move(cells), false});
  has_header_ = true;
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const Row& r : rows_) {
    if (r.is_separator) continue;
    if (widths.size() < r.cells.size()) widths.resize(r.cells.size(), 0);
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      widths[i] = std::max(widths[i], r.cells[i].size());
    }
  }
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;

  bool printed_header = false;
  for (const Row& r : rows_) {
    if (r.is_separator) {
      os << std::string(total, '-') << '\n';
      continue;
    }
    for (std::size_t i = 0; i < r.cells.size(); ++i) {
      const std::size_t w = widths[i];
      const std::string& c = r.cells[i];
      if (i == 0) {
        os << c << std::string(w - c.size() + 2, ' ');
      } else {
        os << std::string(w - c.size(), ' ') << c << "  ";
      }
    }
    os << '\n';
    if (has_header_ && !printed_header) {
      os << std::string(total, '-') << '\n';
      printed_header = true;
    }
  }
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmtPct(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace wp
