// Error-handling primitives for the wayplace library.
//
// The simulator treats internal inconsistencies (bad decode, misaligned
// fetch, out-of-range memory access) as programming errors in either the
// library or the guest program; both abort the current run by throwing
// wp::SimError carrying a formatted source location.
#pragma once

#include <stdexcept>
#include <string>

namespace wp {

/// Exception thrown for any violated runtime invariant inside the
/// simulator, the compiler passes or the workload harness.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throwEnsureFailure(const char* file, int line,
                                     const char* expr,
                                     const std::string& message);
}  // namespace detail

}  // namespace wp

/// Check a runtime invariant; throws wp::SimError on failure.
/// Usage: WP_ENSURE(ways > 0, "cache must have at least one way");
#define WP_ENSURE(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::wp::detail::throwEnsureFailure(__FILE__, __LINE__, #cond, (msg)); \
    }                                                                     \
  } while (false)

/// Marks an unreachable code path (e.g. exhaustive switch fall-off).
#define WP_UNREACHABLE(msg) \
  ::wp::detail::throwEnsureFailure(__FILE__, __LINE__, "unreachable", (msg))
