#include "support/ensure.hpp"

#include <sstream>

namespace wp::detail {

void throwEnsureFailure(const char* file, int line, const char* expr,
                        const std::string& message) {
  std::ostringstream os;
  os << file << ':' << line << ": ensure failed: " << expr;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw SimError(os.str());
}

}  // namespace wp::detail
