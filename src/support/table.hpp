// Fixed-width text-table printer. Every bench binary uses this to print
// the rows/series of the paper figure it regenerates.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wp {

/// Collects rows of string cells and renders them with aligned columns.
class TextTable {
 public:
  /// Sets the header row.
  void header(std::vector<std::string> cells);

  /// Appends a data row; row lengths may differ from the header.
  void row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void separator();

  /// Renders the table; the first column is left-aligned, the rest right.
  void print(std::ostream& os) const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::vector<Row> rows_;
  bool has_header_ = false;
};

/// Formats a double with @p decimals fraction digits.
[[nodiscard]] std::string fmt(double v, int decimals = 2);

/// Formats a fraction as a percentage string, e.g. 0.503 -> "50.3%".
[[nodiscard]] std::string fmtPct(double fraction, int decimals = 1);

}  // namespace wp
