// Deterministic PRNG used by workload input generators and property tests.
//
// splitmix64 is used for seeding and xoshiro-style stepping so that the
// same seed produces the same workload inputs on every platform — the
// experiment harness depends on run-to-run determinism.
#pragma once

#include <cstdint>

#include "support/bitops.hpp"

namespace wp {

/// Small, fast, deterministic 64-bit PRNG (splitmix64).
class Rng {
 public:
  explicit constexpr Rng(u64 seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr u64 next() noexcept {
    u64 z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound) for bound >= 1.
  constexpr u64 below(u64 bound) noexcept { return next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  constexpr i64 range(i64 lo, i64 hi) noexcept {
    return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
  }

  /// Uniform 32-bit value.
  constexpr u32 next32() noexcept { return static_cast<u32>(next() >> 32); }

  /// Uniform double in [0, 1).
  constexpr double unit() noexcept {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli draw with probability @p p.
  constexpr bool chance(double p) noexcept { return unit() < p; }

 private:
  u64 state_;
};

}  // namespace wp
