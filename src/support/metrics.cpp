#include "support/metrics.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <ctime>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace wp {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

double threadCpuSeconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    // POSIX guarantees this clock on Linux; treat failure as the
    // harness bug it would be rather than silently reporting 0.
    std::fprintf(stderr, "error: clock_gettime(CLOCK_THREAD_CPUTIME_ID): %s\n",
                 std::strerror(errno));
    std::exit(1);
  }
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void dieOnIoError(const std::string& what, const std::string& path,
                  const std::string& detail) {
  // errno may already be clobbered by stream teardown; report it only
  // when it still names a cause.
  const int err = errno;
  std::fprintf(stderr, "error: %s: %s '%s'%s%s\n", what.c_str(),
               detail.c_str(), path.c_str(), err != 0 ? ": " : "",
               err != 0 ? std::strerror(err) : "");
  std::exit(1);
}

bool fsyncDirContaining(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  errno = 0;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  const int saved = errno;
  ::close(fd);
  errno = saved;
  return ok;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Timer>& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::map<std::string, u64> MetricsRegistry::counterValues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, u64> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, MetricsRegistry::TimerSnapshot>
MetricsRegistry::timerValues() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, TimerSnapshot> out;
  for (const auto& [name, t] : timers_) {
    out[name] = TimerSnapshot{t->totalNanoseconds(), t->count()};
  }
  return out;
}

void MetricsRegistry::writeJsonFields(std::ostream& os,
                                      const std::string& indent) const {
  const auto counters = counterValues();
  const auto timers = timerValues();
  os << indent << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "" : ", ") << "\"" << jsonEscape(name) << "\": " << value;
    first = false;
  }
  os << "},\n" << indent << "\"timers\": {";
  first = true;
  for (const auto& [name, t] : timers) {
    os << (first ? "" : ", ") << "\"" << jsonEscape(name)
       << "\": {\"seconds\": " << static_cast<double>(t.total_ns) * 1e-9
       << ", \"count\": " << t.count << "}";
    first = false;
  }
  os << "}";
}

DurableJsonlWriter::DurableJsonlWriter(std::string path, std::string knob)
    : path_(std::move(path)), knob_(std::move(knob)) {
  errno = 0;
  // O_APPEND: resumed sweeps extend the existing journal; records from
  // the interrupted run stay in place.
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) dieOnIoError(knob_, path_, "cannot open journal file");
  // fsync the *directory* too: O_CREAT may have added a new directory
  // entry, and without this a crash right after creation can lose the
  // whole journal file on ext4 even though every record was fsync'd.
  if (!fsyncDirContaining(path_)) {
    dieOnIoError(knob_, path_, "cannot fsync directory containing");
  }
}

DurableJsonlWriter::~DurableJsonlWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void DurableJsonlWriter::append(const std::string& json_line) {
  const std::string line = json_line + "\n";
  std::lock_guard<std::mutex> lock(mutex_);
  errno = 0;
  // One write(2) per record: with O_APPEND the line lands atomically at
  // the end, so concurrent workers never interleave bytes.
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      dieOnIoError(knob_, path_, "write failed on journal file");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) {
    dieOnIoError(knob_, path_, "fsync failed on journal file");
  }
  ++records_;
}

TraceEvent& TraceEvent::str(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, "\"" + jsonEscape(value) + "\"");
  return *this;
}

TraceEvent& TraceEvent::num(const std::string& key, u64 value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

TraceEvent& TraceEvent::num(const std::string& key, int value) {
  fields_.emplace_back(key, std::to_string(value));
  return *this;
}

TraceEvent& TraceEvent::num(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  fields_.emplace_back(key, os.str());
  return *this;
}

TraceEvent& TraceEvent::boolean(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string TraceEvent::render(double ts_seconds) const {
  std::ostringstream os;
  os.precision(9);
  os << "{\"ev\": \"" << jsonEscape(name_) << "\", \"ts\": " << std::fixed
     << ts_seconds;
  for (const auto& [key, value] : fields_) {
    os << ", \"" << jsonEscape(key) << "\": " << value;
  }
  os << "}";
  return os.str();
}

TraceWriter::TraceWriter(std::string path, std::string knob)
    : path_(std::move(path)),
      knob_(std::move(knob)),
      start_(std::chrono::steady_clock::now()) {
  errno = 0;
  out_.open(path_, std::ios::out | std::ios::trunc);
  if (!out_.good()) dieOnIoError(knob_, path_, "cannot open trace file");
}

void TraceWriter::write(const TraceEvent& event) {
  const double ts =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::lock_guard<std::mutex> lock(mutex_);
  errno = 0;
  out_ << event.render(ts) << '\n';
  // Flush per event: the trace must survive a crashed sweep, and events
  // are coarse (whole simulations), so the cost is noise.
  out_.flush();
  if (!out_.good()) dieOnIoError(knob_, path_, "write failed on trace file");
  ++events_;
}

}  // namespace wp
