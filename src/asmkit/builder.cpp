#include "asmkit/builder.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace wp::asmkit {

using isa::Instruction;
using isa::Opcode;

namespace {

ir::Inst plain(Opcode op, u8 rd = 0, u8 rn = 0, u8 rm = 0, i32 imm = 0) {
  ir::Inst inst;
  inst.raw = Instruction{op, rd, rn, rm, imm};
  return inst;
}

Opcode branchOpcode(Cond c) {
  switch (c) {
    case Cond::kEq:  return Opcode::kBeq;
    case Cond::kNe:  return Opcode::kBne;
    case Cond::kLt:  return Opcode::kBlt;
    case Cond::kGe:  return Opcode::kBge;
    case Cond::kGt:  return Opcode::kBgt;
    case Cond::kLe:  return Opcode::kBle;
    case Cond::kLtu: return Opcode::kBltu;
    case Cond::kGeu: return Opcode::kBgeu;
  }
  WP_UNREACHABLE("bad condition");
}

}  // namespace

// ---------------------------------------------------------------------------
// FunctionBuilder
// ---------------------------------------------------------------------------

FunctionBuilder::FunctionBuilder(std::string name) : name_(std::move(name)) {
  blocks_.emplace_back();
}

FunctionBuilder::ProtoBlock& FunctionBuilder::current() {
  return blocks_.back();
}

Label FunctionBuilder::label() {
  const Label l{next_label_++};
  label_block_.push_back(-1);
  return l;
}

void FunctionBuilder::bind(Label l) {
  WP_ENSURE(l.id < label_block_.size(), "bind of foreign label");
  WP_ENSURE(label_block_[l.id] < 0, "label bound twice in " + name_);
  // Start a new block unless the current one is still empty and unlabeled
  // in a way that lets us reuse it.
  ProtoBlock& cur = current();
  if (!cur.insts.empty() || cur.ends_unconditionally) {
    closeBlock(cur.ends_unconditionally);
  }
  label_block_[l.id] = static_cast<i32>(blocks_.size() - 1);
  current().labels.push_back(l.id);
}

void FunctionBuilder::closeBlock(bool unconditional) {
  current().ends_unconditionally = unconditional;
  current().splits_after = !unconditional;
  after_unconditional_ = unconditional;
  blocks_.emplace_back();
}

void FunctionBuilder::emit(ir::Inst inst) {
  ProtoBlock& cur = current();
  // Instructions directly after an unconditional transfer, with no label
  // in between, can never execute — reject them as authoring bugs.
  WP_ENSURE(!(after_unconditional_ && cur.insts.empty() &&
              cur.labels.empty()),
            "unreachable code after unconditional transfer in " + name_);
  cur.insts.push_back(std::move(inst));
  const Opcode op = cur.insts.back().raw.op;
  if (op == Opcode::kB || op == Opcode::kJr || op == Opcode::kHalt) {
    closeBlock(/*unconditional=*/true);
  } else if (isa::isConditionalBranch(op) || op == Opcode::kBl) {
    closeBlock(/*unconditional=*/false);
  }
}

void FunctionBuilder::add(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kAdd, rd.index, rn.index, rm.index)); }
void FunctionBuilder::sub(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kSub, rd.index, rn.index, rm.index)); }
void FunctionBuilder::rsb(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kRsb, rd.index, rn.index, rm.index)); }
void FunctionBuilder::and_(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kAnd, rd.index, rn.index, rm.index)); }
void FunctionBuilder::orr(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kOrr, rd.index, rn.index, rm.index)); }
void FunctionBuilder::eor(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kEor, rd.index, rn.index, rm.index)); }
void FunctionBuilder::lsl(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kLsl, rd.index, rn.index, rm.index)); }
void FunctionBuilder::lsr(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kLsr, rd.index, rn.index, rm.index)); }
void FunctionBuilder::asr(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kAsr, rd.index, rn.index, rm.index)); }
void FunctionBuilder::mul(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kMul, rd.index, rn.index, rm.index)); }
void FunctionBuilder::mla(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kMla, rd.index, rn.index, rm.index)); }
void FunctionBuilder::mov(Reg rd, Reg rm) { emit(plain(Opcode::kMov, rd.index, 0, rm.index)); }
void FunctionBuilder::mvn(Reg rd, Reg rm) { emit(plain(Opcode::kMvn, rd.index, 0, rm.index)); }
void FunctionBuilder::slt(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kSlt, rd.index, rn.index, rm.index)); }
void FunctionBuilder::sltu(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kSltu, rd.index, rn.index, rm.index)); }

void FunctionBuilder::addi(Reg rd, Reg rn, i32 imm) { emit(plain(Opcode::kAddi, rd.index, rn.index, 0, imm)); }
void FunctionBuilder::subi(Reg rd, Reg rn, i32 imm) { emit(plain(Opcode::kSubi, rd.index, rn.index, 0, imm)); }
void FunctionBuilder::andi(Reg rd, Reg rn, u32 imm) { emit(plain(Opcode::kAndi, rd.index, rn.index, 0, static_cast<i32>(imm))); }
void FunctionBuilder::orri(Reg rd, Reg rn, u32 imm) { emit(plain(Opcode::kOrri, rd.index, rn.index, 0, static_cast<i32>(imm))); }
void FunctionBuilder::eori(Reg rd, Reg rn, u32 imm) { emit(plain(Opcode::kEori, rd.index, rn.index, 0, static_cast<i32>(imm))); }
void FunctionBuilder::lsli(Reg rd, Reg rn, u32 sh) { emit(plain(Opcode::kLsli, rd.index, rn.index, 0, static_cast<i32>(sh))); }
void FunctionBuilder::lsri(Reg rd, Reg rn, u32 sh) { emit(plain(Opcode::kLsri, rd.index, rn.index, 0, static_cast<i32>(sh))); }
void FunctionBuilder::asri(Reg rd, Reg rn, u32 sh) { emit(plain(Opcode::kAsri, rd.index, rn.index, 0, static_cast<i32>(sh))); }
void FunctionBuilder::muli(Reg rd, Reg rn, i32 imm) { emit(plain(Opcode::kMuli, rd.index, rn.index, 0, imm)); }
void FunctionBuilder::movi(Reg rd, i32 imm) { emit(plain(Opcode::kMovi, rd.index, 0, 0, imm)); }

void FunctionBuilder::movi32(Reg rd, u32 value) {
  const i32 as_signed = static_cast<i32>(value);
  if (as_signed >= -32768 && as_signed <= 32767) {
    movi(rd, as_signed);
    return;
  }
  movi(rd, static_cast<i32>(value & 0xffffu));
  emit(plain(Opcode::kMovhi, rd.index, 0, 0,
             static_cast<i32>((value >> 16) & 0xffffu)));
}

void FunctionBuilder::la(Reg rd, const std::string& name, i32 addend) {
  ir::Inst lo = plain(Opcode::kMovi, rd.index);
  lo.reloc = ir::Reloc::kDataLo;
  lo.data_symbol = name;
  lo.data_addend = addend;
  emit(std::move(lo));
  ir::Inst hi = plain(Opcode::kMovhi, rd.index);
  hi.reloc = ir::Reloc::kDataHi;
  hi.data_symbol = name;
  hi.data_addend = addend;
  emit(std::move(hi));
}

void FunctionBuilder::ldr(Reg rd, Reg rn, i32 offset) { emit(plain(Opcode::kLdr, rd.index, rn.index, 0, offset)); }
void FunctionBuilder::str(Reg rd, Reg rn, i32 offset) { emit(plain(Opcode::kStr, rd.index, rn.index, 0, offset)); }
void FunctionBuilder::ldrb(Reg rd, Reg rn, i32 offset) { emit(plain(Opcode::kLdrb, rd.index, rn.index, 0, offset)); }
void FunctionBuilder::strb(Reg rd, Reg rn, i32 offset) { emit(plain(Opcode::kStrb, rd.index, rn.index, 0, offset)); }
void FunctionBuilder::ldrx(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kLdrx, rd.index, rn.index, rm.index)); }
void FunctionBuilder::strx(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kStrx, rd.index, rn.index, rm.index)); }
void FunctionBuilder::ldrbx(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kLdrbx, rd.index, rn.index, rm.index)); }
void FunctionBuilder::strbx(Reg rd, Reg rn, Reg rm) { emit(plain(Opcode::kStrbx, rd.index, rn.index, rm.index)); }

void FunctionBuilder::cmp(Reg rn, Reg rm) { emit(plain(Opcode::kCmp, 0, rn.index, rm.index)); }
void FunctionBuilder::cmpi(Reg rn, i32 imm) { emit(plain(Opcode::kCmpi, 0, rn.index, 0, imm)); }

void FunctionBuilder::br(Cond c, Label target) {
  WP_ENSURE(target.id < label_block_.size(), "branch to foreign label");
  ir::Inst inst = plain(branchOpcode(c));
  inst.reloc = ir::Reloc::kBlockBranch;
  inst.target_block = target.id;  // label id; resolved in build()
  emit(std::move(inst));
}

void FunctionBuilder::cmpBr(Reg a, Reg b, Cond c, Label t) {
  cmp(a, b);
  br(c, t);
}

void FunctionBuilder::cmpiBr(Reg a, i32 imm, Cond c, Label t) {
  cmpi(a, imm);
  br(c, t);
}

void FunctionBuilder::jmp(Label target) {
  WP_ENSURE(target.id < label_block_.size(), "jump to foreign label");
  ir::Inst inst = plain(Opcode::kB);
  inst.reloc = ir::Reloc::kBlockBranch;
  inst.target_block = target.id;
  emit(std::move(inst));
}

void FunctionBuilder::call(const std::string& function) {
  ir::Inst inst = plain(Opcode::kBl);
  inst.reloc = ir::Reloc::kFuncCall;
  inst.target_func = function;
  emit(std::move(inst));
}

void FunctionBuilder::jr(Reg rn) { emit(plain(Opcode::kJr, 0, rn.index)); }
void FunctionBuilder::ret() { jr(Reg{isa::kLinkReg}); }
void FunctionBuilder::halt() { emit(plain(Opcode::kHalt)); }
void FunctionBuilder::nop() { emit(plain(Opcode::kNop)); }

void FunctionBuilder::push(std::initializer_list<Reg> regs) {
  WP_ENSURE(regs.size() > 0, "empty push");
  subi(sp, sp, static_cast<i32>(regs.size() * 4));
  i32 offset = 0;
  for (const Reg r : regs) {
    str(r, sp, offset);
    offset += 4;
  }
}

void FunctionBuilder::pop(std::initializer_list<Reg> regs) {
  WP_ENSURE(regs.size() > 0, "empty pop");
  i32 offset = 0;
  for (const Reg r : regs) {
    ldr(r, sp, offset);
    offset += 4;
  }
  addi(sp, sp, static_cast<i32>(regs.size() * 4));
}

void FunctionBuilder::prologue(std::initializer_list<Reg> callee_saved) {
  subi(sp, sp, static_cast<i32>((callee_saved.size() + 1) * 4));
  str(Reg{isa::kLinkReg}, sp, 0);
  i32 offset = 4;
  for (const Reg r : callee_saved) {
    str(r, sp, offset);
    offset += 4;
  }
}

void FunctionBuilder::epilogue(std::initializer_list<Reg> callee_saved) {
  ldr(Reg{isa::kLinkReg}, sp, 0);
  i32 offset = 4;
  for (const Reg r : callee_saved) {
    ldr(r, sp, offset);
    offset += 4;
  }
  addi(sp, sp, static_cast<i32>((callee_saved.size() + 1) * 4));
  ret();
}

// ---------------------------------------------------------------------------
// ModuleBuilder
// ---------------------------------------------------------------------------

ModuleBuilder::ModuleBuilder() = default;

FunctionBuilder& ModuleBuilder::func(const std::string& name) {
  const auto it = func_index_.find(name);
  if (it != func_index_.end()) return *funcs_[it->second];
  func_index_[name] = funcs_.size();
  funcs_.push_back(std::unique_ptr<FunctionBuilder>(new FunctionBuilder(name)));
  return *funcs_.back();
}

u32 ModuleBuilder::data(const std::string& name, std::span<const u8> init,
                        u32 align) {
  WP_ENSURE(isPow2(align), "alignment must be a power of two");
  const u32 offset = static_cast<u32>(alignUp(data_.size(), align));
  data_.resize(offset);
  data_.insert(data_.end(), init.begin(), init.end());
  symbols_.push_back({name, offset, static_cast<u32>(init.size())});
  return offset;
}

u32 ModuleBuilder::dataWords(const std::string& name,
                             std::span<const u32> words) {
  std::vector<u8> bytes;
  bytes.reserve(words.size() * 4);
  for (const u32 w : words) {
    bytes.push_back(static_cast<u8>(w));
    bytes.push_back(static_cast<u8>(w >> 8));
    bytes.push_back(static_cast<u8>(w >> 16));
    bytes.push_back(static_cast<u8>(w >> 24));
  }
  return data(name, bytes, 4);
}

u32 ModuleBuilder::bss(const std::string& name, u32 size, u32 align) {
  const std::vector<u8> zeros(size, 0);
  return data(name, zeros, align);
}

ir::Module ModuleBuilder::build(const std::string& entry) {
  // Synthesize the entry stub.
  FunctionBuilder& start = func("_start");
  start.call(entry);
  start.halt();

  ir::Module m;
  m.data_symbols = symbols_;
  m.data_init = data_;
  m.entry_function = "_start";

  for (const auto& fb : funcs_) {
    ir::Function f;
    f.name = fb->name_;

    // Map proto blocks to global ids, dropping a trailing empty block
    // left open by the final unconditional transfer.
    std::vector<i32> proto_to_global(fb->blocks_.size(), -1);
    for (std::size_t p = 0; p < fb->blocks_.size(); ++p) {
      const auto& proto = fb->blocks_[p];
      const bool is_trailing_empty = p + 1 == fb->blocks_.size() &&
                                     proto.insts.empty() &&
                                     proto.labels.empty();
      if (is_trailing_empty) continue;
      proto_to_global[p] = static_cast<i32>(m.blocks.size() + f.block_ids.size());
      f.block_ids.push_back(static_cast<u32>(proto_to_global[p]));
    }

    // Label id -> global block id.
    std::vector<i32> label_to_global(fb->label_block_.size(), -1);
    for (std::size_t lbl = 0; lbl < fb->label_block_.size(); ++lbl) {
      const i32 proto = fb->label_block_[lbl];
      WP_ENSURE(proto >= 0, "label created but never bound in " + f.name);
      WP_ENSURE(proto_to_global[proto] >= 0,
                "label bound to removed block in " + f.name);
      label_to_global[lbl] = proto_to_global[proto];
    }

    for (std::size_t p = 0; p < fb->blocks_.size(); ++p) {
      if (proto_to_global[p] < 0) continue;
      const auto& proto = fb->blocks_[p];
      ir::BasicBlock b;
      b.id = static_cast<u32>(proto_to_global[p]);
      b.label = f.name + ".bb" + std::to_string(p);
      b.insts = proto.insts;
      for (ir::Inst& inst : b.insts) {
        if (inst.reloc == ir::Reloc::kBlockBranch) {
          inst.target_block = static_cast<u32>(label_to_global[inst.target_block]);
        }
      }
      if (!proto.ends_unconditionally) {
        // Falls through to the next surviving proto block.
        i32 next = -1;
        for (std::size_t q = p + 1; q < fb->blocks_.size(); ++q) {
          if (proto_to_global[q] >= 0) {
            next = proto_to_global[q];
            break;
          }
        }
        WP_ENSURE(next >= 0, "function " + f.name +
                                 " can fall off its final block; end it "
                                 "with ret()/halt()/jmp()");
        b.fallthrough = static_cast<u32>(next);
      }
      m.blocks.push_back(std::move(b));
    }
    m.functions.push_back(std::move(f));
  }

  m.validate();
  return m;
}

}  // namespace wp::asmkit
