// asmkit: a structured assembler for building WRISC-32 IR modules.
//
// Workloads are authored against this builder the way MiBench programs
// are authored in C: functions, labels, loops, calls, and named data
// buffers. The builder performs basic-block formation (splitting at
// labels, branches and calls) and produces an ir::Module the layout
// passes and linker consume.
//
// Register convention (software only — the hardware is uniform):
//   r0..r3   arguments / return value / caller-saved scratch
//   r4..r11  callee-saved
//   r12      scratch
//   r13 (sp) stack pointer, full-descending
//   r14 (lr) link register
//   r15      scratch (clobbered by prologue/epilogue helpers)
#pragma once

#include <initializer_list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ir/module.hpp"

namespace wp::asmkit {

/// Strongly-typed register operand.
struct Reg {
  u8 index = 0;
};

inline constexpr Reg r0{0}, r1{1}, r2{2}, r3{3}, r4{4}, r5{5}, r6{6}, r7{7},
    r8{8}, r9{9}, r10{10}, r11{11}, r12{12}, sp{13}, lr{14}, r15{15};

enum class Cond : u8 { kEq, kNe, kLt, kGe, kGt, kLe, kLtu, kGeu };

/// Function-local branch target. Create with FunctionBuilder::label(),
/// attach with bind().
struct Label {
  u32 id = 0;
};

class ModuleBuilder;

class FunctionBuilder {
 public:
  /// Creates a fresh, unbound label.
  [[nodiscard]] Label label();

  /// Binds @p l to the next emitted instruction (starts a basic block).
  void bind(Label l);

  // --- R-type ALU -------------------------------------------------------
  void add(Reg rd, Reg rn, Reg rm);
  void sub(Reg rd, Reg rn, Reg rm);
  void rsb(Reg rd, Reg rn, Reg rm);
  void and_(Reg rd, Reg rn, Reg rm);
  void orr(Reg rd, Reg rn, Reg rm);
  void eor(Reg rd, Reg rn, Reg rm);
  void lsl(Reg rd, Reg rn, Reg rm);
  void lsr(Reg rd, Reg rn, Reg rm);
  void asr(Reg rd, Reg rn, Reg rm);
  void mul(Reg rd, Reg rn, Reg rm);
  void mla(Reg rd, Reg rn, Reg rm);  ///< rd += rn * rm
  void mov(Reg rd, Reg rm);
  void mvn(Reg rd, Reg rm);
  void slt(Reg rd, Reg rn, Reg rm);
  void sltu(Reg rd, Reg rn, Reg rm);

  // --- I-type ALU -------------------------------------------------------
  void addi(Reg rd, Reg rn, i32 imm);
  void subi(Reg rd, Reg rn, i32 imm);
  void andi(Reg rd, Reg rn, u32 imm);
  void orri(Reg rd, Reg rn, u32 imm);
  void eori(Reg rd, Reg rn, u32 imm);
  void lsli(Reg rd, Reg rn, u32 sh);
  void lsri(Reg rd, Reg rn, u32 sh);
  void asri(Reg rd, Reg rn, u32 sh);
  void muli(Reg rd, Reg rn, i32 imm);
  void movi(Reg rd, i32 imm);

  /// Loads an arbitrary 32-bit constant (1 or 2 instructions).
  void movi32(Reg rd, u32 value);

  /// Loads the address of data symbol @p name (+ @p addend bytes).
  void la(Reg rd, const std::string& name, i32 addend = 0);

  // --- memory -----------------------------------------------------------
  void ldr(Reg rd, Reg rn, i32 offset = 0);
  void str(Reg rd, Reg rn, i32 offset = 0);
  void ldrb(Reg rd, Reg rn, i32 offset = 0);
  void strb(Reg rd, Reg rn, i32 offset = 0);
  void ldrx(Reg rd, Reg rn, Reg rm);
  void strx(Reg rd, Reg rn, Reg rm);
  void ldrbx(Reg rd, Reg rn, Reg rm);
  void strbx(Reg rd, Reg rn, Reg rm);

  // --- compare & control ------------------------------------------------
  void cmp(Reg rn, Reg rm);
  void cmpi(Reg rn, i32 imm);
  void br(Cond c, Label target);               ///< branch on current flags
  void cmpBr(Reg a, Reg b, Cond c, Label t);   ///< cmp + branch
  void cmpiBr(Reg a, i32 imm, Cond c, Label t);
  void jmp(Label target);
  void call(const std::string& function);
  void jr(Reg rn);
  void ret();
  void halt();
  void nop();

  // --- stack helpers ----------------------------------------------------
  void push(std::initializer_list<Reg> regs);
  void pop(std::initializer_list<Reg> regs);  ///< reverse order of push

  /// Saves lr plus @p callee_saved; pair with epilogue().
  void prologue(std::initializer_list<Reg> callee_saved = {});

  /// Restores what prologue() saved and returns.
  void epilogue(std::initializer_list<Reg> callee_saved = {});

 private:
  friend class ModuleBuilder;
  explicit FunctionBuilder(std::string name);

  struct ProtoBlock {
    std::vector<ir::Inst> insts;
    std::vector<u32> labels;       ///< labels bound at this block's start
    bool ends_unconditionally = false;
    bool splits_after = false;     ///< cond-branch/call: next block follows
  };

  void emit(ir::Inst inst);
  void closeBlock(bool unconditional);
  ProtoBlock& current();

  std::string name_;
  std::vector<ProtoBlock> blocks_;
  bool after_unconditional_ = false;
  u32 next_label_ = 0;
  std::vector<i32> label_block_;  ///< label id -> proto block index (-1 unbound)
  std::vector<Label> pending_labels_;
};

class ModuleBuilder {
 public:
  ModuleBuilder();

  /// Starts (or continues) a function definition.
  FunctionBuilder& func(const std::string& name);

  /// Defines an initialized data symbol; returns its segment offset.
  u32 data(const std::string& name, std::span<const u8> init, u32 align = 4);

  /// Defines an initialized array of 32-bit words (little-endian).
  u32 dataWords(const std::string& name, std::span<const u32> words);

  /// Defines a zero-initialized symbol of @p size bytes.
  u32 bss(const std::string& name, u32 size, u32 align = 4);

  /// Finalizes the module. Adds a `_start` function that calls
  /// @p entry and halts. Validates the result.
  [[nodiscard]] ir::Module build(const std::string& entry = "main");

 private:
  std::vector<std::unique_ptr<FunctionBuilder>> funcs_;
  std::map<std::string, std::size_t> func_index_;
  std::vector<ir::DataSymbol> symbols_;
  std::vector<u8> data_;
};

}  // namespace wp::asmkit
