#include "sim/block_cache.hpp"

#include "support/bitops.hpp"
#include "support/ensure.hpp"

namespace wp::sim {

BlockCache::BlockCache(const Core& core, u32 line_bytes)
    : code_base_(core.codeBase()), code_end_(core.codeEnd()) {
  WP_ENSURE(line_bytes >= 4 && isPow2(line_bytes),
            "BlockCache line_bytes must be a power of two holding at least "
            "one instruction");
  const std::vector<isa::Instruction>& decoded = core.decoded();
  const std::size_t n = decoded.size();
  len_.resize(n);
  reg_use_.resize(n);
  // Backwards pass: a slot either terminates a batch (control transfer,
  // halt, last slot of its cache line, or end of code) or chains to its
  // successor's extent.
  for (std::size_t i = n; i-- > 0;) {
    const isa::Instruction& inst = decoded[i];
    reg_use_[i] = pipeline::regUsesOf(inst);
    const u32 pc = code_base_ + static_cast<u32>(i) * 4;
    const bool terminator =
        isa::isControlTransfer(inst.op) || inst.op == isa::Opcode::kHalt;
    const bool last_in_line = ((pc + 4) & (line_bytes - 1)) == 0;
    len_[i] = (terminator || last_in_line || i + 1 == n) ? 1 : len_[i + 1] + 1;
  }
}

}  // namespace wp::sim
