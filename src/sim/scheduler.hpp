// Round-robin guest scheduler: time-slices N guest processes over one
// shared instruction-fetch path.
//
// This is the multiprogramming fix for the model's original
// flat-address-space assumption: each guest owns a ProcessContext — its
// own Memory, functional core, D-cache and timing model, its own
// per-process way-placement limit (its page table's view of the WP
// area) and its own equivalence-hash accumulators — while the
// *instruction* side (way-hint bit, I-TLB, I-cache, memo links,
// drowsy state) is the one shared FetchPath all processes contend on.
// A context switch pays the real switch-time costs (Tlb::switchContext
// per policy, VIVT I-cache flush, memo flash-clear, hint/MRU reset,
// drowsy onCacheFlush — see FetchPath::switchProcess), so the sharing
// can perturb energy and timing but never architecture: each process's
// retired_pc_hash/dataflow_hash must equal its solo run for any switch
// quantum, which the multiprog bench and test_multiprog enforce.
//
// Both engines are implemented and byte-identical, like Processor's:
// the block engine clips its batches at quantum boundaries (and at the
// budget-hook boundary), so a slice never spans a context switch; runs
// that need per-fetch observation (fault hooks, drowsy lines) fall
// back to the per-instruction interpreter, which is equivalent.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/block_cache.hpp"
#include "sim/processor.hpp"

namespace wp::sim {

/// Scheduling policy of one co-run.
struct SchedulerConfig {
  /// Retired instructions per time slice (must be > 0). A process runs
  /// this many instructions (or until HALT), then the next runnable
  /// process is switched in.
  u64 quantum = 10'000;
  /// What a switch does to the I-TLB (flush vs ASID tags).
  cache::TlbSwitchPolicy tlb_policy = cache::TlbSwitchPolicy::kFlush;
};

/// One guest process: private architectural state plus per-process
/// accounting. The instruction side lives in the scheduler's shared
/// FetchPath; the data side (Memory, D-cache) is private — modelled as
/// interference-free so the co-run isolates the *fetch-path* switch
/// costs the paper's mechanism is sensitive to (DESIGN.md §12).
struct ProcessContext {
  ProcessContext(u32 asid, std::string name, const mem::Image& image,
                 const MachineConfig& config);

  u32 asid;
  std::string name;
  /// Per-process way-placement area (clamped to this process's image by
  /// the driver); 0 for non-way-placement schemes.
  u32 wp_area_bytes = 0;
  mem::Memory memory;
  Core core;
  CoreState state;
  BlockCache blocks;
  cache::DataCache dcache;
  pipeline::TimingModel timing;
  /// Flow into this process's next fetch, preserved across slices.
  cache::FetchFlow flow = cache::FetchFlow::kSequential;
  // Per-process accounting: must equal the same workload's solo run.
  u64 instructions = 0;
  u64 retired_pc_hash = 0xcbf29ce484222325ULL;
  u64 dataflow_hash = 0xcbf29ce484222325ULL;
};

/// Per-process slice of a finished co-run.
struct ProcessRunStats {
  std::string name;
  u32 asid = 0;
  u64 instructions = 0;
  u64 retired_pc_hash = 0;
  u64 dataflow_hash = 0;
  u64 cycles = 0;  ///< this process's timing-model cycles
  cache::CacheStats dcache;
  pipeline::BranchStats branches;
};

/// Everything a finished co-run produced. `combined` is shaped exactly
/// like a solo RunStats so the energy model prices it unchanged: the
/// shared fetch-path counters, summed per-process D-cache/branch/cycle
/// activity, and *interleaved* global hashes over every retirement in
/// execution order — a one-process co-run therefore reproduces its solo
/// RunStats bit for bit.
struct CoRunStats {
  RunStats combined;
  std::vector<ProcessRunStats> processes;
  u64 context_switches = 0;  ///< switches with an outgoing process
  u64 slices = 0;            ///< quantum slices dispatched
};

class GuestScheduler {
 public:
  /// @p machine configures the shared fetch path and the per-process
  /// D-caches/timing models; @p sched the quantum and TLB policy.
  GuestScheduler(const MachineConfig& machine, const SchedulerConfig& sched);

  /// Registers a guest: loads @p image into a fresh private Memory and
  /// returns the process's ASID (its index, starting at 0).
  /// @p wp_area_bytes is the per-process WP limit (page-aligned,
  /// already clamped to the image; must be 0 unless way-placement).
  u32 addProcess(const std::string& name, const mem::Image& image,
                 u32 wp_area_bytes = 0);

  /// The process's private memory — the driver writes workload inputs
  /// here after addProcess and reads outputs back after run().
  [[nodiscard]] mem::Memory& memoryOf(u32 asid);

  /// Runs every registered process to HALT under round-robin
  /// time-slicing. Call once.
  CoRunStats run();

  [[nodiscard]] cache::FetchPath& fetchPath() { return fetch_; }
  [[nodiscard]] const MachineConfig& machine() const { return machine_; }
  [[nodiscard]] const SchedulerConfig& schedulerConfig() const {
    return sched_;
  }

 private:
  /// First runnable process at or after @p from (round-robin order), or
  /// -1 when every process has halted.
  [[nodiscard]] int nextRunnable(u32 from) const;

  MachineConfig machine_;
  SchedulerConfig sched_;
  cache::FetchPath fetch_;
  /// unique_ptr: Core/BlockCache hold references into their sibling
  /// members, so a ProcessContext must never relocate.
  std::vector<std::unique_ptr<ProcessContext>> procs_;
  bool ran_ = false;
};

}  // namespace wp::sim
