// Decode-once basic-block index for the block-level engine.
//
// Built in one backwards pass over a Core's predecoded code segment,
// the cache answers "how many instructions can be dispatched as one
// straight-line batch starting at pc?". A batch ends at the first
// control transfer or halt (execution may leave the line) and at cache
// line boundaries (so the fetch path is consulted exactly once per line
// entered — FetchPath::fetchLine covers the whole batch). Alongside the
// extents it precomputes each instruction's register-use decode, so the
// hot loop skips the per-instruction regUsesOf() switch.
#pragma once

#include <vector>

#include "pipeline/timing.hpp"
#include "sim/core.hpp"

namespace wp::sim {

class BlockCache {
 public:
  /// Indexes @p core's decoded code for an I-cache line size of
  /// @p line_bytes (a power of two, at least one instruction).
  BlockCache(const Core& core, u32 line_bytes);

  /// Instructions dispatchable as one batch starting at @p pc: from pc
  /// straight-line to (and including) the first control transfer or
  /// halt, without leaving pc's cache line. Out-of-range or misaligned
  /// pcs return 1 so the engine's fetch/step raise exactly the faults
  /// the interpreter would, in the same order.
  [[nodiscard]] u32 blockLenAt(u32 pc) const {
    if (pc < code_base_ || pc >= code_end_ || (pc & 3u) != 0) return 1;
    return len_[(pc - code_base_) / 4];
  }

  /// Precomputed regUsesOf() for the instruction at @p pc, which must
  /// be a valid slot (the core's step() has already validated it).
  [[nodiscard]] const pipeline::RegUse& regUseAt(u32 pc) const {
    return reg_use_[(pc - code_base_) / 4];
  }

 private:
  u32 code_base_;
  u32 code_end_;
  std::vector<u32> len_;
  std::vector<pipeline::RegUse> reg_use_;
};

}  // namespace wp::sim
