#include "sim/tracer.hpp"

#include <cstdio>
#include <sstream>

#include "isa/isa.hpp"
#include "support/ensure.hpp"

namespace wp::sim {

Tracer::Tracer(std::size_t depth) : depth_(depth) {
  WP_ENSURE(depth > 0, "tracer depth must be positive");
}

void Tracer::record(const Core& core, const CoreState& state,
                    const mem::Image& image) {
  const u32 pc = state.pc;
  std::string disasm = "<pc outside code>";
  if (pc >= core.codeBase() && pc < core.codeEnd() && (pc & 3u) == 0) {
    u32 word = 0;
    for (int i = 0; i < 4; ++i) {
      word |= static_cast<u32>(image.code[pc - core.codeBase() + i])
              << (8 * i);
    }
    disasm = isa::disassemble(isa::decode(word));
  }
  char buf[192];
  std::snprintf(buf, sizeof buf,
                "pc=%06x  %-28s r0=%08x r1=%08x r2=%08x r3=%08x sp=%08x "
                "lr=%08x %c%c%c%c",
                pc, disasm.c_str(), state.regs[0], state.regs[1],
                state.regs[2], state.regs[3], state.regs[isa::kStackReg],
                state.regs[isa::kLinkReg], state.n ? 'N' : '-',
                state.z ? 'Z' : '-', state.c ? 'C' : '-',
                state.v ? 'V' : '-');
  entries_.emplace_back(buf);
  if (entries_.size() > depth_) entries_.pop_front();
}

std::vector<std::string> Tracer::lines() const {
  return {entries_.begin(), entries_.end()};
}

std::string Tracer::dump() const {
  std::ostringstream os;
  for (const std::string& e : entries_) os << e << '\n';
  return os.str();
}

u64 runTraced(const mem::Image& image, mem::Memory& memory,
              u64 max_instructions, std::size_t trace_depth) {
  Core core(image, memory);
  CoreState state = core.initialState();
  Tracer tracer(trace_depth);
  u64 executed = 0;
  try {
    while (!state.halted) {
      WP_ENSURE(executed < max_instructions,
                "traced run exceeded the instruction budget");
      tracer.record(core, state, image);
      core.step(state);
      ++executed;
    }
  } catch (const SimError& e) {
    throw SimError(std::string(e.what()) + "\n--- last instructions ---\n" +
                   tracer.dump());
  }
  return executed;
}

}  // namespace wp::sim
