#include "sim/core.hpp"

#include "support/ensure.hpp"

namespace wp::sim {

using isa::Instruction;
using isa::Opcode;

Core::Core(const mem::Image& image, mem::Memory& memory)
    : memory_(memory), code_base_(mem::kCodeBase), entry_(image.entry) {
  WP_ENSURE(image.code.size() % 4 == 0, "code segment not word-sized");
  decoded_.reserve(image.code.size() / 4);
  for (std::size_t i = 0; i < image.code.size(); i += 4) {
    u32 word = 0;
    word |= image.code[i];
    word |= static_cast<u32>(image.code[i + 1]) << 8;
    word |= static_cast<u32>(image.code[i + 2]) << 16;
    word |= static_cast<u32>(image.code[i + 3]) << 24;
    decoded_.push_back(isa::decode(word));
  }
}

CoreState Core::initialState() const {
  CoreState s;
  s.pc = entry_;
  s.regs[isa::kStackReg] = mem::kStackTop;
  return s;
}

const Instruction& Core::fetchDecoded(u32 pc) const {
  WP_ENSURE((pc & 3u) == 0, "misaligned pc");
  WP_ENSURE(pc >= code_base_ && pc < codeEnd(), "pc outside code segment");
  return decoded_[(pc - code_base_) / 4];
}

StepInfo Core::step(CoreState& s) {
  WP_ENSURE(!s.halted, "step on a halted core");
  const Instruction& inst = fetchDecoded(s.pc);
  StepInfo info;
  info.pc = s.pc;
  info.inst = inst;

  auto& r = s.regs;
  const u32 seq_pc = s.pc + 4;
  u32 next_pc = seq_pc;

  const auto setNZ = [&s](u32 value) {
    s.n = (value >> 31) != 0;
    s.z = value == 0;
  };
  const auto compare = [&](u32 a, u32 b) {
    const u32 res = a - b;
    setNZ(res);
    s.c = a >= b;  // no borrow
    s.v = (((a ^ b) & (a ^ res)) >> 31) != 0;
  };
  const auto branchTarget = [&]() {
    return static_cast<u32>(static_cast<i64>(seq_pc) +
                            static_cast<i64>(inst.imm) * 4);
  };
  const auto condBranch = [&](bool cond) {
    info.control_transfer = true;
    info.taken = cond;
    if (cond) next_pc = branchTarget();
  };

  switch (inst.op) {
    case Opcode::kAdd: r[inst.rd] = r[inst.rn] + r[inst.rm]; break;
    case Opcode::kSub: r[inst.rd] = r[inst.rn] - r[inst.rm]; break;
    case Opcode::kRsb: r[inst.rd] = r[inst.rm] - r[inst.rn]; break;
    case Opcode::kAnd: r[inst.rd] = r[inst.rn] & r[inst.rm]; break;
    case Opcode::kOrr: r[inst.rd] = r[inst.rn] | r[inst.rm]; break;
    case Opcode::kEor: r[inst.rd] = r[inst.rn] ^ r[inst.rm]; break;
    case Opcode::kLsl: r[inst.rd] = r[inst.rn] << (r[inst.rm] & 31); break;
    case Opcode::kLsr: r[inst.rd] = r[inst.rn] >> (r[inst.rm] & 31); break;
    case Opcode::kAsr:
      r[inst.rd] = static_cast<u32>(static_cast<i32>(r[inst.rn]) >>
                                    (r[inst.rm] & 31));
      break;
    case Opcode::kMul: r[inst.rd] = r[inst.rn] * r[inst.rm]; break;
    case Opcode::kMla: r[inst.rd] = r[inst.rd] + r[inst.rn] * r[inst.rm]; break;
    case Opcode::kMov: r[inst.rd] = r[inst.rm]; break;
    case Opcode::kMvn: r[inst.rd] = ~r[inst.rm]; break;
    case Opcode::kCmp: compare(r[inst.rn], r[inst.rm]); break;
    case Opcode::kSlt:
      r[inst.rd] =
          static_cast<i32>(r[inst.rn]) < static_cast<i32>(r[inst.rm]) ? 1 : 0;
      break;
    case Opcode::kSltu: r[inst.rd] = r[inst.rn] < r[inst.rm] ? 1 : 0; break;

    case Opcode::kAddi:
      r[inst.rd] = r[inst.rn] + static_cast<u32>(inst.imm);
      break;
    case Opcode::kSubi:
      r[inst.rd] = r[inst.rn] - static_cast<u32>(inst.imm);
      break;
    case Opcode::kAndi:
      r[inst.rd] = r[inst.rn] & (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case Opcode::kOrri:
      r[inst.rd] = r[inst.rn] | (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case Opcode::kEori:
      r[inst.rd] = r[inst.rn] ^ (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case Opcode::kLsli: r[inst.rd] = r[inst.rn] << (inst.imm & 31); break;
    case Opcode::kLsri: r[inst.rd] = r[inst.rn] >> (inst.imm & 31); break;
    case Opcode::kAsri:
      r[inst.rd] =
          static_cast<u32>(static_cast<i32>(r[inst.rn]) >> (inst.imm & 31));
      break;
    case Opcode::kMuli:
      r[inst.rd] = r[inst.rn] * static_cast<u32>(inst.imm);
      break;
    case Opcode::kCmpi: compare(r[inst.rn], static_cast<u32>(inst.imm)); break;
    case Opcode::kMovi: r[inst.rd] = static_cast<u32>(inst.imm); break;
    case Opcode::kMovhi:
      r[inst.rd] = (r[inst.rd] & 0xffffu) |
                   ((static_cast<u32>(inst.imm) & 0xffffu) << 16);
      break;

    case Opcode::kLdr: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      r[inst.rd] = memory_.load32(addr);
      break;
    }
    case Opcode::kStr: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      memory_.store32(addr, r[inst.rd]);
      break;
    }
    case Opcode::kLdrb: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      r[inst.rd] = memory_.load8(addr);
      break;
    }
    case Opcode::kStrb: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      memory_.store8(addr, static_cast<u8>(r[inst.rd]));
      break;
    }
    case Opcode::kLdrx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      r[inst.rd] = memory_.load32(addr);
      break;
    }
    case Opcode::kStrx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      memory_.store32(addr, r[inst.rd]);
      break;
    }
    case Opcode::kLdrbx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      r[inst.rd] = memory_.load8(addr);
      break;
    }
    case Opcode::kStrbx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      memory_.store8(addr, static_cast<u8>(r[inst.rd]));
      break;
    }

    case Opcode::kB:
      info.control_transfer = true;
      info.taken = true;
      next_pc = branchTarget();
      break;
    case Opcode::kBeq: condBranch(s.z); break;
    case Opcode::kBne: condBranch(!s.z); break;
    case Opcode::kBlt: condBranch(s.n != s.v); break;
    case Opcode::kBge: condBranch(s.n == s.v); break;
    case Opcode::kBgt: condBranch(!s.z && s.n == s.v); break;
    case Opcode::kBle: condBranch(s.z || s.n != s.v); break;
    case Opcode::kBltu: condBranch(!s.c); break;
    case Opcode::kBgeu: condBranch(s.c); break;
    case Opcode::kBl:
      info.control_transfer = true;
      info.taken = true;
      r[isa::kLinkReg] = seq_pc;
      next_pc = branchTarget();
      break;
    case Opcode::kJr:
      info.control_transfer = true;
      info.taken = true;
      info.indirect = true;
      next_pc = r[inst.rn];
      break;

    case Opcode::kNop:
      break;
    case Opcode::kHalt:
      s.halted = true;
      break;
    case Opcode::kOpcodeCount:
      WP_UNREACHABLE("invalid opcode");
  }

  info.next_pc = next_pc;
  s.pc = next_pc;
  return info;
}

}  // namespace wp::sim
