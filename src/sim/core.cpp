#include "sim/core.hpp"

#include "support/ensure.hpp"

namespace wp::sim {

using isa::Instruction;

Core::Core(const mem::Image& image, mem::Memory& memory)
    : memory_(memory), code_base_(mem::kCodeBase), entry_(image.entry) {
  WP_ENSURE(image.code.size() % 4 == 0, "code segment not word-sized");
  decoded_.reserve(image.code.size() / 4);
  for (std::size_t i = 0; i < image.code.size(); i += 4) {
    u32 word = 0;
    word |= image.code[i];
    word |= static_cast<u32>(image.code[i + 1]) << 8;
    word |= static_cast<u32>(image.code[i + 2]) << 16;
    word |= static_cast<u32>(image.code[i + 3]) << 24;
    decoded_.push_back(isa::decode(word));
  }
}

CoreState Core::initialState() const {
  CoreState s;
  s.pc = entry_;
  s.regs[isa::kStackReg] = mem::kStackTop;
  return s;
}

}  // namespace wp::sim
