#include "sim/processor.hpp"

#include "support/ensure.hpp"

namespace wp::sim {

MachineConfig baselineMachine(cache::Scheme scheme, u32 wp_area_bytes) {
  MachineConfig m;
  m.fetch.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  m.fetch.tlb_entries = 32;
  m.fetch.scheme = scheme;
  m.fetch.wp_area_bytes = wp_area_bytes;
  m.dcache.geometry = cache::CacheGeometry{32 * 1024, 32, 32};
  return m;
}

Processor::Processor(const MachineConfig& config, const mem::Image& image,
                     mem::Memory& memory)
    : config_(config),
      core_(image, memory),
      fetch_(config.fetch),
      dcache_(config.dcache),
      timing_(config.timing) {}

namespace {

constexpr u64 fnv1a(u64 h, u64 v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

RunStats Processor::run() {
  CoreState state = core_.initialState();
  RunStats stats;

  // Watchdog countdown: a decrement per instruction instead of a modulo
  // keeps the hook's cost out of the hot loop when it is not installed.
  const bool hooked = static_cast<bool>(config_.budget_hook.check);
  if (hooked) {
    WP_ENSURE(config_.budget_hook.interval > 0,
              "BudgetHook.interval must be non-zero when a check is set");
  }
  u64 until_check = hooked ? config_.budget_hook.interval : 0;

  // Flow into the *next* fetch, derived from the previous instruction.
  cache::FetchFlow flow = cache::FetchFlow::kSequential;

  while (!state.halted) {
    WP_ENSURE(stats.instructions < config_.max_instructions,
              "instruction budget exhausted (runaway guest?)");
    if (hooked && --until_check == 0) {
      config_.budget_hook.check(stats.instructions);
      until_check = config_.budget_hook.interval;
    }

    const u32 pc = state.pc;
    const u32 fetch_cycles = fetch_.fetch(pc, flow);

    const StepInfo info = core_.step(state);
    ++stats.instructions;
    stats.retired_pc_hash = fnv1a(stats.retired_pc_hash, pc);

    u32 mem_cycles = 0;
    if (info.mem_addr.has_value()) {
      const bool is_store = isa::isStore(info.inst.op);
      stats.dataflow_hash = fnv1a(
          stats.dataflow_hash,
          (static_cast<u64>(*info.mem_addr) << 1) | (is_store ? 1u : 0u));
      mem_cycles = is_store ? dcache_.store(*info.mem_addr)
                            : dcache_.load(*info.mem_addr);
    }

    timing_.onInstruction(info.inst, pc, fetch_cycles, mem_cycles,
                          info.taken, info.next_pc);

    if (info.control_transfer && info.taken) {
      flow = info.indirect ? cache::FetchFlow::kTakenIndirect
                           : cache::FetchFlow::kTakenDirect;
    } else {
      flow = cache::FetchFlow::kSequential;
    }
  }

  stats.cycles = timing_.cycles();
  stats.icache = fetch_.cacheStats();
  stats.dcache = dcache_.stats();
  stats.itlb = fetch_.tlbStats();
  stats.fetch = fetch_.fetchStats();
  stats.branches = timing_.branchStats();
  stats.squashed_probes = fetch_.squashedProbes();
  stats.link_flash_clears = fetch_.linkFlashClears();
  stats.icache_data_area_factor = fetch_.dataAreaFactor();
  stats.drowsy = fetch_.drowsyStats();
  stats.icache_lines = fetch_.icacheLines();
  return stats;
}

energy::RunEnergy Processor::price(const energy::EnergyModel& model,
                                   const MachineConfig& config,
                                   const RunStats& stats) {
  energy::RunEnergy e;
  e.icache = model.cacheEnergy(config.fetch.icache, stats.icache,
                               stats.icache_data_area_factor,
                               stats.link_flash_clears);
  e.dcache = model.cacheEnergy(config.dcache.geometry, stats.dcache);
  const bool wp_active = config.fetch.scheme == cache::Scheme::kWayPlacement;
  e.itlb = model.tlbEnergy(stats.itlb, wp_active);
  e.hint = wp_active ? model.hintEnergy(stats.fetch) : 0.0;
  e.core = model.coreEnergy(stats.instructions, stats.cycles);
  e.memory = model.memoryEnergy(stats.memLineTransfers());
  return e;
}

}  // namespace wp::sim
