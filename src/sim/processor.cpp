#include "sim/processor.hpp"

#include <algorithm>

#include "sim/block_cache.hpp"
#include "support/ensure.hpp"

namespace wp::sim {

const char* engineName(Engine e) {
  switch (e) {
    case Engine::kInterp:
      return "interp";
    case Engine::kBlock:
      return "block";
  }
  WP_UNREACHABLE("bad engine");
}

MachineConfig baselineMachine(cache::Scheme scheme, u32 wp_area_bytes) {
  MachineConfig m;
  m.fetch.icache = cache::CacheGeometry{32 * 1024, 32, 32};
  m.fetch.tlb_entries = 32;
  m.fetch.scheme = scheme;
  m.fetch.wp_area_bytes = wp_area_bytes;
  m.dcache.geometry = cache::CacheGeometry{32 * 1024, 32, 32};
  return m;
}

Processor::Processor(const MachineConfig& config, const mem::Image& image,
                     mem::Memory& memory)
    : config_(config),
      core_(image, memory),
      fetch_(config.fetch),
      dcache_(config.dcache),
      timing_(config.timing) {}

namespace {

constexpr u64 fnv1a(u64 h, u64 v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

RunStats Processor::run() {
  // The block engine's batched fetchLine accounting is closed-form only
  // without a fault hook (hooks observe and corrupt state between
  // individual fetches) and without drowsy lines (a line can fall
  // drowsy between two same-line fetches). Those runs use the reference
  // interpreter — the equivalence suite shows the results are identical
  // wherever both engines apply.
  if (config_.engine == Engine::kBlock && fetch_.batchedLineFetchExact()) {
    return runBlock();
  }
  return runInterp();
}

RunStats Processor::runInterp() {
  CoreState state = core_.initialState();
  RunStats stats;

  // Watchdog countdown: a decrement per instruction instead of a modulo
  // keeps the hook's cost out of the hot loop when it is not installed.
  const bool hooked = static_cast<bool>(config_.budget_hook.check);
  if (hooked) {
    WP_ENSURE(config_.budget_hook.interval > 0,
              "BudgetHook.interval must be non-zero when a check is set");
  }
  u64 until_check = hooked ? config_.budget_hook.interval : 0;

  // Flow into the *next* fetch, derived from the previous instruction.
  cache::FetchFlow flow = cache::FetchFlow::kSequential;

  while (!state.halted) {
    WP_ENSURE(stats.instructions < config_.max_instructions,
              "instruction budget exhausted (runaway guest?)");

    const u32 pc = state.pc;
    const u32 fetch_cycles = fetch_.fetch(pc, flow);

    const StepInfo info = core_.step(state);
    ++stats.instructions;
    stats.retired_pc_hash = fnv1a(stats.retired_pc_hash, pc);

    u32 mem_cycles = 0;
    if (info.mem_addr.has_value()) {
      const bool is_store = isa::isStore(info.inst.op);
      stats.dataflow_hash = fnv1a(
          stats.dataflow_hash,
          (static_cast<u64>(*info.mem_addr) << 1) | (is_store ? 1u : 0u));
      mem_cycles = is_store ? dcache_.store(*info.mem_addr)
                            : dcache_.load(*info.mem_addr);
    }

    timing_.onInstruction(info.inst, pc, fetch_cycles, mem_cycles,
                          info.taken, info.next_pc);

    if (info.control_transfer && info.taken) {
      flow = info.indirect ? cache::FetchFlow::kTakenIndirect
                           : cache::FetchFlow::kTakenDirect;
    } else {
      flow = cache::FetchFlow::kSequential;
    }

    // The check runs *after* the instruction retires, so the hook sees
    // the exact retired count (k * interval on the k-th call).
    if (hooked && --until_check == 0) {
      config_.budget_hook.check(stats.instructions);
      until_check = config_.budget_hook.interval;
    }
  }

  collectInto(stats);
  return stats;
}

RunStats Processor::runBlock() {
  CoreState state = core_.initialState();
  RunStats stats;

  const bool hooked = static_cast<bool>(config_.budget_hook.check);
  if (hooked) {
    WP_ENSURE(config_.budget_hook.interval > 0,
              "BudgetHook.interval must be non-zero when a check is set");
  }
  u64 until_check = hooked ? config_.budget_hook.interval : 0;

  cache::FetchFlow flow = cache::FetchFlow::kSequential;
  const BlockCache blocks(core_, config_.fetch.icache.line_bytes);

  while (!state.halted) {
    WP_ENSURE(stats.instructions < config_.max_instructions,
              "instruction budget exhausted (runaway guest?)");

    // Batch size: the basic block, clipped so the instruction budget
    // and the watchdog both observe their exact boundary counts. A
    // clipped batch resumes mid-line next iteration; re-entering the
    // line sequentially takes the same same-line fetch paths the
    // interpreter would, so the split is invisible in the stats.
    u64 n64 = blocks.blockLenAt(state.pc);
    n64 = std::min(n64, config_.max_instructions - stats.instructions);
    if (hooked) n64 = std::min(n64, until_check);
    const u32 n = static_cast<u32>(n64);

    const u32 first_cycles = fetch_.fetchLine(state.pc, flow, n);

    for (u32 i = 0; i < n; ++i) {
      const u32 pc = state.pc;
      const StepInfo info = core_.step(state);
      ++stats.instructions;
      stats.retired_pc_hash = fnv1a(stats.retired_pc_hash, pc);

      u32 mem_cycles = 0;
      if (info.mem_addr.has_value()) {
        const bool is_store = isa::isStore(info.inst.op);
        stats.dataflow_hash = fnv1a(
            stats.dataflow_hash,
            (static_cast<u64>(*info.mem_addr) << 1) | (is_store ? 1u : 0u));
        mem_cycles = is_store ? dcache_.store(*info.mem_addr)
                              : dcache_.load(*info.mem_addr);
      }

      // Follow-up fetches within the batch cost exactly one cycle (the
      // fetchLine contract); only the first carries miss/walk penalties.
      timing_.onInstruction(info.inst, blocks.regUseAt(pc), pc,
                            i == 0 ? first_cycles : 1, mem_cycles,
                            info.taken, info.next_pc);

      // Only the batch's last instruction can transfer control (blocks
      // end at control transfers), but deriving flow uniformly keeps
      // this loop a line-for-line match of the interpreter's.
      if (info.control_transfer && info.taken) {
        flow = info.indirect ? cache::FetchFlow::kTakenIndirect
                             : cache::FetchFlow::kTakenDirect;
      } else {
        flow = cache::FetchFlow::kSequential;
      }
    }

    if (hooked && (until_check -= n) == 0) {
      config_.budget_hook.check(stats.instructions);
      until_check = config_.budget_hook.interval;
    }
  }

  collectInto(stats);
  return stats;
}

void Processor::collectInto(RunStats& stats) const {
  stats.cycles = timing_.cycles();
  stats.icache = fetch_.cacheStats();
  stats.dcache = dcache_.stats();
  stats.itlb = fetch_.tlbStats();
  stats.fetch = fetch_.fetchStats();
  stats.branches = timing_.branchStats();
  stats.squashed_probes = fetch_.squashedProbes();
  stats.link_flash_clears = fetch_.linkFlashClears();
  stats.icache_data_area_factor = fetch_.dataAreaFactor();
  stats.drowsy = fetch_.drowsyStats();
  stats.icache_lines = fetch_.icacheLines();
}

energy::RunEnergy Processor::price(const energy::EnergyModel& model,
                                   const MachineConfig& config,
                                   const RunStats& stats) {
  energy::RunEnergy e;
  e.icache = model.cacheEnergy(config.fetch.icache, stats.icache,
                               stats.icache_data_area_factor,
                               stats.link_flash_clears);
  e.dcache = model.cacheEnergy(config.dcache.geometry, stats.dcache);
  const bool wp_active = config.fetch.scheme == cache::Scheme::kWayPlacement;
  e.itlb = model.tlbEnergy(stats.itlb, wp_active);
  e.hint = wp_active ? model.hintEnergy(stats.fetch) : 0.0;
  e.core = model.coreEnergy(stats.instructions, stats.cycles);
  e.memory = model.memoryEnergy(stats.memLineTransfers());
  return e;
}

}  // namespace wp::sim
