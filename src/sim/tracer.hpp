// Execution tracer: a ring buffer of the last N executed instructions
// with register snapshots, for debugging guest programs. When a guest
// throws (unaligned access, runaway loop, pc out of range), the tail of
// the trace is the first thing you want to see.
#pragma once

#include <deque>
#include <functional>
#include <string>

#include "mem/image.hpp"
#include "sim/core.hpp"

namespace wp::sim {

class Tracer {
 public:
  /// Keeps the last @p depth instructions.
  explicit Tracer(std::size_t depth = 64);

  /// Records one step: call just *before* Core::step with the current
  /// state (the disassembly needs the pre-execution registers).
  void record(const Core& core, const CoreState& state,
              const mem::Image& image);

  /// Formatted trace lines, oldest first.
  [[nodiscard]] std::vector<std::string> lines() const;

  /// Renders everything into one string (for exception messages).
  [[nodiscard]] std::string dump() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

 private:
  std::size_t depth_;
  std::deque<std::string> entries_;
};

/// Runs @p image functionally until HALT with tracing, returning the
/// executed instruction count. On a guest fault, rethrows SimError with
/// the trace tail appended — the debugging workhorse for new workloads.
u64 runTraced(const mem::Image& image, mem::Memory& memory,
              u64 max_instructions = 100'000'000ULL,
              std::size_t trace_depth = 64);

}  // namespace wp::sim
