// The whole simulated processor: functional core + fetch path (way-hint,
// I-TLB, I-cache) + D-cache + timing model. This is the XTREM substitute
// the experiments run on.
#pragma once

#include <functional>

#include "cache/data_cache.hpp"
#include "cache/fetch_path.hpp"
#include "energy/energy_model.hpp"
#include "pipeline/timing.hpp"
#include "sim/core.hpp"

namespace wp::sim {

/// Host-side supervision hook: check(instructions) is invoked after
/// every `interval`-th instruction retires, with the exact retired
/// count (k * interval on the k-th call) — under both engines, the
/// block engine splitting a batch mid-block when a boundary falls
/// inside it. The hook observes only
/// — it may throw SimError to abort the run (the sweep supervisor's
/// watchdog does) but never feeds anything back into the machine, so a
/// run that completes retires a bit-identical instruction stream with
/// or without a hook installed.
struct BudgetHook {
  u64 interval = 1u << 20;  ///< retired instructions between checks
  std::function<void(u64 instructions)> check;
};

/// Which engine executes the run. Both retire a bit-identical
/// instruction stream and produce identical RunStats; the block engine
/// is simply faster on the host.
enum class Engine : u8 {
  kInterp,  ///< reference per-instruction interpreter
  kBlock,   ///< decode-once basic-block engine with per-line batched fetch
};

[[nodiscard]] const char* engineName(Engine e);

struct MachineConfig {
  cache::FetchPathConfig fetch;   ///< I-cache geometry + scheme selection
  cache::DataCacheConfig dcache;
  pipeline::TimingConfig timing;
  u64 max_instructions = 4'000'000'000ULL;
  BudgetHook budget_hook;         ///< optional watchdog (empty = off)
  Engine engine = Engine::kBlock;
};

/// Returns the baseline machine of Table 1 (32 KB 32-way 32 B caches,
/// 32-entry TLBs, 50-cycle memory) with the given scheme installed.
[[nodiscard]] MachineConfig baselineMachine(
    cache::Scheme scheme = cache::Scheme::kBaseline, u32 wp_area_bytes = 0);

/// Raw activity counts of one run; the energy model prices them.
struct RunStats {
  u64 instructions = 0;
  u64 cycles = 0;
  /// FNV-1a over every retired pc, in order — the fingerprint of the
  /// retired instruction stream. The fault suite's architectural-
  /// equivalence invariant: any run of the same binary and inputs must
  /// reproduce this hash exactly, no matter what advisory fetch state
  /// was corrupted along the way.
  u64 retired_pc_hash = 0xcbf29ce484222325ULL;
  /// FNV-1a over every data access (effective address + load/store
  /// kind), in order. Unlike retired_pc_hash this is layout-invariant:
  /// relinking under a different (even corrupt) profile legitimately
  /// changes pc values but must never change the data the program
  /// touches or produces.
  u64 dataflow_hash = 0xcbf29ce484222325ULL;
  cache::CacheStats icache;
  cache::CacheStats dcache;
  cache::TlbStats itlb;
  cache::FetchStats fetch;
  pipeline::BranchStats branches;
  u64 squashed_probes = 0;
  u64 link_flash_clears = 0;
  double icache_data_area_factor = 1.0;
  cache::DrowsyStats drowsy;
  u32 icache_lines = 0;

  [[nodiscard]] u64 memLineTransfers() const {
    return icache.line_fills + dcache.line_fills + dcache.writebacks;
  }
};

class Processor {
 public:
  /// The image must already be loaded into @p memory (Image::loadInto).
  Processor(const MachineConfig& config, const mem::Image& image,
            mem::Memory& memory);

  /// Runs from the image entry point until HALT; returns activity counts.
  RunStats run();

  /// Prices a run with @p model, filling a RunEnergy breakdown.
  [[nodiscard]] static energy::RunEnergy price(
      const energy::EnergyModel& model, const MachineConfig& config,
      const RunStats& stats);

  [[nodiscard]] const MachineConfig& config() const { return config_; }

  /// The fetch path, exposed so the driver can attach a fault injector
  /// (and tests can poke the fault surface directly).
  [[nodiscard]] cache::FetchPath& fetchPath() { return fetch_; }

 private:
  /// Reference engine: one fetch + step per loop iteration.
  RunStats runInterp();
  /// Block engine: decode-once basic blocks, one fetchLine per cache
  /// line entered. Selected by config_.engine when the fetch path's
  /// batched accounting is exact (no fault hook, no drowsy lines);
  /// otherwise run() falls back to runInterp(), which is equivalent.
  RunStats runBlock();
  void collectInto(RunStats& stats) const;

  MachineConfig config_;
  Core core_;
  cache::FetchPath fetch_;
  cache::DataCache dcache_;
  pipeline::TimingModel timing_;
};

}  // namespace wp::sim
