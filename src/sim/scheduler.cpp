#include "sim/scheduler.hpp"

#include <algorithm>

#include "support/ensure.hpp"

namespace wp::sim {

namespace {

constexpr u64 fnv1a(u64 h, u64 v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

ProcessContext::ProcessContext(u32 asid_in, std::string name_in,
                               const mem::Image& image,
                               const MachineConfig& config)
    : asid(asid_in),
      name(std::move(name_in)),
      core(image, memory),
      state(core.initialState()),
      blocks(core, config.fetch.icache.line_bytes),
      dcache(config.dcache),
      timing(config.timing) {
  image.loadInto(memory);
}

GuestScheduler::GuestScheduler(const MachineConfig& machine,
                               const SchedulerConfig& sched)
    : machine_(machine), sched_(sched), fetch_(machine.fetch) {
  WP_ENSURE(sched_.quantum > 0,
            "SchedulerConfig.quantum must be at least one instruction");
}

u32 GuestScheduler::addProcess(const std::string& name,
                               const mem::Image& image, u32 wp_area_bytes) {
  WP_ENSURE(!ran_, "addProcess after run()");
  const u32 asid = static_cast<u32>(procs_.size());
  procs_.push_back(
      std::make_unique<ProcessContext>(asid, name, image, machine_));
  procs_.back()->wp_area_bytes = wp_area_bytes;
  return asid;
}

mem::Memory& GuestScheduler::memoryOf(u32 asid) {
  WP_ENSURE(asid < procs_.size(), "memoryOf: unknown ASID");
  return procs_[asid]->memory;
}

int GuestScheduler::nextRunnable(u32 from) const {
  const u32 n = static_cast<u32>(procs_.size());
  for (u32 k = 0; k < n; ++k) {
    const u32 i = (from + k) % n;
    if (!procs_[i]->state.halted) return static_cast<int>(i);
  }
  return -1;
}

CoRunStats GuestScheduler::run() {
  WP_ENSURE(!procs_.empty(), "GuestScheduler::run with no processes");
  WP_ENSURE(!ran_, "GuestScheduler::run called twice");
  ran_ = true;

  CoRunStats out;
  RunStats& c = out.combined;

  const bool hooked = static_cast<bool>(machine_.budget_hook.check);
  if (hooked) {
    WP_ENSURE(machine_.budget_hook.interval > 0,
              "BudgetHook.interval must be non-zero when a check is set");
  }
  u64 until_check = hooked ? machine_.budget_hook.interval : 0;

  // Same engine-selection rule as Processor::run: the batched fetchLine
  // accounting is only exact without a fault hook and without drowsy
  // lines; otherwise the per-instruction path is equivalent.
  const bool use_block =
      machine_.engine == Engine::kBlock && fetch_.batchedLineFetchExact();

  // Retires one instruction of @p p: hashes (per-process and the
  // interleaved combined ones), D-cache, timing, flow. A line-for-line
  // match of the Processor engines' loop bodies so a one-process co-run
  // stays bit-identical to a solo run.
  const auto retire = [&](ProcessContext& p, u32 pc, const StepInfo& info,
                          u32 fetch_cycles, bool block_engine) {
    ++c.instructions;
    ++p.instructions;
    c.retired_pc_hash = fnv1a(c.retired_pc_hash, pc);
    p.retired_pc_hash = fnv1a(p.retired_pc_hash, pc);

    u32 mem_cycles = 0;
    if (info.mem_addr.has_value()) {
      const bool is_store = isa::isStore(info.inst.op);
      const u64 v =
          (static_cast<u64>(*info.mem_addr) << 1) | (is_store ? 1u : 0u);
      c.dataflow_hash = fnv1a(c.dataflow_hash, v);
      p.dataflow_hash = fnv1a(p.dataflow_hash, v);
      mem_cycles = is_store ? p.dcache.store(*info.mem_addr)
                            : p.dcache.load(*info.mem_addr);
    }

    if (block_engine) {
      p.timing.onInstruction(info.inst, p.blocks.regUseAt(pc), pc,
                             fetch_cycles, mem_cycles, info.taken,
                             info.next_pc);
    } else {
      p.timing.onInstruction(info.inst, pc, fetch_cycles, mem_cycles,
                             info.taken, info.next_pc);
    }

    if (info.control_transfer && info.taken) {
      p.flow = info.indirect ? cache::FetchFlow::kTakenIndirect
                             : cache::FetchFlow::kTakenDirect;
    } else {
      p.flow = cache::FetchFlow::kSequential;
    }
  };

  int installed = -1;
  int cur = nextRunnable(0);
  while (cur >= 0) {
    ProcessContext& p = *procs_[static_cast<u32>(cur)];
    if (installed != cur) {
      fetch_.switchProcess(p.asid, p.wp_area_bytes, sched_.tlb_policy);
      if (installed >= 0) ++out.context_switches;
      installed = cur;
    }
    ++out.slices;

    u64 slice_remaining = sched_.quantum;
    while (!p.state.halted && slice_remaining > 0) {
      WP_ENSURE(c.instructions < machine_.max_instructions,
                "instruction budget exhausted (runaway guest?)");

      if (use_block) {
        // Batch: the basic block, clipped at the slice boundary (so a
        // batch never spans a context switch), the instruction budget
        // and the watchdog interval. A clipped batch resumes mid-line
        // on this process's next slice; re-entering the line takes the
        // same fetch paths the interpreter would.
        u64 n64 = p.blocks.blockLenAt(p.state.pc);
        n64 = std::min(n64, slice_remaining);
        n64 = std::min(n64, machine_.max_instructions - c.instructions);
        if (hooked) n64 = std::min(n64, until_check);
        const u32 n = static_cast<u32>(n64);

        const u32 first_cycles = fetch_.fetchLine(p.state.pc, p.flow, n);
        for (u32 i = 0; i < n; ++i) {
          const u32 pc = p.state.pc;
          const StepInfo info = p.core.step(p.state);
          retire(p, pc, info, i == 0 ? first_cycles : 1,
                 /*block_engine=*/true);
        }
        slice_remaining -= n;
        if (hooked && (until_check -= n) == 0) {
          machine_.budget_hook.check(c.instructions);
          until_check = machine_.budget_hook.interval;
        }
      } else {
        const u32 pc = p.state.pc;
        const u32 fetch_cycles = fetch_.fetch(pc, p.flow);
        const StepInfo info = p.core.step(p.state);
        retire(p, pc, info, fetch_cycles, /*block_engine=*/false);
        --slice_remaining;
        if (hooked && --until_check == 0) {
          machine_.budget_hook.check(c.instructions);
          until_check = machine_.budget_hook.interval;
        }
      }
    }

    cur = nextRunnable(static_cast<u32>(cur) + 1);
  }

  // Shared fetch-path counters come out exactly like a solo run's.
  c.icache = fetch_.cacheStats();
  c.itlb = fetch_.tlbStats();
  c.fetch = fetch_.fetchStats();
  c.squashed_probes = fetch_.squashedProbes();
  c.link_flash_clears = fetch_.linkFlashClears();
  c.icache_data_area_factor = fetch_.dataAreaFactor();
  c.drowsy = fetch_.drowsyStats();
  c.icache_lines = fetch_.icacheLines();

  // Private per-process activity sums into the combined totals (the
  // serialized-execution model: one core, N time-sliced guests).
  out.processes.reserve(procs_.size());
  for (const auto& pp : procs_) {
    const ProcessContext& p = *pp;
    c.cycles += p.timing.cycles();
    c.dcache += p.dcache.stats();
    c.branches.branches += p.timing.branchStats().branches;
    c.branches.mispredicts += p.timing.branchStats().mispredicts;

    ProcessRunStats ps;
    ps.name = p.name;
    ps.asid = p.asid;
    ps.instructions = p.instructions;
    ps.retired_pc_hash = p.retired_pc_hash;
    ps.dataflow_hash = p.dataflow_hash;
    ps.cycles = p.timing.cycles();
    ps.dcache = p.dcache.stats();
    ps.branches = p.timing.branchStats();
    out.processes.push_back(std::move(ps));
  }
  return out;
}

}  // namespace wp::sim
