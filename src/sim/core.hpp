// Functional execution core for WRISC-32.
//
// The core is deliberately separate from timing: the profiler runs it
// bare (fast block counting on the training input), the Processor wraps
// it with the fetch path, D-cache and timing model for measurement runs.
//
// Code is predecoded once from the loaded image — the guest ISA has no
// self-modifying code — while loads and stores go to the live Memory.
#pragma once

#include <optional>
#include <vector>

#include "isa/isa.hpp"
#include "mem/image.hpp"
#include "mem/memory.hpp"

namespace wp::sim {

struct CoreState {
  std::array<u32, isa::kNumRegisters> regs{};
  bool n = false, z = false, c = false, v = false;  // NZCV flags
  u32 pc = 0;
  bool halted = false;
};

/// Everything the wrappers need to know about one executed instruction.
struct StepInfo {
  u32 pc = 0;
  isa::Instruction inst;
  u32 next_pc = 0;
  bool control_transfer = false;
  bool taken = false;           ///< for control transfers
  bool indirect = false;        ///< jr (register target)
  std::optional<u32> mem_addr;  ///< effective address of a load/store
};

class Core {
 public:
  /// Predecodes @p image's code segment; @p memory holds data and stack.
  Core(const mem::Image& image, mem::Memory& memory);

  /// Initial state: pc at the entry point, sp at the stack top.
  [[nodiscard]] CoreState initialState() const;

  /// Executes the instruction at @p state.pc. Returns what happened.
  StepInfo step(CoreState& state);

  [[nodiscard]] u32 codeBase() const { return code_base_; }
  [[nodiscard]] u32 codeEnd() const {
    return code_base_ + static_cast<u32>(decoded_.size()) * 4;
  }

 private:
  [[nodiscard]] const isa::Instruction& fetchDecoded(u32 pc) const;

  mem::Memory& memory_;
  std::vector<isa::Instruction> decoded_;
  u32 code_base_;
  u32 entry_;
};

}  // namespace wp::sim
