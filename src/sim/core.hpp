// Functional execution core for WRISC-32.
//
// The core is deliberately separate from timing: the profiler runs it
// bare (fast block counting on the training input), the Processor wraps
// it with the fetch path, D-cache and timing model for measurement runs.
//
// Code is predecoded once from the loaded image — the guest ISA has no
// self-modifying code — while loads and stores go to the live Memory.
#pragma once

#include <optional>
#include <vector>

#include "isa/isa.hpp"
#include "mem/image.hpp"
#include "mem/memory.hpp"
#include "support/ensure.hpp"

namespace wp::sim {

struct CoreState {
  std::array<u32, isa::kNumRegisters> regs{};
  bool n = false, z = false, c = false, v = false;  // NZCV flags
  u32 pc = 0;
  bool halted = false;
};

/// Everything the wrappers need to know about one executed instruction.
struct StepInfo {
  u32 pc = 0;
  isa::Instruction inst;
  u32 next_pc = 0;
  bool control_transfer = false;
  bool taken = false;           ///< for control transfers
  bool indirect = false;        ///< jr (register target)
  std::optional<u32> mem_addr;  ///< effective address of a load/store
};

class Core {
 public:
  /// Predecodes @p image's code segment; @p memory holds data and stack.
  Core(const mem::Image& image, mem::Memory& memory);

  /// Initial state: pc at the entry point, sp at the stack top.
  [[nodiscard]] CoreState initialState() const;

  /// Executes the instruction at @p state.pc. Returns what happened.
  /// Defined inline at the bottom of this header: it runs once per
  /// simulated instruction, and keeping it visible to the engine loops
  /// lets them inline the dispatch switch and drop the StepInfo fields
  /// they never read (the profiler discards all of them).
  StepInfo step(CoreState& state);

  [[nodiscard]] u32 codeBase() const { return code_base_; }
  [[nodiscard]] u32 codeEnd() const {
    return code_base_ + static_cast<u32>(decoded_.size()) * 4;
  }

  /// The predecoded code segment, one entry per instruction slot from
  /// codeBase(). Read-only: the BlockCache indexes it to precompute
  /// basic-block extents.
  [[nodiscard]] const std::vector<isa::Instruction>& decoded() const {
    return decoded_;
  }

 private:
  [[nodiscard]] const isa::Instruction& fetchDecoded(u32 pc) const {
    WP_ENSURE((pc & 3u) == 0, "misaligned pc");
    WP_ENSURE(pc >= code_base_ && pc < codeEnd(), "pc outside code segment");
    return decoded_[(pc - code_base_) / 4];
  }

  mem::Memory& memory_;
  std::vector<isa::Instruction> decoded_;
  u32 code_base_;
  u32 entry_;
};

inline StepInfo Core::step(CoreState& s) {
  WP_ENSURE(!s.halted, "step on a halted core");
  const isa::Instruction& inst = fetchDecoded(s.pc);
  StepInfo info;
  info.pc = s.pc;
  info.inst = inst;

  auto& r = s.regs;
  const u32 seq_pc = s.pc + 4;
  u32 next_pc = seq_pc;

  const auto setNZ = [&s](u32 value) {
    s.n = (value >> 31) != 0;
    s.z = value == 0;
  };
  const auto compare = [&](u32 a, u32 b) {
    const u32 res = a - b;
    setNZ(res);
    s.c = a >= b;  // no borrow
    s.v = (((a ^ b) & (a ^ res)) >> 31) != 0;
  };
  const auto branchTarget = [&]() {
    return static_cast<u32>(static_cast<i64>(seq_pc) +
                            static_cast<i64>(inst.imm) * 4);
  };
  const auto condBranch = [&](bool cond) {
    info.control_transfer = true;
    info.taken = cond;
    if (cond) next_pc = branchTarget();
  };

  switch (inst.op) {
    case isa::Opcode::kAdd: r[inst.rd] = r[inst.rn] + r[inst.rm]; break;
    case isa::Opcode::kSub: r[inst.rd] = r[inst.rn] - r[inst.rm]; break;
    case isa::Opcode::kRsb: r[inst.rd] = r[inst.rm] - r[inst.rn]; break;
    case isa::Opcode::kAnd: r[inst.rd] = r[inst.rn] & r[inst.rm]; break;
    case isa::Opcode::kOrr: r[inst.rd] = r[inst.rn] | r[inst.rm]; break;
    case isa::Opcode::kEor: r[inst.rd] = r[inst.rn] ^ r[inst.rm]; break;
    case isa::Opcode::kLsl: r[inst.rd] = r[inst.rn] << (r[inst.rm] & 31); break;
    case isa::Opcode::kLsr: r[inst.rd] = r[inst.rn] >> (r[inst.rm] & 31); break;
    case isa::Opcode::kAsr:
      r[inst.rd] = static_cast<u32>(static_cast<i32>(r[inst.rn]) >>
                                    (r[inst.rm] & 31));
      break;
    case isa::Opcode::kMul: r[inst.rd] = r[inst.rn] * r[inst.rm]; break;
    case isa::Opcode::kMla: r[inst.rd] = r[inst.rd] + r[inst.rn] * r[inst.rm]; break;
    case isa::Opcode::kMov: r[inst.rd] = r[inst.rm]; break;
    case isa::Opcode::kMvn: r[inst.rd] = ~r[inst.rm]; break;
    case isa::Opcode::kCmp: compare(r[inst.rn], r[inst.rm]); break;
    case isa::Opcode::kSlt:
      r[inst.rd] =
          static_cast<i32>(r[inst.rn]) < static_cast<i32>(r[inst.rm]) ? 1 : 0;
      break;
    case isa::Opcode::kSltu: r[inst.rd] = r[inst.rn] < r[inst.rm] ? 1 : 0; break;

    case isa::Opcode::kAddi:
      r[inst.rd] = r[inst.rn] + static_cast<u32>(inst.imm);
      break;
    case isa::Opcode::kSubi:
      r[inst.rd] = r[inst.rn] - static_cast<u32>(inst.imm);
      break;
    case isa::Opcode::kAndi:
      r[inst.rd] = r[inst.rn] & (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case isa::Opcode::kOrri:
      r[inst.rd] = r[inst.rn] | (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case isa::Opcode::kEori:
      r[inst.rd] = r[inst.rn] ^ (static_cast<u32>(inst.imm) & 0xffffu);
      break;
    case isa::Opcode::kLsli: r[inst.rd] = r[inst.rn] << (inst.imm & 31); break;
    case isa::Opcode::kLsri: r[inst.rd] = r[inst.rn] >> (inst.imm & 31); break;
    case isa::Opcode::kAsri:
      r[inst.rd] =
          static_cast<u32>(static_cast<i32>(r[inst.rn]) >> (inst.imm & 31));
      break;
    case isa::Opcode::kMuli:
      r[inst.rd] = r[inst.rn] * static_cast<u32>(inst.imm);
      break;
    case isa::Opcode::kCmpi: compare(r[inst.rn], static_cast<u32>(inst.imm)); break;
    case isa::Opcode::kMovi: r[inst.rd] = static_cast<u32>(inst.imm); break;
    case isa::Opcode::kMovhi:
      r[inst.rd] = (r[inst.rd] & 0xffffu) |
                   ((static_cast<u32>(inst.imm) & 0xffffu) << 16);
      break;

    case isa::Opcode::kLdr: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      r[inst.rd] = memory_.load32(addr);
      break;
    }
    case isa::Opcode::kStr: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      memory_.store32(addr, r[inst.rd]);
      break;
    }
    case isa::Opcode::kLdrb: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      r[inst.rd] = memory_.load8(addr);
      break;
    }
    case isa::Opcode::kStrb: {
      const u32 addr = r[inst.rn] + static_cast<u32>(inst.imm);
      info.mem_addr = addr;
      memory_.store8(addr, static_cast<u8>(r[inst.rd]));
      break;
    }
    case isa::Opcode::kLdrx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      r[inst.rd] = memory_.load32(addr);
      break;
    }
    case isa::Opcode::kStrx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      memory_.store32(addr, r[inst.rd]);
      break;
    }
    case isa::Opcode::kLdrbx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      r[inst.rd] = memory_.load8(addr);
      break;
    }
    case isa::Opcode::kStrbx: {
      const u32 addr = r[inst.rn] + r[inst.rm];
      info.mem_addr = addr;
      memory_.store8(addr, static_cast<u8>(r[inst.rd]));
      break;
    }

    case isa::Opcode::kB:
      info.control_transfer = true;
      info.taken = true;
      next_pc = branchTarget();
      break;
    case isa::Opcode::kBeq: condBranch(s.z); break;
    case isa::Opcode::kBne: condBranch(!s.z); break;
    case isa::Opcode::kBlt: condBranch(s.n != s.v); break;
    case isa::Opcode::kBge: condBranch(s.n == s.v); break;
    case isa::Opcode::kBgt: condBranch(!s.z && s.n == s.v); break;
    case isa::Opcode::kBle: condBranch(s.z || s.n != s.v); break;
    case isa::Opcode::kBltu: condBranch(!s.c); break;
    case isa::Opcode::kBgeu: condBranch(s.c); break;
    case isa::Opcode::kBl:
      info.control_transfer = true;
      info.taken = true;
      r[isa::kLinkReg] = seq_pc;
      next_pc = branchTarget();
      break;
    case isa::Opcode::kJr:
      info.control_transfer = true;
      info.taken = true;
      info.indirect = true;
      next_pc = r[inst.rn];
      break;

    case isa::Opcode::kNop:
      break;
    case isa::Opcode::kHalt:
      s.halted = true;
      break;
    case isa::Opcode::kOpcodeCount:
      WP_UNREACHABLE("invalid opcode");
  }

  info.next_pc = next_pc;
  s.pc = next_pc;
  return info;
}

}  // namespace wp::sim
