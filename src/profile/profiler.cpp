#include "profile/profiler.hpp"

#include <algorithm>
#include <vector>

#include "support/ensure.hpp"

namespace wp::profile {

ProfileResult profileImage(const mem::Image& image, mem::Memory& memory,
                           u64 max_instructions) {
  // Flat pc -> block-id map over the code segment for O(1) counting.
  const std::size_t words = image.code.size() / 4;
  std::vector<i32> block_at(words, -1);
  for (const auto& [id, addr] : image.block_addr) {
    const std::size_t w = (addr - mem::kCodeBase) / 4;
    if (w < words) block_at[w] = static_cast<i32>(id);
  }

  sim::Core core(image, memory);
  sim::CoreState state = core.initialState();

  ProfileResult result;
  std::vector<u64> counts(image.block_addr.empty()
                              ? 0
                              : image.block_addr.rbegin()->first + 1,
                          0);

  // A block is "entered" when the pc lands on its first instruction.
  while (!state.halted) {
    WP_ENSURE(result.instructions < max_instructions,
              "profiling budget exhausted (runaway guest?)");
    const u32 pc = state.pc;
    const std::size_t w = (pc - mem::kCodeBase) / 4;
    if (w < words && block_at[w] >= 0) {
      ++counts[static_cast<std::size_t>(block_at[w])];
    }
    core.step(state);
    ++result.instructions;
  }

  for (u32 id = 0; id < counts.size(); ++id) {
    if (counts[id] != 0) result.block_counts[id] = counts[id];
  }
  return result;
}

void annotate(ir::Module& module, const ProfileResult& result) {
  for (ir::BasicBlock& b : module.blocks) {
    const auto it = result.block_counts.find(b.id);
    b.exec_count = it == result.block_counts.end() ? 0 : it->second;
  }
}

std::optional<std::string> validate(const ir::Module& module,
                                    const ProfileResult& result) {
  if (result.instructions == 0) {
    return "profile executed zero instructions";
  }
  if (result.block_counts.empty()) {
    return "profile contains no block counts";
  }
  if (module.blocks.empty()) {
    return "module has no blocks to lay out";
  }
  u32 max_id = 0;
  for (const ir::BasicBlock& b : module.blocks) {
    max_id = std::max(max_id, b.id);
  }
  u64 entries = 0;
  for (const auto& [id, count] : result.block_counts) {
    if (id > max_id) {
      return "profile names unknown block id " + std::to_string(id) +
             " (module has ids up to " + std::to_string(max_id) + ")";
    }
    entries += count;
  }
  // Each block entry retires at least the block's first instruction, so
  // the entry total can never exceed the executed instruction count.
  if (entries > result.instructions) {
    return "profile records " + std::to_string(entries) +
           " block entries but only " + std::to_string(result.instructions) +
           " executed instructions";
  }
  return std::nullopt;
}

}  // namespace wp::profile
