// Profiler: executes a linked image functionally (no caches, no timing)
// on the *small* training input and produces per-basic-block execution
// counts, which the way-placement layout pass consumes (paper §3 and §5:
// "the small set for profiling and the large inputs for evaluation").
#pragma once

#include <map>
#include <optional>
#include <string>

#include "ir/module.hpp"
#include "mem/image.hpp"
#include "sim/core.hpp"

namespace wp::profile {

struct ProfileResult {
  std::map<u32, u64> block_counts;  ///< block id -> times entered
  u64 instructions = 0;
};

/// Runs @p image (already loaded into @p memory with inputs prepared)
/// until HALT, counting entries into each laid-out basic block.
[[nodiscard]] ProfileResult profileImage(const mem::Image& image,
                                         mem::Memory& memory,
                                         u64 max_instructions = 2'000'000'000ULL);

/// Copies @p result's counts into the module's blocks (zeroing blocks the
/// profile never reached).
void annotate(ir::Module& module, const ProfileResult& result);

/// Sanity-checks @p result against @p module before the layout pass
/// consumes it: the profile must have executed something, recorded at
/// least one block entry, name only block ids the module contains, and
/// be internally consistent (a block entry retires at least one
/// instruction). Returns a description of the first problem found, or
/// nullopt when the profile is usable. Callers are expected to fall back
/// to the original layout on a bad profile instead of aborting — a bad
/// profile may cost energy, never correctness.
[[nodiscard]] std::optional<std::string> validate(const ir::Module& module,
                                                  const ProfileResult& result);

}  // namespace wp::profile
