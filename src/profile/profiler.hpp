// Profiler: executes a linked image functionally (no caches, no timing)
// on the *small* training input and produces per-basic-block execution
// counts, which the way-placement layout pass consumes (paper §3 and §5:
// "the small set for profiling and the large inputs for evaluation").
#pragma once

#include <map>

#include "ir/module.hpp"
#include "mem/image.hpp"
#include "sim/core.hpp"

namespace wp::profile {

struct ProfileResult {
  std::map<u32, u64> block_counts;  ///< block id -> times entered
  u64 instructions = 0;
};

/// Runs @p image (already loaded into @p memory with inputs prepared)
/// until HALT, counting entries into each laid-out basic block.
[[nodiscard]] ProfileResult profileImage(const mem::Image& image,
                                         mem::Memory& memory,
                                         u64 max_instructions = 2'000'000'000ULL);

/// Copies @p result's counts into the module's blocks (zeroing blocks the
/// profile never reached).
void annotate(ir::Module& module, const ProfileResult& result);

}  // namespace wp::profile
