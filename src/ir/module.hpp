// Link-time IR: the interprocedural control-flow graph the way-placement
// pass operates on (paper §3). This substitutes for Diablo's IR.
//
// A module is a set of functions, each a list of basic blocks. Blocks
// carry symbolic control-flow (branch targets are block ids, calls are
// function names, data addresses are symbol references) so the linker can
// re-order blocks freely and fix everything up afterwards.
//
// `fallthrough` records the *must-follow* constraint the paper's chain
// formation respects: the next block in original order when control can
// flow off the end of this block (plain fall-through, the not-taken side
// of a conditional branch, or a call's return site).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.hpp"

namespace wp::ir {

/// Relocation attached to an instruction whose immediate the linker must
/// resolve after placement.
enum class Reloc : u8 {
  kNone,
  kBlockBranch,  ///< B-type: imm = signed word offset to a block
  kFuncCall,     ///< BL: imm = signed word offset to a function entry
  kDataLo,       ///< movi: low 16 bits of a data symbol address
  kDataHi,       ///< movhi: high 16 bits of a data symbol address
};

struct Inst {
  isa::Instruction raw;
  Reloc reloc = Reloc::kNone;
  u32 target_block = 0;      ///< kBlockBranch
  std::string target_func;   ///< kFuncCall
  std::string data_symbol;   ///< kDataLo / kDataHi
  i32 data_addend = 0;       ///< byte offset added to the symbol address
};

struct BasicBlock {
  u32 id = 0;                ///< module-global, dense
  std::string label;         ///< "function.label" for diagnostics
  std::vector<Inst> insts;
  std::optional<u32> fallthrough;  ///< must-follow successor block id
  u64 exec_count = 0;        ///< filled in by the profiler
};

struct Function {
  std::string name;
  std::vector<u32> block_ids;  ///< in original (authored) order
};

struct DataSymbol {
  std::string name;
  u32 offset = 0;  ///< byte offset within the data segment
  u32 size = 0;
};

struct Module {
  std::vector<BasicBlock> blocks;  ///< indexed by block id
  std::vector<Function> functions;
  std::vector<DataSymbol> data_symbols;
  std::vector<u8> data_init;       ///< initial data segment contents
  std::string entry_function = "_start";

  [[nodiscard]] const Function* findFunction(const std::string& name) const;
  [[nodiscard]] const DataSymbol* findSymbol(const std::string& name) const;

  /// Total static instruction count (before linker-inserted repairs).
  [[nodiscard]] u64 staticInstructions() const;

  /// Read-only CFG queries for the layout passes. Both iterate blocks in
  /// id order and instructions in program order, so callers observe a
  /// deterministic edge sequence.
  ///
  /// Call edges: every kFuncCall instruction, as (caller block, callee
  /// function, instruction index within the caller).
  void forEachCallSite(
      const std::function<void(const BasicBlock& caller,
                               const Function& callee, u32 inst_index)>& fn)
      const;
  /// Branch edges: every kBlockBranch instruction, as (source block,
  /// target block id, instruction index within the source).
  void forEachBranchEdge(
      const std::function<void(const BasicBlock& src, u32 target_block,
                               u32 inst_index)>& fn) const;

  /// Checks structural invariants:
  ///  - block ids are dense and match their index,
  ///  - every fallthrough edge targets the next block of its function,
  ///  - the final block of each function cannot fall through,
  ///  - every branch target / callee / data symbol exists,
  ///  - the entry function exists.
  /// Throws SimError with a description on violation.
  void validate() const;
};

}  // namespace wp::ir
