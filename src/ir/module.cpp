#include "ir/module.hpp"

#include <unordered_set>

#include "support/ensure.hpp"

namespace wp::ir {

const Function* Module::findFunction(const std::string& name) const {
  for (const Function& f : functions) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const DataSymbol* Module::findSymbol(const std::string& name) const {
  for (const DataSymbol& s : data_symbols) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

u64 Module::staticInstructions() const {
  u64 n = 0;
  for (const BasicBlock& b : blocks) n += b.insts.size();
  return n;
}

void Module::forEachCallSite(
    const std::function<void(const BasicBlock&, const Function&, u32)>& fn)
    const {
  for (const BasicBlock& b : blocks) {
    for (u32 i = 0; i < b.insts.size(); ++i) {
      const Inst& inst = b.insts[i];
      if (inst.reloc != Reloc::kFuncCall) continue;
      const Function* callee = findFunction(inst.target_func);
      WP_ENSURE(callee != nullptr,
                "call to unknown function '" + inst.target_func + "' in " +
                    b.label);
      fn(b, *callee, i);
    }
  }
}

void Module::forEachBranchEdge(
    const std::function<void(const BasicBlock&, u32, u32)>& fn) const {
  for (const BasicBlock& b : blocks) {
    for (u32 i = 0; i < b.insts.size(); ++i) {
      const Inst& inst = b.insts[i];
      if (inst.reloc != Reloc::kBlockBranch) continue;
      WP_ENSURE(inst.target_block < blocks.size(),
                "branch to unknown block in " + b.label);
      fn(b, inst.target_block, i);
    }
  }
}

void Module::validate() const {
  for (u32 i = 0; i < blocks.size(); ++i) {
    WP_ENSURE(blocks[i].id == i, "block ids must be dense and ordered");
  }

  std::unordered_set<u32> seen;
  for (const Function& f : functions) {
    WP_ENSURE(!f.block_ids.empty(), "function '" + f.name + "' has no blocks");
    for (std::size_t i = 0; i < f.block_ids.size(); ++i) {
      const u32 id = f.block_ids[i];
      WP_ENSURE(id < blocks.size(), "function references unknown block");
      WP_ENSURE(seen.insert(id).second, "block belongs to two functions");
      const BasicBlock& b = blocks[id];
      if (b.fallthrough.has_value()) {
        WP_ENSURE(i + 1 < f.block_ids.size(),
                  "final block of '" + f.name + "' falls through");
        WP_ENSURE(*b.fallthrough == f.block_ids[i + 1],
                  "fallthrough must target the next block in order");
      }
      WP_ENSURE(!b.insts.empty() || b.fallthrough.has_value(),
                "empty block without fallthrough in '" + f.name + "'");
    }
  }
  WP_ENSURE(seen.size() == blocks.size(), "orphan blocks outside functions");

  for (const BasicBlock& b : blocks) {
    for (const Inst& inst : b.insts) {
      switch (inst.reloc) {
        case Reloc::kNone:
          break;
        case Reloc::kBlockBranch:
          WP_ENSURE(inst.target_block < blocks.size(),
                    "branch to unknown block in " + b.label);
          break;
        case Reloc::kFuncCall:
          WP_ENSURE(findFunction(inst.target_func) != nullptr,
                    "call to unknown function '" + inst.target_func + "'");
          break;
        case Reloc::kDataLo:
        case Reloc::kDataHi:
          WP_ENSURE(findSymbol(inst.data_symbol) != nullptr,
                    "reference to unknown symbol '" + inst.data_symbol + "'");
          break;
      }
    }
  }

  WP_ENSURE(findFunction(entry_function) != nullptr,
            "entry function '" + entry_function + "' not defined");
}

}  // namespace wp::ir
