#include "driver/store_fsck.hpp"

#include <dirent.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/result_store.hpp"

namespace wp::driver {

namespace {

/// Parses exactly 16 lowercase hex digits starting at @p s[pos].
bool hex16At(const std::string& s, std::size_t pos, u64& out) {
  if (pos + 16 > s.size()) return false;
  u64 v = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const char c = s[pos + i];
    u64 digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<u64>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<u64>(c - 'a') + 10;
    } else {
      return false;
    }
    v = (v << 4) | digit;
  }
  out = v;
  return true;
}

/// Splits a record filename `cell-<seed>-<keydigest>-<image>.rec` into
/// its three address components; false when the name does not follow
/// the store's naming scheme.
bool parseRecordName(const std::string& name, u64& seed, u64& key_digest,
                     u64& image_digest) {
  // "cell-" + 16 + "-" + 16 + "-" + 16 + ".rec" == 59 chars.
  if (name.size() != 59 || name.rfind("cell-", 0) != 0 ||
      name.compare(55, 4, ".rec") != 0 || name[21] != '-' ||
      name[38] != '-') {
    return false;
  }
  return hex16At(name, 5, seed) && hex16At(name, 22, key_digest) &&
         hex16At(name, 39, image_digest);
}

/// True when @p pid provably refers to no live process.
bool pidDead(pid_t pid) {
  return pid > 0 && ::kill(pid, 0) != 0 && errno == ESRCH;
}

/// Re-runs ResultStore::load's verification ladder on one record file,
/// with the (seed, key, image) identity taken from the filename instead
/// of a caller. On failure @p why names the first failed check.
bool verifyRecord(const std::string& path, u64 seed, u64 key_digest,
                  u64 image_digest, std::string& why) {
  std::ifstream in(path);
  if (!in.is_open()) {
    why = "unreadable";
    return false;
  }
  std::string header_line;
  std::string record_line;
  if (!std::getline(in, header_line) || !std::getline(in, record_line)) {
    why = "torn (fewer than two lines)";
    return false;
  }
  std::map<std::string, JsonToken> header;
  if (!parseFlatJsonLine(header_line, header)) {
    why = "torn (malformed header)";
    return false;
  }
  const auto ev = header.find("ev");
  const auto version = header.find("version");
  const auto hseed = header.find("seed");
  const auto hkey = header.find("key");
  if (ev == header.end() || ev->second.text != "store" ||
      version == header.end() || version->second.text != "1") {
    why = "header is not a version-1 store header";
    return false;
  }
  if (hseed == header.end() ||
      hseed->second.text != std::to_string(seed)) {
    why = "header seed disagrees with the filename";
    return false;
  }
  if (hkey == header.end() || stringDigest(hkey->second.text) != key_digest) {
    why = "header key disagrees with the filename's key digest";
    return false;
  }
  CheckpointRecord rec;
  if (parseRecordLine(record_line, rec) != RecordParse::kOk) {
    why = "record line torn or stats digest mismatch";
    return false;
  }
  if (rec.key != hkey->second.text) {
    why = "record key disagrees with the header";
    return false;
  }
  if (rec.image_digest != image_digest) {
    why = "record image digest disagrees with the filename";
    return false;
  }
  return true;
}

}  // namespace

bool parseFsckArgs(int argc, const char* const* argv, FsckOptions& options,
                   std::string& error) {
  options = FsckOptions{};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--remove") {
      options.remove = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (!arg.empty() && arg[0] == '-') {
      error = "unknown flag '" + arg + "'";
      return false;
    } else if (!options.dir.empty()) {
      error = "more than one store directory given ('" + options.dir +
              "' and '" + arg + "')";
      return false;
    } else {
      options.dir = arg;
    }
  }
  if (options.dir.empty()) {
    error = "missing store directory argument";
    return false;
  }
  return true;
}

FsckReport fsckStore(const FsckOptions& options, std::ostream& os) {
  FsckReport report;
  DIR* dir = ::opendir(options.dir.c_str());
  if (dir == nullptr) {
    os << "wp_store_fsck: cannot open '" << options.dir << "'\n";
    return report;
  }
  report.dir_ok = true;

  std::vector<std::string> names;
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());

  const auto act = [&](const std::string& path) {
    if (!options.remove) return;
    if (::unlink(path.c_str()) == 0) ++report.removed;
  };

  for (const std::string& name : names) {
    const std::string path = options.dir + "/" + name;

    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".lock") == 0) {
      // Lease litter: judged by the store's own reclamation evidence —
      // a dead holder or a previous-boot nonce is stale litter; a live
      // current-boot holder may be mid-compute and is left alone (the
      // running store ages it out via WP_LEASE_TIMEOUT_MS).
      const StoreLeaseHolder holder = readStoreLease(path);
      const bool stale_boot = holder.boot != 0 && bootNonce() != 0 &&
                              holder.boot != bootNonce();
      if (holder.pid == 0 || pidDead(holder.pid) || stale_boot) {
        ++report.stale_leases;
        os << "STALE-LEASE " << name << " ("
           << (holder.pid == 0        ? "torn payload"
               : stale_boot           ? "holder from a previous boot"
                                      : "holder process is dead")
           << ")\n";
        act(path);
      } else {
        ++report.live_leases;
        os << "LIVE-LEASE  " << name << " (pid "
           << static_cast<long>(holder.pid) << ")\n";
      }
      continue;
    }

    const std::size_t tmp_at = name.find(".tmp.");
    if (tmp_at != std::string::npos) {
      // Staging litter from ResultStore::put: the suffix is the writer's
      // pid. A live writer is an in-flight publish; anything else can
      // never be renamed into place again.
      char* end = nullptr;
      const long pid = std::strtol(name.c_str() + tmp_at + 5, &end, 10);
      const bool live = end != name.c_str() + tmp_at + 5 && *end == '\0' &&
                        pid > 0 && !pidDead(static_cast<pid_t>(pid));
      if (live) {
        ++report.live_tmp;
        os << "LIVE-TMP    " << name << " (pid " << pid << ")\n";
      } else {
        ++report.stale_tmp;
        os << "STALE-TMP   " << name << " (writer gone)\n";
        act(path);
      }
      continue;
    }

    u64 seed = 0;
    u64 key_digest = 0;
    u64 image_digest = 0;
    if (!parseRecordName(name, seed, key_digest, image_digest)) {
      // Not a name the store writes; inventoried, never touched.
      ++report.foreign;
      os << "FOREIGN     " << name << "\n";
      continue;
    }
    std::string why;
    if (verifyRecord(path, seed, key_digest, image_digest, why)) {
      ++report.healthy;
      if (options.verbose) os << "OK          " << name << "\n";
    } else {
      ++report.damaged;
      os << "DAMAGED     " << name << " (" << why << ")\n";
      act(path);
    }
  }

  os << "wp_store_fsck: " << report.healthy << " healthy, "
     << report.damaged << " damaged, " << report.stale_leases
     << " stale lease(s), " << report.live_leases << " live lease(s), "
     << report.stale_tmp << " stale tmp, " << report.live_tmp
     << " live tmp, " << report.foreign << " foreign";
  if (options.remove) os << ", " << report.removed << " removed";
  os << "\n";
  return report;
}

}  // namespace wp::driver
