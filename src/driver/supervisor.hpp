// Cell supervision policy for the sweep executor: retry with
// deterministic backoff, per-cell watchdog timeouts, and the harness-
// level cell-fault knob that exercises both paths on real benches.
//
// The design mirrors the paper's own robustness argument: just as
// way-placement state is advisory (corrupting it can cost energy, never
// architectural results — PR 1's fault injector proves it), a failing
// sweep cell is advisory to the *experiment*: it may cost one table
// cell, never the whole bench. A cell that throws SimError is retried
// up to WP_RETRIES times; a cell that keeps failing is quarantined —
// tables render QUAR, aggregation excludes it behind an explicit
// degradation footer, and the bench exits 3 (degraded-but-complete)
// instead of aborting.
//
// Environment knobs (parsed strictly — garbage exits 1, never a silent
// default; see SupervisorConfig::fromEnv):
//   WP_RETRIES          extra attempts after a cell's first failure
//                       (default 1; 0 = fail straight to quarantine)
//   WP_CELL_TIMEOUT_MS  per-cell watchdog: a simulation running longer
//                       than this wall-clock budget is aborted with a
//                       SimError and treated like any other cell
//                       failure (default 0 = no watchdog). Under
//                       WP_ISOLATE=1 the parent enforces the same
//                       budget from outside the worker process, so even
//                       a cell that stops retiring instructions (where
//                       the in-process instruction-budget hook can
//                       never fire) is killed and retried.
//   WP_ISOLATE          0|1 (default 0): run every cell attempt in a
//                       forked worker process (driver/worker.hpp). A
//                       SIGSEGV, OOM kill or runaway loop then costs
//                       one attempt of one cell — it feeds the same
//                       retry/backoff/quarantine ladder as a SimError —
//                       instead of the whole bench.
//   WP_CELL_FAULT       harness fault injection for every non-baseline
//                       cell: "transient[:N]" (N failing attempts, then
//                       heals; default 1), "persistent" (always fails,
//                       forcing quarantine), "crash[:N]" (attempt dies
//                       by SIGKILL; bare "crash" = every attempt,
//                       ":N" = N crashing attempts then heals) or
//                       "hang" (attempt wedges until the watchdog kills
//                       it). crash/hang are survivable only under
//                       WP_ISOLATE=1 — that is what they death-test.
//
// Backoff ordering is *seed-derived, not wall-clock*: the pause between
// attempts is a deterministic function of (experiment seed, cell key,
// attempt), so a replayed or resumed sweep schedules its retries
// identically — wall-clock backoff would make the retry interleaving
// (and so the trace) unreproducible. See DESIGN.md §9.
#pragma once

#include <string>
#include <string_view>

#include "fault/fault.hpp"
#include "sim/processor.hpp"
#include "support/bitops.hpp"

namespace wp::driver {

struct SupervisorConfig {
  /// Extra attempts after the first failure (WP_RETRIES).
  unsigned retries = 1;
  /// Per-cell wall-clock budget in ms; 0 disables the watchdog
  /// (WP_CELL_TIMEOUT_MS).
  u64 cell_timeout_ms = 0;
  /// Retired instructions between watchdog checks. Not an environment
  /// knob — tests shrink it to make tiny timeouts deterministic.
  u64 timeout_check_interval = 1u << 20;
  /// Run each cell attempt in a forked worker process (WP_ISOLATE).
  bool isolate = false;
  /// Harness-level cell fault applied to every non-baseline cell
  /// (WP_CELL_FAULT); spec-level cell faults are independent of this.
  fault::CellFault cell_fault = fault::CellFault::kNone;
  u32 cell_fault_failures = 1;

  /// Strict environment parse: any malformed value exits 1 with a
  /// message naming the knob, matching the WP_JOBS/WP_SEED policy.
  [[nodiscard]] static SupervisorConfig fromEnv();
};

/// Stateless supervision helper owned by the SweepExecutor; the
/// executor drives the attempt loop (it owns the memo and metrics) and
/// asks this class for policy: how many attempts, how long to back off,
/// which watchdog to install.
class CellSupervisor {
 public:
  CellSupervisor(SupervisorConfig config, u64 experiment_seed)
      : config_(config), seed_(experiment_seed) {}

  [[nodiscard]] const SupervisorConfig& config() const { return config_; }

  /// Total attempts a cell gets before quarantine (1 + retries).
  [[nodiscard]] unsigned maxAttempts() const { return 1 + config_.retries; }

  /// Deterministic backoff weight for retry @p attempt of @p cell_key:
  /// derived from (seed, key, attempt) alone — never from wall-clock —
  /// so the retry ordering replays bit-identically. Exposed for tests.
  [[nodiscard]] static u64 backoffSlots(u64 seed, std::string_view cell_key,
                                        unsigned attempt);

  /// Cooperatively yields backoffSlots(...) times. Returns the slot
  /// count (for the trace).
  u64 backoff(std::string_view cell_key, unsigned attempt) const;

  /// The per-cell watchdog for @p cell_key: an instruction-budget hook
  /// that throws SimError once the cell has run past cell_timeout_ms.
  /// Empty (check == nullptr) when the watchdog is disabled.
  [[nodiscard]] sim::BudgetHook watchdogFor(const std::string& cell_key) const;

  /// Applies the config-level WP_CELL_FAULT to a (non-baseline) cell
  /// attempt; throws SimError on an injected failure.
  void injectConfigCellFault(unsigned attempt) const;

 private:
  SupervisorConfig config_;
  u64 seed_;
};

}  // namespace wp::driver
