// Offline integrity checker for WP_STORE directories (wp_store_fsck).
//
// A crash-only system accumulates litter by design: a SIGKILLed sweep
// leaves its lease (.lock) files and occasionally a .tmp staging file
// behind, and a disk fault can tear a record despite the write/fsync/
// rename discipline. The running store already defends itself (torn
// records are rejected and recomputed, stale leases reclaimed on the
// next contention) — fsck is the *audit* form of the same rules: walk
// the directory once, re-verify every record against the exact checks
// ResultStore::load applies (filename addressing, header identity, the
// record's own stats digest), classify every lease and staging file by
// the reclamation evidence (dead pid, previous-boot nonce), and either
// report (default) or remove (--remove) what the store would never
// serve anyway.
//
// fsck is seed-agnostic: record filenames carry their seed, and the
// header inside must agree — stores legitimately host records from many
// seeds side by side.
#pragma once

#include <iosfwd>
#include <string>

#include "support/bitops.hpp"

namespace wp::driver {

struct FsckOptions {
  std::string dir;
  bool remove = false;   ///< unlink damaged records and stale litter
  bool verbose = false;  ///< also print one line per healthy record
};

/// Parses wp_store_fsck's argv: [--remove] [--verbose] DIR. Returns
/// false with @p error set on bad usage (unknown flag, missing or
/// repeated DIR) — the caller prints usage and exits 2. Never exits
/// itself, so tests can drive it in-process.
[[nodiscard]] bool parseFsckArgs(int argc, const char* const* argv,
                                 FsckOptions& options, std::string& error);

/// What the walk found. The store is healthy when nothing damaged or
/// stale remains; `foreign` files are inventoried but never count
/// against health (and are never removed — fsck only touches files the
/// store itself wrote).
struct FsckReport {
  bool dir_ok = false;    ///< directory existed and was listable
  u64 healthy = 0;        ///< records that verify end to end
  u64 damaged = 0;        ///< torn, misnamed or digest-mismatched records
  u64 stale_leases = 0;   ///< .lock held by a dead or previous-boot pid
  u64 live_leases = 0;    ///< .lock held by a live current-boot pid
  u64 stale_tmp = 0;      ///< .tmp.<pid> staging files with a dead writer
  u64 live_tmp = 0;       ///< .tmp.<pid> with a live writer (in-flight put)
  u64 foreign = 0;        ///< files the store never writes (left alone)
  u64 removed = 0;        ///< files unlinked under --remove
  [[nodiscard]] bool clean() const {
    return dir_ok && damaged == 0 && stale_leases == 0 && stale_tmp == 0;
  }
};

/// Walks @p options.dir per the rules above, printing findings to
/// @p os (one line per problem; --verbose adds healthy records).
/// Deterministic output: entries are visited in sorted name order.
FsckReport fsckStore(const FsckOptions& options, std::ostream& os);

}  // namespace wp::driver
