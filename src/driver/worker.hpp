// Process-isolated execution of one sweep-cell attempt (WP_ISOLATE=1).
//
// The in-process supervisor (driver/supervisor.hpp) can catch a
// SimError, but a genuinely hostile cell — a SIGSEGV inside the
// simulator, an OOM kill, a loop that stops retiring instructions —
// takes the whole bench down and every completed cell with it. The
// worker harness shrinks the crash domain to one attempt of one cell:
//
//   parent (pool thread)                 child (forked worker)
//   ─────────────────────                ─────────────────────
//   pipe(); fork()               ──►     runs the attempt body (fault
//   reads the pipe, enforcing            injection + watchdog +
//   WP_CELL_TIMEOUT_MS from              Runner::run), then writes ONE
//   outside the crash domain             line down the pipe:
//   waitpid(); classify                    · a checkpoint-format record
//                                            (driver/checkpoint.hpp,
//                                            %.17g field visitor) on
//                                            success, or
//                                          · {"ev": "fail", ...} for a
//                                            caught SimError,
//                                        then _exits without running
//                                        atexit/flush (it shares the
//                                        parent's fds and buffers).
//
// Every way a worker can die — signal, nonzero exit, torn record,
// wall-clock overrun — comes back as a WorkerResult failure whose
// message names the cell key, so the sweep executor can feed it into
// the exact same retry/backoff/quarantine ladder as an in-process
// SimError. Results that do come back are verified against their own
// stats digest before they are trusted (the same discipline the
// checkpoint journal and the result store apply): a worker that died
// mid-write can produce a torn line, never a wrong table.
//
// The serialized record round-trips every double at 17 significant
// digits, so a table produced through workers is byte-identical to an
// in-process run at any WP_JOBS.
#pragma once

#include <functional>
#include <string>

#include "driver/runner.hpp"

namespace wp::driver {

/// Fate of one isolated cell attempt.
struct WorkerResult {
  bool ok = false;
  RunResult result;         ///< valid only when ok
  double wall_seconds = 0.0;  ///< child-measured attempt wall-clock
  /// Failure reason when !ok: the child's own SimError message, or a
  /// parent-side classification ("worker ... died by signal 11",
  /// "worker ... exceeded WP_CELL_TIMEOUT_MS", ...) naming @p key.
  std::string error;
};

/// Runs @p attempt in a forked worker process and returns its fate.
/// @p key tags every failure message; @p image_digest rides along in
/// the serialized record (the same digest the journal/store would
/// record). @p timeout_ms > 0 arms the parent-side wall-clock kill;
/// 0 waits forever. @p attempt runs in the child only — side effects
/// on parent memory (metrics, traces, memo state) do not come back,
/// which is exactly the isolation being bought.
[[nodiscard]] WorkerResult runCellInWorker(
    const std::string& key, u64 image_digest, u64 timeout_ms,
    const std::function<RunResult()>& attempt);

}  // namespace wp::driver
