#include "driver/supervisor.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "support/ensure.hpp"

namespace wp::driver {

namespace {

/// Strict unsigned parse shared by the numeric supervisor knobs.
u64 u64FromEnv(const char* name, u64 default_value, u64 max_value,
               const char* meaning) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0' || errno == ERANGE || v > max_value ||
      std::strchr(env, '-') != nullptr) {
    std::fprintf(stderr,
                 "error: %s='%s' is not a valid %s (expected an integer "
                 "in [0, %llu])\n",
                 name, env, meaning, static_cast<unsigned long long>(max_value));
    std::exit(1);
  }
  return static_cast<u64>(v);
}

constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

u64 fnv1a(std::string_view s) {
  u64 h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<u8>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// splitmix64 finalizer: decorrelates nearby inputs.
u64 mix(u64 x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

SupervisorConfig SupervisorConfig::fromEnv() {
  SupervisorConfig c;
  c.retries = static_cast<unsigned>(u64FromEnv(
      "WP_RETRIES", c.retries, 100, "retry count"));
  c.cell_timeout_ms = u64FromEnv("WP_CELL_TIMEOUT_MS", 0,
                                 24ULL * 60 * 60 * 1000,
                                 "per-cell timeout in milliseconds");
  c.isolate =
      u64FromEnv("WP_ISOLATE", 0, 1, "isolation flag (0 or 1)") != 0;

  const char* fault = std::getenv("WP_CELL_FAULT");
  if (fault != nullptr && *fault != '\0') {
    // The shared non-exiting parse (the sweep service validates request
    // fault specs with it too); only the *environment* knob escalates a
    // parse failure to exit 1, per the strict WP_* policy.
    std::string error;
    if (!fault::parseCellFault(fault, "WP_CELL_FAULT", c.cell_fault,
                               c.cell_fault_failures, error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      std::exit(1);
    }
  }
  return c;
}

u64 CellSupervisor::backoffSlots(u64 seed, std::string_view cell_key,
                                 unsigned attempt) {
  // Exponential-ish growth per attempt, jittered by the cell key so
  // retries of different cells don't stampede in lockstep — but every
  // input is replay-stable (seed, key, attempt), never wall-clock.
  const u64 h = mix(seed ^ fnv1a(cell_key) ^
                    (static_cast<u64>(attempt) * 0x9e3779b97f4a7c15ULL));
  const unsigned shift = attempt < 6 ? attempt : 6;
  return (1ULL + h % 64) << shift;  // [1, 64] .. [64, 4096] slots
}

u64 CellSupervisor::backoff(std::string_view cell_key,
                            unsigned attempt) const {
  const u64 slots = backoffSlots(seed_, cell_key, attempt);
  // A slot is one cooperative yield: long enough to let a competing
  // cell's compute proceed, short enough that quarantine of a hopeless
  // cell costs microseconds, not the sweep's wall-clock.
  for (u64 i = 0; i < slots; ++i) std::this_thread::yield();
  return slots;
}

sim::BudgetHook CellSupervisor::watchdogFor(
    const std::string& cell_key) const {
  sim::BudgetHook hook;
  if (config_.cell_timeout_ms == 0) return hook;  // disabled
  hook.interval = config_.timeout_check_interval;
  WP_ENSURE(hook.interval > 0,
            "SupervisorConfig.timeout_check_interval must be non-zero");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.cell_timeout_ms);
  const u64 timeout_ms = config_.cell_timeout_ms;
  hook.check = [cell_key, deadline, timeout_ms](u64 instructions) {
    if (std::chrono::steady_clock::now() >= deadline) {
      throw SimError("cell watchdog: '" + cell_key + "' exceeded "
                     "WP_CELL_TIMEOUT_MS=" + std::to_string(timeout_ms) +
                     " after " + std::to_string(instructions) +
                     " instructions");
    }
  };
  return hook;
}

void CellSupervisor::injectConfigCellFault(unsigned attempt) const {
  fault::injectCellFault(config_.cell_fault, config_.cell_fault_failures,
                         attempt, "WP_CELL_FAULT");
}

}  // namespace wp::driver
