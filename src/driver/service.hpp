// Crash-only sweep evaluation service (the wp_serve daemon).
//
// Long evaluation campaigns — autotune searches, figure regeneration
// across many geometries, CI dashboards — keep re-paying suite
// preparation and process startup for every query. The service keeps
// one prepared SweepExecutor resident behind a Unix-domain socket and
// answers evaluation requests from its memo/store/journal hierarchy,
// so a warm cell costs a socket round-trip instead of a process.
//
// Protocol: one flat one-line JSON object per message in each direction
// (the same shape the checkpoint journal, result store and worker pipe
// already speak — parseFlatJsonLine is the only parser). Requests name
// an op:
//
//   eval       price one (workload, geometry, scheme) cell, normalized
//              against its implied baseline
//   suite      price one scheme across the whole prepared suite and
//              return the checked suite averages (one figure row)
//   recommend  the dominant-block WP-area recommendation for one
//              workload under one layout (driver/autotune.hpp)
//   health     liveness + admission state (never touches the queue)
//   stats      executor/store/service counters
//   drain      begin graceful shutdown (same path as SIGTERM)
//
// Design rules (DESIGN.md §14):
//   crash-only    The daemon owns no durable state of its own: every
//                 computed cell is published to WP_STORE/WP_CHECKPOINT
//                 before its reply is sent, so SIGKILL at any instant
//                 loses at most in-flight replies and a restarted
//                 daemon re-serves every previously answered request
//                 byte-identically without recomputing.
//   admission     A bounded queue fronts the executor. A full queue
//                 sheds load with an `overloaded` reply carrying a
//                 retry_after_ms hint — the daemon never buffers
//                 unboundedly and never stalls its accept loop.
//   deadlines     WP_SERVE_DEADLINE_MS rides the existing per-cell
//                 supervisor watchdog (WP_CELL_TIMEOUT_MS); a cell
//                 that blows its budget comes back as fate "deadline",
//                 and under WP_ISOLATE=1 the wedged worker process is
//                 killed and reaped.
//   degradation   Malformed or invalid requests get a tagged `error`
//                 reply, quarantined cells a `quarantined` reply —
//                 nothing a client sends can kill the daemon. Request
//                 faults that *would* (crash/hang cell faults without
//                 process isolation) are rejected at admission.
//   drain         SIGTERM (or the drain op) latches the process
//                 ShutdownLatch: the listener closes, queued and
//                 in-flight requests finish and flush their replies,
//                 new compute requests get a `draining` reply, and
//                 serve() returns 0.
//
// Environment knobs (strict like every WP_* knob — garbage exits 1):
//   WP_SERVE_SOCKET       socket path (default "wp_serve.sock")
//   WP_SERVE_QUEUE        admission-queue capacity (default 64,
//                         range [1, 4096])
//   WP_SERVE_DEADLINE_MS  per-request deadline; overrides
//                         WP_CELL_TIMEOUT_MS for the daemon's executor
//                         (default 0 = no deadline)
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "driver/sweep.hpp"
#include "support/shutdown.hpp"

namespace wp::driver {

struct ServiceConfig {
  /// Unix-domain socket path (WP_SERVE_SOCKET). A stale socket file
  /// from a killed daemon is replaced, not an error (crash-only).
  std::string socket_path = "wp_serve.sock";
  /// Admission-queue capacity (WP_SERVE_QUEUE): compute requests beyond
  /// this are shed with an `overloaded` reply instead of being queued.
  unsigned queue_limit = 64;
  /// Per-request deadline in ms (WP_SERVE_DEADLINE_MS); 0 = none. The
  /// daemon maps this onto the supervisor's per-cell watchdog.
  u64 deadline_ms = 0;
  /// The retry hint an `overloaded` reply carries. Not an environment
  /// knob — a fixed hint keeps shed replies byte-identical.
  unsigned retry_after_ms = 250;

  /// Strict environment parse; malformed values exit 1 naming the knob.
  [[nodiscard]] static ServiceConfig fromEnv();
};

/// The daemon behind wp_serve: validates requests, admits them through
/// a bounded queue onto worker threads, and executes them against one
/// shared SweepExecutor. The executor's memo makes concurrent requests
/// for the same cell collapse to one compute (call_once per cell), and
/// its WP_STORE/WP_CHECKPOINT plumbing makes every reply durable before
/// it is sent.
class SweepService {
 public:
  /// @p suite must outlive the service. @p latch is the process
  /// shutdown latch (install()ed by the daemon main); serve() watches
  /// its pollFd and the `drain` op trigger()s it, so signal-initiated
  /// and request-initiated drains share one path. The executor should
  /// be constructed *without* an interrupt latch: under drain the
  /// service finishes admitted work rather than quarantining it.
  SweepService(ServiceConfig config, SweepExecutor& suite,
               ShutdownLatch& latch);

  /// Parses, validates and executes one request line synchronously on
  /// the calling thread, returning the reply line (no trailing
  /// newline). This is the whole protocol minus the socket: unit tests
  /// drive it directly, and serve()'s workers route admitted requests
  /// through the same code. Never throws for any request content.
  [[nodiscard]] std::string handleLine(const std::string& line);

  /// Binds the socket and runs the accept/serve loop until the latch
  /// fires (SIGTERM/SIGINT or a drain request) and all admitted work
  /// has flushed its replies. Returns 0 on a clean drain, 1 when the
  /// socket could not be bound. Call once.
  [[nodiscard]] int serve();

  /// True once a drain began (latch fired). Exposed for tests.
  [[nodiscard]] bool draining() const { return latch_.requested(); }

  /// Hard per-line byte cap, shared by server and client readers: a
  /// longer "line" is a protocol violation, not a buffering problem.
  static constexpr std::size_t kMaxLineBytes = 1 << 16;

 private:
  struct Connection;
  struct Request;

  /// Parses + validates @p line into @p req. On failure returns false
  /// with @p reply set to the rendered error reply.
  bool parseRequest(const std::string& line, Request& req,
                    std::string& reply);
  /// Executes a validated request (any op) and renders its reply.
  std::string execute(const Request& req);

  std::string runEval(const Request& req);
  std::string runSuiteRow(const Request& req);
  std::string runRecommend(const Request& req);
  std::string healthReply(const Request& req);
  std::string statsReply(const Request& req);

  /// Routes one complete line from @p conn: control ops answer inline
  /// on the poll thread, compute ops go through admission (shed when
  /// the queue is full, `draining` once the latch fired).
  void dispatchLine(const std::shared_ptr<Connection>& conn,
                    const std::string& line);
  void workerLoop();
  void sendReply(const std::shared_ptr<Connection>& conn,
                 std::string reply);

  ServiceConfig config_;
  SweepExecutor& suite_;
  ShutdownLatch& latch_;

  struct Job {
    std::shared_ptr<Connection> conn;
    std::shared_ptr<Request> req;
  };
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> queue_;
  unsigned in_flight_ = 0;  ///< jobs popped but not yet replied
  bool stop_ = false;       ///< workers exit once queue drains
};

}  // namespace wp::driver
