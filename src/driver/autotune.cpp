// Seeded coordinate descent over the layout PassParams space.
//
// The search state is one incumbent StrategySpec (starting at the
// paper's `way_placement` defaults). Each round walks the parameter
// axes in a seed-shuffled order; each axis prices every alternative
// value as one parallel batch of supervised cells and moves the
// incumbent to the best strict improvement. The search ends when a
// full round improves nothing (converged) or the WP_TUNE_EVALS budget
// is spent. Everything is deterministic from (suite seed, budget,
// objective): candidate sets, batch order, tie-breaks (strict-less
// keeps the earlier candidate) and therefore the whole trajectory.
#include "driver/autotune.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>

#include "mem/memory.hpp"
#include "support/ensure.hpp"
#include "support/rng.hpp"

namespace wp::driver {

AutotuneConfig AutotuneConfig::fromEnv() {
  AutotuneConfig c;
  const char* evals = std::getenv("WP_TUNE_EVALS");
  if (evals != nullptr && *evals != '\0') {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(evals, &end, 0);
    if (end == evals || *end != '\0' || errno == ERANGE || v < 1 ||
        v > 100000 || std::strchr(evals, '-') != nullptr) {
      std::fprintf(stderr,
                   "error: WP_TUNE_EVALS='%s' is not a valid evaluation "
                   "budget (expected an integer in [1, 100000])\n",
                   evals);
      std::exit(1);
    }
    c.evals = static_cast<unsigned>(v);
  }
  const char* obj = std::getenv("WP_TUNE_OBJECTIVE");
  if (obj != nullptr && *obj != '\0') {
    if (std::strcmp(obj, "icache_energy") == 0) {
      c.objective = Objective::kIcacheEnergy;
    } else if (std::strcmp(obj, "ed_product") == 0) {
      c.objective = Objective::kEdProduct;
    } else {
      std::fprintf(stderr,
                   "error: WP_TUNE_OBJECTIVE='%s' is not a valid objective "
                   "(expected 'icache_energy' or 'ed_product')\n",
                   obj);
      std::exit(1);
    }
  }
  return c;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Dominant-block coverage target for the WP-area recommendation.
constexpr double kDominantCoverage = 0.9;

/// The search space: one entry per coordinate axis. Values are spaced
/// a factor apart around the historical defaults — coordinate descent
/// needs a ladder to climb, not a fine grid.
const std::vector<std::vector<std::string>>& passSequences() {
  static const std::vector<std::vector<std::string>> kSeqs = {
      {"way_placement"},
      {"call_distance"},
      {"exttsp"},
      {"call_distance", "way_placement"},
      {"exttsp", "way_placement"},
  };
  return kSeqs;
}
constexpr u64 kHotThresholds[] = {0, 64, 1024, 16384};
constexpr u32 kReachBytes[] = {1024, 2048, 4096, 8192, 16384};
constexpr u32 kForwardBytes[] = {256, 512, 1024, 2048};
constexpr u32 kBackwardBytes[] = {160, 320, 640, 1280};
constexpr double kJumpWeights[] = {0.05, 0.1, 0.2};
constexpr unsigned kAxes = 7;

/// Candidate params for one axis around the incumbent (the incumbent's
/// own value included — it dedups away by canonical string).
std::vector<layout::PassParams> axisCandidates(const layout::PassParams& at,
                                               unsigned axis) {
  std::vector<layout::PassParams> out;
  const auto push = [&](auto&& set) {
    layout::PassParams p = at;
    set(p);
    out.push_back(std::move(p));
  };
  switch (axis) {
    case 0:
      for (const auto& seq : passSequences()) {
        push([&](layout::PassParams& p) { p.passes = seq; });
      }
      break;
    case 1:
      for (const u64 v : kHotThresholds) {
        push([&](layout::PassParams& p) { p.chain_hot_threshold = v; });
      }
      break;
    case 2:
      for (const u32 v : kReachBytes) {
        push([&](layout::PassParams& p) { p.call_reach_bytes = v; });
      }
      break;
    case 3:
      for (const u32 v : kForwardBytes) {
        push([&](layout::PassParams& p) { p.tsp_forward_bytes = v; });
      }
      break;
    case 4:
      for (const u32 v : kBackwardBytes) {
        push([&](layout::PassParams& p) { p.tsp_backward_bytes = v; });
      }
      break;
    case 5:
      for (const double v : kJumpWeights) {
        push([&](layout::PassParams& p) { p.tsp_forward_weight = v; });
      }
      break;
    case 6:
      for (const double v : kJumpWeights) {
        push([&](layout::PassParams& p) { p.tsp_backward_weight = v; });
      }
      break;
    default:
      WP_UNREACHABLE("bad autotune axis");
  }
  return out;
}

double valueOf(const SweepExecutor::SuiteAverage& a) {
  // A fully quarantined candidate has no measured objective: +inf keeps
  // it from ever becoming the incumbent without aborting the search.
  return a.included == 0 ? kInf : a.mean;
}

/// Rounds @p bytes up to the next page multiple (at least one page).
u32 pageCeil(u64 bytes) {
  const u64 pages = (bytes + mem::kPageBytes - 1) / mem::kPageBytes;
  return static_cast<u32>(std::max<u64>(1, pages) * mem::kPageBytes);
}

}  // namespace

WpAreaRecommendation recommendWpArea(const PreparedWorkload& prepared,
                                     const std::string& spec) {
  WpAreaRecommendation rec;
  const layout::LayoutReport& report = prepared.layoutFor(spec).report;
  if (report.dynamicInstructions() == 0) return rec;  // nothing to steer by
  u64 code_end = 0;
  for (const layout::LayoutReport::Span& s : report.spans) {
    code_end = std::max(code_end, static_cast<u64>(s.addr) +
                                      static_cast<u64>(s.insts) * 4);
  }
  const u32 code_limit = pageCeil(code_end - mem::kCodeBase);
  u32 area = mem::kPageBytes;
  while (area < code_limit && report.coverage(area) < kDominantCoverage) {
    area += mem::kPageBytes;
  }
  rec.bytes = area;
  rec.coverage = report.coverage(area);
  return rec;
}

AutotuneResult autotuneLayout(SweepExecutor& suite,
                              const cache::CacheGeometry& icache,
                              u32 wp_area_bytes,
                              const AutotuneConfig& config) {
  const u64 seed = suite.runner().seed();
  const auto metric = [objective = config.objective](const Normalized& n) {
    return objective == AutotuneConfig::Objective::kIcacheEnergy
               ? n.icache_energy
               : n.ed_product;
  };
  const auto cellFor = [&](const std::string& spec) {
    SchemeSpec s;
    s.scheme = cache::Scheme::kWayPlacement;
    s.wp_area_bytes = wp_area_bytes;
    s.layout = spec;
    return s;
  };

  AutotuneResult result;
  std::map<std::string, SweepExecutor::SuiteAverage> evaluated;
  std::vector<std::string> eval_order;

  // Prices every not-yet-evaluated spec of @p specs (in order, up to
  // the remaining budget) as one parallel batch, then appends their
  // trajectory entries in the same order — deterministic at any job
  // count because reads go through the executor's memo.
  const auto evaluateBatch = [&](const std::vector<std::string>& specs) {
    std::vector<std::string> fresh;
    for (const std::string& spec : specs) {
      if (evaluated.count(spec) != 0) continue;
      if (std::find(fresh.begin(), fresh.end(), spec) != fresh.end()) continue;
      if (result.evals_used + fresh.size() >= config.evals) {
        result.budget_exhausted = true;
        break;
      }
      fresh.push_back(spec);
    }
    std::vector<SweepExecutor::Cell> cells;
    cells.reserve(fresh.size());
    for (const std::string& spec : fresh) {
      cells.push_back({icache, cellFor(spec)});
    }
    suite.runAll(cells);
    for (const std::string& spec : fresh) {
      const SweepExecutor::SuiteAverage avg =
          suite.averageNormalizedChecked(icache, cellFor(spec), metric);
      evaluated.emplace(spec, avg);
      eval_order.push_back(spec);
      ++result.evals_used;
      result.trajectory.push_back(
          {result.evals_used, spec, avg, /*improved=*/false});
    }
  };

  // Start at the paper's scheme; descent can only improve on it.
  layout::StrategySpec current =
      layout::resolveStrategy(layout::defaultStrategyName());
  std::string current_str = current.canonical();
  evaluateBatch({current_str});
  result.start_spec = current_str;
  result.start = evaluated.at(current_str);
  double best_value = valueOf(result.start);

  // Axis exploration order is part of the seed's experiment identity.
  unsigned axes[kAxes];
  for (unsigned i = 0; i < kAxes; ++i) axes[i] = i;
  Rng rng(seed ^ 0x74756e65726f756eULL);  // "tuneroun"
  for (unsigned i = kAxes; i > 1; --i) {
    std::swap(axes[i - 1], axes[rng.below(i)]);
  }

  bool improved_this_round = true;
  while (improved_this_round && !result.budget_exhausted) {
    improved_this_round = false;
    for (const unsigned axis : axes) {
      if (result.evals_used >= config.evals) {
        result.budget_exhausted = true;
        break;
      }
      std::vector<std::string> specs;
      for (const layout::PassParams& params : axisCandidates(current.params,
                                                             axis)) {
        layout::StrategySpec candidate;
        candidate.name = current.name;
        candidate.params = params;
        const std::string spec = candidate.canonical();
        if (spec != current_str) specs.push_back(spec);
      }
      evaluateBatch(specs);
      // Move to the axis's best strict improvement, if any. Only
      // freshly priced specs can win: every older spec already lost to
      // some incumbent whose value was >= best_value.
      std::string axis_best;
      for (const std::string& spec : specs) {
        const auto it = evaluated.find(spec);
        if (it == evaluated.end()) continue;  // beyond the budget
        if (valueOf(it->second) < best_value) {
          best_value = valueOf(it->second);
          axis_best = spec;
        }
      }
      if (!axis_best.empty()) {
        current = layout::resolveStrategy(axis_best);
        current_str = current.canonical();
        improved_this_round = true;
        for (AutotuneStep& step : result.trajectory) {
          if (step.spec == axis_best) step.improved = true;
        }
      }
    }
  }

  result.best_spec = current_str;
  result.best = evaluated.at(current_str);

  // Per-workload read-out over the cells the search already priced.
  for (const PreparedWorkload& p : suite.prepared()) {
    AutotuneWorkloadBest wb;
    wb.workload = p.name;
    double best = kInf;
    for (const std::string& spec : eval_order) {
      const SchemeSpec cell = cellFor(spec);
      const SweepExecutor::CellView cv = suite.tryRun(p, icache, cell);
      const SweepExecutor::CellView bv =
          suite.tryRun(p, icache, SchemeSpec::baselineFor(cell));
      if (cv.result == nullptr || bv.result == nullptr) continue;
      const double v = metric(normalize(*cv.result, *bv.result, p.name));
      if (v < best) {
        best = v;
        wb.spec = spec;
        wb.objective = v;
      }
    }
    if (best == kInf) {
      wb.quarantined = true;
    } else {
      // Dominant-block area recommendation from the winning layout's
      // report.
      const WpAreaRecommendation rec = recommendWpArea(p, wb.spec);
      wb.recommended_wp_bytes = rec.bytes;
      wb.recommended_coverage = rec.coverage;
    }
    result.per_workload.push_back(std::move(wb));
  }
  return result;
}

}  // namespace wp::driver
