#include "driver/result_store.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/ensure.hpp"

namespace wp::driver {

namespace {

/// Strict unsigned parse for the store's own numeric knob (same policy
/// as SupervisorConfig::fromEnv — garbage exits 1, never a default).
u64 u64FromEnv(const char* name, u64 default_value, u64 min_value,
               u64 max_value, const char* meaning) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return default_value;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(env, &end, 0);
  if (end == env || *end != '\0' || errno == ERANGE || v < min_value ||
      v > max_value || std::strchr(env, '-') != nullptr) {
    std::fprintf(stderr,
                 "error: %s='%s' is not a valid %s (expected an integer "
                 "in [%llu, %llu])\n",
                 name, env, meaning,
                 static_cast<unsigned long long>(min_value),
                 static_cast<unsigned long long>(max_value));
    std::exit(1);
  }
  return static_cast<u64>(v);
}

std::string hex16(u64 v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// The store header line pinning what the record below belongs to; a
/// renamed or cross-seed record fails this check before the payload is
/// even looked at.
std::string renderStoreHeader(u64 seed, const std::string& key) {
  std::ostringstream os;
  os << "{\"ev\": \"store\", \"version\": 1, \"seed\": " << seed
     << ", \"key\": \"" << jsonEscape(key) << "\"}";
  return os.str();
}

/// Strict parse of one numeric token out of a lease payload; 0 when
/// the field is missing, quoted or malformed.
u64 leaseField(const std::map<std::string, JsonToken>& tokens,
               const char* field) {
  const auto it = tokens.find(field);
  if (it == tokens.end() || it->second.is_string) return 0;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v =
      std::strtoull(it->second.text.c_str(), &end, 10);
  if (end == it->second.text.c_str() || *end != '\0' || errno == ERANGE) {
    return 0;
  }
  return static_cast<u64>(v);
}

pid_t lockHolderPid(const std::string& lock_path) {
  return readStoreLease(lock_path).pid;
}

/// Age of @p path in milliseconds by mtime; u64(-1) when unstattable
/// (e.g. the lock vanished between our probe and now).
u64 fileAgeMs(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return static_cast<u64>(-1);
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const u64 now_ms = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
  const u64 mtime_ms = static_cast<u64>(st.st_mtim.tv_sec) * 1000u +
                       static_cast<u64>(st.st_mtim.tv_nsec) / 1000000u;
  return now_ms > mtime_ms ? now_ms - mtime_ms : 0;
}

}  // namespace

StoreLeaseHolder readStoreLease(const std::string& lock_path) {
  StoreLeaseHolder holder;
  std::ifstream in(lock_path);
  if (!in.is_open()) return holder;
  std::string line;
  std::getline(in, line);
  std::map<std::string, JsonToken> tokens;
  if (!parseFlatJsonLine(line, tokens)) return holder;
  holder.pid = static_cast<pid_t>(leaseField(tokens, "pid"));
  holder.boot = leaseField(tokens, "boot");
  return holder;
}

u64 bootNonce() {
  static const u64 nonce = [] {
    // The kernel regenerates this UUID every boot; its hash is the
    // strongest boot identity available without any state of our own.
    std::ifstream boot_id("/proc/sys/kernel/random/boot_id");
    std::string line;
    if (boot_id.is_open() && std::getline(boot_id, line) && !line.empty()) {
      return stringDigest(line);
    }
    // Fallback: the boot timestamp (seconds since the epoch). Coarser —
    // two boots within the same second collide — but still catches the
    // reboot-plus-pid-reuse case the pid probe cannot.
    std::ifstream stat("/proc/stat");
    while (stat.is_open() && std::getline(stat, line)) {
      if (line.rfind("btime ", 0) == 0) {
        return stringDigest(line);
      }
    }
    return static_cast<u64>(0);  // no boot identity: nonce check disabled
  }();
  return nonce;
}

std::optional<ResultStore::Config> ResultStore::fromEnv() {
  const char* dir = std::getenv("WP_STORE");
  if (dir == nullptr || *dir == '\0') return std::nullopt;
  Config c;
  c.dir = dir;
  c.lease_timeout_ms =
      u64FromEnv("WP_LEASE_TIMEOUT_MS", c.lease_timeout_ms, 1,
                 24ULL * 60 * 60 * 1000, "lease timeout in milliseconds");
  return c;
}

ResultStore::ResultStore(const Config& config, u64 seed,
                         MetricsRegistry& metrics, TraceWriter* trace)
    : config_(config), seed_(seed), metrics_(metrics), trace_(trace) {
  if (::mkdir(config_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    degrade("cannot create store directory '" + config_.dir +
            "': " + std::strerror(errno));
    return;
  }
  struct stat st;
  if (::stat(config_.dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    degrade("'" + config_.dir + "' exists but is not a directory");
  }
}

ResultStore::Lease& ResultStore::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    lock_path_ = std::move(other.lock_path_);
    other.lock_path_.clear();
  }
  return *this;
}

void ResultStore::Lease::release() {
  if (lock_path_.empty()) return;
  // Unlink only if the lock is still *ours*: a reclaimer that decided we
  // were stale may have replaced it with its own, and blindly unlinking
  // would steal that holder's lease.
  if (lockHolderPid(lock_path_) == ::getpid()) {
    ::unlink(lock_path_.c_str());
  }
  lock_path_.clear();
}

std::string ResultStore::recordPathFor(const std::string& key,
                                       u64 image_digest) const {
  // (seed, key, image) addressing: the key digest keeps arbitrary cell
  // keys out of the filename while staying collision-safe in practice,
  // and the header inside the file re-states the real key so a hash
  // collision is caught at read time, not served.
  return config_.dir + "/cell-" + hex16(seed_) + "-" +
         hex16(stringDigest(key)) + "-" + hex16(image_digest) + ".rec";
}

std::optional<CheckpointRecord> ResultStore::load(const std::string& key,
                                                  u64 image_digest,
                                                  bool& rejected) {
  const std::string path = recordPathFor(key, image_digest);
  std::ifstream in(path);
  if (!in.is_open()) return std::nullopt;  // plain miss

  std::string header_line;
  std::string record_line;
  if (!std::getline(in, header_line) || !std::getline(in, record_line)) {
    rejected = true;  // torn: rename is atomic, so this is tampering
    return std::nullopt;
  }

  std::map<std::string, JsonToken> header;
  if (!parseFlatJsonLine(header_line, header)) {
    rejected = true;
    return std::nullopt;
  }
  const auto ev = header.find("ev");
  const auto version = header.find("version");
  const auto seed = header.find("seed");
  const auto hkey = header.find("key");
  if (ev == header.end() || ev->second.text != "store" ||
      version == header.end() || version->second.text != "1" ||
      seed == header.end() ||
      seed->second.text != std::to_string(seed_) || hkey == header.end() ||
      hkey->second.text != key) {
    rejected = true;  // foreign version/seed/key under our filename
    return std::nullopt;
  }

  CheckpointRecord rec;
  if (parseRecordLine(record_line, rec) != RecordParse::kOk ||
      rec.key != key || rec.image_digest != image_digest) {
    rejected = true;
    return std::nullopt;
  }
  return rec;
}

ResultStore::Outcome ResultStore::open(const std::string& key,
                                       u64 image_digest) {
  Outcome out;
  if (degraded()) return out;

  Counter& hits = metrics_.counter("store.hits");
  Counter& misses = metrics_.counter("store.misses");
  Counter& rejected_counter = metrics_.counter("store.rejected");
  const std::string lock_path = recordPathFor(key, image_digest) + ".lock";
  bool waited = false;
  bool counted_rejection = false;

  for (;;) {
    bool rejected = false;
    if (auto rec = load(key, image_digest, rejected)) {
      hits.add();
      if (trace_ != nullptr) {
        trace_->write(TraceEvent(waited ? "store_hit_after_wait"
                                        : "store_hit")
                          .str("cell", key));
      }
      out.record = std::move(rec);
      out.lease.release();
      return out;
    }
    if (rejected && !counted_rejection) {
      // A present-but-untrustworthy record counts once per lookup, not
      // once per poll of a lease we are waiting on.
      counted_rejection = true;
      rejected_counter.add();
      if (trace_ != nullptr) {
        trace_->write(TraceEvent("store_rejected").str("cell", key));
      }
      std::fprintf(stderr,
                   "[wayplace] WP_STORE: rejected untrusted record for "
                   "cell '%s' (torn, tampered or version-mismatched); "
                   "recomputing\n",
                   key.c_str());
    }

    if (!out.lease.owned()) {
      const int fd = ::open(lock_path.c_str(),
                            O_CREAT | O_EXCL | O_WRONLY | O_CLOEXEC, 0644);
      if (fd >= 0) {
        const std::string payload =
            "{\"pid\": " + std::to_string(::getpid()) +
            ", \"boot\": " + std::to_string(bootNonce()) +
            ", \"seed\": " + std::to_string(seed_) + "}\n";
        const ssize_t n =
            ::write(fd, payload.data(), payload.size());
        ::close(fd);
        if (n != static_cast<ssize_t>(payload.size())) {
          ::unlink(lock_path.c_str());
          degrade("cannot write lease '" + lock_path +
                  "': " + std::strerror(errno));
          return out;
        }
        out.lease.lock_path_ = lock_path;
        // Loop once more with the lease held: the previous holder may
        // have published the record between our load and our acquire.
        continue;
      }
      if (errno != EEXIST) {
        degrade("cannot create lease '" + lock_path +
                "': " + std::strerror(errno));
        return out;
      }

      // Someone else holds the lease. Reclaim it if the holder is
      // provably dead, was written in a previous boot (its pid may have
      // been reused by an unrelated live process, so kill(pid, 0) says
      // nothing), or has overstayed WP_LEASE_TIMEOUT_MS; otherwise wait
      // for its record to appear.
      const StoreLeaseHolder holder = readStoreLease(lock_path);
      const bool holder_dead = holder.pid > 0 &&
                               holder.pid != ::getpid() &&
                               ::kill(holder.pid, 0) != 0 &&
                               errno == ESRCH;
      // Both nonces must exist for the boot check: a 0 on either side
      // means "no boot identity" (old-format lease or a host without
      // one), and the pid probe plus expiry stay the only evidence.
      const bool stale_boot =
          holder.boot != 0 && bootNonce() != 0 && holder.boot != bootNonce();
      const u64 age_ms = fileAgeMs(lock_path);
      const bool lease_expired =
          age_ms != static_cast<u64>(-1) &&
          age_ms > config_.lease_timeout_ms;
      if (holder_dead || stale_boot || lease_expired) {
        ::unlink(lock_path.c_str());
        metrics_.counter("store.leases_reclaimed").add();
        const char* why = holder_dead    ? "holder dead"
                          : stale_boot   ? "holder from a previous boot"
                                         : "lease expired";
        if (trace_ != nullptr) {
          trace_->write(TraceEvent("store_lease_reclaimed")
                            .str("cell", key)
                            .str("why", why)
                            .num("holder_pid", static_cast<u64>(
                                     holder.pid > 0 ? holder.pid : 0)));
        }
        std::fprintf(stderr,
                     "[wayplace] WP_STORE: reclaimed stale lease for cell "
                     "'%s' (%s)\n",
                     key.c_str(),
                     holder_dead  ? "holder process is dead"
                     : stale_boot ? "holder is from a previous boot"
                                  : "holder exceeded WP_LEASE_TIMEOUT_MS");
        continue;  // race for the lock again
      }
      if (!waited) {
        waited = true;
        metrics_.counter("store.lease_waits").add();
        if (trace_ != nullptr) {
          trace_->write(TraceEvent("store_lease_wait")
                            .str("cell", key)
                            .num("holder_pid", static_cast<u64>(
                                     holder.pid > 0 ? holder.pid : 0)));
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      continue;
    }

    // We hold the lease and the final re-check still missed: compute.
    misses.add();
    if (trace_ != nullptr) {
      trace_->write(TraceEvent("store_miss").str("cell", key));
    }
    return out;
  }
}

void ResultStore::put(Lease& lease, const std::string& key,
                      u64 image_digest, const RunResult& result,
                      double wall_seconds) {
  if (degraded() || !lease.owned()) {
    lease.release();
    return;
  }
  const std::string path = recordPathFor(key, image_digest);
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid());
  const std::string body = renderStoreHeader(seed_, key) + "\n" +
                           renderRecord(key, image_digest, result,
                                        wall_seconds) +
                           "\n";

  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) {
    degrade("cannot create '" + tmp + "': " + std::strerror(errno));
    lease.release();
    return;
  }
  std::size_t off = 0;
  bool write_ok = true;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      write_ok = false;
      break;
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: once the record name exists, its bytes must be
  // complete — readers trust rename(2) to imply a whole record.
  if (!write_ok || ::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    degrade("cannot write '" + tmp + "': " + std::strerror(errno));
    lease.release();
    return;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    degrade("cannot publish '" + path + "': " + std::strerror(errno));
    lease.release();
    return;
  }
  if (!fsyncDirContaining(path)) {
    degrade("cannot fsync store directory for '" + path +
            "': " + std::strerror(errno));
    lease.release();
    return;
  }
  metrics_.counter("store.records_written").add();
  if (trace_ != nullptr) {
    trace_->write(TraceEvent("store_put").str("cell", key));
  }
  lease.release();
}

void ResultStore::degrade(const std::string& reason) {
  // First failure wins; later ones are the same underlying condition.
  bool expected = false;
  if (!degraded_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  metrics_.counter("store.degraded").add();
  if (trace_ != nullptr) {
    trace_->write(TraceEvent("store_degraded").str("reason", reason));
  }
  std::fprintf(stderr,
               "[wayplace] warning: WP_STORE degraded — %s; computing "
               "every cell for this run (results are unaffected, only "
               "the cache is lost)\n",
               reason.c_str());
}

}  // namespace wp::driver
