// Measured-energy layout autotuning (ROADMAP "Layout autotuning").
//
// Nobre et al. ("Compiler Phase Ordering as an Orthogonal Approach for
// Reducing Energy Consumption") show that searching over pass
// parameters and ordering beats any fixed pipeline on energy. PR 9's
// parameterized layout stack makes that search almost free to host: a
// candidate configuration is just a strategy spec string, a spec is an
// ordinary SweepExecutor cell (supervised, memoized, checkpointed,
// store-served), and the measured objective is the suite-average
// normalized I-cache energy (or ED product) the executor already
// computes.
//
// The search is seeded coordinate descent — deterministic from the
// suite seed (WP_SEED), including its axis exploration order, so the
// same seed and budget replay the identical trajectory byte-for-byte.
// Each axis scan prices its candidates as one parallel batch across
// the executor's pool.
//
// Environment knobs (parsed strictly, like WP_JOBS/WP_RETRIES):
//   WP_TUNE_EVALS      candidate-evaluation budget (default 24); one
//                      eval = one suite-wide pricing of one new spec
//   WP_TUNE_OBJECTIVE  "icache_energy" (default) or "ed_product"
#pragma once

#include <string>
#include <vector>

#include "driver/sweep.hpp"

namespace wp::driver {

struct AutotuneConfig {
  /// Maximum number of distinct candidate specs to price (including
  /// the starting point). The search also stops early when a full
  /// round over every axis improves nothing.
  unsigned evals = 24;
  enum class Objective { kIcacheEnergy, kEdProduct };
  Objective objective = Objective::kIcacheEnergy;

  [[nodiscard]] const char* objectiveName() const {
    return objective == Objective::kIcacheEnergy ? "icache_energy"
                                                 : "ed_product";
  }

  /// WP_TUNE_EVALS / WP_TUNE_OBJECTIVE, strictly parsed: garbage exits
  /// with status 1 listing the valid values.
  [[nodiscard]] static AutotuneConfig fromEnv();
};

/// One priced candidate, in evaluation order.
struct AutotuneStep {
  unsigned eval = 0;       ///< 1-based evaluation index
  std::string spec;        ///< canonical candidate spec
  SweepExecutor::SuiteAverage objective;  ///< suite-average metric
  bool improved = false;   ///< became the incumbent when priced
};

/// Per-workload read-out of the search (no extra simulations: every
/// field derives from cells the search already priced).
struct AutotuneWorkloadBest {
  std::string workload;
  std::string spec;        ///< best evaluated spec for this workload
  double objective = 0.0;  ///< its normalized metric on this workload
  bool quarantined = false;  ///< no candidate produced a usable cell
  /// Dominant-block-guided WP-area recommendation: the smallest
  /// page-multiple area that covers >= 90% of the profiled dynamic
  /// instructions under this workload's best layout (Patel & Rajawat's
  /// dominant-block steering). Falls back to the whole (page-rounded)
  /// code size when the profile never concentrates; 0 when the
  /// workload carries no usable profile at all.
  u32 recommended_wp_bytes = 0;
  double recommended_coverage = 0.0;  ///< coverage at that area
};

struct AutotuneResult {
  std::string start_spec;  ///< the incumbent the search started from
  std::string best_spec;   ///< best spec found (canonical)
  SweepExecutor::SuiteAverage start;  ///< objective at start_spec
  SweepExecutor::SuiteAverage best;   ///< objective at best_spec
  unsigned evals_used = 0;
  bool budget_exhausted = false;
  std::vector<AutotuneStep> trajectory;       ///< every priced candidate
  std::vector<AutotuneWorkloadBest> per_workload;  ///< suite order
};

/// A dominant-block WP-area recommendation (Patel & Rajawat): the
/// smallest page-multiple area covering >= 90% of the profiled dynamic
/// instructions under one layout. bytes == 0 means the workload has no
/// usable profile to recommend from.
struct WpAreaRecommendation {
  u32 bytes = 0;
  double coverage = 0.0;
};

/// Computes the recommendation for @p prepared under layout @p spec
/// (any resolvable strategy spec; throws SimError on an unresolvable
/// one, like PreparedWorkload::layoutFor). Pure read-out of the layout
/// report — no simulation. Shared by the autotune bench's per-workload
/// table and the sweep service's `recommend` op.
[[nodiscard]] WpAreaRecommendation recommendWpArea(
    const PreparedWorkload& prepared, const std::string& spec);

/// Runs the coordinate-descent search over the layout PassParams space
/// on @p suite at (@p icache, way-placement area @p wp_area_bytes),
/// starting from the paper's `way_placement` defaults. Deterministic
/// from the suite's seed and @p config; candidates are priced as
/// parallel supervised cells (quarantined candidates score +inf and
/// can never become the incumbent). Since descent only ever accepts
/// strict improvements, the returned best always beats or matches the
/// starting point on the configured objective.
[[nodiscard]] AutotuneResult autotuneLayout(SweepExecutor& suite,
                                            const cache::CacheGeometry& icache,
                                            u32 wp_area_bytes,
                                            const AutotuneConfig& config);

}  // namespace wp::driver
