#include "driver/runner.hpp"

#include "support/ensure.hpp"

namespace wp::driver {

Normalized normalize(const RunResult& scheme, const RunResult& baseline) {
  Normalized n;
  n.icache_energy =
      scheme.energy.icacheTotal() / baseline.energy.icacheTotal();
  n.total_energy = scheme.energy.total() / baseline.energy.total();
  n.delay = static_cast<double>(scheme.stats.cycles) /
            static_cast<double>(baseline.stats.cycles);
  n.ed_product = n.total_energy * n.delay;
  return n;
}

Runner::Runner(energy::EnergyParams params) : model_(params) {}

PreparedWorkload Runner::prepare(const std::string& name,
                                 workloads::InputSize profile_input) const {
  PreparedWorkload p;
  p.name = name;
  p.workload = workloads::makeWorkload(name);
  p.module = p.workload->build();

  // Profile the original-order binary on the training input.
  p.original = layout::linkWithPolicy(p.module, layout::Policy::kOriginal);
  mem::Memory memory;
  p.original.loadInto(memory);
  p.workload->prepare(memory, profile_input);
  const profile::ProfileResult prof = profile::profileImage(p.original, memory);
  p.profile_instructions = prof.instructions;
  profile::annotate(p.module, prof);

  // The way-placement layout (heaviest chains first).
  p.wayplaced = layout::linkWithPolicy(p.module, layout::Policy::kWayPlacement);
  return p;
}

sim::MachineConfig Runner::machineFor(const cache::CacheGeometry& icache,
                                      const SchemeSpec& spec) const {
  sim::MachineConfig m = sim::baselineMachine(spec.scheme, spec.wp_area_bytes);
  m.fetch.icache = icache;
  m.fetch.intraline_skip = spec.intraline_skip;
  m.fetch.wm_precise_invalidation = spec.wm_precise_invalidation;
  m.fetch.drowsy_window = spec.drowsy_window;
  return m;
}

RunResult Runner::run(const PreparedWorkload& prepared,
                      const cache::CacheGeometry& icache,
                      const SchemeSpec& spec,
                      workloads::InputSize input) const {
  const mem::Image& image = spec.layout == layout::Policy::kWayPlacement
                                ? prepared.wayplaced
                                : prepared.original;
  WP_ENSURE(spec.scheme != cache::Scheme::kWayPlacement ||
                spec.wp_area_bytes > 0,
            "way-placement needs a non-empty area");

  mem::Memory memory;
  image.loadInto(memory);
  prepared.workload->prepare(memory, input);

  const sim::MachineConfig machine = machineFor(icache, spec);
  sim::Processor proc(machine, image, memory);

  RunResult result;
  result.stats = proc.run();
  result.energy = sim::Processor::price(model_, machine, result.stats);
  return result;
}

}  // namespace wp::driver
