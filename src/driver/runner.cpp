#include "driver/runner.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "mem/memory.hpp"
#include "sim/scheduler.hpp"
#include "support/ensure.hpp"
#include "workloads/common.hpp"

namespace wp::driver {

namespace {

/// Clamps a way-placement area to @p image's code pages: pages past the
/// end of code are never fetched, so the clamp is behavior-neutral, but
/// it keeps per-process limits (and resize storms) inside each image.
u32 clampWpAreaToImage(u32 wp_area_bytes, const mem::Image& image) {
  const u32 code_pages = static_cast<u32>(
      (image.code.size() + mem::kPageBytes - 1) / mem::kPageBytes);
  const u32 code_bytes = code_pages * mem::kPageBytes;
  return wp_area_bytes > code_bytes ? code_bytes : wp_area_bytes;
}

}  // namespace

sim::Engine engineFromEnv() {
  const char* env = std::getenv("WP_ENGINE");
  if (env == nullptr || *env == '\0') return sim::Engine::kBlock;
  if (std::strcmp(env, "block") == 0) return sim::Engine::kBlock;
  if (std::strcmp(env, "interp") == 0) return sim::Engine::kInterp;
  std::fprintf(stderr,
               "error: WP_ENGINE='%s' is not a valid simulation engine "
               "(expected 'block' or 'interp')\n",
               env);
  std::exit(1);
}

Normalized normalize(const RunResult& scheme, const RunResult& baseline,
                     const std::string& workload) {
  const std::string who = workload.empty() ? "<unnamed>" : workload;
  WP_ENSURE(baseline.stats.cycles > 0,
            "normalize: baseline run of workload '" + who +
                "' retired zero cycles — the baseline must actually run "
                "before schemes can be normalized against it");
  WP_ENSURE(baseline.energy.icacheTotal() > 0.0 && baseline.energy.total() > 0.0,
            "normalize: baseline run of workload '" + who +
                "' priced to zero energy — check the EnergyParams");
  Normalized n;
  n.icache_energy =
      scheme.energy.icacheTotal() / baseline.energy.icacheTotal();
  n.total_energy = scheme.energy.total() / baseline.energy.total();
  n.delay = static_cast<double>(scheme.stats.cycles) /
            static_cast<double>(baseline.stats.cycles);
  n.ed_product = n.total_energy * n.delay;
  return n;
}

Runner::Runner(energy::EnergyParams params, u64 seed)
    : model_(params), seed_(seed), engine_(engineFromEnv()) {}

const layout::LayoutResult& PreparedWorkload::layoutFor(
    std::string_view spec_str) const {
  // resolveStrategy validates the spec and canonicalizes aliases and
  // param overrides, so every spelling of one configuration shares one
  // cache slot.
  const layout::StrategySpec spec = layout::resolveStrategy(spec_str);
  // A profile-driven layout without a usable profile falls back to the
  // original image — for tuned specs exactly like for registered ones
  // (a bad profile costs energy, never correctness).
  if (spec.needs_profile && !profile_ok) {
    const auto it = layouts.find("original");
    WP_ENSURE(it != layouts.end(),
              "workload '" + name + "' was prepared without layouts");
    return it->second;
  }
  const std::string key = spec.canonical();
  if (const auto it = layouts.find(key); it != layouts.end()) {
    return it->second;
  }
  // Parameterized spec: run the pipeline on first use. std::map nodes
  // are stable, so the reference survives later insertions.
  std::lock_guard<std::mutex> lock(*tuned_mutex_);
  if (const auto it = tuned_layouts_.find(key); it != tuned_layouts_.end()) {
    return it->second;
  }
  const auto [it, inserted] =
      tuned_layouts_.emplace(key, layout::runPipeline(module, spec, seed));
  return it->second;
}

PreparedWorkload Runner::prepare(const std::string& name,
                                 workloads::InputSize profile_input,
                                 fault::ProfileFault profile_fault) const {
  PreparedWorkload p;
  p.name = name;
  p.seed = seed_;
  // The seed is threaded into the workload instance itself (inputs, key
  // material, references) — there is no process-wide seed, so Runners
  // with different seeds can interleave or run on different threads.
  {
    ScopedTimer span(metrics_.timer("phase.build"));
    p.workload = workloads::makeWorkload(name, seed_);
    p.module = p.workload->build();
    p.phases.build_seconds = span.stop();
  }

  // Profile the original-order binary on the training input.
  ScopedTimer profile_span(metrics_.timer("phase.profile"));
  mem::Image original = layout::runPipeline(p.module, "original").image;
  mem::Memory memory;
  original.loadInto(memory);
  p.workload->prepare(memory, profile_input);
  profile::ProfileResult prof = profile::profileImage(original, memory);

  if (profile_fault != fault::ProfileFault::kNone) {
    Rng rng(seed_ ^ 0x9e3779b97f4a7c15ULL ^
            static_cast<u64>(profile_fault) * 0xbf58476d1ce4e5b9ULL);
    fault::corruptProfile(prof, profile_fault, rng);
  }

  p.profile_instructions = prof.instructions;

  // A damaged (or just bad) profile must cost at most energy, never the
  // sweep: diagnose it and fall back to the original block order for
  // every profile-driven strategy.
  const auto problem = profile::validate(p.module, prof);
  if (problem) {
    p.profile_ok = false;
    p.profile_warning = *problem;
    std::fprintf(stderr,
                 "[wayplace] warning: workload '%s': training profile "
                 "unusable (%s); falling back to original layout\n",
                 name.c_str(), problem->c_str());
  } else {
    profile::annotate(p.module, prof);
  }
  p.phases.profile_seconds = profile_span.stop();

  // Run the pass pipeline once per registered strategy. The original
  // layout is recomputed after annotation so its report's spans carry
  // the profile (its image bytes do not depend on the weights).
  ScopedTimer layout_span(metrics_.timer("phase.layout"));
  for (const layout::LayoutStrategy* s : layout::strategies()) {
    if (s->needs_profile && !p.profile_ok) continue;
    p.layouts.emplace(s->name, layout::runPipeline(p.module, *s, seed_));
  }
  if (!p.profile_ok) {
    const layout::LayoutResult& fallback = p.layouts.at("original");
    for (const layout::LayoutStrategy* s : layout::strategies()) {
      if (s->needs_profile) p.layouts.emplace(s->name, fallback);
    }
  }
  p.phases.layout_seconds = layout_span.stop();
  return p;
}

sim::MachineConfig Runner::machineFor(const cache::CacheGeometry& icache,
                                      const SchemeSpec& spec) const {
  sim::MachineConfig m = sim::baselineMachine(spec.scheme, spec.wp_area_bytes);
  m.fetch.icache = icache;
  m.fetch.intraline_skip = spec.intraline_skip;
  m.fetch.wm_precise_invalidation = spec.wm_precise_invalidation;
  m.fetch.drowsy_window = spec.drowsy_window;
  m.engine = engine_;
  return m;
}

RunResult Runner::run(const PreparedWorkload& prepared,
                      const cache::CacheGeometry& icache,
                      const SchemeSpec& spec, workloads::InputSize input,
                      const sim::BudgetHook* budget_hook) const {
  const layout::LayoutResult& laid = prepared.layoutFor(spec.layout);
  const mem::Image& image = laid.image;
  if (spec.scheme == cache::Scheme::kWayPlacement) {
    WP_ENSURE(spec.wp_area_bytes > 0,
              "SchemeSpec.wp_area_bytes must be non-zero for the "
              "way-placement scheme");
    WP_ENSURE(spec.wp_area_bytes % mem::kPageBytes == 0,
              "SchemeSpec.wp_area_bytes (" +
                  std::to_string(spec.wp_area_bytes) +
                  ") must be a multiple of the " +
                  std::to_string(mem::kPageBytes) + "-byte page size");
  }

  // The metrics registry's phase timer keeps wall-clock (observability:
  // "where did the run's time go"), but the cell's own simulate_seconds
  // — the guest-MIPS denominator — is *thread CPU time*: on an
  // oversubscribed host (WP_JOBS above the core count) a wall-clock
  // span charges the cell for time the scheduler spent running its
  // neighbours, deflating reported MIPS by up to the oversubscription
  // factor and making recordings incomparable across WP_JOBS settings.
  ScopedTimer simulate_span(metrics_.timer("phase.simulate"));
  const double simulate_cpu_start = threadCpuSeconds();
  mem::Memory memory;
  image.loadInto(memory);
  prepared.workload->prepare(memory, input);

  sim::MachineConfig machine = machineFor(icache, spec);
  if (budget_hook != nullptr) machine.budget_hook = *budget_hook;
  if (machine.fetch.scheme == cache::Scheme::kWayPlacement) {
    // Clamp the WP area to the image: keeps resize storms (which
    // restore the configured area) inside the image too.
    machine.fetch.wp_area_bytes =
        clampWpAreaToImage(machine.fetch.wp_area_bytes, image);
  }

  sim::Processor proc(machine, image, memory);

  std::optional<fault::FaultInjector> injector;
  if (spec.fault.runtimeEnabled()) {
    injector.emplace(spec.fault, seed_);
    injector->attach(proc.fetchPath());
  }

  RunResult result;
  result.layout_strategy = laid.report.strategy;
  result.layout_chains = laid.report.chains;
  result.layout_repairs = laid.report.repairs;
  if (machine.fetch.scheme == cache::Scheme::kWayPlacement) {
    // Coverage against the *clamped* area — what the hardware will
    // actually probe single-way.
    result.wp_area_coverage = laid.report.coverage(machine.fetch.wp_area_bytes);
  }
  result.stats = proc.run();
  result.simulate_seconds = threadCpuSeconds() - simulate_cpu_start;
  simulate_span.stop();
  metrics_.counter("guest.instructions").add(result.stats.instructions);

  ScopedTimer price_span(metrics_.timer("phase.price"));
  result.energy = sim::Processor::price(model_, machine, result.stats);
  result.output = prepared.workload->output(memory);
  result.price_seconds = price_span.stop();
  if (injector.has_value()) result.injected = injector->stats();
  return result;
}

RunResult Runner::runCoRun(const std::vector<const PreparedWorkload*>& group,
                           const cache::CacheGeometry& icache,
                           const SchemeSpec& spec, workloads::InputSize input,
                           const sim::BudgetHook* budget_hook,
                           CoRunExtra* extra) const {
  WP_ENSURE(spec.corunEnabled(),
            "runCoRun needs corun_quantum > 0 (use run() for solo cells)");
  WP_ENSURE(!group.empty(), "runCoRun needs at least one workload");
  for (const PreparedWorkload* pw : group) {
    WP_ENSURE(pw != nullptr, "runCoRun: null workload in the group");
  }
  // Fault hooks observe per-fetch state of *one* run; wiring them to a
  // time-sliced fetch path is a separate study, so co-run cells reject
  // them instead of silently attributing injections across guests.
  WP_ENSURE(!spec.fault.runtimeEnabled(),
            "co-run cells do not support runtime fault injection");
  if (spec.scheme == cache::Scheme::kWayPlacement) {
    WP_ENSURE(spec.wp_area_bytes > 0,
              "SchemeSpec.wp_area_bytes must be non-zero for the "
              "way-placement scheme");
    WP_ENSURE(spec.wp_area_bytes % mem::kPageBytes == 0,
              "SchemeSpec.wp_area_bytes (" +
                  std::to_string(spec.wp_area_bytes) +
                  ") must be a multiple of the " +
                  std::to_string(mem::kPageBytes) + "-byte page size");
  }

  ScopedTimer simulate_span(metrics_.timer("phase.simulate"));
  const double simulate_cpu_start = threadCpuSeconds();

  sim::MachineConfig machine = machineFor(icache, spec);
  if (budget_hook != nullptr) machine.budget_hook = *budget_hook;

  sim::SchedulerConfig sched_config;
  sched_config.quantum = spec.corun_quantum;
  sched_config.tlb_policy = spec.corun_tlb;
  sim::GuestScheduler sched(machine, sched_config);

  // Register every guest with its own image, per-process WP limit
  // (clamped to *its* code pages, exactly like run() clamps the solo
  // area) and inputs written into its private memory.
  std::vector<u32> asids;
  asids.reserve(group.size());
  u32 primary_wp_area = 0;
  for (const PreparedWorkload* pw : group) {
    const mem::Image& image = pw->layoutFor(spec.layout).image;
    u32 wp_limit = 0;
    if (machine.fetch.scheme == cache::Scheme::kWayPlacement) {
      wp_limit = clampWpAreaToImage(spec.wp_area_bytes, image);
    }
    if (asids.empty()) primary_wp_area = wp_limit;
    const u32 asid = sched.addProcess(pw->name, image, wp_limit);
    pw->workload->prepare(sched.memoryOf(asid), input);
    asids.push_back(asid);
  }

  sim::CoRunStats co = sched.run();

  const PreparedWorkload& primary = *group.front();
  const layout::LayoutResult& laid = primary.layoutFor(spec.layout);
  RunResult result;
  result.layout_strategy = laid.report.strategy;
  result.layout_chains = laid.report.chains;
  result.layout_repairs = laid.report.repairs;
  if (machine.fetch.scheme == cache::Scheme::kWayPlacement) {
    result.wp_area_coverage = laid.report.coverage(primary_wp_area);
  }
  result.stats = co.combined;
  result.simulate_seconds = threadCpuSeconds() - simulate_cpu_start;
  simulate_span.stop();
  metrics_.counter("guest.instructions").add(result.stats.instructions);

  ScopedTimer price_span(metrics_.timer("phase.price"));
  result.energy = sim::Processor::price(model_, machine, result.stats);
  // The cell's output is every guest's output, concatenated in group
  // order: the stats digest (and so the journal/store verification)
  // covers each process's result bytes, not just the primary's.
  for (std::size_t i = 0; i < group.size(); ++i) {
    std::vector<u8> out =
        group[i]->workload->output(sched.memoryOf(asids[i]));
    if (extra != nullptr) {
      CoRunProcess cp;
      cp.name = co.processes[i].name;
      cp.instructions = co.processes[i].instructions;
      cp.retired_pc_hash = co.processes[i].retired_pc_hash;
      cp.dataflow_hash = co.processes[i].dataflow_hash;
      cp.cycles = co.processes[i].cycles;
      cp.output = out;
      extra->processes.push_back(std::move(cp));
    }
    result.output.insert(result.output.end(), out.begin(), out.end());
  }
  result.price_seconds = price_span.stop();
  if (extra != nullptr) {
    extra->context_switches = co.context_switches;
    extra->slices = co.slices;
  }
  return result;
}

}  // namespace wp::driver
