#include "driver/service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "driver/autotune.hpp"
#include "driver/checkpoint.hpp"
#include "layout/strategy.hpp"
#include "support/ensure.hpp"
#include "support/socket.hpp"

namespace wp::driver {

namespace {

/// Strict unsigned parse for WP_SERVE_* knobs, matching the
/// WP_JOBS/WP_RETRIES policy (leading '-', trailing junk, overflow and
/// out-of-range values all exit 1 naming the knob).
u64 envUnsigned(const char* knob, const char* value, u64 min, u64 max,
                const char* what) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 0);
  if (end == value || *end != '\0' || errno == ERANGE || v < min || v > max ||
      std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr, "error: %s='%s' is not a valid %s (expected an "
                 "integer in [%llu, %llu])\n",
                 knob, value, what, static_cast<unsigned long long>(min),
                 static_cast<unsigned long long>(max));
    std::exit(1);
  }
  return static_cast<u64>(v);
}

// ---- reply rendering ------------------------------------------------
// Replies are flat one-line JSON objects built by hand so their bytes
// are a pure function of the request and the (deterministic) result:
// doubles render with %.17g (round-trip exact), and no volatile field
// (attempts, wall-clock, worker ids) ever appears — the restart smoke
// diffs replies across a SIGKILL byte for byte.

void addKey(std::string& out, const char* key) {
  if (out.size() > 1) out += ", ";
  out += '"';
  out += key;
  out += "\": ";
}

void addStr(std::string& out, const char* key, const std::string& value) {
  addKey(out, key);
  out += '"';
  out += jsonEscape(value);
  out += '"';
}

void addNum(std::string& out, const char* key, u64 value) {
  addKey(out, key);
  out += std::to_string(value);
}

void addDbl(std::string& out, const char* key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  addKey(out, key);
  out += buf;
}

void addBool(std::string& out, const char* key, bool value) {
  addKey(out, key);
  out += value ? "true" : "false";
}

std::string sealed(std::string out) {
  out += '}';
  return out;
}

/// Was this quarantine a deadline kill? Both watchdog paths — the
/// in-process instruction-budget hook and the isolated worker's
/// parent-side timer — tag their SimError with the budget knob's name.
bool isDeadlineError(const std::string& error) {
  return error.find("WP_CELL_TIMEOUT_MS") != std::string::npos;
}

bool parseSchemeName(const std::string& name, cache::Scheme& out) {
  for (const cache::Scheme s :
       {cache::Scheme::kBaseline, cache::Scheme::kWayPlacement,
        cache::Scheme::kWayMemoization, cache::Scheme::kWayPrediction}) {
    if (name == cache::schemeName(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

ServiceConfig ServiceConfig::fromEnv() {
  ServiceConfig c;
  const char* socket = std::getenv("WP_SERVE_SOCKET");
  if (socket != nullptr && *socket != '\0') c.socket_path = socket;
  const char* queue = std::getenv("WP_SERVE_QUEUE");
  if (queue != nullptr && *queue != '\0') {
    c.queue_limit = static_cast<unsigned>(envUnsigned(
        "WP_SERVE_QUEUE", queue, 1, 4096, "admission-queue capacity"));
  }
  const char* deadline = std::getenv("WP_SERVE_DEADLINE_MS");
  if (deadline != nullptr && *deadline != '\0') {
    c.deadline_ms = envUnsigned("WP_SERVE_DEADLINE_MS", deadline, 0,
                                86400000, "request deadline");
  }
  return c;
}

// ---- request model --------------------------------------------------

/// One validated request. Geometry and spec carry their defaults (the
/// paper's 32 KB / 32-way / 32 B cache, the way-placement scheme with
/// an 8 KB area under the default layout strategy) so a minimal
/// `{"op": "eval", "workload": ...}` prices the paper's headline cell.
struct SweepService::Request {
  std::string op;
  std::string id;
  std::string workload;  ///< eval/recommend target
  cache::CacheGeometry icache;
  SchemeSpec spec;
  bool compute = false;  ///< eval/suite/recommend: goes through admission
};

/// One accepted client connection. The poll thread owns fd lifetime and
/// the input buffer; workers only write replies, serialized by
/// write_mutex and gated on `open` so a reply racing a disconnect hits
/// a closed flag, never a recycled fd.
struct SweepService::Connection {
  int fd = -1;
  std::string inbuf;
  std::mutex write_mutex;
  bool open = true;  ///< guarded by write_mutex
};

SweepService::SweepService(ServiceConfig config, SweepExecutor& suite,
                           ShutdownLatch& latch)
    : config_(std::move(config)), suite_(suite), latch_(latch) {}

bool SweepService::parseRequest(const std::string& line, Request& req,
                                std::string& reply) {
  const auto fail = [&](const std::string& message) {
    std::string out = "{";
    if (!req.id.empty()) addStr(out, "id", req.id);
    if (!req.op.empty()) addStr(out, "op", req.op);
    addStr(out, "fate", "error");
    addStr(out, "error", message);
    reply = sealed(std::move(out));
    return false;
  };

  std::map<std::string, JsonToken> tokens;
  if (!parseFlatJsonLine(line, tokens)) {
    return fail("malformed request: not a flat one-line JSON object");
  }

  const auto strField = [&](const char* key, std::string& out,
                            std::string& error) {
    const auto it = tokens.find(key);
    if (it == tokens.end()) return true;
    if (!it->second.is_string) {
      error = std::string("field '") + key + "' must be a JSON string";
      return false;
    }
    out = it->second.text;
    return true;
  };
  const auto numField = [&](const char* key, u64 min, u64 max, u64& out,
                            std::string& error) {
    const auto it = tokens.find(key);
    if (it == tokens.end()) return true;
    const std::string& text = it->second.text;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (it->second.is_string || end == text.c_str() || *end != '\0' ||
        errno == ERANGE || text.find('-') != std::string::npos || v < min ||
        v > max) {
      error = std::string("field '") + key + "' ('" + text +
              "') must be an integer in [" + std::to_string(min) + ", " +
              std::to_string(max) + "]";
      return false;
    }
    out = static_cast<u64>(v);
    return true;
  };

  std::string error;
  // id and op first so even rejections echo the request's identity.
  if (!strField("id", req.id, error)) return fail(error);
  if (!strField("op", req.op, error)) return fail(error);
  if (req.op.empty()) {
    return fail("missing required field 'op' (one of eval, suite, "
                "recommend, health, stats, drain)");
  }

  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"eval",
       {"op", "id", "seed", "workload", "icache_kb", "ways", "line_bytes",
        "scheme", "wp_kb", "layout", "fault"}},
      {"suite",
       {"op", "id", "seed", "icache_kb", "ways", "line_bytes", "scheme",
        "wp_kb", "layout", "fault"}},
      {"recommend", {"op", "id", "seed", "workload", "layout"}},
      {"health", {"op", "id", "seed"}},
      {"stats", {"op", "id", "seed"}},
      {"drain", {"op", "id", "seed"}},
  };
  const auto allowed = kAllowed.find(req.op);
  if (allowed == kAllowed.end()) {
    return fail("unknown op '" + req.op + "' (expected eval, suite, "
                "recommend, health, stats or drain)");
  }
  for (const auto& [key, value] : tokens) {
    if (allowed->second.count(key) == 0) {
      return fail("unknown field '" + key + "' for op '" + req.op + "'");
    }
  }

  // An explicit seed must match the daemon's: silently serving another
  // seed's cells would poison the caller's experiment identity.
  u64 seed = suite_.runner().seed();
  if (!numField("seed", 0, ~0ull, seed, error)) return fail(error);
  if (seed != suite_.runner().seed()) {
    return fail("seed mismatch: this daemon runs seed " +
                std::to_string(suite_.runner().seed()) +
                "; start another instance for seed " + std::to_string(seed));
  }

  req.compute =
      req.op == "eval" || req.op == "suite" || req.op == "recommend";
  if (!req.compute) return true;

  if (!strField("workload", req.workload, error)) return fail(error);
  if (req.op != "suite") {
    if (req.workload.empty()) {
      return fail("op '" + req.op + "' requires field 'workload'");
    }
    bool known = false;
    for (const PreparedWorkload& p : suite_.prepared()) {
      if (p.name == req.workload) known = true;
    }
    if (!known) {
      std::string names;
      for (const PreparedWorkload& p : suite_.prepared()) {
        names += names.empty() ? "" : ", ";
        names += p.name;
      }
      return fail("unknown workload '" + req.workload +
                  "' (this daemon prepared: " + names + ")");
    }
  }

  if (req.op == "recommend") {
    req.spec.layout = layout::defaultStrategyName();
    if (!strField("layout", req.spec.layout, error)) return fail(error);
    try {
      (void)layout::resolveStrategy(req.spec.layout);
    } catch (const SimError& e) {
      return fail(std::string("field 'layout': ") + e.what());
    }
    return true;
  }

  // eval/suite: geometry, scheme and scheme knobs.
  u64 icache_kb = 32, ways = 32, line_bytes = 32;
  if (!numField("icache_kb", 1, 1 << 16, icache_kb, error)) {
    return fail(error);
  }
  if (!numField("ways", 1, 1 << 12, ways, error)) return fail(error);
  if (!numField("line_bytes", 4, 1 << 16, line_bytes, error)) {
    return fail(error);
  }
  req.icache.size_bytes = static_cast<u32>(icache_kb * 1024);
  req.icache.line_bytes = static_cast<u32>(line_bytes);
  req.icache.ways = static_cast<u32>(ways);
  try {
    req.icache.validate();
  } catch (const SimError& e) {
    return fail(e.what());
  }

  std::string scheme = cache::schemeName(cache::Scheme::kWayPlacement);
  if (!strField("scheme", scheme, error)) return fail(error);
  if (!parseSchemeName(scheme, req.spec.scheme)) {
    return fail("unknown scheme '" + scheme + "' (expected baseline, "
                "way-placement, way-memoization or way-prediction)");
  }

  const bool is_wp = req.spec.scheme == cache::Scheme::kWayPlacement;
  u64 wp_kb = 8;
  if (!numField("wp_kb", 0, 1 << 20, wp_kb, error)) return fail(error);
  std::string layout;
  if (!strField("layout", layout, error)) return fail(error);
  if (!is_wp && (tokens.count("wp_kb") != 0 || !layout.empty())) {
    return fail("fields 'wp_kb' and 'layout' are only valid for scheme "
                "'way-placement'");
  }
  if (is_wp) {
    req.spec.wp_area_bytes = static_cast<u32>(wp_kb * 1024);
    req.spec.layout =
        layout.empty() ? layout::defaultStrategyName() : layout;
    try {
      (void)layout::resolveStrategy(req.spec.layout);
    } catch (const SimError& e) {
      return fail(std::string("field 'layout': ") + e.what());
    }
  }

  std::string fault;
  if (!strField("fault", fault, error)) return fail(error);
  if (!fault.empty()) {
    if (req.spec.scheme == cache::Scheme::kBaseline) {
      return fail("field 'fault' is not valid for scheme 'baseline' (a "
                  "faulted baseline would poison every normalization)");
    }
    fault::CellFault kind = fault::CellFault::kNone;
    u32 failures = 1;
    if (!fault::parseCellFault(fault, "fault", kind, failures, error)) {
      return fail(error);
    }
    // Admission control against hostile faults: a crash/hang cell in a
    // non-isolating daemon would SIGKILL or wedge the service itself,
    // and a hang without a watchdog wedges a worker forever even under
    // isolation. Both are the client's problem to fix, not ours to die
    // of.
    const SupervisorConfig& sup = suite_.supervisor().config();
    if ((kind == fault::CellFault::kCrash ||
         kind == fault::CellFault::kHang) &&
        !sup.isolate) {
      return fail("fault '" + fault + "' requires process isolation; this "
                  "daemon runs without WP_ISOLATE=1 and would die with "
                  "the cell");
    }
    if (kind == fault::CellFault::kHang && sup.cell_timeout_ms == 0) {
      return fail("fault 'hang' requires a deadline (start the daemon "
                  "with WP_SERVE_DEADLINE_MS or WP_CELL_TIMEOUT_MS) or "
                  "the cell would wedge a worker forever");
    }
    req.spec.fault.cell_fault = kind;
    req.spec.fault.cell_fault_failures = failures;
  }
  return true;
}

std::string SweepService::handleLine(const std::string& line) {
  Request req;
  std::string reply;
  if (!parseRequest(line, req, reply)) {
    suite_.metrics().counter("serve.invalid").add();
    return reply;
  }
  return execute(req);
}

std::string SweepService::execute(const Request& req) {
  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  if (req.op == "eval") return runEval(req);
  if (req.op == "suite") return runSuiteRow(req);
  if (req.op == "recommend") return runRecommend(req);
  if (req.op == "health") return healthReply(req);
  if (req.op == "stats") return statsReply(req);
  WP_ENSURE(req.op == "drain", "unvalidated op reached execute()");
  latch_.trigger(SIGTERM);
  addStr(out, "fate", "ok");
  addBool(out, "draining", true);
  return sealed(std::move(out));
}

std::string SweepService::runEval(const Request& req) {
  const PreparedWorkload* prepared = nullptr;
  for (const PreparedWorkload& p : suite_.prepared()) {
    if (p.name == req.workload) prepared = &p;
  }
  WP_ENSURE(prepared != nullptr, "unvalidated workload reached runEval()");
  const std::string key =
      SweepExecutor::keyOf(req.workload, req.icache, req.spec);
  // Baseline first: a quarantined baseline denies the normalization for
  // every scheme sharing it, so its error is the one worth reporting
  // when both fail.
  const SweepExecutor::CellView base = suite_.tryRun(
      *prepared, req.icache, SchemeSpec::baselineFor(req.spec));
  const SweepExecutor::CellView cell =
      suite_.tryRun(*prepared, req.icache, req.spec);

  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  addStr(out, "key", key);
  if (base.quarantined || cell.quarantined) {
    const std::string& error =
        base.quarantined ? *base.error : *cell.error;
    addStr(out, "fate", isDeadlineError(error) ? "deadline" : "quarantined");
    addStr(out, "error", error);
    return sealed(std::move(out));
  }
  const Normalized n = normalize(*cell.result, *base.result, req.workload);
  addStr(out, "fate", "served");
  addDbl(out, "icache_energy", n.icache_energy);
  addDbl(out, "total_energy", n.total_energy);
  addDbl(out, "delay", n.delay);
  addDbl(out, "ed_product", n.ed_product);
  addNum(out, "cycles", cell.result->stats.cycles);
  addNum(out, "instructions", cell.result->stats.instructions);
  return sealed(std::move(out));
}

std::string SweepService::runSuiteRow(const Request& req) {
  // One checked average per headline metric; the first call prices the
  // whole row (every workload plus shared baselines) across the
  // executor's pool, the rest read the memo.
  const auto avg = [&](double Normalized::*metric) {
    return suite_.averageNormalizedChecked(
        req.icache, req.spec,
        [metric](const Normalized& n) { return n.*metric; });
  };
  const SweepExecutor::SuiteAverage icache = avg(&Normalized::icache_energy);
  const SweepExecutor::SuiteAverage total = avg(&Normalized::total_energy);
  const SweepExecutor::SuiteAverage delay = avg(&Normalized::delay);
  const SweepExecutor::SuiteAverage ed = avg(&Normalized::ed_product);

  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  if (icache.included == 0) {
    // The whole row quarantined: no mean exists to serve. Surface the
    // first quarantine (deterministic: keys sort identically everywhere)
    // so the client sees *why* instead of a row of QUAR.
    std::string error = "every cell of the row quarantined";
    for (const auto& q : suite_.quarantined()) {
      error = q.error;
      break;
    }
    addStr(out, "fate", isDeadlineError(error) ? "deadline" : "quarantined");
    addStr(out, "error", error);
    return sealed(std::move(out));
  }
  addStr(out, "fate", "served");
  addDbl(out, "icache_energy", icache.mean);
  addDbl(out, "total_energy", total.mean);
  addDbl(out, "delay", delay.mean);
  addDbl(out, "ed_product", ed.mean);
  addNum(out, "included", icache.included);
  addNum(out, "excluded", icache.excluded);
  return sealed(std::move(out));
}

std::string SweepService::runRecommend(const Request& req) {
  const PreparedWorkload* prepared = nullptr;
  for (const PreparedWorkload& p : suite_.prepared()) {
    if (p.name == req.workload) prepared = &p;
  }
  WP_ENSURE(prepared != nullptr,
            "unvalidated workload reached runRecommend()");
  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  try {
    const WpAreaRecommendation rec =
        recommendWpArea(*prepared, req.spec.layout);
    addStr(out, "fate", "served");
    addStr(out, "layout", req.spec.layout);
    addNum(out, "wp_bytes", rec.bytes);
    addDbl(out, "coverage", rec.coverage);
  } catch (const SimError& e) {
    addStr(out, "fate", "error");
    addStr(out, "error", e.what());
  }
  return sealed(std::move(out));
}

std::string SweepService::healthReply(const Request& req) {
  std::size_t depth = 0;
  unsigned in_flight = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    depth = queue_.size();
    in_flight = in_flight_;
  }
  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  addStr(out, "fate", "ok");
  addNum(out, "seed", suite_.runner().seed());
  addNum(out, "workloads", suite_.prepared().size());
  addNum(out, "jobs", suite_.jobs());
  addNum(out, "queue_depth", depth);
  addNum(out, "queue_limit", config_.queue_limit);
  addNum(out, "in_flight", in_flight);
  addNum(out, "deadline_ms", suite_.supervisor().config().cell_timeout_ms);
  addBool(out, "isolate", suite_.supervisor().config().isolate);
  addBool(out, "draining", latch_.requested());
  return sealed(std::move(out));
}

std::string SweepService::statsReply(const Request& req) {
  MetricsRegistry& m = suite_.metrics();
  std::string out = "{";
  if (!req.id.empty()) addStr(out, "id", req.id);
  addStr(out, "op", req.op);
  addStr(out, "fate", "ok");
  addNum(out, "cells_computed", m.counter("cells.computed").value());
  addNum(out, "cells_restored", m.counter("cells.restored").value());
  addNum(out, "cells_from_store", m.counter("cells.from_store").value());
  addNum(out, "cells_quarantined", m.counter("cells.quarantined").value());
  addNum(out, "memo_hits", m.counter("memo.hits").value());
  addNum(out, "store_hits", m.counter("store.hits").value());
  addNum(out, "store_misses", m.counter("store.misses").value());
  addNum(out, "requests_admitted", m.counter("serve.admitted").value());
  addNum(out, "requests_shed", m.counter("serve.shed").value());
  addNum(out, "requests_invalid", m.counter("serve.invalid").value());
  addNum(out, "requests_served", m.counter("serve.served").value());
  return sealed(std::move(out));
}

// ---- socket serving -------------------------------------------------

void SweepService::sendReply(const std::shared_ptr<Connection>& conn,
                             std::string reply) {
  reply += '\n';
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  if (!conn->open) return;
  // A peer that hung up before its reply is not an error worth acting
  // on: the poll loop reaps the connection on its next read.
  (void)support::sendAll(conn->fd, reply);
}

void SweepService::dispatchLine(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  Request parsed;
  std::string reply;
  if (!parseRequest(line, parsed, reply)) {
    suite_.metrics().counter("serve.invalid").add();
    sendReply(conn, std::move(reply));
    return;
  }
  auto req = std::make_shared<Request>(std::move(parsed));
  if (!req->compute) {
    // Control ops answer on the poll thread: health/stats/drain must
    // work instantly even when every worker is busy — that is the
    // point of a health endpoint.
    sendReply(conn, execute(*req));
    return;
  }
  std::string out = "{";
  if (!req->id.empty()) addStr(out, "id", req->id);
  addStr(out, "op", req->op);
  if (latch_.requested()) {
    addStr(out, "fate", "draining");
    addStr(out, "error", "service is draining; no new work admitted");
    sendReply(conn, sealed(std::move(out)));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() >= config_.queue_limit) {
      suite_.metrics().counter("serve.shed").add();
      addStr(out, "fate", "overloaded");
      addNum(out, "retry_after_ms", config_.retry_after_ms);
      sendReply(conn, sealed(std::move(out)));
      return;
    }
    queue_.push_back({conn, std::move(req)});
  }
  suite_.metrics().counter("serve.admitted").add();
  queue_cv_.notify_one();
}

void SweepService::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and nothing left to flush
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::string reply = execute(*job.req);
    sendReply(job.conn, std::move(reply));
    suite_.metrics().counter("serve.served").add();
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
  }
}

int SweepService::serve() {
  std::string error;
  int listen_fd = support::listenUnix(config_.socket_path, 64, error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "error: wp_serve: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "[wp_serve] listening on %s (seed %llu, %zu workloads, %u "
               "jobs, queue %u, deadline %llu ms%s)\n",
               config_.socket_path.c_str(),
               static_cast<unsigned long long>(suite_.runner().seed()),
               suite_.prepared().size(), suite_.jobs(), config_.queue_limit,
               static_cast<unsigned long long>(
                   suite_.supervisor().config().cell_timeout_ms),
               suite_.supervisor().config().isolate ? ", isolated" : "");

  const unsigned workers = std::max(1u, suite_.jobs());
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    pool.emplace_back([this] { workerLoop(); });
  }

  std::map<int, std::shared_ptr<Connection>> conns;
  const auto closeConn = [&](int fd) {
    const auto it = conns.find(fd);
    if (it == conns.end()) return;
    {
      std::lock_guard<std::mutex> lock(it->second->write_mutex);
      it->second->open = false;
      ::close(fd);
    }
    conns.erase(it);
  };

  bool listener_open = true;
  for (;;) {
    const bool draining = latch_.requested();
    if (draining && listener_open) {
      // Drain step 1: stop the world from finding us. Close + unlink
      // so new connects fail fast instead of queueing in the backlog.
      ::close(listen_fd);
      ::unlink(config_.socket_path.c_str());
      listener_open = false;
    }
    if (draining) {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.empty() && in_flight_ == 0) break;
    }

    std::vector<pollfd> fds;
    fds.push_back({latch_.pollFd(), POLLIN, 0});
    if (listener_open) fds.push_back({listen_fd, POLLIN, 0});
    for (const auto& [fd, conn] : conns) fds.push_back({fd, POLLIN, 0});
    // 100 ms cap: drain completion (workers emptying the queue) has no
    // fd to signal through, so the loop re-checks on a short tick.
    const int n = ::poll(fds.data(), fds.size(), 100);
    if (n < 0 && errno != EINTR) {
      std::fprintf(stderr, "error: wp_serve: poll(): %s\n",
                   std::strerror(errno));
      break;
    }
    if (n <= 0) continue;

    if (listener_open) {
      const pollfd& lp = fds[1];
      if ((lp.revents & POLLIN) != 0) {
        for (;;) {
          const int cfd = ::accept(listen_fd, nullptr, nullptr);
          if (cfd < 0) break;  // EAGAIN: backlog drained
          auto conn = std::make_shared<Connection>();
          conn->fd = cfd;
          conns.emplace(cfd, std::move(conn));
        }
      }
    }

    std::vector<int> dead;
    for (const pollfd& pfd : fds) {
      const auto it = conns.find(pfd.fd);
      if (it == conns.end()) continue;
      if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const std::shared_ptr<Connection>& conn = it->second;
      char chunk[4096];
      const ssize_t got = ::read(pfd.fd, chunk, sizeof chunk);
      if (got < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      if (got <= 0) {
        dead.push_back(pfd.fd);
        continue;
      }
      conn->inbuf.append(chunk, static_cast<std::size_t>(got));
      for (;;) {
        const std::size_t nl = conn->inbuf.find('\n');
        if (nl == std::string::npos) break;
        std::string line = conn->inbuf.substr(0, nl);
        conn->inbuf.erase(0, nl + 1);
        if (line.empty()) continue;
        dispatchLine(conn, line);
      }
      if (conn->inbuf.size() > kMaxLineBytes) {
        // Admission control at the byte level: an unbounded "line" is
        // disconnected, not buffered until the daemon OOMs.
        suite_.metrics().counter("serve.invalid").add();
        sendReply(conn,
                  "{\"fate\": \"error\", \"error\": \"request line exceeds " +
                      std::to_string(kMaxLineBytes) + " bytes\"}");
        dead.push_back(pfd.fd);
      }
    }
    for (const int fd : dead) closeConn(fd);
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& t : pool) t.join();
  while (!conns.empty()) closeConn(conns.begin()->first);
  if (listener_open) {
    ::close(listen_fd);
    ::unlink(config_.socket_path.c_str());
  }
  std::fprintf(stderr, "[wp_serve] drained: all admitted work flushed\n");
  return 0;
}

}  // namespace wp::driver
