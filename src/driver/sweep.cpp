#include "driver/sweep.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/ensure.hpp"
#include "support/stats.hpp"

namespace wp::driver {

unsigned jobsFromEnv() {
  const char* env = std::getenv("WP_JOBS");
  if (env == nullptr || *env == '\0') return ThreadPool::hardwareThreads();
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 0);
  if (end == env || *end != '\0' || errno == ERANGE || v > 4096) {
    std::fprintf(stderr,
                 "error: WP_JOBS='%s' is not a valid worker count "
                 "(expected an integer in [0, 4096]; 0 = one per "
                 "hardware thread)\n",
                 env);
    std::exit(1);
  }
  return v == 0 ? ThreadPool::hardwareThreads() : static_cast<unsigned>(v);
}

struct SweepExecutor::CellEntry {
  std::string workload;
  cache::CacheGeometry icache;
  SchemeSpec spec;
  std::once_flag once;
  /// Set after the once-body succeeds; writeJsonReport skips entries
  /// whose simulation never completed (e.g. it threw).
  std::atomic<bool> ready{false};
  RunResult result;
};

SweepExecutor::SweepExecutor(std::vector<std::string> workload_names,
                             energy::EnergyParams params, u64 seed,
                             unsigned jobs)
    : runner_(params, seed),
      pool_(jobs == 0 ? jobsFromEnv() : jobs),
      start_(std::chrono::steady_clock::now()) {
  std::fprintf(stderr,
               "preparing %zu workloads (profile + layout) on %u "
               "thread(s)...\n",
               workload_names.size(), pool_.threadCount());
  prepared_.resize(workload_names.size());
  for (std::size_t i = 0; i < workload_names.size(); ++i) {
    pool_.submit([this, &workload_names, i] {
      prepared_[i] = runner_.prepare(workload_names[i]);
    });
  }
  pool_.wait();
}

SweepExecutor::~SweepExecutor() = default;

std::string SweepExecutor::keyOf(const std::string& workload,
                                 const cache::CacheGeometry& g,
                                 const SchemeSpec& s) {
  std::ostringstream os;
  os << workload << '/' << g.size_bytes << '/' << g.ways << '/'
     << g.line_bytes << '/' << static_cast<int>(s.scheme) << '/'
     << s.wp_area_bytes << '/' << s.intraline_skip << '/'
     << s.wm_precise_invalidation << '/' << s.drowsy_window << '/'
     << static_cast<int>(s.layout);
  if (s.fault.runtimeEnabled()) {
    os << "/f" << s.fault.period << ':' << s.fault.seed << ':'
       << s.fault.flip_way_hint << s.fault.flip_tlb_wp_bit
       << s.fault.clear_tlb_wp_bits << s.fault.scramble_memo_links
       << s.fault.scramble_mru << s.fault.resize_storm;
  }
  return os.str();
}

SweepExecutor::CellEntry& SweepExecutor::ensureCell(
    const PreparedWorkload& p, const cache::CacheGeometry& icache,
    const SchemeSpec& spec) {
  const std::string key = keyOf(p.name, icache, spec);
  CellEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    std::unique_ptr<CellEntry>& slot = memo_[key];
    if (!slot) {
      slot = std::make_unique<CellEntry>();
      slot->workload = p.name;
      slot->icache = icache;
      slot->spec = spec;
    }
    entry = slot.get();
  }
  // Exactly-once compute; a second thread asking for the same cell
  // blocks here until the first finishes. On a throw the flag stays
  // unset, so a later call retries instead of returning garbage.
  std::call_once(entry->once, [&] {
    entry->result = runner_.run(p, icache, spec);
    entry->ready.store(true, std::memory_order_release);
  });
  return *entry;
}

void SweepExecutor::runAll(const std::vector<Cell>& cells) {
  for (const PreparedWorkload& p : prepared_) {
    for (const Cell& cell : cells) {
      pool_.submit([this, &p, cell] {
        // The baseline first: normalize() needs it for every cell of
        // this geometry, and ensureCell dedups it across schemes.
        ensureCell(p, cell.icache, SchemeSpec::baseline());
        ensureCell(p, cell.icache, cell.spec);
      });
    }
  }
  pool_.wait();
}

const RunResult& SweepExecutor::run(const PreparedWorkload& p,
                                    const cache::CacheGeometry& icache,
                                    const SchemeSpec& spec) {
  return ensureCell(p, icache, spec).result;
}

double SweepExecutor::averageNormalized(
    const cache::CacheGeometry& icache, const SchemeSpec& spec,
    const std::function<double(const Normalized&)>& metric) {
  runAll({Cell{icache, spec}});
  // Aggregate serially in preparation order: the memo contents are
  // deterministic per key, so the mean is bit-identical at any job
  // count even though summation order matters in floating point.
  Accumulator acc;
  for (const PreparedWorkload& p : prepared_) {
    const RunResult& base = run(p, icache, SchemeSpec::baseline());
    const RunResult& r = run(p, icache, spec);
    acc.add(metric(normalize(r, base, p.name)));
  }
  return acc.mean();
}

namespace {

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* jsonBool(bool b) { return b ? "true" : "false"; }

}  // namespace

void SweepExecutor::writeJsonReport(std::ostream& os) const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::lock_guard<std::mutex> lock(memo_mutex_);
  os.precision(17);
  os << "{\n"
     << "  \"seed\": " << runner_.seed() << ",\n"
     << "  \"jobs\": " << pool_.threadCount() << ",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"workloads\": " << prepared_.size() << ",\n"
     << "  \"cells\": [";
  bool first = true;
  for (const auto& [key, entry] : memo_) {
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    const std::string base_key =
        keyOf(entry->workload, entry->icache, SchemeSpec::baseline());
    if (key == base_key) continue;  // baselines normalize to 1 by definition
    const auto base = memo_.find(base_key);
    if (base == memo_.end() ||
        !base->second->ready.load(std::memory_order_acquire)) {
      continue;  // scheme priced without its baseline: nothing to normalize
    }
    const Normalized n =
        normalize(entry->result, base->second->result, entry->workload);
    os << (first ? "\n" : ",\n") << "    {\"workload\": \""
       << jsonEscape(entry->workload) << "\""
       << ", \"icache_size_bytes\": " << entry->icache.size_bytes
       << ", \"ways\": " << entry->icache.ways
       << ", \"line_bytes\": " << entry->icache.line_bytes
       << ", \"scheme\": \"" << cache::schemeName(entry->spec.scheme) << "\""
       << ", \"wp_area_bytes\": " << entry->spec.wp_area_bytes
       << ", \"intraline_skip\": " << jsonBool(entry->spec.intraline_skip)
       << ", \"wm_precise_invalidation\": "
       << jsonBool(entry->spec.wm_precise_invalidation)
       << ", \"drowsy_window\": " << entry->spec.drowsy_window
       << ", \"layout\": \"" << layout::policyName(entry->spec.layout) << "\""
       << ", \"fault\": " << jsonBool(entry->spec.fault.runtimeEnabled())
       << ", \"icache_energy\": " << n.icache_energy
       << ", \"total_energy\": " << n.total_energy
       << ", \"delay\": " << n.delay
       << ", \"ed_product\": " << n.ed_product
       << ", \"cycles\": " << entry->result.stats.cycles << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
}

void SweepExecutor::emitJsonIfRequested() const {
  const char* path = std::getenv("WP_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path);
  WP_ENSURE(out.good(), std::string("WP_JSON: cannot open '") + path +
                            "' for writing");
  writeJsonReport(out);
  std::fprintf(stderr, "wrote JSON report to %s\n", path);
}

}  // namespace wp::driver
