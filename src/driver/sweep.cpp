#include "driver/sweep.hpp"

#include "driver/worker.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/ensure.hpp"
#include "support/stats.hpp"

namespace wp::driver {

unsigned jobsFromEnv() {
  const char* env = std::getenv("WP_JOBS");
  if (env == nullptr || *env == '\0') return ThreadPool::hardwareThreads();
  errno = 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 0);
  if (end == env || *end != '\0' || errno == ERANGE || v > 4096) {
    std::fprintf(stderr,
                 "error: WP_JOBS='%s' is not a valid worker count "
                 "(expected an integer in [0, 4096]; 0 = one per "
                 "hardware thread)\n",
                 env);
    std::exit(1);
  }
  return v == 0 ? ThreadPool::hardwareThreads() : static_cast<unsigned>(v);
}

struct SweepExecutor::CellEntry {
  std::string workload;
  cache::CacheGeometry icache;
  SchemeSpec spec;
  std::once_flag once;
  /// Set after the once-body produced a usable result (computed or
  /// restored); writeJsonReport and aggregation skip entries without
  /// it. Mutually exclusive with `quarantined`.
  std::atomic<bool> ready{false};
  /// Set when every supervised attempt failed. The entry then carries
  /// `failure` instead of `result`, and stays quarantined for the
  /// executor's lifetime (a resumed sweep gets fresh attempts because
  /// quarantined cells are never journaled).
  std::atomic<bool> quarantined{false};
  RunResult result;
  /// Tagged error of the most recent failed attempt:
  /// "cell '<key>' (attempt i/n): <what>".
  std::string failure;
  /// Attempts spent on this cell (0 = restored from the checkpoint
  /// journal without running anything).
  unsigned attempts = 0;
  /// Quarantined-without-running because the shutdown latch fired.
  bool interrupted = false;
  bool restored = false;    ///< came from the WP_CHECKPOINT journal
  bool from_store = false;  ///< served from the WP_STORE result store
  /// Host wall-clock of the whole cell compute (simulate + price) and
  /// the pool worker that ran it (-1: computed on an external thread;
  /// -2: restored from the journal; -3: served from the result store —
  /// wall_seconds is then the original compute's).
  double wall_seconds = 0.0;
  int worker = -1;
};

SweepExecutor::SweepExecutor(std::vector<std::string> workload_names,
                             energy::EnergyParams params, u64 seed,
                             unsigned jobs, const SupervisorConfig* supervisor,
                             const ShutdownLatch* interrupt_latch)
    : runner_(params, seed),
      // Strict WP_* parsing runs before anything expensive: a bad knob
      // exits 1 here, long before the first workload is prepared.
      supervisor_(supervisor != nullptr ? *supervisor
                                        : SupervisorConfig::fromEnv(),
                  seed),
      interrupt_latch_(interrupt_latch),
      pool_(jobs == 0 ? jobsFromEnv() : jobs),
      start_(std::chrono::steady_clock::now()) {
  if (const char* trace_path = std::getenv("WP_TRACE");
      trace_path != nullptr && *trace_path != '\0') {
    trace_ = std::make_unique<TraceWriter>(trace_path);
    trace_->write(TraceEvent("sweep_start")
                      .num("seed", runner_.seed())
                      .num("jobs", pool_.threadCount())
                      .num("retries", supervisor_.config().retries)
                      .num("cell_timeout_ms",
                           supervisor_.config().cell_timeout_ms)
                      .num("workloads",
                           static_cast<u64>(workload_names.size())));
  }
  if (const char* ckpt = std::getenv("WP_CHECKPOINT");
      ckpt != nullptr && *ckpt != '\0') {
    // Replay before opening for append: verified records seed the memo
    // (inside ensureCell, against the freshly prepared images); the
    // writer's open failure is fatal before any work happens.
    restored_ = readJournal(ckpt, runner_.seed());
    journal_ = std::make_unique<DurableJsonlWriter>(ckpt, "WP_CHECKPOINT");
    if (!restored_.had_header) journal_->append(renderHeader(runner_.seed()));
    if (restored_.lines_skipped > 0) {
      metrics_.counter("checkpoint.lines_skipped")
          .add(restored_.lines_skipped);
    }
    if (restored_.records_rejected > 0) {
      metrics_.counter("checkpoint.rejected").add(restored_.records_rejected);
    }
    std::fprintf(stderr,
                 "[wayplace] checkpoint journal '%s': %zu cell record(s) "
                 "replayed, %llu line(s) skipped, %llu record(s) rejected\n",
                 ckpt, restored_.records.size(),
                 static_cast<unsigned long long>(restored_.lines_skipped),
                 static_cast<unsigned long long>(restored_.records_rejected));
    if (trace_) {
      trace_->write(TraceEvent("checkpoint_replay")
                        .str("path", ckpt)
                        .num("records",
                             static_cast<u64>(restored_.records.size()))
                        .num("lines_skipped", restored_.lines_skipped)
                        .num("records_rejected", restored_.records_rejected));
    }
  }
  if (auto store_config = ResultStore::fromEnv()) {
    store_ = std::make_unique<ResultStore>(*store_config, runner_.seed(),
                                           metrics_, trace_.get());
    if (!store_->degraded()) {
      std::fprintf(stderr, "[wayplace] result store: %s (lease timeout "
                   "%llu ms)\n",
                   store_->dir().c_str(),
                   static_cast<unsigned long long>(
                       store_config->lease_timeout_ms));
    }
    if (trace_) {
      trace_->write(TraceEvent("store_open")
                        .str("dir", store_->dir())
                        .num("lease_timeout_ms",
                             store_config->lease_timeout_ms)
                        .boolean("degraded", store_->degraded()));
    }
  }
  std::fprintf(stderr,
               "preparing %zu workloads (profile + layout) on %u "
               "thread(s)...\n",
               workload_names.size(), pool_.threadCount());
  prepared_.resize(workload_names.size());
  for (std::size_t i = 0; i < workload_names.size(); ++i) {
    pool_.submit([this, &workload_names, i] {
      prepared_[i] = runner_.prepare(workload_names[i]);
      if (trace_) {
        const PreparedWorkload& p = prepared_[i];
        trace_->write(TraceEvent("prepare")
                          .str("workload", p.name)
                          .num("worker", ThreadPool::currentWorkerIndex())
                          .num("build_seconds", p.phases.build_seconds)
                          .num("profile_seconds", p.phases.profile_seconds)
                          .num("layout_seconds", p.phases.layout_seconds)
                          .boolean("profile_ok", p.profile_ok));
      }
    });
  }
  pool_.wait();
}

SweepExecutor::~SweepExecutor() {
  if (trace_) {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    trace_->write(
        TraceEvent("sweep_end")
            .num("cells_computed", metrics_.counter("cells.computed").value())
            .num("cells_restored", metrics_.counter("cells.restored").value())
            .num("cells_quarantined",
                 metrics_.counter("cells.quarantined").value())
            .num("memo_hits", metrics_.counter("memo.hits").value())
            .num("wall_seconds", wall));
  }
}

std::string SweepExecutor::keyOf(const std::string& workload,
                                 const cache::CacheGeometry& g,
                                 const SchemeSpec& s) {
  // WP_ENGINE is deliberately absent: both engines produce identical
  // results (the equivalence suite enforces it), so a journal or result
  // store recorded under one engine legitimately serves the other.
  std::ostringstream os;
  os << workload << '/' << g.size_bytes << '/' << g.ways << '/'
     << g.line_bytes << '/' << static_cast<int>(s.scheme) << '/'
     << s.wp_area_bytes << '/' << s.intraline_skip << '/'
     << s.wm_precise_invalidation << '/' << s.drowsy_window << '/'
     // Canonicalized so an alias spelling (or any equivalent spelling
     // of a parameterized spec) memoizes to the same cell, and so every
     // tuned param value is key material — a journal or store record
     // can never serve a differently-tuned cell. Default-param specs
     // canonicalize to the bare name, keeping pre-parameterization
     // journals and stores valid.
     << layout::resolveStrategy(s.layout).canonical();
  if (s.fault.runtimeEnabled()) {
    os << "/f" << s.fault.period << ':' << s.fault.seed << ':'
       << s.fault.flip_way_hint << s.fault.flip_tlb_wp_bit
       << s.fault.clear_tlb_wp_bits << s.fault.scramble_memo_links
       << s.fault.scramble_mru << s.fault.resize_storm;
  }
  if (s.fault.cellFaultEnabled()) {
    // Harness-level cell faults change a cell's *fate* (fail, heal,
    // quarantine), so they are distinct memo cells even though a healed
    // run's payload matches the clean one.
    os << "/c" << static_cast<int>(s.fault.cell_fault) << ':'
       << s.fault.cell_fault_failures;
  }
  if (s.corunEnabled()) {
    // Co-run cells are a different simulation even at the same scheme:
    // the quantum, the TLB switch policy and the partner set all change
    // the shared fetch path's history, so they are all key material.
    // Solo cells keep their exact pre-multiprog keys (no suffix), so
    // existing journals and result stores stay valid.
    os << "/m" << s.corun_quantum << ':' << static_cast<int>(s.corun_tlb)
       << ':' << s.corun_partners;
  }
  return os.str();
}

void SweepExecutor::computeCell(CellEntry& entry, const std::string& key,
                                const PreparedWorkload& p,
                                const cache::CacheGeometry& icache,
                                const SchemeSpec& spec) {
  const int worker = ThreadPool::currentWorkerIndex();

  // Interrupt check before any work (and before touching the store, so
  // a draining bench never takes a lease it won't use): a latched
  // shutdown quarantines every not-yet-started cell quietly — no retry
  // ladder, no per-cell stderr line — so a SIGTERM'd sweep reaches its
  // flush-and-exit path in one pool drain instead of minutes later.
  if (interrupt_latch_ != nullptr && interrupt_latch_->requested()) {
    entry.failure = "cell '" + key +
                    "': not started — shutdown requested before compute";
    entry.interrupted = true;
    entry.quarantined.store(true, std::memory_order_release);
    metrics_.counter("cells.interrupted").add();
    if (trace_) {
      trace_->write(TraceEvent("cell_interrupted").str("key", key));
    }
    return;
  }

  // Co-run cells resolve their partner group up front (the primary
  // first, then every corun_partners name against the prepared suite)
  // and fold every participant's image digest, so a journal or store
  // record is tied to *all* the code the cell simulates, not just the
  // primary's. An unresolvable partner is a deterministic cell failure:
  // it rides the normal retry/quarantine ladder with the key attached
  // instead of aborting the sweep.
  std::vector<const PreparedWorkload*> group;
  std::string group_error;
  u64 image_digest = 0;
  if (spec.corunEnabled()) {
    group.push_back(&p);
    std::string names = spec.corun_partners;
    while (!names.empty() && group_error.empty()) {
      const std::size_t comma = names.find(',');
      const std::string name = names.substr(0, comma);
      names = comma == std::string::npos ? "" : names.substr(comma + 1);
      if (name.empty()) {
        group_error = "empty co-run partner name in '" +
                      spec.corun_partners + "'";
        break;
      }
      const PreparedWorkload* partner = nullptr;
      for (const PreparedWorkload& cand : prepared_) {
        if (cand.name == name) {
          partner = &cand;
          break;
        }
      }
      if (partner == nullptr) {
        group_error = "co-run partner '" + name +
                      "' is not a prepared workload of this sweep";
        break;
      }
      group.push_back(partner);
    }
    if (group_error.empty()) {
      u64 h = 0xcbf29ce484222325ULL;
      for (const PreparedWorkload* pw : group) {
        h ^= imageDigest(pw->imageFor(spec.layout));
        h *= 0x100000001b3ULL;
      }
      image_digest = h;
    }
  } else {
    image_digest = imageDigest(p.imageFor(spec.layout));
  }

  // Result store first: it coordinates across *processes*, so even the
  // lookup participates in the lease protocol — on a miss this cell now
  // holds its compute lease (released on every exit path below).
  ResultStore::Lease lease;
  if (store_) {
    ResultStore::Outcome outcome = store_->open(key, image_digest);
    if (outcome.record) {
      entry.result = std::move(outcome.record->result);
      entry.wall_seconds = outcome.record->wall_seconds;
      entry.worker = -3;
      entry.from_store = true;
      entry.attempts = 0;
      metrics_.counter("cells.from_store").add();
      if (trace_) {
        trace_->write(TraceEvent("cell_from_store")
                          .str("key", key)
                          .num("worker", worker));
      }
      // A store hit still journals: a later resume under WP_CHECKPOINT
      // alone must not depend on the store staying reachable.
      if (journal_) {
        journal_->append(renderRecord(key, image_digest, entry.result,
                                      entry.wall_seconds));
      }
      entry.ready.store(true, std::memory_order_release);
      return;
    }
    lease = std::move(outcome.lease);
  }

  // Journal restore next: a record that survives both digests stands
  // in for the compute. The image digest ties the record to the bytes
  // this sweep would actually simulate — a journal recorded under other
  // code, another layout pipeline or other inputs recomputes instead.
  if (!restored_.records.empty()) {
    const auto it = restored_.records.find(key);
    if (it != restored_.records.end()) {
      if (it->second.image_digest == image_digest) {
        entry.result = it->second.result;
        entry.wall_seconds = it->second.wall_seconds;
        entry.worker = -2;
        entry.restored = true;
        entry.attempts = 0;
        metrics_.counter("cells.restored").add();
        if (trace_) {
          trace_->write(TraceEvent("cell_restored")
                            .str("key", key)
                            .num("worker", worker));
        }
        // Publish the journal's answer so the next run hits the store.
        if (store_) {
          store_->put(lease, key, image_digest, entry.result,
                      entry.wall_seconds);
        }
        entry.ready.store(true, std::memory_order_release);
        return;
      }
      metrics_.counter("checkpoint.rejected").add();
      if (trace_) {
        trace_->write(TraceEvent("checkpoint_image_mismatch")
                          .str("key", key));
      }
    }
  }

  const unsigned max_attempts = supervisor_.maxAttempts();
  const bool is_baseline = spec.scheme == cache::Scheme::kBaseline;
  const bool isolate = supervisor_.config().isolate;
  for (unsigned attempt = 1; attempt <= max_attempts; ++attempt) {
    entry.attempts = attempt;
    try {
      // The whole attempt body — fault injection, watchdog, simulate,
      // price — so the isolated path runs exactly what the in-process
      // path runs, just inside a forked worker. Spec-scoped faults
      // first (unit tests target one cell), then the WP_CELL_FAULT
      // knob, which spares baselines so a persistent fault degrades
      // cells rather than erasing every normalization denominator.
      const auto attemptBody = [&]() -> RunResult {
        if (!group_error.empty()) throw SimError(group_error);
        if (spec.fault.cellFaultEnabled()) {
          fault::injectCellFault(spec.fault, attempt - 1);  // 0-based
        }
        if (!is_baseline) supervisor_.injectConfigCellFault(attempt - 1);
        const sim::BudgetHook watchdog = supervisor_.watchdogFor(key);
        if (spec.corunEnabled()) {
          return runner_.runCoRun(group, icache, spec,
                                  workloads::InputSize::kLarge,
                                  watchdog.check ? &watchdog : nullptr);
        }
        return runner_.run(p, icache, spec, workloads::InputSize::kLarge,
                           watchdog.check ? &watchdog : nullptr);
      };
      if (trace_) {
        trace_->write(TraceEvent("cell_start")
                          .str("key", key)
                          .num("attempt", attempt)
                          .num("worker", worker)
                          .boolean("isolated", isolate));
      }
      ScopedTimer span(metrics_.timer("cell.wall"));
      if (isolate) {
        // Crash domain = this attempt of this cell. Every way the
        // worker can die comes back as a WorkerResult error, rethrown
        // here so crashes, hangs and SimErrors all ride the same
        // retry/backoff/quarantine ladder below.
        WorkerResult wr =
            runCellInWorker(key, image_digest,
                            supervisor_.config().cell_timeout_ms,
                            attemptBody);
        if (!wr.ok) throw SimError(wr.error);
        entry.result = std::move(wr.result);
        metrics_.counter("cells.isolated").add();
        // The child's simulator counters died with the child; fold the
        // guest-side activity it reported back into the runner registry
        // so MIPS accounting survives isolation.
        MetricsRegistry& rm = runner_.metrics();
        rm.counter("guest.instructions").add(entry.result.stats.instructions);
        rm.timer("phase.simulate")
            .record(std::chrono::nanoseconds(static_cast<u64>(
                entry.result.simulate_seconds * 1e9)));
        rm.timer("phase.price")
            .record(std::chrono::nanoseconds(
                static_cast<u64>(entry.result.price_seconds * 1e9)));
      } else {
        entry.result = attemptBody();
      }
      entry.wall_seconds = span.stop();
      entry.worker = worker;
      metrics_.counter("cells.computed").add();
      if (attempt > 1) metrics_.counter("cells.healed").add();
      if (trace_) {
        TraceEvent ev("cell_end");
        ev.str("key", key)
            .num("attempt", attempt)
            .num("worker", worker)
            .num("wall_seconds", entry.wall_seconds)
            .num("simulate_seconds", entry.result.simulate_seconds)
            .num("price_seconds", entry.result.price_seconds);
        // Omitted (not 0) when the simulate span rounded to 0 s.
        if (const auto mips = entry.result.guestMips()) {
          ev.num("guest_mips", *mips);
        }
        ev.num("instructions", entry.result.stats.instructions)
            .num("cycles", entry.result.stats.cycles)
            .str("layout", entry.result.layout_strategy)
            .num("layout_chains", entry.result.layout_chains)
            .num("layout_repairs", entry.result.layout_repairs)
            .num("wp_area_coverage", entry.result.wp_area_coverage);
        trace_->write(ev);
      }
      if (journal_) {
        journal_->append(renderRecord(key, image_digest, entry.result,
                                      entry.wall_seconds));
      }
      if (store_) {
        store_->put(lease, key, image_digest, entry.result,
                    entry.wall_seconds);
      }
      entry.ready.store(true, std::memory_order_release);
      return;
    } catch (const SimError& e) {
      // Satellite of the supervision layer: no SimError leaves a cell
      // without its full identity attached.
      entry.failure = "cell '" + key + "' (attempt " +
                      std::to_string(attempt) + "/" +
                      std::to_string(max_attempts) + "): " + e.what();
      metrics_.counter("cells.failed_attempts").add();
      if (trace_) {
        trace_->write(TraceEvent("cell_failure")
                          .str("key", key)
                          .num("attempt", attempt)
                          .num("worker", worker)
                          .str("error", e.what()));
      }
      if (attempt < max_attempts) {
        const u64 slots = supervisor_.backoff(key, attempt);
        if (trace_) {
          trace_->write(TraceEvent("cell_retry")
                            .str("key", key)
                            .num("attempt", attempt)
                            .num("backoff_slots", slots));
        }
      }
    }
  }

  // Quarantine releases the lease (via Lease's destructor) without
  // publishing: another process gets a fresh claim at this cell, and a
  // resumed sweep gets fresh attempts.
  entry.quarantined.store(true, std::memory_order_release);
  metrics_.counter("cells.quarantined").add();
  std::fprintf(stderr,
               "[wayplace] QUARANTINED cell '%s' after %u attempt(s): %s\n",
               key.c_str(), entry.attempts, entry.failure.c_str());
  if (trace_) {
    trace_->write(TraceEvent("cell_quarantined")
                      .str("key", key)
                      .num("attempts", entry.attempts)
                      .str("error", entry.failure));
  }
}

SweepExecutor::CellEntry& SweepExecutor::ensureCell(
    const PreparedWorkload& p, const cache::CacheGeometry& icache,
    const SchemeSpec& spec) {
  const std::string key = keyOf(p.name, icache, spec);
  CellEntry* entry = nullptr;
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    std::unique_ptr<CellEntry>& slot = memo_[key];
    if (!slot) {
      slot = std::make_unique<CellEntry>();
      slot->workload = p.name;
      slot->icache = icache;
      slot->spec = spec;
    }
    entry = slot.get();
  }
  // Exactly-once supervised compute; a second thread asking for the
  // same cell blocks here until the first settles the cell's fate
  // (ready or quarantined — the once-body itself never throws).
  bool settled_here = false;
  std::call_once(entry->once, [&] {
    computeCell(*entry, key, p, icache, spec);
    settled_here = true;
  });
  if (!settled_here) {
    // Either a true memo hit or a wait on another thread's compute —
    // both mean this request cost (almost) nothing.
    metrics_.counter("memo.hits").add();
    if (trace_) {
      trace_->write(TraceEvent("memo_hit").str("key", key).num(
          "worker", ThreadPool::currentWorkerIndex()));
    }
  }
  return *entry;
}

void SweepExecutor::runAll(const std::vector<Cell>& cells) {
  for (const PreparedWorkload& p : prepared_) {
    for (const Cell& cell : cells) {
      pool_.submit([this, &p, cell] {
        // The baseline first: normalize() needs it for every cell of
        // this geometry, and ensureCell dedups it across schemes. A
        // co-run cell normalizes against the *co-run* baseline (same
        // quantum/policy/partners, baseline scheme), so the comparison
        // isolates the scheme, not the multiprogramming.
        ensureCell(p, cell.icache, SchemeSpec::baselineFor(cell.spec));
        ensureCell(p, cell.icache, cell.spec);
      });
    }
  }
  pool_.wait();
}

const RunResult& SweepExecutor::run(const PreparedWorkload& p,
                                    const cache::CacheGeometry& icache,
                                    const SchemeSpec& spec) {
  CellEntry& entry = ensureCell(p, icache, spec);
  if (entry.quarantined.load(std::memory_order_acquire)) {
    // The cell key travels with the error: a caller that cannot handle
    // degradation at least reports exactly which (workload, geometry,
    // scheme) died, not a bare simulator message.
    throw SimError("quarantined " + entry.failure);
  }
  return entry.result;
}

SweepExecutor::CellView SweepExecutor::tryRun(
    const PreparedWorkload& p, const cache::CacheGeometry& icache,
    const SchemeSpec& spec) {
  CellEntry& entry = ensureCell(p, icache, spec);
  CellView view;
  view.attempts = entry.attempts;
  if (entry.quarantined.load(std::memory_order_acquire)) {
    view.quarantined = true;
    view.error = &entry.failure;
  } else {
    view.result = &entry.result;
  }
  return view;
}

double SweepExecutor::averageNormalized(
    const cache::CacheGeometry& icache, const SchemeSpec& spec,
    const std::function<double(const Normalized&)>& metric) {
  return averageNormalizedChecked(icache, spec, metric).mean;
}

SweepExecutor::SuiteAverage SweepExecutor::averageNormalizedChecked(
    const cache::CacheGeometry& icache, const SchemeSpec& spec,
    const std::function<double(const Normalized&)>& metric) {
  runAll({Cell{icache, spec}});
  // Aggregate serially in preparation order: the memo contents are
  // deterministic per key, so the mean is bit-identical at any job
  // count even though summation order matters in floating point.
  Accumulator acc;
  SuiteAverage out;
  for (const PreparedWorkload& p : prepared_) {
    const CellView base = tryRun(p, icache, SchemeSpec::baselineFor(spec));
    const CellView r = tryRun(p, icache, spec);
    if (base.quarantined || r.quarantined) {
      ++out.excluded;
      continue;
    }
    acc.add(metric(normalize(*r.result, *base.result, p.name)));
    ++out.included;
  }
  if (out.included > 0) out.mean = acc.mean();
  return out;
}

std::vector<SweepExecutor::QuarantinedCell> SweepExecutor::quarantined()
    const {
  std::lock_guard<std::mutex> lock(memo_mutex_);
  std::vector<QuarantinedCell> out;
  for (const auto& [key, entry] : memo_) {
    if (!entry->quarantined.load(std::memory_order_acquire)) continue;
    out.push_back(QuarantinedCell{key, entry->failure, entry->attempts,
                                  entry->interrupted});
  }
  return out;  // map order: deterministic at any job count
}

namespace {

// jsonEscape comes from support/metrics.hpp.
const char* jsonBool(bool b) { return b ? "true" : "false"; }

}  // namespace

void SweepExecutor::writeJsonReport(std::ostream& os) const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  MetricsRegistry& rm = runner_.metrics();
  const double simulate_total = rm.timer("phase.simulate").seconds();
  const u64 guest_insts = rm.counter("guest.instructions").value();
  std::lock_guard<std::mutex> lock(memo_mutex_);
  // The throughput aggregate sums only cells whose simulate span was
  // measurable: a fast cell rounding to 0 s carries no rate information,
  // and folding its instructions over zero seconds would poison the
  // quotient. Unmeasurable cells are counted, not averaged.
  u64 measurable_insts = 0;
  double measurable_seconds = 0.0;
  u64 mips_measurable = 0;
  u64 mips_unmeasurable = 0;
  for (const auto& [key, entry] : memo_) {
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    if (entry->result.simulate_seconds > 0.0) {
      measurable_insts += entry->result.stats.instructions;
      measurable_seconds += entry->result.simulate_seconds;
      ++mips_measurable;
    } else {
      ++mips_unmeasurable;
    }
  }
  os.precision(17);
  os << "{\n"
     << "  \"seed\": " << runner_.seed() << ",\n"
     << "  \"jobs\": " << pool_.threadCount() << ",\n"
     << "  \"engine\": \"" << sim::engineName(runner_.engine()) << "\",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"workloads\": " << prepared_.size() << ",\n"
     << "  \"host\": {\"guest_instructions\": " << guest_insts
     << ", \"simulate_seconds\": " << simulate_total << ", \"guest_mips\": ";
  if (measurable_seconds > 0.0) {
    os << static_cast<double>(measurable_insts) / measurable_seconds / 1e6;
  } else {
    os << "null";
  }
  os << ", \"mips_measurable_cells\": " << mips_measurable
     << ", \"mips_unmeasurable_cells\": " << mips_unmeasurable
     << ", \"cells_computed\": " << metrics_.counter("cells.computed").value()
     << ", \"cells_restored\": " << metrics_.counter("cells.restored").value()
     << ", \"cells_from_store\": "
     << metrics_.counter("cells.from_store").value()
     << ", \"cells_isolated\": " << metrics_.counter("cells.isolated").value()
     << ", \"cells_healed\": " << metrics_.counter("cells.healed").value()
     << ", \"cells_quarantined\": "
     << metrics_.counter("cells.quarantined").value()
     << ", \"failed_attempts\": "
     << metrics_.counter("cells.failed_attempts").value()
     << ", \"memo_hits\": " << metrics_.counter("memo.hits").value()
     << ", \"store\": {\"enabled\": " << jsonBool(store_ != nullptr)
     << ", \"degraded\": "
     << jsonBool(store_ != nullptr && store_->degraded())
     << ", \"hits\": " << metrics_.counter("store.hits").value()
     << ", \"misses\": " << metrics_.counter("store.misses").value()
     << ", \"rejected\": " << metrics_.counter("store.rejected").value()
     << ", \"records_written\": "
     << metrics_.counter("store.records_written").value()
     << ", \"lease_waits\": " << metrics_.counter("store.lease_waits").value()
     << ", \"leases_reclaimed\": "
     << metrics_.counter("store.leases_reclaimed").value() << "}"
     << ", \"phase_seconds\": {\"build\": " << rm.timer("phase.build").seconds()
     << ", \"profile\": " << rm.timer("phase.profile").seconds()
     << ", \"layout\": " << rm.timer("phase.layout").seconds()
     << ", \"simulate\": " << simulate_total
     << ", \"price\": " << rm.timer("phase.price").seconds() << "}},\n"
     << "  \"prepare\": [";
  for (std::size_t i = 0; i < prepared_.size(); ++i) {
    const PreparedWorkload& p = prepared_[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"workload\": \""
       << jsonEscape(p.name) << "\""
       << ", \"build_seconds\": " << p.phases.build_seconds
       << ", \"profile_seconds\": " << p.phases.profile_seconds
       << ", \"layout_seconds\": " << p.phases.layout_seconds
       << ", \"profile_instructions\": " << p.profile_instructions
       << ", \"profile_ok\": " << jsonBool(p.profile_ok) << "}";
  }
  os << "\n  ],\n"
     << "  \"quarantined\": [";
  bool first = true;
  for (const auto& [key, entry] : memo_) {
    if (!entry->quarantined.load(std::memory_order_acquire)) continue;
    os << (first ? "\n" : ",\n") << "    {\"key\": \"" << jsonEscape(key)
       << "\", \"attempts\": " << entry->attempts << ", \"interrupted\": "
       << jsonBool(entry->interrupted) << ", \"error\": \""
       << jsonEscape(entry->failure) << "\"}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n"
     << "  \"cells\": [";
  first = true;
  for (const auto& [key, entry] : memo_) {
    if (!entry->ready.load(std::memory_order_acquire)) continue;
    const std::string base_key =
        keyOf(entry->workload, entry->icache,
              SchemeSpec::baselineFor(entry->spec));
    if (key == base_key) continue;  // baselines normalize to 1 by definition
    const auto base = memo_.find(base_key);
    if (base == memo_.end() ||
        !base->second->ready.load(std::memory_order_acquire)) {
      continue;  // scheme priced without its baseline: nothing to normalize
    }
    const Normalized n =
        normalize(entry->result, base->second->result, entry->workload);
    os << (first ? "\n" : ",\n") << "    {\"workload\": \""
       << jsonEscape(entry->workload) << "\""
       << ", \"icache_size_bytes\": " << entry->icache.size_bytes
       << ", \"ways\": " << entry->icache.ways
       << ", \"line_bytes\": " << entry->icache.line_bytes
       << ", \"scheme\": \"" << cache::schemeName(entry->spec.scheme) << "\""
       << ", \"wp_area_bytes\": " << entry->spec.wp_area_bytes
       << ", \"intraline_skip\": " << jsonBool(entry->spec.intraline_skip)
       << ", \"wm_precise_invalidation\": "
       << jsonBool(entry->spec.wm_precise_invalidation)
       << ", \"drowsy_window\": " << entry->spec.drowsy_window
       // The layout that actually ran (profile fallback makes this
       // "original" even when the spec asked for a profile-driven one).
       << ", \"layout\": \"" << jsonEscape(entry->result.layout_strategy)
       << "\""
       << ", \"layout_chains\": " << entry->result.layout_chains
       << ", \"layout_repairs\": " << entry->result.layout_repairs
       << ", \"wp_area_coverage\": " << entry->result.wp_area_coverage
       << ", \"fault\": " << jsonBool(entry->spec.fault.runtimeEnabled());
    // Only co-run cells carry the multiprog fields, so solo reports
    // keep their exact schema.
    if (entry->spec.corunEnabled()) {
      os << ", \"corun_quantum\": " << entry->spec.corun_quantum
         << ", \"corun_tlb\": \""
         << cache::tlbSwitchPolicyName(entry->spec.corun_tlb) << "\""
         << ", \"corun_partners\": \""
         << jsonEscape(entry->spec.corun_partners) << "\"";
    }
    os << ", \"icache_energy\": " << n.icache_energy
       << ", \"total_energy\": " << n.total_energy
       << ", \"delay\": " << n.delay
       << ", \"ed_product\": " << n.ed_product
       << ", \"cycles\": " << entry->result.stats.cycles
       << ", \"instructions\": " << entry->result.stats.instructions
       << ", \"attempts\": " << entry->attempts
       << ", \"restored\": " << jsonBool(entry->restored)
       << ", \"from_store\": " << jsonBool(entry->from_store)
       << ", \"wall_seconds\": " << entry->wall_seconds
       << ", \"simulate_seconds\": " << entry->result.simulate_seconds
       << ", \"price_seconds\": " << entry->result.price_seconds
       << ", \"guest_mips\": ";
    if (const auto mips = entry->result.guestMips()) {
      os << *mips;
    } else {
      os << "null";  // span rounded to 0 s: not measurable, not 0 MIPS
    }
    os << ", \"worker\": " << entry->worker << "}";
    first = false;
  }
  os << "\n  ]";
  // Bench-registered extra sections (deterministic: map order), e.g.
  // the autotune report. Values are pre-rendered JSON.
  for (const auto& [key, value] : extra_json_) {
    os << ",\n  \"" << jsonEscape(key) << "\": " << value;
  }
  os << "\n}\n";
}

void SweepExecutor::addJsonSection(const std::string& key,
                                   std::string rendered_json) {
  const std::lock_guard<std::mutex> lock(memo_mutex_);
  extra_json_[key] = std::move(rendered_json);
}

void SweepExecutor::emitJsonIfRequested() const {
  const char* path = std::getenv("WP_JSON");
  if (path == nullptr || *path == '\0') return;
  // A requested report that silently vanishes is a harness correctness
  // bug: fail loudly on open *and* on write/close, matching the strict
  // WP_* environment parsing policy (exit 1 with a message, no partial
  // artifact pretending to be a result).
  errno = 0;
  std::ofstream out(path);
  if (!out.good()) dieOnIoError("WP_JSON", path, "cannot open report file");
  writeJsonReport(out);
  out.flush();
  if (!out.good()) dieOnIoError("WP_JSON", path, "write failed on");
  if (trace_) trace_->write(TraceEvent("json_report").str("path", path));
  std::fprintf(stderr, "wrote JSON report to %s\n", path);
}

void SweepExecutor::printSummary(std::ostream& os) const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  MetricsRegistry& rm = runner_.metrics();
  const double simulate = rm.timer("phase.simulate").seconds();
  const u64 insts = rm.counter("guest.instructions").value();
  // "n/a", not 0.0: an unmeasurably short simulate span has no rate.
  char mips[32] = "n/a MIPS";
  if (simulate > 0.0) {
    std::snprintf(mips, sizeof mips, "%.1f MIPS",
                  static_cast<double>(insts) / simulate / 1e6);
  }
  const u64 restored = metrics_.counter("cells.restored").value();
  const u64 quar = metrics_.counter("cells.quarantined").value();
  char extras[256] = "";
  std::size_t extras_len = 0;
  if (restored > 0 || quar > 0) {
    extras_len += static_cast<std::size_t>(std::snprintf(
        extras + extras_len, sizeof extras - extras_len,
        ", %llu restored, %llu quarantined",
        static_cast<unsigned long long>(restored),
        static_cast<unsigned long long>(quar)));
  }
  if (store_) {
    // store.hits/store.misses/store.rejected: the warm-store smoke
    // greps this summary, so the three counters always print together.
    std::snprintf(extras + extras_len, sizeof extras - extras_len,
                  ", store %llu hit(s)/%llu miss(es)/%llu rejected%s",
                  static_cast<unsigned long long>(
                      metrics_.counter("store.hits").value()),
                  static_cast<unsigned long long>(
                      metrics_.counter("store.misses").value()),
                  static_cast<unsigned long long>(
                      metrics_.counter("store.rejected").value()),
                  store_->degraded() ? " [DEGRADED]" : "");
  }
  char line[640];
  std::snprintf(line, sizeof line,
                "[wayplace] sweep: %zu workloads, %llu cells priced "
                "(+%llu memo hits%s), %.1fM guest insts, simulate %.2fs host "
                "(%s), wall %.2fs, jobs %u%s\n",
                prepared_.size(),
                static_cast<unsigned long long>(
                    metrics_.counter("cells.computed").value()),
                static_cast<unsigned long long>(
                    metrics_.counter("memo.hits").value()),
                extras, static_cast<double>(insts) / 1e6, simulate, mips, wall,
                pool_.threadCount(),
                trace_ ? (", trace: " + trace_->path()).c_str() : "");
  os << line;
}

}  // namespace wp::driver
