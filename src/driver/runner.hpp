// Experiment driver: reproduces the paper's methodology end to end.
//
// Per workload (paper §5):
//   1. build the program,
//   2. link it in original order and profile it on the *small* input,
//   3. run the layout pass pipeline on the profile, once per registered
//      strategy (the paper's ordering plus the ablation/literature ones),
//   4. simulate the *large* input under each scheme on equally-configured
//      machines (baseline and way-memoization use the original binary;
//      way-placement uses its SchemeSpec's layout plus an area size),
//   5. price each run with the energy model and normalize to baseline.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cache/fetch_path.hpp"
#include "energy/energy_model.hpp"
#include "fault/fault.hpp"
#include "layout/strategy.hpp"
#include "profile/profiler.hpp"
#include "sim/processor.hpp"
#include "support/metrics.hpp"
#include "workloads/workload.hpp"

namespace wp::driver {

/// Simulation engine from WP_ENGINE: "block" (default when unset or
/// empty) or "interp". Parsed strictly like every other knob — any
/// other value exits with a clear message instead of silently running
/// the wrong engine. The choice is host-side only: both engines produce
/// byte-identical tables, so it is deliberately absent from cell keys.
[[nodiscard]] sim::Engine engineFromEnv();

/// Which fetch scheme to run, with its knobs.
struct SchemeSpec {
  cache::Scheme scheme = cache::Scheme::kBaseline;
  u32 wp_area_bytes = 0;        ///< way-placement only
  bool intraline_skip = true;   ///< ablation knob (optimized schemes)
  bool wm_precise_invalidation = false;  ///< ablation knob (way-memo)
  u32 drowsy_window = 0;        ///< drowsy-line window (extension E4)
  /// Code layout: a strategy spec string — a registered name (canonical
  /// or alias, see layout::strategies()) or a parameterized
  /// `name{key=value,...}` spec (layout::resolveStrategy). The run
  /// simulates that spec's image; cell keys carry its canonical form.
  std::string layout = "original";
  /// Runtime fault injection (resilience studies); inert by default.
  fault::FaultSpec fault;

  // Co-run (multiprogramming) axis: when corun_quantum > 0 the cell is
  // a guest-scheduler co-run of this workload with `corun_partners`
  // (comma-separated prepared-workload names) time-sliced at that
  // quantum under `corun_tlb`. All three are cell-key material.
  u64 corun_quantum = 0;  ///< 0 = solo run (no scheduler)
  cache::TlbSwitchPolicy corun_tlb = cache::TlbSwitchPolicy::kFlush;
  std::string corun_partners;

  [[nodiscard]] bool corunEnabled() const { return corun_quantum > 0; }

  [[nodiscard]] static SchemeSpec baseline() { return {}; }
  /// The baseline a cell normalizes against: a solo cell's is the plain
  /// baseline; a co-run cell's is the *co-run* baseline — the same
  /// partners, quantum and TLB policy under the baseline scheme — so
  /// normalized metrics compare scheme against scheme, not scheme
  /// against an unrelated solo run.
  [[nodiscard]] static SchemeSpec baselineFor(const SchemeSpec& s) {
    SchemeSpec b;
    b.corun_quantum = s.corun_quantum;
    b.corun_tlb = s.corun_tlb;
    b.corun_partners = s.corun_partners;
    return b;
  }
  /// Way-placement cells honor WP_LAYOUT, so a sweep can be re-run under
  /// any registered ordering without recompiling; unset means the
  /// paper's ordering.
  [[nodiscard]] static SchemeSpec wayPlacement(u32 area_bytes) {
    SchemeSpec s;
    s.scheme = cache::Scheme::kWayPlacement;
    s.wp_area_bytes = area_bytes;
    s.layout = layout::strategyFromEnv();
    return s;
  }
  [[nodiscard]] static SchemeSpec wayMemoization() {
    SchemeSpec s;
    s.scheme = cache::Scheme::kWayMemoization;
    return s;
  }
  [[nodiscard]] static SchemeSpec wayPrediction() {
    SchemeSpec s;
    s.scheme = cache::Scheme::kWayPrediction;
    return s;
  }
};

/// Host wall-clock spent in the preparation phases of one workload.
/// Pure observability: none of these values feed back into a result.
struct PreparePhases {
  double build_seconds = 0.0;    ///< workload construction + IR build
  double profile_seconds = 0.0;  ///< original link + training run
  double layout_seconds = 0.0;   ///< pass pipeline over every strategy
  [[nodiscard]] double total() const {
    return build_seconds + profile_seconds + layout_seconds;
  }
};

/// One priced simulation.
struct RunResult {
  sim::RunStats stats;
  energy::RunEnergy energy;
  /// Host cost of the simulate (machine setup + run) and price phases
  /// for this cell. Observability only — never fed back into the
  /// simulated machine, so results are identical with or without anyone
  /// reading them. simulate_seconds is *thread CPU time*, not wall
  /// clock: it is the guest-MIPS denominator, and a wall span on an
  /// oversubscribed host (WP_JOBS above the core count) would charge
  /// the cell for time the scheduler gave its neighbours, making
  /// recordings incomparable across WP_JOBS settings.
  double simulate_seconds = 0.0;
  double price_seconds = 0.0;
  /// Guest-instruction throughput of the simulation in millions of
  /// instructions per host second, or nullopt when the simulate span
  /// was too short to measure (a fast cell can round to 0 s — that is
  /// "not measurable", not 0 MIPS, and aggregates must exclude it
  /// rather than average a poisoned zero).
  [[nodiscard]] std::optional<double> guestMips() const {
    if (simulate_seconds <= 0.0) return std::nullopt;
    return static_cast<double>(stats.instructions) / simulate_seconds / 1e6;
  }
  /// Workload result bytes read back after the run — compared against
  /// Workload::expected and across fault classes by the resilience
  /// harness.
  std::vector<u8> output;
  /// What the fault injector did (all zero without an active FaultSpec).
  fault::InjectionStats injected;
  /// The layout that produced the simulated image (from its
  /// LayoutReport): canonical strategy name, chains formed, fall-through
  /// repairs the linker inserted.
  std::string layout_strategy;
  u64 layout_chains = 0;
  u64 layout_repairs = 0;
  /// Fraction of profiled dynamic instructions placed inside the
  /// (clamped) way-placement area. 0 for non-way-placement schemes and
  /// for unprofiled layouts.
  double wp_area_coverage = 0.0;
};

/// A workload made ready to simulate: profiled and laid out under every
/// registered strategy. Profiling is layout-independent, so one
/// prepared workload serves any (strategy, geometry, scheme) cell —
/// including parameterized specs, whose pipelines run lazily on first
/// use and are cached (the autotuner prices many specs against one
/// prepared workload).
struct PreparedWorkload {
  std::string name;
  std::unique_ptr<workloads::Workload> workload;
  ir::Module module;        ///< profile-annotated
  u64 seed = 0;             ///< the preparing Runner's experiment seed
  /// Pipeline output per registered strategy, keyed by canonical name.
  /// Strategies that need a profile hold the original layout's result
  /// when the training profile was unusable.
  std::map<std::string, layout::LayoutResult, std::less<>> layouts;
  u64 profile_instructions = 0;
  /// False when the training profile failed validation; profile-driven
  /// layouts then silently fall back to the original block order (a bad
  /// profile costs energy, never correctness or the whole sweep).
  bool profile_ok = true;
  std::string profile_warning;  ///< why, when !profile_ok
  PreparePhases phases;         ///< host wall-clock per prepare phase

  /// Pipeline result / image for @p spec (a registered name, alias, or
  /// parameterized `name{...}` spec). Registered-default specs read the
  /// eagerly prepared table; anything else is computed on first use
  /// into the tuned-layout cache (thread-safe: sweep workers price
  /// tuned cells concurrently). Profile-driven specs fall back to the
  /// original layout when the training profile was unusable. Throws
  /// SimError on an unresolvable spec.
  [[nodiscard]] const layout::LayoutResult& layoutFor(
      std::string_view spec) const;
  [[nodiscard]] const mem::Image& imageFor(std::string_view spec) const {
    return layoutFor(spec).image;
  }

 private:
  /// Lazily computed non-default layouts, keyed by canonical spec.
  /// node-stable (std::map), so returned references outlive the insert.
  mutable std::map<std::string, layout::LayoutResult, std::less<>>
      tuned_layouts_;
  mutable std::unique_ptr<std::mutex> tuned_mutex_ =
      std::make_unique<std::mutex>();
};

/// Normalized headline metrics of a scheme run against its baseline.
struct Normalized {
  double icache_energy = 1.0;  ///< scheme / baseline I-cache energy
  double total_energy = 1.0;
  double delay = 1.0;          ///< cycles ratio
  double ed_product = 1.0;     ///< total_energy * delay
};

/// Normalizes @p scheme against @p baseline. A baseline with zero cycles
/// or zero priced energy is a harness bug, not a result — it fails a
/// WP_ENSURE naming @p workload (pass the workload name whenever you
/// have it so the message can say which run was broken).
[[nodiscard]] Normalized normalize(const RunResult& scheme,
                                   const RunResult& baseline,
                                   const std::string& workload = {});

class Runner {
 public:
  /// @p seed is the experiment-wide RNG seed: it reaches workload input
  /// generation, profile corruption and every fault schedule, so a whole
  /// experiment replays from one logged number. Seed 0 reproduces the
  /// historical fixed inputs bit-for-bit.
  explicit Runner(energy::EnergyParams params = energy::EnergyParams{},
                  u64 seed = 0);

  [[nodiscard]] u64 seed() const { return seed_; }
  /// The WP_ENGINE choice captured at construction; machineFor() stamps
  /// it into every machine this runner builds.
  [[nodiscard]] sim::Engine engine() const { return engine_; }

  /// Steps 1-3 above. Profiling is cache-independent, so one prepared
  /// workload serves every geometry. @p profile_input selects the
  /// training input: the paper's methodology trains on kSmall; passing
  /// kLarge gives the oracle (self-profiled) layout for robustness
  /// studies. @p profile_fault optionally damages the collected profile
  /// before the layout pass sees it; an unusable profile is diagnosed
  /// (profile_ok/profile_warning) and the way-placed image falls back to
  /// the original layout instead of aborting.
  [[nodiscard]] PreparedWorkload prepare(
      const std::string& name,
      workloads::InputSize profile_input = workloads::InputSize::kSmall,
      fault::ProfileFault profile_fault = fault::ProfileFault::kNone) const;

  /// Step 4-5 for one scheme on one I-cache geometry. @p budget_hook,
  /// when non-null, is installed as the simulation's instruction-budget
  /// hook (the sweep supervisor's per-cell watchdog rides it); it is
  /// host-side only and cannot change a completed run's results.
  [[nodiscard]] RunResult run(const PreparedWorkload& prepared,
                              const cache::CacheGeometry& icache,
                              const SchemeSpec& spec,
                              workloads::InputSize input =
                                  workloads::InputSize::kLarge,
                              const sim::BudgetHook* budget_hook =
                                  nullptr) const;

  /// Per-process slice of a co-run, read back for equivalence checks:
  /// every process's hashes must match its solo run exactly.
  struct CoRunProcess {
    std::string name;
    u64 instructions = 0;
    u64 retired_pc_hash = 0;
    u64 dataflow_hash = 0;
    u64 cycles = 0;
    std::vector<u8> output;
  };
  /// Co-run observability beyond the combined RunResult.
  struct CoRunExtra {
    std::vector<CoRunProcess> processes;
    u64 context_switches = 0;
    u64 slices = 0;
  };

  /// Steps 4-5 for a co-run: time-slices every workload of @p group
  /// (first member = the cell's primary) over one shared fetch path
  /// under @p spec's corun_quantum/corun_tlb, then prices the combined
  /// activity. Per-process WP areas are clamped to each member's image
  /// like run() clamps the solo area. The returned RunResult's output
  /// is the concatenation of the per-process outputs in group order
  /// (so digests cover every guest); @p extra, when non-null, receives
  /// the per-process results and switch counts. Runtime fault injection
  /// is a solo-run facility — spec.fault must be inert.
  [[nodiscard]] RunResult runCoRun(
      const std::vector<const PreparedWorkload*>& group,
      const cache::CacheGeometry& icache, const SchemeSpec& spec,
      workloads::InputSize input = workloads::InputSize::kLarge,
      const sim::BudgetHook* budget_hook = nullptr,
      CoRunExtra* extra = nullptr) const;

  /// Builds the machine configuration used by run() (exposed so benches
  /// can print Table 1 and tests can inspect it).
  [[nodiscard]] sim::MachineConfig machineFor(
      const cache::CacheGeometry& icache, const SchemeSpec& spec) const;

  [[nodiscard]] const energy::EnergyModel& energyModel() const {
    return model_;
  }

  /// Aggregated host-side observability: phase timers ("phase.build",
  /// "phase.profile", "phase.layout", "phase.simulate", "phase.price")
  /// and the "guest.instructions" counter, accumulated across every
  /// prepare()/run() on this Runner from any thread. Mutable through a
  /// const Runner by design — recording a timing span must not force
  /// the experiment API non-const.
  [[nodiscard]] MetricsRegistry& metrics() const { return metrics_; }

 private:
  energy::EnergyModel model_;
  u64 seed_ = 0;
  sim::Engine engine_ = sim::Engine::kBlock;
  mutable MetricsRegistry metrics_;
};

}  // namespace wp::driver
