#include "driver/checkpoint.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <type_traits>

#include "support/metrics.hpp"

namespace wp::driver {

namespace {

constexpr u64 kFnvOffset = 0xcbf29ce484222325ULL;
constexpr u64 kFnvPrime = 0x100000001b3ULL;

u64 fnv1aBytes(u64 h, const void* p, std::size_t n) {
  const auto* bytes = static_cast<const u8*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string hexEncode(const std::vector<u8>& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const u8 b : bytes) {
    out += kDigits[b >> 4];
    out += kDigits[b & 0xf];
  }
  return out;
}

int hexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;
}

bool hexDecode(const std::string& hex, std::vector<u8>& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hexNibble(hex[i]);
    const int lo = hexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<u8>((hi << 4) | lo));
  }
  return true;
}

/// "%.17g" round-trips every IEEE double exactly through strtod, which
/// is what makes a resumed table byte-identical to the uninterrupted
/// one.
std::string fmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <class C, class V>
void visitCacheStats(const std::string& prefix, C& c, V&& v) {
  v(prefix + "accesses", c.accesses);
  v(prefix + "hits", c.hits);
  v(prefix + "misses", c.misses);
  v(prefix + "tag_compares", c.tag_compares);
  v(prefix + "matchline_precharges", c.matchline_precharges);
  v(prefix + "full_lookups", c.full_lookups);
  v(prefix + "single_way_lookups", c.single_way_lookups);
  v(prefix + "partial_lookups", c.partial_lookups);
  v(prefix + "no_tag_lookups", c.no_tag_lookups);
  v(prefix + "data_word_reads", c.data_word_reads);
  v(prefix + "data_word_writes", c.data_word_writes);
  v(prefix + "line_fills", c.line_fills);
  v(prefix + "writebacks", c.writebacks);
  v(prefix + "link_reads", c.link_reads);
  v(prefix + "link_writes", c.link_writes);
  v(prefix + "link_invalidations", c.link_invalidations);
  v(prefix + "linked_accesses", c.linked_accesses);
  v(prefix + "duplicate_invalidations", c.duplicate_invalidations);
}

template <class E, class V>
void visitCacheEnergy(const std::string& prefix, E& e, V&& v) {
  v(prefix + "tag", e.tag);
  v(prefix + "data", e.data);
  v(prefix + "fills", e.fills);
  v(prefix + "links", e.links);
}

/// Enumerates every *guest-side* numeric field of a RunResult — the
/// full payload the tables, the per-workload benches and the JSON
/// report consume. One visitor serves serialization, restoration and
/// digesting, so the three can never drift apart. Host timings
/// (simulate/price seconds) are deliberately absent: they are recorded
/// separately and excluded from the stats digest so a restored record
/// re-digests to the same value.
template <class R, class V>
void visitGuestFields(R& r, V&& v) {
  auto& s = r.stats;
  v("instructions", s.instructions);
  v("cycles", s.cycles);
  v("retired_pc_hash", s.retired_pc_hash);
  v("dataflow_hash", s.dataflow_hash);
  visitCacheStats("icache.", s.icache, v);
  visitCacheStats("dcache.", s.dcache, v);
  v("itlb.accesses", s.itlb.accesses);
  v("itlb.misses", s.itlb.misses);
  v("itlb.walks", s.itlb.walks);
  v("fetch.fetches", s.fetch.fetches);
  v("fetch.sameline_skips", s.fetch.sameline_skips);
  v("fetch.wp_single_way", s.fetch.wp_single_way);
  v("fetch.hint_correct", s.fetch.hint_correct);
  v("fetch.hint_miss_lost_saving", s.fetch.hint_miss_lost_saving);
  v("fetch.hint_miss_second_access", s.fetch.hint_miss_second_access);
  v("fetch.waypred_correct", s.fetch.waypred_correct);
  v("fetch.waypred_mispredict", s.fetch.waypred_mispredict);
  v("fetch.extra_cycles", s.fetch.extra_cycles);
  v("fetch.link_faults_dropped", s.fetch.link_faults_dropped);
  v("branches.branches", s.branches.branches);
  v("branches.mispredicts", s.branches.mispredicts);
  v("squashed_probes", s.squashed_probes);
  v("link_flash_clears", s.link_flash_clears);
  v("icache_data_area_factor", s.icache_data_area_factor);
  v("drowsy.wakeups", s.drowsy.wakeups);
  v("drowsy.awake_line_ticks", s.drowsy.awake_line_ticks);
  v("drowsy.drowsy_line_ticks", s.drowsy.drowsy_line_ticks);
  v("drowsy.ticks", s.drowsy.ticks);
  v("icache_lines", s.icache_lines);
  auto& e = r.energy;
  visitCacheEnergy("energy.icache.", e.icache, v);
  visitCacheEnergy("energy.dcache.", e.dcache, v);
  v("energy.itlb", e.itlb);
  v("energy.hint", e.hint);
  v("energy.core", e.core);
  v("energy.memory", e.memory);
  auto& i = r.injected;
  v("injected.events", i.events);
  v("injected.hint_flips", i.hint_flips);
  v("injected.tlb_bit_flips", i.tlb_bit_flips);
  v("injected.tlb_bits_cleared", i.tlb_bits_cleared);
  v("injected.links_scrambled", i.links_scrambled);
  v("injected.mru_scrambles", i.mru_scrambles);
  v("injected.resizes", i.resizes);
  v("layout_chains", r.layout_chains);
  v("layout_repairs", r.layout_repairs);
  v("wp_area_coverage", r.wp_area_coverage);
}

bool unescapeInto(const std::string& s, std::size_t& i, std::string& out) {
  // i points at the opening quote; leaves i past the closing quote.
  ++i;
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) return false;
      const char e = s[i + 1];
      switch (e) {
        case '"': out += '"'; i += 2; break;
        case '\\': out += '\\'; i += 2; break;
        case 'n': out += '\n'; i += 2; break;
        case 't': out += '\t'; i += 2; break;
        case 'u': {
          if (i + 5 >= s.size()) return false;
          int v = 0;
          for (int k = 2; k <= 5; ++k) {
            const int n = hexNibble(
                static_cast<char>(std::tolower(s[i + static_cast<std::size_t>(k)])));
            if (n < 0) return false;
            v = (v << 4) | n;
          }
          if (v > 0xff) return false;  // we only ever emit control chars
          out += static_cast<char>(v);
          i += 6;
          break;
        }
        default:
          return false;
      }
    } else {
      out += c;
      ++i;
    }
  }
  return false;  // unterminated string: torn line
}

void skipWs(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

}  // namespace

bool parseFlatJsonLine(const std::string& line,
                       std::map<std::string, JsonToken>& out) {
  std::size_t i = 0;
  skipWs(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  skipWs(line, i);
  if (i < line.size() && line[i] == '}') return true;  // empty object
  while (true) {
    skipWs(line, i);
    if (i >= line.size() || line[i] != '"') return false;
    std::string key;
    if (!unescapeInto(line, i, key)) return false;
    skipWs(line, i);
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skipWs(line, i);
    if (i >= line.size()) return false;
    JsonToken tok;
    if (line[i] == '"') {
      tok.is_string = true;
      if (!unescapeInto(line, i, tok.text)) return false;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      std::size_t end = i;
      while (end > start && (line[end - 1] == ' ' || line[end - 1] == '\t')) {
        --end;
      }
      if (end == start) return false;
      tok.text = line.substr(start, end - start);
    }
    out[key] = std::move(tok);
    skipWs(line, i);
    if (i >= line.size()) return false;
    if (line[i] == '}') return true;
    if (line[i] != ',') return false;
    ++i;
  }
}

namespace {

bool parseU64Text(const std::string& text, u64& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      text[0] == '-') {
    return false;
  }
  out = static_cast<u64>(v);
  return true;
}

bool parseDoubleText(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

[[noreturn]] void dieOnJournal(const std::string& path, const char* why) {
  std::fprintf(stderr, "error: WP_CHECKPOINT: %s '%s'\n", why, path.c_str());
  std::exit(1);
}

/// Extracts a CheckpointRecord from a parsed cell line's tokens.
/// Structural validation only — the caller decides what a stats-digest
/// mismatch means (journal: rejected; worker pipe: torn result).
bool tokensToRecord(const std::map<std::string, JsonToken>& tokens,
                    CheckpointRecord& rec) {
  bool ok = true;
  auto getString = [&](const char* name, std::string& out) {
    const auto it = tokens.find(name);
    if (it == tokens.end() || !it->second.is_string) {
      ok = false;
      return;
    }
    out = it->second.text;
  };
  auto getU64 = [&](const std::string& name, u64& out) {
    const auto it = tokens.find(name);
    if (it == tokens.end() || it->second.is_string ||
        !parseU64Text(it->second.text, out)) {
      ok = false;
    }
  };
  auto getDouble = [&](const std::string& name, double& out) {
    const auto it = tokens.find(name);
    if (it == tokens.end() || it->second.is_string ||
        !parseDoubleText(it->second.text, out)) {
      ok = false;
    }
  };

  getString("key", rec.key);
  getU64("image_digest", rec.image_digest);
  getU64("stats_digest", rec.stats_digest);
  getDouble("wall_seconds", rec.wall_seconds);
  getDouble("simulate_seconds", rec.result.simulate_seconds);
  getDouble("price_seconds", rec.result.price_seconds);
  getString("layout_strategy", rec.result.layout_strategy);
  std::string output_hex;
  getString("output", output_hex);
  if (ok && !hexDecode(output_hex, rec.result.output)) ok = false;
  visitGuestFields(rec.result, [&](const std::string& name, auto& field) {
    using T = std::decay_t<decltype(field)>;
    if constexpr (std::is_floating_point_v<T>) {
      getDouble(name, field);
    } else {
      u64 wide = 0;
      getU64(name, wide);
      field = static_cast<T>(wide);
    }
  });
  return ok && !rec.key.empty();
}

}  // namespace

u64 imageDigest(const mem::Image& image) {
  u64 h = kFnvOffset;
  h = fnv1aBytes(h, image.code.data(), image.code.size());
  h = fnv1aBytes(h, image.data.data(), image.data.size());
  h = fnv1aBytes(h, &image.entry, sizeof image.entry);
  return h;
}

u64 stringDigest(std::string_view s) {
  return fnv1aBytes(kFnvOffset, s.data(), s.size());
}

RecordParse parseRecordLine(const std::string& line, CheckpointRecord& out) {
  std::map<std::string, JsonToken> tokens;
  if (!parseFlatJsonLine(line, tokens)) return RecordParse::kMalformed;
  const auto ev = tokens.find("ev");
  if (ev == tokens.end() || !ev->second.is_string ||
      ev->second.text != "cell") {
    return RecordParse::kMalformed;
  }
  if (!tokensToRecord(tokens, out)) return RecordParse::kMalformed;
  if (statsDigest(out.result) != out.stats_digest) {
    return RecordParse::kDigestMismatch;
  }
  return RecordParse::kOk;
}

u64 statsDigest(const RunResult& r) {
  u64 h = kFnvOffset;
  visitGuestFields(r, [&h](const std::string& name, const auto& field) {
    h = fnv1aBytes(h, name.data(), name.size());
    using T = std::decay_t<decltype(field)>;
    if constexpr (std::is_floating_point_v<T>) {
      u64 bits = 0;
      static_assert(sizeof field == sizeof bits);
      std::memcpy(&bits, &field, sizeof bits);
      h = fnv1aBytes(h, &bits, sizeof bits);
    } else {
      const u64 wide = static_cast<u64>(field);
      h = fnv1aBytes(h, &wide, sizeof wide);
    }
  });
  h = fnv1aBytes(h, r.layout_strategy.data(), r.layout_strategy.size());
  h = fnv1aBytes(h, r.output.data(), r.output.size());
  return h;
}

std::string renderHeader(u64 seed) {
  return "{\"ev\": \"sweep\", \"version\": 1, \"seed\": " +
         std::to_string(seed) + "}";
}

std::string renderRecord(const std::string& key, u64 image_digest,
                         const RunResult& r, double wall_seconds) {
  std::string out = "{\"ev\": \"cell\", \"key\": \"" + jsonEscape(key) + "\"";
  out += ", \"image_digest\": " + std::to_string(image_digest);
  out += ", \"stats_digest\": " + std::to_string(statsDigest(r));
  out += ", \"wall_seconds\": " + fmtDouble(wall_seconds);
  out += ", \"simulate_seconds\": " + fmtDouble(r.simulate_seconds);
  out += ", \"price_seconds\": " + fmtDouble(r.price_seconds);
  out += ", \"layout_strategy\": \"" + jsonEscape(r.layout_strategy) + "\"";
  out += ", \"output\": \"" + hexEncode(r.output) + "\"";
  visitGuestFields(r, [&out](const std::string& name, const auto& field) {
    using T = std::decay_t<decltype(field)>;
    out += ", \"" + name + "\": ";
    if constexpr (std::is_floating_point_v<T>) {
      out += fmtDouble(field);
    } else {
      out += std::to_string(static_cast<u64>(field));
    }
  });
  out += "}";
  return out;
}

CheckpointJournal readJournal(const std::string& path, u64 expected_seed) {
  CheckpointJournal journal;
  std::ifstream in(path);
  if (!in.good()) return journal;  // no journal yet: a fresh sweep

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::map<std::string, JsonToken> tokens;
    if (!parseFlatJsonLine(line, tokens)) {
      ++journal.lines_skipped;
      continue;
    }
    const auto ev = tokens.find("ev");
    if (ev == tokens.end() || !ev->second.is_string) {
      ++journal.lines_skipped;
      continue;
    }

    if (ev->second.text == "sweep") {
      u64 version = 0;
      u64 seed = 0;
      const auto ver = tokens.find("version");
      const auto sd = tokens.find("seed");
      if (ver == tokens.end() || sd == tokens.end() ||
          !parseU64Text(ver->second.text, version) ||
          !parseU64Text(sd->second.text, seed)) {
        ++journal.lines_skipped;
        continue;
      }
      if (version != 1) {
        dieOnJournal(path, "unsupported journal version in");
      }
      if (seed != expected_seed) {
        std::fprintf(stderr,
                     "error: WP_CHECKPOINT: journal '%s' was recorded under "
                     "seed %llu but this sweep runs under seed %llu — "
                     "resuming would silently mix experiments (delete the "
                     "journal or match WP_SEED)\n",
                     path.c_str(), static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(expected_seed));
        std::exit(1);
      }
      journal.had_header = true;
      continue;
    }

    if (ev->second.text != "cell") {
      ++journal.lines_skipped;  // unknown event kind: tolerate, count
      continue;
    }
    if (!journal.had_header) {
      dieOnJournal(path, "cell records with no sweep header in");
    }

    CheckpointRecord rec;
    if (!tokensToRecord(tokens, rec)) {
      ++journal.lines_skipped;
      continue;
    }
    // A record that parsed but whose payload no longer matches its own
    // digest was tampered with or damaged in place: reject it and let
    // the sweep recompute that cell.
    if (statsDigest(rec.result) != rec.stats_digest) {
      ++journal.records_rejected;
      continue;
    }
    journal.records[rec.key] = std::move(rec);  // last record wins
  }
  return journal;
}

}  // namespace wp::driver
