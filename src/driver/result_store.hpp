// Persistent, content-addressed result store for sweeps (WP_STORE).
//
// Generalizes the crash-recovery checkpoint journal into a cross-run,
// cross-bench cache: one record file per cell under WP_STORE=<dir>,
// addressed by (experiment seed, cell key, image digest) — the image
// digest covers the exact bytes the cell would simulate, so a store
// populated under other code, another layout pipeline or other inputs
// simply misses instead of serving stale numbers. Any number of bench
// processes (and any WP_JOBS inside each) can share one store:
//
//   record files   written to a temp name, fsync'd, then atomically
//                  rename(2)'d into place (plus a directory fsync), so
//                  a reader never observes a half-written record and
//                  concurrent writers of the same cell converge on the
//                  same bytes — results are deterministic per key.
//   lock leases    a miss is computed under `<record>.lock`, created
//                  with O_CREAT|O_EXCL and carrying a {"pid", "boot",
//                  "seed"} payload. A second process that misses the
//                  same cell waits on the lease instead of
//                  double-computing, and reclaims it when the holder is
//                  provably dead (kill(pid, 0) => ESRCH), was written
//                  in a previous boot (the boot nonce mismatches — a
//                  rebooted host may have reused the pid for a live,
//                  unrelated process), or has sat on it past
//                  WP_LEASE_TIMEOUT_MS (a hung holder). See DESIGN.md
//                  §10 for why this is O_EXCL + pid probing and not
//                  flock.
//
// Trust rules match the journal's: every read re-verifies the record's
// own stats digest plus its header (version, seed, key) and the image
// digest; tampered, torn or version-mismatched records are rejected,
// counted, and recomputed — never served. An unwritable or corrupt
// store *degrades loudly* to compute-everything (stderr warning +
// store.degraded metric) instead of aborting: losing the cache must
// never lose the sweep. Environment parsing, by contrast, stays strict
// — a malformed WP_LEASE_TIMEOUT_MS exits 1 like every other WP_* knob.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <optional>
#include <string>

#include "driver/checkpoint.hpp"
#include "support/metrics.hpp"

namespace wp::driver {

/// Identity of the current OS boot, hashed to a stable nonce: the
/// kernel's boot_id UUID when readable, the boot timestamp from
/// /proc/stat otherwise, 0 when neither exists (the nonce check then
/// disables itself). Lease payloads carry it so a lease written before
/// a reboot can never be mistaken for one held by a live process —
/// after a reboot the old holder's pid may have been reused by an
/// unrelated, very-much-alive process, and probing it with kill(pid, 0)
/// would wrongly keep the stale lease parked until WP_LEASE_TIMEOUT_MS.
[[nodiscard]] u64 bootNonce();

/// What a store lease (.lock) file claims about its holder. pid 0 means
/// the file is missing or torn ("cannot probe the holder"); boot 0
/// means the payload predates the boot nonce (old-format lease), and
/// the nonce check falls back to pid probing alone. Shared between the
/// store's reclamation logic and the wp_store_fsck tool so both judge
/// staleness by exactly the same evidence.
struct StoreLeaseHolder {
  pid_t pid = 0;
  u64 boot = 0;
};

[[nodiscard]] StoreLeaseHolder readStoreLease(const std::string& lock_path);

class ResultStore {
 public:
  struct Config {
    std::string dir;
    /// Milliseconds a live-but-silent lease holder keeps its lease
    /// (WP_LEASE_TIMEOUT_MS; a dead holder is reclaimed immediately).
    u64 lease_timeout_ms = 10 * 60 * 1000;
  };

  /// Strict parse of WP_STORE / WP_LEASE_TIMEOUT_MS; nullopt when
  /// WP_STORE is unset or empty (the store is opt-in). Malformed values
  /// exit 1 with a message naming the knob.
  [[nodiscard]] static std::optional<Config> fromEnv();

  /// Opens (creating if needed) the store directory. Failures degrade
  /// the store, they do not abort. @p trace may be null. The registry
  /// gains the "store.*" counters; both must outlive the store.
  ResultStore(const Config& config, u64 seed, MetricsRegistry& metrics,
              TraceWriter* trace);

  /// Ownership of one cell's compute lease. Movable; releases (unlinks
  /// its lock file, if still ours) on destruction, so a quarantined or
  /// thrown-through cell frees the cell for other processes.
  class Lease {
   public:
    Lease() = default;
    ~Lease() { release(); }
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] bool owned() const { return !lock_path_.empty(); }
    /// Unlinks the lock file if this process still holds it. Idempotent.
    void release();

   private:
    friend class ResultStore;
    std::string lock_path_;
  };

  /// Fate of one lookup: either a verified record to serve, or (on a
  /// miss) the lease under which the caller must compute the cell and
  /// then put(). A degraded store returns a miss with an unowned lease.
  struct Outcome {
    std::optional<CheckpointRecord> record;
    Lease lease;
  };

  /// Blocks until the cell is either readable (verified hit — possibly
  /// after waiting out another process's compute) or this process owns
  /// its lease. Never blocks longer than one lease timeout per stale
  /// holder. Thread-safe; the executor's memo guarantees one caller per
  /// key per process.
  [[nodiscard]] Outcome open(const std::string& key, u64 image_digest);

  /// Publishes a computed cell: temp write + fsync + atomic rename +
  /// directory fsync, then releases @p lease. No-op (beyond the
  /// release) on a degraded store or an unowned lease.
  void put(Lease& lease, const std::string& key, u64 image_digest,
           const RunResult& result, double wall_seconds);

  /// True once any I/O failure switched the store to compute-everything.
  [[nodiscard]] bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::string& dir() const { return config_.dir; }
  [[nodiscard]] u64 seed() const { return seed_; }

  /// The record file (and, with ".lock", the lease file) for a cell.
  /// Exposed for tests and post-mortem tooling.
  [[nodiscard]] std::string recordPathFor(const std::string& key,
                                          u64 image_digest) const;

 private:
  /// Reads and fully verifies a record file. Distinguishes "absent"
  /// (miss, returns nullopt with @p rejected untouched) from "present
  /// but untrustworthy" (returns nullopt, sets @p rejected).
  [[nodiscard]] std::optional<CheckpointRecord> load(
      const std::string& key, u64 image_digest, bool& rejected);

  void degrade(const std::string& reason);

  Config config_;
  u64 seed_ = 0;
  MetricsRegistry& metrics_;
  TraceWriter* trace_ = nullptr;  ///< not owned; may be null
  std::atomic<bool> degraded_{false};
};

}  // namespace wp::driver
