// Crash-safe checkpoint journal for sweeps (WP_CHECKPOINT=<path>).
//
// Every completed (non-quarantined, freshly computed) cell is appended
// to the journal as one fsync'd JSONL record carrying the full guest-
// side RunResult — every stat the tables, the per-workload benches and
// the WP_JSON report consume — plus two digests:
//
//   image_digest  FNV-1a over the code+data bytes of the image the cell
//                 simulated. On resume it is re-checked against the
//                 *freshly prepared* image: a journal recorded under
//                 different code, a different layout pass, or different
//                 workload inputs is rejected cell-by-cell and those
//                 cells recompute.
//   stats_digest  FNV-1a over the record's own guest-side payload,
//                 catching torn or hand-edited records.
//
// On startup the executor replays the journal, seeds its memo with
// every record that verifies, and recomputes the rest — so a sweep
// killed mid-run resumes from where it was and prints a byte-identical
// table (doubles round-trip at 17 significant digits, and aggregation
// order never depended on compute order in the first place). The
// journal's header pins the experiment seed; resuming under a
// different WP_SEED is a startup error, not a silently mixed journal.
// Quarantined cells are never journaled: a resumed sweep gives them a
// fresh set of attempts.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "driver/runner.hpp"
#include "mem/image.hpp"

namespace wp::driver {

/// One journaled cell: the memo key, verification digests, the restore
/// payload (full guest-side RunResult), and the host-side timings of
/// the original compute (observability only).
struct CheckpointRecord {
  std::string key;
  u64 image_digest = 0;
  u64 stats_digest = 0;
  RunResult result;
  double wall_seconds = 0.0;  ///< of the original compute
};

/// FNV-1a over an image's code and data bytes (layout identity).
[[nodiscard]] u64 imageDigest(const mem::Image& image);

/// FNV-1a over an arbitrary string (cell keys, store file names).
[[nodiscard]] u64 stringDigest(std::string_view s);

/// FNV-1a over a result's guest-side fields (stats, energy, output,
/// layout ride-alongs) — host-side timings excluded, so a restored
/// record re-digests to the same value.
[[nodiscard]] u64 statsDigest(const RunResult& r);

/// Renders one journal record line (no trailing newline).
[[nodiscard]] std::string renderRecord(const std::string& key,
                                       u64 image_digest, const RunResult& r,
                                       double wall_seconds);

/// Renders the journal header line pinning @p seed.
[[nodiscard]] std::string renderHeader(u64 seed);

/// One parsed `"key": value` pair of a flat one-line JSON object (the
/// only JSON shape the journal, the result store and the worker pipe
/// protocol ever emit).
struct JsonToken {
  bool is_string = false;
  std::string text;  ///< unescaped for strings, raw digits otherwise
};

/// Parses one flat JSON object line into tokens. Returns false on any
/// structural damage — the torn-line case — so callers can skip or
/// reject the line instead of crashing.
[[nodiscard]] bool parseFlatJsonLine(const std::string& line,
                                     std::map<std::string, JsonToken>& out);

/// Fate of one "cell" record line under parseRecordLine.
enum class RecordParse {
  kOk,              ///< structurally sound and the stats digest verifies
  kMalformed,       ///< torn/damaged line or not a cell record at all
  kDigestMismatch,  ///< parsed, but the payload no longer matches its digest
};

/// Parses one record line (as produced by renderRecord) and verifies
/// its stats digest. Shared by the journal reader, the result store and
/// the isolated-worker pipe protocol, so all three trust records under
/// exactly the same rules.
[[nodiscard]] RecordParse parseRecordLine(const std::string& line,
                                          CheckpointRecord& out);

/// A parsed journal: records keyed by cell key (last record wins) plus
/// what the reader skipped.
struct CheckpointJournal {
  std::map<std::string, CheckpointRecord> records;
  u64 lines_skipped = 0;     ///< unparsable lines (torn tail, corruption)
  u64 records_rejected = 0;  ///< parsed records whose stats digest lied
  bool had_header = false;
};

/// Reads @p path (which may not exist — an empty journal) and verifies
/// its header against @p expected_seed. A seed mismatch or a journal
/// with records but no header exits 1 (strict WP_* policy: resuming
/// the wrong experiment must never silently mix results). A torn final
/// line — the SIGKILL case — is skipped and counted, never fatal.
[[nodiscard]] CheckpointJournal readJournal(const std::string& path,
                                            u64 expected_seed);

}  // namespace wp::driver
