// Parallel sweep execution over (workload × geometry × scheme) grids.
//
// The figure benches all follow the same shape: prepare the suite once,
// then price many independent simulations and average normalized
// metrics. SweepExecutor owns that shape. Simulations fan out across a
// work-stealing thread pool; every result is memoized under a
// deterministic cell key, and aggregation walks the prepared workloads
// in suite order reading from the memo — so a table's bytes are
// identical at any job count, and the baseline for each (workload,
// geometry) is priced exactly once no matter how many schemes share it.
//
// Every cell runs *supervised* (see driver/supervisor.hpp): a cell that
// throws SimError is retried with deterministic seed-derived backoff,
// and a cell that exhausts its attempts is quarantined — tagged with
// its full cell key, excluded from aggregation (SuiteAverage reports
// how many cells an average lost), rendered as QUAR by the benches, and
// surfaced through quarantined() so a bench can exit 3
// (degraded-but-complete) instead of aborting the whole figure.
//
// Environment knobs (parsed strictly — garbage is a startup error, not
// a silent default):
//   WP_JOBS       worker-thread count; 0 or unset = one per hardware
//                 thread
//   WP_JSON       path to write a machine-readable report of every
//                 priced cell (normalized energy/ED plus per-cell
//                 wall-clock, phase breakdown and guest MIPS) when the
//                 bench finishes
//   WP_TRACE      path for a JSONL event log of the sweep as it
//                 executes: per-workload prepare phases, cell
//                 start/end/failure/retry/quarantine with worker thread
//                 and durations, memo hits, report emission
//   WP_RETRIES / WP_CELL_TIMEOUT_MS / WP_CELL_FAULT / WP_ISOLATE
//                 cell supervision policy — see driver/supervisor.hpp.
//                 Under WP_ISOLATE=1 every cell attempt runs in a
//                 forked worker process (driver/worker.hpp), so a
//                 SIGSEGV or wedged loop costs one attempt of one
//                 cell, not the bench.
//   WP_CHECKPOINT path of a durable JSONL journal (fsync'd per record):
//                 every freshly computed cell is appended, and on
//                 startup the journal is replayed — records whose
//                 digests verify against the freshly prepared images
//                 seed the memo, the rest recompute. A killed sweep
//                 resumed with the same journal prints a byte-identical
//                 table. See driver/checkpoint.hpp.
//   WP_STORE      directory of a persistent cross-run result store:
//                 cells whose stored record verifies (image digest +
//                 stats digest + seed) are served instead of simulated,
//                 freshly computed cells are published atomically, and
//                 concurrent sweeps sharing the directory coordinate
//                 through lock-file leases (WP_LEASE_TIMEOUT_MS) so a
//                 cell is computed once across processes. See
//                 driver/result_store.hpp.
//
// Instrumentation is host-side only: with or without WP_TRACE/WP_JSON/
// WP_CHECKPOINT/WP_STORE, at any WP_JOBS, with or without WP_ISOLATE,
// the printed tables are byte-identical.
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/checkpoint.hpp"
#include "driver/result_store.hpp"
#include "driver/runner.hpp"
#include "driver/supervisor.hpp"
#include "support/metrics.hpp"
#include "support/shutdown.hpp"
#include "support/thread_pool.hpp"

namespace wp::driver {

/// Worker count from WP_JOBS. Unset, empty or "0" mean one thread per
/// hardware thread; anything non-numeric exits with a clear message.
[[nodiscard]] unsigned jobsFromEnv();

class SweepExecutor {
 public:
  /// One point of a sweep grid: a cache geometry plus a scheme to run
  /// on it (the matching baseline is implied and shared).
  struct Cell {
    cache::CacheGeometry icache;
    SchemeSpec spec;
  };

  /// Non-owning view of one memoized cell's fate. `result` is null iff
  /// the cell is quarantined; `error` then carries the tagged failure
  /// of the final attempt. Pointees live as long as the executor.
  struct CellView {
    const RunResult* result = nullptr;
    bool quarantined = false;
    unsigned attempts = 0;    ///< attempts spent (0 = restored from journal)
    const std::string* error = nullptr;
  };

  /// A suite mean that knows what it lost: `excluded` counts workloads
  /// whose cell (or baseline) was quarantined and therefore left out.
  /// Benches render degraded() averages with a marker and a footer.
  struct SuiteAverage {
    double mean = 0.0;  ///< 0.0 when included == 0 (render QUAR, not a number)
    unsigned included = 0;
    unsigned excluded = 0;
    [[nodiscard]] bool degraded() const { return excluded > 0; }
  };

  /// One quarantined cell, for degradation footers and the JSON report.
  struct QuarantinedCell {
    std::string key;
    std::string error;
    unsigned attempts = 0;
    /// True when the cell never ran because a shutdown latch fired
    /// first (see the interrupt_latch constructor argument): the cell
    /// is excluded like any quarantined cell, but it represents work
    /// deliberately not started, not work that failed — benches count
    /// these in an INTERRUPTED footer instead of listing them as QUAR
    /// failures, and exit 5 instead of 3.
    bool interrupted = false;
  };

  /// Prepares @p workload_names (profile + layout) in parallel, kept in
  /// the given order for all later aggregation. @p jobs of 0 means
  /// WP_JOBS (which itself defaults to the hardware thread count).
  /// @p supervisor overrides the WP_RETRIES/WP_CELL_TIMEOUT_MS/
  /// WP_CELL_FAULT environment policy (tests pin it; benches pass
  /// nothing). All WP_* parsing and the WP_CHECKPOINT journal open
  /// happen before any workload is prepared, so a bad environment fails
  /// in milliseconds.
  /// @p interrupt_latch, when non-null, makes the executor *interrupt-
  /// aware*: once the latch fires (SIGTERM/SIGINT), cells that have not
  /// started yet are immediately quarantined with `interrupted` set
  /// instead of being computed — a running cell always finishes, so no
  /// record is ever torn — and the bench can flush partial results and
  /// exit 5. Benches pass the process latch; the sweep service passes
  /// nothing (its drain protocol finishes queued work instead).
  explicit SweepExecutor(std::vector<std::string> workload_names,
                         energy::EnergyParams params = energy::EnergyParams{},
                         u64 seed = 0, unsigned jobs = 0,
                         const SupervisorConfig* supervisor = nullptr,
                         const ShutdownLatch* interrupt_latch = nullptr);

  /// Out of line: the memo map holds unique_ptrs to the private
  /// CellEntry, which is incomplete outside sweep.cpp.
  ~SweepExecutor();

  [[nodiscard]] const std::vector<PreparedWorkload>& prepared() const {
    return prepared_;
  }
  [[nodiscard]] const Runner& runner() const { return runner_; }
  [[nodiscard]] unsigned jobs() const { return pool_.threadCount(); }
  [[nodiscard]] const CellSupervisor& supervisor() const {
    return supervisor_;
  }

  /// Prices every (prepared workload × cell) plus the implied baselines
  /// across the pool. Already-memoized cells cost nothing; benches call
  /// this up front with their whole grid so the pool stays saturated
  /// instead of draining at each table cell. Never throws for a failing
  /// cell: failures retry and then quarantine (inspect via tryRun /
  /// quarantined()).
  void runAll(const std::vector<Cell>& cells);

  /// Memoized result of one simulation; computed on the calling thread
  /// on a miss. The reference stays valid for the executor's lifetime.
  /// A quarantined cell throws SimError tagged with the full cell key —
  /// use tryRun() to handle quarantine without exceptions.
  const RunResult& run(const PreparedWorkload& p,
                       const cache::CacheGeometry& icache,
                       const SchemeSpec& spec);

  /// Like run(), but a quarantined cell comes back as a CellView with
  /// `quarantined` set instead of a throw.
  [[nodiscard]] CellView tryRun(const PreparedWorkload& p,
                                const cache::CacheGeometry& icache,
                                const SchemeSpec& spec);

  /// Average of `metric(normalize(scheme, baseline))` across the suite,
  /// in preparation order. Missing cells are first priced in parallel,
  /// so this is also the one-call form of runAll for a single cell.
  /// Quarantined cells are excluded from the mean; use the Checked form
  /// when the caller needs to render that degradation.
  double averageNormalized(
      const cache::CacheGeometry& icache, const SchemeSpec& spec,
      const std::function<double(const Normalized&)>& metric);

  /// averageNormalized plus the included/excluded accounting benches
  /// need to render QUAR markers and degradation footers.
  SuiteAverage averageNormalizedChecked(
      const cache::CacheGeometry& icache, const SchemeSpec& spec,
      const std::function<double(const Normalized&)>& metric);

  /// Every quarantined cell so far, ordered by cell key (deterministic
  /// at any job count). Empty on a clean sweep.
  [[nodiscard]] std::vector<QuarantinedCell> quarantined() const;

  /// The memo key: every field of the geometry and spec that can change
  /// a result appears in it. Exposed for tests.
  [[nodiscard]] static std::string keyOf(const std::string& workload,
                                         const cache::CacheGeometry& g,
                                         const SchemeSpec& s);

  /// Writes the JSON report: seed, job count, wall-clock since
  /// construction, and one record per memoized non-baseline cell with
  /// its normalized metrics (cells whose baseline was never priced are
  /// skipped), plus a "quarantined" section. Deterministic: records are
  /// ordered by memo key.
  void writeJsonReport(std::ostream& os) const;

  /// Registers an extra top-level section for writeJsonReport: @p key
  /// becomes a top-level JSON field whose value is @p rendered_json
  /// (which must already be valid JSON). Benches with bench-specific
  /// structured results — the autotune report — use this so the shared
  /// host/prepare/cells schema stays untouched for every other bench.
  void addJsonSection(const std::string& key, std::string rendered_json);

  /// writeJsonReport to the WP_JSON path, if that variable is set.
  /// Benches call this once after printing their tables. An unwritable
  /// path is a fatal error (exit 1), not a silent omission.
  void emitJsonIfRequested() const;

  /// One-line human summary of the sweep so far — cells priced, memo
  /// hits, restored/quarantined counts, guest instructions, host
  /// throughput (MIPS), wall-clock and job count. Benches print this to
  /// stderr (stderr, so the stdout tables stay byte-identical across
  /// job counts).
  void printSummary(std::ostream& os) const;

  /// Host-side counters/timers: this executor's "cells.computed" /
  /// "memo.hits" / "cells.restored" / "cells.quarantined" /
  /// "cells.failed_attempts" plus the shared Runner phase timers.
  [[nodiscard]] MetricsRegistry& metrics() const { return metrics_; }
  /// True when WP_TRACE requested a JSONL event log.
  [[nodiscard]] bool tracing() const { return trace_ != nullptr; }
  /// True when WP_CHECKPOINT is journaling this sweep.
  [[nodiscard]] bool checkpointing() const { return journal_ != nullptr; }
  /// The WP_STORE result store, or null when the store is not enabled.
  [[nodiscard]] const ResultStore* store() const { return store_.get(); }

 private:
  struct CellEntry;

  /// Finds-or-creates the memo entry and computes it exactly once
  /// (concurrent callers for the same key block until it is ready).
  /// The compute is supervised: journal restore first, then up to
  /// maxAttempts() tries, then quarantine. Never throws for a cell
  /// failure.
  CellEntry& ensureCell(const PreparedWorkload& p,
                        const cache::CacheGeometry& icache,
                        const SchemeSpec& spec);

  /// The supervised once-body of ensureCell.
  void computeCell(CellEntry& entry, const std::string& key,
                   const PreparedWorkload& p,
                   const cache::CacheGeometry& icache,
                   const SchemeSpec& spec);

  Runner runner_;
  mutable MetricsRegistry metrics_;
  CellSupervisor supervisor_;
  /// Optional shutdown latch consulted before each cell compute (see
  /// the constructor). Not owned; null = never interrupt.
  const ShutdownLatch* interrupt_latch_ = nullptr;
  /// Created before (and so destroyed after) the pool whose workers
  /// write to it. Null unless WP_TRACE is set.
  std::unique_ptr<TraceWriter> trace_;
  /// WP_CHECKPOINT journal writer (null when not checkpointing) and the
  /// verified records replayed from it at startup (read-only after the
  /// constructor).
  std::unique_ptr<DurableJsonlWriter> journal_;
  CheckpointJournal restored_;
  /// WP_STORE cross-run result store (null when not enabled). Created
  /// before the pool so workers can use it; destroyed after.
  std::unique_ptr<ResultStore> store_;
  ThreadPool pool_;
  std::vector<PreparedWorkload> prepared_;
  mutable std::mutex memo_mutex_;  ///< also guards const report reads
  /// Keyed by keyOf(); entries hold a once_flag, so they live behind a
  /// unique_ptr (once_flag is neither movable nor copyable).
  std::map<std::string, std::unique_ptr<CellEntry>> memo_;
  /// Extra writeJsonReport sections (addJsonSection), key → rendered
  /// JSON. Guarded by memo_mutex_ like the other report inputs.
  std::map<std::string, std::string> extra_json_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wp::driver
