// Parallel sweep execution over (workload × geometry × scheme) grids.
//
// The figure benches all follow the same shape: prepare the suite once,
// then price many independent simulations and average normalized
// metrics. SweepExecutor owns that shape. Simulations fan out across a
// work-stealing thread pool; every result is memoized under a
// deterministic cell key, and aggregation walks the prepared workloads
// in suite order reading from the memo — so a table's bytes are
// identical at any job count, and the baseline for each (workload,
// geometry) is priced exactly once no matter how many schemes share it.
//
// Environment knobs (parsed strictly — garbage is a startup error, not
// a silent default):
//   WP_JOBS   worker-thread count; 0 or unset = one per hardware thread
//   WP_JSON   path to write a machine-readable report of every priced
//             cell (normalized energy/ED plus per-cell wall-clock,
//             phase breakdown and guest MIPS) when the bench finishes
//   WP_TRACE  path for a JSONL event log of the sweep as it executes:
//             per-workload prepare phases, cell start/end with worker
//             thread and durations, memo hits, report emission. Both
//             report paths fail loudly (exit 1) when they cannot be
//             opened or written — a requested artifact never silently
//             vanishes.
//
// Instrumentation is host-side only: with or without WP_TRACE/WP_JSON,
// at any WP_JOBS, the printed tables are byte-identical.
#pragma once

#include <chrono>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "driver/runner.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"

namespace wp::driver {

/// Worker count from WP_JOBS. Unset, empty or "0" mean one thread per
/// hardware thread; anything non-numeric exits with a clear message.
[[nodiscard]] unsigned jobsFromEnv();

class SweepExecutor {
 public:
  /// One point of a sweep grid: a cache geometry plus a scheme to run
  /// on it (the matching baseline is implied and shared).
  struct Cell {
    cache::CacheGeometry icache;
    SchemeSpec spec;
  };

  /// Prepares @p workload_names (profile + layout) in parallel, kept in
  /// the given order for all later aggregation. @p jobs of 0 means
  /// WP_JOBS (which itself defaults to the hardware thread count).
  explicit SweepExecutor(std::vector<std::string> workload_names,
                         energy::EnergyParams params = energy::EnergyParams{},
                         u64 seed = 0, unsigned jobs = 0);

  /// Out of line: the memo map holds unique_ptrs to the private
  /// CellEntry, which is incomplete outside sweep.cpp.
  ~SweepExecutor();

  [[nodiscard]] const std::vector<PreparedWorkload>& prepared() const {
    return prepared_;
  }
  [[nodiscard]] const Runner& runner() const { return runner_; }
  [[nodiscard]] unsigned jobs() const { return pool_.threadCount(); }

  /// Prices every (prepared workload × cell) plus the implied baselines
  /// across the pool. Already-memoized cells cost nothing; benches call
  /// this up front with their whole grid so the pool stays saturated
  /// instead of draining at each table cell.
  void runAll(const std::vector<Cell>& cells);

  /// Memoized result of one simulation; computed on the calling thread
  /// on a miss. The reference stays valid for the executor's lifetime.
  const RunResult& run(const PreparedWorkload& p,
                       const cache::CacheGeometry& icache,
                       const SchemeSpec& spec);

  /// Average of `metric(normalize(scheme, baseline))` across the suite,
  /// in preparation order. Missing cells are first priced in parallel,
  /// so this is also the one-call form of runAll for a single cell.
  double averageNormalized(
      const cache::CacheGeometry& icache, const SchemeSpec& spec,
      const std::function<double(const Normalized&)>& metric);

  /// The memo key: every field of the geometry and spec that can change
  /// a result appears in it. Exposed for tests.
  [[nodiscard]] static std::string keyOf(const std::string& workload,
                                         const cache::CacheGeometry& g,
                                         const SchemeSpec& s);

  /// Writes the JSON report: seed, job count, wall-clock since
  /// construction, and one record per memoized non-baseline cell with
  /// its normalized metrics (cells whose baseline was never priced are
  /// skipped). Deterministic: records are ordered by memo key.
  void writeJsonReport(std::ostream& os) const;

  /// writeJsonReport to the WP_JSON path, if that variable is set.
  /// Benches call this once after printing their tables. An unwritable
  /// path is a fatal error (exit 1), not a silent omission.
  void emitJsonIfRequested() const;

  /// One-line human summary of the sweep so far — cells priced, memo
  /// hits, guest instructions, host throughput (MIPS), wall-clock and
  /// job count. Benches print this to stderr (stderr, so the stdout
  /// tables stay byte-identical across job counts).
  void printSummary(std::ostream& os) const;

  /// Host-side counters/timers: this executor's "cells.computed" /
  /// "memo.hits" plus the shared Runner phase timers.
  [[nodiscard]] MetricsRegistry& metrics() const { return metrics_; }
  /// True when WP_TRACE requested a JSONL event log.
  [[nodiscard]] bool tracing() const { return trace_ != nullptr; }

 private:
  struct CellEntry;

  /// Finds-or-creates the memo entry and computes it exactly once
  /// (concurrent callers for the same key block until it is ready).
  CellEntry& ensureCell(const PreparedWorkload& p,
                        const cache::CacheGeometry& icache,
                        const SchemeSpec& spec);

  Runner runner_;
  mutable MetricsRegistry metrics_;
  /// Created before (and so destroyed after) the pool whose workers
  /// write to it. Null unless WP_TRACE is set.
  std::unique_ptr<TraceWriter> trace_;
  ThreadPool pool_;
  std::vector<PreparedWorkload> prepared_;
  mutable std::mutex memo_mutex_;  ///< also guards const report reads
  /// Keyed by keyOf(); entries hold a once_flag, so they live behind a
  /// unique_ptr (once_flag is neither movable nor copyable).
  std::map<std::string, std::unique_ptr<CellEntry>> memo_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace wp::driver
