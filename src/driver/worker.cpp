#include "driver/worker.hpp"

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>

#include "driver/checkpoint.hpp"
#include "support/metrics.hpp"

namespace wp::driver {

namespace {

/// Writes all of @p line to @p fd, retrying on EINTR. Best-effort: if
/// the parent died and the pipe is broken there is nobody left to tell.
void writeAll(int fd, const std::string& line) {
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

/// The child's half of the protocol: run the attempt, write one line,
/// _exit. Never returns. Exit codes: 0 = record on the pipe, 2 = fail
/// event on the pipe. Anything else (or a signal) means the attempt
/// itself died and the parent classifies the corpse.
[[noreturn]] void childMain(int write_fd, const std::string& key,
                            u64 image_digest,
                            const std::function<RunResult()>& attempt) {
  std::string line;
  int code = 0;
  try {
    const auto start = std::chrono::steady_clock::now();
    const RunResult result = attempt();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    line = renderRecord(key, image_digest, result, wall);
  } catch (const std::exception& e) {
    // SimError (cell faults, watchdog, WP_ENSURE) and anything else the
    // attempt can throw travel back verbatim so the parent's retry
    // ladder sees the same message an in-process run would have.
    line = "{\"ev\": \"fail\", \"what\": \"" +
           jsonEscape(e.what()) + "\"}";
    code = 2;
  }
  line += '\n';
  writeAll(write_fd, line);
  ::close(write_fd);
  // _Exit, not exit: the child shares the parent's stdio buffers and
  // atexit registrations; flushing or tearing them down here would
  // corrupt the parent's output.
  std::_Exit(code);
}

/// Reads the child's pipe until EOF or @p deadline. Returns false on
/// deadline overrun (the caller kills the child).
bool readWithDeadline(int fd, std::string& out, bool use_deadline,
                      std::chrono::steady_clock::time_point deadline) {
  char buf[4096];
  for (;;) {
    if (use_deadline) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                now)
              .count();
      struct pollfd p = {fd, POLLIN, 0};
      const int r = ::poll(&p, 1, static_cast<int>(left) + 1);
      if (r < 0) {
        if (errno == EINTR) continue;
        return true;  // poll itself broke: fall through to classification
      }
      if (r == 0) return false;  // deadline
    }
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;
    }
    if (n == 0) return true;  // EOF: child closed its end
    out.append(buf, static_cast<std::size_t>(n));
  }
}

/// waitpid that survives EINTR.
int waitFor(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

std::string tag(const std::string& key, const std::string& what) {
  return "worker for cell '" + key + "': " + what;
}

}  // namespace

WorkerResult runCellInWorker(const std::string& key, u64 image_digest,
                             u64 timeout_ms,
                             const std::function<RunResult()>& attempt) {
  WorkerResult out;
  int fds[2];
  if (::pipe(fds) != 0) {
    out.error = tag(key, std::string("pipe() failed: ") +
                             std::strerror(errno));
    return out;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.error = tag(key, std::string("fork() failed: ") +
                             std::strerror(errno));
    return out;
  }
  if (pid == 0) {
    ::close(fds[0]);
    childMain(fds[1], key, image_digest, attempt);  // never returns
  }
  ::close(fds[1]);

  const bool use_deadline = timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  std::string payload;
  const bool finished = readWithDeadline(fds[0], payload, use_deadline,
                                         deadline);
  ::close(fds[0]);

  if (!finished) {
    // Wall-clock overrun enforced from *outside* the crash domain: this
    // is the only watchdog that can end a cell that stopped retiring
    // instructions (where the in-process budget hook never runs).
    ::kill(pid, SIGKILL);
    waitFor(pid);
    out.error = tag(key, "hung — exceeded WP_CELL_TIMEOUT_MS=" +
                             std::to_string(timeout_ms) +
                             " without producing a result; killed");
    return out;
  }

  const int status = waitFor(pid);
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    out.error = tag(key, std::string("crashed — died by signal ") +
                             std::to_string(sig) + " (" +
                             ::strsignal(sig) + ")");
    return out;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;

  // One line is the whole protocol; take the first (a crashing attempt
  // can leave trailing garbage after a complete line, never before it).
  const std::size_t nl = payload.find('\n');
  const std::string line =
      nl == std::string::npos ? payload : payload.substr(0, nl);

  if (code == 2) {
    std::map<std::string, JsonToken> tokens;
    if (parseFlatJsonLine(line, tokens)) {
      const auto ev = tokens.find("ev");
      const auto what = tokens.find("what");
      if (ev != tokens.end() && ev->second.text == "fail" &&
          what != tokens.end() && what->second.is_string) {
        out.error = what->second.text;  // child's SimError, verbatim
        return out;
      }
    }
    out.error = tag(key, "reported a failure but its message was torn");
    return out;
  }
  if (code != 0) {
    out.error = tag(key, "exited with status " + std::to_string(code) +
                             " without a result");
    return out;
  }

  // Exit 0: the line must be a record that verifies against its own
  // stats digest and names this cell — the same trust rules the journal
  // and the result store apply. A child that was killed between write()
  // and _exit cannot happen (the write precedes the exit), but a torn
  // or alien line still must never become a table cell.
  CheckpointRecord rec;
  switch (parseRecordLine(line, rec)) {
    case RecordParse::kOk:
      break;
    case RecordParse::kMalformed:
      out.error = tag(key, "returned a torn or malformed result record");
      return out;
    case RecordParse::kDigestMismatch:
      out.error = tag(key, "returned a record whose stats digest does not "
                           "match its payload");
      return out;
  }
  if (rec.key != key) {
    out.error = tag(key, "returned a record for foreign cell '" + rec.key +
                             "'");
    return out;
  }
  out.ok = true;
  out.result = std::move(rec.result);
  out.wall_seconds = rec.wall_seconds;
  return out;
}

}  // namespace wp::driver
