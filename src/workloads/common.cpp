#include "workloads/common.hpp"

#include <cmath>

namespace wp::workloads {

namespace {

u64 seedFor(const std::string& workload, InputSize size,
            u64 experiment_seed) {
  // FNV-1a over the name, salted by the input size and the experiment
  // seed (seed 0 leaves the hash — and thus the inputs — unchanged).
  u64 h = 0xcbf29ce484222325ULL;
  for (const char c : workload) {
    h ^= static_cast<u8>(c);
    h *= 0x100000001b3ULL;
  }
  return mixSeed(h ^ (size == InputSize::kSmall ? 0x5eedULL : 0x1a56eULL),
                 experiment_seed);
}

}  // namespace

std::vector<u8> randomBytes(const std::string& workload, InputSize size,
                            std::size_t count, u64 experiment_seed) {
  Rng rng(seedFor(workload, size, experiment_seed));
  std::vector<u8> out(count);
  for (auto& b : out) b = static_cast<u8>(rng.next());
  return out;
}

std::vector<u32> randomWords(const std::string& workload, InputSize size,
                             std::size_t count, u64 experiment_seed) {
  Rng rng(seedFor(workload, size, experiment_seed));
  std::vector<u32> out(count);
  for (auto& w : out) w = rng.next32();
  return out;
}

std::vector<u8> randomText(const std::string& workload, InputSize size,
                           std::size_t count, u64 experiment_seed) {
  Rng rng(seedFor(workload, size, experiment_seed) ^ 0x7e47ULL);
  std::vector<u8> out;
  out.reserve(count);
  while (out.size() < count) {
    const u64 len = 2 + rng.below(9);
    for (u64 i = 0; i < len && out.size() < count; ++i) {
      out.push_back(static_cast<u8>('a' + rng.below(26)));
    }
    if (out.size() < count) out.push_back(' ');
  }
  return out;
}

std::vector<u8> syntheticImage(const std::string& workload, InputSize size,
                               u32 width, u32 height, u64 experiment_seed) {
  Rng rng(seedFor(workload, size, experiment_seed) ^ 0x1316eULL);
  std::vector<u8> img(static_cast<std::size_t>(width) * height);
  const double fx = 2.0 * 3.14159265358979 / width * (1 + rng.below(3));
  const double fy = 2.0 * 3.14159265358979 / height * (1 + rng.below(3));
  for (u32 y = 0; y < height; ++y) {
    for (u32 x = 0; x < width; ++x) {
      const double base =
          128.0 + 60.0 * std::sin(fx * x) * std::cos(fy * y) +
          40.0 * ((x + y) % 64) / 64.0;
      const double noise = static_cast<double>(rng.below(17)) - 8.0;
      double v = base + noise;
      if (v < 0) v = 0;
      if (v > 255) v = 255;
      img[static_cast<std::size_t>(y) * width + x] = static_cast<u8>(v);
    }
  }
  return img;
}

std::vector<i16> syntheticAudio(const std::string& workload, InputSize size,
                                std::size_t samples, u64 experiment_seed) {
  Rng rng(seedFor(workload, size, experiment_seed) ^ 0xaad10ULL);
  std::vector<i16> out(samples);
  double phase1 = rng.unit() * 6.28, phase2 = rng.unit() * 6.28;
  const double f1 = 0.01 + rng.unit() * 0.05;
  const double f2 = 0.002 + rng.unit() * 0.01;
  for (std::size_t i = 0; i < samples; ++i) {
    const double env = 0.4 + 0.6 * std::fabs(std::sin(f2 * i + phase2));
    const double v = 12000.0 * env * std::sin(f1 * i + phase1) +
                     (static_cast<double>(rng.below(401)) - 200.0);
    out[i] = static_cast<i16>(v);
  }
  return out;
}

}  // namespace wp::workloads
