// bitcount — MiBench auto/bitcount: counts bits in a stream of random
// words with five different algorithms (shift-and-test, Kernighan's
// clear-lowest-bit, 4-bit nibble table, 8-bit byte table, SWAR), each in
// its own loop calling its own function — the multi-kernel, call-heavy
// profile the original is known for.
#include "workloads/common.hpp"
#include "workloads/factories.hpp"

namespace wp::workloads {

namespace {

constexpr std::size_t kSmallWords = 1200;
constexpr std::size_t kLargeWords = 10000;
constexpr int kAlgorithms = 5;

std::vector<u32> inputWords(InputSize size, u64 seed) {
  return randomWords("bitcount", size,
                     size == InputSize::kSmall ? kSmallWords : kLargeWords,
                     seed);
}

class BitcountWorkload final : public Workload {
 public:
  using Workload::Workload;

  std::string name() const override { return "bitcount"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    // Lookup tables.
    std::vector<u8> nib(16), byte_tab(256);
    for (u32 i = 0; i < 16; ++i) nib[i] = static_cast<u8>(popcount(i));
    for (u32 i = 0; i < 256; ++i) byte_tab[i] = static_cast<u8>(popcount(i));
    mb.data("nib_tab", nib);
    mb.data("byte_tab", byte_tab);
    input_off_ = mb.bss("input", kLargeWords * 4);
    nwords_off_ = mb.bss("nwords", 4);
    out_off_ = mb.bss("sums", kAlgorithms * 4);

    emitShift(mb);
    emitKernighan(mb);
    emitNibble(mb);
    emitByte(mb);
    emitSwar(mb);

    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7});
    const char* fns[kAlgorithms] = {"bc_shift", "bc_kern", "bc_nib",
                                    "bc_byte", "bc_swar"};
    for (int a = 0; a < kAlgorithms; ++a) {
      f.la(r4, "input");
      f.la(r0, "nwords");
      f.ldr(r5, r0);
      f.movi(r6, 0);  // sum
      const auto loop = f.label();
      const auto done = f.label();
      f.bind(loop);
      f.cmpiBr(r5, 0, Cond::kEq, done);
      f.ldr(r0, r4, 0);
      f.call(fns[a]);
      f.add(r6, r6, r0);
      f.addi(r4, r4, 4);
      f.subi(r5, r5, 1);
      f.jmp(loop);
      f.bind(done);
      f.la(r7, "sums", a * 4);
      f.str(r6, r7);
    }
    f.epilogue({r4, r5, r6, r7});

    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const auto words = inputWords(size, experimentSeed());
    writeWords(memory, guestAddr(input_off_), words);
    memory.store32(guestAddr(nwords_off_), static_cast<u32>(words.size()));
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    return memory.readBlock(guestAddr(out_off_), kAlgorithms * 4);
  }

  std::vector<u8> expected(InputSize size) const override {
    u32 total = 0;
    for (const u32 w : inputWords(size, experimentSeed())) total += popcount(w);
    std::vector<u32> sums(kAlgorithms, total);
    return toBytes(sums);
  }

 private:
  static void emitShift(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bc_shift");
    f.mov(r1, r0);
    f.movi(r0, 0);
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r1, 0, Cond::kEq, done);
    f.andi(r2, r1, 1);
    f.add(r0, r0, r2);
    f.lsri(r1, r1, 1);
    f.jmp(loop);
    f.bind(done);
    f.ret();
  }

  static void emitKernighan(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bc_kern");
    f.mov(r1, r0);
    f.movi(r0, 0);
    const auto loop = f.label();
    const auto done = f.label();
    f.bind(loop);
    f.cmpiBr(r1, 0, Cond::kEq, done);
    f.subi(r2, r1, 1);
    f.and_(r1, r1, r2);
    f.addi(r0, r0, 1);
    f.jmp(loop);
    f.bind(done);
    f.ret();
  }

  static void emitNibble(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bc_nib");
    f.la(r2, "nib_tab");
    f.mov(r1, r0);
    f.movi(r0, 0);
    f.movi(r3, 8);
    const auto loop = f.label();
    f.bind(loop);
    f.andi(r12, r1, 0xf);
    f.ldrbx(r12, r2, r12);
    f.add(r0, r0, r12);
    f.lsri(r1, r1, 4);
    f.subi(r3, r3, 1);
    f.cmpiBr(r3, 0, Cond::kNe, loop);
    f.ret();
  }

  static void emitByte(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bc_byte");
    f.la(r2, "byte_tab");
    f.mov(r1, r0);
    f.movi(r0, 0);
    f.movi(r3, 4);
    const auto loop = f.label();
    f.bind(loop);
    f.andi(r12, r1, 0xff);
    f.ldrbx(r12, r2, r12);
    f.add(r0, r0, r12);
    f.lsri(r1, r1, 8);
    f.subi(r3, r3, 1);
    f.cmpiBr(r3, 0, Cond::kNe, loop);
    f.ret();
  }

  static void emitSwar(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("bc_swar");
    // v -= (v >> 1) & 0x55555555
    f.lsri(r1, r0, 1);
    f.movi32(r2, 0x55555555u);
    f.and_(r1, r1, r2);
    f.sub(r0, r0, r1);
    // v = (v & 0x33333333) + ((v >> 2) & 0x33333333)
    f.movi32(r2, 0x33333333u);
    f.and_(r1, r0, r2);
    f.lsri(r0, r0, 2);
    f.and_(r0, r0, r2);
    f.add(r0, r0, r1);
    // v = (v + (v >> 4)) & 0x0F0F0F0F
    f.lsri(r1, r0, 4);
    f.add(r0, r0, r1);
    f.movi32(r2, 0x0F0F0F0Fu);
    f.and_(r0, r0, r2);
    // count = (v * 0x01010101) >> 24
    f.movi32(r2, 0x01010101u);
    f.mul(r0, r0, r2);
    f.lsri(r0, r0, 24);
    f.ret();
  }

  u32 input_off_ = 0;
  u32 nwords_off_ = 0;
  u32 out_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeBitcount(u64 seed) {
  return std::make_unique<BitcountWorkload>(seed);
}

}  // namespace wp::workloads
