#include "workloads/references.hpp"

#include <cmath>

#include "support/ensure.hpp"
#include "support/rng.hpp"

namespace wp::workloads::ref {

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

namespace {
constexpr u32 rol(u32 v, u32 n) { return (v << n) | (v >> (32 - n)); }
}  // namespace

std::vector<u8> sha1Pad(std::span<const u8> message) {
  std::vector<u8> out(message.begin(), message.end());
  const u64 bit_len = static_cast<u64>(message.size()) * 8;
  out.push_back(0x80);
  while (out.size() % 64 != 56) out.push_back(0);
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<u8>(bit_len >> (i * 8)));
  }
  return out;
}

std::array<u32, 5> sha1(std::span<const u8> message) {
  std::array<u32, 5> h = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u,
                          0xC3D2E1F0u};
  const std::vector<u8> padded = sha1Pad(message);
  u32 w[80];
  for (std::size_t off = 0; off < padded.size(); off += 64) {
    for (int t = 0; t < 16; ++t) {
      w[t] = (static_cast<u32>(padded[off + t * 4]) << 24) |
             (static_cast<u32>(padded[off + t * 4 + 1]) << 16) |
             (static_cast<u32>(padded[off + t * 4 + 2]) << 8) |
             static_cast<u32>(padded[off + t * 4 + 3]);
    }
    for (int t = 16; t < 80; ++t) {
      w[t] = rol(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
    }
    u32 a = h[0], b = h[1], c = h[2], d = h[3], e = h[4];
    for (int t = 0; t < 80; ++t) {
      u32 f, k;
      if (t < 20) {
        f = (b & c) | (~b & d);
        k = 0x5A827999u;
      } else if (t < 40) {
        f = b ^ c ^ d;
        k = 0x6ED9EBA1u;
      } else if (t < 60) {
        f = (b & c) | (b & d) | (c & d);
        k = 0x8F1BBCDCu;
      } else {
        f = b ^ c ^ d;
        k = 0xCA62C1D6u;
      }
      const u32 temp = rol(a, 5) + f + e + k + w[t];
      e = d;
      d = c;
      c = rol(b, 30);
      b = a;
      a = temp;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
  }
  return h;
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

u32 crc32(std::span<const u8> data) {
  static const std::array<u32, 256> table = [] {
    std::array<u32, 256> t{};
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  u32 crc = 0xFFFFFFFFu;
  for (const u8 b : data) crc = table[(crc ^ b) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

// ---------------------------------------------------------------------------
// AES-128
// ---------------------------------------------------------------------------

namespace aes {

u8 gfmul(u8 a, u8 b) {
  u8 p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1u) p ^= a;
    const bool hi = (a & 0x80u) != 0;
    a = static_cast<u8>(a << 1);
    if (hi) a ^= 0x1Bu;
    b >>= 1;
  }
  return p;
}

// S-box derived from first principles (GF(2^8) inverse + affine map) so
// no 256-entry constant needs transcribing; FIPS-197 vectors in the test
// suite pin it down.
const std::array<u8, 256>& sbox() {
  static const std::array<u8, 256> box = [] {
    std::array<u8, 256> s{};
    for (u32 x = 0; x < 256; ++x) {
      u8 inv = 0;
      if (x != 0) {
        for (u32 y = 1; y < 256; ++y) {
          if (gfmul(static_cast<u8>(x), static_cast<u8>(y)) == 1) {
            inv = static_cast<u8>(y);
            break;
          }
        }
      }
      const auto rot = [](u8 v, int n) {
        return static_cast<u8>((v << n) | (v >> (8 - n)));
      };
      s[x] = static_cast<u8>(inv ^ rot(inv, 1) ^ rot(inv, 2) ^ rot(inv, 3) ^
                             rot(inv, 4) ^ 0x63u);
    }
    return s;
  }();
  return box;
}

const std::array<u8, 256>& invSbox() {
  static const std::array<u8, 256> box = [] {
    std::array<u8, 256> s{};
    for (u32 x = 0; x < 256; ++x) s[sbox()[x]] = static_cast<u8>(x);
    return s;
  }();
  return box;
}

}  // namespace aes

const std::array<u8, 256>& aesSbox() { return aes::sbox(); }
const std::array<u8, 256>& aesInvSbox() { return aes::invSbox(); }
u8 aesGfmul(u8 a, u8 b) { return aes::gfmul(a, b); }

Aes128::Aes128(std::span<const u8> key16) {
  WP_ENSURE(key16.size() == 16, "AES-128 key must be 16 bytes");
  const auto& sb = aes::sbox();
  for (int i = 0; i < 16; ++i) round_keys_[i] = key16[i];
  u8 rcon = 1;
  for (int i = 4; i < 44; ++i) {
    u8 t[4] = {round_keys_[(i - 1) * 4], round_keys_[(i - 1) * 4 + 1],
               round_keys_[(i - 1) * 4 + 2], round_keys_[(i - 1) * 4 + 3]};
    if (i % 4 == 0) {
      const u8 tmp = t[0];  // RotWord
      t[0] = static_cast<u8>(sb[t[1]] ^ rcon);
      t[1] = sb[t[2]];
      t[2] = sb[t[3]];
      t[3] = sb[tmp];
      rcon = aes::gfmul(rcon, 2);
    }
    for (int b = 0; b < 4; ++b) {
      round_keys_[i * 4 + b] =
          static_cast<u8>(round_keys_[(i - 4) * 4 + b] ^ t[b]);
    }
  }
}

void Aes128::encryptBlock(const u8 in[16], u8 out[16]) const {
  const auto& sb = aes::sbox();
  u8 s[16];
  for (int i = 0; i < 16; ++i) s[i] = static_cast<u8>(in[i] ^ round_keys_[i]);
  for (int round = 1; round <= 10; ++round) {
    // SubBytes.
    for (auto& b : s) b = sb[b];
    // ShiftRows: byte index = r + 4c.
    u8 t[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) t[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
    }
    if (round < 10) {
      // MixColumns.
      for (int c = 0; c < 4; ++c) {
        const u8 a0 = t[4 * c], a1 = t[4 * c + 1], a2 = t[4 * c + 2],
                 a3 = t[4 * c + 3];
        s[4 * c] = static_cast<u8>(aes::gfmul(a0, 2) ^ aes::gfmul(a1, 3) ^ a2 ^ a3);
        s[4 * c + 1] = static_cast<u8>(a0 ^ aes::gfmul(a1, 2) ^ aes::gfmul(a2, 3) ^ a3);
        s[4 * c + 2] = static_cast<u8>(a0 ^ a1 ^ aes::gfmul(a2, 2) ^ aes::gfmul(a3, 3));
        s[4 * c + 3] = static_cast<u8>(aes::gfmul(a0, 3) ^ a1 ^ a2 ^ aes::gfmul(a3, 2));
      }
    } else {
      for (int i = 0; i < 16; ++i) s[i] = t[i];
    }
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[round * 16 + i];
  }
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

void Aes128::decryptBlock(const u8 in[16], u8 out[16]) const {
  const auto& isb = aes::invSbox();
  u8 s[16];
  for (int i = 0; i < 16; ++i) {
    s[i] = static_cast<u8>(in[i] ^ round_keys_[160 + i]);
  }
  for (int round = 9; round >= 0; --round) {
    // InvShiftRows.
    u8 t[16];
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) t[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
    }
    // InvSubBytes + AddRoundKey.
    for (int i = 0; i < 16; ++i) {
      s[i] = static_cast<u8>(isb[t[i]] ^ round_keys_[round * 16 + i]);
    }
    if (round > 0) {
      // InvMixColumns.
      for (int c = 0; c < 4; ++c) {
        const u8 a0 = s[4 * c], a1 = s[4 * c + 1], a2 = s[4 * c + 2],
                 a3 = s[4 * c + 3];
        s[4 * c] = static_cast<u8>(aes::gfmul(a0, 14) ^ aes::gfmul(a1, 11) ^
                                   aes::gfmul(a2, 13) ^ aes::gfmul(a3, 9));
        s[4 * c + 1] = static_cast<u8>(aes::gfmul(a0, 9) ^ aes::gfmul(a1, 14) ^
                                       aes::gfmul(a2, 11) ^ aes::gfmul(a3, 13));
        s[4 * c + 2] = static_cast<u8>(aes::gfmul(a0, 13) ^ aes::gfmul(a1, 9) ^
                                       aes::gfmul(a2, 14) ^ aes::gfmul(a3, 11));
        s[4 * c + 3] = static_cast<u8>(aes::gfmul(a0, 11) ^ aes::gfmul(a1, 13) ^
                                       aes::gfmul(a2, 9) ^ aes::gfmul(a3, 14));
      }
    }
  }
  for (int i = 0; i < 16; ++i) out[i] = s[i];
}

// ---------------------------------------------------------------------------
// Blowfish-variant
// ---------------------------------------------------------------------------

void Blowfish::initialTables(u64 seed, std::array<u32, 18>& p,
                             std::array<u32, 1024>& s) {
  Rng rng(seed);
  for (auto& v : p) v = rng.next32();
  for (auto& v : s) v = rng.next32();
}

u32 Blowfish::feistel(u32 x) const {
  const u32 a = x >> 24, b = (x >> 16) & 0xffu, c = (x >> 8) & 0xffu,
            d = x & 0xffu;
  return ((s[a] + s[256 + b]) ^ s[512 + c]) + s[768 + d];
}

Blowfish::Blowfish(std::span<const u8> key, u64 table_seed) {
  WP_ENSURE(!key.empty(), "empty blowfish key");
  initialTables(table_seed, p, s);
  // XOR the key into P, cycling.
  std::size_t kpos = 0;
  for (auto& pv : p) {
    u32 kw = 0;
    for (int i = 0; i < 4; ++i) {
      kw = (kw << 8) | key[kpos];
      kpos = (kpos + 1) % key.size();
    }
    pv ^= kw;
  }
  // Regenerate P then S by repeated encryption of the zero block.
  u32 l = 0, r = 0;
  for (std::size_t i = 0; i < p.size(); i += 2) {
    encryptBlock(l, r);
    p[i] = l;
    p[i + 1] = r;
  }
  for (std::size_t i = 0; i < s.size(); i += 2) {
    encryptBlock(l, r);
    s[i] = l;
    s[i + 1] = r;
  }
}

void Blowfish::encryptBlock(u32& left, u32& right) const {
  u32 xl = left, xr = right;
  for (int i = 0; i < 16; ++i) {
    xl ^= p[i];
    xr ^= feistel(xl);
    std::swap(xl, xr);
  }
  std::swap(xl, xr);
  xr ^= p[16];
  xl ^= p[17];
  left = xl;
  right = xr;
}

void Blowfish::decryptBlock(u32& left, u32& right) const {
  u32 xl = left, xr = right;
  for (int i = 17; i > 1; --i) {
    xl ^= p[i];
    xr ^= feistel(xl);
    std::swap(xl, xr);
  }
  std::swap(xl, xr);
  xr ^= p[1];
  xl ^= p[0];
  left = xl;
  right = xr;
}

// ---------------------------------------------------------------------------
// IMA ADPCM
// ---------------------------------------------------------------------------

namespace {
constexpr i16 kStepTable[89] = {
    7,     8,     9,     10,    11,    12,    13,    14,    16,    17,
    19,    21,    23,    25,    28,    31,    34,    37,    41,    45,
    50,    55,    60,    66,    73,    80,    88,    97,    107,   118,
    130,   143,   157,   173,   190,   209,   230,   253,   279,   307,
    337,   371,   408,   449,   494,   544,   598,   658,   724,   796,
    876,   963,   1060,  1166,  1282,  1411,  1552,  1707,  1878,  2066,
    2272,  2499,  2749,  3024,  3327,  3660,  4026,  4428,  4871,  5358,
    5894,  6484,  7132,  7845,  8630,  9493,  10442, 11487, 12635, 13899,
    15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767};
constexpr i8 kIndexTable[16] = {-1, -1, -1, -1, 2, 4, 6, 8,
                                -1, -1, -1, -1, 2, 4, 6, 8};
}  // namespace

std::span<const i16> adpcmStepTable() { return kStepTable; }
std::span<const i8> adpcmIndexTable() { return kIndexTable; }

std::vector<u8> adpcmEncode(std::span<const i16> pcm) {
  std::vector<u8> out;
  out.reserve((pcm.size() + 1) / 2);
  i32 valpred = 0;
  i32 index = 0;
  i32 step = kStepTable[0];
  u8 outputbuffer = 0;
  bool high_nibble = true;

  for (const i16 sample : pcm) {
    i32 diff = sample - valpred;
    const i32 sign = diff < 0 ? 8 : 0;
    if (sign) diff = -diff;

    i32 delta = 0;
    i32 vpdiff = step >> 3;
    if (diff >= step) {
      delta = 4;
      diff -= step;
      vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
      delta |= 2;
      diff -= step;
      vpdiff += step;
    }
    step >>= 1;
    if (diff >= step) {
      delta |= 1;
      vpdiff += step;
    }

    if (sign) {
      valpred -= vpdiff;
    } else {
      valpred += vpdiff;
    }
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;

    delta |= sign;
    index += kIndexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;
    step = kStepTable[index];

    if (high_nibble) {
      outputbuffer = static_cast<u8>((delta << 4) & 0xf0);
    } else {
      out.push_back(static_cast<u8>((delta & 0x0f) | outputbuffer));
    }
    high_nibble = !high_nibble;
  }
  if (!high_nibble) out.push_back(outputbuffer);
  return out;
}

std::vector<i16> adpcmDecode(std::span<const u8> codes,
                             std::size_t sample_count) {
  std::vector<i16> out;
  out.reserve(sample_count);
  i32 valpred = 0;
  i32 index = 0;
  i32 step = kStepTable[0];
  std::size_t inpos = 0;
  bool high_nibble = true;

  for (std::size_t n = 0; n < sample_count; ++n) {
    i32 delta;
    if (high_nibble) {
      WP_ENSURE(inpos < codes.size(), "adpcm stream too short");
      delta = (codes[inpos] >> 4) & 0xf;
    } else {
      delta = codes[inpos] & 0xf;
      ++inpos;
    }
    high_nibble = !high_nibble;

    index += kIndexTable[delta];
    if (index < 0) index = 0;
    if (index > 88) index = 88;

    const i32 sign = delta & 8;
    delta &= 7;
    i32 vpdiff = step >> 3;
    if (delta & 4) vpdiff += step;
    if (delta & 2) vpdiff += step >> 1;
    if (delta & 1) vpdiff += step >> 2;
    if (sign) {
      valpred -= vpdiff;
    } else {
      valpred += vpdiff;
    }
    if (valpred > 32767) valpred = 32767;
    if (valpred < -32768) valpred = -32768;

    step = kStepTable[index];
    out.push_back(static_cast<i16>(valpred));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fixed-point FFT
// ---------------------------------------------------------------------------

void fftTwiddles(std::size_t n, std::vector<i32>& cos_q15,
                 std::vector<i32>& sin_q15) {
  cos_q15.resize(n / 2);
  sin_q15.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double a = 2.0 * 3.14159265358979323846 * static_cast<double>(k) /
                     static_cast<double>(n);
    cos_q15[k] = static_cast<i32>(std::lround(32767.0 * std::cos(a)));
    sin_q15[k] = static_cast<i32>(std::lround(32767.0 * std::sin(a)));
  }
}

void fftFixed(std::vector<i32>& re, std::vector<i32>& im, bool inverse) {
  const std::size_t n = re.size();
  WP_ENSURE(n == im.size() && isPow2(n), "fft size must be a power of two");
  std::vector<i32> cs, sn;
  fftTwiddles(n, cs, sn);

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const std::size_t tstep = n / len;
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < half; ++j) {
        const std::size_t k = j * tstep;
        const i32 wr = cs[k];
        const i32 wi = inverse ? sn[k] : -sn[k];
        const i32 xr = re[i + j + half];
        const i32 xi = im[i + j + half];
        const i32 tr = (wr * xr - wi * xi) >> 15;
        const i32 ti = (wr * xi + wi * xr) >> 15;
        re[i + j + half] = (re[i + j] - tr) >> 1;
        im[i + j + half] = (im[i + j] - ti) >> 1;
        re[i + j] = (re[i + j] + tr) >> 1;
        im[i + j] = (im[i + j] + ti) >> 1;
      }
    }
  }
}

}  // namespace wp::workloads::ref
