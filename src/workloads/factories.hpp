// Internal factory declarations — one per benchmark. The public entry
// points are suiteNames()/makeWorkload() in workload.hpp. Every factory
// takes the experiment seed so the instance's input generation (and any
// key material embedded by build()) derives from it; workloads with
// fixed inputs still mix it in for suite-wide seed coverage.
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace wp::workloads {

std::unique_ptr<Workload> makeBitcount(u64 seed);
std::unique_ptr<Workload> makeSusanC(u64 seed);
std::unique_ptr<Workload> makeSusanE(u64 seed);
std::unique_ptr<Workload> makeSusanS(u64 seed);
std::unique_ptr<Workload> makeCjpeg(u64 seed);
std::unique_ptr<Workload> makeDjpeg(u64 seed);
std::unique_ptr<Workload> makeTiff2bw(u64 seed);
std::unique_ptr<Workload> makeTiff2rgba(u64 seed);
std::unique_ptr<Workload> makeTiffdither(u64 seed);
std::unique_ptr<Workload> makeTiffmedian(u64 seed);
std::unique_ptr<Workload> makePatricia(u64 seed);
std::unique_ptr<Workload> makeIspell(u64 seed);
std::unique_ptr<Workload> makeRsynth(u64 seed);
std::unique_ptr<Workload> makeBlowfishD(u64 seed);
std::unique_ptr<Workload> makeBlowfishE(u64 seed);
std::unique_ptr<Workload> makeRijndaelD(u64 seed);
std::unique_ptr<Workload> makeRijndaelE(u64 seed);
std::unique_ptr<Workload> makeSha(u64 seed);
std::unique_ptr<Workload> makeRawcaudio(u64 seed);
std::unique_ptr<Workload> makeRawdaudio(u64 seed);
std::unique_ptr<Workload> makeCrc(u64 seed);
std::unique_ptr<Workload> makeFft(u64 seed);
std::unique_ptr<Workload> makeFftInv(u64 seed);

}  // namespace wp::workloads
