// Internal factory declarations — one per benchmark. The public entry
// points are suiteNames()/makeWorkload() in workload.hpp.
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace wp::workloads {

std::unique_ptr<Workload> makeBitcount();
std::unique_ptr<Workload> makeSusanC();
std::unique_ptr<Workload> makeSusanE();
std::unique_ptr<Workload> makeSusanS();
std::unique_ptr<Workload> makeCjpeg();
std::unique_ptr<Workload> makeDjpeg();
std::unique_ptr<Workload> makeTiff2bw();
std::unique_ptr<Workload> makeTiff2rgba();
std::unique_ptr<Workload> makeTiffdither();
std::unique_ptr<Workload> makeTiffmedian();
std::unique_ptr<Workload> makePatricia();
std::unique_ptr<Workload> makeIspell();
std::unique_ptr<Workload> makeRsynth();
std::unique_ptr<Workload> makeBlowfishD();
std::unique_ptr<Workload> makeBlowfishE();
std::unique_ptr<Workload> makeRijndaelD();
std::unique_ptr<Workload> makeRijndaelE();
std::unique_ptr<Workload> makeSha();
std::unique_ptr<Workload> makeRawcaudio();
std::unique_ptr<Workload> makeRawdaudio();
std::unique_ptr<Workload> makeCrc();
std::unique_ptr<Workload> makeFft();
std::unique_ptr<Workload> makeFftInv();

}  // namespace wp::workloads
