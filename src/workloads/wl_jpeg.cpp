// cjpeg / djpeg — MiBench consumer/jpeg: the computational core of a
// baseline JPEG codec on grayscale images.
//   cjpeg: per 8x8 block — level shift, separable Q12 integer DCT-II
//          (orthonormal, so the inverse reuses the transposed table),
//          quantization (signed divide via the guest sdiv routine),
//          zigzag scan and zero-run RLE into a word stream.
//   djpeg: parse the RLE stream, dezigzag, dequantize, integer IDCT,
//          level unshift and clamp back to pixels.
// Entropy coding (Huffman) is replaced by the RLE stage — the DCT,
// quantizer and scan order dominate the original's execution profile
// (recorded as a substitution in DESIGN.md).
#include <cmath>

#include "workloads/common.hpp"
#include "workloads/factories.hpp"
#include "workloads/guestlib.hpp"

namespace wp::workloads {

namespace {

struct Dims {
  u32 w, h;
};

Dims dimsFor(InputSize s) {
  return s == InputSize::kSmall ? Dims{64, 48} : Dims{192, 144};
}

constexpr u32 kMaxPixels = 192 * 144;
constexpr u32 kMaxStreamWords = (kMaxPixels / 64) * 65 + 1;
constexpr u32 kEob = 0x80000000u;

// Q12 orthonormal DCT-II matrix: coef[k][n] = round(4096 * c_k *
// cos((2n+1)k pi / 16) / 2), c_0 = 1/sqrt(2), else 1. C * C^T = I (up to
// rounding), so the IDCT is the transposed product with the same table.
std::vector<u32> dctCoefWords() {
  std::vector<u32> w(64);
  for (int k = 0; k < 8; ++k) {
    const double ck = k == 0 ? 1.0 / std::sqrt(2.0) : 1.0;
    for (int n = 0; n < 8; ++n) {
      const double v =
          2048.0 * ck * std::cos((2 * n + 1) * k * 3.14159265358979 / 16.0);
      w[k * 8 + n] = static_cast<u32>(static_cast<i32>(std::lround(v)));
    }
  }
  return w;
}

std::vector<u8> zigzagOrder() {
  std::vector<u8> zz(64);
  int idx = 0;
  for (int s = 0; s < 15; ++s) {
    if (s % 2 == 0) {  // up-right
      for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y) {
        zz[idx++] = static_cast<u8>(y * 8 + (s - y));
      }
    } else {  // down-left
      for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x) {
        zz[idx++] = static_cast<u8>((s - x) * 8 + x);
      }
    }
  }
  return zz;
}

std::vector<u32> quantTable() {
  std::vector<u32> q(64);
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) q[u * 8 + v] = 8 + 2 * (u + v);
  }
  return q;
}

std::vector<u8> sourceImage(InputSize s, u64 seed) {
  const Dims d = dimsFor(s);
  return syntheticImage("jpeg", s, d.w, d.h, seed);
}

// --- host reference pipeline (bit-exact with the guest) -------------------

void refDct2d(i32 blk[64]) {
  const auto coef = dctCoefWords();
  i32 tmp[64];
  for (int r = 0; r < 8; ++r) {
    for (int k = 0; k < 8; ++k) {
      i32 acc = 0;
      for (int n = 0; n < 8; ++n) {
        acc += blk[r * 8 + n] * static_cast<i32>(coef[k * 8 + n]);
      }
      tmp[r * 8 + k] = (acc + 2048) >> 12;
    }
  }
  for (int c = 0; c < 8; ++c) {
    for (int k = 0; k < 8; ++k) {
      i32 acc = 0;
      for (int n = 0; n < 8; ++n) {
        acc += tmp[n * 8 + c] * static_cast<i32>(coef[k * 8 + n]);
      }
      blk[k * 8 + c] = (acc + 2048) >> 12;
    }
  }
}

void refIdct2d(i32 blk[64]) {
  const auto coef = dctCoefWords();
  i32 tmp[64];
  // Columns: x[n] = sum_k coef[k][n] * X[k].
  for (int c = 0; c < 8; ++c) {
    for (int n = 0; n < 8; ++n) {
      i32 acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += blk[k * 8 + c] * static_cast<i32>(coef[k * 8 + n]);
      }
      tmp[n * 8 + c] = (acc + 2048) >> 12;
    }
  }
  for (int r = 0; r < 8; ++r) {
    for (int n = 0; n < 8; ++n) {
      i32 acc = 0;
      for (int k = 0; k < 8; ++k) {
        acc += tmp[r * 8 + k] * static_cast<i32>(coef[k * 8 + n]);
      }
      blk[r * 8 + n] = (acc + 2048) >> 12;
    }
  }
}

std::vector<u32> refEncode(InputSize s, u64 seed) {
  const Dims d = dimsFor(s);
  const auto img = sourceImage(s, seed);
  const auto zz = zigzagOrder();
  const auto qt = quantTable();
  std::vector<u32> stream;
  stream.push_back(0);  // length patched at the end

  for (u32 by = 0; by < d.h / 8; ++by) {
    for (u32 bx = 0; bx < d.w / 8; ++bx) {
      i32 blk[64];
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          blk[y * 8 + x] =
              static_cast<i32>(img[(by * 8 + y) * d.w + bx * 8 + x]) - 128;
        }
      }
      refDct2d(blk);
      u32 run = 0;
      for (int i = 0; i < 64; ++i) {
        const int src = zz[i];
        const i32 q = blk[src] / static_cast<i32>(qt[src]);
        if (q == 0) {
          ++run;
        } else {
          stream.push_back((run << 16) |
                           (static_cast<u32>(q) & 0xffffu));
          run = 0;
        }
      }
      stream.push_back(kEob);
    }
  }
  stream[0] = static_cast<u32>(stream.size());
  return stream;
}

std::vector<u8> refDecode(InputSize s, u64 seed) {
  const Dims d = dimsFor(s);
  const auto stream = refEncode(s, seed);
  const auto zz = zigzagOrder();
  const auto qt = quantTable();
  std::vector<u8> img(static_cast<std::size_t>(d.w) * d.h);

  std::size_t pos = 1;
  for (u32 by = 0; by < d.h / 8; ++by) {
    for (u32 bx = 0; bx < d.w / 8; ++bx) {
      i32 blk[64] = {0};
      u32 i = 0;
      while (stream[pos] != kEob) {
        const u32 word = stream[pos++];
        i += word >> 16;  // zero run
        const i32 q = signExtend(word & 0xffffu, 16);
        const int dst = zz[i];
        blk[dst] = q * static_cast<i32>(qt[dst]);
        ++i;
      }
      ++pos;  // EOB
      refIdct2d(blk);
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          i32 v = blk[y * 8 + x] + 128;
          if (v < 0) v = 0;
          if (v > 255) v = 255;
          img[(by * 8 + y) * d.w + bx * 8 + x] = static_cast<u8>(v);
        }
      }
    }
  }
  return img;
}

// --- guest builders ---------------------------------------------------------

// Separable DCT/IDCT passes with the Q12 coefficients folded into
// multiply immediates and the k/n loops fully unrolled — the code shape
// a constant-propagating compiler produces for a fixed 8x8 transform
// (and what makes cjpeg/djpeg carry realistically large hot regions).
//
// Forward row pass: dst[r*8+k] = (sum_n src[r*8+n]*coef[k][n]+2048)>>12.
// Forward col pass: dst[k*8+c] = (sum_n src[n*8+c]*coef[k][n]+2048)>>12.
// Inverse swaps the roles (accumulate over k with coef[k][n]).
void emitTransformPass(asmkit::ModuleBuilder& mb, const char* fname,
                       bool col_pass, bool inverse) {
  using namespace asmkit;
  auto& f = mb.func(fname);
  f.prologue({r4, r5});
  const auto coef = dctCoefWords();
  const auto coefAt = [&coef](int k, int n) {
    return static_cast<i32>(static_cast<i32>(coef[k * 8 + n]));
  };

  // r0 = src, r1 = dst, r5 = vec index (row r or column c).
  f.movi(r5, 0);
  const auto vloop = f.label();
  const auto vdone = f.label();
  f.bind(vloop);
  f.cmpiBr(r5, 8, Cond::kGe, vdone);
  // r2 = src vector base, r3 = dst vector base.
  if (col_pass) {
    f.lsli(r2, r5, 2);  // c*4; element stride 32
  } else {
    f.lsli(r2, r5, 5);  // r*32; element stride 4
  }
  f.add(r3, r2, r1);
  f.add(r2, r2, r0);
  const i32 estride = col_pass ? 32 : 4;

  for (int out = 0; out < 8; ++out) {
    // acc (r4) = sum over in of src[in] * coefficient.
    bool first = true;
    for (int in = 0; in < 8; ++in) {
      const i32 c = inverse ? coefAt(in, out) : coefAt(out, in);
      f.ldr(r12, r2, in * estride);
      if (first) {
        f.muli(r4, r12, c);
        first = false;
      } else {
        f.muli(r12, r12, c);
        f.add(r4, r4, r12);
      }
    }
    f.addi(r4, r4, 2048);
    f.asri(r4, r4, 12);
    f.str(r4, r3, out * estride);
  }

  f.addi(r5, r5, 1);
  f.jmp(vloop);
  f.bind(vdone);
  f.epilogue({r4, r5});
}

class JpegWorkload : public Workload {
 public:
  JpegWorkload(u64 seed, bool decode) : Workload(seed), decode_(decode) {}

  std::string name() const override { return decode_ ? "djpeg" : "cjpeg"; }

  ir::Module build() override {
    asmkit::ModuleBuilder mb;
    using namespace asmkit;

    mb.dataWords("dct_coef", dctCoefWords());
    mb.data("zigzag", zigzagOrder());
    mb.dataWords("qtable", quantTable());
    img_off_ = mb.bss("image", kMaxPixels);
    stream_off_ = mb.bss("stream", kMaxStreamWords * 4);
    w_off_ = mb.bss("width", 4);
    h_off_ = mb.bss("height", 4);
    mb.bss("blk", 64 * 4);
    mb.bss("tmp", 64 * 4);

    if (decode_) {
      emitTransformPass(mb, "idct_cols", /*col_pass=*/true, /*inverse=*/true);
      emitTransformPass(mb, "idct_rows", /*col_pass=*/false, /*inverse=*/true);
      buildDecoder(mb);
    } else {
      emitSdiv(mb);
      emitTransformPass(mb, "dct_rows", /*col_pass=*/false, /*inverse=*/false);
      emitTransformPass(mb, "dct_cols", /*col_pass=*/true, /*inverse=*/false);
      buildEncoder(mb);
    }
    return mb.build();
  }

  void prepare(mem::Memory& memory, InputSize size) const override {
    const Dims d = dimsFor(size);
    memory.store32(guestAddr(w_off_), d.w);
    memory.store32(guestAddr(h_off_), d.h);
    if (decode_) {
      writeWords(memory, guestAddr(stream_off_), refEncode(size, experimentSeed()));
    } else {
      writeBytes(memory, guestAddr(img_off_), sourceImage(size, experimentSeed()));
    }
  }

  std::vector<u8> output(const mem::Memory& memory) const override {
    if (decode_) {
      return memory.readBlock(guestAddr(img_off_), kMaxPixels);
    }
    return memory.readBlock(guestAddr(stream_off_), kMaxStreamWords * 4);
  }

  std::vector<u8> expected(InputSize size) const override {
    if (decode_) {
      auto e = refDecode(size, experimentSeed());
      e.resize(kMaxPixels, 0);
      return e;
    }
    std::vector<u32> s = refEncode(size, experimentSeed());
    s.resize(kMaxStreamWords, 0);
    return toBytes(s);
  }

 private:
  // Encoder main: per block, gather+shift, DCT, quantize+zigzag+RLE.
  void buildEncoder(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r0, "width");
    f.ldr(r6, r0);
    f.la(r0, "height");
    f.ldr(r7, r0);
    f.la(r10, "stream", 4);  // write cursor (word 0 = length)
    f.movi(r8, 0);           // by*8 (pixel row of block)

    const auto byloop = f.label();
    const auto bydone = f.label();
    f.bind(byloop);
    f.cmpBr(r8, r7, Cond::kGe, bydone);
    f.movi(r9, 0);  // bx*8

    const auto bxloop = f.label();
    const auto bxdone = f.label();
    f.bind(bxloop);
    f.cmpBr(r9, r6, Cond::kGe, bxdone);

    // Gather the 8x8 block with level shift.
    f.la(r4, "image");
    f.la(r5, "blk");
    f.movi(r11, 0);  // y
    const auto gy = f.label();
    const auto gydone = f.label();
    f.bind(gy);
    f.cmpiBr(r11, 8, Cond::kGe, gydone);
    f.add(r0, r8, r11);   // pixel row
    f.mul(r0, r0, r6);
    f.add(r0, r0, r9);    // + bx*8
    f.add(r0, r0, r4);    // &image[row][bx*8]
    f.lsli(r1, r11, 5);
    f.add(r1, r1, r5);    // &blk[y*8]
    f.movi(r12, 0);       // x
    const auto gx = f.label();
    const auto gxdone = f.label();
    f.bind(gx);
    f.cmpiBr(r12, 8, Cond::kGe, gxdone);
    f.ldrbx(r2, r0, r12);
    f.subi(r2, r2, 128);
    f.lsli(r3, r12, 2);
    f.strx(r2, r1, r3);
    f.addi(r12, r12, 1);
    f.jmp(gx);
    f.bind(gxdone);
    f.addi(r11, r11, 1);
    f.jmp(gy);
    f.bind(gydone);

    // 2D DCT: rows blk->tmp, cols tmp->blk.
    f.la(r0, "blk");
    f.la(r1, "tmp");
    f.call("dct_rows");
    f.la(r0, "tmp");
    f.la(r1, "blk");
    f.call("dct_cols");

    // Quantize + zigzag + RLE. r4 zigzag, r5 blk, r11 run, r7 (height)
    // is preserved; use r12 for i. qtable via r0-scratch la.
    f.la(r4, "zigzag");
    f.la(r5, "blk");
    f.movi(r11, 0);  // run
    f.movi(r12, 0);  // i
    const auto ql = f.label();
    const auto qdone = f.label();
    const auto zero = f.label();
    const auto next = f.label();
    f.bind(ql);
    f.cmpiBr(r12, 64, Cond::kGe, qdone);
    f.ldrbx(r0, r4, r12);  // src = zigzag[i]
    f.lsli(r0, r0, 2);
    f.ldrx(r1, r5, r0);    // blk[src] (numerator)
    f.la(r2, "qtable");
    f.ldrx(r2, r2, r0);    // qtable[src] (divisor)
    f.mov(r0, r1);
    f.mov(r1, r2);
    f.call("sdiv");
    f.cmpiBr(r0, 0, Cond::kEq, zero);
    // emit (run<<16) | (q & 0xffff)
    f.lsli(r1, r11, 16);
    f.movi32(r2, 0xffffu);
    f.and_(r0, r0, r2);
    f.orr(r0, r0, r1);
    f.str(r0, r10, 0);
    f.addi(r10, r10, 4);
    f.movi(r11, 0);
    f.jmp(next);
    f.bind(zero);
    f.addi(r11, r11, 1);
    f.bind(next);
    f.addi(r12, r12, 1);
    f.jmp(ql);
    f.bind(qdone);
    // EOB.
    f.movi32(r0, kEob);
    f.str(r0, r10, 0);
    f.addi(r10, r10, 4);

    f.addi(r9, r9, 8);
    f.jmp(bxloop);
    f.bind(bxdone);
    f.addi(r8, r8, 8);
    f.jmp(byloop);
    f.bind(bydone);

    // Patch stream[0] with the total word count.
    f.la(r0, "stream");
    f.sub(r1, r10, r0);
    f.lsri(r1, r1, 2);
    f.str(r1, r0, 0);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  // Decoder main: per block, parse RLE, dequantize into blk, IDCT,
  // unshift+clamp into the image.
  void buildDecoder(asmkit::ModuleBuilder& mb) {
    using namespace asmkit;
    auto& f = mb.func("main");
    f.prologue({r4, r5, r6, r7, r8, r9, r10, r11});
    f.la(r0, "width");
    f.ldr(r6, r0);
    f.la(r0, "height");
    f.ldr(r7, r0);
    f.la(r10, "stream", 4);  // read cursor
    f.movi(r8, 0);           // by*8

    const auto byloop = f.label();
    const auto bydone = f.label();
    f.bind(byloop);
    f.cmpBr(r8, r7, Cond::kGe, bydone);
    f.movi(r9, 0);

    const auto bxloop = f.label();
    const auto bxdone = f.label();
    f.bind(bxloop);
    f.cmpBr(r9, r6, Cond::kGe, bxdone);

    // Clear blk.
    f.la(r5, "blk");
    f.movi(r0, 0);
    f.movi(r1, 0);
    const auto cl = f.label();
    f.bind(cl);
    f.strx(r0, r5, r1);
    f.addi(r1, r1, 4);
    f.cmpiBr(r1, 256, Cond::kLt, cl);

    // Parse RLE until EOB. r4 zigzag, r11 i, r12 scratch.
    f.la(r4, "zigzag");
    f.movi(r11, 0);
    const auto parse = f.label();
    const auto parsed = f.label();
    f.bind(parse);
    f.ldr(r0, r10, 0);
    f.addi(r10, r10, 4);
    f.movi32(r1, kEob);
    f.cmpBr(r0, r1, Cond::kEq, parsed);
    f.lsri(r1, r0, 16);   // run
    f.add(r11, r11, r1);
    f.lsli(r1, r0, 16);   // sign-extended value
    f.asri(r1, r1, 16);
    f.ldrbx(r2, r4, r11); // dst = zigzag[i]
    f.lsli(r2, r2, 2);
    f.la(r3, "qtable");
    f.ldrx(r3, r3, r2);
    f.mul(r1, r1, r3);    // dequantize
    f.strx(r1, r5, r2);
    f.addi(r11, r11, 1);
    f.jmp(parse);
    f.bind(parsed);

    // IDCT: cols blk->tmp, rows tmp->blk.
    f.la(r0, "blk");
    f.la(r1, "tmp");
    f.call("idct_cols");
    f.la(r0, "tmp");
    f.la(r1, "blk");
    f.call("idct_rows");

    // Scatter with unshift + clamp.
    f.la(r4, "image");
    f.la(r5, "blk");
    f.movi(r11, 0);  // y
    const auto sy = f.label();
    const auto sydone = f.label();
    f.bind(sy);
    f.cmpiBr(r11, 8, Cond::kGe, sydone);
    f.add(r0, r8, r11);
    f.mul(r0, r0, r6);
    f.add(r0, r0, r9);
    f.add(r0, r0, r4);    // &image[row][bx*8]
    f.lsli(r1, r11, 5);
    f.add(r1, r1, r5);    // &blk[y*8]
    f.movi(r12, 0);
    const auto sx = f.label();
    const auto sxdone = f.label();
    f.bind(sx);
    f.cmpiBr(r12, 8, Cond::kGe, sxdone);
    f.lsli(r2, r12, 2);
    f.ldrx(r3, r1, r2);
    f.addi(r3, r3, 128);
    const auto noclamp_lo = f.label();
    const auto noclamp_hi = f.label();
    f.cmpiBr(r3, 0, Cond::kGe, noclamp_lo);
    f.movi(r3, 0);
    f.bind(noclamp_lo);
    f.cmpiBr(r3, 255, Cond::kLe, noclamp_hi);
    f.movi(r3, 255);
    f.bind(noclamp_hi);
    f.strbx(r3, r0, r12);
    f.addi(r12, r12, 1);
    f.jmp(sx);
    f.bind(sxdone);
    f.addi(r11, r11, 1);
    f.jmp(sy);
    f.bind(sydone);

    f.addi(r9, r9, 8);
    f.jmp(bxloop);
    f.bind(bxdone);
    f.addi(r8, r8, 8);
    f.jmp(byloop);
    f.bind(bydone);
    f.epilogue({r4, r5, r6, r7, r8, r9, r10, r11});
  }

  bool decode_;
  u32 img_off_ = 0;
  u32 stream_off_ = 0;
  u32 w_off_ = 0;
  u32 h_off_ = 0;
};

}  // namespace

std::unique_ptr<Workload> makeCjpeg(u64 seed) {
  return std::make_unique<JpegWorkload>(seed, false);
}
std::unique_ptr<Workload> makeDjpeg(u64 seed) {
  return std::make_unique<JpegWorkload>(seed, true);
}

}  // namespace wp::workloads
