// Small guest-side runtime library emitted into workload modules —
// WRISC-32 has no divide instruction, so programs call these the way
// ARM binaries call __aeabi_uidiv.
#pragma once

#include "asmkit/builder.hpp"

namespace wp::workloads {

/// Emits `udiv`: r0 = r0 / r1 (unsigned), r1 = remainder. r1 must be
/// non-zero (guest behaviour on zero is a 0 quotient, numerator rest).
void emitUdiv(asmkit::ModuleBuilder& mb);

/// Emits `sdiv`: r0 = r0 / r1 (signed, truncating toward zero),
/// r1 = remainder with the sign of the numerator. Calls `udiv`.
void emitSdiv(asmkit::ModuleBuilder& mb);

}  // namespace wp::workloads
